package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmds compiles every command once per test binary into a temp dir
// and returns a name -> path map. Compiling (rather than `go run`)
// keeps the per-case cost down and verifies the binaries link.
func buildCmds(t *testing.T) map[string]string {
	t.Helper()
	dir := t.TempDir()
	names := []string{"ccsim", "controlsim", "bounds", "apprun", "ccprofile", "satsolve"}
	out := make(map[string]string, len(names))
	for _, name := range names {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, msg)
		}
		out[name] = bin
	}
	return out
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI e2e skipped in -short mode")
	}
	bins := buildCmds(t)

	t.Run("bounds", func(t *testing.T) {
		out := run(t, bins["bounds"], "-n", "340", "-d", "16", "-points", "5")
		for _, want := range []string{"Turán", "thm3_exact", "cor2_approx", "Safe initial m"} {
			if !strings.Contains(out, want) {
				t.Errorf("missing %q in output:\n%s", want, out)
			}
		}
		out = run(t, bins["bounds"], "-alpha")
		if !strings.Contains(out, "envelope") {
			t.Error("alpha table missing envelope column")
		}
		out = run(t, bins["bounds"], "-example1")
		if !strings.Contains(out, "expected_committed") || !strings.Contains(out, "\t2\n") {
			t.Errorf("example1 table wrong:\n%s", out)
		}
	})

	t.Run("ccsim", func(t *testing.T) {
		out := run(t, bins["ccsim"], "-n", "300", "-d", "8", "-reps", "20", "-points", "4", "-plot")
		for _, want := range []string{"fig2-conflict-ratio", "worst_case_bound", "random graph"} {
			if !strings.Contains(out, want) {
				t.Errorf("missing %q", want)
			}
		}
		out = run(t, bins["ccsim"], "-variance", "-n", "300", "-d", "8", "-reps", "30")
		if !strings.Contains(out, "rel_noise") {
			t.Error("variance table missing")
		}
	})

	t.Run("controlsim", func(t *testing.T) {
		out := run(t, bins["controlsim"], "-n", "400", "-rounds", "40")
		if !strings.Contains(out, "fig3-trajectories") || !strings.Contains(out, "hybrid: converged") {
			t.Errorf("fig3 output wrong:\n%s", out)
		}
		out = run(t, bins["controlsim"], "-phases")
		if !strings.Contains(out, "phase-tracking") {
			t.Error("phases output wrong")
		}
		out = run(t, bins["controlsim"], "-efficiency", "-n", "400")
		if !strings.Contains(out, "proc_rounds") {
			t.Error("efficiency output wrong")
		}
	})

	t.Run("apprun", func(t *testing.T) {
		out := run(t, bins["apprun"], "-app", "boruvka", "-size", "150")
		if !strings.Contains(out, "verified against Kruskal") {
			t.Errorf("boruvka not verified:\n%s", out)
		}
		out = run(t, bins["apprun"], "-app", "des", "-size", "100")
		if !strings.Contains(out, "bit-identical") {
			t.Errorf("des not verified:\n%s", out)
		}
		out = run(t, bins["apprun"], "-app", "mesh", "-size", "300", "-ctrl", "model-based")
		if !strings.Contains(out, "bad-remaining=0") {
			t.Errorf("mesh incomplete:\n%s", out)
		}
	})

	t.Run("ccprofile", func(t *testing.T) {
		out := run(t, bins["ccprofile"], "-workload", "cluster", "-size", "120")
		if !strings.Contains(out, "parallelism-profile") {
			t.Error("profile table missing")
		}
		out = run(t, bins["ccprofile"], "-workload", "boruvka", "-size", "150")
		if !strings.Contains(out, "parallelism-profile") {
			t.Error("boruvka profile missing")
		}
	})

	t.Run("satsolve", func(t *testing.T) {
		out := run(t, bins["satsolve"], "-n", "150", "-alpha", "2.5")
		if !strings.Contains(out, "SATISFIABLE") {
			t.Errorf("satsolve failed on easy instance:\n%s", out)
		}
	})
}
