// Package repro reproduces "Processor Allocation for Optimistic
// Parallelization of Irregular Programs" (Versaci & Pingali, SPAA'11
// brief announcement; full version ICCSA'12) as a production-quality Go
// library.
//
// The public surface lives in internal/core; the substrates are:
//
//   - internal/graph       — dynamic CC graphs, generators, greedy MIS
//   - internal/analytic    — the §3 closed-form theory (Turán extension)
//   - internal/sched       — the §2 round-based scheduler model
//   - internal/control     — the §4 controllers (Algorithm 1 hybrid),
//     smart start, model-based controller, baselines
//   - internal/speculation — goroutine-based optimistic runtime, the
//     ordered executor (§5), and the ForEach/Loop API
//   - internal/workset     — work-set policies
//   - internal/profile     — Lonestar-style parallelism profiles
//   - internal/apps/...    — Delaunay refinement, Boruvka + ordered
//     Kruskal, survey propagation, agglomerative clustering,
//     preflow-push max flow, discrete-event simulation
//
// The benchmarks in bench_test.go regenerate every figure of the paper;
// see EXPERIMENTS.md for paper-vs-measured results and DESIGN.md for the
// per-experiment index and the validation-oracle table.
package repro
