package repro

import (
	"bufio"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/service/client"
)

// specdProc wraps a running specd subprocess with line-buffered access
// to its combined output.
type specdProc struct {
	cmd     *exec.Cmd
	mu      sync.Mutex
	out     []string
	exitErr error
	done    chan struct{} // closed once the process has exited
}

func (p *specdProc) lines() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.out...)
}

// waitLine polls the captured output until a line containing substr
// appears, returning it.
func (p *specdProc) waitLine(t *testing.T, substr string, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, l := range p.lines() {
			if strings.Contains(l, substr) {
				return l
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("no %q in specd output after %v:\n%s", substr, timeout, strings.Join(p.lines(), "\n"))
	return ""
}

func buildCmd(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	if msg, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, msg)
	}
	return bin
}

// startSpecd launches the daemon on an ephemeral port and returns the
// process handle plus its base URL (scraped from the listening line).
func startSpecd(t *testing.T, bin string, extra ...string) (*specdProc, string) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting specd: %v", err)
	}
	p := &specdProc{cmd: cmd, done: make(chan struct{})}
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			p.mu.Lock()
			p.out = append(p.out, sc.Text())
			p.mu.Unlock()
		}
		p.exitErr = cmd.Wait()
		close(p.done)
	}()
	t.Cleanup(func() {
		cmd.Process.Signal(syscall.SIGTERM)
		select {
		case <-p.done:
		case <-time.After(30 * time.Second):
			cmd.Process.Kill()
		}
	})

	line := p.waitLine(t, "specd: listening on ", 20*time.Second)
	addr := strings.TrimPrefix(line[strings.Index(line, "specd: listening on "):], "specd: listening on ")
	addr = strings.Fields(addr)[0]
	return p, "http://" + addr
}

// TestSpecdSIGTERM checks the daemon's graceful-shutdown contract at the
// process level: SIGTERM with an active job lets the in-flight round
// complete, leaves a queued job queued, and exits 0.
func TestSpecdSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("process e2e skipped in -short mode")
	}
	bin := buildCmd(t, "specd")
	p, base := startSpecd(t, bin, "-workers", "1", "-parallel", "1")
	c := client.New(base)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// One slow job (~4s of tiny rounds) to occupy the worker, one parked
	// behind it.
	active, err := c.Submit(ctx, service.JobSpec{
		Workload: "mesh", Controller: "fixed", FixedM: 2, Size: 60000,
	})
	if err != nil {
		t.Fatalf("submit active: %v", err)
	}
	if _, err := c.Submit(ctx, service.JobSpec{
		Workload: "cc", Controller: "hybrid", Size: 300,
	}); err != nil {
		t.Fatalf("submit queued: %v", err)
	}
	for deadline := time.Now().Add(20 * time.Second); ; {
		st, err := c.Job(ctx, active.ID)
		if err == nil && st.State == service.StateRunning && st.Rounds >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("active job never progressed (last: %+v, err %v)", st, err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	select {
	case <-p.done:
		if p.exitErr != nil {
			t.Fatalf("specd exited nonzero: %v\n%s", p.exitErr, strings.Join(p.lines(), "\n"))
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("specd did not exit after SIGTERM:\n%s", strings.Join(p.lines(), "\n"))
	}

	out := strings.Join(p.lines(), "\n")
	for _, want := range []string{
		"draining",
		"(in-flight round completed)",
		"specd: drained cleanly (1 jobs still queued)",
		"specd: exit",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in specd output:\n%s", want, out)
		}
	}
}

// TestSpecloadAgainstSpecd runs the load generator binary against a live
// daemon: every job should be accepted and complete.
func TestSpecloadAgainstSpecd(t *testing.T) {
	if testing.Short() {
		t.Skip("process e2e skipped in -short mode")
	}
	specd := buildCmd(t, "specd")
	specload := buildCmd(t, "specload")
	_, base := startSpecd(t, specd, "-workers", "2", "-queue", "16", "-parallel", "1")

	out, err := exec.Command(specload,
		"-addr", base, "-jobs", "4", "-workload", "cc", "-size", "300",
		"-expect-reject=false").CombinedOutput()
	if err != nil {
		t.Fatalf("specload: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "4 submitted, 4 accepted, 0 rejected (429), 0 retried, 0 failed") {
		t.Errorf("unexpected specload summary:\n%s", out)
	}
}
