package sched

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// TestParallelEstimatorsAgreeWithSerial compares every parallel estimator
// against its seed serial counterpart at fixed seeds. The rng streams
// differ by construction, so agreement is within Monte Carlo tolerance.
func TestParallelEstimatorsAgreeWithSerial(t *testing.T) {
	g := graph.RandomWithAvgDegree(rng.New(1), 500, 12)
	const reps = 4000
	for _, m := range []int{2, 25, 125, 400, 500} {
		serial := ConflictRatioMC(g, rng.New(10), m, reps)
		for _, workers := range []int{1, 2, 8} {
			par := ConflictRatioMCParallel(g, rng.New(20), m, reps, workers)
			if absDiff(par, serial) > 0.02 {
				t.Errorf("m=%d workers=%d: parallel ratio %.4f vs serial %.4f",
					m, workers, par, serial)
			}
		}
		sc := ExpectedCommittedMC(g, rng.New(30), m, reps)
		pc := ExpectedCommittedMCParallel(g, rng.New(40), m, reps, 4)
		if sc > 0 && absDiff(pc, sc)/sc > 0.02 {
			t.Errorf("m=%d: parallel committed %.3f vs serial %.3f", m, pc, sc)
		}
	}
}

func TestParallelDistAgreesWithSerial(t *testing.T) {
	g := graph.RandomWithAvgDegree(rng.New(2), 400, 16)
	const reps = 6000
	for _, m := range []int{4, 32, 128} {
		sMean, sStd := ConflictRatioDistMC(g, rng.New(5), m, reps)
		pMean, pStd := ConflictRatioDistMCParallel(g, rng.New(6), m, reps, 4)
		if absDiff(pMean, sMean) > 0.02 {
			t.Errorf("m=%d: mean %.4f vs %.4f", m, pMean, sMean)
		}
		if absDiff(pStd, sStd) > 0.02 {
			t.Errorf("m=%d: std %.4f vs %.4f", m, pStd, sStd)
		}
	}
}

// TestParallelEstimatorDeterminism pins the (seed, reps, workers)
// reproducibility contract for the engine's public methods.
func TestParallelEstimatorDeterminism(t *testing.T) {
	g := graph.RandomWithAvgDegree(rng.New(3), 300, 10)
	for _, workers := range []int{1, 3, 7} {
		e1 := NewEstimator(g, workers)
		e2 := NewEstimator(g, workers)
		if a, b := e1.ConflictRatio(rng.New(9), 77, 200), e2.ConflictRatio(rng.New(9), 77, 200); a != b {
			t.Fatalf("workers=%d: ConflictRatio %v != %v", workers, a, b)
		}
		m1, s1 := e1.ConflictRatioDist(rng.New(9), 77, 200)
		m2, s2 := e2.ConflictRatioDist(rng.New(9), 77, 200)
		if m1 != m2 || s1 != s2 {
			t.Fatalf("workers=%d: Dist (%v,%v) != (%v,%v)", workers, m1, s1, m2, s2)
		}
	}
}

// TestEstimatorSnapshotIndependence verifies the CSR snapshot decouples
// the estimator from later graph mutation.
func TestEstimatorSnapshotIndependence(t *testing.T) {
	g := graph.RandomWithAvgDegree(rng.New(4), 200, 8)
	e := NewEstimator(g, 2)
	before := e.ConflictRatio(rng.New(1), 50, 500)
	for g.NumNodes() > 0 {
		g.RemoveNode(g.NodeAt(0))
	}
	after := e.ConflictRatio(rng.New(1), 50, 500)
	if before != after {
		t.Fatalf("snapshot leaked graph mutation: %v vs %v", before, after)
	}
}

func TestEstimatorEdgeCases(t *testing.T) {
	empty := graph.New()
	e := NewEstimator(empty, 4)
	if got := e.ConflictRatio(rng.New(1), 10, 50); got != 0 {
		t.Fatalf("empty graph ratio = %v", got)
	}
	if got := e.ExpectedCommitted(rng.New(1), 10, 50); got != 0 {
		t.Fatalf("empty graph committed = %v", got)
	}
	g := graph.NewWithNodes(5)
	e = NewEstimator(g, 3)
	if got := e.ConflictRatio(rng.New(1), 0, 50); got != 0 {
		t.Fatalf("m=0 ratio = %v", got)
	}
	// Edgeless graph: nothing ever conflicts, even with m > n.
	if got := e.ConflictRatio(rng.New(1), 50, 50); got != 0 {
		t.Fatalf("edgeless ratio = %v", got)
	}
	if got := e.ExpectedCommitted(rng.New(1), 50, 50); got != 5 {
		t.Fatalf("edgeless committed = %v, want 5", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ConflictRatio with reps=0 should panic like the serial estimator")
		}
	}()
	e.ConflictRatio(rng.New(1), 2, 0)
}

// TestParallelCurveMatchesPointwise checks Curve against per-point
// parallel estimates and the exact oracle on a tiny graph.
func TestParallelCurveMatchesPointwise(t *testing.T) {
	g := graph.CliqueUnion(8, 3) // two K4s: exactly enumerable
	ms := []int{1, 2, 4, 8}
	pts := ConflictCurveParallel(g, rng.New(11), ms, 20000, 3)
	if len(pts) != len(ms) {
		t.Fatalf("curve has %d points, want %d", len(pts), len(ms))
	}
	for _, p := range pts {
		exact := ExactConflictRatio(g, p.M)
		if absDiff(p.Ratio, exact) > 0.02 {
			t.Errorf("m=%d: curve %.4f vs exact %.4f", p.M, p.Ratio, exact)
		}
	}
}

// --- benchmarks: the seed serial estimator vs the CSR parallel engine --

// benchGraph is the Fig. 2 graph named in the issue: n=2000, d=16,
// probing m = n/4 (matching the root-level BenchmarkFig2RandomGraph).
//
// benchReps must be large enough that each worker's shard amortizes the
// goroutine fan-out; at the original reps=50 every worker count ran in
// the same ~1ms because per-shard work was dwarfed by spawn overhead,
// so the w1/w2/w4/w8 sub-benchmarks reported no scaling at all.
const benchReps = 2000

func benchGraph() *graph.Graph {
	return graph.RandomWithAvgDegree(rng.New(2), 2000, 16)
}

func BenchmarkConflictRatioMCSerial(b *testing.B) {
	g := benchGraph()
	r := rng.New(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConflictRatioMC(g, r, 500, benchReps)
	}
}

func BenchmarkConflictRatioMCParallel(b *testing.B) {
	g := benchGraph()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			est := NewEstimator(g, workers)
			r := rng.New(3)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				est.ConflictRatio(r, 500, benchReps)
			}
		})
	}
}
