// Package sched implements the paper's scheduler model (§2) on a CC
// graph: at each temporal step the system picks m live nodes uniformly at
// random (the active nodes), runs them "speculatively", and resolves
// conflicts in random commit order — a node aborts iff an earlier
// *committed* active node is its neighbor, so the committed set is the
// greedy maximal independent set of the induced subgraph in permutation
// order (Fig. 1). Committed nodes leave the graph; an application hook
// may then mutate the neighborhood (add nodes/edges), modelling amorphous
// data-parallel work generation.
//
// The package also provides the estimators for the conflict-ratio
// function r̄(m) of Eq. 1: Monte Carlo for real graphs and exact
// enumeration for small ones (used as a test oracle for Props. 1–2).
package sched

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Mutator is the application hook invoked after each round with the nodes
// that committed. Implementations typically add new nodes and conflict
// edges (newly generated work) or rewire neighborhoods. A nil Mutator
// leaves the graph to simply drain.
type Mutator interface {
	AfterRound(g *graph.Graph, committed []int, r *rng.Rand)
}

// MutatorFunc adapts a function to the Mutator interface.
type MutatorFunc func(g *graph.Graph, committed []int, r *rng.Rand)

// AfterRound implements Mutator.
func (f MutatorFunc) AfterRound(g *graph.Graph, committed []int, r *rng.Rand) {
	f(g, committed, r)
}

// RoundResult reports one temporal step of the model.
type RoundResult struct {
	Launched  int   // m: active nodes selected
	Committed []int // nodes that committed (greedy MIS in commit order)
	Aborted   []int // nodes that aborted (k of them)
}

// ConflictRatio returns k/m for the round, the paper's r_t. A round with
// no launched work has ratio 0.
func (rr RoundResult) ConflictRatio() float64 {
	if rr.Launched == 0 {
		return 0
	}
	return float64(len(rr.Aborted)) / float64(rr.Launched)
}

// Scheduler drives the round-based model over a mutable CC graph.
type Scheduler struct {
	G   *graph.Graph
	R   *rng.Rand
	Mut Mutator // optional

	// Rounds executed and cumulative counters, for reporting.
	Steps          int
	TotalLaunched  int
	TotalCommitted int
	TotalAborted   int
}

// New returns a scheduler over g using the given generator.
func New(g *graph.Graph, r *rng.Rand) *Scheduler {
	return &Scheduler{G: g, R: r}
}

// Step runs one temporal step with m processors: it selects min(m, live)
// active nodes uniformly at random, resolves conflicts in commit order,
// removes committed nodes from the graph, and invokes the mutator.
func (s *Scheduler) Step(m int) RoundResult {
	if m < 0 {
		panic(fmt.Sprintf("sched: negative m = %d", m))
	}
	order := s.G.SampleNodes(s.R, m)
	committed, aborted := graph.GreedyMIS(s.G, order)
	for _, v := range committed {
		s.G.RemoveNode(v)
	}
	if s.Mut != nil {
		s.Mut.AfterRound(s.G, committed, s.R)
	}
	s.Steps++
	s.TotalLaunched += len(order)
	s.TotalCommitted += len(committed)
	s.TotalAborted += len(aborted)
	return RoundResult{Launched: len(order), Committed: committed, Aborted: aborted}
}

// Done reports whether no work remains.
func (s *Scheduler) Done() bool { return s.G.NumNodes() == 0 }

// OverallConflictRatio returns aggregate aborted/launched across all
// steps so far (0 if nothing launched).
func (s *Scheduler) OverallConflictRatio() float64 {
	if s.TotalLaunched == 0 {
		return 0
	}
	return float64(s.TotalAborted) / float64(s.TotalLaunched)
}

// ConflictRatioMC estimates r̄(m) (Eq. 1) for the *static* graph g by
// Monte Carlo: it repeatedly samples a random length-m permutation prefix
// and counts greedy-MIS rejections, without mutating g. reps must be
// positive.
func ConflictRatioMC(g *graph.Graph, r *rng.Rand, m, reps int) float64 {
	if reps <= 0 {
		panic("sched: ConflictRatioMC requires positive reps")
	}
	if m <= 0 {
		return 0
	}
	n := g.NumNodes()
	mm := m
	if mm > n {
		mm = n
	}
	if mm == 0 {
		return 0
	}
	totalAborts := 0
	var scratch graph.MISScratch
	for i := 0; i < reps; i++ {
		order := g.SampleNodes(r, mm)
		totalAborts += mm - scratch.Size(g, order)
	}
	return float64(totalAborts) / float64(reps*mm)
}

// ExpectedCommittedMC estimates EM_m(G) — the expected committed count
// per round — by Monte Carlo on the static graph.
func ExpectedCommittedMC(g *graph.Graph, r *rng.Rand, m, reps int) float64 {
	return graph.ExpectedInducedMISMonteCarlo(g, r, m, reps)
}

// ConflictRatioDistMC estimates the mean and standard deviation of the
// per-round conflict ratio r_t at the given m — the §4.1 observation
// that "r_t can have a big variance, especially when m is small" is the
// reason Algorithm 1 averages over T rounds and tunes small m
// separately. Returns (mean, std).
func ConflictRatioDistMC(g *graph.Graph, r *rng.Rand, m, reps int) (float64, float64) {
	if reps <= 1 {
		panic("sched: ConflictRatioDistMC requires reps > 1")
	}
	n := g.NumNodes()
	mm := m
	if mm > n {
		mm = n
	}
	if mm <= 0 {
		return 0, 0
	}
	var acc stats.Accumulator
	var scratch graph.MISScratch
	for i := 0; i < reps; i++ {
		order := g.SampleNodes(r, mm)
		aborts := mm - scratch.Size(g, order)
		acc.Add(float64(aborts) / float64(mm))
	}
	return acc.Mean(), acc.StdDev()
}

// ExactConflictRatio computes r̄(m) exactly by enumerating every ordered
// selection of m distinct nodes (n!/(n−m)! orders). It is exponential and
// intended as a test oracle for graphs with at most ~9 nodes.
func ExactConflictRatio(g *graph.Graph, m int) float64 {
	n := g.NumNodes()
	if m <= 0 || n == 0 {
		return 0
	}
	if m > n {
		m = n
	}
	nodes := g.Nodes()
	used := make([]bool, n)
	order := make([]int, 0, m)
	// One epoch-marked scratch serves every leaf of the n!/(n−m)!-order
	// enumeration; allocating a fresh map per leaf dominated the oracle's
	// runtime before.
	var scratch graph.MISScratch
	var totalAborts, totalOrders int64
	var rec func(depth int)
	rec = func(depth int) {
		if depth == m {
			totalOrders++
			totalAborts += int64(m - scratch.Size(g, order))
			return
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			order = append(order, nodes[i])
			rec(depth + 1)
			order = order[:len(order)-1]
			used[i] = false
		}
	}
	rec(0)
	return float64(totalAborts) / (float64(totalOrders) * float64(m))
}

// ExactExpectedAborts computes k̄(m) exactly by enumeration (same cost
// caveats as ExactConflictRatio).
func ExactExpectedAborts(g *graph.Graph, m int) float64 {
	if m <= 0 {
		return 0
	}
	n := g.NumNodes()
	if m > n {
		m = n
	}
	return ExactConflictRatio(g, m) * float64(m)
}

// CurvePoint is one sample of the conflict-ratio curve.
type CurvePoint struct {
	M     int
	Ratio float64
}

// ConflictCurve samples r̄(m) at the given m values by Monte Carlo.
func ConflictCurve(g *graph.Graph, r *rng.Rand, ms []int, reps int) []CurvePoint {
	out := make([]CurvePoint, 0, len(ms))
	for _, m := range ms {
		out = append(out, CurvePoint{M: m, Ratio: ConflictRatioMC(g, r, m, reps)})
	}
	return out
}
