package sched

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// §4.1: "r_t can have a big variance, especially when m is small". We
// verify the relative noise (std/mean) of the per-round ratio shrinks
// as m grows on the paper's random graphs.
func TestSmallMVarianceIsLarger(t *testing.T) {
	r := rng.New(1)
	g := graph.RandomWithAvgDegree(r, 2000, 16)
	const reps = 3000
	type point struct {
		m        int
		relNoise float64
	}
	var pts []point
	for _, m := range []int{4, 16, 64, 256} {
		mean, std := ConflictRatioDistMC(g, r, m, reps)
		if mean <= 0 {
			t.Fatalf("m=%d: zero mean ratio", m)
		}
		pts = append(pts, point{m, std / mean})
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].relNoise >= pts[i-1].relNoise {
			t.Fatalf("relative noise did not shrink: m=%d %.3f -> m=%d %.3f",
				pts[i-1].m, pts[i-1].relNoise, pts[i].m, pts[i].relNoise)
		}
	}
	// Small m must be dramatically noisier (the §4.1 justification for
	// the separate small-m tuning): at least 3× between m=4 and m=256.
	if pts[0].relNoise < 3*pts[len(pts)-1].relNoise {
		t.Fatalf("small-m noise %.3f not ≫ large-m noise %.3f",
			pts[0].relNoise, pts[len(pts)-1].relNoise)
	}
}

func TestConflictRatioDistMCMeanMatchesPointEstimator(t *testing.T) {
	r := rng.New(2)
	g := graph.RandomWithAvgDegree(r, 500, 12)
	mean, std := ConflictRatioDistMC(g, r, 40, 4000)
	point := ConflictRatioMC(g, r, 40, 4000)
	if diff := mean - point; diff > 0.02 || diff < -0.02 {
		t.Fatalf("mean %v vs point estimator %v", mean, point)
	}
	if std <= 0 {
		t.Fatal("zero std on a conflicting workload")
	}
}

func TestConflictRatioDistMCEdge(t *testing.T) {
	r := rng.New(3)
	mean, std := ConflictRatioDistMC(graph.New(), r, 5, 10)
	if mean != 0 || std != 0 {
		t.Fatal("empty graph should give zeros")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("reps=1 must panic")
		}
	}()
	ConflictRatioDistMC(graph.Empty(3), r, 2, 1)
}
