package sched

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Lemma 1: k̄(m) = m·r̄(m) is non-decreasing and convex in m. The paper
// proves it for the dynamic model; on static graphs it must hold
// exactly, which we verify with the enumeration oracle.
func TestLemma1KBarMonotoneConvex(t *testing.T) {
	r := rng.New(1)
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"complete", graph.Complete(7)},
		{"path", graph.Path(7)},
		{"cycle", graph.Cycle(7)},
		{"star", graph.Star(7)},
		{"random", graph.RandomGNM(r, 7, 10)},
		{"cliques", graph.CliqueUnion(8, 3)},
		{"sparse", graph.RandomGNM(r, 8, 4)},
	}
	for _, c := range cases {
		n := c.g.NumNodes()
		kbar := make([]float64, n+1)
		for m := 1; m <= n; m++ {
			kbar[m] = ExactExpectedAborts(c.g, m)
		}
		for m := 1; m < n; m++ {
			if kbar[m+1] < kbar[m]-1e-12 {
				t.Errorf("%s: k̄ decreased at m=%d: %v -> %v", c.name, m, kbar[m], kbar[m+1])
			}
		}
		for m := 1; m+2 <= n; m++ {
			d2 := kbar[m+2] - 2*kbar[m+1] + kbar[m]
			if d2 < -1e-12 {
				t.Errorf("%s: k̄ not convex at m=%d: Δ²=%v", c.name, m, d2)
			}
		}
	}
}

// The unfriendly seating problem (Freedman–Shepp, cited in §3): the
// expected density of a random greedy maximal independent set converges
// to (1−e⁻²)/2 ≈ 0.4323 on long paths/cycles, and to ≈0.3641 on the 2D
// square lattice (the statistical-physics setting of [11]).
func TestUnfriendlySeatingPathDensity(t *testing.T) {
	r := rng.New(2)
	g := graph.Path(400)
	est := graph.ExpectedMISMonteCarlo(g, r, 300) / 400
	want := (1 - math.Exp(-2)) / 2
	if math.Abs(est-want) > 0.01 {
		t.Fatalf("path density %v, want %v", est, want)
	}
}

func TestUnfriendlySeatingCycleDensity(t *testing.T) {
	r := rng.New(3)
	g := graph.Cycle(400)
	est := graph.ExpectedMISMonteCarlo(g, r, 300) / 400
	want := (1 - math.Exp(-2)) / 2
	if math.Abs(est-want) > 0.01 {
		t.Fatalf("cycle density %v, want %v", est, want)
	}
}

func TestUnfriendlySeatingGridDensity(t *testing.T) {
	r := rng.New(4)
	g := graph.Grid2D(40, 40)
	est := graph.ExpectedMISMonteCarlo(g, r, 200) / 1600
	// Random sequential adsorption with nearest-neighbor exclusion on
	// Z²: jamming density ≈ 0.3641 (boundary effects raise a finite
	// grid slightly).
	if est < 0.355 || est < 0.0 || est > 0.385 {
		t.Fatalf("grid density %v, want ≈0.364", est)
	}
}

// For the path, r̄(n) has a closed-form limit too: 1 − density·... — we
// only check consistency between the two estimators here: committing a
// full random permutation equals n − E[MIS].
func TestAbortsPlusMISIsN(t *testing.T) {
	r := rng.New(5)
	g := graph.RandomGNM(r, 60, 150)
	n := g.NumNodes()
	mis := graph.ExpectedMISMonteCarlo(g, r, 2000)
	ratio := ConflictRatioMC(g, r, n, 2000)
	aborts := ratio * float64(n)
	if math.Abs(aborts+mis-float64(n)) > 1.0 {
		t.Fatalf("E[aborts] %v + E[MIS] %v != n=%d", aborts, mis, n)
	}
}

// Eq. 8 of the paper: Δr̄(m) = (m·Δk̄(m) − k̄(m)) / (m(m+1)). Verified
// exactly on the enumeration oracle.
func TestEq8FiniteDifferenceIdentity(t *testing.T) {
	r := rng.New(6)
	cases := []*graph.Graph{
		graph.Complete(6),
		graph.Path(7),
		graph.RandomGNM(r, 7, 9),
		graph.CliqueUnion(8, 3),
	}
	for gi, g := range cases {
		n := g.NumNodes()
		for m := 1; m+1 <= n; m++ {
			rm := ExactConflictRatio(g, m)
			rm1 := ExactConflictRatio(g, m+1)
			km := ExactExpectedAborts(g, m)
			km1 := ExactExpectedAborts(g, m+1)
			lhs := rm1 - rm
			rhs := (float64(m)*(km1-km) - km) / (float64(m) * float64(m+1))
			if math.Abs(lhs-rhs) > 1e-12 {
				t.Fatalf("graph %d m=%d: Δr̄=%v but Eq.8 gives %v", gi, m, lhs, rhs)
			}
		}
	}
}

// Eq. 12-13 of the paper: k̄(2) = d/(n−1) exactly.
func TestEq13KBarAtTwo(t *testing.T) {
	r := rng.New(7)
	cases := []*graph.Graph{
		graph.Complete(6),
		graph.Star(8),
		graph.RandomGNM(r, 8, 11),
	}
	for gi, g := range cases {
		want := g.AvgDegree() / float64(g.NumNodes()-1)
		if got := ExactExpectedAborts(g, 2); math.Abs(got-want) > 1e-12 {
			t.Fatalf("graph %d: k̄(2)=%v want %v", gi, got, want)
		}
	}
}
