package sched

import (
	"math"
	"testing"

	"repro/internal/analytic"
	"repro/internal/graph"
	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestFigure1Semantics walks the three panels of Fig. 1 on a concrete
// graph: random actives are launched, conflicts are detected, and the
// committed set is a maximal independent set of the induced subgraph.
func TestFigure1Semantics(t *testing.T) {
	r := rng.New(1)
	g := graph.RandomGNM(r, 12, 18)
	snapshot := g.Clone()
	s := New(g, r)
	res := s.Step(6)
	if res.Launched != 6 {
		t.Fatalf("launched %d, want 6", res.Launched)
	}
	if len(res.Committed)+len(res.Aborted) != 6 {
		t.Fatal("committed + aborted must partition the active nodes")
	}
	// Committed set must be independent in the pre-round graph and
	// maximal within the active subset.
	if !graph.IsIndependentSet(snapshot, res.Committed) {
		t.Fatal("committed set not independent")
	}
	for _, a := range res.Aborted {
		conflicts := false
		for _, c := range res.Committed {
			if snapshot.HasEdge(a, c) {
				conflicts = true
				break
			}
		}
		if !conflicts {
			t.Fatalf("aborted node %d has no committed neighbor — set not maximal", a)
		}
	}
	// Committed nodes left the graph; aborted ones remain.
	for _, c := range res.Committed {
		if g.Has(c) {
			t.Fatalf("committed node %d still live", c)
		}
	}
	for _, a := range res.Aborted {
		if !g.Has(a) {
			t.Fatalf("aborted node %d was removed", a)
		}
	}
}

func TestStepDrainsGraph(t *testing.T) {
	r := rng.New(2)
	g := graph.RandomGNM(r, 100, 300)
	s := New(g, r)
	for steps := 0; !s.Done(); steps++ {
		if steps > 10000 {
			t.Fatal("scheduler did not drain")
		}
		s.Step(8)
	}
	if s.TotalCommitted != 100 {
		t.Fatalf("committed %d nodes total, want 100", s.TotalCommitted)
	}
	if s.TotalLaunched != s.TotalCommitted+s.TotalAborted {
		t.Fatal("counter identity broken")
	}
}

func TestStepMClampedToLive(t *testing.T) {
	r := rng.New(3)
	g := graph.Empty(5)
	s := New(g, r)
	res := s.Step(50)
	if res.Launched != 5 || len(res.Committed) != 5 {
		t.Fatalf("launched=%d committed=%d", res.Launched, len(res.Committed))
	}
	if !s.Done() {
		t.Fatal("empty graph should be drained")
	}
	// Stepping an empty graph is a harmless no-op round.
	res = s.Step(4)
	if res.Launched != 0 || res.ConflictRatio() != 0 {
		t.Fatal("step on empty graph should launch nothing")
	}
}

func TestMutatorInvoked(t *testing.T) {
	r := rng.New(4)
	g := graph.Empty(3)
	calls := 0
	s := New(g, r)
	s.Mut = MutatorFunc(func(g *graph.Graph, committed []int, r *rng.Rand) {
		calls++
		// Regrow one node per committed node, capped to keep test finite.
		if calls < 3 {
			for range committed {
				g.AddNode()
			}
		}
	})
	s.Step(3)
	if calls != 1 {
		t.Fatalf("mutator calls = %d", calls)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("regrown nodes = %d, want 3", g.NumNodes())
	}
}

// Prop. 1 oracle: exact r̄(m) is non-decreasing in m on small graphs of
// several shapes.
func TestProp1ExactMonotonicity(t *testing.T) {
	r := rng.New(5)
	cases := []*graph.Graph{
		graph.Complete(6),
		graph.Path(7),
		graph.Cycle(7),
		graph.Star(7),
		graph.RandomGNM(r, 7, 10),
		graph.CliqueUnion(8, 3),
		graph.Empty(6),
	}
	for gi, g := range cases {
		prev := -1.0
		for m := 1; m <= g.NumNodes(); m++ {
			cur := ExactConflictRatio(g, m)
			if cur < prev-1e-12 {
				t.Errorf("graph %d: r̄(%d)=%v < r̄(%d)=%v", gi, m, cur, m-1, prev)
			}
			prev = cur
		}
	}
}

// Prop. 2 oracle: Δr̄(1) = d/(2(n−1)) exactly, on arbitrary small graphs.
func TestProp2InitialSlopeExact(t *testing.T) {
	r := rng.New(6)
	cases := []*graph.Graph{
		graph.Complete(5),
		graph.Path(6),
		graph.Star(6),
		graph.RandomGNM(r, 7, 9),
		graph.RandomGNM(r, 6, 2),
	}
	for gi, g := range cases {
		slope := ExactConflictRatio(g, 2) - ExactConflictRatio(g, 1)
		want := analytic.InitialSlope(g.NumNodes(), g.AvgDegree())
		if !almostEq(slope, want, 1e-12) {
			t.Errorf("graph %d: slope %v want %v", gi, slope, want)
		}
	}
}

func TestExactConflictRatioCompleteGraph(t *testing.T) {
	// On K_n exactly one active node commits: r̄(m) = (m−1)/m.
	g := graph.Complete(6)
	for m := 1; m <= 6; m++ {
		want := float64(m-1) / float64(m)
		if got := ExactConflictRatio(g, m); !almostEq(got, want, 1e-12) {
			t.Errorf("m=%d: %v want %v", m, got, want)
		}
	}
}

func TestExactConflictRatioEmptyGraph(t *testing.T) {
	g := graph.Empty(5)
	for m := 1; m <= 5; m++ {
		if got := ExactConflictRatio(g, m); got != 0 {
			t.Errorf("m=%d: %v want 0", m, got)
		}
	}
}

func TestMonteCarloMatchesExact(t *testing.T) {
	r := rng.New(7)
	g := graph.RandomGNM(r, 8, 12)
	for _, m := range []int{2, 4, 6, 8} {
		exact := ExactConflictRatio(g, m)
		mc := ConflictRatioMC(g, r, m, 20000)
		if !almostEq(exact, mc, 0.02) {
			t.Errorf("m=%d: exact %v MC %v", m, exact, mc)
		}
	}
}

// Thm. 3: the measured conflict ratio on K^n_d matches the closed form,
// and every other same-degree graph stays below it.
func TestWorstCaseExactMatchesSimulation(t *testing.T) {
	r := rng.New(8)
	const n, d = 120, 5
	knd := graph.CliqueUnion(n, d)
	rival := graph.RandomGNM(r, n, n*d/2)
	for _, m := range []int{2, 10, 30, 60, 120} {
		bound := analytic.WorstCaseConflictRatio(n, d, m)
		worst := ConflictRatioMC(knd, r, m, 4000)
		other := ConflictRatioMC(rival, r, m, 4000)
		if !almostEq(worst, bound, 0.03) {
			t.Errorf("m=%d: K^n_d measured %v, closed form %v", m, worst, bound)
		}
		if other > bound+0.03 {
			t.Errorf("m=%d: random graph ratio %v exceeds worst-case %v", m, other, bound)
		}
	}
}

func TestConflictRatioMCBoundaries(t *testing.T) {
	r := rng.New(9)
	g := graph.Complete(5)
	if got := ConflictRatioMC(g, r, 0, 10); got != 0 {
		t.Errorf("m=0: %v", got)
	}
	if got := ConflictRatioMC(g, r, 1, 10); got != 0 {
		t.Errorf("m=1: %v", got)
	}
	// m beyond n clamps.
	got := ConflictRatioMC(g, r, 50, 200)
	if !almostEq(got, 4.0/5.0, 1e-9) {
		t.Errorf("clamped m: %v want 0.8", got)
	}
}

func TestConflictCurve(t *testing.T) {
	r := rng.New(10)
	g := graph.RandomGNM(r, 50, 100)
	ms := []int{1, 5, 10, 25, 50}
	curve := ConflictCurve(g, r, ms, 500)
	if len(curve) != len(ms) {
		t.Fatalf("curve has %d points", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		// Monotone modulo Monte Carlo noise.
		if curve[i].Ratio < curve[i-1].Ratio-0.05 {
			t.Errorf("curve not (approximately) monotone at %v", curve[i])
		}
	}
}

func TestOverallConflictRatio(t *testing.T) {
	r := rng.New(11)
	g := graph.Complete(10)
	s := New(g, r)
	for !s.Done() {
		s.Step(5)
	}
	if got := s.OverallConflictRatio(); got <= 0 || got >= 1 {
		t.Errorf("overall ratio = %v, want in (0,1) for a clique drained at m=5", got)
	}
	empty := New(graph.Empty(0), r)
	if empty.OverallConflictRatio() != 0 {
		t.Error("no launches should give ratio 0")
	}
}
