package sched

import (
	"math"
	"runtime"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Estimator is the Monte Carlo estimation engine over one CSR snapshot of
// a CC graph. Building it freezes the graph into flat adjacency arrays
// (graph.NewCSR) once; every estimate then shards its reps across the
// configured worker pool, each worker drawing from its own rng.Split
// stream into allocation-free epoch-marked scratch. Reusing one Estimator
// across many m values (curves, bisections, sweeps) amortizes the
// snapshot cost to nothing.
//
// Results are reproducible: for a fixed (rng state, reps, workers) every
// method returns bit-identical values — reps shard into contiguous
// per-worker blocks and the integer moment sums are reduced in worker
// order (see graph.(*CSR).MISMoments). Changing the worker count re-draws
// the streams, giving a statistically equivalent but not bit-identical
// estimate.
type Estimator struct {
	csr     *graph.CSR
	workers int
}

// NewEstimator snapshots g and returns an engine with the given worker
// count; workers ≤ 0 means GOMAXPROCS. The snapshot shares no state with
// g, so later mutation of g does not affect the estimator.
func NewEstimator(g *graph.Graph, workers int) *Estimator {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Estimator{csr: graph.NewCSR(g), workers: workers}
}

// Workers returns the configured worker count.
func (e *Estimator) Workers() int { return e.workers }

// NumNodes returns the number of nodes in the snapshot.
func (e *Estimator) NumNodes() int { return e.csr.NumNodes() }

// CSR exposes the underlying snapshot.
func (e *Estimator) CSR() *graph.CSR { return e.csr }

// clampM applies the estimators' common m policy: non-positive m means no
// work, m beyond the snapshot saturates at n.
func (e *Estimator) clampM(m int) int {
	if m <= 0 {
		return 0
	}
	if n := e.csr.NumNodes(); m > n {
		return n
	}
	return m
}

// ConflictRatio estimates r̄(m) (Eq. 1): the parallel CSR counterpart of
// ConflictRatioMC. reps must be positive.
func (e *Estimator) ConflictRatio(r *rng.Rand, m, reps int) float64 {
	if reps <= 0 {
		panic("sched: Estimator.ConflictRatio requires positive reps")
	}
	mm := e.clampM(m)
	if mm == 0 {
		return 0
	}
	sum, _ := e.csr.MISMoments(r, mm, reps, e.workers)
	total := int64(reps) * int64(mm)
	return float64(total-sum) / float64(total)
}

// ConflictRatioDist estimates the mean and sample standard deviation of
// the per-round conflict ratio r_t at the given m — the parallel CSR
// counterpart of ConflictRatioDistMC. reps must exceed 1.
//
// Both moments derive from the exact integer sums Σs and Σs² of the
// per-rep MIS sizes, so the reduction order cannot perturb the result.
func (e *Estimator) ConflictRatioDist(r *rng.Rand, m, reps int) (mean, std float64) {
	if reps <= 1 {
		panic("sched: Estimator.ConflictRatioDist requires reps > 1")
	}
	mm := e.clampM(m)
	if mm == 0 {
		return 0, 0
	}
	sum, sumSq := e.csr.MISMoments(r, mm, reps, e.workers)
	// Per-rep ratio x_i = (mm − s_i)/mm: convert the size moments.
	fm := float64(mm)
	n := float64(reps)
	sumX := n - float64(sum)/fm
	sumXX := (n*fm*fm - 2*fm*float64(sum) + float64(sumSq)) / (fm * fm)
	mean = sumX / n
	variance := (sumXX - sumX*sumX/n) / (n - 1) // unbiased, matching stats.Accumulator
	if variance < 0 {
		variance = 0 // guard the subtraction against rounding
	}
	return mean, math.Sqrt(variance)
}

// ExpectedCommitted estimates EM_m(G), the expected committed count per
// round — the parallel CSR counterpart of ExpectedCommittedMC.
func (e *Estimator) ExpectedCommitted(r *rng.Rand, m, reps int) float64 {
	if reps <= 0 {
		return 0
	}
	mm := e.clampM(m)
	sum, _ := e.csr.MISMoments(r, mm, reps, e.workers)
	return float64(sum) / float64(reps)
}

// Curve samples r̄(m) at the given m values, reusing the snapshot across
// all points — the parallel counterpart of ConflictCurve.
func (e *Estimator) Curve(r *rng.Rand, ms []int, reps int) []CurvePoint {
	out := make([]CurvePoint, 0, len(ms))
	for _, m := range ms {
		out = append(out, CurvePoint{M: m, Ratio: e.ConflictRatio(r, m, reps)})
	}
	return out
}

// ConflictRatioMCParallel estimates r̄(m) on a one-shot CSR snapshot with
// reps sharded across workers (≤ 0 means GOMAXPROCS). Prefer building an
// Estimator when probing the same graph at several m values.
func ConflictRatioMCParallel(g *graph.Graph, r *rng.Rand, m, reps, workers int) float64 {
	return NewEstimator(g, workers).ConflictRatio(r, m, reps)
}

// ConflictRatioDistMCParallel is the parallel counterpart of
// ConflictRatioDistMC; see Estimator.ConflictRatioDist.
func ConflictRatioDistMCParallel(g *graph.Graph, r *rng.Rand, m, reps, workers int) (float64, float64) {
	return NewEstimator(g, workers).ConflictRatioDist(r, m, reps)
}

// ExpectedCommittedMCParallel is the parallel counterpart of
// ExpectedCommittedMC; see Estimator.ExpectedCommitted.
func ExpectedCommittedMCParallel(g *graph.Graph, r *rng.Rand, m, reps, workers int) float64 {
	return NewEstimator(g, workers).ExpectedCommitted(r, m, reps)
}

// ConflictCurveParallel samples r̄(m) at the given m values over a single
// shared CSR snapshot — the parallel counterpart of ConflictCurve.
func ConflictCurveParallel(g *graph.Graph, r *rng.Rand, ms []int, reps, workers int) []CurvePoint {
	return NewEstimator(g, workers).Curve(r, ms, reps)
}
