// Package profile computes parallelism profiles in the style of the
// Lonestar suite ([15] in the paper): for each temporal step of an
// algorithm's execution, the available parallelism is estimated as the
// expected size of a maximal independent set of the current CC graph —
// the number of tasks a clairvoyant scheduler could commit at once.
//
// The paper motivates adaptive allocation with these profiles: "Delaunay
// mesh refinement can go from no parallelism to one thousand possible
// parallel tasks in just 30 temporal steps" (§4.1), so the profile
// machinery also provides synthetic phase-shifting workloads that
// reproduce such abrupt swings for controller stress tests.
package profile

import (
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sched"
)

// Point is one step of a parallelism profile.
type Point struct {
	Step        int
	Live        int     // nodes remaining in the CC graph
	Parallelism float64 // estimated E[|maximal independent set|]
	AvgDegree   float64
}

// Profile estimates available parallelism of the drain of graph g: at
// each step a maximal independent set (estimated by misReps greedy
// random permutations) is committed and removed, exactly the definition
// used by Kulkarni et al. to chart amorphous data-parallelism.
// The mutator hook, if non-nil, lets applications regrow work.
func Profile(g *graph.Graph, r *rng.Rand, mut sched.Mutator, misReps, maxSteps int) []Point {
	return profileWorkers(g, r, mut, misReps, maxSteps, 1)
}

// ProfileParallel is Profile with the per-step MIS estimation running on
// the CSR engine: each step snapshots the current graph once and shards
// the misReps greedy permutations across workers (≤ 0 = GOMAXPROCS).
// The drain itself (commit + mutate) is unchanged.
func ProfileParallel(g *graph.Graph, r *rng.Rand, mut sched.Mutator, misReps, maxSteps, workers int) []Point {
	return profileWorkers(g, r, mut, misReps, maxSteps, workers)
}

func profileWorkers(g *graph.Graph, r *rng.Rand, mut sched.Mutator, misReps, maxSteps, workers int) []Point {
	if misReps < 1 {
		misReps = 1
	}
	var out []Point
	for step := 0; step < maxSteps && g.NumNodes() > 0; step++ {
		var par float64
		if workers == 1 {
			par = graph.ExpectedMISMonteCarlo(g, r, misReps)
		} else {
			par = graph.ExpectedMISMonteCarloParallel(g, r, misReps, workers)
		}
		out = append(out, Point{
			Step:        step,
			Live:        g.NumNodes(),
			Parallelism: par,
			AvgDegree:   g.AvgDegree(),
		})
		// Commit one maximal independent set (the clairvoyant step).
		order := g.SampleNodes(r, g.NumNodes())
		committed, _ := graph.GreedyMIS(g, order)
		for _, v := range committed {
			g.RemoveNode(v)
		}
		if mut != nil {
			mut.AfterRound(g, committed, r)
		}
	}
	return out
}

// PhaseSpec describes one phase of a synthetic phase-shifting workload.
type PhaseSpec struct {
	Rounds int     // how many controller rounds the phase lasts
	N      int     // CC graph size regenerated at phase entry
	Degree float64 // average degree of the phase's graph
}

// PhaseShifter produces a CC graph whose parallelism jumps abruptly
// between phases: entering each phase replaces the graph with a fresh
// random graph of the phase's size and degree. It implements the
// "available parallelism can vary dramatically" scenario of §1 and §4.1.
type PhaseShifter struct {
	Phases []PhaseSpec
	r      *rng.Rand
	g      *graph.Graph
	phase  int
	round  int
}

// NewPhaseShifter builds the workload; it panics on an empty phase list.
func NewPhaseShifter(r *rng.Rand, phases []PhaseSpec) *PhaseShifter {
	if len(phases) == 0 {
		panic("profile: no phases")
	}
	ps := &PhaseShifter{Phases: phases, r: r}
	ps.g = graph.RandomWithAvgDegree(r, phases[0].N, phases[0].Degree)
	return ps
}

// Graph returns the current CC graph.
func (ps *PhaseShifter) Graph() *graph.Graph { return ps.g }

// Phase returns the current phase index.
func (ps *PhaseShifter) Phase() int { return ps.phase }

// Tick advances the phase clock by one round, regenerating the graph at
// phase boundaries. It reports whether a phase transition occurred.
func (ps *PhaseShifter) Tick() bool {
	ps.round++
	if ps.phase >= len(ps.Phases) {
		return false
	}
	if ps.round < ps.Phases[ps.phase].Rounds {
		return false
	}
	ps.round = 0
	ps.phase++
	if ps.phase >= len(ps.Phases) {
		return false
	}
	spec := ps.Phases[ps.phase]
	ps.g = graph.RandomWithAvgDegree(ps.r, spec.N, spec.Degree)
	return true
}

// Done reports whether all phases have elapsed.
func (ps *PhaseShifter) Done() bool { return ps.phase >= len(ps.Phases) }
