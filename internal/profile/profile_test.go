package profile

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sched"
)

func TestProfileDrains(t *testing.T) {
	r := rng.New(1)
	g := graph.RandomGNM(r, 150, 450)
	pts := Profile(g, r, nil, 3, 1000)
	if len(pts) == 0 {
		t.Fatal("no profile points")
	}
	if g.NumNodes() != 0 {
		t.Fatalf("%d nodes left after profile", g.NumNodes())
	}
	if pts[0].Live != 150 {
		t.Fatalf("first point live = %d", pts[0].Live)
	}
	// Live counts strictly decrease with no mutator.
	for i := 1; i < len(pts); i++ {
		if pts[i].Live >= pts[i-1].Live {
			t.Fatalf("live did not decrease at step %d", i)
		}
	}
	// Parallelism estimate is at least the Turán bound at each step.
	for _, p := range pts {
		if p.Live > 0 && p.Parallelism < float64(p.Live)/(p.AvgDegree+1)*0.95 {
			t.Errorf("step %d: parallelism %v below Turán bound", p.Step, p.Parallelism)
		}
	}
}

func TestProfileWithMutatorRegrowth(t *testing.T) {
	r := rng.New(2)
	g := graph.Empty(10)
	grown := 0
	mut := sched.MutatorFunc(func(g *graph.Graph, committed []int, r *rng.Rand) {
		if grown < 50 {
			for range committed {
				g.AddNode()
				grown++
			}
		}
	})
	pts := Profile(g, r, mut, 2, 100)
	if grown != 50 {
		t.Fatalf("mutator grew %d nodes", grown)
	}
	total := 0
	for i := 0; i < len(pts); i++ {
		total++
	}
	if total < 2 {
		t.Fatal("regrowth should extend the profile")
	}
}

func TestProfileMaxSteps(t *testing.T) {
	r := rng.New(3)
	g := graph.Complete(50) // drains one node per step
	pts := Profile(g, r, nil, 1, 10)
	if len(pts) != 10 {
		t.Fatalf("profile has %d points, want maxSteps=10", len(pts))
	}
}

func TestPhaseShifter(t *testing.T) {
	r := rng.New(4)
	ps := NewPhaseShifter(r, []PhaseSpec{
		{Rounds: 3, N: 100, Degree: 2},
		{Rounds: 2, N: 500, Degree: 8},
		{Rounds: 2, N: 50, Degree: 20},
	})
	if ps.Graph().NumNodes() != 100 {
		t.Fatalf("phase 0 graph n=%d", ps.Graph().NumNodes())
	}
	transitions := 0
	for i := 0; i < 3; i++ {
		if ps.Tick() {
			transitions++
		}
	}
	if transitions != 1 || ps.Phase() != 1 {
		t.Fatalf("after 3 ticks: transitions=%d phase=%d", transitions, ps.Phase())
	}
	if ps.Graph().NumNodes() != 500 {
		t.Fatalf("phase 1 graph n=%d", ps.Graph().NumNodes())
	}
	ps.Tick()
	if !ps.Tick() {
		t.Fatal("expected transition to phase 2")
	}
	if ps.Graph().NumNodes() != 50 {
		t.Fatalf("phase 2 graph n=%d", ps.Graph().NumNodes())
	}
	ps.Tick()
	ps.Tick()
	if !ps.Done() {
		t.Fatal("all phases elapsed but not Done")
	}
	// Ticking when done is a no-op.
	if ps.Tick() {
		t.Fatal("transition after done")
	}
}

func TestPhaseShifterEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPhaseShifter(rng.New(1), nil)
}
