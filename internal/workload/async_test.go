package workload

import (
	"context"
	"strings"
	"testing"

	"repro/internal/control"
	"repro/internal/speculation"
)

// TestDrainAsyncCC: the synthetic cc workload drains barrier-free and
// its oracle verifies, with the async trajectory consistent.
func TestDrainAsyncCC(t *testing.T) {
	run, err := New("cc", Params{Size: 2000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer run.Stepper.Close()
	c, err := NewController("hybrid", ControllerParams{Rho: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := DrainAsync(context.Background(), run.Stepper, c, speculation.AsyncOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if run.Stepper.Pending() != 0 {
		t.Fatalf("%d tasks pending after async drain", run.Stepper.Pending())
	}
	if res.UsefulWork != 2000 {
		t.Fatalf("useful work %d, want 2000", res.UsefulWork)
	}
	if res.Rounds != len(res.M) || len(res.M) != len(res.R) {
		t.Fatalf("trajectory shape: rounds=%d |M|=%d |R|=%d", res.Rounds, len(res.M), len(res.R))
	}
	detail, err := run.Verify()
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !strings.Contains(detail, "graph drained") {
		t.Fatalf("verify detail: %q", detail)
	}
}

// TestDrainAsyncUnsupported: ordered workloads cannot run barrier-free.
func TestDrainAsyncUnsupported(t *testing.T) {
	if SupportsAsync("des") {
		t.Fatal("des must not advertise async support")
	}
	run, err := New("des", Params{Size: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer run.Stepper.Close()
	c, _ := NewController("hybrid", ControllerParams{Rho: 0.3})
	if _, err := DrainAsync(context.Background(), run.Stepper, c, speculation.AsyncOptions{}); err == nil {
		t.Fatal("DrainAsync on an ordered stepper did not error")
	}
}

// steadyMeanM returns the commit-weighted region mean of m: the mean
// over the trajectory entries that fall in the middle half of the
// run's commits ([25%, 75%] by cumulative commit fraction), where both
// drives are in steady state (start-up transient and end-game drain
// excluded).
func steadyMeanM(ms, commits []int) float64 {
	total := 0
	for _, c := range commits {
		total += c
	}
	if total == 0 {
		return 0
	}
	lo, hi := total/4, 3*total/4
	cum, n, sum := 0, 0, 0.0
	for i, c := range commits {
		cum += c
		if cum >= lo && cum <= hi {
			sum += float64(ms[i])
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// TestAsyncControllerEquivalence is the acceptance check for the
// sliding-window estimator: on the synthetic cc workload, the hybrid
// controller fed windowed pseudo-rounds must settle to the same
// steady-state concurrency as the same controller fed real rounds.
func TestAsyncControllerEquivalence(t *testing.T) {
	const (
		size = 4000
		seed = 11
		rho  = 0.25
	)
	build := func() *Run {
		run, err := New("cc", Params{Size: size, Seed: seed, Parallel: 4})
		if err != nil {
			t.Fatal(err)
		}
		return run
	}
	ctrl := func() control.Controller {
		c, err := NewController("hybrid", ControllerParams{Rho: rho})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	roundRun := build()
	defer roundRun.Stepper.Close()
	roundRes := Drain(context.Background(), roundRun.Stepper, ctrl(), 100000)
	if roundRun.Stepper.Pending() != 0 {
		t.Fatalf("round drive left %d pending", roundRun.Stepper.Pending())
	}

	asyncRun := build()
	defer asyncRun.Stepper.Close()
	asyncRes, err := DrainAsync(context.Background(), asyncRun.Stepper, ctrl(), speculation.AsyncOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if asyncRun.Stepper.Pending() != 0 {
		t.Fatalf("async drive left %d pending", asyncRun.Stepper.Pending())
	}

	roundM := steadyMeanM(roundRes.M, roundRes.Committed)
	asyncM := steadyMeanM(asyncRes.M, asyncRes.Committed)
	if roundM == 0 || asyncM == 0 {
		t.Fatalf("degenerate steady-state means: round %.1f async %.1f", roundM, asyncM)
	}
	ratio := asyncM / roundM
	t.Logf("steady-state mean m: round %.1f, async %.1f (ratio %.2f); conflict ratio: round %.3f async %.3f",
		roundM, asyncM, ratio, roundRes.MeanConflictRatio(), asyncRes.MeanConflictRatio())
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("async steady-state m %.1f diverges from round-mode %.1f (ratio %.2f, tolerance [0.5, 2.0])",
			asyncM, roundM, ratio)
	}
}
