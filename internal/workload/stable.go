package workload

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/speculation"
)

// The synthetic "stable" workload: a stable-conflict chain workload
// built for the colored execution mode. One conflict-keyed task per
// node of a random conflict graph commits stableRepeats times,
// respawning itself after each commit; its footprint — the node's item
// plus the incident edge items — never changes, so after a few
// speculative rounds the learned conflict graph stabilizes, gets
// colored, and the long tail of the drain runs lock-free. The chain
// counters are atomics and the commit actions touch nothing else, so
// the workload is also safe to drive barrier-free (CapAsync).

// stableRepeats is how many times each chain task commits before it
// stops respawning. Long enough that the colored phase dominates the
// drain after the learning rounds.
const stableRepeats = 24

// stableTask is one respawning chain with a fixed conflict footprint.
type stableTask struct {
	key      int64
	items    []*speculation.Item
	left     atomic.Int64
	commitFn func() // bound once at construction: no per-run closure
}

// ConflictKey implements speculation.ConflictKeyed.
func (t *stableTask) ConflictKey() int64 { return t.key }

func (t *stableTask) Run(ctx *speculation.Ctx) error {
	if err := ctx.AcquireAll(t.items...); err != nil {
		return err
	}
	if t.left.Load() > 1 {
		ctx.Spawn(t)
	}
	ctx.OnCommit(t.commitFn)
	return nil
}

// stableEdgeSeq packs a normalized conflict edge (u < v) into an item
// Seq disjoint from the node Seqs (which are plain node indices): the
// +1 keeps the high half nonzero even for u == 0.
func stableEdgeSeq(u, v int) int64 {
	if u > v {
		u, v = v, u
	}
	return (int64(u)+1)<<32 | int64(v)
}

// newStable builds the stable-conflict workload: Size chains over a
// random conflict graph of average degree Degree (default 8).
func newStable(p Params) (*Run, error) {
	d := p.Degree
	if d <= 0 {
		d = 8
	}
	r := rng.New(p.Seed)
	g := graph.RandomWithAvgDegree(r, p.Size, d)
	pick := r.Split()
	var mu sync.Mutex
	e := speculation.NewExecutor(func(n int) int {
		mu.Lock()
		defer mu.Unlock()
		return pick.Intn(n)
	})
	e.MaxParallel = p.Parallel
	e.TaskRetries = p.TaskRetries

	nodes := g.Nodes()
	nodeItems := make(map[int]*speculation.Item, len(nodes))
	for _, v := range nodes {
		nodeItems[v] = speculation.NewItem(int64(v))
	}
	edgeItems := make(map[int64]*speculation.Item)
	edgeFor := func(u, v int) *speculation.Item {
		seq := stableEdgeSeq(u, v)
		it, ok := edgeItems[seq]
		if !ok {
			it = speculation.NewItem(seq)
			edgeItems[seq] = it
		}
		return it
	}

	total := new(atomic.Int64)
	tasks := make([]*stableTask, 0, len(nodes))
	for _, v := range nodes {
		t := &stableTask{key: int64(v)}
		t.items = append(t.items, nodeItems[v])
		g.EachNeighbor(v, func(u int) {
			t.items = append(t.items, edgeFor(v, u))
		})
		t.left.Store(stableRepeats)
		tt := t
		t.commitFn = func() {
			tt.left.Add(-1)
			total.Add(1)
		}
		tasks = append(tasks, t)
		e.Add(t)
	}

	st := execStepper{e}
	return &Run{
		Name:    "stable",
		Stepper: st,
		summary: stdSummary("stable", st),
		verify: func() (string, error) {
			want := int64(len(tasks)) * stableRepeats
			if got := total.Load(); got != want {
				return "", fmt.Errorf("committed %d chain steps, want %d", got, want)
			}
			for _, t := range tasks {
				if l := t.left.Load(); l != 0 {
					return "", fmt.Errorf("chain %d has %d steps left", t.key, l)
				}
			}
			return fmt.Sprintf("chains=%d steps=%d (all chains drained exactly)",
				len(tasks), total.Load()), nil
		},
	}, nil
}
