package workload

import (
	"context"
	"testing"

	"repro/internal/faultinject"
)

// TestSpinNeverDrains: the spin workload keeps Pending constant across
// rounds — the property deadline and cancellation tests depend on.
func TestSpinNeverDrains(t *testing.T) {
	run, err := New("spin", Params{Size: 8, Seed: 1, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer run.Stepper.Close()
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		rr := run.Stepper.Round(ctx, 4)
		if rr.Committed == 0 {
			t.Fatalf("round %d committed nothing: %+v", i, rr)
		}
	}
	if p := run.Stepper.Pending(); p != 8 {
		t.Fatalf("pending %d after 20 rounds, want constant 8", p)
	}
	if detail, err := run.Verify(); err != nil || detail == "" {
		t.Fatalf("spin verify: %q, %v", detail, err)
	}
}

// TestCanceledContextStopsDrain: Drain returns at the round barrier
// once its context is canceled, even on a workload that never empties.
func TestCanceledContextStopsDrain(t *testing.T) {
	run, err := New("spin", Params{Size: 4, Seed: 1, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer run.Stepper.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c, err := NewController("hybrid", ControllerParams{Rho: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	res := Drain(ctx, run.Stepper, c, 1<<20)
	if res.Rounds != 0 {
		t.Fatalf("Drain ran %d rounds on a canceled context", res.Rounds)
	}
	// A canceled ctx also makes a direct Round call a no-op.
	if rr := run.Stepper.Round(ctx, 4); rr.Launched != 0 {
		t.Fatalf("Round launched %d under canceled ctx", rr.Launched)
	}
}

// TestCCFaultInjectionPoisonCountExact: the end-to-end determinism
// contract at the workload layer — a cc run with poison injection
// drains (degraded) with exactly PoisonPlanCount quarantined tasks.
func TestCCFaultInjectionPoisonCountExact(t *testing.T) {
	fault := &faultinject.Config{
		Seed: 77, PanicRate: 0.05, ErrorRate: 0.05, PoisonRate: 0.04,
		TransientAttempts: 2,
	}
	const size = 300
	want := fault.PoisonPlanCount(size)
	if want == 0 {
		t.Fatal("seed 77 plans no poisons at size 300; adjust the test")
	}
	for trial := 0; trial < 2; trial++ {
		run, err := New("cc", Params{
			Size: size, Seed: 9, Parallel: 4, TaskRetries: 3, Fault: fault,
		})
		if err != nil {
			t.Fatal(err)
		}
		c, _ := NewController("hybrid", ControllerParams{Rho: 0.25})
		res := Drain(context.Background(), run.Stepper, c, 1<<20)
		snap := run.Stepper.Snapshot()
		if run.Stepper.Pending() != 0 {
			t.Fatalf("trial %d: cc did not drain under injection", trial)
		}
		run.Stepper.Close()
		if snap.Poisoned != int64(want) {
			t.Fatalf("trial %d: poisoned %d, want exactly %d", trial, snap.Poisoned, want)
		}
		if snap.Launched != snap.Committed+snap.Aborted+snap.Failed {
			t.Fatalf("trial %d: unbalanced snapshot %+v", trial, snap)
		}
		if res.WastedWork == 0 {
			t.Fatalf("trial %d: injection produced no wasted work", trial)
		}
		detail, err := run.Verify()
		if err != nil {
			t.Fatalf("trial %d: degraded verify errored: %v", trial, err)
		}
		if detail == "" {
			t.Fatalf("trial %d: empty degraded verify detail", trial)
		}
	}
}

// TestFaultRejectedForAppWorkloads: only the synthetic workloads can
// host an injector.
func TestFaultRejectedForAppWorkloads(t *testing.T) {
	fault := &faultinject.Config{Seed: 1, ErrorRate: 0.1, TransientAttempts: 1}
	for _, name := range Names() {
		_, err := New(name, Params{Size: 50, Seed: 1, Fault: fault})
		if SupportsFault(name) {
			if err != nil {
				t.Errorf("%s: fault rejected: %v", name, err)
			}
		} else if err == nil {
			t.Errorf("%s: fault accepted but unsupported", name)
		}
	}
}
