package workload

import (
	"context"
	"testing"
	"time"

	"repro/internal/speculation"
)

// TestCapabilityRegistry pins the capability flags to the registry:
// the Supports* predicates must agree with the flags, CapableNames must
// agree with the predicates, and the historical sets must not drift.
func TestCapabilityRegistry(t *testing.T) {
	for _, name := range Names() {
		if SupportsFault(name) != Supports(name, CapFault) {
			t.Errorf("%s: SupportsFault disagrees with Supports(CapFault)", name)
		}
		if SupportsAsync(name) != Supports(name, CapAsync) {
			t.Errorf("%s: SupportsAsync disagrees with Supports(CapAsync)", name)
		}
		if SupportsColored(name) != Supports(name, CapColored) {
			t.Errorf("%s: SupportsColored disagrees with Supports(CapColored)", name)
		}
	}
	want := map[Capability][]string{
		CapFault:   {"cc", "spin"},
		CapAsync:   {"cc", "spin", "stable"},
		CapColored: {"mesh", "cluster", "cc", "stable"},
	}
	for c, names := range want {
		got := CapableNames(c)
		if len(got) != len(names) {
			t.Fatalf("CapableNames(%b) = %v, want %v", c, got, names)
		}
		for i := range names {
			if got[i] != names[i] {
				t.Fatalf("CapableNames(%b) = %v, want %v", c, got, names)
			}
		}
	}
	if Supports("nope", CapColored) || len(CapableNames(CapFault|CapAsync|CapColored)) != 1 {
		t.Error("capability lookups on unknown names or combined flags misbehave")
	}
}

// TestDrainColoredUnsupported: steppers without the colored drive (the
// ordered executor's) are rejected with a useful error.
func TestDrainColoredUnsupported(t *testing.T) {
	run, err := New("des", Params{Size: 60, Seed: 1, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer run.Stepper.Close()
	c, _ := NewController("hybrid", ControllerParams{Rho: 0.25})
	if _, _, err := DrainColored(context.Background(), run.Stepper, c, speculation.ColoredOptions{}); err == nil {
		t.Fatal("DrainColored accepted an ordered stepper")
	}
}

// driveColored drains the named workload in colored mode and returns
// the colored result plus the steady-state colored commits/sec —
// commits made in colored rounds over the wall-clock time those rounds
// took (round boundaries timestamped via OnRound). Zero if the drive
// never ran a colored round.
func driveColored(t *testing.T, name string, p Params) (*Run, *speculation.ColoredResult, float64) {
	t.Helper()
	run, err := New(name, p)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController("hybrid", ControllerParams{Rho: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	var coloredSecs float64
	var coloredCommits int64
	last := time.Now()
	_, cres, err := DrainColored(context.Background(), run.Stepper, c, speculation.ColoredOptions{
		OnRound: func(cr speculation.ColoredRound) {
			now := time.Now()
			if cr.Colored {
				coloredSecs += now.Sub(last).Seconds()
				coloredCommits += int64(cr.Committed)
			}
			last = now
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Stepper.Pending() != 0 {
		t.Fatalf("colored drive left %d pending", run.Stepper.Pending())
	}
	rate := 0.0
	if coloredSecs > 0 {
		rate = float64(coloredCommits) / coloredSecs
	}
	return run, cres, rate
}

// TestColoredEquivalence is the colored-mode acceptance run wired into
// `make equiv`: on the synthetic stable-conflict workload the hybrid
// drive must (a) reach the colored phase and commit the bulk of the
// work there with a ~0 colored-round conflict ratio and zero colored
// aborts, (b) still satisfy the workload oracle exactly, and (c) not
// be slower than the barrier-free async drive of the same workload —
// colored rounds eliminate the aborted work and per-task lock traffic
// async still pays.
func TestColoredEquivalence(t *testing.T) {
	p := Params{Size: 600, Seed: 11, Parallel: 4}

	run, cres, coloredRate := driveColored(t, "stable", p)
	defer run.Stepper.Close()
	if cres.Colorings == 0 || cres.ColoredRounds == 0 {
		t.Fatalf("stable workload never entered the colored phase: %+v", cres)
	}
	if cres.Fallbacks != 0 || cres.Degraded {
		t.Fatalf("stable workload tripped staleness or degraded: %+v", cres)
	}
	if cres.ColoredAborts != 0 {
		t.Fatalf("colored rounds aborted %d tasks on a stable-conflict workload", cres.ColoredAborts)
	}
	if r := cres.ColoredConflictRatio(); r != 0 {
		t.Fatalf("colored conflict ratio %v, want 0", r)
	}
	if cres.ColoredCommits*2 < cres.Committed {
		t.Fatalf("colored phase committed %d of %d — the learning phase dominated",
			cres.ColoredCommits, cres.Committed)
	}
	if detail, err := run.Verify(); err != nil {
		t.Fatalf("oracle after colored drive: %v", err)
	} else if detail == "" {
		t.Fatal("empty oracle detail")
	}

	// Steady-state throughput floor against async on identical params.
	// The benchmark (BenchmarkExecutorColored) records ≥2× on stable
	// workloads; here a plain ≥ keeps CI robust to scheduling noise.
	asyncRun, err := New("stable", p)
	if err != nil {
		t.Fatal(err)
	}
	defer asyncRun.Stepper.Close()
	c, _ := NewController("hybrid", ControllerParams{Rho: 0.25})
	start := time.Now()
	if _, err := DrainAsync(context.Background(), asyncRun.Stepper, c, speculation.AsyncOptions{}); err != nil {
		t.Fatal(err)
	}
	asyncSecs := time.Since(start).Seconds()
	if asyncRun.Stepper.Pending() != 0 {
		t.Fatalf("async drive left %d pending", asyncRun.Stepper.Pending())
	}
	asyncRate := float64(asyncRun.Stepper.Snapshot().Committed) / asyncSecs
	if coloredRate < asyncRate {
		t.Errorf("colored steady-state commits/sec %.0f below async %.0f on the stable-conflict workload",
			coloredRate, asyncRate)
	}
}

// TestColoredAppWorkloads drives the colored-capable application
// workloads in hybrid mode and checks their oracles still hold: mesh
// and cluster footprints mutate as the structures evolve, so the drive
// may never leave the speculative phase — the point is that colored
// mode costs correctness nothing on them.
func TestColoredAppWorkloads(t *testing.T) {
	for _, name := range []string{"mesh", "cluster", "cc"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			if !SupportsColored(name) {
				t.Fatalf("%s lost its CapColored flag", name)
			}
			run, cres, _ := driveColored(t, name, Params{Size: smallSize[name], Seed: 1, Parallel: 2})
			defer run.Stepper.Close()
			if cres.Degraded {
				t.Fatalf("%s degraded: its tasks must be conflict-keyed", name)
			}
			if _, err := run.Verify(); err != nil {
				t.Fatalf("oracle after colored drive: %v", err)
			}
		})
	}
}
