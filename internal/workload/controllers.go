package workload

import (
	"fmt"

	"repro/internal/control"
)

// ControllerParams configures a controller instance.
type ControllerParams struct {
	// Rho is the target conflict ratio for the adaptive controllers.
	Rho float64
	// M0 is the initial processor count (0 = 2, the paper's default).
	M0 int
	// FixedM is the processor count for the "fixed" controller.
	FixedM int
}

// ControllerNames returns the registered controller names.
func ControllerNames() []string {
	return []string{"hybrid", "model-based", "recurrence-a", "recurrence-b",
		"bisection", "aimd", "pi", "fixed"}
}

// HasController reports whether name is a registered controller.
func HasController(name string) bool {
	for _, n := range ControllerNames() {
		if n == name {
			return true
		}
	}
	return false
}

// NewController instantiates the named controller. Adaptive controllers
// require Rho in (0,1); the "fixed" controller ignores Rho and uses
// FixedM as-is.
func NewController(name string, p ControllerParams) (control.Controller, error) {
	if name == "fixed" {
		return control.Fixed{Procs: p.FixedM}, nil
	}
	if p.Rho <= 0 || p.Rho >= 1 {
		return nil, fmt.Errorf("workload: controller %q needs rho in (0,1), got %v", name, p.Rho)
	}
	m0 := p.M0
	if m0 <= 0 {
		m0 = 2
	}
	switch name {
	case "hybrid":
		cfg := control.DefaultHybridConfig(p.Rho)
		cfg.M0 = m0
		return control.NewHybrid(cfg), nil
	case "model-based":
		return control.NewModelBased(p.Rho, m0), nil
	case "recurrence-a":
		return control.NewRecurrenceA(p.Rho, m0), nil
	case "recurrence-b":
		return control.NewRecurrenceB(p.Rho, m0), nil
	case "bisection":
		return control.NewBisection(p.Rho, m0), nil
	case "aimd":
		return control.NewAIMD(p.Rho, m0), nil
	case "pi":
		return control.NewPI(p.Rho, m0), nil
	default:
		return nil, fmt.Errorf("workload: unknown controller %q", name)
	}
}
