package workload

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// smallSize picks a size per workload that drains in well under a
// second but still exercises multiple rounds.
var smallSize = map[string]int{
	"mesh":    300,
	"boruvka": 150,
	"sp":      60,
	"cluster": 120,
	"des":     100,
	"maxflow": 60,
	"cc":      300,
	"spin":    8, // never drains; skipped by the drain test, bounded elsewhere
	"stable":  64,
}

// TestEveryWorkloadDrainsAndVerifies constructs each registered
// workload, drains it under the hybrid controller, and checks the
// app-specific oracle.
func TestEveryWorkloadDrainsAndVerifies(t *testing.T) {
	for _, name := range Names() {
		name := name
		if name == "spin" {
			continue // never drains by design; covered by TestSpinNeverDrains
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			c, err := NewController("hybrid", ControllerParams{Rho: 0.25})
			if err != nil {
				t.Fatalf("controller: %v", err)
			}
			run, err := New(name, Params{Size: smallSize[name], Seed: 1, Parallel: 2})
			if err != nil {
				t.Fatalf("new: %v", err)
			}
			defer run.Stepper.Close()
			if run.Name != name {
				t.Errorf("Run.Name = %q, want %q", run.Name, name)
			}
			res := Drain(context.Background(), run.Stepper, c, 1<<20)
			if run.Stepper.Pending() != 0 {
				t.Fatalf("%d tasks pending after drain (%d rounds)", run.Stepper.Pending(), res.Rounds)
			}
			if res.Rounds < 2 {
				t.Errorf("only %d rounds — size too small to exercise the loop", res.Rounds)
			}
			detail, err := run.Verify()
			if err != nil {
				t.Errorf("verify: %v", err)
			}
			if detail == "" {
				t.Error("verify returned empty detail")
			}
			line := run.summary(res)
			if !strings.HasPrefix(line, name) {
				t.Errorf("summary %q does not start with workload name", line)
			}
			snap := run.Stepper.Snapshot()
			if snap.Launched != snap.Committed+snap.Aborted {
				t.Errorf("snapshot unbalanced: %+v", snap)
			}
		})
	}
}

func TestUnknownNamesError(t *testing.T) {
	if _, err := New("nope", Params{Size: 10}); err == nil {
		t.Error("New(nope) succeeded")
	}
	if Has("nope") {
		t.Error("Has(nope) = true")
	}
	if _, err := NewController("nope", ControllerParams{Rho: 0.25}); err == nil {
		t.Error("NewController(nope) succeeded")
	}
	if HasController("nope") {
		t.Error("HasController(nope) = true")
	}
}

func TestControllerRegistry(t *testing.T) {
	for _, name := range ControllerNames() {
		if !HasController(name) {
			t.Errorf("HasController(%q) = false", name)
		}
		p := ControllerParams{Rho: 0.25, FixedM: 8}
		c, err := NewController(name, p)
		if err != nil {
			t.Fatalf("NewController(%q): %v", name, err)
		}
		if m := c.M(); m < 1 {
			t.Errorf("%s: initial M() = %d", name, m)
		}
		c.Observe(0.5) // must not panic
	}
	// fixed honors FixedM exactly.
	c, err := NewController("fixed", ControllerParams{FixedM: 17})
	if err != nil {
		t.Fatal(err)
	}
	if c.M() != 17 {
		t.Errorf("fixed M() = %d, want 17", c.M())
	}
	// adaptive controllers reject out-of-range rho.
	for _, rho := range []float64{-0.1, 0, 1, 1.5} {
		if _, err := NewController("hybrid", ControllerParams{Rho: rho}); err == nil {
			t.Errorf("hybrid accepted rho=%v", rho)
		}
	}
}

// TestDeterministicConstruction checks the registry contract: two Runs
// built from equal Params produce identical trajectories when driven
// identically. Serial execution (Parallel=1) removes scheduling noise
// for the workloads whose round outcomes are order-dependent.
func TestDeterministicConstruction(t *testing.T) {
	drive := func() *struct {
		M, Committed []int
		R            []float64
	} {
		c, _ := NewController("hybrid", ControllerParams{Rho: 0.25})
		run, err := New("cc", Params{Size: 400, Seed: 42, Parallel: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer run.Stepper.Close()
		res := Drain(context.Background(), run.Stepper, c, 1<<20)
		return &struct {
			M, Committed []int
			R            []float64
		}{res.M, res.Committed, res.R}
	}
	a, b := drive(), drive()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two identically-seeded cc runs diverged:\n%+v\n%+v", a, b)
	}
}
