// Package workload is the registry naming every application workload
// and every processor-allocation controller behind constructor
// functions. It replaces the construction switch ladders that used to
// be duplicated across cmd/apprun and cmd/controlsim, and gives the
// specd service one place to instantiate a (workload, controller) pair
// from wire-level names.
//
// A workload instance is a Run: a Stepper that advances the speculative
// execution round by round (abstracting over the unordered and ordered
// executors), plus the app-specific verification oracle and the CLI
// report. Construction is deterministic in Params.Seed — two Runs built
// from equal Params produce identical trajectories when driven
// identically.
package workload

import (
	"context"
	"fmt"
	"io"
	"sync"

	"repro/internal/apps/boruvka"
	"repro/internal/apps/cluster"
	"repro/internal/apps/des"
	"repro/internal/apps/maxflow"
	"repro/internal/apps/mesh"
	"repro/internal/apps/sp"
	"repro/internal/control"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/speculation"
)

// Params configures a workload instance.
type Params struct {
	// Size is the workload size parameter (same meaning as apprun's
	// -size flag; n for the synthetic CC workload).
	Size int
	// Seed seeds every stochastic choice of the run.
	Seed uint64
	// Parallel is the executor worker-pool size (0 = one goroutine per
	// task, the model-faithful mode).
	Parallel int
	// Degree is the average degree of the synthetic "cc" workload's
	// random graph (0 = 16). Ignored by the application workloads.
	Degree float64
	// TaskRetries is the executor retry budget for failed (panicked or
	// errored) tasks: 0 means speculation.DefaultTaskRetries, negative
	// disables retries.
	TaskRetries int
	// Fault, when non-nil, wires deterministic fault injection around
	// every task. Only the synthetic workloads ("cc", "spin") support
	// it: the application workloads add their initial tasks during
	// construction, before an injector could intercept them.
	Fault *faultinject.Config
}

// RoundResult is one round's outcome as reported by a Stepper.
type RoundResult struct {
	Launched  int
	Committed int
	Aborted   int // conflict aborts — the controller's signal
	Failed    int // panics / non-conflict errors (rolled back)
	Poisoned  int // failures that exhausted the retry budget this round
}

// ConflictRatio is aborts over launches, the paper's r. Failures are
// excluded: an injected panic is not contention and must not throttle
// the allocation controller.
func (r RoundResult) ConflictRatio() float64 {
	if r.Launched == 0 {
		return 0
	}
	return float64(r.Aborted) / float64(r.Launched)
}

// Stepper is the round-level driving surface shared by the unordered
// and ordered executors: one call launches up to m speculative tasks
// and reports the round's outcome, and Snapshot exposes the live
// counters race-free for monitors.
type Stepper interface {
	// Pending returns the number of tasks awaiting execution.
	Pending() int
	// Round launches up to m tasks and waits for the round to finish.
	// A canceled ctx makes Round return a zero RoundResult without
	// launching; an in-flight round is never interrupted (cancellation
	// is observed at round barriers only).
	Round(ctx context.Context, m int) RoundResult
	// Snapshot returns pending count plus cumulative counters in one
	// race-safe call.
	Snapshot() speculation.Snapshot
	// Close releases executor resources (worker pool, context cache).
	Close()
}

// Run is an instantiated workload ready to be driven round by round.
type Run struct {
	Name    string
	Stepper Stepper

	summary func(res *speculation.AdaptiveResult) string
	verify  func() (string, error)
}

// Verify checks the workload's oracle once the work-set has drained,
// returning a one-line result summary (or the verification error).
func (r *Run) Verify() (string, error) { return r.verify() }

// Report writes the two-line CLI report for a completed adaptive run —
// byte-identical to the historical cmd/apprun output.
func (r *Run) Report(w io.Writer, res *speculation.AdaptiveResult) {
	fmt.Fprintln(w, r.summary(res))
	detail, err := r.Verify()
	if err != nil {
		fmt.Fprintf(w, "         VERIFY FAILED: %v\n", err)
		return
	}
	fmt.Fprintf(w, "         %s\n", detail)
}

// ReportIncomplete writes the report for a run whose drain stopped
// early (round cap or cancellation): the summary line is unchanged but
// the oracle is not consulted — a truncated run is incomplete, not
// wrong.
func (r *Run) ReportIncomplete(w io.Writer, res *speculation.AdaptiveResult, pending int) {
	fmt.Fprintln(w, r.summary(res))
	fmt.Fprintf(w, "         INCOMPLETE: %d tasks still pending (round cap or cancellation); oracle not run\n", pending)
}

// DrainHooks customizes DrainHooked, the hook-bearing form of the
// Algorithm 1 main loop.
type DrainHooks struct {
	// MaxRounds caps the drive (<= 0 means effectively unbounded).
	MaxRounds int
	// Barrier, when set, runs at every round barrier before the next
	// round launches. Returning false stops the drive there — the
	// in-flight round has already completed, so a preemption or
	// cancellation observed here costs at most one round of work.
	Barrier func(round int) bool
	// OnRound, when set, receives every completed round after the
	// controller has observed it.
	OnRound func(round, m int, rr RoundResult)
}

// DrainHooked drives the stepper under controller c until the work-set
// empties, the round cap trips, ctx is canceled, or the barrier hook
// stops it — the paper's Algorithm 1 main loop (M → Round → Observe)
// with a pause point at every round barrier. It returns the number of
// rounds executed and whether the barrier hook stopped the drive.
func DrainHooked(ctx context.Context, s Stepper, c control.Controller, h DrainHooks) (rounds int, stopped bool) {
	maxRounds := h.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 1 << 30
	}
	round := 0
	for ; round < maxRounds && s.Pending() > 0; round++ {
		if ctx.Err() != nil {
			return round, false
		}
		if h.Barrier != nil && !h.Barrier(round) {
			return round, true
		}
		m := c.M()
		rr := s.Round(ctx, m)
		c.Observe(rr.ConflictRatio())
		if h.OnRound != nil {
			h.OnRound(round, m, rr)
		}
	}
	return round, false
}

// Drain drives the stepper under controller c until the work-set
// empties, maxRounds elapse, or ctx is canceled — the paper's
// Algorithm 1 main loop, identical to speculation.RunAdaptive but
// expressed over the Stepper abstraction so ordered and unordered
// workloads share it. Failed attempts count as wasted work alongside
// aborts, but only aborts feed the controller's conflict ratio. It is
// DrainHooked with no barrier hook, accumulating the standard result.
func Drain(ctx context.Context, s Stepper, c control.Controller, maxRounds int) *speculation.AdaptiveResult {
	res := &speculation.AdaptiveResult{Controller: c.Name()}
	res.Rounds, _ = DrainHooked(ctx, s, c, DrainHooks{
		MaxRounds: maxRounds,
		OnRound: func(round, m int, rr RoundResult) {
			res.M = append(res.M, m)
			res.R = append(res.R, rr.ConflictRatio())
			res.Committed = append(res.Committed, rr.Committed)
			res.UsefulWork += rr.Committed
			res.WastedWork += rr.Aborted + rr.Failed
			res.ProcRounds += rr.Launched
		},
	})
	return res
}

// AsyncStepper is the barrier-free driving surface: steppers backed by
// the unordered executor expose its RunAsync drive. Use SupportsAsync
// to decide whether a *workload* may be driven this way — implementing
// the interface is necessary but not sufficient (an application's
// commit actions may assume round-barrier serialization).
type AsyncStepper interface {
	Stepper
	RunAsync(ctx context.Context, c control.Controller, opts speculation.AsyncOptions) *speculation.AsyncResult
}

// DrainAsync drives the stepper barrier-free under controller c until
// the work-set drains, ctx is canceled, or an options bound trips —
// the async analogue of Drain, returning the same AdaptiveResult shape
// with one entry per sliding-window sample instead of per round. The
// stepper must support async execution (ordered workloads do not).
func DrainAsync(ctx context.Context, s Stepper, c control.Controller, opts speculation.AsyncOptions) (*speculation.AdaptiveResult, error) {
	as, ok := s.(AsyncStepper)
	if !ok {
		return nil, fmt.Errorf("workload: %T does not support barrier-free execution", s)
	}
	ar := as.RunAsync(ctx, c, opts)
	res := &speculation.AdaptiveResult{Controller: c.Name()}
	for _, sm := range ar.Trajectory {
		res.M = append(res.M, sm.M)
		res.R = append(res.R, sm.R)
		res.Committed = append(res.Committed, sm.Committed)
	}
	res.Rounds = ar.Samples
	res.UsefulWork = int(ar.Committed)
	res.WastedWork = int(ar.Aborted + ar.Failed)
	res.ProcRounds = int(ar.Launched)
	return res, nil
}

// ColoredStepper is the hybrid speculative→colored driving surface:
// steppers backed by the unordered executor expose its RunColored
// drive. Use SupportsColored to decide whether a *workload* may be
// driven this way — implementing the interface is necessary but not
// sufficient (the workload's tasks must be conflict-keyed and its
// operators cautious, see CapColored).
type ColoredStepper interface {
	Stepper
	RunColored(ctx context.Context, c control.Controller, opts speculation.ColoredOptions) *speculation.ColoredResult
}

// DrainColored drives the stepper in hybrid speculative→colored mode
// until the work-set drains, ctx is canceled, or an options bound
// trips. It returns the per-round trajectory in the shared
// AdaptiveResult shape (colored super-rounds appear with their launch
// count as M and their ~0 conflict ratio as R) plus the colored-phase
// statistics. A caller-provided opts.OnRound still fires for every
// round.
func DrainColored(ctx context.Context, s Stepper, c control.Controller, opts speculation.ColoredOptions) (*speculation.AdaptiveResult, *speculation.ColoredResult, error) {
	cst, ok := s.(ColoredStepper)
	if !ok {
		return nil, nil, fmt.Errorf("workload: %T does not support colored execution", s)
	}
	res := &speculation.AdaptiveResult{Controller: c.Name()}
	user := opts.OnRound
	opts.OnRound = func(cr speculation.ColoredRound) {
		res.M = append(res.M, cr.M)
		res.R = append(res.R, cr.R)
		res.Committed = append(res.Committed, cr.Committed)
		if user != nil {
			user(cr)
		}
	}
	cres := cst.RunColored(ctx, c, opts)
	res.Rounds = cres.Rounds
	res.UsefulWork = int(cres.Committed)
	res.WastedWork = int(cres.Aborted + cres.Failed)
	res.ProcRounds = int(cres.Launched)
	return res, cres, nil
}

// execStepper adapts the unordered executor.
type execStepper struct{ e *speculation.Executor }

func (s execStepper) Pending() int { return s.e.Pending() }
func (s execStepper) Round(ctx context.Context, m int) RoundResult {
	if ctx.Err() != nil {
		return RoundResult{}
	}
	st := s.e.Round(m)
	return RoundResult{
		Launched:  st.Launched,
		Committed: st.Committed,
		Aborted:   st.Aborted,
		Failed:    st.Failed,
		Poisoned:  st.Poisoned,
	}
}
func (s execStepper) Snapshot() speculation.Snapshot { return s.e.Snapshot() }
func (s execStepper) Close()                         { s.e.Close() }
func (s execStepper) RunAsync(ctx context.Context, c control.Controller, opts speculation.AsyncOptions) *speculation.AsyncResult {
	return s.e.RunAsync(ctx, c, opts)
}
func (s execStepper) RunColored(ctx context.Context, c control.Controller, opts speculation.ColoredOptions) *speculation.ColoredResult {
	return s.e.RunColored(ctx, c, opts)
}

// orderedStepper adapts the ordered executor; aborted counts conflicts
// plus premature executions, matching OrderedRoundStats.ConflictRatio.
type orderedStepper struct{ e *speculation.OrderedExecutor }

func (s orderedStepper) Pending() int { return s.e.Pending() }
func (s orderedStepper) Round(ctx context.Context, m int) RoundResult {
	if ctx.Err() != nil {
		return RoundResult{}
	}
	st := s.e.Round(m)
	return RoundResult{
		Launched:  st.Launched,
		Committed: st.Committed,
		Aborted:   st.Aborted(),
		Failed:    st.Failed,
		Poisoned:  st.Poisoned,
	}
}
func (s orderedStepper) Snapshot() speculation.Snapshot { return s.e.Snapshot() }
func (s orderedStepper) Close()                         { s.e.Close() }

// stdSummary is the report line shared by the unordered workloads.
func stdSummary(name string, s Stepper) func(res *speculation.AdaptiveResult) string {
	return func(res *speculation.AdaptiveResult) string {
		snap := s.Snapshot()
		return fmt.Sprintf("%-8s rounds=%-6d committed=%-7d aborted=%-6d conflict-ratio=%.3f mean-m=%.1f",
			name, res.Rounds, snap.Committed, snap.Aborted, snap.ConflictRatio(), meanM(res))
	}
}

func meanM(res *speculation.AdaptiveResult) float64 {
	if len(res.M) == 0 {
		return 0
	}
	s := 0.0
	for _, m := range res.M {
		s += float64(m)
	}
	return s / float64(len(res.M))
}

// Capability flags a registry entry declares about its workload. They
// replace the hardcoded name lists the Supports* predicates used to
// carry: adding a workload now states its capabilities next to its
// constructor instead of editing predicates scattered across the file.
type Capability uint8

const (
	// CapFault: the workload's tasks enter the executor after the
	// fault-injection hook is in place, so WrapTask can intercept them.
	// The application workloads add their initial tasks during
	// construction and cannot carry this flag.
	CapFault Capability = 1 << iota
	// CapAsync: the workload may be driven barrier-free. Its commit
	// actions guard their own shared state, so they are safe to run as
	// tasks settle rather than at a round barrier.
	CapAsync
	// CapColored: the workload may be driven in hybrid
	// speculative→colored mode. Its tasks are conflict-keyed
	// (speculation.ConflictKeyed) and its operators follow the cautious
	// contract colored execution relies on: the parallel phase only
	// reads shared state, and mutations are deferred to serially-run,
	// re-validating commit actions.
	CapColored
)

// builders maps workload names to constructors and their capability
// flags, in registry order.
var builders = []struct {
	name  string
	caps  Capability
	build func(Params) (*Run, error)
}{
	{"mesh", CapColored, newMesh},
	{"boruvka", 0, newBoruvka},
	{"sp", 0, newSP},
	{"cluster", CapColored, newCluster},
	{"des", 0, newDES},
	{"maxflow", 0, newMaxflow},
	{"cc", CapFault | CapAsync | CapColored, newCC},
	{"spin", CapFault | CapAsync, newSpin},
	{"stable", CapAsync | CapColored, newStable},
}

// Names returns the registered workload names in registry order.
func Names() []string {
	out := make([]string, len(builders))
	for i, b := range builders {
		out[i] = b.name
	}
	return out
}

// Has reports whether name is a registered workload.
func Has(name string) bool {
	for _, b := range builders {
		if b.name == name {
			return true
		}
	}
	return false
}

// Supports reports whether the named workload carries every capability
// in c. Unknown names support nothing.
func Supports(name string, c Capability) bool {
	for _, b := range builders {
		if b.name == name {
			return b.caps&c == c
		}
	}
	return false
}

// CapableNames returns the registered workloads carrying every
// capability in c, in registry order — error messages list them so the
// set never drifts from the registry.
func CapableNames(c Capability) []string {
	var out []string
	for _, b := range builders {
		if b.caps&c == c {
			out = append(out, b.name)
		}
	}
	return out
}

// SupportsFault reports whether the named workload can host fault
// injection (its tasks enter the executor after WrapTask is set).
func SupportsFault(name string) bool { return Supports(name, CapFault) }

// SupportsAsync reports whether the named workload can be driven
// barrier-free. The application workloads' commit actions assume the
// round barrier serializes them against all speculation; capable
// workloads guard their shared state themselves, so their commit
// actions are safe to run as tasks settle.
func SupportsAsync(name string) bool { return Supports(name, CapAsync) }

// SupportsColored reports whether the named workload can be driven in
// hybrid speculative→colored mode (conflict-keyed tasks, cautious
// operators — see CapColored).
func SupportsColored(name string) bool { return Supports(name, CapColored) }

// New instantiates the named workload. Construction builds the full
// input (mesh, graph, formula, …), so it can be deferred until a job
// actually runs.
func New(name string, p Params) (*Run, error) {
	for _, b := range builders {
		if b.name == name {
			if p.Fault != nil && !SupportsFault(name) {
				return nil, fmt.Errorf("workload: %q does not support fault injection", name)
			}
			return b.build(p)
		}
	}
	return nil, fmt.Errorf("workload: unknown workload %q", name)
}

// applyFault wires an injector into e, clamping TransientAttempts to
// the executor's retry budget so a transient fault can never exhaust
// it and accidentally poison.
func applyFault(e *speculation.Executor, cfg *faultinject.Config) error {
	if cfg == nil {
		return nil
	}
	c := *cfg
	budget := e.TaskRetries
	if budget == 0 {
		budget = speculation.DefaultTaskRetries
	}
	if budget < 0 {
		budget = 0
	}
	if c.TransientAttempts > budget {
		c.TransientAttempts = budget
	}
	in, err := faultinject.New(c)
	if err != nil {
		return err
	}
	e.WrapTask = in.WrapTask
	return nil
}

func newMesh(p Params) (*Run, error) {
	r := rng.New(p.Seed)
	m := mesh.NewSquare(0, 1)
	for i := 0; i < p.Size/10; i++ {
		m.Insert(mesh.Point{X: 0.01 + 0.98*r.Float64(), Y: 0.01 + 0.98*r.Float64()})
	}
	q := mesh.Quality{MaxArea: 1.0 / float64(p.Size)}
	ref := mesh.NewSpeculativeRefiner(m, q, func(n int) int { return r.Intn(n) })
	ref.Executor().MaxParallel = p.Parallel
	ref.Executor().TaskRetries = p.TaskRetries
	st := execStepper{ref.Executor()}
	return &Run{
		Name:    "mesh",
		Stepper: st,
		summary: stdSummary("mesh", st),
		verify: func() (string, error) {
			return fmt.Sprintf("inserted=%d triangles=%d bad-remaining=%d",
				ref.Inserted, m.NumTriangles(), len(m.BadTriangles(q))), nil
		},
	}, nil
}

func newBoruvka(p Params) (*Run, error) {
	r := rng.New(p.Seed)
	g := boruvka.NewRandomConnected(r, p.Size, p.Size*3)
	s := boruvka.NewSpeculativeMSF(g, func(n int) int { return r.Intn(n) })
	s.Executor().MaxParallel = p.Parallel
	s.Executor().TaskRetries = p.TaskRetries
	st := execStepper{s.Executor()}
	return &Run{
		Name:    "boruvka",
		Stepper: st,
		summary: stdSummary("boruvka", st),
		verify: func() (string, error) {
			msf := s.Result()
			if err := boruvka.Verify(g, msf); err != nil {
				return "", err
			}
			return fmt.Sprintf("msf-edges=%d weight=%.3f (verified against Kruskal)",
				len(msf.Edges), msf.Weight), nil
		},
	}, nil
}

func newSP(p Params) (*Run, error) {
	r := rng.New(p.Seed)
	f := sp.NewRandom3SAT(r, p.Size, int(float64(p.Size)*2.5))
	state := sp.NewState(f, r.Split())
	s := sp.NewSpeculativeSP(state, 1e-4, func(n int) int { return r.Intn(n) })
	s.Executor().MaxParallel = p.Parallel
	s.Executor().TaskRetries = p.TaskRetries
	st := execStepper{s.Executor()}
	return &Run{
		Name:    "sp",
		Stepper: st,
		summary: stdSummary("sp", st),
		verify: func() (string, error) {
			return fmt.Sprintf("clause-updates=%d final-sweep-residual=%.2g",
				s.Updates, state.Sweep()), nil
		},
	}, nil
}

func newCluster(p Params) (*Run, error) {
	r := rng.New(p.Seed)
	cl := cluster.New(cluster.RandomPoints(r, p.Size))
	s := cluster.NewSpeculative(cl, 1, func(n int) int { return r.Intn(n) })
	s.Executor().MaxParallel = p.Parallel
	s.Executor().TaskRetries = p.TaskRetries
	st := execStepper{s.Executor()}
	return &Run{
		Name:    "cluster",
		Stepper: st,
		summary: stdSummary("cluster", st),
		verify: func() (string, error) {
			if err := cl.CheckDendrogram(p.Size); err != nil {
				return "", err
			}
			return fmt.Sprintf("merges=%d clusters-left=%d (dendrogram verified)",
				len(cl.Merges), cl.NumClusters()), nil
		},
	}, nil
}

func newDES(p Params) (*Run, error) {
	// Ordered workload (§5 future work): events commit chronologically.
	means := []float64{0.2, 0.15, 0.25, 0.2, 0.1, 0.3}
	net := des.NewTandem(p.Seed, means...)
	sim := des.NewSpeculativeSim(net, p.Size/2, 0.05)
	sim.Executor().MaxParallel = p.Parallel
	sim.Executor().TaskRetries = p.TaskRetries
	st := orderedStepper{sim.Executor()}
	return &Run{
		Name:    "des",
		Stepper: st,
		summary: func(res *speculation.AdaptiveResult) string {
			e := sim.Executor()
			return fmt.Sprintf("%-8s rounds=%-6d committed=%-7d conflicts=%-5d premature=%-6d wasted=%.3f",
				"des", res.Rounds, e.TotalCommitted(), e.TotalConflicts(), e.TotalPremature(),
				e.OverallConflictRatio())
		},
		verify: func() (string, error) {
			if err := sim.State().CheckComplete(); err != nil {
				return "", err
			}
			oracle := des.RunSequential(net, p.Size/2, 0.05)
			m1, s1 := sim.State().MakespanAndThroughput()
			m2, s2 := oracle.MakespanAndThroughput()
			if s1 != s2 || m1 != m2 {
				return "", fmt.Errorf("(%.4f,%d) vs oracle (%.4f,%d)", m1, s1, m2, s2)
			}
			return fmt.Sprintf("served=%d makespan=%.2f (bit-identical to sequential oracle)", s1, m1), nil
		},
	}, nil
}

func newMaxflow(p Params) (*Run, error) {
	r := rng.New(p.Seed)
	net := maxflow.RandomNetwork(r, p.Size/2, p.Size*2, 50)
	oracle := maxflow.EdmondsKarp(net.Clone(), 0, net.N-1)
	s := maxflow.NewSpeculativePR(net, 0, net.N-1, func(n int) int { return r.Intn(n) })
	s.Executor().MaxParallel = p.Parallel
	s.Executor().TaskRetries = p.TaskRetries
	st := execStepper{s.Executor()}
	return &Run{
		Name:    "maxflow",
		Stepper: st,
		summary: stdSummary("maxflow", st),
		verify: func() (string, error) {
			if got := s.FlowValue(); got != oracle {
				return "", fmt.Errorf("flow %d vs oracle %d", got, oracle)
			}
			return fmt.Sprintf("max-flow=%d (verified against Edmonds-Karp)", s.FlowValue()), nil
		},
	}, nil
}

// newCC builds the synthetic CC-graph workload of the paper's model: one
// task per node, adjacent tasks conflict, committed tasks leave the
// graph — the draining workload cmd/controlsim's efficiency experiments
// run. The construction sequence (rng, graph, executor seed split)
// matches those experiments exactly; the executor is built inline
// rather than via speculation.NewGraphExecutor so the fault-injection
// hook is in place before Populate adds the node tasks.
func newCC(p Params) (*Run, error) {
	d := p.Degree
	if d <= 0 {
		d = 16
	}
	r := rng.New(p.Seed)
	g := graph.RandomWithAvgDegree(r, p.Size, d)
	wl := speculation.NewGraphWorkload(g)
	pick := r.Split()
	var mu sync.Mutex
	e := speculation.NewExecutor(func(n int) int {
		mu.Lock()
		defer mu.Unlock()
		return pick.Intn(n)
	})
	e.MaxParallel = p.Parallel
	e.TaskRetries = p.TaskRetries
	if err := applyFault(e, p.Fault); err != nil {
		e.Close()
		return nil, err
	}
	wl.Populate(e)
	st := execStepper{e}
	return &Run{
		Name:    "cc",
		Stepper: st,
		summary: stdSummary("cc", st),
		verify: func() (string, error) {
			if left := wl.Graph().NumNodes(); left > 0 {
				if e.TotalPoisoned() > 0 {
					return fmt.Sprintf("nodes-processed=%d poisoned=%d (degraded: quarantined tasks left %d nodes unprocessed)",
						p.Size-left, e.TotalPoisoned(), left), nil
				}
				return "", fmt.Errorf("%d nodes unprocessed", left)
			}
			return fmt.Sprintf("nodes-processed=%d (graph drained)", p.Size), nil
		},
	}, nil
}

// newSpin builds a synthetic workload that never drains: every task
// commits and respawns itself, keeping Pending constant forever. It
// exists to exercise deadlines, cancellation, and watchdogs — anything
// that must terminate a job the workload itself never will.
func newSpin(p Params) (*Run, error) {
	n := p.Size
	if n <= 0 {
		n = 1
	}
	e := speculation.NewExecutor(nil)
	e.MaxParallel = p.Parallel
	e.TaskRetries = p.TaskRetries
	if err := applyFault(e, p.Fault); err != nil {
		e.Close()
		return nil, err
	}
	var spinTask speculation.TaskFunc
	spinTask = func(ctx *speculation.Ctx) error {
		ctx.Spawn(spinTask)
		return nil
	}
	for i := 0; i < n; i++ {
		e.Add(spinTask)
	}
	st := execStepper{e}
	return &Run{
		Name:    "spin",
		Stepper: st,
		summary: stdSummary("spin", st),
		verify: func() (string, error) {
			return fmt.Sprintf("spin never drains by design (pending=%d)", e.Pending()), nil
		},
	}, nil
}
