// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used throughout the repository.
//
// All experiments in this repository are seeded: given the same seed they
// produce bit-identical results, which is essential for reproducing the
// paper's figures and for writing meaningful regression tests. The
// generator is xoshiro256** (Blackman & Vigna), seeded through splitmix64,
// the standard recommendation for initializing xoshiro state.
//
// The package intentionally mirrors a subset of math/rand's API so call
// sites read naturally, but adds Split, which derives an independent child
// stream — the mechanism by which concurrent workers obtain private
// generators without locking.
package rng

import "math/bits"

// splitmix64 advances a 64-bit state and returns the next output. It is
// used both to seed xoshiro and to implement Split.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a deterministic xoshiro256** generator. It is NOT safe for
// concurrent use; use Split to derive per-goroutine generators.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed. Any seed value,
// including zero, yields a well-mixed nonzero state.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	return r
}

// Split derives a child generator whose stream is independent of the
// parent's future output for all practical purposes. The parent advances
// by four draws.
func (r *Rand) Split() *Rand {
	c := &Rand{}
	for i := range c.s {
		sm := r.Uint64()
		c.s[i] = splitmix64(&sm)
	}
	// Guard against the (astronomically unlikely) all-zero state, which
	// is the single fixed point of xoshiro.
	if c.s[0]|c.s[1]|c.s[2]|c.s[3] == 0 {
		c.s[0] = 0x9e3779b97f4a7c15
	}
	return c
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// It uses Lemire's multiply-shift rejection method, which is unbiased.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	bound := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			hi, lo = bits.Mul64(r.Uint64(), bound)
		}
	}
	return int(hi)
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (r *Rand) Bool() bool {
	return r.Uint64()&1 == 1
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			// Box-Muller polar transform; discard the second variate
			// to keep the generator free of hidden state.
			return u * sqrt(-2*logf(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -logf(u)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// PermPrefix returns a uniformly random ordered sample of m distinct
// values from [0, n) — the length-m prefix of a random permutation, as
// used by the paper's scheduler model. It runs in O(m) time and O(m)
// extra space using a sparse partial Fisher–Yates shuffle.
func (r *Rand) PermPrefix(n, m int) []int {
	if m > n {
		panic("rng: PermPrefix with m > n")
	}
	if m < 0 {
		panic("rng: PermPrefix with negative m")
	}
	// displaced maps indices whose "virtual array" value differs from
	// the identity; only O(m) entries are ever created.
	displaced := make(map[int]int, m)
	out := make([]int, m)
	for i := 0; i < m; i++ {
		j := i + r.Intn(n-i)
		vj, ok := displaced[j]
		if !ok {
			vj = j
		}
		vi, ok := displaced[i]
		if !ok {
			vi = i
		}
		out[i] = vj
		displaced[j] = vi
	}
	return out
}

// Shuffle permutes the n elements using the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns m distinct values from [0, n) in random order.
// Convenience alias for PermPrefix.
func (r *Rand) Sample(n, m int) []int { return r.PermPrefix(n, m) }
