package rng

import mrand "math/rand"

// source adapts Rand to math/rand.Source64 so testing/quick property tests
// can be driven from the repository's deterministic generator.
type source struct{ r *Rand }

func (s source) Int63() int64    { return s.r.Int63() }
func (s source) Uint64() uint64  { return s.r.Uint64() }
func (s source) Seed(seed int64) { *s.r = *New(uint64(seed)) }

// stdRandFor wraps r as a *math/rand.Rand for use with testing/quick.
func stdRandFor(r *Rand) *mrand.Rand { return mrand.New(source{r}) }
