package rng

import "math"

// Thin wrappers keep the hot functions in rng.go free of package-qualified
// calls; they also pin the exact stdlib functions the distributions rely on.
func sqrt(x float64) float64 { return math.Sqrt(x) }
func logf(x float64) float64 { return math.Log(x) }
