package rng

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		t.Fatal("zero seed produced all-zero state")
	}
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero-seeded generator repeated values: %d distinct of 100", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child and parent streams should not collide.
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			t.Fatalf("parent and child emitted same value at draw %d", i)
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	c1 := New(9).Split()
	c2 := New(9).Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		sorted := append([]int(nil), p...)
		sort.Ints(sorted)
		for i, v := range sorted {
			if v != i {
				t.Fatalf("Perm(%d) is not a permutation: %v", n, p)
			}
		}
	}
}

func TestPermPrefixDistinct(t *testing.T) {
	r := New(17)
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%500) + 1
		m := int(mRaw) % (n + 1)
		rr := New(seed)
		p := rr.PermPrefix(n, m)
		if len(p) != m {
			return false
		}
		seen := map[int]bool{}
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: stdRandFor(r)}); err != nil {
		t.Fatal(err)
	}
}

func TestPermPrefixFullIsPermutation(t *testing.T) {
	r := New(19)
	const n = 50
	p := r.PermPrefix(n, n)
	sorted := append([]int(nil), p...)
	sort.Ints(sorted)
	for i, v := range sorted {
		if v != i {
			t.Fatalf("PermPrefix(n, n) not a permutation: %v", p)
		}
	}
}

// TestPermPrefixUniformFirst verifies the first element of the prefix is
// uniform over [0, n) — the property the scheduler model depends on.
func TestPermPrefixUniformFirst(t *testing.T) {
	r := New(23)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.PermPrefix(n, 3)[0]]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("first-element bucket %d: got %d want ~%.0f", i, c, want)
		}
	}
}

// TestPermPrefixPairUniform checks that unordered pairs from PermPrefix(n,2)
// are uniform — exercises the displaced-map bookkeeping.
func TestPermPrefixPairUniform(t *testing.T) {
	r := New(29)
	const n, draws = 6, 90000
	counts := map[[2]int]int{}
	for i := 0; i < draws; i++ {
		p := r.PermPrefix(n, 2)
		a, b := p[0], p[1]
		if a == b {
			t.Fatal("pair with repeated element")
		}
		if a > b {
			a, b = b, a
		}
		counts[[2]int{a, b}]++
	}
	pairs := n * (n - 1) / 2
	want := float64(draws) / float64(pairs)
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("pair %v: got %d want ~%.0f", k, c, want)
		}
	}
	if len(counts) != pairs {
		t.Errorf("saw %d distinct pairs, want %d", len(counts), pairs)
	}
}

func TestShuffle(t *testing.T) {
	r := New(31)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	for i, v := range sorted {
		if v != i {
			t.Fatalf("Shuffle lost elements: %v", xs)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(37)
	const draws = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < draws; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(41)
	const draws = 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkPermPrefix(b *testing.B) {
	r := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.PermPrefix(100000, 64)
	}
}

func TestBoolRoughlyFair(t *testing.T) {
	r := New(43)
	trues := 0
	const draws = 10000
	for i := 0; i < draws; i++ {
		if r.Bool() {
			trues++
		}
	}
	if trues < draws*45/100 || trues > draws*55/100 {
		t.Fatalf("Bool: %d/%d true", trues, draws)
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(44)
	for i := 0; i < 1000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}

func TestSampleAliasesPermPrefix(t *testing.T) {
	a := New(45)
	b := New(45)
	s := a.Sample(100, 7)
	p := b.PermPrefix(100, 7)
	for i := range s {
		if s[i] != p[i] {
			t.Fatal("Sample diverges from PermPrefix")
		}
	}
}

func TestIntnRejectionPath(t *testing.T) {
	// n just below a power of two maximizes the Lemire rejection rate;
	// exercise it heavily for range correctness.
	r := New(46)
	n := (1 << 62) + 12345
	for i := 0; i < 5000; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("out of range: %d", v)
		}
	}
}

func TestPermPrefixPanics(t *testing.T) {
	r := New(47)
	for _, fn := range []func(){
		func() { r.PermPrefix(3, 4) },
		func() { r.PermPrefix(3, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
