// Package trace renders experiment output: TSV tables for figure
// regeneration (each table matches one paper figure's series) and
// fixed-width ASCII plots for terminal inspection. Keeping the format
// plumbing here keeps the experiment code in cmd/ declarative.
package trace

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a column-oriented data table with a fixed header.
type Table struct {
	Name    string
	Headers []string
	Rows    [][]float64
}

// NewTable allocates a table with the given column headers.
func NewTable(name string, headers ...string) *Table {
	return &Table{Name: name, Headers: headers}
}

// AddRow appends one row; the cell count must match the header count.
func (t *Table) AddRow(cells ...float64) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("trace: row has %d cells, table %q has %d columns",
			len(cells), t.Name, len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// WriteTSV emits the table as tab-separated values with a comment header.
func (t *Table) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.Name); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Join(t.Headers, "\t")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = formatCell(v)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, "\t")); err != nil {
			return err
		}
	}
	return nil
}

func formatCell(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.6g", v)
}

// Column returns the values of column i.
func (t *Table) Column(i int) []float64 {
	out := make([]float64, len(t.Rows))
	for r, row := range t.Rows {
		out[r] = row[i]
	}
	return out
}

// ASCIIPlot renders series as a crude fixed-size scatter/line chart for
// terminal output. xs is shared; each series is a labelled y-vector.
type ASCIIPlot struct {
	Width, Height int
	XLabel        string
	YLabel        string
	xs            []float64
	series        []plotSeries
}

type plotSeries struct {
	label string
	ys    []float64
	mark  byte
}

var marks = []byte{'*', '+', 'o', 'x', '#', '@'}

// NewASCIIPlot allocates a plot canvas (sensible minimums enforced).
func NewASCIIPlot(width, height int) *ASCIIPlot {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	return &ASCIIPlot{Width: width, Height: height}
}

// SetX sets the shared x-vector.
func (p *ASCIIPlot) SetX(xs []float64) { p.xs = xs }

// AddSeries registers a labelled y-vector; its length must match xs.
func (p *ASCIIPlot) AddSeries(label string, ys []float64) {
	if len(ys) != len(p.xs) {
		panic(fmt.Sprintf("trace: series %q has %d points, x-axis has %d",
			label, len(ys), len(p.xs)))
	}
	p.series = append(p.series, plotSeries{
		label: label,
		ys:    ys,
		mark:  marks[len(p.series)%len(marks)],
	})
}

// Render draws the plot to w.
func (p *ASCIIPlot) Render(w io.Writer) error {
	if len(p.xs) == 0 || len(p.series) == 0 {
		_, err := fmt.Fprintln(w, "(empty plot)")
		return err
	}
	xmin, xmax := minMax(p.xs)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range p.series {
		lo, hi := minMax(s.ys)
		ymin = math.Min(ymin, lo)
		ymax = math.Max(ymax, hi)
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, p.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", p.Width))
	}
	for _, s := range p.series {
		for i, x := range p.xs {
			cx := int(math.Round((x - xmin) / (xmax - xmin) * float64(p.Width-1)))
			cy := int(math.Round((s.ys[i] - ymin) / (ymax - ymin) * float64(p.Height-1)))
			row := p.Height - 1 - cy
			grid[row][cx] = s.mark
		}
	}
	if _, err := fmt.Fprintf(w, "%10.4g ┤\n", ymax); err != nil {
		return err
	}
	for _, row := range grid {
		if _, err := fmt.Fprintf(w, "%10s │%s\n", "", string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%10.4g └%s\n", ymin, strings.Repeat("─", p.Width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%10s  %-10.4g%*s%10.4g\n", "", xmin, p.Width-20, "", xmax); err != nil {
		return err
	}
	for _, s := range p.series {
		if _, err := fmt.Fprintf(w, "%10s  %c = %s\n", "", s.mark, s.label); err != nil {
			return err
		}
	}
	if p.XLabel != "" || p.YLabel != "" {
		if _, err := fmt.Fprintf(w, "%10s  x: %s, y: %s\n", "", p.XLabel, p.YLabel); err != nil {
			return err
		}
	}
	return nil
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}
