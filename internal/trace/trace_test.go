package trace

import (
	"strings"
	"testing"
)

func TestTableTSV(t *testing.T) {
	tbl := NewTable("fig2", "m", "ratio")
	tbl.AddRow(1, 0)
	tbl.AddRow(10, 0.123456789)
	var sb strings.Builder
	if err := tbl.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	if lines[0] != "# fig2" || lines[1] != "m\tratio" {
		t.Fatalf("header wrong: %q %q", lines[0], lines[1])
	}
	if lines[2] != "1\t0" {
		t.Fatalf("integer row formatting: %q", lines[2])
	}
	if !strings.HasPrefix(lines[3], "10\t0.123457") {
		t.Fatalf("float row formatting: %q", lines[3])
	}
}

func TestTableRowMismatchPanics(t *testing.T) {
	tbl := NewTable("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tbl.AddRow(1)
}

func TestTableColumn(t *testing.T) {
	tbl := NewTable("x", "a", "b")
	tbl.AddRow(1, 2)
	tbl.AddRow(3, 4)
	col := tbl.Column(1)
	if len(col) != 2 || col[0] != 2 || col[1] != 4 {
		t.Fatalf("Column = %v", col)
	}
}

func TestASCIIPlotRenders(t *testing.T) {
	p := NewASCIIPlot(40, 10)
	xs := []float64{0, 1, 2, 3, 4}
	p.SetX(xs)
	p.AddSeries("linear", []float64{0, 1, 2, 3, 4})
	p.AddSeries("quadratic", []float64{0, 1, 4, 9, 16})
	var sb strings.Builder
	if err := p.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "linear") || !strings.Contains(out, "quadratic") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("marks missing")
	}
}

func TestASCIIPlotEmpty(t *testing.T) {
	p := NewASCIIPlot(40, 10)
	var sb strings.Builder
	if err := p.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "empty") {
		t.Fatal("empty plot should say so")
	}
}

func TestASCIIPlotLengthMismatchPanics(t *testing.T) {
	p := NewASCIIPlot(40, 10)
	p.SetX([]float64{1, 2, 3})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.AddSeries("bad", []float64{1})
}

func TestASCIIPlotConstantSeries(t *testing.T) {
	p := NewASCIIPlot(30, 6)
	p.SetX([]float64{1, 1, 1})
	p.AddSeries("flat", []float64{5, 5, 5})
	var sb strings.Builder
	if err := p.Render(&sb); err != nil {
		t.Fatal(err) // degenerate ranges must not divide by zero
	}
}

// errWriter fails after n successful writes, exercising error paths.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errFull
	}
	w.n--
	return len(p), nil
}

var errFull = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "writer full" }

func TestWriteTSVPropagatesErrors(t *testing.T) {
	tbl := NewTable("x", "a")
	tbl.AddRow(1)
	for n := 0; n < 3; n++ {
		if err := tbl.WriteTSV(&errWriter{n: n}); err == nil {
			t.Errorf("n=%d: error swallowed", n)
		}
	}
}

func TestRenderPropagatesErrors(t *testing.T) {
	p := NewASCIIPlot(30, 6)
	p.SetX([]float64{1, 2})
	p.AddSeries("s", []float64{1, 2})
	p.XLabel = "x"
	p.YLabel = "y"
	for n := 0; n < 6; n++ {
		if err := p.Render(&errWriter{n: n}); err == nil {
			t.Errorf("n=%d: error swallowed", n)
		}
	}
	// A fully working writer with labels covers the label branch.
	var sb strings.Builder
	if err := p.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "x: x, y: y") {
		t.Error("axis labels missing")
	}
}

func TestNewASCIIPlotClampsMinimums(t *testing.T) {
	p := NewASCIIPlot(1, 1)
	if p.Width < 20 || p.Height < 5 {
		t.Fatalf("minimums not enforced: %dx%d", p.Width, p.Height)
	}
}
