// Fault-path coverage for the journal through the injectable
// filesystem seam: fsync failure mid-group-commit, ENOSPC during
// segment rotation, and ENOSPC during snapshot compaction. Each case
// asserts the core durability contract — no acknowledged record is
// ever torn or lost — and that the journal re-opens cleanly once the
// fault clears.
//
// External test package: faultinject imports vfs alongside journal, so
// these tests cannot live in package journal without a cycle.
package journal_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/journal"
)

// replayAll re-opens dir and returns the replayed record payloads.
func replayAll(t *testing.T, dir string, opts journal.Options) [][]byte {
	t.Helper()
	rep, err := journal.Replay(dir, opts)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return rep.Records
}

// assertContains fails unless every record in want appears in got
// (acknowledged records must survive; unacknowledged extras may).
func assertContains(t *testing.T, got [][]byte, want map[string]bool) {
	t.Helper()
	have := make(map[string]bool, len(got))
	for _, r := range got {
		have[string(r)] = true
	}
	for rec := range want {
		if !have[rec] {
			t.Errorf("acknowledged record %q lost after fault", rec)
		}
	}
}

func TestJournalFsyncErrorMidGroupCommit(t *testing.T) {
	dir := t.TempDir()
	ffs := faultinject.NewFaultFS(nil)
	opts := journal.Options{Fsync: journal.SyncAlways, FS: ffs}
	j, err := journal.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}

	acked := make(map[string]bool)
	var ackedMu sync.Mutex
	for i := 0; i < 10; i++ {
		rec := fmt.Sprintf("pre-%03d", i)
		if err := j.Append([]byte(rec)); err != nil {
			t.Fatalf("healthy append %d: %v", i, err)
		}
		acked[rec] = true
	}

	// The disk goes bad under the open segment: a group of concurrent
	// appenders all share the failing fsync, and every one of them must
	// see the error — none may treat a failed group commit as an ack.
	ffs.Fail("sync", "wal-", faultinject.ErrNoSpace)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = j.Append([]byte(fmt.Sprintf("doomed-%d", i)))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("append %d acknowledged during fsync fault", i)
		}
	}
	if j.Err() == nil {
		t.Fatal("journal did not latch the fsync error")
	}
	// The error is sticky: later appends fail fast without touching disk.
	if err := j.Append([]byte("while-broken")); err == nil {
		t.Fatal("append succeeded on a broken journal")
	}

	// The disk heals: Reopen clears the sticky error and appending
	// resumes in a fresh segment.
	ffs.Clear()
	if err := j.Reopen(); err != nil {
		t.Fatalf("reopen after heal: %v", err)
	}
	if j.Err() != nil {
		t.Fatalf("sticky error survived reopen: %v", j.Err())
	}
	for i := 0; i < 10; i++ {
		rec := fmt.Sprintf("post-%03d", i)
		if err := j.Append([]byte(rec)); err != nil {
			t.Fatalf("append after reopen: %v", err)
		}
		ackedMu.Lock()
		acked[rec] = true
		ackedMu.Unlock()
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Clean re-open: replay must not report corruption, and every
	// acknowledged record must be present and whole.
	assertContains(t, replayAll(t, dir, opts), acked)
}

func TestJournalENOSPCDuringRotation(t *testing.T) {
	dir := t.TempDir()
	ffs := faultinject.NewFaultFS(nil)
	// Tiny segments so appends rotate constantly.
	opts := journal.Options{Fsync: journal.SyncAlways, SegmentBytes: 128, FS: ffs}
	j, err := journal.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}

	acked := make(map[string]bool)
	append32 := func(tag string, n int) (lastErr error) {
		for i := 0; i < n; i++ {
			rec := fmt.Sprintf("%s-%03d-xxxxxxxxxxxxxxxxxxxxxxxx", tag, i)
			if err := j.Append([]byte(rec)); err != nil {
				return err
			}
			acked[rec] = true
		}
		return nil
	}
	if err := append32("pre", 8); err != nil {
		t.Fatalf("healthy appends: %v", err)
	}

	// Disk full: the next rotation cannot create its segment file.
	ffs.Fail("open", "wal-", faultinject.ErrNoSpace)
	var sawErr bool
	for i := 0; i < 16; i++ {
		if err := j.Append([]byte(fmt.Sprintf("doomed-%03d-xxxxxxxxxxxxxxxxxxxx", i))); err != nil {
			if !errors.Is(err, faultinject.ErrNoSpace) {
				t.Fatalf("rotation fault surfaced as %v, want ENOSPC", err)
			}
			sawErr = true
			break
		}
		acked[fmt.Sprintf("doomed-%03d-xxxxxxxxxxxxxxxxxxxx", i)] = true
	}
	if !sawErr {
		t.Fatal("ENOSPC on rotation never surfaced")
	}
	if j.Err() == nil {
		t.Fatal("journal did not latch the rotation error")
	}

	ffs.Clear()
	if err := j.Reopen(); err != nil {
		t.Fatalf("reopen after heal: %v", err)
	}
	if err := append32("post", 8); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	assertContains(t, replayAll(t, dir, opts), acked)
}

func TestJournalENOSPCDuringSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	ffs := faultinject.NewFaultFS(nil)
	opts := journal.Options{Fsync: journal.SyncAlways, FS: ffs}
	j, err := journal.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}

	acked := make(map[string]bool)
	for i := 0; i < 10; i++ {
		rec := fmt.Sprintf("rec-%03d", i)
		if err := j.Append([]byte(rec)); err != nil {
			t.Fatal(err)
		}
		acked[rec] = true
	}

	// Disk full during the snapshot tmp-write: compaction must fail
	// loudly, leave no (possibly torn) snapshot behind, and leave the
	// append path healthy — the WAL segments still hold every record.
	ffs.Fail("write", "snap.tmp", faultinject.ErrNoSpace)
	if err := j.Compact(func() []byte { return []byte(`{"snap":1}`) }); err == nil {
		t.Fatal("compaction acknowledged a failed snapshot write")
	}
	if j.Err() != nil {
		t.Fatalf("failed compaction poisoned the append path: %v", j.Err())
	}
	if err := j.Append([]byte("after-failed-compact")); err != nil {
		t.Fatalf("append after failed compaction: %v", err)
	}
	acked["after-failed-compact"] = true

	// A torn snapshot must never be replayed: everything is still in
	// the segments.
	assertContains(t, replayAll(t, dir, opts), acked)

	// Heal and compact for real: the snapshot now covers the history.
	ffs.Clear()
	if err := j.Compact(func() []byte { return []byte(`{"snap":2}`) }); err != nil {
		t.Fatalf("compaction after heal: %v", err)
	}
	if err := j.Append([]byte("after-good-compact")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := journal.Replay(dir, opts)
	if err != nil {
		t.Fatalf("replay after compaction: %v", err)
	}
	if string(rep.Snapshot) != `{"snap":2}` {
		t.Errorf("snapshot payload: %q", rep.Snapshot)
	}
	found := false
	for _, r := range rep.Records {
		if string(r) == "after-good-compact" {
			found = true
		}
	}
	if !found {
		t.Error("post-compaction record lost")
	}
}
