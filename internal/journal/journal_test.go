package journal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string, opts Options) *Journal {
	t.Helper()
	j, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return j
}

func mustReplay(t *testing.T, dir string, opts Options) *Replayed {
	t.Helper()
	rep, err := Replay(dir, opts)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return rep
}

func records(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf(`{"rec":%d,"pad":"%s"}`, i, strings.Repeat("x", i%37)))
	}
	return out
}

func assertRecords(t *testing.T, got, want [][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// segFiles returns the wal segment file names in dir, sorted.
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	var out []string
	for _, e := range entries {
		if _, ok := parseSeq(e.Name(), "wal-", ".log"); ok {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out
}

func TestRoundTripAllPolicies(t *testing.T) {
	for _, pol := range []Policy{SyncAlways, SyncInterval, SyncNever} {
		t.Run(string(pol), func(t *testing.T) {
			dir := t.TempDir()
			recs := records(50)
			j := mustOpen(t, dir, Options{Fsync: pol, Interval: time.Millisecond})
			for _, r := range recs {
				if err := j.Append(r); err != nil {
					t.Fatalf("append: %v", err)
				}
			}
			if err := j.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			rep := mustReplay(t, dir, Options{})
			if rep.Snapshot != nil || rep.Torn {
				t.Fatalf("unexpected snapshot/torn: %+v", rep)
			}
			assertRecords(t, rep.Records, recs)

			// Reopen and append more: the old records must survive.
			j2 := mustOpen(t, dir, Options{Fsync: pol, Interval: time.Millisecond})
			extra := []byte(`{"rec":"extra"}`)
			if err := j2.Append(extra); err != nil {
				t.Fatalf("append after reopen: %v", err)
			}
			if err := j2.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			rep = mustReplay(t, dir, Options{})
			assertRecords(t, rep.Records, append(append([][]byte{}, recs...), extra))
		})
	}
}

func TestConcurrentAppendGroupCommit(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{Fsync: SyncAlways})
	const writers, per = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := j.Append([]byte(fmt.Sprintf(`{"w":%d,"i":%d}`, w, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := j.CurrentStats()
	if st.Records != writers*per {
		t.Errorf("records = %d, want %d", st.Records, writers*per)
	}
	// Group commit must have batched at least some fsyncs; with 320
	// sequential fsyncs this would be flaky-proof only as <=, so just
	// assert the invariant that every record was covered by some fsync.
	if st.Fsyncs == 0 || st.Fsyncs > st.Records+1 {
		t.Errorf("fsyncs = %d out of range (records %d)", st.Fsyncs, st.Records)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	rep := mustReplay(t, dir, Options{})
	if len(rep.Records) != writers*per {
		t.Fatalf("replayed %d records, want %d", len(rep.Records), writers*per)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	recs := records(200)
	j := mustOpen(t, dir, Options{Fsync: SyncNever, SegmentBytes: 512})
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if n := len(segFiles(t, dir)); n < 4 {
		t.Fatalf("expected several segments after rotation, got %d", n)
	}
	assertRecords(t, mustReplay(t, dir, Options{}).Records, recs)
}

// TestTornFinalRecordTruncated simulates a crash mid-append: a partial
// frame at the journal tail must be truncated away with a warning, the
// earlier records kept, and a second replay must come back clean.
func TestTornFinalRecordTruncated(t *testing.T) {
	cases := map[string]func(valid []byte) []byte{
		"partial header": func([]byte) []byte { return []byte{0x09, 0x00} },
		"partial payload": func([]byte) []byte {
			var hdr [frameHeader]byte
			binary.LittleEndian.PutUint32(hdr[0:4], 1000)
			binary.LittleEndian.PutUint32(hdr[4:8], 0xdeadbeef)
			return append(hdr[:], []byte("only a few bytes")...)
		},
		"garbage length": func([]byte) []byte {
			return []byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
		},
		"crc tear on final record": func(valid []byte) []byte {
			// A complete frame whose payload bytes were torn mid-write.
			frame := append([]byte(nil), valid...)
			frame[len(frame)-1] ^= 0x5a
			return frame
		},
	}
	for name, tear := range cases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			recs := records(10)
			j := mustOpen(t, dir, Options{Fsync: SyncNever})
			for _, r := range recs {
				if err := j.Append(r); err != nil {
					t.Fatalf("append: %v", err)
				}
			}
			if err := j.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}

			// Build one valid frame to hand to the tear generators.
			payload := []byte(`{"torn":true}`)
			var valid []byte
			var hdr [frameHeader]byte
			binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
			binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
			valid = append(append(valid, hdr[:]...), payload...)

			segs := segFiles(t, dir)
			last := filepath.Join(dir, segs[len(segs)-1])
			f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatalf("open segment: %v", err)
			}
			if _, err := f.Write(tear(valid)); err != nil {
				t.Fatalf("write tear: %v", err)
			}
			f.Close()
			before, _ := os.Stat(last)

			var warned bool
			rep, err := Replay(dir, Options{Logf: func(format string, args ...any) {
				if strings.Contains(format, "torn") {
					warned = true
				}
			}})
			if err != nil {
				t.Fatalf("replay with torn tail: %v", err)
			}
			if !rep.Torn || !warned {
				t.Errorf("torn=%v warned=%v, want both true", rep.Torn, warned)
			}
			assertRecords(t, rep.Records, recs)

			after, _ := os.Stat(last)
			if after.Size() >= before.Size() {
				t.Errorf("segment not truncated: %d -> %d bytes", before.Size(), after.Size())
			}
			// The truncated journal is healthy: replay again, no warning.
			rep = mustReplay(t, dir, Options{})
			if rep.Torn {
				t.Error("second replay still reports a torn record")
			}
			assertRecords(t, rep.Records, recs)
		})
	}
}

// TestCorruptMidLogRejected flips a byte inside an early record: the
// damage is not at the journal tail, so replay must refuse it loudly
// rather than resurrect a history with a hole.
func TestCorruptMidLogRejected(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{Fsync: SyncNever})
	for _, r := range records(10) {
		if err := j.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	segs := segFiles(t, dir)
	path := filepath.Join(dir, segs[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	data[frameHeader+2] ^= 0xff // inside the first record's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := Replay(dir, Options{}); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("replay of corrupt mid-log record: err = %v, want corrupt-record error", err)
	}
}

// TestTornNonFinalSegmentRejected: a tear that is not in the journal's
// last segment means later segments would replay out of context.
func TestTornNonFinalSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{Fsync: SyncNever, SegmentBytes: 256})
	for _, r := range records(60) {
		if err := j.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	segs := segFiles(t, dir)
	if len(segs) < 2 {
		t.Fatalf("need >=2 segments, got %d", len(segs))
	}
	f, err := os.OpenFile(filepath.Join(dir, segs[0]), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	f.Write([]byte{1, 2, 3})
	f.Close()
	if _, err := Replay(dir, Options{}); err == nil || !strings.Contains(err.Error(), "non-final segment") {
		t.Fatalf("replay with non-final tear: err = %v, want non-final-segment error", err)
	}
}

func TestMissingSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{Fsync: SyncNever, SegmentBytes: 256})
	for _, r := range records(60) {
		if err := j.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	segs := segFiles(t, dir)
	if len(segs) < 3 {
		t.Fatalf("need >=3 segments, got %d", len(segs))
	}
	os.Remove(filepath.Join(dir, segs[1]))
	if _, err := Replay(dir, Options{}); err == nil || !strings.Contains(err.Error(), "missing segment") {
		t.Fatalf("replay with missing segment: err = %v, want missing-segment error", err)
	}
}

func TestEmptyAndMissingStateDir(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "never-created")
	rep := mustReplay(t, missing, Options{})
	if rep.Snapshot != nil || len(rep.Records) != 0 || rep.Torn {
		t.Fatalf("missing dir replayed non-empty: %+v", rep)
	}

	empty := t.TempDir()
	rep = mustReplay(t, empty, Options{})
	if rep.Snapshot != nil || len(rep.Records) != 0 {
		t.Fatalf("empty dir replayed non-empty: %+v", rep)
	}
	// Open must create the directory and start a usable journal.
	j := mustOpen(t, missing, Options{Fsync: SyncNever})
	if err := j.Append([]byte(`{"first":1}`)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := mustReplay(t, missing, Options{}); len(got.Records) != 1 {
		t.Fatalf("replayed %d records, want 1", len(got.Records))
	}
}

// TestCompaction: after Compact the snapshot carries the state, old
// segments are deleted, and replay returns snapshot + tail records.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	recs := records(120)
	j := mustOpen(t, dir, Options{Fsync: SyncNever, SegmentBytes: 512})
	for _, r := range recs[:100] {
		if err := j.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	snap := []byte(`{"state":"everything through record 99"}`)
	if err := j.Compact(func() []byte { return snap }); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if n := len(segFiles(t, dir)); n != 1 {
		t.Fatalf("compaction left %d segments, want 1", n)
	}
	if live := j.LiveBytes(); live != 0 {
		t.Errorf("live bytes after compact = %d, want 0", live)
	}
	for _, r := range recs[100:] {
		if err := j.Append(r); err != nil {
			t.Fatalf("append after compact: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	rep := mustReplay(t, dir, Options{})
	if !bytes.Equal(rep.Snapshot, snap) {
		t.Fatalf("snapshot = %q, want %q", rep.Snapshot, snap)
	}
	assertRecords(t, rep.Records, recs[100:])

	// A second compact supersedes the first snapshot.
	j2 := mustOpen(t, dir, Options{Fsync: SyncNever})
	snap2 := []byte(`{"state":"v2"}`)
	if err := j2.Compact(func() []byte { return snap2 }); err != nil {
		t.Fatalf("second compact: %v", err)
	}
	if err := j2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	rep = mustReplay(t, dir, Options{})
	if !bytes.Equal(rep.Snapshot, snap2) {
		t.Fatalf("snapshot = %q, want %q", rep.Snapshot, snap2)
	}
	if len(rep.Records) != 0 {
		t.Fatalf("replayed %d records after full compaction, want 0", len(rep.Records))
	}
}

// TestSnapshotJournalReplayEquivalence: the same logical history must
// replay identically whether or not a compaction happened in the
// middle — the property the service's recovery relies on.
func TestSnapshotJournalReplayEquivalence(t *testing.T) {
	plain, compacted := t.TempDir(), t.TempDir()
	recs := records(80)

	jp := mustOpen(t, plain, Options{Fsync: SyncNever})
	for _, r := range recs {
		if err := jp.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	jp.Close()

	jc := mustOpen(t, compacted, Options{Fsync: SyncNever})
	for _, r := range recs[:40] {
		if err := jc.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// The snapshot stands in for the first 40 records.
	var snapped [][]byte
	if err := jc.Compact(func() []byte {
		var b bytes.Buffer
		for _, r := range recs[:40] {
			b.Write(r)
			b.WriteByte('\n')
		}
		return b.Bytes()
	}); err != nil {
		t.Fatalf("compact: %v", err)
	}
	for _, r := range recs[40:] {
		if err := jc.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	jc.Close()

	repPlain := mustReplay(t, plain, Options{})
	repComp := mustReplay(t, compacted, Options{})
	for _, line := range bytes.Split(bytes.TrimRight(repComp.Snapshot, "\n"), []byte("\n")) {
		snapped = append(snapped, line)
	}
	assertRecords(t, append(snapped, repComp.Records...), repPlain.Records)
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, Options{Fsync: SyncNever})
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := j.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, ok := range []string{"always", "interval", "never"} {
		if _, err := ParsePolicy(ok); err != nil {
			t.Errorf("ParsePolicy(%q): %v", ok, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Error("ParsePolicy accepted garbage")
	}
}
