// Package journal is the durability layer under the specd service: an
// append-only write-ahead log of length-and-CRC-framed records with
// group-commit fsync batching and segment rotation, plus atomic-rename
// snapshot files that let compaction drop replayed history.
//
// The package is payload-agnostic — records are opaque byte slices
// (the service encodes its job-lifecycle records as JSON). On disk a
// state directory holds:
//
//	wal-%08d.log   append-only segments of framed records
//	snap-%08d.db   one framed snapshot record; snap-N covers every
//	               record in segments with sequence < N
//
// Replay loads the newest snapshot and then the segments at or above
// its sequence, in order. A torn final record (a crash mid-append) is
// truncated away with a warning; a corrupt record anywhere else —
// a CRC mismatch, or a tear that is not at the journal's tail — is
// refused with an error, because silently skipping it would replay a
// history with a hole in the middle.
//
// Durability policy is per-journal: SyncAlways fsyncs before Append
// returns (concurrent appenders share one fsync — group commit),
// SyncInterval fsyncs on a background tick, SyncNever leaves syncing
// to the OS. All three survive a process crash (the data is in the
// page cache once written); the policies differ only in how much a
// machine crash can lose.
package journal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/vfs"
)

// Policy selects when appended records are fsynced.
type Policy string

const (
	// SyncAlways fsyncs before Append returns; concurrent appenders
	// share a single fsync (group commit).
	SyncAlways Policy = "always"
	// SyncInterval fsyncs dirty data on a background tick.
	SyncInterval Policy = "interval"
	// SyncNever never fsyncs explicitly; the OS flushes on its own.
	SyncNever Policy = "never"
)

// ParsePolicy validates a -fsync flag value.
func ParsePolicy(s string) (Policy, error) {
	switch p := Policy(s); p {
	case SyncAlways, SyncInterval, SyncNever:
		return p, nil
	}
	return "", fmt.Errorf("journal: unknown fsync policy %q (want always, interval, or never)", s)
}

// Options tunes a journal. Zero values take the documented defaults.
type Options struct {
	Fsync          Policy        // default SyncAlways
	Interval       time.Duration // SyncInterval tick (default 5ms)
	SegmentBytes   int64         // rotation threshold (default 4 MiB)
	MaxRecordBytes int           // sanity bound on one record (default 16 MiB)

	// FS is the filesystem seam (default: the real OS filesystem).
	// Fault-injection tests substitute one that fails fsyncs or runs
	// out of space; see internal/faultinject.
	FS vfs.FS

	// Logf receives recovery warnings (default: discard).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Fsync == "" {
		o.Fsync = SyncAlways
	}
	if o.Interval <= 0 {
		o.Interval = 5 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = 16 << 20
	}
	if o.FS == nil {
		o.FS = vfs.OS{}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("journal: closed")

// Record framing: a 4-byte little-endian payload length, a 4-byte
// CRC-32C (Castagnoli) of the payload, then the payload.
const frameHeader = 8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func segName(seq int64) string  { return fmt.Sprintf("wal-%08d.log", seq) }
func snapName(seq int64) string { return fmt.Sprintf("snap-%08d.db", seq) }

// parseSeq extracts the sequence number from a wal-/snap- file name,
// returning ok=false for anything else (tmp files, strays).
func parseSeq(name, prefix, suffix string) (int64, bool) {
	if len(name) != len(prefix)+8+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return 0, false
	}
	var seq int64
	for _, c := range name[len(prefix) : len(prefix)+8] {
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + int64(c-'0')
	}
	return seq, true
}

// Journal is an open write-ahead log. Append is safe for concurrent
// use; Compact and Close serialize against appenders internally.
type Journal struct {
	dir  string
	opts Options
	fs   vfs.FS

	mu        sync.Mutex
	f         vfs.File
	bw        *bufio.Writer
	segSeq    int64 // sequence of the segment being appended to
	segBytes  int64 // bytes written to the current segment
	liveBytes int64 // bytes across all segments since the last compact
	appended  int64 // records appended since Open (monotone)
	synced    int64 // records covered by a completed fsync
	dirty     bool  // unflushed or un-fsynced data exists
	closed    bool
	err       error // sticky I/O error; all later appends fail with it

	// syncMu is the group-commit waiting room: the first appender in
	// fsyncs everything flushed so far, later ones observe synced and
	// return without their own fsync.
	syncMu sync.Mutex

	compactMu sync.Mutex

	records atomic.Int64
	fsyncs  atomic.Int64

	stopFlush chan struct{}
	flushWG   sync.WaitGroup
}

// Stats is a point-in-time snapshot of journal counters.
type Stats struct {
	Records   int64 // records appended since Open
	Fsyncs    int64 // fsync calls issued
	LiveBytes int64 // segment bytes not yet covered by a snapshot
	Segment   int64 // current segment sequence
}

// Open opens dir for appending, creating it if needed. It always
// starts a fresh segment (one past the highest existing sequence), so
// it never appends to a file that may end in a torn record; run
// Replay first to read the existing state.
func Open(dir string, opts Options) (*Journal, error) {
	opts = opts.withDefaults()
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	entries, err := opts.FS.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var next, live int64 = 1, 0
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "wal-", ".log"); ok {
			if seq >= next {
				next = seq + 1
			}
			if info, err := e.Info(); err == nil {
				live += info.Size()
			}
		}
		if seq, ok := parseSeq(e.Name(), "snap-", ".db"); ok && seq >= next {
			next = seq + 1
		}
	}
	f, err := opts.FS.OpenFile(filepath.Join(dir, segName(next)), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{
		dir:       dir,
		opts:      opts,
		fs:        opts.FS,
		f:         f,
		bw:        bufio.NewWriterSize(f, 1<<16),
		segSeq:    next,
		liveBytes: live,
		stopFlush: make(chan struct{}),
	}
	if opts.Fsync == SyncInterval {
		j.flushWG.Add(1)
		go j.flushLoop()
	}
	return j, nil
}

func (j *Journal) flushLoop() {
	defer j.flushWG.Done()
	t := time.NewTicker(j.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-j.stopFlush:
			return
		case <-t.C:
			j.mu.Lock()
			dirty, seq := j.dirty, j.appended-1
			j.mu.Unlock()
			if dirty && seq >= 0 {
				_ = j.syncThrough(seq)
			}
		}
	}
}

// Append writes one record. Under SyncAlways it returns only after the
// record is fsynced (sharing the fsync with concurrent appenders);
// under the other policies it returns once the record is written.
func (j *Journal) Append(rec []byte) error {
	if len(rec) == 0 {
		return errors.New("journal: empty record")
	}
	if len(rec) > j.opts.MaxRecordBytes {
		return fmt.Errorf("journal: record of %d bytes exceeds limit %d", len(rec), j.opts.MaxRecordBytes)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(rec)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(rec, castagnoli))

	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	if j.err != nil {
		err := j.err
		j.mu.Unlock()
		return err
	}
	if j.segBytes >= j.opts.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			j.err = err
			j.mu.Unlock()
			return err
		}
	}
	_, werr := j.bw.Write(hdr[:])
	if werr == nil {
		_, werr = j.bw.Write(rec)
	}
	if werr != nil {
		j.err = werr
		j.mu.Unlock()
		return werr
	}
	n := int64(frameHeader + len(rec))
	j.segBytes += n
	j.liveBytes += n
	seq := j.appended
	j.appended++
	j.dirty = true
	j.mu.Unlock()

	j.records.Add(1)
	if j.opts.Fsync == SyncAlways {
		return j.syncThrough(seq)
	}
	return nil
}

// syncThrough guarantees record seq (0-based append index) is fsynced.
// The first caller in fsyncs everything appended so far; callers that
// arrive while that fsync is in flight find their record covered and
// return without issuing another one — group commit.
func (j *Journal) syncThrough(seq int64) error {
	j.syncMu.Lock()
	defer j.syncMu.Unlock()

	j.mu.Lock()
	if j.err != nil {
		err := j.err
		j.mu.Unlock()
		return err
	}
	if j.synced > seq {
		j.mu.Unlock()
		return nil
	}
	if err := j.bw.Flush(); err != nil {
		j.err = err
		j.mu.Unlock()
		return err
	}
	f := j.f
	target := j.appended
	j.dirty = false
	j.mu.Unlock()

	// Fsync outside mu so appenders keep writing into the buffer while
	// the disk works — that concurrency is what forms the commit group.
	// A concurrent rotation may have synced and closed this file
	// already; its records are durable, so ErrClosed here is success.
	if err := f.Sync(); err != nil && !errors.Is(err, os.ErrClosed) {
		j.mu.Lock()
		j.err = err
		j.mu.Unlock()
		return err
	}
	j.fsyncs.Add(1)
	j.mu.Lock()
	if target > j.synced {
		j.synced = target
	}
	j.mu.Unlock()
	return nil
}

// Sync flushes and fsyncs everything appended so far.
func (j *Journal) Sync() error {
	j.mu.Lock()
	seq := j.appended - 1
	closed := j.closed
	j.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if seq < 0 {
		return nil
	}
	return j.syncThrough(seq)
}

// Err returns the journal's sticky I/O error: the first disk fault
// (failed write, fsync, or rotation) that stopped appends. nil while
// healthy. A non-nil Err means every Append fails until Reopen.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Reopen clears the sticky I/O error after the underlying disk fault
// has been repaired: the current segment — whose tail may hold a torn
// frame from the failed write — is trimmed back to its last whole
// record and abandoned, and appending resumes in a brand-new segment.
// Records acknowledged before the fault are durable per the fsync
// policy; records whose Append returned the error were never
// acknowledged and are the caller's to re-issue (the service
// re-snapshots its full job table right after a Reopen for exactly this
// reason). Reopen on a healthy journal is a no-op.
func (j *Journal) Reopen() error {
	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.err == nil {
		return nil
	}
	_ = j.f.Close() // best effort; the fault may have wedged the handle
	j.trimTornTailLocked()
	f, err := j.fs.OpenFile(filepath.Join(j.dir, segName(j.segSeq+1)), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("journal: reopen: %w", err)
	}
	j.segSeq++
	j.f = f
	j.bw = bufio.NewWriterSize(f, 1<<16)
	j.segBytes = 0
	j.dirty = false
	j.synced = j.appended
	j.err = nil
	j.opts.Logf("journal: reopened after disk fault; appending to %s", segName(j.segSeq))
	return nil
}

// trimTornTailLocked truncates the abandoned segment back to its last
// whole frame, so a crash before the post-reopen compaction does not
// present a mid-log tear to Replay (which refuses damage anywhere but
// the journal's final segment). Best effort: a still-faulty disk just
// leaves the tear for the compaction to cover. Caller holds mu.
func (j *Journal) trimTornTailLocked() {
	path := filepath.Join(j.dir, segName(j.segSeq))
	data, err := j.fs.ReadFile(path)
	if err != nil {
		return
	}
	off := 0
	for off+frameHeader <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n == 0 || n > j.opts.MaxRecordBytes || off+frameHeader+n > len(data) {
			break
		}
		if crc32.Checksum(data[off+frameHeader:off+frameHeader+n], castagnoli) != crc {
			break
		}
		off += frameHeader + n
	}
	if off < len(data) {
		if err := j.fs.Truncate(path, int64(off)); err == nil {
			j.opts.Logf("journal: trimmed torn tail of %s at offset %d after disk fault", segName(j.segSeq), off)
		}
	}
}

// rotateLocked seals the current segment (flush, fsync unless
// SyncNever, close) and opens the next one. Caller holds mu.
func (j *Journal) rotateLocked() error {
	if err := j.bw.Flush(); err != nil {
		return err
	}
	if j.opts.Fsync != SyncNever {
		if err := j.f.Sync(); err != nil {
			return err
		}
		j.fsyncs.Add(1)
		j.synced = j.appended
		j.dirty = false
	}
	if err := j.f.Close(); err != nil {
		return err
	}
	f, err := j.fs.OpenFile(filepath.Join(j.dir, segName(j.segSeq+1)), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	j.segSeq++
	j.f = f
	j.bw = bufio.NewWriterSize(f, 1<<16)
	j.segBytes = 0
	return nil
}

// Compact rotates to a fresh segment, calls build for a snapshot of
// the application state, writes it with an atomic rename, and deletes
// the segments the snapshot covers. build runs after the rotation, so
// the snapshot necessarily includes every record in the deleted
// segments; records appended while build runs land in the new segment
// and are replayed on top of the snapshot (replay must therefore be
// idempotent for records the snapshot already reflects).
func (j *Journal) Compact(build func() []byte) error {
	j.compactMu.Lock()
	defer j.compactMu.Unlock()

	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	if err := j.rotateLocked(); err != nil {
		j.err = err
		j.mu.Unlock()
		return err
	}
	cover := j.segSeq // snap-N covers segments < N; the new segment is N
	j.mu.Unlock()

	snap := build()
	if err := writeSnapshot(j.fs, j.dir, cover, snap); err != nil {
		return err
	}

	// Best-effort cleanup: a crash here leaves stale files that the
	// next Replay ignores and the next Compact removes.
	entries, err := j.fs.ReadDir(j.dir)
	if err != nil {
		return nil
	}
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "wal-", ".log"); ok && seq < cover {
			j.fs.Remove(filepath.Join(j.dir, e.Name()))
		}
		if seq, ok := parseSeq(e.Name(), "snap-", ".db"); ok && seq < cover {
			j.fs.Remove(filepath.Join(j.dir, e.Name()))
		}
	}
	j.mu.Lock()
	j.liveBytes = j.segBytes
	j.mu.Unlock()
	return nil
}

// writeSnapshot frames payload into a temp file, fsyncs it, and
// renames it into place, so a snapshot file is either absent or whole.
func writeSnapshot(fsys vfs.FS, dir string, seq int64, payload []byte) error {
	tmp := filepath.Join(dir, "snap.tmp")
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	_, werr := f.Write(hdr[:])
	if werr == nil {
		_, werr = f.Write(payload)
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("journal: snapshot: %w", werr)
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, snapName(seq))); err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	syncDir(fsys, dir)
	return nil
}

// syncDir fsyncs the directory so renames and creates are durable.
// Best effort: some filesystems refuse directory fsync.
func syncDir(fsys vfs.FS, dir string) {
	if d, err := fsys.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// LiveBytes returns the segment bytes not yet covered by a snapshot —
// the compaction trigger.
func (j *Journal) LiveBytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.liveBytes
}

// CurrentStats returns the journal's counters.
func (j *Journal) CurrentStats() Stats {
	j.mu.Lock()
	live, seg := j.liveBytes, j.segSeq
	j.mu.Unlock()
	return Stats{
		Records:   j.records.Load(),
		Fsyncs:    j.fsyncs.Load(),
		LiveBytes: live,
		Segment:   seg,
	}
}

// Close flushes, fsyncs (unless SyncNever), and closes the journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	if j.opts.Fsync == SyncInterval {
		close(j.stopFlush)
	}
	err := j.bw.Flush()
	if err == nil && j.opts.Fsync != SyncNever {
		if err = j.f.Sync(); err == nil {
			j.fsyncs.Add(1)
		}
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.mu.Unlock()
	if j.opts.Fsync == SyncInterval {
		j.flushWG.Wait()
	}
	return err
}

// Replayed is the result of reading a state directory.
type Replayed struct {
	// Snapshot is the newest snapshot payload, or nil if none exists.
	Snapshot []byte
	// Records holds every record appended after the snapshot, in order.
	Records [][]byte
	// Torn reports that a torn final record was truncated away.
	Torn bool
}

// Replay reads the newest snapshot plus the segments it does not
// cover, in append order. A missing or empty directory replays to an
// empty state. A torn final record — a crash mid-append at the very
// tail of the journal — is truncated in place with a warning; any
// other framing or CRC failure is a hard error, because records after
// the damage would replay out of context.
func Replay(dir string, opts Options) (*Replayed, error) {
	opts = opts.withDefaults()
	entries, err := opts.FS.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return &Replayed{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}

	var segs []int64
	var snapSeq int64 = -1
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "wal-", ".log"); ok {
			segs = append(segs, seq)
		}
		if seq, ok := parseSeq(e.Name(), "snap-", ".db"); ok && seq > snapSeq {
			snapSeq = seq
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a] < segs[b] })

	rep := &Replayed{}
	if snapSeq >= 0 {
		payload, err := readSnapshot(opts.FS, filepath.Join(dir, snapName(snapSeq)))
		if err != nil {
			return nil, err
		}
		rep.Snapshot = payload
		// Segments below the snapshot are leftovers from an interrupted
		// compaction; the snapshot already reflects them.
		keep := segs[:0]
		for _, s := range segs {
			if s >= snapSeq {
				keep = append(keep, s)
			}
		}
		segs = keep
	}
	for i := 1; i < len(segs); i++ {
		if segs[i] != segs[i-1]+1 {
			return nil, fmt.Errorf("journal: missing segment %s (have %s then %s)",
				segName(segs[i-1]+1), segName(segs[i-1]), segName(segs[i]))
		}
	}

	for i, seq := range segs {
		path := filepath.Join(dir, segName(seq))
		recs, tornAt, err := readSegment(opts.FS, path, i == len(segs)-1, opts.MaxRecordBytes)
		if err != nil {
			return nil, err
		}
		rep.Records = append(rep.Records, recs...)
		if tornAt >= 0 {
			opts.Logf("journal: truncating torn final record in %s at offset %d (crash mid-append); %d records recovered",
				segName(seq), tornAt, len(recs))
			if err := opts.FS.Truncate(path, tornAt); err != nil {
				return nil, fmt.Errorf("journal: truncating %s: %w", segName(seq), err)
			}
			rep.Torn = true
		}
	}
	return rep, nil
}

// readSnapshot reads and validates the single framed snapshot record.
func readSnapshot(fsys vfs.FS, path string) ([]byte, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if len(data) < frameHeader {
		return nil, fmt.Errorf("journal: snapshot %s truncated (%d bytes)", filepath.Base(path), len(data))
	}
	n := binary.LittleEndian.Uint32(data[0:4])
	crc := binary.LittleEndian.Uint32(data[4:8])
	if int(n) != len(data)-frameHeader {
		return nil, fmt.Errorf("journal: snapshot %s length %d does not match file size", filepath.Base(path), n)
	}
	payload := data[frameHeader:]
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, fmt.Errorf("journal: snapshot %s failed CRC check", filepath.Base(path))
	}
	return payload, nil
}

// readSegment parses one segment. For the journal's last segment a
// damaged record at the tail (incomplete frame, or a CRC mismatch on
// the final record) is a torn append: readSegment returns the records
// before it and the offset to truncate at. The same damage anywhere
// else is a hard error.
func readSegment(fsys vfs.FS, path string, last bool, maxRec int) (recs [][]byte, tornAt int64, err error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, -1, fmt.Errorf("journal: %w", err)
	}
	name := filepath.Base(path)
	off := 0
	torn := func(why string) ([][]byte, int64, error) {
		if last {
			return recs, int64(off), nil
		}
		return nil, -1, fmt.Errorf("journal: %s in non-final segment %s at offset %d", why, name, off)
	}
	for off < len(data) {
		if off+frameHeader > len(data) {
			return torn("incomplete record header")
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n == 0 || n > maxRec {
			// A garbage length field: unparseable past this point. At the
			// journal tail this is a torn append; earlier it is corruption.
			if last {
				return recs, int64(off), nil
			}
			return nil, -1, fmt.Errorf("journal: corrupt record length %d in %s at offset %d", n, name, off)
		}
		end := off + frameHeader + n
		if end > len(data) {
			return torn("incomplete record payload")
		}
		payload := data[off+frameHeader : end]
		if crc32.Checksum(payload, castagnoli) != crc {
			if last && end == len(data) {
				// The final record of the final segment with a bad CRC is a
				// tear inside the payload write, not mid-log corruption.
				return recs, int64(off), nil
			}
			return nil, -1, fmt.Errorf("journal: corrupt record (CRC mismatch) in %s at offset %d", name, off)
		}
		recs = append(recs, append([]byte(nil), payload...))
		off = end
	}
	return recs, -1, nil
}
