package faultinject

import (
	"errors"
	"testing"
	"time"

	"repro/internal/speculation"
)

func TestValidate(t *testing.T) {
	bad := []Config{
		{PanicRate: -0.1},
		{ErrorRate: 1.5},
		{PanicRate: 0.6, ErrorRate: 0.3, PoisonRate: 0.2},
		{TransientAttempts: -1},
		{Delay: -time.Second},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d (%+v) validated", i, c)
		}
	}
	ok := Config{Seed: 1, PanicRate: 0.05, ErrorRate: 0.05, PoisonRate: 0.03,
		TransientAttempts: 2, DelayRate: 0.1, Delay: time.Millisecond}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestPlansAreDeterministic(t *testing.T) {
	c := Config{Seed: 42, PanicRate: 0.2, ErrorRate: 0.2, PoisonRate: 0.1,
		TransientAttempts: 3, DelayRate: 0.25}
	for i := int64(0); i < 1000; i++ {
		if a, b := c.planFor(i), c.planFor(i); a != b {
			t.Fatalf("plan %d unstable: %+v vs %+v", i, a, b)
		}
	}
	// A different seed must produce a different victim set.
	c2 := c
	c2.Seed = 43
	same := 0
	for i := int64(0); i < 1000; i++ {
		if c.planFor(i) == c2.planFor(i) {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("seed has no effect on plans")
	}
}

func TestRatesRoughlyHold(t *testing.T) {
	c := Config{Seed: 7, PanicRate: 0.1, ErrorRate: 0.1, PoisonRate: 0.05,
		TransientAttempts: 2}
	const n = 20000
	var panics, errs, poisons int
	for i := int64(0); i < n; i++ {
		p := c.planFor(i)
		switch {
		case p.poison:
			poisons++
		case p.fails > 0 && p.panics:
			panics++
		case p.fails > 0:
			errs++
		}
	}
	check := func(name string, got int, want float64) {
		frac := float64(got) / n
		if frac < want*0.8 || frac > want*1.2 {
			t.Errorf("%s fraction %.4f, want ~%.4f", name, frac, want)
		}
	}
	check("poison", poisons, 0.05)
	check("panic", panics, 0.1)
	check("error", errs, 0.1)
	if got := c.PoisonPlanCount(n); got != poisons {
		t.Fatalf("PoisonPlanCount = %d, counted %d", got, poisons)
	}
}

func TestZeroTransientAttemptsDisablesTransients(t *testing.T) {
	c := Config{Seed: 3, PanicRate: 0.5, ErrorRate: 0.5}
	for i := int64(0); i < 500; i++ {
		if p := c.planFor(i); p.fails != 0 {
			t.Fatalf("plan %d fails %d with TransientAttempts=0", i, p.fails)
		}
	}
}

// TestPoisonCountExactThroughExecutor is the determinism contract the
// chaos tests rely on: run a fixed task population through a real
// executor with injection and the poisoned count equals
// PoisonPlanCount exactly, on every run, at any parallelism.
func TestPoisonCountExactThroughExecutor(t *testing.T) {
	cfg := Config{Seed: 99, PanicRate: 0.1, ErrorRate: 0.1, PoisonRate: 0.08,
		TransientAttempts: 2}
	const n = 400
	want := cfg.PoisonPlanCount(n)
	if want == 0 {
		t.Fatal("test needs at least one poison plan; pick another seed")
	}
	for trial := 0; trial < 3; trial++ {
		in, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		e := speculation.NewExecutor(nil)
		e.TaskRetries = 3
		e.WrapTask = in.WrapTask
		for i := 0; i < n; i++ {
			e.Add(speculation.TaskFunc(func(*speculation.Ctx) error { return nil }))
		}
		for e.Pending() > 0 {
			e.Round(32)
		}
		if got := e.TotalPoisoned(); got != int64(want) {
			t.Fatalf("trial %d: poisoned %d, want %d", trial, got, want)
		}
		if in.PoisonPlanned() != int64(want) {
			t.Fatalf("trial %d: injector planned %d poisons, want %d",
				trial, in.PoisonPlanned(), want)
		}
		if e.TotalCommitted() != int64(n-want) {
			t.Fatalf("trial %d: committed %d, want %d", trial,
				e.TotalCommitted(), n-want)
		}
		// Every injected error wraps the sentinel.
		for _, rec := range e.PoisonedTasks() {
			if rec.Attempts != 4 { // budget 3 retries + first attempt
				t.Fatalf("poisoned record attempts %d, want 4", rec.Attempts)
			}
		}
	}
}

// TestTransientVictimsRecover: with TransientAttempts clamped at or
// below the budget, no transient victim ever poisons.
func TestTransientVictimsRecover(t *testing.T) {
	cfg := Config{Seed: 5, PanicRate: 0.3, ErrorRate: 0.3, TransientAttempts: 2}
	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := speculation.NewExecutor(nil)
	e.TaskRetries = 2
	e.WrapTask = in.WrapTask
	const n = 200
	for i := 0; i < n; i++ {
		e.Add(speculation.TaskFunc(func(*speculation.Ctx) error { return nil }))
	}
	for e.Pending() > 0 {
		e.Round(16)
	}
	if e.TotalPoisoned() != 0 {
		t.Fatalf("poisoned %d transient-only victims", e.TotalPoisoned())
	}
	if e.TotalCommitted() != n {
		t.Fatalf("committed %d, want %d", e.TotalCommitted(), n)
	}
	if in.Panics() == 0 || in.Errors() == 0 {
		t.Fatalf("no faults fired: panics=%d errors=%d", in.Panics(), in.Errors())
	}
}

// orderedNopTask is a minimal ordered task for injector wrapping.
type orderedNopTask struct{ key speculation.Key }

func (t orderedNopTask) Key() speculation.Key              { return t.key }
func (t orderedNopTask) Run(*speculation.OrderedCtx) error { return nil }

func TestOrderedInjection(t *testing.T) {
	cfg := Config{Seed: 11, ErrorRate: 0.2, PoisonRate: 0.1, TransientAttempts: 1}
	want := cfg.PoisonPlanCount(100)
	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := speculation.NewOrderedExecutor()
	defer e.Close()
	e.TaskRetries = 2
	e.WrapTask = in.WrapOrdered
	for i := 0; i < 100; i++ {
		e.Add(orderedNopTask{key: speculation.Key{Time: float64(i)}})
	}
	for i := 0; i < 10000 && e.Pending() > 0; i++ {
		e.Round(8)
	}
	if e.Pending() != 0 {
		t.Fatal("ordered executor did not drain under injection")
	}
	if got := e.TotalPoisoned(); got != int64(want) {
		t.Fatalf("ordered poisoned %d, want %d", got, want)
	}
	if e.TotalCommitted() != int64(100-want) {
		t.Fatalf("ordered committed %d, want %d", e.TotalCommitted(), 100-want)
	}
}

func TestInjectedErrorWrapsSentinel(t *testing.T) {
	in, err := New(Config{Seed: 1, ErrorRate: 1, TransientAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	task := in.WrapTask(speculation.TaskFunc(func(*speculation.Ctx) error { return nil }))
	if e := task.Run(nil); !errors.Is(e, ErrInjected) {
		t.Fatalf("first attempt error %v does not wrap ErrInjected", e)
	}
	if e := task.Run(nil); e != nil {
		t.Fatalf("second attempt should recover, got %v", e)
	}
}

func TestDelayInjection(t *testing.T) {
	in, err := New(Config{Seed: 2, DelayRate: 1, Delay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	task := in.WrapTask(speculation.TaskFunc(func(*speculation.Ctx) error { return nil }))
	start := time.Now()
	if e := task.Run(nil); e != nil {
		t.Fatal(e)
	}
	if d := time.Since(start); d < time.Millisecond {
		t.Fatalf("task returned in %v, want >= 1ms delay", d)
	}
	if in.Delays() != 1 {
		t.Fatalf("Delays = %d, want 1", in.Delays())
	}
}
