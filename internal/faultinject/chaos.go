package faultinject

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rng"
)

// The chaos layer models gray network failures between cluster
// participants: per-link latency distributions, probabilistic drops,
// 503 error bursts, and asymmetric partitions (A reaches B while B
// cannot reach A — each direction is its own link). Every decision is
// drawn from a PRNG keyed by (seed, src, dst, seq), where seq is the
// request's ordinal on its link, so a run replays exactly for a fixed
// seed no matter how goroutines interleave across links.

// LinkFault describes the faults injected on one directed link.
type LinkFault struct {
	// Partition drops every request on this link (this direction only;
	// the reverse link is unaffected — that asymmetry is the point).
	Partition bool
	// Drop is the probability a request is dropped (a transport error,
	// as if the packets vanished).
	Drop float64
	// LatMin/LatMax inject per-request latency drawn uniformly from
	// [LatMin, LatMax]. Zero = no added latency.
	LatMin time.Duration
	LatMax time.Duration
	// ErrRate is the probability a request group is answered with a
	// fabricated 503 (the peer is up but unhealthy).
	ErrRate float64
	// ErrBurst groups consecutive requests under one error decision
	// (default 1), so injected 503s arrive in realistic bursts.
	ErrBurst int
}

func (lf LinkFault) active() bool {
	return lf.Partition || lf.Drop > 0 || lf.LatMax > 0 || lf.ErrRate > 0
}

// ChaosConfig seeds a chaos transport or listener. Links are keyed
// "src>dst"; "*" on either side is a wildcard (exact match wins, then
// "*>dst", then "src>*", then "*>*").
type ChaosConfig struct {
	Seed  uint64
	Links map[string]LinkFault
}

// ParseChaosPlan parses the -chaos-plan flag grammar:
//
//	plan  := link (';' link)*
//	link  := src '>' dst ':' spec (',' spec)*
//	spec  := "part"                 total drop, this direction only
//	       | "drop=" P              drop probability in [0,1]
//	       | "lat=" MIN ".." MAX    uniform latency (Go durations)
//	       | "lat=" D               fixed latency
//	       | "err=" P               503 probability in [0,1]
//	       | "err=" P "x" N         ... in bursts of N requests
//
// Example: "n2>router:part;router>n3:lat=50ms..100ms,err=0.2x3".
func ParseChaosPlan(plan string) (map[string]LinkFault, error) {
	links := make(map[string]LinkFault)
	for _, part := range strings.Split(plan, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, specs, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("chaos plan: link %q missing ':'", part)
		}
		src, dst, ok := strings.Cut(key, ">")
		if !ok || strings.TrimSpace(src) == "" || strings.TrimSpace(dst) == "" {
			return nil, fmt.Errorf("chaos plan: link %q wants src>dst", key)
		}
		var lf LinkFault
		for _, spec := range strings.Split(specs, ",") {
			spec = strings.TrimSpace(spec)
			if spec == "" {
				continue
			}
			name, val, _ := strings.Cut(spec, "=")
			switch name {
			case "part":
				lf.Partition = true
			case "drop":
				p, err := strconv.ParseFloat(val, 64)
				if err != nil || p < 0 || p > 1 {
					return nil, fmt.Errorf("chaos plan: bad drop %q (want [0,1])", val)
				}
				lf.Drop = p
			case "lat":
				lo, hi, ranged := strings.Cut(val, "..")
				dmin, err := time.ParseDuration(lo)
				if err != nil {
					return nil, fmt.Errorf("chaos plan: bad latency %q: %v", val, err)
				}
				dmax := dmin
				if ranged {
					if dmax, err = time.ParseDuration(hi); err != nil {
						return nil, fmt.Errorf("chaos plan: bad latency %q: %v", val, err)
					}
				}
				if dmin < 0 || dmax < dmin {
					return nil, fmt.Errorf("chaos plan: latency range %q inverted", val)
				}
				lf.LatMin, lf.LatMax = dmin, dmax
			case "err":
				rate, burst, bursty := strings.Cut(val, "x")
				p, err := strconv.ParseFloat(rate, 64)
				if err != nil || p < 0 || p > 1 {
					return nil, fmt.Errorf("chaos plan: bad err %q (want [0,1])", val)
				}
				lf.ErrRate = p
				if bursty {
					n, err := strconv.Atoi(burst)
					if err != nil || n < 1 {
						return nil, fmt.Errorf("chaos plan: bad err burst %q", val)
					}
					lf.ErrBurst = n
				}
			default:
				return nil, fmt.Errorf("chaos plan: unknown spec %q (want part, drop, lat, err)", spec)
			}
		}
		links[strings.TrimSpace(src)+">"+strings.TrimSpace(dst)] = lf
	}
	return links, nil
}

// FormatChaosPlan renders links back into the plan grammar (stable
// order), for logging what a process is actually injecting.
func FormatChaosPlan(links map[string]LinkFault) string {
	keys := make([]string, 0, len(links))
	for k := range links {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		lf := links[k]
		var specs []string
		if lf.Partition {
			specs = append(specs, "part")
		}
		if lf.Drop > 0 {
			specs = append(specs, fmt.Sprintf("drop=%g", lf.Drop))
		}
		if lf.LatMax > 0 {
			if lf.LatMax == lf.LatMin {
				specs = append(specs, fmt.Sprintf("lat=%s", lf.LatMin))
			} else {
				specs = append(specs, fmt.Sprintf("lat=%s..%s", lf.LatMin, lf.LatMax))
			}
		}
		if lf.ErrRate > 0 {
			s := fmt.Sprintf("err=%g", lf.ErrRate)
			if lf.ErrBurst > 1 {
				s += fmt.Sprintf("x%d", lf.ErrBurst)
			}
			specs = append(specs, s)
		}
		parts = append(parts, k+":"+strings.Join(specs, ","))
	}
	return strings.Join(parts, ";")
}

// ChaosError is the transport-level error for dropped requests.
// http.Client wraps it in *url.Error, so callers see it exactly where
// a real connection failure would surface.
type ChaosError struct {
	Src, Dst string
	Seq      uint64
}

func (e *ChaosError) Error() string {
	return fmt.Sprintf("chaos: dropped %s>%s request %d", e.Src, e.Dst, e.Seq)
}

// Timeout and Temporary make the drop look like a network timeout to
// callers that sniff net.Error.
func (e *ChaosError) Timeout() bool   { return true }
func (e *ChaosError) Temporary() bool { return true }

var _ net.Error = (*ChaosError)(nil)

// ChaosTransport injects the configured link faults in front of a real
// http.RoundTripper. Src names the local end; the destination is
// resolved from the request's host (Resolve hook, defaulting to the
// host:port itself), and the matching LinkFault — if any — is applied
// under a per-link (src,dst,seq)-keyed PRNG.
type ChaosTransport struct {
	// Base performs real requests. Defaults to http.DefaultTransport.
	Base http.RoundTripper
	// Src is this end's node id (e.g. "router", "n2", "specload").
	Src string
	// Resolve maps a request's host:port to the peer's node id. nil
	// uses the host:port verbatim — fine when the plan names hosts.
	Resolve func(host string) string
	// Config carries the seed and the link table.
	Config ChaosConfig

	mu   sync.Mutex
	seqs map[string]uint64 // per-link request ordinals

	drops  atomic.Int64
	errs   atomic.Int64
	delays atomic.Int64
	passed atomic.Int64
}

// Drops counts requests dropped (partition or drop faults).
func (t *ChaosTransport) Drops() int64 { return t.drops.Load() }

// Errors counts fabricated 503 responses.
func (t *ChaosTransport) Errors() int64 { return t.errs.Load() }

// Delays counts requests that had latency injected.
func (t *ChaosTransport) Delays() int64 { return t.delays.Load() }

// Passed counts requests forwarded to Base unharmed.
func (t *ChaosTransport) Passed() int64 { return t.passed.Load() }

// link finds the fault spec for dst (exact, then wildcard forms).
func (t *ChaosTransport) link(dst string) (LinkFault, bool) {
	for _, key := range []string{
		t.Src + ">" + dst, "*>" + dst, t.Src + ">*", "*>*",
	} {
		if lf, ok := t.Config.Links[key]; ok {
			return lf, lf.active()
		}
	}
	return LinkFault{}, false
}

// nextSeq hands out the request's ordinal on its link.
func (t *ChaosTransport) nextSeq(key string) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.seqs == nil {
		t.seqs = make(map[string]uint64)
	}
	seq := t.seqs[key]
	t.seqs[key] = seq + 1
	return seq
}

// fnv64 hashes a link key (FNV-1a).
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// linkSeed derives the deterministic PRNG seed for one request: pure
// function of (seed, src, dst, seq), independent of wall clock and of
// interleaving with other links.
func linkSeed(seed uint64, src, dst string, seq uint64) uint64 {
	return fnv64(src+">"+dst) ^ seed ^ (seq * 0x9e3779b97f4a7c15)
}

// RoundTrip implements http.RoundTripper.
func (t *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	dst := req.URL.Host
	if t.Resolve != nil {
		if id := t.Resolve(dst); id != "" {
			dst = id
		}
	}
	lf, ok := t.link(dst)
	if !ok {
		t.passed.Add(1)
		return t.base().RoundTrip(req)
	}
	seq := t.nextSeq(t.Src + ">" + dst)
	r := rng.New(linkSeed(t.Config.Seed, t.Src, dst, seq))

	if lf.Partition || (lf.Drop > 0 && r.Float64() < lf.Drop) {
		t.drops.Add(1)
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &ChaosError{Src: t.Src, Dst: dst, Seq: seq}
	}

	if lf.ErrRate > 0 {
		// One decision per burst group, drawn from its own stream so
		// consecutive requests fail together.
		burst := lf.ErrBurst
		if burst < 1 {
			burst = 1
		}
		group := seq / uint64(burst)
		gr := rng.New(linkSeed(t.Config.Seed^0x5ca1ab1e, t.Src, dst, group))
		if gr.Float64() < lf.ErrRate {
			t.errs.Add(1)
			if req.Body != nil {
				req.Body.Close()
			}
			body := `{"error":"chaos: injected 503"}` + "\n"
			return &http.Response{
				Status:     "503 Service Unavailable",
				StatusCode: http.StatusServiceUnavailable,
				Proto:      req.Proto,
				ProtoMajor: req.ProtoMajor,
				ProtoMinor: req.ProtoMinor,
				Header: http.Header{
					"Content-Type": []string{"application/json"},
					"Retry-After":  []string{"1"},
				},
				Body:          io.NopCloser(strings.NewReader(body)),
				ContentLength: int64(len(body)),
				Request:       req,
			}, nil
		}
	}

	if lf.LatMax > 0 {
		d := lf.LatMin
		if lf.LatMax > lf.LatMin {
			d += time.Duration(r.Float64() * float64(lf.LatMax-lf.LatMin))
		}
		if d > 0 {
			t.delays.Add(1)
			timer := time.NewTimer(d)
			select {
			case <-req.Context().Done():
				timer.Stop()
				if req.Body != nil {
					req.Body.Close()
				}
				return nil, req.Context().Err()
			case <-timer.C:
			}
		}
	}

	t.passed.Add(1)
	return t.base().RoundTrip(req)
}

func (t *ChaosTransport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// ChaosListener wraps a net.Listener with deterministic inbound
// faults, the server-side half of the chaos pair. Remote peers cannot
// be told apart at accept time (ephemeral ports), so the listener
// applies one LinkFault to every inbound connection, keyed by accept
// ordinal: Partition/Drop close the connection before the HTTP layer
// sees it, latency delays the accept (connection-granular, coarser
// than the transport's per-request latency — use the transport side
// when per-request precision matters).
type ChaosListener struct {
	net.Listener
	Fault LinkFault
	Seed  uint64

	seq     atomic.Uint64
	dropped atomic.Int64
}

// Dropped counts connections the listener closed at accept.
func (l *ChaosListener) Dropped() int64 { return l.dropped.Load() }

// Accept implements net.Listener.
func (l *ChaosListener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return c, err
		}
		seq := l.seq.Add(1) - 1
		r := rng.New(linkSeed(l.Seed, "*", "self", seq))
		if l.Fault.Partition || (l.Fault.Drop > 0 && r.Float64() < l.Fault.Drop) {
			l.dropped.Add(1)
			c.Close()
			continue
		}
		if l.Fault.LatMax > 0 {
			d := l.Fault.LatMin
			if l.Fault.LatMax > l.Fault.LatMin {
				d += time.Duration(r.Float64() * float64(l.Fault.LatMax-l.Fault.LatMin))
			}
			time.Sleep(d)
		}
		return c, nil
	}
}
