package faultinject

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/rng"
)

// RoundTripper injects deterministic 429 responses in front of a real
// http.RoundTripper, simulating service backpressure without the
// service being busy. Each matching request draws from a seeded stream:
// with probability Rate the request is answered locally with 429 and a
// Retry-After header; otherwise it passes through to Base.
//
// The draw sequence is deterministic, so a single-goroutine caller sees
// the same reject pattern every run. Concurrent callers still get a
// deterministic total rejection count over n requests if Rate is 0 or 1,
// and a seed-stable distribution otherwise.
type RoundTripper struct {
	// Base performs real requests. Defaults to http.DefaultTransport.
	Base http.RoundTripper

	// Rate is the probability a matching request is rejected.
	Rate float64

	// RetryAfter is the value (in whole seconds, minimum 1) sent in
	// the Retry-After header of injected 429s.
	RetryAfter int

	// Match selects which requests are candidates for rejection.
	// Defaults to POST requests (job submissions), leaving polls and
	// health checks untouched.
	Match func(*http.Request) bool

	// Seed drives the rejection stream.
	Seed uint64

	mu       sync.Mutex
	r        *rng.Rand // lazily seeded under mu
	injected atomic.Int64
	passed   atomic.Int64
}

// Injected returns how many 429s the tripper has fabricated.
func (t *RoundTripper) Injected() int64 { return t.injected.Load() }

// Passed returns how many requests went through to Base.
func (t *RoundTripper) Passed() int64 { return t.passed.Load() }

func (t *RoundTripper) draw() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.r == nil {
		t.r = rng.New(t.Seed)
	}
	return t.r.Float64() < t.Rate
}

// RoundTrip implements http.RoundTripper.
func (t *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	match := t.Match
	if match == nil {
		match = func(r *http.Request) bool { return r.Method == http.MethodPost }
	}
	if match(req) && t.draw() {
		t.injected.Add(1)
		retryAfter := t.RetryAfter
		if retryAfter < 1 {
			retryAfter = 1
		}
		body := `{"error":"faultinject: queue full"}` + "\n"
		resp := &http.Response{
			Status:     "429 Too Many Requests",
			StatusCode: http.StatusTooManyRequests,
			Proto:      req.Proto,
			ProtoMajor: req.ProtoMajor,
			ProtoMinor: req.ProtoMinor,
			Header: http.Header{
				"Content-Type": []string{"application/json"},
				"Retry-After":  []string{strconv.Itoa(retryAfter)},
			},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}
		if req.Body != nil {
			req.Body.Close()
		}
		return resp, nil
	}
	t.passed.Add(1)
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}
