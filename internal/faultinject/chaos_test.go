package faultinject

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/vfs"
)

func TestParseChaosPlan(t *testing.T) {
	links, err := ParseChaosPlan("n2>router:part; router>n3:lat=50ms..100ms,err=0.2x3 ;*>n1:drop=0.5,lat=10ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 3 {
		t.Fatalf("got %d links, want 3", len(links))
	}
	if lf := links["n2>router"]; !lf.Partition {
		t.Errorf("n2>router: want partition, got %+v", lf)
	}
	lf := links["router>n3"]
	if lf.LatMin != 50*time.Millisecond || lf.LatMax != 100*time.Millisecond {
		t.Errorf("router>n3 latency: got %v..%v", lf.LatMin, lf.LatMax)
	}
	if lf.ErrRate != 0.2 || lf.ErrBurst != 3 {
		t.Errorf("router>n3 err: got rate=%v burst=%d", lf.ErrRate, lf.ErrBurst)
	}
	if lf := links["*>n1"]; lf.Drop != 0.5 || lf.LatMin != 10*time.Millisecond || lf.LatMax != 10*time.Millisecond {
		t.Errorf("*>n1: got %+v", lf)
	}

	// Round-trip through the formatter.
	again, err := ParseChaosPlan(FormatChaosPlan(links))
	if err != nil {
		t.Fatalf("re-parsing formatted plan: %v", err)
	}
	if len(again) != len(links) {
		t.Errorf("format/parse round trip lost links: %d != %d", len(again), len(links))
	}

	for _, bad := range []string{
		"nocolon", "a>:part", ">b:part", "a>b:drop=2", "a>b:lat=xyz",
		"a>b:lat=100ms..50ms", "a>b:err=1.5", "a>b:err=0.5x0", "a>b:frobnicate",
	} {
		if _, err := ParseChaosPlan(bad); err == nil {
			t.Errorf("plan %q: want error, got nil", bad)
		}
	}
}

// chaosOutcomes records the fate of n sequential requests through a
// fresh transport: "drop", "503", or "pass".
func chaosOutcomes(t *testing.T, seed uint64, plan string, n int) []string {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(srv.Close)
	links, err := ParseChaosPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	ct := &ChaosTransport{
		Src:     "src",
		Resolve: func(string) string { return "dst" },
		Config:  ChaosConfig{Seed: seed, Links: links},
	}
	client := &http.Client{Transport: ct}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		resp, err := client.Get(srv.URL)
		switch {
		case err != nil:
			out = append(out, "drop")
		case resp.StatusCode == http.StatusServiceUnavailable:
			resp.Body.Close()
			out = append(out, "503")
		default:
			resp.Body.Close()
			out = append(out, "pass")
		}
	}
	return out
}

func TestChaosTransportDeterministicReplay(t *testing.T) {
	const plan = "src>dst:drop=0.3,err=0.2x2"
	a := chaosOutcomes(t, 42, plan, 200)
	b := chaosOutcomes(t, 42, plan, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d diverged between identical runs: %s vs %s", i, a[i], b[i])
		}
	}
	// A different seed must produce a different schedule (overwhelmingly).
	c := chaosOutcomes(t, 43, plan, 200)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seeds 42 and 43 produced identical fault schedules")
	}
	// Sanity: all three classes occur under these rates in 200 draws.
	kinds := map[string]bool{}
	for _, k := range a {
		kinds[k] = true
	}
	for _, want := range []string{"drop", "503", "pass"} {
		if !kinds[want] {
			t.Errorf("outcome %q never occurred in 200 requests", want)
		}
	}
}

func TestChaosTransportAsymmetricPartition(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	links, err := ParseChaosPlan("a>b:part")
	if err != nil {
		t.Fatal(err)
	}
	cfg := ChaosConfig{Seed: 7, Links: links}

	// a -> b: every request dropped, surfaced as *url.Error (transport).
	aToB := &http.Client{Transport: &ChaosTransport{
		Src: "a", Resolve: func(string) string { return "b" }, Config: cfg,
	}}
	for i := 0; i < 5; i++ {
		_, err := aToB.Get(srv.URL)
		var ue *url.Error
		if !errors.As(err, &ue) {
			t.Fatalf("a>b request %d: want *url.Error, got %v", i, err)
		}
	}

	// b -> a: same config, reverse direction — untouched.
	bToA := &http.Client{Transport: &ChaosTransport{
		Src: "b", Resolve: func(string) string { return "a" }, Config: cfg,
	}}
	for i := 0; i < 5; i++ {
		resp, err := bToA.Get(srv.URL)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("b>a request %d: want 200, got %v / %v", i, resp, err)
		}
		resp.Body.Close()
	}
}

func TestChaosTransportLatencyAndDeadline(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	links, _ := ParseChaosPlan("a>b:lat=30ms..60ms")
	ct := &ChaosTransport{Src: "a", Resolve: func(string) string { return "b" }, Config: ChaosConfig{Seed: 1, Links: links}}
	client := &http.Client{Transport: ct}

	start := time.Now()
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("latency injection too fast: %v", d)
	}
	if ct.Delays() != 1 {
		t.Errorf("delays counter: got %d, want 1", ct.Delays())
	}

	// A context deadline shorter than the injected latency aborts the
	// request instead of sleeping through it.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	if _, err := client.Do(req); err == nil {
		t.Fatal("want deadline error through injected latency, got nil")
	}
}

func TestChaosListenerDropsConnections(t *testing.T) {
	srv := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	cl := &ChaosListener{Listener: srv.Listener, Fault: LinkFault{Drop: 0.5}, Seed: 9}
	srv.Listener = cl
	srv.Start()
	defer srv.Close()

	// Disable keep-alives so every request is one connection (one draw).
	tr := &http.Transport{DisableKeepAlives: true}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr, Timeout: 2 * time.Second}
	var ok, failed int
	for i := 0; i < 40; i++ {
		resp, err := client.Get(srv.URL)
		if err != nil {
			failed++
			continue
		}
		resp.Body.Close()
		ok++
	}
	if ok == 0 || failed == 0 {
		t.Fatalf("want a mix of served and dropped connections, got ok=%d failed=%d (dropped=%d)",
			ok, failed, cl.Dropped())
	}
	if cl.Dropped() == 0 {
		t.Error("listener dropped counter never moved")
	}
}

func TestFaultFSInjectsAndHeals(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(vfs.OS{})

	f, err := ffs.OpenFile(filepath.Join(dir, "x.log"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}

	// Arm an fsync fault on .log files only.
	ffs.Fail("sync", ".log", ErrNoSpace)
	if err := f.Sync(); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("armed sync: got %v, want ENOSPC", err)
	}
	if ffs.Injected() == 0 {
		t.Error("injected counter never moved")
	}
	// Writes are unaffected; other paths are unaffected.
	if _, err := f.Write([]byte("more")); err != nil {
		t.Fatalf("write under sync-only fault: %v", err)
	}
	g, err := ffs.OpenFile(filepath.Join(dir, "y.db"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Sync(); err != nil {
		t.Fatalf(".db sync under .log-only fault: %v", err)
	}
	g.Close()

	// Heal: the same handle works again (fault checked per call).
	ffs.Clear()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after heal: %v", err)
	}

	// Write faults hit immediately, then heal.
	ffs.Fail("write", "", io.ErrShortWrite)
	if _, err := f.Write([]byte("z")); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("armed write: got %v", err)
	}
	ffs.Clear()
	if _, err := f.Write([]byte("z")); err != nil {
		t.Fatalf("write after heal: %v", err)
	}

	// Contents reflect only the successful writes.
	data, err := ffs.ReadFile(filepath.Join(dir, "x.log"))
	if err != nil {
		t.Fatal(err)
	}
	if got := string(data); !strings.HasPrefix(got, "okmore") {
		t.Errorf("file contents: %q", got)
	}
}
