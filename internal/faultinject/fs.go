package faultinject

import (
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"

	"repro/internal/vfs"
)

// ErrNoSpace is the canonical disk-full error injected by FaultFS
// tests (ENOSPC, exactly what a real full filesystem returns).
var ErrNoSpace error = syscall.ENOSPC

// FaultFS wraps a vfs.FS with programmable failures, so journal tests
// can make fsync fail mid-group-commit or the disk fill up during a
// rotation without touching the real filesystem. Rules are matched by
// operation and path substring; faults flip on and off at runtime
// (Fail / Clear), which is how tests model a disk that heals.
//
// Operations: "open" (OpenFile/Open), "write" (File.Write), "sync"
// (File.Sync), "read" (ReadFile/ReadDir), "mkdir", "remove", "rename",
// "truncate".
type FaultFS struct {
	base vfs.FS

	mu    sync.Mutex
	rules []fsRule

	injected atomic.Int64
}

type fsRule struct {
	op     string
	substr string // path substring filter; "" matches every path
	err    error
}

// NewFaultFS wraps base (nil = the real OS filesystem).
func NewFaultFS(base vfs.FS) *FaultFS {
	if base == nil {
		base = vfs.OS{}
	}
	return &FaultFS{base: base}
}

// Fail arms a fault: every op on a path containing substr returns err
// until Clear. Multiple rules stack; the first match wins.
func (f *FaultFS) Fail(op, substr string, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, fsRule{op: op, substr: substr, err: err})
}

// Clear disarms every fault — the disk has healed.
func (f *FaultFS) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
}

// Injected reports how many operations failed by injection.
func (f *FaultFS) Injected() int64 { return f.injected.Load() }

func (f *FaultFS) check(op, name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.rules {
		if r.op == op && (r.substr == "" || strings.Contains(name, r.substr)) {
			f.injected.Add(1)
			return r.err
		}
	}
	return nil
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (vfs.File, error) {
	if err := f.check("open", name); err != nil {
		return nil, err
	}
	file, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: file, fs: f, name: name}, nil
}

func (f *FaultFS) Open(name string) (vfs.File, error) {
	if err := f.check("open", name); err != nil {
		return nil, err
	}
	file, err := f.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: file, fs: f, name: name}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if err := f.check("read", name); err != nil {
		return nil, err
	}
	return f.base.ReadFile(name)
}

func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) {
	if err := f.check("read", name); err != nil {
		return nil, err
	}
	return f.base.ReadDir(name)
}

func (f *FaultFS) MkdirAll(name string, perm os.FileMode) error {
	if err := f.check("mkdir", name); err != nil {
		return err
	}
	return f.base.MkdirAll(name, perm)
}

func (f *FaultFS) Remove(name string) error {
	if err := f.check("remove", name); err != nil {
		return err
	}
	return f.base.Remove(name)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.check("rename", oldpath); err != nil {
		return err
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if err := f.check("truncate", name); err != nil {
		return err
	}
	return f.base.Truncate(name, size)
}

// faultFile routes write and sync through the fault table, so a fault
// armed after a file was opened still hits it (a disk goes bad under
// an open handle — the fsync-failure case).
type faultFile struct {
	f    vfs.File
	fs   *FaultFS
	name string
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if err := ff.fs.check("write", ff.name); err != nil {
		return 0, err
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	if err := ff.fs.check("sync", ff.name); err != nil {
		return err
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }
