// Package faultinject provides deterministic fault injection for the
// speculation runtime. An Injector wraps tasks as they enter an
// executor's work-set (via the executors' WrapTask hook) and makes some
// of them panic, return errors, or stall, according to a seeded plan.
//
// Determinism is the whole point: attempt IDs, round composition, and
// lock-race winners all depend on goroutine scheduling, so faults keyed
// on any of those would make chaos tests flaky. Instead each wrapped
// task receives a plan derived purely from its wrap-order index — the
// order tasks are Added, which for a fixed workload build is
// deterministic even when execution is not. A "poison" plan fails every
// attempt, so a poison-planned task is guaranteed to exhaust any retry
// budget and land in the executor's quarantine. That makes
// PoisonPlanCount an exact predictor of the poisoned-task count for
// workloads with a fixed task population (no commit-time spawns).
package faultinject

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/rng"
	"repro/internal/speculation"
)

// ErrInjected is the base error for injected (non-panic) task failures.
// Injected failures wrap it, so errors.Is(err, ErrInjected) identifies
// them in failure records and logs.
var ErrInjected = errors.New("faultinject: injected failure")

// Config describes a fault plan. Rates are probabilities in [0, 1]
// applied per task (not per attempt); PanicRate + ErrorRate +
// PoisonRate must not exceed 1.
type Config struct {
	// Seed selects the fault plan. The same Config always picks the
	// same victims in wrap order.
	Seed uint64

	// PanicRate is the fraction of tasks that panic transiently: the
	// task panics on its first 1..TransientAttempts attempts, then
	// succeeds, exercising rollback + retry without poisoning.
	PanicRate float64

	// ErrorRate is like PanicRate but the task returns an error
	// (wrapping ErrInjected) instead of panicking.
	ErrorRate float64

	// PoisonRate is the fraction of tasks that fail every attempt
	// (half panic, half error, chosen per task) and therefore exhaust
	// any retry budget and end up quarantined.
	PoisonRate float64

	// TransientAttempts bounds how many attempts a transient victim
	// fails before recovering (each victim draws 1..TransientAttempts).
	// It must stay at or below the executor's retry budget or a
	// transient fault could accidentally poison; callers should clamp
	// it. Zero disables transient faults even if rates are set.
	TransientAttempts int

	// DelayRate is the fraction of tasks that sleep Delay on every
	// attempt, independent of the failure bands above.
	DelayRate float64

	// Delay is how long delayed tasks stall per attempt.
	Delay time.Duration
}

// Validate reports whether the rates form a sane plan.
func (c *Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"panic_rate", c.PanicRate}, {"error_rate", c.ErrorRate}, {"poison_rate", c.PoisonRate}, {"delay_rate", c.DelayRate}} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faultinject: %s %v outside [0,1]", r.name, r.v)
		}
	}
	if s := c.PanicRate + c.ErrorRate + c.PoisonRate; s > 1 {
		return fmt.Errorf("faultinject: failure rates sum to %v > 1", s)
	}
	if c.TransientAttempts < 0 {
		return fmt.Errorf("faultinject: transient_attempts %d < 0", c.TransientAttempts)
	}
	if c.Delay < 0 {
		return fmt.Errorf("faultinject: delay %v < 0", c.Delay)
	}
	return nil
}

// plan is the fate assigned to one wrapped task.
type plan struct {
	// fails is how many leading attempts fail; poisoned tasks get a
	// huge value so every attempt fails.
	fails   int
	panics  bool // fail by panicking rather than returning an error
	poison  bool
	delayed bool
}

const poisonFails = 1 << 30

// planFor derives task i's fate. One uniform draw selects the failure
// band so the three rates partition [0,1); further draws shape the
// failure. Each task gets its own splitmix-seeded stream, so plans are
// independent of each other and of how many tasks exist.
func (c *Config) planFor(i int64) plan {
	r := rng.New((c.Seed ^ (uint64(i) * 0x9e3779b97f4a7c15)) + 0x2545f4914f6cdd1d)
	var p plan
	u := r.Float64()
	switch {
	case u < c.PoisonRate:
		p.poison = true
		p.fails = poisonFails
		p.panics = r.Bool()
	case u < c.PoisonRate+c.PanicRate && c.TransientAttempts > 0:
		p.fails = 1 + r.Intn(c.TransientAttempts)
		p.panics = true
	case u < c.PoisonRate+c.PanicRate+c.ErrorRate && c.TransientAttempts > 0:
		p.fails = 1 + r.Intn(c.TransientAttempts)
	}
	p.delayed = r.Float64() < c.DelayRate
	return p
}

// PoisonPlanCount returns how many of the first n wrapped tasks are
// poison-planned. For a workload that wraps exactly n tasks and spawns
// none, this equals the executor's final poisoned-task count exactly.
func (c *Config) PoisonPlanCount(n int) int {
	count := 0
	for i := int64(0); i < int64(n); i++ {
		if c.planFor(i).poison {
			count++
		}
	}
	return count
}

// Injector hands out per-task fault plans and tallies what it did.
// Wrap methods are safe for concurrent use; the wrap-order index is
// allocated atomically, so determinism requires that tasks be wrapped
// (Added) in a deterministic order — true for single-goroutine
// workload construction.
type Injector struct {
	cfg Config

	next    atomic.Int64 // wrap-order index allocator
	panics  atomic.Int64 // injected panics (attempts, not tasks)
	errors  atomic.Int64 // injected errors (attempts, not tasks)
	delays  atomic.Int64 // injected delays (attempts)
	poisons atomic.Int64 // poison-planned tasks wrapped
}

// New validates cfg and builds an Injector.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{cfg: cfg}, nil
}

// Wrapped returns how many tasks the injector has wrapped.
func (in *Injector) Wrapped() int64 { return in.next.Load() }

// Panics returns the number of injected panic attempts so far.
func (in *Injector) Panics() int64 { return in.panics.Load() }

// Errors returns the number of injected error attempts so far.
func (in *Injector) Errors() int64 { return in.errors.Load() }

// Delays returns the number of injected delay attempts so far.
func (in *Injector) Delays() int64 { return in.delays.Load() }

// PoisonPlanned returns how many wrapped tasks carry a poison plan.
func (in *Injector) PoisonPlanned() int64 { return in.poisons.Load() }

// fault executes task i's share of attempt a: a delay, then a panic or
// error if this attempt is within the plan's failing prefix. Returns
// nil when the underlying task should run.
func (in *Injector) fault(p plan, attempt int64) error {
	if p.delayed {
		in.delays.Add(1)
		time.Sleep(in.cfg.Delay)
	}
	if attempt > int64(p.fails) {
		return nil
	}
	if p.panics {
		in.panics.Add(1)
		panic(fmt.Sprintf("faultinject: planned panic (attempt %d/%d)", attempt, p.fails))
	}
	in.errors.Add(1)
	return fmt.Errorf("%w (attempt %d/%d)", ErrInjected, attempt, p.fails)
}

func (in *Injector) newPlan() plan {
	p := in.cfg.planFor(in.next.Add(1) - 1)
	if p.poison {
		in.poisons.Add(1)
	}
	return p
}

// faultedTask wraps an unordered task with a fault plan.
type faultedTask struct {
	inner    speculation.Task
	in       *Injector
	plan     plan
	attempts atomic.Int64
}

func (t *faultedTask) Run(ctx *speculation.Ctx) error {
	if err := t.in.fault(t.plan, t.attempts.Add(1)); err != nil {
		return err
	}
	return t.inner.Run(ctx)
}

// WrapTask is the unordered-executor hook: assign the next plan.
func (in *Injector) WrapTask(t speculation.Task) speculation.Task {
	return &faultedTask{inner: t, in: in, plan: in.newPlan()}
}

// faultedOrdered wraps an ordered task with a fault plan, forwarding
// the priority key unchanged.
type faultedOrdered struct {
	inner    speculation.OrderedTask
	in       *Injector
	plan     plan
	attempts atomic.Int64
}

func (t *faultedOrdered) Key() speculation.Key { return t.inner.Key() }

func (t *faultedOrdered) Run(ctx *speculation.OrderedCtx) error {
	if err := t.in.fault(t.plan, t.attempts.Add(1)); err != nil {
		return err
	}
	return t.inner.Run(ctx)
}

// WrapOrdered is the ordered-executor hook.
func (in *Injector) WrapOrdered(t speculation.OrderedTask) speculation.OrderedTask {
	return &faultedOrdered{inner: t, in: in, plan: in.newPlan()}
}
