package core

import (
	"math"
	"testing"

	"repro/internal/control"
	"repro/internal/speculation"
)

func TestSimulationEndToEnd(t *testing.T) {
	g := RandomCCGraph(1, 500, 8)
	if g.NumNodes() != 500 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	sim := NewSimulation(g, 2)
	traj := sim.RunAdaptive(NewController(0.25), 100000)
	if sim.Graph().NumNodes() != 0 {
		t.Fatal("simulation did not drain")
	}
	total := 0
	for _, c := range traj.Committed {
		total += c
	}
	if total != 500 {
		t.Fatalf("committed %d, want 500", total)
	}
}

func TestSimulationStaticAndTarget(t *testing.T) {
	g := RandomCCGraph(3, 1000, 12)
	sim := NewSimulation(g, 4)
	mu := sim.TargetM(0.25, 300)
	if mu < 2 || mu > 1000 {
		t.Fatalf("μ = %d out of range", mu)
	}
	traj := sim.RunStatic(NewController(0.25), 200)
	if traj.Len() != 200 {
		t.Fatalf("static run has %d rounds", traj.Len())
	}
	mean, _ := traj.SteadyStateStats(50)
	if math.Abs(mean-float64(mu)) > 0.5*float64(mu) {
		t.Errorf("steady state %v far from μ=%d", mean, mu)
	}
	if sim.Graph().NumNodes() != 1000 {
		t.Error("static run mutated the graph")
	}
}

func TestEstimateAccessors(t *testing.T) {
	e := Estimate{N: 2000, D: 16}
	if got := e.TuranParallelism(); math.Abs(got-2000.0/17) > 1e-9 {
		t.Errorf("Turán = %v", got)
	}
	if got := e.InitialSlope(); math.Abs(got-16.0/(2*1999)) > 1e-12 {
		t.Errorf("slope = %v", got)
	}
	if got := e.SafeInitialM(); got != 58 {
		t.Errorf("SafeInitialM = %d", got)
	}
	if r1 := e.WorstCaseConflictRatio(58); r1 > 0.22 {
		t.Errorf("worst-case ratio at safe m = %v, want ≤ ~0.213", r1)
	}
}

func TestWorstCaseCCGraph(t *testing.T) {
	g := WorstCaseCCGraph(120, 5)
	if g.NumNodes() != 120 || g.AvgDegree() != 5 {
		t.Fatalf("n=%d d=%v", g.NumNodes(), g.AvgDegree())
	}
}

func TestRuntimeFacade(t *testing.T) {
	rt := NewRuntime(5)
	it := NewItem(0)
	for i := 0; i < 20; i++ {
		rt.Add(taskFunc(func(ctx *Ctx) error { return ctx.Acquire(it) }))
	}
	res := rt.RunAdaptive(NewController(0.25), 10000)
	if rt.Pending() != 0 {
		t.Fatal("runtime did not drain")
	}
	if res.Rounds == 0 {
		t.Fatal("no rounds recorded")
	}
	if rt.Executor().TotalCommitted() != 20 {
		t.Fatalf("committed %d", rt.Executor().TotalCommitted())
	}
}

func TestRunGraphEndToEnd(t *testing.T) {
	g := RandomCCGraph(6, 400, 10)
	res := RunGraph(g, 7, NewController(0.25), 100000)
	if g.NumNodes() != 0 {
		t.Fatalf("%d nodes left", g.NumNodes())
	}
	total := 0
	for _, c := range res.Committed {
		total += c
	}
	if total != 400 {
		t.Fatalf("committed %d, want 400", total)
	}
}

// taskFunc mirrors speculation.TaskFunc without re-exporting it; the
// facade test verifies the aliased interfaces compose.
type taskFunc func(ctx *Ctx) error

func (f taskFunc) Run(ctx *Ctx) error { return f(ctx) }

func TestNewControllerWithConfig(t *testing.T) {
	cfg := control.DefaultHybridConfig(0.3)
	cfg.MMax = 128
	h := NewControllerWithConfig(cfg)
	if h.Config().MMax != 128 {
		t.Fatal("config not applied")
	}
}

func TestSimulationConflictRatio(t *testing.T) {
	sim := NewSimulation(WorstCaseCCGraph(60, 5), 1)
	got := sim.ConflictRatio(30, 3000)
	// Thm. 3 closed form at n=60, d=5, m=30.
	want := Estimate{N: 60, D: 5}.WorstCaseConflictRatio(30)
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("measured %v vs closed form %v", got, want)
	}
}

func TestRuntimeRound(t *testing.T) {
	rt := NewRuntime(9)
	rt.Add(taskFunc(func(*Ctx) error { return nil }))
	st := rt.Round(4)
	if st.Committed != 1 {
		t.Fatalf("round stats %+v", st)
	}
}

func TestOrderedRuntimeFacade(t *testing.T) {
	rt := NewOrderedRuntime()
	var order []float64
	for _, tm := range []float64{3, 1, 2} {
		tm := tm
		rt.Add(orderedNote{t: tm, fn: func() { order = append(order, tm) }})
	}
	if rt.Pending() != 3 {
		t.Fatalf("pending %d", rt.Pending())
	}
	res := rt.RunAdaptive(NewController(0.25), 1000)
	if res.UsefulWork != 3 {
		t.Fatalf("useful %d", res.UsefulWork)
	}
	if rt.Executor().TotalCommitted() != 3 {
		t.Fatal("executor counters missing")
	}
	for i, want := range []float64{1, 2, 3} {
		if order[i] != want {
			t.Fatalf("commit order %v", order)
		}
	}
}

type orderedNote struct {
	t  float64
	fn func()
}

func (o orderedNote) Key() speculation.Key { return speculation.Key{Time: o.t} }
func (o orderedNote) Run(ctx *speculation.OrderedCtx) error {
	ctx.OnCommit(o.fn)
	return nil
}
