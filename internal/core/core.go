// Package core is the library's public face: it ties together the CC-graph
// model (internal/graph, internal/sched), the §3 theory (internal/analytic),
// the §4 adaptive controller (internal/control), and the goroutine-based
// optimistic runtime (internal/speculation) behind a small, stable API.
//
// Typical use, model level:
//
//	g := core.RandomCCGraph(seed, 2000, 16)
//	sim := core.NewSimulation(g, seed)
//	traj := sim.RunAdaptive(core.NewController(0.25), 500)
//
// Typical use, runtime level:
//
//	rt := core.NewRuntime(seed)
//	rt.Add(myTask)                       // speculation.Task values
//	res := rt.RunAdaptive(core.NewController(0.25), 10000)
//
// The controller observes one conflict ratio per round and decides the
// next round's processor count; everything else (conflict detection,
// rollback, work-set policy) is handled by the substrates.
package core

import (
	"repro/internal/analytic"
	"repro/internal/control"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/speculation"
)

// Controller decides processor allocation round by round; see
// internal/control for implementations.
type Controller = control.Controller

// Task is a speculative unit of work; see internal/speculation.
type Task = speculation.Task

// Ctx is the speculative execution context passed to tasks.
type Ctx = speculation.Ctx

// Item is a lockable abstract location guarded by the runtime.
type Item = speculation.Item

// Trajectory records a closed-loop model run.
type Trajectory = control.Trajectory

// NewController returns the paper's Algorithm 1 hybrid controller with
// the published default parameters and target conflict ratio rho
// (ρ ∈ [20%, 30%] is the paper's recommendation, Remark 1).
func NewController(rho float64) *control.Hybrid {
	return control.NewHybrid(control.DefaultHybridConfig(rho))
}

// NewControllerWithConfig returns an Algorithm 1 controller with custom
// parameters.
func NewControllerWithConfig(cfg control.HybridConfig) *control.Hybrid {
	return control.NewHybrid(cfg)
}

// NewItem allocates a lockable item with a diagnostic tag.
func NewItem(tag int64) *Item { return speculation.NewItem(tag) }

// RandomCCGraph generates the paper's random computations/conflicts graph
// with n nodes and average degree d, deterministically from seed.
func RandomCCGraph(seed uint64, n int, d float64) *graph.Graph {
	return graph.RandomWithAvgDegree(rng.New(seed), n, d)
}

// WorstCaseCCGraph generates K^n_d, the worst-case clique-union graph of
// Thm. 2 ((d+1) must divide n).
func WorstCaseCCGraph(n, d int) *graph.Graph { return graph.CliqueUnion(n, d) }

// Simulation runs the paper's round-based scheduler model over a CC
// graph with controller-in-the-loop.
type Simulation struct {
	g *graph.Graph
	r *rng.Rand
}

// NewSimulation wraps g (owned by the simulation afterwards); all
// randomness derives from seed.
func NewSimulation(g *graph.Graph, seed uint64) *Simulation {
	return &Simulation{g: g, r: rng.New(seed)}
}

// Graph exposes the underlying CC graph.
func (s *Simulation) Graph() *graph.Graph { return s.g }

// RunAdaptive drains the CC graph under controller c (at most maxRounds
// rounds), returning the recorded trajectory.
func (s *Simulation) RunAdaptive(c Controller, maxRounds int) *Trajectory {
	return control.RunLoop(sched.New(s.g, s.r), c, maxRounds)
}

// RunStatic runs the controller against the static graph (no node
// removal) for exactly rounds rounds — the Fig. 3 experimental setting.
func (s *Simulation) RunStatic(c Controller, rounds int) *Trajectory {
	return control.RunLoopStatic(s.g, s.r, c, rounds)
}

// ConflictRatio estimates r̄(m) (Eq. 1) on the current graph by Monte
// Carlo with the given repetitions.
func (s *Simulation) ConflictRatio(m, reps int) float64 {
	return sched.ConflictRatioMC(s.g, s.r, m, reps)
}

// TargetM returns μ — the largest m whose conflict ratio stays within
// rho — located by bisection (valid by Prop. 1).
func (s *Simulation) TargetM(rho float64, reps int) int {
	return control.TargetM(s.g, s.r, rho, reps)
}

// ConflictRatioParallel estimates r̄(m) on a flat CSR snapshot with the
// Monte Carlo reps sharded across workers (≤ 0 means GOMAXPROCS); see
// internal/sched.Estimator for the determinism contract.
func (s *Simulation) ConflictRatioParallel(m, reps, workers int) float64 {
	return sched.ConflictRatioMCParallel(s.g, s.r, m, reps, workers)
}

// TargetMParallel is TargetM on the CSR estimation engine: one snapshot
// serves every bisection probe, each probe sharding reps across workers.
func (s *Simulation) TargetMParallel(rho float64, reps, workers int) int {
	return control.TargetMParallel(s.g, s.r, rho, reps, workers)
}

// Estimate bundles the closed-form §3 theory for a graph shape (n, d).
type Estimate struct {
	N int
	D float64
}

// TuranParallelism returns the guaranteed expected parallelism n/(d+1).
func (e Estimate) TuranParallelism() float64 { return analytic.TuranBound(e.N, e.D) }

// WorstCaseConflictRatio returns the Thm. 3 bound at m processors.
func (e Estimate) WorstCaseConflictRatio(m int) float64 {
	return analytic.WorstCaseConflictRatio(e.N, int(e.D), m)
}

// InitialSlope returns Δr̄(1) = d/(2(n−1)) (Prop. 2).
func (e Estimate) InitialSlope() float64 { return analytic.InitialSlope(e.N, e.D) }

// SafeInitialM returns the Cor. 3-derived starting allocation
// m = n/(2(d+1)), which keeps the worst-case conflict ratio ≤ ~21.3%.
func (e Estimate) SafeInitialM() int { return analytic.SuggestedInitialM(e.N, e.D) }

// Runtime is the goroutine-based optimistic parallelization runtime with
// adaptive allocation.
type Runtime struct {
	e *speculation.Executor
}

// NewRuntime returns an empty runtime whose random task selection is
// seeded from seed.
func NewRuntime(seed uint64) *Runtime {
	r := rng.New(seed)
	return &Runtime{e: speculation.NewExecutor(func(n int) int { return r.Intn(n) })}
}

// Add inserts a speculative task into the work-set.
func (rt *Runtime) Add(t Task) { rt.e.Add(t) }

// Pending returns the number of tasks awaiting execution.
func (rt *Runtime) Pending() int { return rt.e.Pending() }

// Executor exposes the underlying executor for advanced use.
func (rt *Runtime) Executor() *speculation.Executor { return rt.e }

// Round executes one speculative round of m tasks and returns its stats.
func (rt *Runtime) Round(m int) speculation.RoundStats { return rt.e.Round(m) }

// RunAdaptive drives the runtime under controller c until the work-set
// drains or maxRounds elapse.
func (rt *Runtime) RunAdaptive(c Controller, maxRounds int) *speculation.AdaptiveResult {
	return speculation.RunAdaptive(rt.e, c, maxRounds)
}

// OrderedTask is a prioritized speculative unit for ordered algorithms
// (events that must commit chronologically); see internal/speculation.
type OrderedTask = speculation.OrderedTask

// OrderedRuntime runs prioritized tasks optimistically with in-order
// commits — processor allocation for ordered algorithms (§5).
type OrderedRuntime struct {
	e *speculation.OrderedExecutor
}

// NewOrderedRuntime returns an empty ordered runtime.
func NewOrderedRuntime() *OrderedRuntime {
	return &OrderedRuntime{e: speculation.NewOrderedExecutor()}
}

// Add inserts a prioritized task.
func (rt *OrderedRuntime) Add(t OrderedTask) { rt.e.Add(t) }

// Pending returns the number of queued tasks.
func (rt *OrderedRuntime) Pending() int { return rt.e.Pending() }

// Executor exposes the underlying ordered executor.
func (rt *OrderedRuntime) Executor() *speculation.OrderedExecutor { return rt.e }

// RunAdaptive drives the ordered runtime under controller c.
func (rt *OrderedRuntime) RunAdaptive(c Controller, maxRounds int) *speculation.AdaptiveResult {
	return speculation.RunAdaptiveOrdered(rt.e, c, maxRounds)
}

// RunGraph is a convenience that executes an entire CC graph as
// speculative tasks under controller c: the end-to-end pipeline the
// paper's §5 anticipates ("integration in the Galois system").
func RunGraph(g *graph.Graph, seed uint64, c Controller, maxRounds int) *speculation.AdaptiveResult {
	r := rng.New(seed)
	wl := speculation.NewGraphWorkload(g)
	e := speculation.NewGraphExecutor(wl, r)
	return speculation.RunAdaptive(e, c, maxRounds)
}
