package core_test

import (
	"fmt"

	"repro/internal/core"
)

// The simplest use: let the paper's Algorithm 1 allocate processors
// while a random irregular workload drains.
func Example() {
	g := core.RandomCCGraph(42, 1000, 8)
	sim := core.NewSimulation(g, 7)
	traj := sim.RunAdaptive(core.NewController(0.25), 100000)

	total := 0
	for _, c := range traj.Committed {
		total += c
	}
	fmt.Println("committed:", total)
	fmt.Println("drained:", sim.Graph().NumNodes() == 0)
	// Output:
	// committed: 1000
	// drained: true
}

// The §3 theory answers capacity questions before anything runs.
func ExampleEstimate() {
	est := core.Estimate{N: 2000, D: 16}
	fmt.Printf("guaranteed parallelism: %.0f\n", est.TuranParallelism())
	fmt.Printf("safe initial m: %d\n", est.SafeInitialM())
	fmt.Printf("worst-case ratio at that m: %.3f\n",
		est.WorstCaseConflictRatio(est.SafeInitialM()))
	// Output:
	// guaranteed parallelism: 118
	// safe initial m: 58
	// worst-case ratio at that m: 0.199
}

// Custom speculative tasks run on the goroutine runtime; conflicting
// tasks (here: all contending for one item) serialize via abort/retry.
func ExampleRuntime() {
	rt := core.NewRuntime(1)
	account := core.NewItem(0)
	balance := 0
	for i := 0; i < 10; i++ {
		rt.Add(taskFunc(func(ctx *core.Ctx) error {
			if err := ctx.Acquire(account); err != nil {
				return err
			}
			ctx.OnCommit(func() { balance += 10 })
			return nil
		}))
	}
	rt.RunAdaptive(core.NewController(0.25), 10000)
	fmt.Println("balance:", balance)
	// Output:
	// balance: 100
}

type taskFunc func(ctx *core.Ctx) error

func (f taskFunc) Run(ctx *core.Ctx) error { return f(ctx) }
