package graph

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the coloring kernel behind the executor's colored
// mode: a Rokos-style speculative parallel graph coloring over a CSR
// snapshot. Workers first-fit color their shard of the worklist
// optimistically (reading neighbor colors that other workers may be
// writing), then a detection sweep finds edges whose endpoints collided
// and re-queues only the defective endpoints; the loop repeats until the
// coloring is proper. Both phases reuse CSRScratch's epoch-marked arrays
// so repeated colorings stop allocating once the pool is warm.

// maxColorIters bounds the speculative detect-and-recolor loop. Rokos et
// al. observe convergence in a handful of rounds; if the cap is ever hit
// the remaining defects are fixed by one serial pass, which restores a
// proper coloring unconditionally.
const maxColorIters = 32

// colorParallelCutoff is the snapshot size below which the serial
// first-fit path is used regardless of the requested worker count: the
// per-iteration goroutine fan-out costs more than coloring the whole
// graph in place.
const colorParallelCutoff = 2048

// ColorCSR assigns a proper vertex coloring to the snapshot and returns
// the color array (dense index -> color in [0, numColors)) plus the
// number of colors used. The colors buffer is reused when its capacity
// suffices, so steady-state re-colorings of same-sized snapshots do not
// allocate. workers ≤ 0 means GOMAXPROCS; one worker (or a small graph)
// takes the deterministic serial first-fit path.
//
// The coloring always uses at most maxDegree+1 colors: every first-fit
// pick, speculative or not, avoids only the ≤ deg(v) colors observed on
// v's neighbors. Parallel runs may produce different (still proper)
// colorings from run to run; serial runs are deterministic.
func ColorCSR(c *CSR, colors []int32, workers int) ([]int32, int) {
	n := c.NumNodes()
	if cap(colors) >= n {
		colors = colors[:n]
	} else {
		colors = make([]int32, n)
	}
	for i := range colors {
		colors[i] = -1
	}
	if n == 0 {
		return colors, 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || n < colorParallelCutoff {
		s := csrScratchPool.Get().(*CSRScratch)
		s.ensure(c)
		for v := int32(0); v < int32(n); v++ {
			colors[v] = firstFree(c, colors, v, s)
		}
		csrScratchPool.Put(s)
		return colors, countColors(colors)
	}
	colorParallel(c, colors, workers)
	return colors, countColors(colors)
}

// firstFree returns the smallest color not used by any colored neighbor
// of v. Forbidden colors are epoch-marked in s.mark, indexed by color
// value — safe because any candidate color is < n ≤ len(s.mark).
func firstFree(c *CSR, colors []int32, v int32, s *CSRScratch) int32 {
	s.epoch++
	e := s.epoch
	for _, u := range c.nbrs[c.offsets[v]:c.offsets[v+1]] {
		if cu := colors[u]; cu >= 0 {
			s.mark[cu] = e
		}
	}
	for col := int32(0); ; col++ {
		if s.mark[col] != e {
			return col
		}
	}
}

// firstFreeAtomic is firstFree with atomic neighbor reads, for the
// speculative phase where other workers may be writing neighbor colors
// concurrently. A stale read can at worst cause a detectable conflict;
// it can never push the pick past deg(v) distinct forbidden colors, so
// the maxDegree+1 bound survives the races.
func firstFreeAtomic(c *CSR, colors []int32, v int32, s *CSRScratch) int32 {
	s.epoch++
	e := s.epoch
	for _, u := range c.nbrs[c.offsets[v]:c.offsets[v+1]] {
		if cu := atomic.LoadInt32(&colors[u]); cu >= 0 {
			s.mark[cu] = e
		}
	}
	for col := int32(0); ; col++ {
		if s.mark[col] != e {
			return col
		}
	}
}

// colorParallel runs the speculative detect-and-recolor loop.
func colorParallel(c *CSR, colors []int32, workers int) {
	n := c.NumNodes()
	work := make([]int32, n)
	for i := range work {
		work[i] = int32(i)
	}
	// Per-worker defect buffers, reused across iterations.
	defects := make([][]int32, workers)

	var wg sync.WaitGroup
	for iter := 0; iter < maxColorIters && len(work) > 0; iter++ {
		// Phase 1: speculative first-fit over worklist shards. Writes are
		// atomic so concurrent neighbor reads are race-free; collisions
		// are caught by phase 2.
		shard := (len(work) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * shard
			if lo >= len(work) {
				break
			}
			hi := lo + shard
			if hi > len(work) {
				hi = len(work)
			}
			wg.Add(1)
			go func(part []int32) {
				defer wg.Done()
				s := csrScratchPool.Get().(*CSRScratch)
				s.ensure(c)
				for _, v := range part {
					atomic.StoreInt32(&colors[v], firstFreeAtomic(c, colors, v, s))
				}
				csrScratchPool.Put(s)
			}(work[lo:hi])
		}
		wg.Wait()

		// Phase 2: detect defective endpoints. For a monochromatic edge
		// the lower dense index keeps its color and the higher one is
		// re-queued, so every conflict shrinks by at least one endpoint.
		// Colors are quiescent here; plain reads are safe.
		for w := 0; w < workers; w++ {
			lo := w * shard
			if lo >= len(work) {
				break
			}
			hi := lo + shard
			if hi > len(work) {
				hi = len(work)
			}
			if defects[w] == nil {
				defects[w] = make([]int32, 0, hi-lo)
			}
			wg.Add(1)
			go func(w int, part []int32) {
				defer wg.Done()
				d := defects[w][:0]
				for _, v := range part {
					cv := colors[v]
					for _, u := range c.nbrs[c.offsets[v]:c.offsets[v+1]] {
						if u < v && colors[u] == cv {
							d = append(d, v)
							break
						}
					}
				}
				defects[w] = d
			}(w, work[lo:hi])
		}
		wg.Wait()

		work = work[:0]
		for w := 0; w < workers; w++ {
			work = append(work, defects[w]...)
		}
	}

	// Serial cleanup for any defects surviving the iteration cap: each
	// recolor avoids all current neighbor colors, so one pass restores a
	// proper coloring.
	if len(work) > 0 {
		s := csrScratchPool.Get().(*CSRScratch)
		s.ensure(c)
		for _, v := range work {
			colors[v] = firstFree(c, colors, v, s)
		}
		csrScratchPool.Put(s)
	}
}

func countColors(colors []int32) int {
	max := int32(-1)
	for _, col := range colors {
		if col > max {
			max = col
		}
	}
	return int(max + 1)
}

// IsProperColoring reports whether colors assigns every snapshotted node
// a color ≥ 0 with no monochromatic edge.
func IsProperColoring(c *CSR, colors []int32) bool {
	n := c.NumNodes()
	if len(colors) < n {
		return false
	}
	for v := 0; v < n; v++ {
		if colors[v] < 0 {
			return false
		}
		for _, u := range c.Neighbors(v) {
			if colors[u] == colors[v] && int(u) != v {
				return false
			}
		}
	}
	return true
}

// MaxDegreeCSR returns the maximum degree of the snapshot (0 for an
// empty snapshot).
func MaxDegreeCSR(c *CSR) int {
	max := 0
	for v := 0; v < c.NumNodes(); v++ {
		if d := c.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// NewCSRFromEdges builds a snapshot directly from an undirected edge
// list over dense node indices 0..n−1, without materializing a mutable
// Graph first — the constructor the conflict recorder uses to turn a
// learned edge set into a colorable CSR. Self-loops are ignored; the
// caller is expected to have deduplicated edges. Dense indices double as
// node IDs.
func NewCSRFromEdges(n int, edges [][2]int32) *CSR {
	c := &CSR{
		offsets: make([]int32, n+1),
		ids:     make([]int, n),
		remap:   make([]int32, n),
	}
	for i := 0; i < n; i++ {
		c.ids[i] = i
		c.remap[i] = int32(i)
	}
	deg := make([]int32, n)
	m := 0
	for _, e := range edges {
		if e[0] == e[1] {
			continue
		}
		deg[e[0]]++
		deg[e[1]]++
		m++
	}
	c.nbrs = make([]int32, 2*m)
	off := int32(0)
	for i := 0; i < n; i++ {
		c.offsets[i] = off
		off += deg[i]
	}
	c.offsets[n] = off
	// Fill pass: offsets temporarily double as write cursors, then are
	// rewound by subtracting the degrees.
	for _, e := range edges {
		if e[0] == e[1] {
			continue
		}
		c.nbrs[c.offsets[e[0]]] = e[1]
		c.offsets[e[0]]++
		c.nbrs[c.offsets[e[1]]] = e[0]
		c.offsets[e[1]]++
	}
	for i := 0; i < n; i++ {
		c.offsets[i] -= deg[i]
	}
	return c
}
