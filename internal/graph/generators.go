package graph

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// RandomGNM returns a uniform random simple graph with n nodes and
// exactly m edges, built the way the paper's Fig. 2 describes: "edges
// chosen uniformly at random until desired degree is reached". It panics
// if m exceeds the number of possible edges.
func RandomGNM(r *rng.Rand, n, m int) *Graph {
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		panic(fmt.Sprintf("graph: RandomGNM m=%d exceeds max %d", m, maxEdges))
	}
	g := NewWithNodes(n)
	if m > maxEdges/2 {
		// Dense regime: enumerate all edges and sample a subset, which
		// avoids quadratic rejection near saturation.
		type edge struct{ u, v int }
		all := make([]edge, 0, maxEdges)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				all = append(all, edge{u, v})
			}
		}
		for _, i := range r.PermPrefix(maxEdges, m) {
			g.AddEdge(all[i].u, all[i].v)
		}
		return g
	}
	for g.NumEdges() < m {
		u := r.Intn(n)
		v := r.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// RandomWithAvgDegree returns a uniform random graph with n nodes and
// average degree as close to d as possible (m = round(n*d/2) edges).
// This is the graph family used throughout the paper's simulations.
func RandomWithAvgDegree(r *rng.Rand, n int, d float64) *Graph {
	m := int(math.Round(float64(n) * d / 2))
	return RandomGNM(r, n, m)
}

// RandomGNP returns an Erdős–Rényi G(n, p) graph.
func RandomGNP(r *rng.Rand, n int, p float64) *Graph {
	g := NewWithNodes(n)
	if p <= 0 {
		return g
	}
	if p >= 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				g.AddEdge(u, v)
			}
		}
		return g
	}
	// Geometric skipping (Batagelj–Brandes) for O(n + m) generation.
	logQ := math.Log(1 - p)
	u, v := 1, -1
	for u < n {
		lr := math.Log(1 - r.Float64())
		v += 1 + int(lr/logQ)
		for v >= u && u < n {
			v -= u
			u++
		}
		if u < n {
			g.AddEdge(u, v)
		}
	}
	return g
}

// CliqueUnion returns the paper's worst-case graph K^n_d: the disjoint
// union of n/(d+1) cliques of size d+1. It panics unless (d+1) divides n.
func CliqueUnion(n, d int) *Graph {
	if d < 0 || n%(d+1) != 0 {
		panic(fmt.Sprintf("graph: CliqueUnion requires (d+1)|n, got n=%d d=%d", n, d))
	}
	g := NewWithNodes(n)
	size := d + 1
	for base := 0; base < n; base += size {
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				g.AddEdge(base+i, base+j)
			}
		}
	}
	return g
}

// CliquePlusIsolated returns the Example 1 graph: a clique of cliqueSize
// nodes plus isolated extra nodes (K_{n²} ∪ D_n in the paper, with
// cliqueSize = n² and isolated = n).
func CliquePlusIsolated(cliqueSize, isolated int) *Graph {
	g := NewWithNodes(cliqueSize + isolated)
	for i := 0; i < cliqueSize; i++ {
		for j := i + 1; j < cliqueSize; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// CliquesPlusIsolated returns the Fig. 2 (iii) family: numCliques cliques
// of size cliqueSize plus isolated extra nodes.
func CliquesPlusIsolated(numCliques, cliqueSize, isolated int) *Graph {
	n := numCliques*cliqueSize + isolated
	g := NewWithNodes(n)
	for c := 0; c < numCliques; c++ {
		base := c * cliqueSize
		for i := 0; i < cliqueSize; i++ {
			for j := i + 1; j < cliqueSize; j++ {
				g.AddEdge(base+i, base+j)
			}
		}
	}
	return g
}

// Complete returns K_n.
func Complete(n int) *Graph {
	return CliquePlusIsolated(n, 0)
}

// Empty returns n isolated nodes (the fully parallel CC graph).
func Empty(n int) *Graph { return NewWithNodes(n) }

// Cycle returns the n-cycle (n >= 3).
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: Cycle requires n >= 3")
	}
	g := NewWithNodes(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

// Path returns the n-node path.
func Path(n int) *Graph {
	g := NewWithNodes(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Star returns a star with one hub and n-1 leaves.
func Star(n int) *Graph {
	if n < 1 {
		panic("graph: Star requires n >= 1")
	}
	g := NewWithNodes(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}

// Grid2D returns the rows×cols 4-neighbor mesh — the graph family of the
// unfriendly-seating literature the paper cites (statistical physics on
// mesh-like graphs).
func Grid2D(rows, cols int) *Graph {
	g := NewWithNodes(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// RandomGeometric returns a random geometric graph: n points uniform in
// the unit square, edges between pairs closer than radius. This family
// mimics the cavity-overlap conflicts of mesh refinement.
func RandomGeometric(r *rng.Rand, n int, radius float64) *Graph {
	g := NewWithNodes(n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = r.Float64()
		ys[i] = r.Float64()
	}
	// Cell grid for near-linear neighbor search.
	cell := radius
	if cell <= 0 {
		panic("graph: RandomGeometric requires positive radius")
	}
	cols := int(1/cell) + 1
	grid := make(map[[2]int][]int)
	key := func(i int) [2]int {
		return [2]int{int(xs[i] / cell), int(ys[i] / cell)}
	}
	for i := 0; i < n; i++ {
		k := key(i)
		grid[k] = append(grid[k], i)
	}
	r2 := radius * radius
	for i := 0; i < n; i++ {
		k := key(i)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				kk := [2]int{k[0] + dx, k[1] + dy}
				if kk[0] < 0 || kk[1] < 0 || kk[0] >= cols || kk[1] >= cols {
					continue
				}
				for _, j := range grid[kk] {
					if j <= i {
						continue
					}
					ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
					if ddx*ddx+ddy*ddy <= r2 {
						g.AddEdge(i, j)
					}
				}
			}
		}
	}
	return g
}

// WattsStrogatz returns a small-world graph: ring lattice with k nearest
// neighbors per side, each edge rewired with probability beta.
func WattsStrogatz(r *rng.Rand, n, k int, beta float64) *Graph {
	if k < 1 || 2*k >= n {
		panic("graph: WattsStrogatz requires 1 <= k and 2k < n")
	}
	g := NewWithNodes(n)
	for i := 0; i < n; i++ {
		for j := 1; j <= k; j++ {
			u, v := i, (i+j)%n
			if r.Float64() < beta {
				// Rewire to a uniform non-self, non-duplicate target.
				for tries := 0; tries < 100; tries++ {
					w := r.Intn(n)
					if w != u && !g.HasEdge(u, w) {
						v = w
						break
					}
				}
			}
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// BarabasiAlbert returns a preferential-attachment graph: starting from a
// small clique, each new node attaches to k existing nodes with
// probability proportional to degree. Produces the heavy-tailed degree
// distributions under which mean-degree-based control is most stressed.
func BarabasiAlbert(r *rng.Rand, n, k int) *Graph {
	if k < 1 || n < k+1 {
		panic("graph: BarabasiAlbert requires n > k >= 1")
	}
	g := NewWithNodes(n)
	// Seed clique on the first k+1 nodes.
	var ends []int // repeated endpoint list: sampling ∝ degree
	for i := 0; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			g.AddEdge(i, j)
			ends = append(ends, i, j)
		}
	}
	for v := k + 1; v < n; v++ {
		attached := map[int]bool{}
		for len(attached) < k {
			u := ends[r.Intn(len(ends))]
			if u != v && !attached[u] {
				attached[u] = true
			}
		}
		for u := range attached {
			g.AddEdge(u, v)
			ends = append(ends, u, v)
		}
	}
	return g
}
