package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteEdgeList emits the graph in the plain text format shared by most
// graph tools: a header line "# nodes <n>", then one "u v" pair per
// edge (u < v), sorted for deterministic output. Isolated nodes are
// preserved through the header count plus explicit "node v" lines for
// IDs outside the contiguous range.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes %d\n", g.NumNodes()); err != nil {
		return err
	}
	ids := g.Nodes()
	sort.Ints(ids)
	for _, v := range ids {
		if _, err := fmt.Fprintf(bw, "node %d\n", v); err != nil {
			return err
		}
	}
	type edge struct{ u, v int }
	edges := make([]edge, 0, g.NumEdges())
	for _, u := range ids {
		for v := range g.adj[u] {
			if u < v {
				edges = append(edges, edge{u, v})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	for _, e := range edges {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.u, e.v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the WriteEdgeList format (comment lines starting
// with '#' are skipped; "node v" declares an isolated or any node;
// "u v" declares an edge, creating endpoints as needed).
func ReadEdgeList(r io.Reader) (*Graph, error) {
	g := New()
	sc := bufio.NewScanner(r)
	ensure := func(id int) {
		if !g.Has(id) {
			g.addNodeID(id)
		}
	}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch {
		case len(fields) == 2 && fields[0] == "node":
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad node id %q", line, fields[1])
			}
			ensure(id)
		case len(fields) == 2:
			u, err1 := strconv.Atoi(fields[0])
			v, err2 := strconv.Atoi(fields[1])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge %q", line, text)
			}
			if u == v {
				return nil, fmt.Errorf("graph: line %d: self-loop %d", line, u)
			}
			ensure(u)
			ensure(v)
			if !g.HasEdge(u, v) {
				g.AddEdge(u, v)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unparseable %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}
