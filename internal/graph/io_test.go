package graph

import (
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestEdgeListRoundTrip(t *testing.T) {
	r := rng.New(1)
	g := RandomGNM(r, 40, 100)
	g.RemoveNode(7) // non-contiguous IDs + possible isolated survivors
	var sb strings.Builder
	if err := g.WriteEdgeList(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %d/%d vs %d/%d",
			back.NumNodes(), back.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for _, u := range g.Nodes() {
		if !back.Has(u) {
			t.Fatalf("node %d lost", u)
		}
		for v := range g.adj[u] {
			if !back.HasEdge(u, v) {
				t.Fatalf("edge {%d,%d} lost", u, v)
			}
		}
	}
	if err := back.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteEdgeListDeterministic(t *testing.T) {
	r := rng.New(2)
	g := RandomGNM(r, 20, 50)
	var a, b strings.Builder
	if err := g.WriteEdgeList(&a); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteEdgeList(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("output not deterministic")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"1 2 3",  // too many fields
		"a b",    // non-numeric
		"node x", // bad node id
		"5 5",    // self-loop
	}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c)); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
	// Comments, blanks, and duplicate edges are tolerated.
	g, err := ReadEdgeList(strings.NewReader("# header\n\n1 2\n2 1\nnode 9\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 1 {
		t.Fatalf("parsed %d/%d", g.NumNodes(), g.NumEdges())
	}
}
