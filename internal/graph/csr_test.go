package graph

import (
	"testing"

	"repro/internal/rng"
)

// randomTestGraph builds a random graph with n nodes and edge probability
// p, with some nodes removed afterwards so CSR sees non-contiguous IDs.
func randomTestGraph(t testing.TB, r *rng.Rand, n int, p float64, removals int) *Graph {
	t.Helper()
	g := NewWithNodes(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	for i := 0; i < removals && g.NumNodes() > 0; i++ {
		g.RemoveNode(g.NodeAt(r.Intn(g.NumNodes())))
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("generator broke invariants: %v", err)
	}
	return g
}

func TestCSRSnapshotStructure(t *testing.T) {
	r := rng.New(7)
	g := randomTestGraph(t, r, 60, 0.1, 12)
	c := NewCSR(g)

	if c.NumNodes() != g.NumNodes() {
		t.Fatalf("NumNodes = %d, want %d", c.NumNodes(), g.NumNodes())
	}
	if c.NumEdges() != g.NumEdges() {
		t.Fatalf("NumEdges = %d, want %d", c.NumEdges(), g.NumEdges())
	}
	for i := 0; i < c.NumNodes(); i++ {
		id := c.ID(i)
		if c.IndexOf(id) != i {
			t.Fatalf("remap broken: IndexOf(ID(%d)=%d) = %d", i, id, c.IndexOf(id))
		}
		if c.Degree(i) != g.Degree(id) {
			t.Fatalf("degree mismatch at %d: %d vs %d", id, c.Degree(i), g.Degree(id))
		}
		for _, u := range c.Neighbors(i) {
			if !g.HasEdge(id, c.ID(int(u))) {
				t.Fatalf("CSR edge {%d,%d} not in graph", id, c.ID(int(u)))
			}
		}
	}
	if c.IndexOf(-1) != -1 || c.IndexOf(1<<30) != -1 {
		t.Fatal("IndexOf out-of-range should be -1")
	}
	// Snapshot independence: mutating g must not affect c.
	edges := c.NumEdges()
	for g.NumNodes() > 0 {
		g.RemoveNode(g.NodeAt(0))
	}
	if c.NumEdges() != edges {
		t.Fatal("CSR mutated by graph changes")
	}
}

// TestCSRGreedyMISEquivalence checks that the CSR kernel reproduces the
// map-based GreedyMIS exactly, node for node, on the same commit orders.
func TestCSRGreedyMISEquivalence(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 50; trial++ {
		n := 5 + r.Intn(80)
		g := randomTestGraph(t, r, n, 0.15, r.Intn(5))
		c := NewCSR(g)
		var scratch CSRScratch
		for rep := 0; rep < 4; rep++ {
			m := r.Intn(g.NumNodes() + 1)
			order := g.SampleNodes(r, m)
			wantSel, wantRej := GreedyMIS(g, order)

			csrOrder := make([]int32, len(order))
			for i, id := range order {
				csrOrder[i] = int32(c.IndexOf(id))
			}
			if got, want := scratch.MISSize(c, csrOrder), len(wantSel); got != want {
				t.Fatalf("trial %d: CSR MIS size %d, map-based %d", trial, got, want)
			}
			sel, rej := scratch.Partition(c, csrOrder, nil, nil)
			if len(sel) != len(wantSel) || len(rej) != len(wantRej) {
				t.Fatalf("trial %d: partition sizes (%d,%d) vs (%d,%d)",
					trial, len(sel), len(rej), len(wantSel), len(wantRej))
			}
			for i, v := range sel {
				if c.ID(int(v)) != wantSel[i] {
					t.Fatalf("trial %d: selected[%d] = %d, want %d",
						trial, i, c.ID(int(v)), wantSel[i])
				}
			}
			for i, v := range rej {
				if c.ID(int(v)) != wantRej[i] {
					t.Fatalf("trial %d: rejected[%d] = %d, want %d",
						trial, i, c.ID(int(v)), wantRej[i])
				}
			}
		}
	}
}

// TestCSRSampleOrderUniform sanity-checks the in-place partial
// Fisher–Yates sampler: every draw is a set of m distinct in-range
// indices, and over many draws each node appears with roughly equal
// frequency even though the buffer is never reset to the identity.
func TestCSRSampleOrderUniform(t *testing.T) {
	r := rng.New(3)
	g := NewWithNodes(40)
	c := NewCSR(g)
	var s CSRScratch
	const m, draws = 10, 4000
	counts := make([]int, 40)
	seen := make(map[int32]bool, m)
	for i := 0; i < draws; i++ {
		order := s.SampleOrder(c, r, m)
		if len(order) != m {
			t.Fatalf("draw %d: len %d", i, len(order))
		}
		for k := range seen {
			delete(seen, k)
		}
		for _, v := range order {
			if v < 0 || int(v) >= 40 || seen[v] {
				t.Fatalf("draw %d: bad sample %v", i, order)
			}
			seen[v] = true
			counts[v]++
		}
	}
	want := float64(draws*m) / 40
	for v, got := range counts {
		if float64(got) < 0.8*want || float64(got) > 1.2*want {
			t.Fatalf("node %d drawn %d times, want ≈ %.0f", v, got, want)
		}
	}
}

// TestMISMomentsDeterminism pins the reproducibility contract: identical
// (seed, m, reps, workers) give bit-identical moments, for any worker
// count, including workers exceeding reps and the GOMAXPROCS default.
func TestMISMomentsDeterminism(t *testing.T) {
	g := randomTestGraph(t, rng.New(5), 300, 0.03, 20)
	c := NewCSR(g)
	for _, workers := range []int{0, 1, 2, 3, 8, 200} {
		s1, q1 := c.MISMoments(rng.New(42), 100, 64, workers)
		s2, q2 := c.MISMoments(rng.New(42), 100, 64, workers)
		if s1 != s2 || q1 != q2 {
			t.Fatalf("workers=%d: (%d,%d) != (%d,%d)", workers, s1, q1, s2, q2)
		}
		if s1 <= 0 || q1 < s1 {
			t.Fatalf("workers=%d: implausible moments (%d,%d)", workers, s1, q1)
		}
	}
}

// TestParallelExpectedMISAgreesWithSerial compares the CSR parallel
// estimators against the original map-based ones at fixed seeds: the
// streams differ, so agreement is within Monte Carlo tolerance.
func TestParallelExpectedMISAgreesWithSerial(t *testing.T) {
	g := randomTestGraph(t, rng.New(9), 400, 0.02, 0)
	const reps = 3000
	serial := ExpectedMISMonteCarlo(g, rng.New(1), reps)
	for _, workers := range []int{1, 4} {
		par := ExpectedMISMonteCarloParallel(g, rng.New(2), reps, workers)
		if relDiff(par, serial) > 0.03 {
			t.Fatalf("workers=%d: parallel %.4f vs serial %.4f", workers, par, serial)
		}
	}
	serialInd := ExpectedInducedMISMonteCarlo(g, rng.New(3), 50, reps)
	parInd := ExpectedInducedMISMonteCarloParallel(g, rng.New(4), 50, reps, 4)
	if relDiff(parInd, serialInd) > 0.03 {
		t.Fatalf("induced: parallel %.4f vs serial %.4f", parInd, serialInd)
	}
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := b
	if m < 0 {
		m = -m
	}
	if m == 0 {
		return d
	}
	return d / m
}

// TestCSRScratchReuseAcrossSnapshots exercises the ensure() resizing
// paths: one scratch serving snapshots of different sizes must stay
// correct.
func TestCSRScratchReuseAcrossSnapshots(t *testing.T) {
	r := rng.New(17)
	var s CSRScratch
	for _, n := range []int{50, 8, 120, 120, 3} {
		g := randomTestGraph(t, r, n, 0.2, 0)
		c := NewCSR(g)
		order := g.SampleNodes(r, g.NumNodes())
		csrOrder := make([]int32, len(order))
		for i, id := range order {
			csrOrder[i] = int32(c.IndexOf(id))
		}
		want := GreedyMISSize(g, order)
		if got := s.MISSize(c, csrOrder); got != want {
			t.Fatalf("n=%d: CSR %d, map-based %d", n, got, want)
		}
		if got := s.SampleMISSize(c, r, g.NumNodes()); got < 1 || got > g.NumNodes() {
			t.Fatalf("n=%d: implausible fused MIS size %d", n, got)
		}
	}
}

func BenchmarkCSRMIS(b *testing.B) {
	// One Monte Carlo rep at the Fig. 2 configuration (n=2000, d=16,
	// m=n/4): sample an order and run greedy MIS, on the CSR engine.
	g := RandomWithAvgDegree(rng.New(2), 2000, 16)
	c := NewCSR(g)
	r := rng.New(3)
	var s CSRScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SampleMISSize(c, r, 500)
	}
}

func BenchmarkMapMIS(b *testing.B) {
	// The seed path for the same rep: map adjacency + PermPrefix sampling.
	g := RandomWithAvgDegree(rng.New(2), 2000, 16)
	r := rng.New(3)
	var s MISScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		order := g.SampleNodes(r, 500)
		s.Size(g, order)
	}
}
