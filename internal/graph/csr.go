package graph

import (
	"runtime"
	"sync"

	"repro/internal/rng"
)

// CSR is an immutable compressed-sparse-row snapshot of a Graph, the flat
// adjacency layout the Monte Carlo estimators iterate over. Where the
// mutable Graph pays a hash lookup and pointer chase per neighbor, the
// snapshot packs all neighbor lists into one contiguous slice indexed by
// an offsets array, so a greedy-MIS sweep touches memory sequentially.
//
// Nodes are renumbered to dense indices 0..n−1 (the Graph's internal
// sampling order at snapshot time); ID and IndexOf translate between the
// dense numbering and the original node IDs. A CSR shares no state with
// the Graph it was built from and is safe for concurrent readers, which
// is what lets estimator reps shard across workers without locks.
type CSR struct {
	offsets []int32 // offsets[i]..offsets[i+1] bound the neighbors of dense node i
	nbrs    []int32 // packed neighbor lists, as dense indices
	ids     []int   // dense index -> original node ID
	remap   []int32 // original node ID -> dense index, −1 for dead IDs
}

// NewCSR builds the snapshot in one pass over g's adjacency. Cost is
// O(n + E) time and exactly three allocations proportional to the graph.
func NewCSR(g *Graph) *CSR {
	n := len(g.nodes)
	c := &CSR{
		offsets: make([]int32, n+1),
		nbrs:    make([]int32, 2*g.edges),
		ids:     append([]int(nil), g.nodes...),
		remap:   make([]int32, g.nextID),
	}
	for i := range c.remap {
		c.remap[i] = -1
	}
	for i, id := range g.nodes {
		c.remap[id] = int32(i)
	}
	off := int32(0)
	for i, id := range g.nodes {
		c.offsets[i] = off
		for v := range g.adj[id] {
			c.nbrs[off] = c.remap[v]
			off++
		}
	}
	c.offsets[n] = off
	return c
}

// NumNodes returns the number of snapshotted nodes.
func (c *CSR) NumNodes() int { return len(c.ids) }

// NumEdges returns the number of snapshotted undirected edges.
func (c *CSR) NumEdges() int { return len(c.nbrs) / 2 }

// Degree returns the degree of dense node i.
func (c *CSR) Degree(i int) int { return int(c.offsets[i+1] - c.offsets[i]) }

// Neighbors returns the packed neighbor list of dense node i. The slice
// aliases the snapshot and must not be modified.
func (c *CSR) Neighbors(i int) []int32 { return c.nbrs[c.offsets[i]:c.offsets[i+1]] }

// ID returns the original node ID of dense index i.
func (c *CSR) ID(i int) int { return c.ids[i] }

// IndexOf returns the dense index of original node ID, or −1 if the node
// was not live at snapshot time.
func (c *CSR) IndexOf(id int) int {
	if id < 0 || id >= len(c.remap) {
		return -1
	}
	return int(c.remap[id])
}

// CSRScratch holds the reusable per-worker state of the CSR Monte Carlo
// kernels: an epoch-marked selected array (no clearing between reps) and
// the in-place partial Fisher–Yates buffer used to draw random orders
// without allocating. The zero value is ready; a scratch is not safe for
// concurrent use — give each worker its own.
type CSRScratch struct {
	mark  []uint64
	epoch uint64
	perm  []int32
}

func (s *CSRScratch) ensure(c *CSR) {
	n := c.NumNodes()
	if len(s.mark) < n {
		s.mark = make([]uint64, n)
		s.epoch = 0
	}
	if len(s.perm) != n {
		// perm must be a permutation of [0, n); it is re-seeded with the
		// identity whenever the snapshot size changes. Between reps it is
		// left in its shuffled state — a partial Fisher–Yates pass from
		// any permutation still yields a uniform ordered sample.
		if cap(s.perm) >= n {
			s.perm = s.perm[:n]
		} else {
			s.perm = make([]int32, n)
		}
		for i := range s.perm {
			s.perm[i] = int32(i)
		}
	}
}

// SampleOrder draws a uniform ordered sample of min(m, n) dense node
// indices via partial Fisher–Yates over the reusable buffer. The result
// aliases the scratch and is valid until the next SampleOrder call.
func (s *CSRScratch) SampleOrder(c *CSR, r *rng.Rand, m int) []int32 {
	s.ensure(c)
	n := len(s.perm)
	if m > n {
		m = n
	}
	for i := 0; i < m; i++ {
		j := i + r.Intn(n-i)
		s.perm[i], s.perm[j] = s.perm[j], s.perm[i]
	}
	return s.perm[:m]
}

// MISSize returns the greedy-MIS size of the given commit order (dense
// indices) without allocating.
func (s *CSRScratch) MISSize(c *CSR, order []int32) int {
	s.ensure(c)
	s.epoch++
	size := 0
	for _, v := range order {
		if s.admit(c, v) {
			size++
		}
	}
	return size
}

// admit applies the greedy commit rule to v under the current epoch:
// selected iff no neighbor was selected earlier this epoch.
func (s *CSRScratch) admit(c *CSR, v int32) bool {
	for _, u := range c.nbrs[c.offsets[v]:c.offsets[v+1]] {
		if s.mark[u] == s.epoch {
			return false
		}
	}
	s.mark[v] = s.epoch
	return true
}

// Partition runs greedy MIS over the order (dense indices) and appends
// the selected and rejected nodes, in commit order, to the given buffers.
func (s *CSRScratch) Partition(c *CSR, order []int32, selected, rejected []int32) ([]int32, []int32) {
	s.ensure(c)
	s.epoch++
	for _, v := range order {
		if s.admit(c, v) {
			selected = append(selected, v)
		} else {
			rejected = append(rejected, v)
		}
	}
	return selected, rejected
}

// SampleMISSize fuses SampleOrder and MISSize into a single pass: each
// sampled node is pushed through the greedy commit rule as soon as it is
// drawn. This is the inner loop of every Monte Carlo estimator — one rep,
// zero allocations.
func (s *CSRScratch) SampleMISSize(c *CSR, r *rng.Rand, m int) int {
	s.ensure(c)
	n := len(s.perm)
	if m > n {
		m = n
	}
	s.epoch++
	size := 0
	for i := 0; i < m; i++ {
		j := i + r.Intn(n-i)
		s.perm[i], s.perm[j] = s.perm[j], s.perm[i]
		if s.admit(c, s.perm[i]) {
			size++
		}
	}
	return size
}

// MISMoments is the parallel Monte Carlo primitive every estimator
// reduces to: it draws reps independent random length-m commit orders,
// runs greedy MIS over each, and returns the sum and sum of squares of
// the MIS sizes.
//
// Determinism contract: reps are sharded into contiguous blocks across
// workers (worker w handles block w); worker streams are derived from r
// by calling Split exactly workers times in worker order, and the
// integer partial sums are reduced in worker order. The result is
// therefore a pure function of (r's state, m, reps, workers) — rerunning
// with the same seed, reps, and worker count is bit-identical, while
// changing workers yields a statistically equivalent re-draw. workers ≤ 0
// means GOMAXPROCS.
func (c *CSR) MISMoments(r *rng.Rand, m, reps, workers int) (sum, sumSq int64) {
	if reps <= 0 {
		return 0, 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > reps {
		workers = reps
	}
	streams := make([]*rng.Rand, workers)
	for w := range streams {
		streams[w] = r.Split()
	}
	if workers == 1 {
		return misMomentsSerial(c, streams[0], m, reps)
	}
	sums := make([]int64, workers)
	sqs := make([]int64, workers)
	base, extra := reps/workers, reps%workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wreps := base
		if w < extra {
			wreps++
		}
		wg.Add(1)
		go func(w, wreps int) {
			defer wg.Done()
			sums[w], sqs[w] = misMomentsSerial(c, streams[w], m, wreps)
		}(w, wreps)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		sum += sums[w]
		sumSq += sqs[w]
	}
	return sum, sumSq
}

// csrScratchPool recycles worker scratch across MISMoments calls, so
// repeated estimates (curves, bisections) stop allocating once warm.
var csrScratchPool = sync.Pool{New: func() any { return new(CSRScratch) }}

func misMomentsSerial(c *CSR, r *rng.Rand, m, reps int) (sum, sumSq int64) {
	s := csrScratchPool.Get().(*CSRScratch)
	// Canonicalize the sampling buffer: a recycled scratch carries the
	// previous caller's shuffle, and the determinism contract requires
	// the draw sequence to depend only on the rng stream. Truncating
	// makes ensure() rebuild the identity in place, allocation-free.
	s.perm = s.perm[:0]
	for i := 0; i < reps; i++ {
		sz := int64(s.SampleMISSize(c, r, m))
		sum += sz
		sumSq += sz * sz
	}
	csrScratchPool.Put(s)
	return sum, sumSq
}

// ExpectedMISMonteCarloParallel estimates E[|greedy MIS|] over uniformly
// random full permutations — ExpectedMISMonteCarlo rebuilt on a CSR
// snapshot with reps sharded across workers (see MISMoments for the
// determinism contract).
func ExpectedMISMonteCarloParallel(g *Graph, r *rng.Rand, reps, workers int) float64 {
	if reps <= 0 {
		return 0
	}
	c := NewCSR(g)
	sum, _ := c.MISMoments(r, c.NumNodes(), reps, workers)
	return float64(sum) / float64(reps)
}

// ExpectedInducedMISMonteCarloParallel estimates EM_m(G) (Thm. 2's
// quantity) on a CSR snapshot with reps sharded across workers.
func ExpectedInducedMISMonteCarloParallel(g *Graph, r *rng.Rand, m, reps, workers int) float64 {
	if reps <= 0 {
		return 0
	}
	c := NewCSR(g)
	sum, _ := c.MISMoments(r, m, reps, workers)
	return float64(sum) / float64(reps)
}
