package graph

import (
	"sync"

	"repro/internal/rng"
)

// misScratchPool recycles MISScratch instances so the package-level
// GreedyMIS helpers are allocation-free in steady state without forcing
// every caller to thread a scratch through. Epoch marking makes a
// recycled scratch indistinguishable from a fresh one.
var misScratchPool = sync.Pool{New: func() any { return new(MISScratch) }}

// GreedyMIS processes the given node order and returns the greedy maximal
// independent set: a node is selected iff none of its neighbors was
// selected earlier in the order. This is exactly the paper's commit rule —
// a speculative task commits iff no conflicting task committed before it —
// so the selected set is the committed tasks and the rest of the order is
// the aborted ones.
//
// Nodes in order must be live in g; order may be any subset of the nodes
// (the "active nodes" of a round). Bookkeeping uses a pooled epoch-marked
// scratch, so only the two result slices are allocated.
func GreedyMIS(g *Graph, order []int) (selected, rejected []int) {
	s := misScratchPool.Get().(*MISScratch)
	selected, rejected = s.Partition(g, order)
	misScratchPool.Put(s)
	return selected, rejected
}

// GreedyMISSize returns only the size of the greedy MIS over the order,
// avoiding any allocation for Monte Carlo inner loops.
func GreedyMISSize(g *Graph, order []int) int {
	s := misScratchPool.Get().(*MISScratch)
	size := s.Size(g, order)
	misScratchPool.Put(s)
	return size
}

// MISScratch amortizes the selected-set bookkeeping across many greedy
// MIS computations on graphs whose node IDs stay below a shared bound.
// The zero value is ready; it is not safe for concurrent use.
type MISScratch struct {
	mark  []uint64
	epoch uint64
}

// begin sizes the mark array for node IDs below bound and opens a fresh
// epoch, invalidating all previous marks in O(1).
func (s *MISScratch) begin(bound int) {
	if len(s.mark) < bound {
		grown := make([]uint64, bound+bound/2+16)
		copy(grown, s.mark)
		s.mark = grown
	}
	s.epoch++
}

// Size computes GreedyMISSize(g, order) without per-call allocation.
func (s *MISScratch) Size(g *Graph, order []int) int {
	s.begin(g.nextID)
	size := 0
	for _, v := range order {
		ok := true
		for u := range g.adj[v] {
			if s.mark[u] == s.epoch {
				ok = false
				break
			}
		}
		if ok {
			s.mark[v] = s.epoch
			size++
		}
	}
	return size
}

// Partition computes GreedyMIS(g, order) reusing the scratch's epoch
// marking; only the result slices are allocated.
func (s *MISScratch) Partition(g *Graph, order []int) (selected, rejected []int) {
	s.begin(g.nextID)
	for _, v := range order {
		ok := true
		for u := range g.adj[v] {
			if s.mark[u] == s.epoch {
				ok = false
				break
			}
		}
		if ok {
			s.mark[v] = s.epoch
			selected = append(selected, v)
		} else {
			rejected = append(rejected, v)
		}
	}
	return selected, rejected
}

// ExpectedMISMonteCarlo estimates E[|greedy MIS|] over uniformly random
// full permutations of g's nodes — the quantity Turán's theorem (Thm. 1)
// lower-bounds by n/(d+1). reps is the number of sampled permutations.
func ExpectedMISMonteCarlo(g *Graph, r *rng.Rand, reps int) float64 {
	n := g.NumNodes()
	sum := 0
	var scratch MISScratch
	for i := 0; i < reps; i++ {
		order := g.SampleNodes(r, n)
		sum += scratch.Size(g, order)
	}
	if reps == 0 {
		return 0
	}
	return float64(sum) / float64(reps)
}

// ExpectedInducedMISMonteCarlo estimates EM_m(G): the expected size of the
// greedy maximal independent set of the subgraph induced by m uniformly
// random nodes (Thm. 2's quantity). With m = n it coincides with
// ExpectedMISMonteCarlo.
func ExpectedInducedMISMonteCarlo(g *Graph, r *rng.Rand, m, reps int) float64 {
	sum := 0
	var scratch MISScratch
	for i := 0; i < reps; i++ {
		order := g.SampleNodes(r, m)
		sum += scratch.Size(g, order)
	}
	if reps == 0 {
		return 0
	}
	return float64(sum) / float64(reps)
}

// NoEarlierNeighborCount returns the number of nodes in order that have
// no neighbor at all earlier in the order — the independent-set variant
// IS_m used in the proof of Thm. 2 (the quantity b_m averages). It is a
// lower bound on the greedy MIS size for the same order.
func NoEarlierNeighborCount(g *Graph, order []int) int {
	seen := make(map[int]bool, len(order))
	count := 0
	for _, v := range order {
		ok := true
		for u := range g.adj[v] {
			if seen[u] {
				ok = false
				break
			}
		}
		if ok {
			count++
		}
		seen[v] = true
	}
	return count
}

// IsIndependentSet reports whether set is pairwise non-adjacent in g.
func IsIndependentSet(g *Graph, set []int) bool {
	in := make(map[int]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	for _, v := range set {
		for u := range g.adj[v] {
			if in[u] {
				return false
			}
		}
	}
	return true
}

// IsMaximalIndependentSet reports whether set is independent and no
// further node of g could be added (every non-member has a member
// neighbor). The "universe" is all live nodes of g.
func IsMaximalIndependentSet(g *Graph, set []int) bool {
	if !IsIndependentSet(g, set) {
		return false
	}
	in := make(map[int]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	for _, v := range g.nodes {
		if in[v] {
			continue
		}
		blocked := false
		for u := range g.adj[v] {
			if in[u] {
				blocked = true
				break
			}
		}
		if !blocked {
			return false
		}
	}
	return true
}
