package graph

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestGreedyMISOnPath(t *testing.T) {
	g := Path(4) // 0-1-2-3
	sel, rej := GreedyMIS(g, []int{0, 1, 2, 3})
	if len(sel) != 2 || sel[0] != 0 || sel[1] != 2 {
		t.Fatalf("selected %v", sel)
	}
	if len(rej) != 2 || rej[0] != 1 || rej[1] != 3 {
		t.Fatalf("rejected %v", rej)
	}
}

// The commit rule: a node aborts only due to *committed* earlier
// neighbors. On the path 1-2-3 with order (1,2,3): 1 commits, 2 aborts
// (neighbor 1 committed), 3 commits because its only earlier neighbor 2
// aborted — exactly the paper's description of π_m semantics.
func TestGreedyMISAbortedNeighborDoesNotBlock(t *testing.T) {
	g := Path(4)
	sel, _ := GreedyMIS(g, []int{1, 2, 3})
	if len(sel) != 2 || sel[0] != 1 || sel[1] != 3 {
		t.Fatalf("selected %v, want [1 3]", sel)
	}
}

func TestGreedyMISIsMaximalOnFullOrder(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 30; trial++ {
		g := RandomGNM(r, 40, 100)
		order := g.SampleNodes(r, g.NumNodes())
		sel, rej := GreedyMIS(g, order)
		if !IsMaximalIndependentSet(g, sel) {
			t.Fatalf("trial %d: greedy MIS over full order not maximal", trial)
		}
		if len(sel)+len(rej) != g.NumNodes() {
			t.Fatalf("trial %d: partition broken", trial)
		}
	}
}

func TestGreedyMISSizeMatchesGreedyMIS(t *testing.T) {
	r := rng.New(2)
	g := RandomGNM(r, 50, 120)
	for trial := 0; trial < 20; trial++ {
		order := g.SampleNodes(r, 30)
		sel, _ := GreedyMIS(g, order)
		if got := GreedyMISSize(g, order); got != len(sel) {
			t.Fatalf("size %d, want %d", got, len(sel))
		}
	}
}

func TestGreedyMISCompleteGraph(t *testing.T) {
	g := Complete(10)
	r := rng.New(3)
	order := g.SampleNodes(r, 7)
	sel, rej := GreedyMIS(g, order)
	if len(sel) != 1 {
		t.Fatalf("complete graph commits %d, want 1", len(sel))
	}
	if sel[0] != order[0] {
		t.Fatal("first in order must commit")
	}
	if len(rej) != 6 {
		t.Fatalf("rejected %d", len(rej))
	}
}

func TestGreedyMISEmptyGraphAllCommit(t *testing.T) {
	g := Empty(10)
	r := rng.New(4)
	order := g.SampleNodes(r, 10)
	sel, rej := GreedyMIS(g, order)
	if len(sel) != 10 || len(rej) != 0 {
		t.Fatalf("sel=%d rej=%d", len(sel), len(rej))
	}
}

// Turán (Thm. 1, strong form): expected greedy MIS size over random
// permutations is at least n/(d+1).
func TestTuranLowerBound(t *testing.T) {
	r := rng.New(5)
	cases := []struct {
		name string
		g    *Graph
	}{
		{"random", RandomGNM(r, 200, 800)},
		{"cliques", CliqueUnion(200, 7)},
		{"grid", Grid2D(14, 14)},
		{"ba", BarabasiAlbert(r, 200, 4)},
		{"star", Star(100)},
	}
	for _, c := range cases {
		n := float64(c.g.NumNodes())
		d := c.g.AvgDegree()
		bound := n / (d + 1)
		got := ExpectedMISMonteCarlo(c.g, r, 300)
		// Allow tiny Monte Carlo slack below the bound.
		if got < bound*0.97 {
			t.Errorf("%s: E[MIS] = %.2f below Turán bound %.2f", c.name, got, bound)
		}
	}
}

// Remark 2: on K^n_d every maximal independent set has exactly n/(d+1)
// nodes, so the Turán bound is tight there.
func TestTuranTightOnCliqueUnion(t *testing.T) {
	r := rng.New(6)
	g := CliqueUnion(120, 5) // 20 cliques of size 6
	got := ExpectedMISMonteCarlo(g, r, 50)
	if got != 20 {
		t.Fatalf("E[MIS] on K^n_d = %v, want exactly 20", got)
	}
}

func TestNoEarlierNeighborLowerBoundsGreedy(t *testing.T) {
	r := rng.New(7)
	g := RandomGNM(r, 80, 300)
	for trial := 0; trial < 50; trial++ {
		order := g.SampleNodes(r, 40)
		b := NoEarlierNeighborCount(g, order)
		m := GreedyMISSize(g, order)
		if b > m {
			t.Fatalf("b=%d exceeds greedy MIS size %d", b, m)
		}
	}
}

// On clique unions the two coincide (b_m(K^n_d) = EM_m(K^n_d) in the
// proof of Thm. 2): within a clique the first active node has no earlier
// neighbor and every later one has the committed first as neighbor.
func TestNoEarlierNeighborEqualsGreedyOnCliqueUnion(t *testing.T) {
	r := rng.New(8)
	g := CliqueUnion(60, 4)
	for trial := 0; trial < 50; trial++ {
		order := g.SampleNodes(r, 30)
		if NoEarlierNeighborCount(g, order) != GreedyMISSize(g, order) {
			t.Fatal("b != greedy MIS size on clique union")
		}
	}
}

func TestIsIndependentSet(t *testing.T) {
	g := Path(4)
	if !IsIndependentSet(g, []int{0, 2}) {
		t.Fatal("{0,2} is independent in the path")
	}
	if IsIndependentSet(g, []int{0, 1}) {
		t.Fatal("{0,1} is not independent")
	}
	if !IsIndependentSet(g, nil) {
		t.Fatal("empty set is independent")
	}
}

func TestIsMaximalIndependentSet(t *testing.T) {
	g := Path(5) // 0-1-2-3-4
	if !IsMaximalIndependentSet(g, []int{0, 2, 4}) {
		t.Error("{0,2,4} should be maximal in P5")
	}
	if !IsMaximalIndependentSet(g, []int{0, 3}) {
		// 1 is blocked by 0; 2 and 4 are blocked by 3.
		t.Error("{0,3} should be maximal in P5")
	}
	if IsMaximalIndependentSet(g, []int{0, 2}) {
		t.Error("{0,2} is not maximal in P5: node 4 is addable")
	}
	if IsMaximalIndependentSet(g, []int{0, 1}) {
		t.Error("{0,1} is not even independent")
	}
}

func TestExpectedInducedMISInterpolates(t *testing.T) {
	r := rng.New(9)
	g := RandomGNM(r, 100, 400)
	em10 := ExpectedInducedMISMonteCarlo(g, r, 10, 400)
	em60 := ExpectedInducedMISMonteCarlo(g, r, 60, 400)
	emN := ExpectedInducedMISMonteCarlo(g, r, 100, 400)
	if !(em10 < em60 && em60 <= emN+1e-9) {
		t.Fatalf("EM_m not increasing: %v %v %v", em10, em60, emN)
	}
	full := ExpectedMISMonteCarlo(g, r, 400)
	if math.Abs(emN-full) > 0.05*full {
		t.Fatalf("EM_n=%v disagrees with full-permutation estimate %v", emN, full)
	}
}

func TestMISScratchMatchesMap(t *testing.T) {
	r := rng.New(11)
	var scratch MISScratch
	for trial := 0; trial < 40; trial++ {
		g := RandomGNM(r, 60, 150+trial)
		for rep := 0; rep < 10; rep++ {
			order := g.SampleNodes(r, 20+trial%40)
			if got, want := scratch.Size(g, order), GreedyMISSize(g, order); got != want {
				t.Fatalf("trial %d: scratch %d vs map %d", trial, got, want)
			}
		}
		// Interleave graph mutation: IDs grow, scratch must follow.
		v := g.AddNode()
		u := g.Nodes()[r.Intn(g.NumNodes())]
		if u != v {
			g.AddEdge(u, v)
		}
		order := g.SampleNodes(r, g.NumNodes())
		if got, want := scratch.Size(g, order), GreedyMISSize(g, order); got != want {
			t.Fatalf("after growth: scratch %d vs map %d", got, want)
		}
	}
}

func BenchmarkGreedyMISMap(b *testing.B) {
	r := rng.New(12)
	g := RandomGNM(r, 2000, 16000)
	order := g.SampleNodes(r, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GreedyMISSize(g, order)
	}
}

func BenchmarkGreedyMISScratch(b *testing.B) {
	r := rng.New(12)
	g := RandomGNM(r, 2000, 16000)
	order := g.SampleNodes(r, 500)
	var scratch MISScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch.Size(g, order)
	}
}
