package graph

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestAddNodesAndEdges(t *testing.T) {
	g := New()
	a := g.AddNode()
	b := g.AddNode()
	c := g.AddNode()
	if a == b || b == c {
		t.Fatal("node IDs not distinct")
	}
	if !g.AddEdge(a, b) {
		t.Fatal("AddEdge returned false for new edge")
	}
	if g.AddEdge(a, b) || g.AddEdge(b, a) {
		t.Fatal("duplicate edge reported as new")
	}
	if g.NumNodes() != 3 || g.NumEdges() != 1 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	if !g.HasEdge(a, b) || !g.HasEdge(b, a) {
		t.Fatal("edge not symmetric")
	}
	if g.HasEdge(a, c) {
		t.Fatal("phantom edge")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSelfEdgePanics(t *testing.T) {
	g := NewWithNodes(2)
	defer func() {
		if recover() == nil {
			t.Fatal("self-edge did not panic")
		}
	}()
	g.AddEdge(1, 1)
}

func TestEdgeToMissingNodePanics(t *testing.T) {
	g := NewWithNodes(2)
	defer func() {
		if recover() == nil {
			t.Fatal("edge to absent node did not panic")
		}
	}()
	g.AddEdge(0, 99)
}

func TestRemoveNode(t *testing.T) {
	g := NewWithNodes(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	if !g.RemoveNode(2) {
		t.Fatal("RemoveNode returned false for live node")
	}
	if g.RemoveNode(2) {
		t.Fatal("RemoveNode returned true for dead node")
	}
	if g.NumNodes() != 3 || g.NumEdges() != 1 {
		t.Fatalf("after removal: nodes=%d edges=%d, want 3/1", g.NumNodes(), g.NumEdges())
	}
	if g.HasEdge(0, 2) || g.HasEdge(2, 3) {
		t.Fatal("edges to removed node survive")
	}
	if !g.HasEdge(0, 1) {
		t.Fatal("unrelated edge removed")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := NewWithNodes(3)
	g.AddEdge(0, 1)
	if !g.RemoveEdge(1, 0) {
		t.Fatal("RemoveEdge failed")
	}
	if g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge of absent edge returned true")
	}
	if g.NumEdges() != 0 {
		t.Fatalf("edges=%d", g.NumEdges())
	}
}

func TestNodeIDsStableAfterRemoval(t *testing.T) {
	g := NewWithNodes(5)
	g.RemoveNode(2)
	id := g.AddNode()
	if id != 5 {
		t.Fatalf("fresh node reused ID %d", id)
	}
	if g.Has(2) {
		t.Fatal("removed node still live")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := NewWithNodes(3)
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(1, 2)
	c.RemoveNode(0)
	if g.NumNodes() != 3 || g.NumEdges() != 1 {
		t.Fatal("mutating clone affected original")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSampleNodesProperties(t *testing.T) {
	r := rng.New(1)
	g := RandomGNM(r, 100, 250)
	f := func(mRaw uint8) bool {
		m := int(mRaw) % 120 // sometimes exceeds n: should clamp
		s := g.SampleNodes(r, m)
		want := m
		if want > 100 {
			want = 100
		}
		if len(s) != want {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if !g.Has(v) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := Star(5) // hub degree 4, leaves degree 1
	h := g.DegreeHistogram()
	if h[4] != 1 || h[1] != 4 {
		t.Fatalf("histogram %v", h)
	}
}

func TestAvgDegree(t *testing.T) {
	g := Cycle(10)
	if g.AvgDegree() != 2 {
		t.Fatalf("cycle avg degree = %v", g.AvgDegree())
	}
	if Empty(5).AvgDegree() != 0 {
		t.Fatal("empty graph degree")
	}
	if New().AvgDegree() != 0 {
		t.Fatal("zero-node graph degree")
	}
}

func TestGeneratorsInvariants(t *testing.T) {
	r := rng.New(2)
	cases := []struct {
		name string
		g    *Graph
	}{
		{"gnm", RandomGNM(r, 50, 100)},
		{"gnm-dense", RandomGNM(r, 20, 150)},
		{"gnp", RandomGNP(r, 80, 0.1)},
		{"gnp-0", RandomGNP(r, 10, 0)},
		{"gnp-1", RandomGNP(r, 10, 1)},
		{"cliques", CliqueUnion(30, 4)},
		{"ex1", CliquePlusIsolated(16, 4)},
		{"cliques+iso", CliquesPlusIsolated(3, 5, 7)},
		{"complete", Complete(12)},
		{"cycle", Cycle(9)},
		{"path", Path(9)},
		{"star", Star(9)},
		{"grid", Grid2D(6, 7)},
		{"rgg", RandomGeometric(r, 100, 0.15)},
		{"ws", WattsStrogatz(r, 40, 3, 0.2)},
		{"ba", BarabasiAlbert(r, 60, 3)},
	}
	for _, c := range cases {
		if err := c.g.CheckInvariants(); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestRandomGNMExactEdges(t *testing.T) {
	r := rng.New(3)
	for _, tc := range []struct{ n, m int }{{10, 0}, {10, 45}, {50, 200}, {20, 100}} {
		g := RandomGNM(r, tc.n, tc.m)
		if g.NumEdges() != tc.m {
			t.Errorf("GNM(%d,%d) has %d edges", tc.n, tc.m, g.NumEdges())
		}
		if g.NumNodes() != tc.n {
			t.Errorf("GNM(%d,%d) has %d nodes", tc.n, tc.m, g.NumNodes())
		}
	}
}

func TestRandomGNMTooManyEdgesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RandomGNM(rng.New(1), 5, 11)
}

func TestRandomWithAvgDegree(t *testing.T) {
	r := rng.New(4)
	g := RandomWithAvgDegree(r, 2000, 16)
	if d := g.AvgDegree(); d < 15.99 || d > 16.01 {
		t.Fatalf("avg degree = %v, want 16", d)
	}
}

func TestCliqueUnionStructure(t *testing.T) {
	g := CliqueUnion(20, 4) // 4 cliques of size 5
	if g.NumNodes() != 20 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 4*10 {
		t.Fatalf("edges = %d, want 40", g.NumEdges())
	}
	for _, v := range g.Nodes() {
		if g.Degree(v) != 4 {
			t.Fatalf("node %d degree %d, want 4", v, g.Degree(v))
		}
	}
	// Nodes in different cliques must not be adjacent.
	if g.HasEdge(0, 5) || g.HasEdge(4, 5) {
		t.Fatal("edge crosses clique boundary")
	}
	if !g.HasEdge(0, 4) {
		t.Fatal("missing intra-clique edge")
	}
}

func TestCliqueUnionBadParamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CliqueUnion(10, 3) // 4 does not divide 10
}

func TestGrid2DStructure(t *testing.T) {
	g := Grid2D(3, 4)
	if g.NumNodes() != 12 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Edges: 3*3 horizontal + 2*4 vertical = 17.
	if g.NumEdges() != 17 {
		t.Fatalf("edges = %d, want 17", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 4) || g.HasEdge(3, 4) {
		t.Fatal("grid wiring wrong")
	}
}

func TestRandomGeometricEdges(t *testing.T) {
	r := rng.New(5)
	g := RandomGeometric(r, 200, 0.0001)
	if g.NumEdges() != 0 {
		t.Fatalf("tiny radius should give no edges, got %d", g.NumEdges())
	}
	g2 := RandomGeometric(r, 50, 1.5)
	if g2.NumEdges() != 50*49/2 {
		t.Fatalf("radius > diameter should give complete graph, got %d edges", g2.NumEdges())
	}
}

func TestBarabasiAlbertDegrees(t *testing.T) {
	r := rng.New(6)
	g := BarabasiAlbert(r, 100, 2)
	if g.NumNodes() != 100 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Every node added after the seed has degree >= k.
	for v := 3; v < 100; v++ {
		if g.Degree(v) < 2 {
			t.Fatalf("node %d degree %d < k", v, g.Degree(v))
		}
	}
}

func TestSortedNeighbors(t *testing.T) {
	g := NewWithNodes(5)
	g.AddEdge(2, 4)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	ns := g.SortedNeighbors(2)
	if !sort.IntsAreSorted(ns) || len(ns) != 3 {
		t.Fatalf("SortedNeighbors = %v", ns)
	}
}

// Property: random removals never break invariants.
func TestInvariantsUnderRandomMutation(t *testing.T) {
	r := rng.New(7)
	g := RandomGNM(r, 60, 150)
	for i := 0; i < 40; i++ {
		nodes := g.Nodes()
		if len(nodes) == 0 {
			break
		}
		v := nodes[r.Intn(len(nodes))]
		switch r.Intn(3) {
		case 0:
			g.RemoveNode(v)
		case 1:
			u := g.AddNode()
			if v != u {
				g.AddEdge(u, v)
			}
		case 2:
			w := nodes[r.Intn(len(nodes))]
			if w != v && !g.HasEdge(v, w) {
				g.AddEdge(v, w)
			}
		}
		if err := g.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}
