package graph

import (
	"testing"

	"repro/internal/rng"
)

// FuzzGraphMutations drives the graph through an arbitrary byte-coded
// mutation script and asserts the structural invariants after every
// operation. (The seed corpus runs on every `go test`; `go test -fuzz`
// explores further.)
func FuzzGraphMutations(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{255, 128, 64, 32, 16, 8, 4, 2, 1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, script []byte) {
		g := NewWithNodes(4)
		for i := 0; i+1 < len(script) && i < 200; i += 2 {
			op, arg := script[i], int(script[i+1])
			nodes := g.Nodes()
			switch op % 4 {
			case 0:
				g.AddNode()
			case 1:
				if len(nodes) >= 2 {
					u := nodes[arg%len(nodes)]
					v := nodes[(arg+1)%len(nodes)]
					if u != v && !g.HasEdge(u, v) {
						g.AddEdge(u, v)
					}
				}
			case 2:
				if len(nodes) > 0 {
					g.RemoveNode(nodes[arg%len(nodes)])
				}
			case 3:
				if len(nodes) >= 2 {
					u := nodes[arg%len(nodes)]
					v := nodes[(arg+1)%len(nodes)]
					if u != v {
						g.RemoveEdge(u, v)
					}
				}
			}
			if err := g.CheckInvariants(); err != nil {
				t.Fatalf("op %d (%d): %v", i/2, op%4, err)
			}
		}
		// Greedy MIS over the survivors is always independent & maximal.
		if g.NumNodes() > 0 {
			r := rng.New(uint64(len(script)))
			order := g.SampleNodes(r, g.NumNodes())
			sel, rej := GreedyMIS(g, order)
			if !IsMaximalIndependentSet(g, sel) {
				t.Fatal("greedy MIS not maximal")
			}
			if len(sel)+len(rej) != g.NumNodes() {
				t.Fatal("partition broken")
			}
		}
	})
}

// FuzzCSRGreedyMIS drives a graph through an arbitrary mutation script,
// snapshots it to CSR, and asserts the CSR greedy-MIS kernel agrees with
// the map-based GreedyMIS node-for-node on a random commit order.
func FuzzCSRGreedyMIS(f *testing.F) {
	f.Add(uint64(1), []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(uint64(7), []byte{1, 0, 1, 1, 1, 2, 2, 0, 0, 5, 3, 1})
	f.Fuzz(func(t *testing.T, seed uint64, script []byte) {
		g := NewWithNodes(3)
		for i := 0; i+1 < len(script) && i < 120; i += 2 {
			op, arg := script[i], int(script[i+1])
			nodes := g.Nodes()
			switch op % 3 {
			case 0:
				g.AddNode()
			case 1:
				if len(nodes) >= 2 {
					u := nodes[arg%len(nodes)]
					v := nodes[(arg+1)%len(nodes)]
					if u != v && !g.HasEdge(u, v) {
						g.AddEdge(u, v)
					}
				}
			case 2:
				if len(nodes) > 0 {
					g.RemoveNode(nodes[arg%len(nodes)])
				}
			}
		}
		c := NewCSR(g)
		if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() {
			t.Fatalf("snapshot shape (%d,%d) vs graph (%d,%d)",
				c.NumNodes(), c.NumEdges(), g.NumNodes(), g.NumEdges())
		}
		if g.NumNodes() == 0 {
			return
		}
		r := rng.New(seed)
		m := r.Intn(g.NumNodes() + 1)
		order := g.SampleNodes(r, m)
		wantSel, _ := GreedyMIS(g, order)
		csrOrder := make([]int32, len(order))
		for i, id := range order {
			ci := c.IndexOf(id)
			if ci < 0 {
				t.Fatalf("live node %d missing from remap", id)
			}
			csrOrder[i] = int32(ci)
		}
		var s CSRScratch
		sel, _ := s.Partition(c, csrOrder, nil, nil)
		if len(sel) != len(wantSel) {
			t.Fatalf("CSR selected %d, map-based %d", len(sel), len(wantSel))
		}
		for i, v := range sel {
			if c.ID(int(v)) != wantSel[i] {
				t.Fatalf("selected[%d]: CSR %d, map-based %d", i, c.ID(int(v)), wantSel[i])
			}
		}
		if got := s.MISSize(c, csrOrder); got != len(wantSel) {
			t.Fatalf("MISSize %d, want %d", got, len(wantSel))
		}
	})
}

// FuzzPermPrefix checks the sampling primitive against arbitrary
// (n, m, seed) combinations.
func FuzzPermPrefix(f *testing.F) {
	f.Add(uint64(1), uint16(10), uint16(3))
	f.Add(uint64(99), uint16(1), uint16(1))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, mRaw uint16) {
		n := int(nRaw%2000) + 1
		m := int(mRaw) % (n + 1)
		r := rng.New(seed)
		p := r.PermPrefix(n, m)
		if len(p) != m {
			t.Fatalf("length %d, want %d", len(p), m)
		}
		seen := make(map[int]bool, m)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("invalid sample %v", p)
			}
			seen[v] = true
		}
	})
}
