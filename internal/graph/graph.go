// Package graph implements the dynamic undirected graphs that serve as
// computations/conflicts (CC) graphs in the paper's model (§2): nodes are
// pending computations, edges are conflicts between them. The scheduler
// removes committed nodes and application hooks may insert new nodes and
// edges, so the structure supports efficient insertion, deletion, and
// uniform random sampling of live nodes.
//
// The package also hosts the generator families used by the paper's
// evaluation (random graphs with a target average degree, unions of
// cliques K^n_d, the clique-plus-isolated-nodes graph of Example 1, and a
// handful of standard topologies) and the greedy maximal-independent-set
// primitive that defines the model's conflict-resolution semantics.
package graph

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// Graph is a mutable undirected simple graph with integer node IDs.
// Node IDs are assigned by AddNode and remain stable until removal; the
// dense index maintained alongside the adjacency structure supports O(1)
// uniform sampling of live nodes, which the paper's scheduler performs
// every round.
//
// Graph is not safe for concurrent mutation.
type Graph struct {
	adj    map[int]map[int]struct{}
	nodes  []int       // dense list of live node IDs
	pos    map[int]int // node ID -> index into nodes
	edges  int
	nextID int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		adj: make(map[int]map[int]struct{}),
		pos: make(map[int]int),
	}
}

// NewWithNodes returns a graph with n isolated nodes with IDs 0..n-1.
func NewWithNodes(n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode()
	}
	return g
}

// AddNode inserts a fresh node and returns its ID.
func (g *Graph) AddNode() int {
	id := g.nextID
	g.nextID++
	g.addNodeID(id)
	return id
}

func (g *Graph) addNodeID(id int) {
	if _, ok := g.adj[id]; ok {
		return
	}
	g.adj[id] = make(map[int]struct{})
	g.pos[id] = len(g.nodes)
	g.nodes = append(g.nodes, id)
	if id >= g.nextID {
		g.nextID = id + 1
	}
}

// Has reports whether node id is live.
func (g *Graph) Has(id int) bool {
	_, ok := g.adj[id]
	return ok
}

// AddEdge inserts the undirected edge {u, v}. It reports whether the edge
// was newly added (false for duplicates). It panics if either endpoint is
// absent or if u == v (self-conflicts are meaningless in the model).
func (g *Graph) AddEdge(u, v int) bool {
	if u == v {
		panic(fmt.Sprintf("graph: self-edge on node %d", u))
	}
	au, ok := g.adj[u]
	if !ok {
		panic(fmt.Sprintf("graph: AddEdge endpoint %d absent", u))
	}
	av, ok := g.adj[v]
	if !ok {
		panic(fmt.Sprintf("graph: AddEdge endpoint %d absent", v))
	}
	if _, dup := au[v]; dup {
		return false
	}
	au[v] = struct{}{}
	av[u] = struct{}{}
	g.edges++
	return true
}

// HasEdge reports whether the edge {u, v} exists.
func (g *Graph) HasEdge(u, v int) bool {
	au, ok := g.adj[u]
	if !ok {
		return false
	}
	_, e := au[v]
	return e
}

// RemoveEdge deletes the edge {u, v} if present and reports whether it
// existed.
func (g *Graph) RemoveEdge(u, v int) bool {
	au, ok := g.adj[u]
	if !ok {
		return false
	}
	if _, e := au[v]; !e {
		return false
	}
	delete(au, v)
	delete(g.adj[v], u)
	g.edges--
	return true
}

// RemoveNode deletes node id and all incident edges. It reports whether
// the node existed. This is the "commit" operation of the model: a
// processed computation leaves the CC graph.
func (g *Graph) RemoveNode(id int) bool {
	nbrs, ok := g.adj[id]
	if !ok {
		return false
	}
	for v := range nbrs {
		delete(g.adj[v], id)
		g.edges--
	}
	delete(g.adj, id)
	// Swap-remove from the dense list to keep sampling O(1).
	i := g.pos[id]
	last := len(g.nodes) - 1
	moved := g.nodes[last]
	g.nodes[i] = moved
	g.pos[moved] = i
	g.nodes = g.nodes[:last]
	delete(g.pos, id)
	return true
}

// Degree returns the number of neighbors of id, or 0 if absent.
func (g *Graph) Degree(id int) int { return len(g.adj[id]) }

// Neighbors appends the neighbors of id to buf and returns it. The order
// is unspecified (map iteration); callers needing determinism must sort.
func (g *Graph) Neighbors(id int, buf []int) []int {
	for v := range g.adj[id] {
		buf = append(buf, v)
	}
	return buf
}

// SortedNeighbors returns the neighbors of id in ascending order.
func (g *Graph) SortedNeighbors(id int) []int {
	ns := g.Neighbors(id, nil)
	sort.Ints(ns)
	return ns
}

// EachNeighbor calls fn for every neighbor of id; iteration order is
// unspecified.
func (g *Graph) EachNeighbor(id int, fn func(v int)) {
	for v := range g.adj[id] {
		fn(v)
	}
}

// NumNodes returns the number of live nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of live edges.
func (g *Graph) NumEdges() int { return g.edges }

// AvgDegree returns 2|E|/|V|, or 0 for an empty graph.
func (g *Graph) AvgDegree() float64 {
	if len(g.nodes) == 0 {
		return 0
	}
	return 2 * float64(g.edges) / float64(len(g.nodes))
}

// Nodes returns a copy of the live node IDs in unspecified order.
func (g *Graph) Nodes() []int {
	return append([]int(nil), g.nodes...)
}

// NodeAt returns the i-th live node in the internal dense order.
// Combined with rng sampling of indices it yields uniform node samples.
func (g *Graph) NodeAt(i int) int { return g.nodes[i] }

// SampleNodes returns m distinct live nodes chosen uniformly at random in
// random order — the length-m prefix of a random permutation of the live
// nodes, exactly the active-node selection of the paper's model. If m
// exceeds the number of live nodes, all nodes are returned in random
// order.
func (g *Graph) SampleNodes(r *rng.Rand, m int) []int {
	n := len(g.nodes)
	if m > n {
		m = n
	}
	idx := r.PermPrefix(n, m)
	out := make([]int, m)
	for i, j := range idx {
		out[i] = g.nodes[j]
	}
	return out
}

// Clone returns a deep copy sharing no state with g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		adj:    make(map[int]map[int]struct{}, len(g.adj)),
		nodes:  append([]int(nil), g.nodes...),
		pos:    make(map[int]int, len(g.pos)),
		edges:  g.edges,
		nextID: g.nextID,
	}
	for id, nbrs := range g.adj {
		m := make(map[int]struct{}, len(nbrs))
		for v := range nbrs {
			m[v] = struct{}{}
		}
		c.adj[id] = m
	}
	for id, i := range g.pos {
		c.pos[id] = i
	}
	return c
}

// DegreeHistogram returns counts[d] = number of nodes with degree d.
func (g *Graph) DegreeHistogram() []int {
	maxD := 0
	for _, id := range g.nodes {
		if d := len(g.adj[id]); d > maxD {
			maxD = d
		}
	}
	counts := make([]int, maxD+1)
	for _, id := range g.nodes {
		counts[len(g.adj[id])]++
	}
	return counts
}

// CheckInvariants verifies internal consistency (symmetry of adjacency,
// dense-index agreement, edge count). It is used by tests and returns a
// descriptive error on the first violation found.
func (g *Graph) CheckInvariants() error {
	if len(g.adj) != len(g.nodes) || len(g.pos) != len(g.nodes) {
		return fmt.Errorf("graph: size mismatch adj=%d nodes=%d pos=%d",
			len(g.adj), len(g.nodes), len(g.pos))
	}
	edgeEnds := 0
	for u, nbrs := range g.adj {
		for v := range nbrs {
			edgeEnds++
			if u == v {
				return fmt.Errorf("graph: self-loop at %d", u)
			}
			if _, ok := g.adj[v]; !ok {
				return fmt.Errorf("graph: edge {%d,%d} to dead node", u, v)
			}
			if _, ok := g.adj[v][u]; !ok {
				return fmt.Errorf("graph: asymmetric edge {%d,%d}", u, v)
			}
		}
	}
	if edgeEnds != 2*g.edges {
		return fmt.Errorf("graph: edge count %d but %d endpoints", g.edges, edgeEnds)
	}
	for i, id := range g.nodes {
		if g.pos[id] != i {
			return fmt.Errorf("graph: dense index broken at node %d", id)
		}
	}
	return nil
}
