package graph

import (
	"testing"

	"repro/internal/rng"
)

// colorTestGraphs is the generator zoo the coloring properties are
// checked over: regular structure, random structure, cliques, and the
// degenerate shapes.
func colorTestGraphs() map[string]*Graph {
	r := rng.New(42)
	return map[string]*Graph{
		"empty":     Empty(0),
		"single":    Empty(1),
		"edgeless":  Empty(64),
		"path":      Path(33),
		"cycle-odd": Cycle(17),
		"star":      Star(40),
		"grid":      Grid2D(12, 9),
		"complete":  Complete(9),
		"cliques":   CliquesPlusIsolated(4, 6, 10),
		"random":    RandomWithAvgDegree(r, 400, 8.0),
		"geometric": RandomGeometric(r, 300, 0.1),
		"ws":        WattsStrogatz(r, 256, 6, 0.2),
		"ba":        BarabasiAlbert(r, 256, 4),
	}
}

// classIndependence asserts every color class is an independent set of
// the source graph — the property colored execution leans on: tasks in
// one class share no conflict edge, so they can run without locks.
func classIndependence(t *testing.T, g *Graph, c *CSR, colors []int32, numColors int) {
	t.Helper()
	classes := make([][]int, numColors)
	for v := 0; v < c.NumNodes(); v++ {
		col := colors[v]
		if col < 0 || int(col) >= numColors {
			t.Fatalf("node %d has out-of-range color %d (numColors=%d)", v, col, numColors)
		}
		classes[col] = append(classes[col], c.ID(v))
	}
	for col, class := range classes {
		if !IsIndependentSet(g, class) {
			t.Fatalf("color class %d is not an independent set (%d members)", col, len(class))
		}
	}
}

func TestColorCSRProper(t *testing.T) {
	for name, g := range colorTestGraphs() {
		for _, workers := range []int{1, 4} {
			c := NewCSR(g)
			colors, numColors := ColorCSR(c, nil, workers)
			if !IsProperColoring(c, colors) && c.NumNodes() > 0 {
				t.Fatalf("%s workers=%d: coloring not proper", name, workers)
			}
			if maxDeg := MaxDegreeCSR(c); numColors > maxDeg+1 && c.NumNodes() > 0 {
				t.Fatalf("%s workers=%d: %d colors exceeds maxDeg+1=%d", name, workers, numColors, maxDeg+1)
			}
			classIndependence(t, g, c, colors, numColors)
		}
	}
}

func TestColorCSRCompleteUsesNColors(t *testing.T) {
	c := NewCSR(Complete(7))
	_, numColors := ColorCSR(c, nil, 1)
	if numColors != 7 {
		t.Fatalf("K7 colored with %d colors, want 7", numColors)
	}
}

func TestColorCSRSerialDeterministic(t *testing.T) {
	g := RandomWithAvgDegree(rng.New(9), 500, 10.0)
	c := NewCSR(g)
	a, na := ColorCSR(c, nil, 1)
	b, nb := ColorCSR(c, nil, 1)
	if na != nb {
		t.Fatalf("serial color counts differ: %d vs %d", na, nb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("serial coloring not deterministic at node %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestColorCSRReusesBuffer(t *testing.T) {
	g := Grid2D(8, 8)
	c := NewCSR(g)
	buf := make([]int32, 0, 128)
	colors, _ := ColorCSR(c, buf, 1)
	if &colors[:cap(buf)][0] != &buf[:cap(buf)][0] {
		t.Fatal("ColorCSR allocated a new buffer despite sufficient capacity")
	}
}

// TestColorCSRParallelLarge forces the parallel detect-and-recolor path
// (above colorParallelCutoff) and checks properness + the degree bound.
func TestColorCSRParallelLarge(t *testing.T) {
	g := RandomWithAvgDegree(rng.New(3), 6000, 12.0)
	c := NewCSR(g)
	for _, workers := range []int{2, 4, 8} {
		colors, numColors := ColorCSR(c, nil, workers)
		if !IsProperColoring(c, colors) {
			t.Fatalf("workers=%d: parallel coloring not proper", workers)
		}
		if maxDeg := MaxDegreeCSR(c); numColors > maxDeg+1 {
			t.Fatalf("workers=%d: %d colors exceeds maxDeg+1=%d", workers, numColors, maxDeg+1)
		}
		classIndependence(t, g, c, colors, numColors)
	}
}

func TestNewCSRFromEdges(t *testing.T) {
	edges := [][2]int32{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 4} /* self-loop dropped */}
	c := NewCSRFromEdges(6, edges)
	if c.NumNodes() != 6 {
		t.Fatalf("NumNodes=%d, want 6", c.NumNodes())
	}
	if c.NumEdges() != 4 {
		t.Fatalf("NumEdges=%d, want 4 (self-loop dropped)", c.NumEdges())
	}
	wantDeg := []int{2, 2, 2, 1, 1, 0}
	for v, want := range wantDeg {
		if got := c.Degree(v); got != want {
			t.Fatalf("deg(%d)=%d, want %d", v, got, want)
		}
	}
	// Adjacency round-trips: every listed edge appears in both rows.
	has := func(v int, u int32) bool {
		for _, w := range c.Neighbors(v) {
			if w == u {
				return true
			}
		}
		return false
	}
	for _, e := range edges[:4] {
		if !has(int(e[0]), e[1]) || !has(int(e[1]), e[0]) {
			t.Fatalf("edge %v missing from CSR adjacency", e)
		}
	}
	colors, numColors := ColorCSR(c, nil, 1)
	if !IsProperColoring(c, colors) {
		t.Fatal("coloring of edge-list CSR not proper")
	}
	if numColors != 3 { // the triangle forces exactly 3
		t.Fatalf("numColors=%d, want 3", numColors)
	}
}

// FuzzColorCSR mirrors FuzzCSRGreedyMIS: drive a graph through an
// arbitrary mutation script, snapshot to CSR, and assert ColorCSR
// produces a proper coloring within the maxDegree+1 bound on both the
// serial and parallel paths, with every class independent.
func FuzzColorCSR(f *testing.F) {
	f.Add(uint64(1), []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(uint64(7), []byte{1, 0, 1, 1, 1, 2, 2, 0, 0, 5, 3, 1})
	f.Add(uint64(11), []byte{1, 1, 1, 2, 1, 3, 1, 4, 1, 5, 1, 6})
	f.Fuzz(func(t *testing.T, seed uint64, script []byte) {
		g := NewWithNodes(3)
		for i := 0; i+1 < len(script) && i < 120; i += 2 {
			op, arg := script[i], int(script[i+1])
			nodes := g.Nodes()
			switch op % 3 {
			case 0:
				g.AddNode()
			case 1:
				if len(nodes) >= 2 {
					u := nodes[arg%len(nodes)]
					v := nodes[(arg+1)%len(nodes)]
					if u != v && !g.HasEdge(u, v) {
						g.AddEdge(u, v)
					}
				}
			case 2:
				if len(nodes) > 0 {
					g.RemoveNode(nodes[arg%len(nodes)])
				}
			}
		}
		c := NewCSR(g)
		for _, workers := range []int{1, 3} {
			colors, numColors := ColorCSR(c, nil, workers)
			if c.NumNodes() == 0 {
				if numColors != 0 {
					t.Fatalf("empty snapshot used %d colors", numColors)
				}
				continue
			}
			if !IsProperColoring(c, colors) {
				t.Fatalf("workers=%d: coloring not proper", workers)
			}
			if maxDeg := MaxDegreeCSR(c); numColors > maxDeg+1 {
				t.Fatalf("workers=%d: %d colors exceeds maxDeg+1=%d", workers, numColors, maxDeg+1)
			}
			classIndependence(t, g, c, colors, numColors)
		}
	})
}
