package graph

import (
	"sort"
	"testing"

	"repro/internal/rng"
)

func TestConnectedComponents(t *testing.T) {
	g := CliqueUnion(12, 3) // 3 cliques of 4
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("%d components, want 3", len(comps))
	}
	total := 0
	for _, c := range comps {
		if len(c) != 4 {
			t.Fatalf("component size %d, want 4", len(c))
		}
		// First element is the smallest ID of the component.
		min := c[0]
		for _, v := range c {
			if v < min {
				t.Fatalf("component leader %d is not minimal (%v)", c[0], c)
			}
		}
		total += len(c)
	}
	if total != 12 {
		t.Fatalf("components cover %d nodes", total)
	}
}

func TestNumComponents(t *testing.T) {
	if got := Empty(7).NumComponents(); got != 7 {
		t.Fatalf("empty graph: %d", got)
	}
	if got := Complete(7).NumComponents(); got != 1 {
		t.Fatalf("complete graph: %d", got)
	}
	if got := New().NumComponents(); got != 0 {
		t.Fatalf("null graph: %d", got)
	}
}

func TestBFSDistances(t *testing.T) {
	g := Path(5) // 0-1-2-3-4
	dist := g.BFSDistances(0)
	for v := 0; v < 5; v++ {
		if dist[v] != v {
			t.Fatalf("dist[%d] = %d", v, dist[v])
		}
	}
	// Disconnected nodes are absent.
	g2 := Empty(3)
	g2.AddEdge(0, 1)
	d2 := g2.BFSDistances(0)
	if _, ok := d2[2]; ok {
		t.Fatal("unreachable node has a distance")
	}
	if len(d2) != 2 {
		t.Fatalf("reachable set size %d", len(d2))
	}
}

func TestBFSDistancesPanicsOnDeadNode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Empty(2).BFSDistances(99)
}

func TestInducedSubgraph(t *testing.T) {
	g := Complete(5)
	sub := g.InducedSubgraph([]int{0, 2, 4, 4, 99}) // dup + dead ignored
	if sub.NumNodes() != 3 {
		t.Fatalf("nodes %d", sub.NumNodes())
	}
	if sub.NumEdges() != 3 {
		t.Fatalf("edges %d, want triangle", sub.NumEdges())
	}
	if err := sub.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Node IDs preserved.
	ids := sub.Nodes()
	sort.Ints(ids)
	if ids[0] != 0 || ids[1] != 2 || ids[2] != 4 {
		t.Fatalf("ids %v", ids)
	}
	// Original untouched.
	if g.NumNodes() != 5 || g.NumEdges() != 10 {
		t.Fatal("source graph mutated")
	}
}

func TestInducedSubgraphMatchesModel(t *testing.T) {
	// The model's "subgraph induced by m random nodes" (Thm. 2) built
	// explicitly must agree with GreedyMIS on the full graph restricted
	// to the sample — for a fixed order both commit the same nodes.
	r := rng.New(1)
	g := RandomGNM(r, 60, 200)
	for trial := 0; trial < 30; trial++ {
		order := g.SampleNodes(r, 25)
		sub := g.InducedSubgraph(order)
		selFull, _ := GreedyMIS(g, order)
		selSub, _ := GreedyMIS(sub, order)
		if len(selFull) != len(selSub) {
			t.Fatalf("trial %d: %d vs %d commits", trial, len(selFull), len(selSub))
		}
		for i := range selFull {
			if selFull[i] != selSub[i] {
				t.Fatalf("trial %d: committed sets differ", trial)
			}
		}
	}
}

func TestMaxDegree(t *testing.T) {
	if got := Star(9).MaxDegree(); got != 8 {
		t.Fatalf("star: %d", got)
	}
	if got := New().MaxDegree(); got != 0 {
		t.Fatalf("null: %d", got)
	}
}
