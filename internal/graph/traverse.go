package graph

// ConnectedComponents returns the live nodes grouped by connected
// component. Each inner slice is one component (order unspecified
// within and across components except that the first element of each
// is its smallest node ID).
func (g *Graph) ConnectedComponents() [][]int {
	seen := make(map[int]bool, len(g.nodes))
	var comps [][]int
	for _, start := range g.nodes {
		if seen[start] {
			continue
		}
		var comp []int
		queue := []int{start}
		seen[start] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			comp = append(comp, v)
			for u := range g.adj[v] {
				if !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			}
		}
		// Normalize: smallest ID first, for deterministic reporting.
		minIdx := 0
		for i, v := range comp {
			if v < comp[minIdx] {
				minIdx = i
			}
		}
		comp[0], comp[minIdx] = comp[minIdx], comp[0]
		comps = append(comps, comp)
	}
	return comps
}

// NumComponents returns the number of connected components.
func (g *Graph) NumComponents() int { return len(g.ConnectedComponents()) }

// BFSDistances returns hop distances from src to every reachable node
// (src included at distance 0). Unreachable nodes are absent from the
// map. It panics if src is not live.
func (g *Graph) BFSDistances(src int) map[int]int {
	if !g.Has(src) {
		panic("graph: BFSDistances from dead node")
	}
	dist := map[int]int{src: 0}
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for u := range g.adj[v] {
			if _, ok := dist[u]; !ok {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// InducedSubgraph returns a new graph containing only the given nodes
// (dead IDs ignored) and the edges among them. Node IDs are preserved.
func (g *Graph) InducedSubgraph(nodes []int) *Graph {
	sub := New()
	keep := make(map[int]bool, len(nodes))
	for _, v := range nodes {
		if g.Has(v) && !keep[v] {
			keep[v] = true
			sub.addNodeID(v)
		}
	}
	for v := range keep {
		for u := range g.adj[v] {
			if keep[u] && u > v {
				sub.AddEdge(v, u)
			}
		}
	}
	return sub
}

// MaxDegree returns the largest degree among live nodes (0 when empty).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, v := range g.nodes {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}
