// Package sp implements survey propagation for random k-SAT — another
// of the paper's motivating amorphous data-parallel workloads (§1,
// citing Braunstein–Mézard–Zecchina). Clause-update tasks operate on a
// factor graph; two updates conflict when their clauses share a
// variable, which is the conflict relation exposed to the optimistic
// runtime.
//
// The package contains a full solver pipeline: random formula
// generation, sequential SP message passing (the oracle), SP-guided
// decimation, unit propagation, a WalkSAT finisher for the paramagnetic
// phase, and the speculative adapter.
package sp

import (
	"fmt"

	"repro/internal/rng"
)

// Lit is a literal: variable index with sign.
type Lit struct {
	Var int
	Neg bool
}

// Clause is a disjunction of literals.
type Clause struct {
	Lits []Lit
}

// Formula is a CNF formula over variables 0..NumVars-1.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// NewRandom3SAT returns a random 3-SAT formula with n variables and m
// clauses; each clause draws 3 distinct variables and random signs.
func NewRandom3SAT(r *rng.Rand, n, m int) *Formula {
	if n < 3 {
		panic("sp: need at least 3 variables")
	}
	f := &Formula{NumVars: n}
	for c := 0; c < m; c++ {
		vars := r.PermPrefix(n, 3)
		cl := Clause{Lits: make([]Lit, 3)}
		for i, v := range vars {
			cl.Lits[i] = Lit{Var: v, Neg: r.Bool()}
		}
		f.Clauses = append(f.Clauses, cl)
	}
	return f
}

// Assignment maps variables to values; entries < 0 are unassigned,
// 0 = false, 1 = true.
type Assignment []int8

// NewAssignment returns an all-unassigned assignment for n variables.
func NewAssignment(n int) Assignment {
	a := make(Assignment, n)
	for i := range a {
		a[i] = -1
	}
	return a
}

// Satisfied reports whether every clause has a true literal under a
// *total* assignment; it returns an error naming the first violated or
// undecided clause.
func (f *Formula) Satisfied(a Assignment) error {
	for ci, c := range f.Clauses {
		ok := false
		for _, l := range c.Lits {
			switch a[l.Var] {
			case -1:
				return fmt.Errorf("sp: variable %d unassigned (clause %d)", l.Var, ci)
			case 0:
				if l.Neg {
					ok = true
				}
			case 1:
				if !l.Neg {
					ok = true
				}
			}
			if ok {
				break
			}
		}
		if !ok {
			return fmt.Errorf("sp: clause %d unsatisfied", ci)
		}
	}
	return nil
}

// Simplify applies the partial assignment: satisfied clauses are
// dropped, false literals removed. It returns the residual formula, a
// variable index remap (old -> new, -1 for assigned/eliminated
// variables), and an error if an empty clause arises (contradiction).
func (f *Formula) Simplify(a Assignment) (*Formula, []int, error) {
	remap := make([]int, f.NumVars)
	for i := range remap {
		remap[i] = -1
	}
	next := 0
	var clauses []Clause
	for ci, c := range f.Clauses {
		var lits []Lit
		satisfied := false
		for _, l := range c.Lits {
			switch a[l.Var] {
			case -1:
				lits = append(lits, l)
			case 0:
				if l.Neg {
					satisfied = true
				}
			case 1:
				if !l.Neg {
					satisfied = true
				}
			}
			if satisfied {
				break
			}
		}
		if satisfied {
			continue
		}
		if len(lits) == 0 {
			return nil, nil, fmt.Errorf("sp: clause %d became empty (contradiction)", ci)
		}
		for i, l := range lits {
			if remap[l.Var] == -1 {
				remap[l.Var] = next
				next++
			}
			lits[i].Var = remap[l.Var]
		}
		clauses = append(clauses, Clause{Lits: lits})
	}
	return &Formula{NumVars: next, Clauses: clauses}, remap, nil
}

// UnitPropagate repeatedly assigns variables forced by unit clauses,
// writing into a. It returns the number of assignments made and an error
// on contradiction.
func (f *Formula) UnitPropagate(a Assignment) (int, error) {
	assigned := 0
	for {
		progress := false
		for ci, c := range f.Clauses {
			var unassigned []Lit
			satisfied := false
			for _, l := range c.Lits {
				switch a[l.Var] {
				case -1:
					unassigned = append(unassigned, l)
				case 0:
					satisfied = satisfied || l.Neg
				case 1:
					satisfied = satisfied || !l.Neg
				}
			}
			if satisfied {
				continue
			}
			switch len(unassigned) {
			case 0:
				return assigned, fmt.Errorf("sp: contradiction at clause %d", ci)
			case 1:
				l := unassigned[0]
				if l.Neg {
					a[l.Var] = 0
				} else {
					a[l.Var] = 1
				}
				assigned++
				progress = true
			}
		}
		if !progress {
			return assigned, nil
		}
	}
}
