package sp

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// ClauseConflictGraph builds the CC graph of a formula's clause-update
// tasks: one node per clause, an edge between clauses sharing a
// variable — the lock structure of the speculative SP schedule.
func ClauseConflictGraph(f *Formula) *graph.Graph {
	g := graph.NewWithNodes(len(f.Clauses))
	occ := make([][]int, f.NumVars)
	for ci, c := range f.Clauses {
		for _, l := range c.Lits {
			occ[l.Var] = append(occ[l.Var], ci)
		}
	}
	for _, clauses := range occ {
		for i := 0; i < len(clauses); i++ {
			for j := i + 1; j < len(clauses); j++ {
				if clauses[i] != clauses[j] && !g.HasEdge(clauses[i], clauses[j]) {
					g.AddEdge(clauses[i], clauses[j])
				}
			}
		}
	}
	return g
}

// ParallelismEstimate returns the expected number of clause updates a
// clairvoyant scheduler could run concurrently on formula f: the
// expected greedy MIS of the clause-conflict graph. For random k-SAT at
// ratio α the conflict degree concentrates around k²·α, so parallelism
// scales linearly with the formula size.
func ParallelismEstimate(f *Formula, r *rng.Rand, misReps int) float64 {
	g := ClauseConflictGraph(f)
	return graph.ExpectedMISMonteCarlo(g, r, misReps)
}
