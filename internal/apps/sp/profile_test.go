package sp

import (
	"testing"

	"repro/internal/rng"
)

func TestClauseConflictGraph(t *testing.T) {
	// Two clauses sharing x1; a third disjoint.
	f := &Formula{NumVars: 5, Clauses: []Clause{
		{Lits: []Lit{{Var: 0}, {Var: 1}}},
		{Lits: []Lit{{Var: 1, Neg: true}, {Var: 2}}},
		{Lits: []Lit{{Var: 3}, {Var: 4}}},
	}}
	g := ClauseConflictGraph(f)
	if g.NumNodes() != 3 {
		t.Fatalf("nodes %d", g.NumNodes())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(0, 2) || g.HasEdge(1, 2) {
		t.Fatal("conflict wiring wrong")
	}
}

func TestParallelismEstimateScalesWithSize(t *testing.T) {
	r := rng.New(1)
	small := NewRandom3SAT(r, 100, 250)
	big := NewRandom3SAT(r, 400, 1000)
	ps := ParallelismEstimate(small, r, 40)
	pb := ParallelismEstimate(big, r, 40)
	if ps <= 0 || pb <= 0 {
		t.Fatal("nonpositive parallelism")
	}
	// Same α: parallelism should scale roughly linearly (±2× slack).
	if pb < 2*ps {
		t.Fatalf("parallelism did not scale: %v -> %v", ps, pb)
	}
	// And a clairvoyant bound: cannot exceed the clause count.
	if pb > 1000 {
		t.Fatalf("parallelism %v exceeds clause count", pb)
	}
}
