package sp

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// occurrence locates one appearance of a variable in a clause.
type occurrence struct {
	Clause int  // clause index
	Slot   int  // literal position within the clause
	Neg    bool // literal sign there
}

// State holds the survey propagation messages η_{a→i} for a formula,
// indexed [clause][slot], together with the occurrence lists needed to
// evaluate the SP update equations.
type State struct {
	F   *Formula
	Eta [][]float64
	Occ [][]occurrence // per variable: where it occurs
}

// NewState allocates SP messages initialized uniformly at random in
// (0, 1) — the standard initialization.
func NewState(f *Formula, r *rng.Rand) *State {
	s := &State{F: f}
	s.Eta = make([][]float64, len(f.Clauses))
	for ci, c := range f.Clauses {
		s.Eta[ci] = make([]float64, len(c.Lits))
		for i := range c.Lits {
			s.Eta[ci][i] = r.Float64()
		}
	}
	s.Occ = make([][]occurrence, f.NumVars)
	for ci, c := range f.Clauses {
		for slot, l := range c.Lits {
			s.Occ[l.Var] = append(s.Occ[l.Var], occurrence{Clause: ci, Slot: slot, Neg: l.Neg})
		}
	}
	return s
}

// products returns (Π^u, Π^s, Π^0) for variable v as seen from clause
// exclCi, where the "same" direction is the sign the literal has in
// clause exclCi (neg there).
func (s *State) products(v int, exclCi int, negThere bool) (pu, ps, p0 float64) {
	prodSame, prodOpp, prodAll := 1.0, 1.0, 1.0
	for _, o := range s.Occ[v] {
		if o.Clause == exclCi {
			continue
		}
		e := s.Eta[o.Clause][o.Slot]
		prodAll *= 1 - e
		if o.Neg == negThere {
			prodSame *= 1 - e
		} else {
			prodOpp *= 1 - e
		}
	}
	// Π^u: v is forced in the direction that *violates* clause exclCi —
	// warnings come from clauses where v appears with the opposite sign.
	pu = (1 - prodOpp) * prodSame
	// Π^s: v is forced to satisfy exclCi.
	ps = (1 - prodSame) * prodOpp
	p0 = prodAll
	return pu, ps, p0
}

// UpdateClause recomputes the messages η_{a→i} for every literal slot i
// of clause a and returns the largest absolute change (the residual).
func (s *State) UpdateClause(a int) float64 {
	c := s.F.Clauses[a]
	maxDelta := 0.0
	newEta := make([]float64, len(c.Lits))
	for i := range c.Lits {
		prod := 1.0
		for j, lj := range c.Lits {
			if j == i {
				continue
			}
			pu, ps, p0 := s.products(lj.Var, a, lj.Neg)
			den := pu + ps + p0
			if den <= 0 {
				prod = 0
				break
			}
			prod *= pu / den
		}
		newEta[i] = prod
	}
	for i, e := range newEta {
		if d := math.Abs(e - s.Eta[a][i]); d > maxDelta {
			maxDelta = d
		}
		s.Eta[a][i] = e
	}
	return maxDelta
}

// Sweep updates every clause once and returns the largest residual.
func (s *State) Sweep() float64 {
	maxDelta := 0.0
	for a := range s.F.Clauses {
		if d := s.UpdateClause(a); d > maxDelta {
			maxDelta = d
		}
	}
	return maxDelta
}

// Converge runs sweeps until the residual drops below eps or maxSweeps
// elapse; it reports the final residual and whether it converged.
func (s *State) Converge(eps float64, maxSweeps int) (float64, bool) {
	res := math.Inf(1)
	for i := 0; i < maxSweeps; i++ {
		res = s.Sweep()
		if res < eps {
			return res, true
		}
	}
	return res, false
}

// Bias is a variable's SP-derived polarization.
type Bias struct {
	Var           int
	WPlus, WMinus float64
}

// Polarization returns |W+ − W−|, the decimation ranking key.
func (b Bias) Polarization() float64 { return math.Abs(b.WPlus - b.WMinus) }

// Biases computes the per-variable surveys (W^+, W^-) from the current
// messages.
func (s *State) Biases() []Bias {
	out := make([]Bias, s.F.NumVars)
	for v := 0; v < s.F.NumVars; v++ {
		prodPlus, prodMinus, prodAll := 1.0, 1.0, 1.0
		for _, o := range s.Occ[v] {
			e := s.Eta[o.Clause][o.Slot]
			prodAll *= 1 - e
			if o.Neg {
				// Clause satisfied by v = false.
				prodMinus *= 1 - e
			} else {
				prodPlus *= 1 - e
			}
		}
		// Π^+ : forced true — warnings only from clauses wanting true.
		pPlus := (1 - prodPlus) * prodMinus
		pMinus := (1 - prodMinus) * prodPlus
		den := pPlus + pMinus + prodAll
		b := Bias{Var: v}
		if den > 0 {
			b.WPlus = pPlus / den
			b.WMinus = pMinus / den
		}
		out[v] = b
	}
	return out
}

// MaxPolarization returns the largest polarization across variables
// (≈0 means the paramagnetic phase: SP has no guidance left).
func MaxPolarization(biases []Bias) float64 {
	m := 0.0
	for _, b := range biases {
		if p := b.Polarization(); p > m {
			m = p
		}
	}
	return m
}

// WalkSAT attempts to satisfy f by stochastic local search, returning a
// satisfying assignment or ok=false after maxFlips flips. noise is the
// random-walk probability (0.5 is a robust default).
func WalkSAT(f *Formula, r *rng.Rand, maxFlips int, noise float64) (Assignment, bool) {
	if f.NumVars == 0 {
		if len(f.Clauses) == 0 {
			return Assignment{}, true
		}
		return nil, false
	}
	a := make(Assignment, f.NumVars)
	for i := range a {
		a[i] = int8(r.Intn(2))
	}
	satLit := func(l Lit) bool { return (a[l.Var] == 1) != l.Neg }
	unsat := func() []int {
		var out []int
		for ci, c := range f.Clauses {
			sat := false
			for _, l := range c.Lits {
				if satLit(l) {
					sat = true
					break
				}
			}
			if !sat {
				out = append(out, ci)
			}
		}
		return out
	}
	breakCount := func(v int) int {
		// Clauses currently satisfied only by v.
		count := 0
		for _, c := range f.Clauses {
			satBy, sats := -1, 0
			for _, l := range c.Lits {
				if satLit(l) {
					sats++
					satBy = l.Var
				}
			}
			if sats == 1 && satBy == v {
				count++
			}
		}
		return count
	}
	for flip := 0; flip < maxFlips; flip++ {
		u := unsat()
		if len(u) == 0 {
			return a, true
		}
		c := f.Clauses[u[r.Intn(len(u))]]
		var pick int
		if r.Float64() < noise {
			pick = c.Lits[r.Intn(len(c.Lits))].Var
		} else {
			best, bestBreak := -1, math.MaxInt
			for _, l := range c.Lits {
				if bc := breakCount(l.Var); bc < bestBreak {
					best, bestBreak = l.Var, bc
				}
			}
			pick = best
		}
		a[pick] ^= 1
	}
	return nil, false
}

// SolveOptions tunes the SP-guided decimation solver.
type SolveOptions struct {
	Eps          float64 // SP convergence threshold (default 1e-3)
	MaxSweeps    int     // sweeps per SP run (default 300)
	DecimateFrac float64 // fraction of variables fixed per round (default 0.04)
	Paramagnetic float64 // polarization below which WalkSAT takes over (default 0.01)
	WalkFlips    int     // WalkSAT budget (default 200_000)
}

func (o *SolveOptions) defaults() {
	if o.Eps == 0 {
		o.Eps = 1e-3
	}
	if o.MaxSweeps == 0 {
		o.MaxSweeps = 300
	}
	if o.DecimateFrac == 0 {
		o.DecimateFrac = 0.04
	}
	if o.Paramagnetic == 0 {
		o.Paramagnetic = 0.01
	}
	if o.WalkFlips == 0 {
		o.WalkFlips = 200000
	}
}

// Solve runs SP-guided decimation: converge surveys, fix the most
// polarized variables, simplify, repeat; when the surveys go
// paramagnetic the residual formula goes to WalkSAT. It returns a total
// satisfying assignment for the original formula or an error.
func Solve(f *Formula, r *rng.Rand, opts SolveOptions) (Assignment, error) {
	opts.defaults()
	global := NewAssignment(f.NumVars)
	// forward[i] = current residual index of original variable i.
	forward := make([]int, f.NumVars)
	for i := range forward {
		forward[i] = i
	}
	cur := f
	for cur.NumVars > 0 && len(cur.Clauses) > 0 {
		st := NewState(cur, r)
		st.Converge(opts.Eps, opts.MaxSweeps)
		biases := st.Biases()
		if MaxPolarization(biases) < opts.Paramagnetic {
			break // paramagnetic: local search finishes the job
		}
		// Fix the top-polarization variables.
		k := int(float64(cur.NumVars)*opts.DecimateFrac) + 1
		local := NewAssignment(cur.NumVars)
		// Selection by repeated max keeps this dependency-free.
		for fixed := 0; fixed < k; fixed++ {
			best, bestP := -1, -1.0
			for _, b := range biases {
				if local[b.Var] == -1 && b.Polarization() > bestP {
					best, bestP = b.Var, b.Polarization()
				}
			}
			if best < 0 {
				break
			}
			if biases[best].WPlus >= biases[best].WMinus {
				local[best] = 1
			} else {
				local[best] = 0
			}
		}
		if _, err := cur.UnitPropagate(local); err != nil {
			return nil, fmt.Errorf("sp: decimation hit a contradiction: %w", err)
		}
		next, remap, err := cur.Simplify(local)
		if err != nil {
			return nil, fmt.Errorf("sp: decimation hit a contradiction: %w", err)
		}
		// Fold local decisions back into the global assignment.
		for orig, cu := range forward {
			if cu < 0 {
				continue
			}
			if local[cu] != -1 {
				global[orig] = local[cu]
				forward[orig] = -1
			} else {
				forward[orig] = remap[cu]
			}
		}
		cur = next
	}
	// Residual formula: WalkSAT (or trivial).
	if len(cur.Clauses) > 0 {
		sub, ok := WalkSAT(cur, r, opts.WalkFlips, 0.5)
		if !ok {
			return nil, fmt.Errorf("sp: WalkSAT failed on residual with %d vars / %d clauses",
				cur.NumVars, len(cur.Clauses))
		}
		for orig, cu := range forward {
			if cu >= 0 {
				global[orig] = sub[cu]
			}
		}
	}
	// Unconstrained leftovers can take any value.
	for i, v := range global {
		if v == -1 {
			global[i] = 0
		}
	}
	if err := f.Satisfied(global); err != nil {
		return nil, fmt.Errorf("sp: produced assignment fails verification: %w", err)
	}
	return global, nil
}
