package sp

import (
	"sync"

	"repro/internal/control"
	"repro/internal/speculation"
)

// SpeculativeSP runs survey propagation as an event-driven irregular
// worklist on the optimistic runtime: each pending clause update is a
// speculative task that locks the clause's variables; clauses sharing a
// variable genuinely conflict (their updates read/write each other's
// messages through the shared variable's occurrence list). An update
// whose messages moved more than eps re-enqueues its factor-graph
// neighbors — amorphous data-parallelism in its purest worklist form.
type SpeculativeSP struct {
	mu       sync.Mutex
	st       *State
	varItems []*speculation.Item
	nbrs     [][]int // clause -> clauses sharing a variable
	pending  []bool
	exec     *speculation.Executor
	eps      float64

	Updates int // committed clause updates
}

// NewSpeculativeSP prepares the event-driven SP schedule over state st.
// pick selects pending-task indices (nil = LIFO).
func NewSpeculativeSP(st *State, eps float64, pick func(n int) int) *SpeculativeSP {
	s := &SpeculativeSP{
		st:       st,
		varItems: make([]*speculation.Item, st.F.NumVars),
		nbrs:     make([][]int, len(st.F.Clauses)),
		pending:  make([]bool, len(st.F.Clauses)),
		exec:     speculation.NewExecutor(pick),
		eps:      eps,
	}
	for v := range s.varItems {
		s.varItems[v] = speculation.NewItem(int64(v))
	}
	// Neighbor lists via shared variables (deduplicated).
	for ci, c := range st.F.Clauses {
		seen := map[int]bool{ci: true}
		for _, l := range c.Lits {
			for _, o := range st.Occ[l.Var] {
				if !seen[o.Clause] {
					seen[o.Clause] = true
					s.nbrs[ci] = append(s.nbrs[ci], o.Clause)
				}
			}
		}
	}
	for ci := range st.F.Clauses {
		s.pending[ci] = true
		s.exec.Add(s.taskFor(ci))
	}
	return s
}

// Executor exposes the underlying speculative executor.
func (s *SpeculativeSP) Executor() *speculation.Executor { return s.exec }

// Pending returns the number of queued clause updates.
func (s *SpeculativeSP) Pending() int { return s.exec.Pending() }

// taskFor builds the speculative update task for clause a.
func (s *SpeculativeSP) taskFor(a int) speculation.Task {
	return speculation.TaskFunc(func(ctx *speculation.Ctx) error {
		// Cautious operator: acquire every variable of the clause
		// before touching any message. The variable locks protect all
		// messages this update reads or writes, because every such
		// message belongs to a clause containing one of these
		// variables.
		for _, l := range s.st.F.Clauses[a].Lits {
			if err := ctx.Acquire(s.varItems[l.Var]); err != nil {
				return err
			}
		}
		delta := s.st.UpdateClause(a)
		ctx.OnCommit(func() { s.commitUpdate(a, delta) })
		return nil
	})
}

// commitUpdate re-enqueues the factor-graph neighbors of a hot clause.
func (s *SpeculativeSP) commitUpdate(a int, delta float64) {
	s.mu.Lock()
	s.Updates++
	s.pending[a] = false
	var spawn []int
	if delta > s.eps {
		for _, b := range s.nbrs[a] {
			if !s.pending[b] {
				s.pending[b] = true
				spawn = append(spawn, b)
			}
		}
	}
	s.mu.Unlock()
	for _, b := range spawn {
		s.exec.Add(s.taskFor(b))
	}
}

// Run drains the worklist under controller c (bounded by maxRounds) and
// reports the adaptive trajectory. On return with an empty work-set the
// messages are a fixed point up to eps.
func (s *SpeculativeSP) Run(c control.Controller, maxRounds int) *speculation.AdaptiveResult {
	return speculation.RunAdaptive(s.exec, c, maxRounds)
}
