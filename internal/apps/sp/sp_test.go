package sp

import (
	"math"
	"testing"

	"repro/internal/control"
	"repro/internal/rng"
)

func TestRandom3SATShape(t *testing.T) {
	r := rng.New(1)
	f := NewRandom3SAT(r, 50, 100)
	if f.NumVars != 50 || len(f.Clauses) != 100 {
		t.Fatalf("shape %d/%d", f.NumVars, len(f.Clauses))
	}
	for ci, c := range f.Clauses {
		if len(c.Lits) != 3 {
			t.Fatalf("clause %d has %d literals", ci, len(c.Lits))
		}
		seen := map[int]bool{}
		for _, l := range c.Lits {
			if l.Var < 0 || l.Var >= 50 || seen[l.Var] {
				t.Fatalf("clause %d has bad/duplicate variable", ci)
			}
			seen[l.Var] = true
		}
	}
}

func TestSatisfied(t *testing.T) {
	// (x0 ∨ ¬x1) ∧ (x1)
	f := &Formula{NumVars: 2, Clauses: []Clause{
		{Lits: []Lit{{Var: 0}, {Var: 1, Neg: true}}},
		{Lits: []Lit{{Var: 1}}},
	}}
	good := Assignment{1, 1}
	if err := f.Satisfied(good); err != nil {
		t.Fatalf("satisfying assignment rejected: %v", err)
	}
	bad := Assignment{0, 1}
	if err := f.Satisfied(bad); err == nil {
		t.Fatal("unsatisfying assignment accepted")
	}
	partial := Assignment{-1, 1}
	if err := f.Satisfied(partial); err == nil {
		t.Fatal("partial assignment accepted")
	}
}

func TestSimplify(t *testing.T) {
	// (x0 ∨ x1) ∧ (¬x0 ∨ x2): set x0=1 → first clause satisfied,
	// second becomes (x2).
	f := &Formula{NumVars: 3, Clauses: []Clause{
		{Lits: []Lit{{Var: 0}, {Var: 1}}},
		{Lits: []Lit{{Var: 0, Neg: true}, {Var: 2}}},
	}}
	a := Assignment{1, -1, -1}
	g, remap, err := f.Simplify(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Clauses) != 1 || len(g.Clauses[0].Lits) != 1 {
		t.Fatalf("simplified formula %+v", g)
	}
	if remap[2] != g.Clauses[0].Lits[0].Var {
		t.Fatal("remap inconsistent")
	}
	if remap[0] != -1 {
		t.Fatal("assigned variable still mapped")
	}
}

func TestSimplifyContradiction(t *testing.T) {
	f := &Formula{NumVars: 1, Clauses: []Clause{
		{Lits: []Lit{{Var: 0}}},
	}}
	a := Assignment{0}
	if _, _, err := f.Simplify(a); err == nil {
		t.Fatal("empty clause not detected")
	}
}

func TestUnitPropagate(t *testing.T) {
	// (x0) ∧ (¬x0 ∨ x1) ∧ (¬x1 ∨ x2): chain forces all true.
	f := &Formula{NumVars: 3, Clauses: []Clause{
		{Lits: []Lit{{Var: 0}}},
		{Lits: []Lit{{Var: 0, Neg: true}, {Var: 1}}},
		{Lits: []Lit{{Var: 1, Neg: true}, {Var: 2}}},
	}}
	a := NewAssignment(3)
	n, err := f.UnitPropagate(a)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || a[0] != 1 || a[1] != 1 || a[2] != 1 {
		t.Fatalf("propagated %d, assignment %v", n, a)
	}
}

func TestUnitPropagateContradiction(t *testing.T) {
	f := &Formula{NumVars: 1, Clauses: []Clause{
		{Lits: []Lit{{Var: 0}}},
		{Lits: []Lit{{Var: 0, Neg: true}}},
	}}
	a := NewAssignment(1)
	if _, err := f.UnitPropagate(a); err == nil {
		t.Fatal("contradiction not detected")
	}
}

// On a single isolated clause, SP has a known fixed point: with no
// other clauses, Π^u_{j→a} = 0 for every j, so η = 0 for all messages.
func TestSPFixedPointSingleClause(t *testing.T) {
	r := rng.New(2)
	f := &Formula{NumVars: 3, Clauses: []Clause{
		{Lits: []Lit{{Var: 0}, {Var: 1}, {Var: 2}}},
	}}
	st := NewState(f, r)
	res, ok := st.Converge(1e-9, 50)
	if !ok {
		t.Fatalf("did not converge, residual %v", res)
	}
	for _, e := range st.Eta[0] {
		if e != 0 {
			t.Fatalf("eta = %v, want 0", st.Eta[0])
		}
	}
}

// Two contradictory unit-like clauses on one variable drive warnings up.
func TestSPWarningsOnConflict(t *testing.T) {
	r := rng.New(3)
	// (x0 ∨ x1) ∧ (¬x0 ∨ x1) ∧ (¬x1 ∨ x2): variable 1 is pulled.
	f := &Formula{NumVars: 3, Clauses: []Clause{
		{Lits: []Lit{{Var: 0}, {Var: 1}}},
		{Lits: []Lit{{Var: 0, Neg: true}, {Var: 1}}},
		{Lits: []Lit{{Var: 1, Neg: true}, {Var: 2}}},
	}}
	st := NewState(f, r)
	if _, ok := st.Converge(1e-9, 200); !ok {
		t.Fatal("did not converge")
	}
	b := st.Biases()
	// Variable 2 should lean true (warned by clause 2 once var1 true).
	if b[2].WPlus <= b[2].WMinus {
		t.Logf("biases: %+v", b)
	}
}

func TestSPConvergesOnRandomEasy(t *testing.T) {
	r := rng.New(4)
	f := NewRandom3SAT(r, 120, 240) // alpha = 2: easy phase
	st := NewState(f, r)
	res, ok := st.Converge(1e-4, 500)
	if !ok {
		t.Fatalf("SP did not converge on easy instance, residual %v", res)
	}
}

func TestWalkSATOnEasy(t *testing.T) {
	r := rng.New(5)
	f := NewRandom3SAT(r, 60, 120)
	a, ok := WalkSAT(f, r, 200000, 0.5)
	if !ok {
		t.Fatal("WalkSAT failed on easy instance")
	}
	if err := f.Satisfied(a); err != nil {
		t.Fatal(err)
	}
}

func TestWalkSATTrivial(t *testing.T) {
	if _, ok := WalkSAT(&Formula{}, rng.New(6), 10, 0.5); !ok {
		t.Fatal("empty formula should be satisfiable")
	}
}

func TestSolveEndToEnd(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 3; trial++ {
		f := NewRandom3SAT(r, 150, 450) // alpha = 3: SAT whp, non-trivial
		a, err := Solve(f, r, SolveOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := f.Satisfied(a); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSpeculativeSPConverges(t *testing.T) {
	r := rng.New(8)
	f := NewRandom3SAT(r, 120, 240)
	st := NewState(f, r.Split())
	s := NewSpeculativeSP(st, 1e-4, func(n int) int { return r.Intn(n) })
	rounds := 0
	for s.Pending() > 0 {
		s.Executor().Round(16)
		rounds++
		if rounds > 200000 {
			t.Fatal("speculative SP did not drain")
		}
	}
	// The drained state must be an eps-fixed-point: a full sweep moves
	// nothing beyond (a small multiple of) eps.
	if res := st.Sweep(); res > 5e-3 {
		t.Fatalf("drained but residual %v", res)
	}
	if s.Updates == 0 {
		t.Fatal("no updates committed")
	}
}

func TestSpeculativeSPAdaptive(t *testing.T) {
	r := rng.New(9)
	f := NewRandom3SAT(r, 200, 500)
	st := NewState(f, r.Split())
	s := NewSpeculativeSP(st, 1e-4, func(n int) int { return r.Intn(n) })
	ctrl := control.NewHybrid(control.DefaultHybridConfig(0.25))
	res := s.Run(ctrl, 500000)
	if s.Pending() != 0 {
		t.Fatal("did not drain")
	}
	if res.Rounds == 0 {
		t.Fatal("no rounds")
	}
	if s.Executor().TotalAborted() == 0 {
		t.Error("clause updates never conflicted — locking suspicious")
	}
}

// Sequential and speculative SP must land on comparable fixed points
// (same formula, same eps): compare per-variable biases coarsely.
func TestSpeculativeMatchesSequentialBiases(t *testing.T) {
	r := rng.New(10)
	f := NewRandom3SAT(r, 80, 160)

	seqSt := NewState(f, rng.New(42))
	if _, ok := seqSt.Converge(1e-6, 1000); !ok {
		t.Skip("sequential SP did not converge; skip comparison")
	}

	parSt := NewState(f, rng.New(42))
	s := NewSpeculativeSP(parSt, 1e-6, func(n int) int { return r.Intn(n) })
	for s.Pending() > 0 {
		s.Executor().Round(8)
	}

	bs, bp := seqSt.Biases(), parSt.Biases()
	maxDiff := 0.0
	for v := range bs {
		d := math.Abs(bs[v].WPlus-bp[v].WPlus) + math.Abs(bs[v].WMinus-bp[v].WMinus)
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 0.05 {
		t.Fatalf("bias fixed points diverge: max diff %v", maxDiff)
	}
}

func TestSolveUnsatisfiableReportsError(t *testing.T) {
	r := rng.New(11)
	// (x0) ∧ (¬x0): any pipeline stage must surface the contradiction.
	f := &Formula{NumVars: 3, Clauses: []Clause{
		{Lits: []Lit{{Var: 0}}},
		{Lits: []Lit{{Var: 0, Neg: true}}},
		{Lits: []Lit{{Var: 1}, {Var: 2}}},
	}}
	if _, err := Solve(f, r, SolveOptions{WalkFlips: 2000}); err == nil {
		t.Fatal("UNSAT instance solved?!")
	}
}

func TestSolveForcedChainDecimates(t *testing.T) {
	r := rng.New(12)
	// Implication chain: strong polarization drives decimation rather
	// than WalkSAT.
	var clauses []Clause
	clauses = append(clauses, Clause{Lits: []Lit{{Var: 0}}})
	const n = 40
	for i := 0; i+1 < n; i++ {
		clauses = append(clauses, Clause{Lits: []Lit{{Var: i, Neg: true}, {Var: i + 1}}})
	}
	f := &Formula{NumVars: n, Clauses: clauses}
	a, err := Solve(f, r, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if a[i] != 1 {
			t.Fatalf("variable %d = %d, chain forces all true", i, a[i])
		}
	}
}

func TestSolveHarderAlpha(t *testing.T) {
	if testing.Short() {
		t.Skip("slow in -short mode")
	}
	r := rng.New(13)
	f := NewRandom3SAT(r, 250, 950) // alpha = 3.8: decimation territory
	a, err := Solve(f, r, SolveOptions{})
	if err != nil {
		t.Fatalf("solve failed: %v", err)
	}
	if err := f.Satisfied(a); err != nil {
		t.Fatal(err)
	}
}

func TestSolveEmptyFormula(t *testing.T) {
	r := rng.New(14)
	f := &Formula{NumVars: 5}
	a, err := Solve(f, r, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 5 {
		t.Fatalf("assignment length %d", len(a))
	}
}
