// Package maxflow implements maximum flow with Goldberg–Tarjan
// preflow-push — a staple of the Lonestar suite the paper builds its
// parallelism profiles on ([15]): active nodes (with positive excess)
// are discharged in any order, two discharges conflict when their
// neighborhoods overlap, and newly activated nodes are new work. The
// package provides the push–relabel engine, an independent
// Edmonds–Karp oracle, and the speculative adapter for the optimistic
// runtime.
package maxflow

import (
	"fmt"

	"repro/internal/rng"
)

// arc is one directed residual arc. rev indexes the paired reverse arc
// in adj[To].
type arc struct {
	To   int
	Rev  int
	Cap  int64
	Flow int64
}

func (a *arc) residual() int64 { return a.Cap - a.Flow }

// Network is a directed flow network on nodes 0..N-1.
type Network struct {
	N   int
	adj [][]arc
}

// NewNetwork returns an empty network with n nodes.
func NewNetwork(n int) *Network {
	if n < 2 {
		panic("maxflow: need at least two nodes")
	}
	return &Network{N: n, adj: make([][]arc, n)}
}

// AddEdge inserts a directed edge u→v with the given capacity (plus the
// implicit residual reverse arc). Parallel edges are allowed.
func (net *Network) AddEdge(u, v int, cap int64) {
	if u < 0 || u >= net.N || v < 0 || v >= net.N || u == v || cap < 0 {
		panic(fmt.Sprintf("maxflow: bad edge %d->%d cap %d", u, v, cap))
	}
	net.adj[u] = append(net.adj[u], arc{To: v, Rev: len(net.adj[v]), Cap: cap})
	net.adj[v] = append(net.adj[v], arc{To: u, Rev: len(net.adj[u]) - 1, Cap: 0})
}

// Clone deep-copies the network (flows included).
func (net *Network) Clone() *Network {
	c := NewNetwork(net.N)
	for u := range net.adj {
		c.adj[u] = append([]arc(nil), net.adj[u]...)
	}
	return c
}

// Reset zeroes all flows.
func (net *Network) Reset() {
	for u := range net.adj {
		for i := range net.adj[u] {
			net.adj[u][i].Flow = 0
		}
	}
}

// OutFlow returns the net flow leaving node u.
func (net *Network) OutFlow(u int) int64 {
	total := int64(0)
	for i := range net.adj[u] {
		total += net.adj[u][i].Flow
	}
	return total
}

// CheckFlow validates capacity constraints, antisymmetry, and
// conservation at every node except src and sink.
func (net *Network) CheckFlow(src, sink int) error {
	for u := range net.adj {
		for i := range net.adj[u] {
			a := &net.adj[u][i]
			if a.Flow > a.Cap {
				return fmt.Errorf("maxflow: arc %d->%d over capacity", u, a.To)
			}
			back := &net.adj[a.To][a.Rev]
			if back.Flow != -a.Flow {
				return fmt.Errorf("maxflow: antisymmetry broken on %d->%d", u, a.To)
			}
		}
	}
	for u := 0; u < net.N; u++ {
		if u == src || u == sink {
			continue
		}
		if net.OutFlow(u) != 0 {
			return fmt.Errorf("maxflow: conservation broken at %d (net %d)", u, net.OutFlow(u))
		}
	}
	return nil
}

// EdmondsKarp computes the max flow src→sink with BFS augmenting paths —
// the independent oracle. It mutates the network's flows and returns
// the flow value.
func EdmondsKarp(net *Network, src, sink int) int64 {
	total := int64(0)
	type hop struct{ node, arcIdx int }
	for {
		// BFS for a shortest augmenting path.
		parent := make([]hop, net.N)
		for i := range parent {
			parent[i] = hop{node: -1}
		}
		parent[src] = hop{node: src}
		queue := []int{src}
		for len(queue) > 0 && parent[sink].node == -1 {
			u := queue[0]
			queue = queue[1:]
			for i := range net.adj[u] {
				a := &net.adj[u][i]
				if a.residual() > 0 && parent[a.To].node == -1 {
					parent[a.To] = hop{node: u, arcIdx: i}
					queue = append(queue, a.To)
				}
			}
		}
		if parent[sink].node == -1 {
			return total
		}
		// Bottleneck.
		bottleneck := int64(1) << 62
		for v := sink; v != src; v = parent[v].node {
			a := &net.adj[parent[v].node][parent[v].arcIdx]
			if a.residual() < bottleneck {
				bottleneck = a.residual()
			}
		}
		for v := sink; v != src; v = parent[v].node {
			a := &net.adj[parent[v].node][parent[v].arcIdx]
			a.Flow += bottleneck
			net.adj[a.To][a.Rev].Flow -= bottleneck
		}
		total += bottleneck
	}
}

// PushRelabel computes the max flow with the sequential FIFO
// preflow-push algorithm. It mutates flows and returns the flow value.
func PushRelabel(net *Network, src, sink int) int64 {
	st := newPRState(net, src, sink)
	queue := st.saturateSource()
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		st.inQueue[u] = false
		activated := st.discharge(u)
		for _, v := range activated {
			if !st.inQueue[v] {
				st.inQueue[v] = true
				queue = append(queue, v)
			}
		}
		if st.excess[u] > 0 && !st.inQueue[u] {
			st.inQueue[u] = true
			queue = append(queue, u)
		}
	}
	return st.excess[sink]
}

// prState is the shared preflow-push state, used by both the sequential
// and the speculative drivers.
type prState struct {
	net       *Network
	src, sink int
	height    []int
	excess    []int64
	inQueue   []bool
}

func newPRState(net *Network, src, sink int) *prState {
	if src == sink || src < 0 || sink < 0 || src >= net.N || sink >= net.N {
		panic("maxflow: bad src/sink")
	}
	st := &prState{
		net:     net,
		src:     src,
		sink:    sink,
		height:  make([]int, net.N),
		excess:  make([]int64, net.N),
		inQueue: make([]bool, net.N),
	}
	st.height[src] = net.N
	return st
}

// saturateSource pushes the source's full out-capacity and returns the
// initially active nodes.
func (st *prState) saturateSource() []int {
	var active []int
	for i := range st.net.adj[st.src] {
		a := &st.net.adj[st.src][i]
		if a.Cap == 0 {
			continue
		}
		delta := a.residual()
		if delta <= 0 {
			continue
		}
		a.Flow += delta
		st.net.adj[a.To][a.Rev].Flow -= delta
		st.excess[a.To] += delta
		st.excess[st.src] -= delta
		if a.To != st.sink && !st.inQueue[a.To] {
			st.inQueue[a.To] = true
			active = append(active, a.To)
		}
	}
	return active
}

// active reports whether u carries pushable excess.
func (st *prState) active(u int) bool {
	return u != st.src && u != st.sink && st.excess[u] > 0
}

// discharge repeatedly pushes and relabels u until its excess is gone,
// returning the nodes newly activated by its pushes. The operation
// reads and writes only u and its residual neighbors — the conflict
// neighborhood of the speculative version.
func (st *prState) discharge(u int) []int {
	var activated []int
	for st.excess[u] > 0 {
		pushed := false
		for i := range st.net.adj[u] {
			a := &st.net.adj[u][i]
			if a.residual() <= 0 || st.height[u] != st.height[a.To]+1 {
				continue
			}
			delta := st.excess[u]
			if r := a.residual(); r < delta {
				delta = r
			}
			a.Flow += delta
			st.net.adj[a.To][a.Rev].Flow -= delta
			st.excess[u] -= delta
			wasInactive := st.excess[a.To] == 0
			st.excess[a.To] += delta
			if wasInactive && st.active(a.To) {
				activated = append(activated, a.To)
			}
			pushed = true
			if st.excess[u] == 0 {
				break
			}
		}
		if pushed {
			continue
		}
		// Relabel: lift u above its lowest residual neighbor.
		minH := 1 << 30
		for i := range st.net.adj[u] {
			a := &st.net.adj[u][i]
			if a.residual() > 0 && st.height[a.To] < minH {
				minH = st.height[a.To]
			}
		}
		if minH == 1<<30 {
			// A node with excess always has a residual reverse arc.
			panic(fmt.Sprintf("maxflow: node %d has excess but no residual arcs", u))
		}
		st.height[u] = minH + 1
		if st.height[u] > 2*st.net.N {
			// Theory bounds heights by 2N−1; exceeding it means a bug.
			panic(fmt.Sprintf("maxflow: node %d lifted past 2N", u))
		}
	}
	return activated
}

// RandomNetwork generates a random layered DAG-ish network plus shortcut
// edges, with src 0 and sink n-1 — a standard maxflow test family.
func RandomNetwork(r *rng.Rand, n, extraEdges int, maxCap int64) *Network {
	if n < 2 {
		panic("maxflow: need at least 2 nodes")
	}
	net := NewNetwork(n)
	// A random Hamiltonian-ish backbone guarantees sink reachability.
	perm := r.Perm(n - 2)
	prev := 0
	for _, p := range perm {
		v := p + 1 // interior nodes 1..n-2
		net.AddEdge(prev, v, 1+int64(r.Intn(int(maxCap))))
		prev = v
	}
	net.AddEdge(prev, n-1, 1+int64(r.Intn(int(maxCap))))
	for i := 0; i < extraEdges; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && v != 0 && u != n-1 {
			net.AddEdge(u, v, 1+int64(r.Intn(int(maxCap))))
		}
	}
	return net
}
