package maxflow

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// ProfilePoint records the available parallelism of one preflow-push
// step.
type ProfilePoint struct {
	Step        int
	Active      int
	Parallelism float64 // E[greedy MIS] of the discharge-conflict graph
}

// dischargeConflictGraph builds the CC graph over the currently active
// nodes: two discharges conflict when their residual neighborhoods
// intersect (share a node), i.e. the nodes are within two hops.
func dischargeConflictGraph(st *prState, active []int) *graph.Graph {
	g := graph.New()
	id := make(map[int]int, len(active))
	for _, v := range active {
		id[v] = g.AddNode()
	}
	// Mark each active node's closed neighborhood and connect active
	// pairs whose neighborhoods overlap.
	owner := make(map[int][]int) // network node -> active nodes touching it
	for _, v := range active {
		owner[v] = append(owner[v], v)
		for i := range st.net.adj[v] {
			w := st.net.adj[v][i].To
			owner[w] = append(owner[w], v)
		}
	}
	for _, claimants := range owner {
		for i := 0; i < len(claimants); i++ {
			for j := i + 1; j < len(claimants); j++ {
				a, b := id[claimants[i]], id[claimants[j]]
				if a != b && !g.HasEdge(a, b) {
					g.AddEdge(a, b)
				}
			}
		}
	}
	return g
}

// ParallelismProfile charts available parallelism across a clairvoyant
// preflow-push run: each step discharges a maximal independent set of
// active nodes (by conflict neighborhoods) and records the expected MIS
// size.
func ParallelismProfile(net *Network, src, sink int, r *rng.Rand, misReps, maxSteps int) []ProfilePoint {
	st := newPRState(net, src, sink)
	active := st.saturateSource()
	var out []ProfilePoint
	for step := 0; step < maxSteps && len(active) > 0; step++ {
		cg := dischargeConflictGraph(st, active)
		out = append(out, ProfilePoint{
			Step:        step,
			Active:      len(active),
			Parallelism: graph.ExpectedMISMonteCarlo(cg, r, misReps),
		})
		// Clairvoyant step: discharge every active node sequentially
		// (any independent subset is one parallel step; full sweep
		// keeps the profile short and the dynamics realistic).
		var next []int
		nextSet := make(map[int]bool)
		for _, v := range active {
			if !st.active(v) {
				continue
			}
			for _, w := range st.discharge(v) {
				if !nextSet[w] && st.active(w) {
					nextSet[w] = true
					next = append(next, w)
				}
			}
		}
		for _, v := range active {
			if st.active(v) && !nextSet[v] {
				nextSet[v] = true
				next = append(next, v)
			}
		}
		active = next
	}
	return out
}
