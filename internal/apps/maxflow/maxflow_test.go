package maxflow

import (
	"testing"

	"repro/internal/control"
	"repro/internal/rng"
)

// The classic textbook instance with known max flow 23.
func clrsNetwork() *Network {
	net := NewNetwork(6)
	net.AddEdge(0, 1, 16)
	net.AddEdge(0, 2, 13)
	net.AddEdge(1, 2, 10)
	net.AddEdge(2, 1, 4)
	net.AddEdge(1, 3, 12)
	net.AddEdge(3, 2, 9)
	net.AddEdge(2, 4, 14)
	net.AddEdge(4, 3, 7)
	net.AddEdge(3, 5, 20)
	net.AddEdge(4, 5, 4)
	return net
}

func TestEdmondsKarpKnownValue(t *testing.T) {
	net := clrsNetwork()
	if got := EdmondsKarp(net, 0, 5); got != 23 {
		t.Fatalf("max flow %d, want 23", got)
	}
	if err := net.CheckFlow(0, 5); err != nil {
		t.Fatal(err)
	}
	if net.OutFlow(0) != 23 || net.OutFlow(5) != -23 {
		t.Fatalf("endpoint flows %d/%d", net.OutFlow(0), net.OutFlow(5))
	}
}

func TestPushRelabelKnownValue(t *testing.T) {
	net := clrsNetwork()
	if got := PushRelabel(net, 0, 5); got != 23 {
		t.Fatalf("max flow %d, want 23", got)
	}
	if err := net.CheckFlow(0, 5); err != nil {
		t.Fatal(err)
	}
}

func TestDisconnectedSink(t *testing.T) {
	net := NewNetwork(4)
	net.AddEdge(0, 1, 5) // sink 3 unreachable
	if got := EdmondsKarp(net.Clone(), 0, 3); got != 0 {
		t.Fatalf("EK on disconnected: %d", got)
	}
	if got := PushRelabel(net.Clone(), 0, 3); got != 0 {
		t.Fatalf("PR on disconnected: %d", got)
	}
}

func TestSingleEdge(t *testing.T) {
	net := NewNetwork(2)
	net.AddEdge(0, 1, 7)
	if got := PushRelabel(net, 0, 1); got != 7 {
		t.Fatalf("flow %d", got)
	}
}

func TestParallelEdgesAccumulate(t *testing.T) {
	net := NewNetwork(2)
	net.AddEdge(0, 1, 3)
	net.AddEdge(0, 1, 4)
	if got := PushRelabel(net, 0, 1); got != 7 {
		t.Fatalf("flow %d, want 7", got)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	net := NewNetwork(3)
	for i, fn := range []func(){
		func() { net.AddEdge(0, 0, 1) },
		func() { net.AddEdge(-1, 1, 1) },
		func() { net.AddEdge(0, 3, 1) },
		func() { net.AddEdge(0, 1, -1) },
		func() { NewNetwork(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPushRelabelMatchesEdmondsKarpRandom(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 25; trial++ {
		net := RandomNetwork(r, 20+trial*3, 60+trial*10, 50)
		want := EdmondsKarp(net.Clone(), 0, net.N-1)
		pr := net.Clone()
		got := PushRelabel(pr, 0, net.N-1)
		if got != want {
			t.Fatalf("trial %d: PR %d vs EK %d", trial, got, want)
		}
		if err := pr.CheckFlow(0, net.N-1); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSpeculativeMatchesOracle(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 10; trial++ {
		net := RandomNetwork(r, 40, 160, 30)
		want := EdmondsKarp(net.Clone(), 0, net.N-1)

		spec := net.Clone()
		s := NewSpeculativePR(spec, 0, spec.N-1, func(n int) int { return r.Intn(n) })
		rounds := 0
		for s.Pending() > 0 {
			s.Executor().Round(8)
			rounds++
			if rounds > 1000000 {
				t.Fatalf("trial %d: did not drain", trial)
			}
		}
		if got := s.FlowValue(); got != want {
			t.Fatalf("trial %d: speculative %d vs oracle %d", trial, got, want)
		}
		if err := spec.CheckFlow(0, spec.N-1); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSpeculativeAdaptive(t *testing.T) {
	r := rng.New(3)
	net := RandomNetwork(r, 120, 600, 40)
	want := EdmondsKarp(net.Clone(), 0, net.N-1)
	spec := net.Clone()
	s := NewSpeculativePR(spec, 0, spec.N-1, func(n int) int { return r.Intn(n) })
	ctrl := control.NewHybrid(control.DefaultHybridConfig(0.25))
	res := s.Run(ctrl, 1000000)
	if s.Pending() != 0 {
		t.Fatal("did not drain")
	}
	if got := s.FlowValue(); got != want {
		t.Fatalf("adaptive flow %d vs oracle %d", got, want)
	}
	if res.Rounds == 0 {
		t.Fatal("no rounds")
	}
	// Discharges on a dense residual graph must conflict sometimes.
	if s.Executor().TotalAborted() == 0 {
		t.Error("no conflicts — neighborhood locking suspicious")
	}
}

func TestRandomNetworkReachesSink(t *testing.T) {
	r := rng.New(4)
	net := RandomNetwork(r, 30, 0, 10) // backbone only
	if got := EdmondsKarp(net, 0, net.N-1); got <= 0 {
		t.Fatalf("backbone carries no flow: %d", got)
	}
}

func TestParallelismProfile(t *testing.T) {
	r := rng.New(5)
	net := RandomNetwork(r, 80, 300, 20)
	pts := ParallelismProfile(net.Clone(), 0, net.N-1, r, 10, 10000)
	if len(pts) == 0 {
		t.Fatal("empty profile")
	}
	for _, p := range pts {
		if p.Parallelism < 1 || p.Parallelism > float64(p.Active) {
			t.Fatalf("step %d: parallelism %v vs active %d", p.Step, p.Parallelism, p.Active)
		}
	}
	// The clairvoyant run must still compute a valid max flow.
	check := net.Clone()
	want := EdmondsKarp(net.Clone(), 0, net.N-1)
	got := PushRelabel(check, 0, check.N-1)
	if got != want {
		t.Fatalf("sanity: %d vs %d", got, want)
	}
}
