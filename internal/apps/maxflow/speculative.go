package maxflow

import (
	"sync"

	"repro/internal/control"
	"repro/internal/speculation"
)

// SpeculativePR runs preflow-push on the optimistic runtime: each active
// node is a discharge task that locks its residual neighborhood
// ({u} ∪ N(u)); overlapping neighborhoods conflict. Asynchronous
// push–relabel is correct under any serialization of atomic discharges,
// so the committed (neighborhood-disjoint) discharges of a round
// compose safely.
type SpeculativePR struct {
	mu      sync.Mutex
	st      *prState
	items   []*speculation.Item
	hasTask map[int]bool
	exec    *speculation.Executor
}

// NewSpeculativePR prepares the workload: the source is saturated and
// the initially active nodes enter the work-set. pick selects
// pending-task indices (nil = LIFO).
func NewSpeculativePR(net *Network, src, sink int, pick func(n int) int) *SpeculativePR {
	s := &SpeculativePR{
		st:      newPRState(net, src, sink),
		items:   make([]*speculation.Item, net.N),
		hasTask: make(map[int]bool),
		exec:    speculation.NewExecutor(pick),
	}
	for i := range s.items {
		s.items[i] = speculation.NewItem(int64(i))
	}
	for _, v := range s.st.saturateSource() {
		s.hasTask[v] = true
		s.exec.Add(s.taskFor(v))
	}
	return s
}

// Executor exposes the underlying executor.
func (s *SpeculativePR) Executor() *speculation.Executor { return s.exec }

// Pending returns the queued discharge count.
func (s *SpeculativePR) Pending() int { return s.exec.Pending() }

// FlowValue returns the flow that has reached the sink so far (the max
// flow once the work-set drains).
func (s *SpeculativePR) FlowValue() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.excess[s.st.sink]
}

// taskFor builds the speculative discharge task for node u.
func (s *SpeculativePR) taskFor(u int) speculation.Task {
	return speculation.TaskFunc(func(ctx *speculation.Ctx) error {
		s.mu.Lock()
		if !s.st.active(u) {
			delete(s.hasTask, u)
			s.mu.Unlock()
			return nil // stale: excess already drained elsewhere
		}
		s.mu.Unlock()

		// Cautious lock phase over the static residual neighborhood.
		if err := ctx.Acquire(s.items[u]); err != nil {
			return err
		}
		for i := range s.st.net.adj[u] {
			if err := ctx.Acquire(s.items[s.st.net.adj[u][i].To]); err != nil {
				return err
			}
		}
		ctx.OnCommit(func() { s.commitDischarge(u) })
		return nil
	})
}

// commitDischarge performs the actual discharge (serial commit phase)
// and requeues the activated nodes.
func (s *SpeculativePR) commitDischarge(u int) {
	s.mu.Lock()
	delete(s.hasTask, u)
	var spawn []int
	if s.st.active(u) {
		activated := s.st.discharge(u)
		for _, v := range activated {
			if !s.hasTask[v] {
				s.hasTask[v] = true
				spawn = append(spawn, v)
			}
		}
		// A discharge stuck on relabel limits may leave residue.
		if s.st.active(u) && !s.hasTask[u] {
			s.hasTask[u] = true
			spawn = append(spawn, u)
		}
	}
	s.mu.Unlock()
	for _, v := range spawn {
		s.exec.Add(s.taskFor(v))
	}
}

// Run drains the discharges under controller c.
func (s *SpeculativePR) Run(c control.Controller, maxRounds int) *speculation.AdaptiveResult {
	return speculation.RunAdaptive(s.exec, c, maxRounds)
}
