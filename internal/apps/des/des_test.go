package des

import (
	"math"
	"testing"

	"repro/internal/control"
)

func TestEventOrdering(t *testing.T) {
	a := Event{Time: 1, Kind: Arrival, Station: 0, Job: 0}
	d := Event{Time: 1, Kind: Departure, Station: 0, Job: 0}
	if !d.Before(a) || a.Before(d) {
		t.Fatal("departures must order before arrivals at equal times")
	}
	later := Event{Time: 2, Kind: Departure, Station: 0, Job: 0}
	if !a.Before(later) {
		t.Fatal("time dominates kind")
	}
}

func TestServiceTimeDeterministic(t *testing.T) {
	net := NewTandem(7, 1.0, 2.0)
	if net.ServiceTime(0, 3) != net.ServiceTime(0, 3) {
		t.Fatal("service time not deterministic")
	}
	if net.ServiceTime(0, 3) == net.ServiceTime(1, 3) {
		t.Fatal("stations should differ")
	}
	if net.ServiceTime(0, 3) == net.ServiceTime(0, 4) {
		t.Fatal("jobs should differ")
	}
	if net.ServiceTime(0, 3) <= 0 {
		t.Fatal("service time must be positive")
	}
}

func TestArrivalsMonotone(t *testing.T) {
	net := NewTandem(1, 1.0)
	evs := net.Arrivals(100, 0.5)
	if len(evs) != 100 {
		t.Fatalf("%d arrivals", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Time <= evs[i-1].Time {
			t.Fatal("arrival times must strictly increase")
		}
		if evs[i].Job != i || evs[i].Station != 0 || evs[i].Kind != Arrival {
			t.Fatalf("bad arrival %+v", evs[i])
		}
	}
}

func TestSequentialSingleStation(t *testing.T) {
	net := NewTandem(3, 0.5)
	s := RunSequential(net, 50, 1.0)
	if err := s.CheckComplete(); err != nil {
		t.Fatal(err)
	}
	makespan, served := s.MakespanAndThroughput()
	if served != 50 {
		t.Fatalf("served %d", served)
	}
	if makespan <= 0 {
		t.Fatal("zero makespan")
	}
	// Each job processed exactly one arrival + one departure per station.
	if s.Processed != 50*2 {
		t.Fatalf("processed %d events, want 100", s.Processed)
	}
}

func TestSequentialTandemConservation(t *testing.T) {
	net := NewTandem(11, 0.4, 0.8, 0.2)
	s := RunSequential(net, 200, 1.0)
	if err := s.CheckComplete(); err != nil {
		t.Fatal(err)
	}
	for i := range s.Stations {
		if s.Stations[i].Served != 200 {
			t.Fatalf("station %d served %d", i, s.Stations[i].Served)
		}
	}
	// FIFO through a tandem: jobs depart in arrival order per station,
	// so network departure times are non-decreasing in job index.
	for j := 1; j < 200; j++ {
		if s.Departed[j] < s.Departed[j-1] {
			t.Fatalf("FIFO violated: job %d departs at %v before job %d at %v",
				j, s.Departed[j], j-1, s.Departed[j-1])
		}
	}
}

func TestDepartureAfterArrivalTime(t *testing.T) {
	net := NewTandem(13, 1.0, 1.0)
	s := RunSequential(net, 80, 0.7)
	arr := net.Arrivals(80, 0.7)
	for j := 0; j < 80; j++ {
		if s.Departed[j] <= arr[j].Time {
			t.Fatalf("job %d departed at %v before arriving at %v",
				j, s.Departed[j], arr[j].Time)
		}
	}
}

// The headline check: the speculative ordered execution reproduces the
// sequential oracle bit-for-bit, at every parallelism level.
func TestSpeculativeMatchesOracleExactly(t *testing.T) {
	net := NewTandem(17, 0.6, 0.3, 0.9)
	const jobs = 150
	oracle := RunSequential(net, jobs, 0.5)

	for _, m := range []int{1, 4, 16, 64} {
		sim := NewSpeculativeSim(net, jobs, 0.5)
		rounds := 0
		for sim.Pending() > 0 {
			sim.Executor().Round(m)
			rounds++
			if rounds > 1000000 {
				t.Fatalf("m=%d: did not drain", m)
			}
		}
		s := sim.State()
		if err := s.CheckComplete(); err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		for j := 0; j < jobs; j++ {
			if s.Departed[j] != oracle.Departed[j] {
				t.Fatalf("m=%d: job %d departs at %v, oracle %v",
					m, j, s.Departed[j], oracle.Departed[j])
			}
		}
		if s.Processed != oracle.Processed {
			t.Fatalf("m=%d: processed %d, oracle %d", m, s.Processed, oracle.Processed)
		}
	}
}

func TestSpeculativeConflictsOccur(t *testing.T) {
	// A single station with dense arrivals: nearly all same-round
	// parallelism is wasted, so conflicts + premature must dominate.
	net := NewTandem(19, 1.0)
	sim := NewSpeculativeSim(net, 100, 0.1)
	for sim.Pending() > 0 {
		sim.Executor().Round(16)
	}
	e := sim.Executor()
	if e.TotalConflicts()+e.TotalPremature() == 0 {
		t.Fatal("no wasted work on a serial workload at m=16?")
	}
	if e.OverallConflictRatio() < 0.3 {
		t.Errorf("conflict ratio %v suspiciously low for a serial DES", e.OverallConflictRatio())
	}
}

func TestSpeculativeAdaptiveShrinksOnSerialWorkload(t *testing.T) {
	net := NewTandem(23, 1.0) // one station: no exploitable parallelism
	sim := NewSpeculativeSim(net, 200, 0.1)
	ctrl := control.NewHybrid(control.DefaultHybridConfig(0.25))
	res := sim.Run(ctrl, 1000000)
	if sim.Pending() != 0 {
		t.Fatal("did not drain")
	}
	if res.Rounds == 0 {
		t.Fatal("no rounds")
	}
	if err := sim.State().CheckComplete(); err != nil {
		t.Fatal(err)
	}
	// During the contended phase (all 200 arrivals pending) the
	// controller must pin m at the floor; the drain tail — one chained
	// departure pending per round, conflict ratio 0 by construction —
	// legitimately lets m grow, so inspect the first half of the run.
	high := 0
	half := res.Rounds / 2
	for _, m := range res.M[:half] {
		if m > 8 {
			high++
		}
	}
	if high > half/10 {
		t.Errorf("m exceeded 8 in %d of the first %d rounds of a serial DES", high, half)
	}
}

func TestSpeculativeAdaptiveWideNetwork(t *testing.T) {
	// Many parallel stations via a wide tandem (jobs spread over time):
	// adaptive allocation should ramp above the minimum.
	means := make([]float64, 12)
	for i := range means {
		means[i] = 0.05
	}
	net := NewTandem(29, means...)
	sim := NewSpeculativeSim(net, 300, 0.02)
	ctrl := control.NewHybrid(control.DefaultHybridConfig(0.25))
	sim.Run(ctrl, 1000000)
	if err := sim.State().CheckComplete(); err != nil {
		t.Fatal(err)
	}
	oracle := RunSequential(net, 300, 0.02)
	m1, s1 := sim.State().MakespanAndThroughput()
	m2, s2 := oracle.MakespanAndThroughput()
	if s1 != s2 || math.Abs(m1-m2) > 1e-12 {
		t.Fatalf("speculative (%v, %d) differs from oracle (%v, %d)", m1, s1, m2, s2)
	}
}
