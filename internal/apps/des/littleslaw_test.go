package des

import (
	"math"
	"sort"
	"testing"
)

// sojournStats computes each job's time in system (network departure −
// external arrival) for a finished single-station simulation.
func sojournStats(net *Network, jobs int, interMean float64) (meanSojourn, lambda, makespan float64) {
	s := RunSequential(net, jobs, interMean)
	arr := net.Arrivals(jobs, interMean)
	total := 0.0
	for j := 0; j < jobs; j++ {
		total += s.Departed[j] - arr[j].Time
	}
	mk, _ := s.MakespanAndThroughput()
	return total / float64(jobs), float64(jobs) / mk, mk
}

// Little's law: L = λ·W. We estimate L by integrating the number of
// jobs in system over time via arrival/departure events and compare
// against λ·W. This validates the whole DES substrate against queueing
// theory rather than against itself.
func TestLittlesLawSingleStation(t *testing.T) {
	net := NewTandem(101, 0.5) // M/M/1-ish, utilization λ·E[S] = 0.5/1 ≈ 0.5
	const jobs = 4000
	const interMean = 1.0

	s := RunSequential(net, jobs, interMean)
	arr := net.Arrivals(jobs, interMean)

	// Build the in-system step function from arrival and departure
	// instants.
	type ev struct {
		t float64
		d int
	}
	events := make([]ev, 0, 2*jobs)
	for j := 0; j < jobs; j++ {
		events = append(events, ev{arr[j].Time, +1}, ev{s.Departed[j], -1})
	}
	sort.Slice(events, func(i, j int) bool { return events[i].t < events[j].t })
	area := 0.0
	inSystem := 0
	last := 0.0
	for _, e := range events {
		area += float64(inSystem) * (e.t - last)
		inSystem += e.d
		last = e.t
	}
	if inSystem != 0 {
		t.Fatalf("jobs left in system: %d", inSystem)
	}
	horizon := last
	L := area / horizon
	W, lambda, _ := sojournStats(net, jobs, interMean)
	lw := lambda * W
	if math.Abs(L-lw)/lw > 0.05 {
		t.Fatalf("Little's law violated: L=%.3f vs λW=%.3f", L, lw)
	}
	// And the M/M/1 sanity band: with utilization ρ≈0.5 the analytic
	// L = ρ/(1−ρ) = 1; allow a generous band for finite-run effects.
	if L < 0.5 || L > 2.0 {
		t.Fatalf("M/M/1 L=%.3f far from the ≈1 analytic value", L)
	}
}
