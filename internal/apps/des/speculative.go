package des

import (
	"repro/internal/control"
	"repro/internal/speculation"
)

// SpeculativeSim runs the queueing network on the *ordered* speculative
// executor: events are prioritized tasks claiming their station; the
// executor commits them chronologically, aborting same-round same-
// station races (conflicts) and executions that ran ahead of freshly
// spawned earlier events (premature, the Time-Warp hazard). Because
// Apply is shared with the sequential oracle and all stochastic choices
// are functions of (seed, station, job), the speculative run produces a
// bit-identical final state.
type SpeculativeSim struct {
	state *State
	items []*speculation.Item
	exec  *speculation.OrderedExecutor
}

// NewSpeculativeSim prepares the ordered workload: one task per initial
// external arrival.
func NewSpeculativeSim(net *Network, jobs int, interMean float64) *SpeculativeSim {
	s := &SpeculativeSim{
		state: NewState(net, jobs),
		items: make([]*speculation.Item, net.Stations),
		exec:  speculation.NewOrderedExecutor(),
	}
	for i := range s.items {
		s.items[i] = speculation.NewItem(int64(i))
	}
	for _, e := range net.Arrivals(jobs, interMean) {
		s.exec.Add(s.taskFor(e))
	}
	return s
}

// State exposes the simulation state (final after draining).
func (s *SpeculativeSim) State() *State { return s.state }

// Executor exposes the ordered executor for inspection.
func (s *SpeculativeSim) Executor() *speculation.OrderedExecutor { return s.exec }

// Pending returns the number of queued events.
func (s *SpeculativeSim) Pending() int { return s.exec.Pending() }

// eventTask adapts an Event to speculation.OrderedTask.
type eventTask struct {
	sim *SpeculativeSim
	ev  Event
}

// Key implements speculation.OrderedTask with the model's total order.
func (t eventTask) Key() speculation.Key {
	return speculation.Key{Time: t.ev.Time, Tie: t.ev.Tie()}
}

// Run implements speculation.OrderedTask: phase 1 claims the station
// and precomputes the (pure) service time; the state transition itself
// runs at commit, where its spawns are surfaced to the executor.
func (t eventTask) Run(ctx *speculation.OrderedCtx) error {
	ctx.Claim(t.sim.items[t.ev.Station])
	// Speculative useful work: the stochastic service draw is a pure
	// function, so it can be burned here in parallel.
	if t.ev.Kind == Arrival {
		_ = t.sim.state.Net.ServiceTime(t.ev.Station, t.ev.Job)
	}
	ctx.SpawnAtCommit(func() []speculation.OrderedTask {
		outs := t.sim.state.Apply(t.ev)
		tasks := make([]speculation.OrderedTask, len(outs))
		for i, e := range outs {
			tasks[i] = eventTask{sim: t.sim, ev: e}
		}
		return tasks
	})
	return nil
}

func (s *SpeculativeSim) taskFor(e Event) speculation.OrderedTask {
	return eventTask{sim: s, ev: e}
}

// Run drains the simulation under controller c — adaptive processor
// allocation for an ordered algorithm, the paper's §5 outlook.
func (s *SpeculativeSim) Run(c control.Controller, maxRounds int) *speculation.AdaptiveResult {
	return speculation.RunAdaptiveOrdered(s.exec, c, maxRounds)
}

// ProfilePoint records one clairvoyant step of an ordered run.
type ProfilePoint struct {
	Step        int
	Pending     int
	Parallelism int // events committed when every pending event launches
}

// ParallelismProfile measures the *ordered* available parallelism of a
// network: each step launches every pending event and records how many
// survive the chronological commit rules — the ordered analogue of the
// Lonestar profiles, and the quantity the paper's §5 says is "very hard
// to obtain good estimates of".
func ParallelismProfile(net *Network, jobs int, interMean float64, maxSteps int) []ProfilePoint {
	sim := NewSpeculativeSim(net, jobs, interMean)
	var out []ProfilePoint
	for step := 0; step < maxSteps && sim.Pending() > 0; step++ {
		pending := sim.Pending()
		st := sim.Executor().Round(pending)
		out = append(out, ProfilePoint{
			Step:        step,
			Pending:     pending,
			Parallelism: st.Committed,
		})
	}
	return out
}
