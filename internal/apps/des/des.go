// Package des implements a discrete-event simulation of a tandem
// queueing network — the canonical *ordered* amorphous data-parallel
// workload the paper's §5 names as future work ("in discrete event
// simulations the events must commit chronologically"). Jobs arrive at
// station 0, receive service at each station in turn, and leave after
// the last; events at the same station conflict, and all events must
// commit in timestamp order.
//
// Service and interarrival times are derived deterministically from a
// seed and the (station, job) pair, so the sequential oracle and the
// speculative ordered executor produce *identical* trajectories — the
// strongest possible correctness check for speculation.
package des

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/rng"
)

// EventKind distinguishes the two event types. Departures order before
// arrivals at equal timestamps (the tie rule is part of the model and
// shared by both executors).
type EventKind uint8

// Event kinds.
const (
	Departure EventKind = iota
	Arrival
)

// Event is one simulation event.
type Event struct {
	Time    float64
	Kind    EventKind
	Station int
	Job     int
}

// Tie returns the deterministic tie-break tag: kind, then station, then
// job — a total order independent of execution schedule.
func (e Event) Tie() uint64 {
	return uint64(e.Kind)<<62 | uint64(e.Station)<<32 | uint64(uint32(e.Job))
}

// Before is the model's total event order.
func (e Event) Before(o Event) bool {
	if e.Time != o.Time {
		return e.Time < o.Time
	}
	return e.Tie() < o.Tie()
}

// Route is one probabilistic routing arc out of a station.
type Route struct {
	To   int
	Prob float64
}

// Network describes a queueing network of single-server FIFO stations
// with probabilistic routing. Routing draws are pure functions of
// (seed, station, job, departure time), so every execution schedule —
// sequential or speculative — makes identical choices.
type Network struct {
	Stations    int
	ServiceMean []float64 // mean service time per station
	Seed        uint64
	// Routing[s] lists the arcs out of station s; residual probability
	// mass means "exit the network". Nil routing is tandem (s → s+1,
	// last station exits).
	Routing [][]Route
}

// NewTandem builds a tandem network with the given per-station mean
// service times.
func NewTandem(seed uint64, serviceMean ...float64) *Network {
	if len(serviceMean) == 0 {
		panic("des: need at least one station")
	}
	return &Network{Stations: len(serviceMean), ServiceMean: serviceMean, Seed: seed}
}

// NewRouted builds a general routed network. Each station's arcs must
// have non-negative probabilities summing to at most 1 (the residual is
// the exit probability); to guarantee termination some exit must be
// reachable from every station.
func NewRouted(seed uint64, serviceMean []float64, routing [][]Route) *Network {
	if len(serviceMean) == 0 || len(routing) != len(serviceMean) {
		panic("des: routing table must match station count")
	}
	for s, arcs := range routing {
		total := 0.0
		for _, a := range arcs {
			if a.To < 0 || a.To >= len(serviceMean) || a.Prob < 0 {
				panic(fmt.Sprintf("des: bad arc %+v at station %d", a, s))
			}
			total += a.Prob
		}
		if total > 1+1e-12 {
			panic(fmt.Sprintf("des: station %d routing mass %v exceeds 1", s, total))
		}
	}
	return &Network{
		Stations:    len(serviceMean),
		ServiceMean: serviceMean,
		Seed:        seed,
		Routing:     routing,
	}
}

// NextStation returns the station a job departing (station, job) at
// time t proceeds to, or -1 to exit the network. The draw is a pure
// function of its arguments, hence schedule-independent; the time
// dependence makes repeat visits to a station re-draw.
func (n *Network) NextStation(station, job int, t float64) int {
	if n.Routing == nil {
		if station+1 < n.Stations {
			return station + 1
		}
		return -1
	}
	r := rng.New(n.Seed ^
		(uint64(station)+3)*0x9e3779b97f4a7c15 ^
		uint64(job)*0x94d049bb133111eb ^
		math.Float64bits(t)*0xbf58476d1ce4e5b9)
	u := r.Float64()
	acc := 0.0
	for _, a := range n.Routing[station] {
		acc += a.Prob
		if u < acc {
			return a.To
		}
	}
	return -1
}

// ServiceTime returns the deterministic service time of job at station:
// an exponential variate derived from (seed, station, job) only.
func (n *Network) ServiceTime(station, job int) float64 {
	r := rng.New(n.Seed ^ (uint64(station)+1)*0x9e3779b97f4a7c15 ^ uint64(job)*0xbf58476d1ce4e5b9)
	return n.ServiceMean[station] * r.ExpFloat64()
}

// Arrivals generates jobs' external arrival events at station 0 with
// exponential interarrival times of the given mean.
func (n *Network) Arrivals(jobs int, interMean float64) []Event {
	r := rng.New(n.Seed ^ 0xa5a5a5a5a5a5a5a5)
	events := make([]Event, jobs)
	t := 0.0
	for j := 0; j < jobs; j++ {
		t += interMean * r.ExpFloat64()
		events[j] = Event{Time: t, Kind: Arrival, Station: 0, Job: j}
	}
	return events
}

// StationState is one station's mutable simulation state.
type StationState struct {
	Queue  []int // waiting job IDs, FIFO
	Busy   bool
	InSvc  int // job in service (valid when Busy)
	Served int
}

// State is the full simulation state plus collected statistics.
type State struct {
	Net      *Network
	Stations []StationState
	// Departed[j] is job j's network departure time (NaN until then).
	Departed []float64
	// Processed counts handled events.
	Processed int
}

// NewState allocates simulation state for the given number of jobs.
func NewState(net *Network, jobs int) *State {
	s := &State{
		Net:      net,
		Stations: make([]StationState, net.Stations),
		Departed: make([]float64, jobs),
	}
	for i := range s.Departed {
		s.Departed[i] = math.NaN()
	}
	return s
}

// Apply executes one event against the state and returns the events it
// spawns. This single transition function is shared by the sequential
// oracle and the speculative executor, so their trajectories can only
// differ through event ordering.
func (s *State) Apply(e Event) []Event {
	st := &s.Stations[e.Station]
	s.Processed++
	switch e.Kind {
	case Arrival:
		if st.Busy {
			st.Queue = append(st.Queue, e.Job)
			return nil
		}
		st.Busy = true
		st.InSvc = e.Job
		return []Event{{
			Time:    e.Time + s.Net.ServiceTime(e.Station, e.Job),
			Kind:    Departure,
			Station: e.Station,
			Job:     e.Job,
		}}
	case Departure:
		if !st.Busy || st.InSvc != e.Job {
			panic(fmt.Sprintf("des: departure of job %d at station %d but in-service is %d (busy=%v)",
				e.Job, e.Station, st.InSvc, st.Busy))
		}
		st.Served++
		var out []Event
		if next := s.Net.NextStation(e.Station, e.Job, e.Time); next >= 0 {
			out = append(out, Event{
				Time:    e.Time,
				Kind:    Arrival,
				Station: next,
				Job:     e.Job,
			})
		} else {
			s.Departed[e.Job] = e.Time
		}
		if len(st.Queue) > 0 {
			next := st.Queue[0]
			st.Queue = st.Queue[1:]
			st.InSvc = next
			out = append(out, Event{
				Time:    e.Time + s.Net.ServiceTime(e.Station, next),
				Kind:    Departure,
				Station: e.Station,
				Job:     next,
			})
		} else {
			st.Busy = false
		}
		return out
	default:
		panic("des: unknown event kind")
	}
}

// eventHeap is a min-heap of events in model order.
type eventHeap []Event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].Before(h[j]) }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// RunSequential simulates to completion with a classic event loop —
// the correctness oracle for the speculative executor.
func RunSequential(net *Network, jobs int, interMean float64) *State {
	s := NewState(net, jobs)
	var h eventHeap
	for _, e := range net.Arrivals(jobs, interMean) {
		heap.Push(&h, e)
	}
	for h.Len() > 0 {
		e := heap.Pop(&h).(Event)
		for _, out := range s.Apply(e) {
			heap.Push(&h, out)
		}
	}
	return s
}

// MakespanAndThroughput summarizes a finished simulation: the time the
// last job left the network and the number of jobs that exited.
func (s *State) MakespanAndThroughput() (makespan float64, served int) {
	for _, t := range s.Departed {
		if !math.IsNaN(t) {
			served++
			if t > makespan {
				makespan = t
			}
		}
	}
	return makespan, served
}

// CheckComplete verifies every job left the network and all stations
// are idle and empty.
func (s *State) CheckComplete() error {
	for j, t := range s.Departed {
		if math.IsNaN(t) {
			return fmt.Errorf("des: job %d never departed", j)
		}
	}
	for i := range s.Stations {
		st := &s.Stations[i]
		if st.Busy || len(st.Queue) != 0 {
			return fmt.Errorf("des: station %d not drained (busy=%v queue=%d)",
				i, st.Busy, len(st.Queue))
		}
	}
	return nil
}
