package des

import (
	"math"
	"testing"

	"repro/internal/control"
)

func feedForwardNet(seed uint64) *Network {
	// Fork-join-ish: station 0 splits to 1 or 2, both feed 3, which
	// exits.
	return NewRouted(seed,
		[]float64{0.2, 0.3, 0.25, 0.15},
		[][]Route{
			{{To: 1, Prob: 0.5}, {To: 2, Prob: 0.5}},
			{{To: 3, Prob: 1}},
			{{To: 3, Prob: 1}},
			{}, // exit
		})
}

func loopNet(seed uint64) *Network {
	// Station 1 feeds back to 0 with probability 0.3 (rework loop).
	return NewRouted(seed,
		[]float64{0.2, 0.2},
		[][]Route{
			{{To: 1, Prob: 1}},
			{{To: 0, Prob: 0.3}}, // 0.7 exit
		})
}

func TestRoutedValidation(t *testing.T) {
	cases := []func(){
		func() { NewRouted(1, nil, nil) },
		func() { NewRouted(1, []float64{1}, nil) }, // table size mismatch
		func() {
			NewRouted(1, []float64{1}, [][]Route{{{To: 5, Prob: 1}}})
		},
		func() {
			NewRouted(1, []float64{1}, [][]Route{{{To: 0, Prob: 1.5}}})
		},
		func() {
			NewRouted(1, []float64{1, 1}, [][]Route{{{To: 1, Prob: 0.7}, {To: 1, Prob: 0.7}}, {}})
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestNextStationDeterministic(t *testing.T) {
	net := feedForwardNet(7)
	for job := 0; job < 20; job++ {
		a := net.NextStation(0, job, 1.25)
		b := net.NextStation(0, job, 1.25)
		if a != b {
			t.Fatal("routing draw not deterministic")
		}
		if a != 1 && a != 2 {
			t.Fatalf("station 0 routed to %d", a)
		}
	}
	// Different times re-draw (statistically: some job must differ
	// across two distinct times).
	differ := false
	for job := 0; job < 50 && !differ; job++ {
		if net.NextStation(0, job, 1.0) != net.NextStation(0, job, 2.0) {
			differ = true
		}
	}
	if !differ {
		t.Fatal("routing ignores time — revisits would loop forever")
	}
	// Tandem fallback.
	tandem := NewTandem(1, 0.5, 0.5)
	if tandem.NextStation(0, 3, 1) != 1 || tandem.NextStation(1, 3, 1) != -1 {
		t.Fatal("tandem routing broken")
	}
}

func TestRoutedSequentialConservation(t *testing.T) {
	net := feedForwardNet(11)
	const jobs = 300
	s := RunSequential(net, jobs, 0.3)
	if err := s.CheckComplete(); err != nil {
		t.Fatal(err)
	}
	_, served := s.MakespanAndThroughput()
	if served != jobs {
		t.Fatalf("served %d, want %d", served, jobs)
	}
	// Split conservation: stations 1 and 2 together served every job,
	// station 3 served all of them.
	if s.Stations[1].Served+s.Stations[2].Served != jobs {
		t.Fatalf("split lost jobs: %d + %d", s.Stations[1].Served, s.Stations[2].Served)
	}
	if s.Stations[3].Served != jobs {
		t.Fatalf("join served %d", s.Stations[3].Served)
	}
	// The split should be roughly even.
	if s.Stations[1].Served < jobs/4 || s.Stations[2].Served < jobs/4 {
		t.Fatalf("split badly skewed: %d/%d", s.Stations[1].Served, s.Stations[2].Served)
	}
}

func TestLoopNetworkTerminatesAndReworks(t *testing.T) {
	net := loopNet(13)
	const jobs = 200
	s := RunSequential(net, jobs, 0.3)
	if err := s.CheckComplete(); err != nil {
		t.Fatal(err)
	}
	// With 30% rework, station 0 serves ≈ jobs/0.7 ≈ 286 times.
	if s.Stations[0].Served <= jobs {
		t.Fatalf("no rework observed: station 0 served %d", s.Stations[0].Served)
	}
	if s.Stations[0].Served > 2*jobs {
		t.Fatalf("rework count %d implausible", s.Stations[0].Served)
	}
}

func TestRoutedSpeculativeMatchesOracle(t *testing.T) {
	for _, mk := range []func(uint64) *Network{feedForwardNet, loopNet} {
		net := mk(17)
		const jobs = 150
		oracle := RunSequential(net, jobs, 0.25)
		sim := NewSpeculativeSim(net, jobs, 0.25)
		ctrl := control.NewHybrid(control.DefaultHybridConfig(0.25))
		sim.Run(ctrl, 1<<30)
		if err := sim.State().CheckComplete(); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < jobs; j++ {
			if sim.State().Departed[j] != oracle.Departed[j] {
				t.Fatalf("job %d: %v vs oracle %v",
					j, sim.State().Departed[j], oracle.Departed[j])
			}
		}
		if sim.State().Processed != oracle.Processed {
			t.Fatalf("processed %d vs %d", sim.State().Processed, oracle.Processed)
		}
	}
}

func TestRoutedMakespanPositive(t *testing.T) {
	net := feedForwardNet(19)
	s := RunSequential(net, 50, 0.5)
	mk, _ := s.MakespanAndThroughput()
	if mk <= 0 || math.IsNaN(mk) {
		t.Fatalf("makespan %v", mk)
	}
}
