package boruvka

import (
	"testing"

	"repro/internal/rng"
)

func TestComponentConflictGraph(t *testing.T) {
	// Path 0-1-2-3: initially 4 singleton components, conflicts mirror
	// the path.
	g := &WGraph{N: 4, Edges: []Edge{
		{U: 0, V: 1, W: 1, ID: 0},
		{U: 1, V: 2, W: 2, ID: 1},
		{U: 2, V: 3, W: 3, ID: 2},
	}}
	uf := NewUnionFind(4)
	cc, _ := ComponentConflictGraph(g, uf)
	if cc.NumNodes() != 4 || cc.NumEdges() != 3 {
		t.Fatalf("cc graph %d/%d, want 4/3", cc.NumNodes(), cc.NumEdges())
	}
	// After merging 0-1 the component graph contracts.
	uf.Union(0, 1)
	cc, _ = ComponentConflictGraph(g, uf)
	if cc.NumNodes() != 3 || cc.NumEdges() != 2 {
		t.Fatalf("after union: %d/%d, want 3/2", cc.NumNodes(), cc.NumEdges())
	}
	// Parallel edges between the same component pair collapse.
	g2 := &WGraph{N: 3, Edges: []Edge{
		{U: 0, V: 1, W: 1, ID: 0},
		{U: 0, V: 1, W: 2, ID: 1},
	}}
	cc2, _ := ComponentConflictGraph(g2, NewUnionFind(3))
	if cc2.NumEdges() != 1 {
		t.Fatalf("duplicate component edge not collapsed: %d", cc2.NumEdges())
	}
}

func TestParallelismProfileShrinksWithPhases(t *testing.T) {
	r := rng.New(1)
	g := NewRandomConnected(r, 400, 800)
	pts := ParallelismProfile(g, r, 30)
	if len(pts) == 0 {
		t.Fatal("empty profile")
	}
	// First phase: hundreds of singleton components, large parallelism.
	if pts[0].Components != 400 {
		t.Fatalf("first phase components %d", pts[0].Components)
	}
	if pts[0].Parallelism < 50 {
		t.Fatalf("initial parallelism %v suspiciously low", pts[0].Parallelism)
	}
	// Components strictly decrease phase over phase.
	for i := 1; i < len(pts); i++ {
		if pts[i].Components >= pts[i-1].Components {
			t.Fatalf("components did not shrink at phase %d", i)
		}
	}
	// Boruvka halves components per phase: ≤ log2(400)+1 ≈ 9 phases.
	if len(pts) > 10 {
		t.Fatalf("%d phases exceeds log bound", len(pts))
	}
	// Parallelism never exceeds components/1 (each merge involves 2).
	for _, p := range pts {
		if p.Parallelism > float64(p.Components) {
			t.Fatalf("parallelism %v exceeds component count %d", p.Parallelism, p.Components)
		}
	}
}
