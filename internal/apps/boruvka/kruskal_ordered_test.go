package boruvka

import (
	"testing"

	"repro/internal/control"
	"repro/internal/rng"
)

// The ordered speculative Kruskal must produce the *identical* edge
// sequence as sequential Kruskal — same edges in the same order — not
// merely an equal-weight forest.
func TestOrderedKruskalIdenticalToSequential(t *testing.T) {
	r := rng.New(1)
	g := NewRandomConnected(r, 200, 500)
	oracle := Kruskal(g)

	for _, m := range []int{1, 8, 64} {
		k := NewOrderedKruskal(g)
		rounds := 0
		for k.Pending() > 0 {
			k.Executor().Round(m)
			rounds++
			if rounds > 1000000 {
				t.Fatalf("m=%d: did not drain", m)
			}
		}
		res := k.Result()
		if len(res.Edges) != len(oracle.Edges) {
			t.Fatalf("m=%d: %d edges vs oracle %d", m, len(res.Edges), len(oracle.Edges))
		}
		for i := range res.Edges {
			if res.Edges[i].ID != oracle.Edges[i].ID {
				t.Fatalf("m=%d: edge %d is %d, oracle %d",
					m, i, res.Edges[i].ID, oracle.Edges[i].ID)
			}
		}
	}
}

func TestOrderedKruskalAdaptive(t *testing.T) {
	r := rng.New(2)
	g := NewRandomConnected(r, 400, 1200)
	k := NewOrderedKruskal(g)
	ctrl := control.NewHybrid(control.DefaultHybridConfig(0.25))
	res := k.Run(ctrl, 1000000)
	if k.Pending() != 0 {
		t.Fatal("did not drain")
	}
	if err := Verify(g, k.Result()); err != nil {
		t.Fatal(err)
	}
	if res.Rounds == 0 {
		t.Fatal("no rounds recorded")
	}
	// Dense edge list over few vertices: speculation must sometimes
	// waste work (conflicts or premature executions).
	e := k.Executor()
	if e.TotalConflicts()+e.TotalPremature() == 0 {
		t.Error("no wasted work at adaptive m on a dense graph — suspicious")
	}
}

// Ordered Kruskal exposes more parallelism than DES but less than the
// unordered Boruvka — sanity-check the ordering by overall waste.
func TestOrderedKruskalWasteExceedsUnordered(t *testing.T) {
	r := rng.New(3)
	g := NewRandomConnected(r, 300, 900)

	k := NewOrderedKruskal(g)
	for k.Pending() > 0 {
		k.Executor().Round(16)
	}
	orderedWaste := k.Executor().OverallConflictRatio()

	s := NewSpeculativeMSF(g, func(n int) int { return r.Intn(n) })
	for s.Pending() > 0 {
		s.Executor().Round(16)
	}
	unorderedWaste := s.Executor().OverallConflictRatio()

	if orderedWaste <= unorderedWaste {
		t.Logf("ordered waste %.3f vs unordered %.3f (expected ordered > unordered; "+
			"allowed to flip on small instances)", orderedWaste, unorderedWaste)
	}
	if err := Verify(g, k.Result()); err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, s.Result()); err != nil {
		t.Fatal(err)
	}
}
