package boruvka

import (
	"sync"

	"repro/internal/control"
	"repro/internal/speculation"
)

// SpeculativeMSF builds the minimum spanning forest on the optimistic
// runtime: each live component is one speculative task that locates its
// minimum outgoing edge and merges with the neighbor component. Two
// merges conflict iff they share a component — detected by racing on
// per-root abstract locks, exactly the conflict structure the paper's
// CC-graph model abstracts.
type SpeculativeMSF struct {
	mu      sync.Mutex
	uf      *UnionFind
	edges   [][]Edge // candidate outgoing edges per component root
	items   []*speculation.Item
	hasTask map[int]bool // root -> a pending task is keyed to it
	exec    *speculation.Executor

	MSF []Edge
}

// NewSpeculativeMSF prepares the workload for graph g. pick selects
// pending-task indices (nil = LIFO).
func NewSpeculativeMSF(g *WGraph, pick func(n int) int) *SpeculativeMSF {
	s := &SpeculativeMSF{
		uf:      NewUnionFind(g.N),
		edges:   make([][]Edge, g.N),
		items:   make([]*speculation.Item, g.N),
		hasTask: make(map[int]bool, g.N),
		exec:    speculation.NewExecutor(pick),
	}
	for i := range s.items {
		s.items[i] = speculation.NewItem(int64(i))
	}
	for _, e := range g.Edges {
		s.edges[e.U] = append(s.edges[e.U], e)
		s.edges[e.V] = append(s.edges[e.V], e)
	}
	for v := 0; v < g.N; v++ {
		s.hasTask[v] = true
		s.exec.Add(s.taskFor(v))
	}
	return s
}

// Executor exposes the underlying speculative executor.
func (s *SpeculativeMSF) Executor() *speculation.Executor { return s.exec }

// Pending returns the number of queued component tasks.
func (s *SpeculativeMSF) Pending() int { return s.exec.Pending() }

// minOutgoing scans (and compacts) the candidate edges of root x,
// returning the minimum edge leaving the component and the other
// endpoint's root. ok is false when the component has no outgoing edge.
// Caller must hold s.mu.
func (s *SpeculativeMSF) minOutgoing(x int) (Edge, int, bool) {
	cand := s.edges[x]
	kept := cand[:0]
	var best Edge
	bestRoot := -1
	for _, e := range cand {
		ru, rv := s.uf.Find(e.U), s.uf.Find(e.V)
		if ru == rv {
			continue // internal edge: drop permanently
		}
		kept = append(kept, e)
		other := ru
		if ru == x {
			other = rv
		}
		if bestRoot < 0 || e.less(best) {
			best, bestRoot = e, other
		}
	}
	s.edges[x] = kept
	if bestRoot < 0 {
		return Edge{}, -1, false
	}
	return best, bestRoot, true
}

// taskFor builds the speculative task advancing the component rooted at
// x (stale if x is no longer a root).
func (s *SpeculativeMSF) taskFor(x int) speculation.Task {
	return speculation.TaskFunc(func(ctx *speculation.Ctx) error {
		s.mu.Lock()
		if s.uf.Find(x) != x {
			// Component was absorbed; its new root has its own task.
			delete(s.hasTask, x)
			s.mu.Unlock()
			return nil
		}
		e, y, ok := s.minOutgoing(x)
		if !ok {
			// Finished component (spanning tree complete on its side).
			delete(s.hasTask, x)
			s.mu.Unlock()
			return nil
		}
		s.mu.Unlock()

		// Speculative phase: race for both component locks. A
		// concurrent merge touching either component conflicts here.
		if err := ctx.AcquireAll(s.items[x], s.items[y]); err != nil {
			return err
		}
		ctx.OnCommit(func() { s.commitMerge(x, y, e) })
		return nil
	})
}

// commitMerge joins components x and y through edge e. Runs serially in
// the commit phase.
func (s *SpeculativeMSF) commitMerge(x, y int, e Edge) {
	s.mu.Lock()
	delete(s.hasTask, x) // this component's task was just consumed
	rx, ry := s.uf.Find(x), s.uf.Find(y)
	var spawn []int
	if rx != ry {
		r := s.uf.Union(rx, ry)
		s.MSF = append(s.MSF, e)
		// Meld candidate lists into the surviving root.
		loser := rx
		if r == rx {
			loser = ry
		}
		s.edges[r] = append(s.edges[r], s.edges[loser]...)
		s.edges[loser] = nil
		if !s.hasTask[r] {
			s.hasTask[r] = true
			spawn = append(spawn, r)
		}
	} else if !s.hasTask[rx] {
		// Defensive: already merged by someone else — keep the
		// component driven.
		s.hasTask[rx] = true
		spawn = append(spawn, rx)
	}
	s.mu.Unlock()
	for _, r := range spawn {
		s.exec.Add(s.taskFor(r))
	}
}

// Result packages the forest built so far.
func (s *SpeculativeMSF) Result() Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	edges := append([]Edge(nil), s.MSF...)
	return Result{Edges: edges, Weight: TotalWeight(edges)}
}

// Run drains the workload under controller c.
func (s *SpeculativeMSF) Run(c control.Controller, maxRounds int) *speculation.AdaptiveResult {
	return speculation.RunAdaptive(s.exec, c, maxRounds)
}
