package boruvka

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// ProfilePoint records the available parallelism of one Boruvka phase.
type ProfilePoint struct {
	Phase       int
	Components  int
	Parallelism float64 // E[greedy MIS] of the component-conflict graph
}

// ComponentConflictGraph builds the CC graph of the current Boruvka
// state: one node per live component (indexed by root), an edge between
// two components when some input edge connects them — merging either
// pair conflicts with merges touching a shared component, exactly the
// lock structure of the speculative implementation.
func ComponentConflictGraph(g *WGraph, uf *UnionFind) (*graph.Graph, map[int]int) {
	cc := graph.New()
	id := make(map[int]int) // component root -> cc-graph node
	for v := 0; v < g.N; v++ {
		r := uf.Find(v)
		if _, ok := id[r]; !ok {
			id[r] = cc.AddNode()
		}
	}
	for _, e := range g.Edges {
		ru, rv := uf.Find(e.U), uf.Find(e.V)
		if ru == rv {
			continue
		}
		if !cc.HasEdge(id[ru], id[rv]) {
			cc.AddEdge(id[ru], id[rv])
		}
	}
	return cc, id
}

// ParallelismProfile charts available parallelism across the sequential
// Boruvka phases of g (Lonestar-style): per phase, the expected greedy
// MIS of the component-conflict graph estimated with misReps random
// permutations.
func ParallelismProfile(g *WGraph, r *rng.Rand, misReps int) []ProfilePoint {
	uf := NewUnionFind(g.N)
	var out []ProfilePoint
	for phase := 0; ; phase++ {
		cc, _ := ComponentConflictGraph(g, uf)
		if cc.NumEdges() == 0 {
			// No cross-component edges: the forest is complete.
			break
		}
		out = append(out, ProfilePoint{
			Phase:       phase,
			Components:  uf.Components(),
			Parallelism: graph.ExpectedMISMonteCarlo(cc, r, misReps),
		})
		// Advance one full Boruvka phase.
		best := make(map[int]Edge)
		for _, e := range g.Edges {
			ru, rv := uf.Find(e.U), uf.Find(e.V)
			if ru == rv {
				continue
			}
			if b, ok := best[ru]; !ok || e.less(b) {
				best[ru] = e
			}
			if b, ok := best[rv]; !ok || e.less(b) {
				best[rv] = e
			}
		}
		for _, e := range best {
			uf.Union(e.U, e.V)
		}
	}
	return out
}
