package boruvka

import (
	"sync"

	"repro/internal/control"
	"repro/internal/speculation"
)

// OrderedKruskal runs Kruskal's algorithm on the *ordered* speculative
// executor: every edge is a task whose priority is its (weight, ID)
// rank, so commits happen in exactly the sequential algorithm's order —
// Kruskal is the textbook ordered algorithm (§5: tasks "must satisfy
// some constraints" on execution order). Edge tasks claim their
// endpoints, so edges sharing a vertex conflict when speculated
// together; the chronological commit prefix guarantees the result is
// *identical* to sequential Kruskal, not merely weight-equal.
type OrderedKruskal struct {
	mu   sync.Mutex
	uf   *UnionFind
	item []*speculation.Item
	exec *speculation.OrderedExecutor

	MSF []Edge
}

// NewOrderedKruskal prepares the ordered workload for g.
func NewOrderedKruskal(g *WGraph) *OrderedKruskal {
	k := &OrderedKruskal{
		uf:   NewUnionFind(g.N),
		item: make([]*speculation.Item, g.N),
		exec: speculation.NewOrderedExecutor(),
	}
	for i := range k.item {
		k.item[i] = speculation.NewItem(int64(i))
	}
	for _, e := range g.Edges {
		k.exec.Add(kruskalTask{k: k, e: e})
	}
	return k
}

// Executor exposes the ordered executor.
func (k *OrderedKruskal) Executor() *speculation.OrderedExecutor { return k.exec }

// Pending returns the number of unprocessed edges.
func (k *OrderedKruskal) Pending() int { return k.exec.Pending() }

// Result returns the forest built so far.
func (k *OrderedKruskal) Result() Result {
	k.mu.Lock()
	defer k.mu.Unlock()
	edges := append([]Edge(nil), k.MSF...)
	return Result{Edges: edges, Weight: TotalWeight(edges)}
}

// Run drains the edges under controller c.
func (k *OrderedKruskal) Run(c control.Controller, maxRounds int) *speculation.AdaptiveResult {
	return speculation.RunAdaptiveOrdered(k.exec, c, maxRounds)
}

type kruskalTask struct {
	k *OrderedKruskal
	e Edge
}

// Key implements speculation.OrderedTask: the Kruskal processing order.
func (t kruskalTask) Key() speculation.Key {
	return speculation.Key{Time: t.e.W, Tie: uint64(t.e.ID)}
}

// Run implements speculation.OrderedTask.
func (t kruskalTask) Run(ctx *speculation.OrderedCtx) error {
	// Claim the endpoints: edges sharing a vertex are genuine
	// neighborhood conflicts (their union-find updates touch the same
	// trees). The cycle test and the union both happen at commit time,
	// in weight order, so correctness never depends on the claims.
	ctx.Claim(t.k.item[t.e.U], t.k.item[t.e.V])
	ctx.OnCommit(func() {
		t.k.mu.Lock()
		if t.k.uf.Union(t.e.U, t.e.V) >= 0 {
			t.k.MSF = append(t.k.MSF, t.e)
		}
		t.k.mu.Unlock()
	})
	return nil
}
