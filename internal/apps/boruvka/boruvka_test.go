package boruvka

import (
	"math"
	"testing"

	"repro/internal/control"
	"repro/internal/rng"
)

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Components() != 5 {
		t.Fatalf("components = %d", uf.Components())
	}
	if uf.Union(0, 1) < 0 {
		t.Fatal("first union failed")
	}
	if uf.Union(1, 0) != -1 {
		t.Fatal("re-union did not report joined")
	}
	uf.Union(2, 3)
	uf.Union(0, 2)
	if uf.Components() != 2 {
		t.Fatalf("components = %d, want 2", uf.Components())
	}
	if uf.Find(3) != uf.Find(1) {
		t.Fatal("3 and 1 should share a root")
	}
	if uf.Find(4) == uf.Find(0) {
		t.Fatal("4 should be separate")
	}
}

func TestKruskalTriangle(t *testing.T) {
	g := &WGraph{N: 3, Edges: []Edge{
		{U: 0, V: 1, W: 1, ID: 0},
		{U: 1, V: 2, W: 2, ID: 1},
		{U: 0, V: 2, W: 3, ID: 2},
	}}
	res := Kruskal(g)
	if len(res.Edges) != 2 || math.Abs(res.Weight-3) > 1e-12 {
		t.Fatalf("MST weight %v with %d edges", res.Weight, len(res.Edges))
	}
}

func TestSequentialMatchesKruskal(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		g := NewRandomConnected(r, 50+trial*10, 100+trial*20)
		seq := Sequential(g)
		if err := Verify(g, seq); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(seq.Edges) != g.N-1 {
			t.Fatalf("trial %d: spanning tree has %d edges for n=%d", trial, len(seq.Edges), g.N)
		}
		// Boruvka needs at most log2(n) rounds.
		if float64(seq.Rounds) > math.Log2(float64(g.N))+1 {
			t.Errorf("trial %d: %d rounds exceeds log bound", trial, seq.Rounds)
		}
	}
}

func TestSequentialDisconnected(t *testing.T) {
	// Two components: forest of n-2 edges.
	g := &WGraph{N: 4, Edges: []Edge{
		{U: 0, V: 1, W: 1, ID: 0},
		{U: 2, V: 3, W: 2, ID: 1},
	}}
	res := Sequential(g)
	if len(res.Edges) != 2 {
		t.Fatalf("forest edges = %d, want 2", len(res.Edges))
	}
	if err := Verify(g, res); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialSingleVertex(t *testing.T) {
	g := &WGraph{N: 1}
	res := Sequential(g)
	if len(res.Edges) != 0 || res.Rounds != 0 {
		t.Fatalf("unexpected work on trivial graph: %+v", res)
	}
}

func TestSpeculativeFixedM(t *testing.T) {
	r := rng.New(2)
	g := NewRandomConnected(r, 200, 400)
	s := NewSpeculativeMSF(g, func(n int) int { return r.Intn(n) })
	rounds := 0
	for s.Pending() > 0 {
		s.Executor().Round(16)
		rounds++
		if rounds > 100000 {
			t.Fatal("did not drain")
		}
	}
	res := s.Result()
	if err := Verify(g, res); err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) != g.N-1 {
		t.Fatalf("%d MSF edges, want %d", len(res.Edges), g.N-1)
	}
}

func TestSpeculativeAdaptive(t *testing.T) {
	r := rng.New(3)
	g := NewRandomConnected(r, 500, 1500)
	s := NewSpeculativeMSF(g, func(n int) int { return r.Intn(n) })
	ctrl := control.NewHybrid(control.DefaultHybridConfig(0.25))
	res := s.Run(ctrl, 1000000)
	if s.Pending() != 0 {
		t.Fatal("did not drain")
	}
	if res.Rounds == 0 {
		t.Fatal("no rounds recorded")
	}
	if err := Verify(g, s.Result()); err != nil {
		t.Fatal(err)
	}
	// Merges of overlapping components must conflict at least sometimes
	// in a 500-node graph driven to high m.
	if s.Executor().TotalAborted() == 0 {
		t.Error("no conflicts detected — component locking suspicious")
	}
}

func TestSpeculativeDisconnected(t *testing.T) {
	r := rng.New(4)
	g := &WGraph{N: 6, Edges: []Edge{
		{U: 0, V: 1, W: 0.3, ID: 0},
		{U: 1, V: 2, W: 0.1, ID: 1},
		{U: 3, V: 4, W: 0.9, ID: 2},
	}} // vertex 5 isolated
	s := NewSpeculativeMSF(g, func(n int) int { return r.Intn(n) })
	for s.Pending() > 0 {
		s.Executor().Round(3)
	}
	res := s.Result()
	if len(res.Edges) != 3 {
		t.Fatalf("forest edges = %d, want 3", len(res.Edges))
	}
	if err := Verify(g, res); err != nil {
		t.Fatal(err)
	}
}

func TestNewRandomConnectedIsConnected(t *testing.T) {
	r := rng.New(5)
	g := NewRandomConnected(r, 100, 0) // pure spanning tree
	if len(g.Edges) != 99 {
		t.Fatalf("%d edges, want 99", len(g.Edges))
	}
	uf := NewUnionFind(g.N)
	for _, e := range g.Edges {
		uf.Union(e.U, e.V)
	}
	if uf.Components() != 1 {
		t.Fatalf("not connected: %d components", uf.Components())
	}
}
