// Package boruvka implements minimum-spanning-forest construction with
// Boruvka's algorithm — one of the paper's motivating amorphous
// data-parallel workloads (§1): each component repeatedly contracts its
// minimum-weight outgoing edge; two contractions can proceed in parallel
// iff they touch disjoint components. The package provides a sequential
// implementation (plus Kruskal as an independent oracle) and a
// speculative adapter for the optimistic runtime where component merges
// conflict on shared endpoints.
package boruvka

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// Edge is a weighted undirected edge. ID breaks weight ties so the MSF
// is unique and results are comparable across implementations.
type Edge struct {
	U, V int
	W    float64
	ID   int
}

// less orders edges by (weight, ID) — a strict total order.
func (e Edge) less(f Edge) bool {
	if e.W != f.W {
		return e.W < f.W
	}
	return e.ID < f.ID
}

// WGraph is an edge-list weighted graph on vertices 0..N-1.
type WGraph struct {
	N     int
	Edges []Edge
}

// NewRandomConnected returns a connected weighted graph: a random
// spanning tree plus extra random edges, all with distinct random
// weights.
func NewRandomConnected(r *rng.Rand, n, extraEdges int) *WGraph {
	if n < 1 {
		panic("boruvka: need at least one vertex")
	}
	g := &WGraph{N: n}
	addEdge := func(u, v int) {
		g.Edges = append(g.Edges, Edge{U: u, V: v, W: r.Float64(), ID: len(g.Edges)})
	}
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		addEdge(perm[i], perm[r.Intn(i)])
	}
	for i := 0; i < extraEdges; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			addEdge(u, v)
		}
	}
	return g
}

// UnionFind is a disjoint-set forest with union by rank and path
// compression.
type UnionFind struct {
	parent []int
	rank   []int
	comps  int
}

// NewUnionFind returns n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int, n), rank: make([]int, n), comps: n}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets of x and y and returns the new root; it returns
// -1 if they were already joined.
func (uf *UnionFind) Union(x, y int) int {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return -1
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.comps--
	return rx
}

// Components returns the number of disjoint sets.
func (uf *UnionFind) Components() int { return uf.comps }

// Result is a computed minimum spanning forest.
type Result struct {
	Edges  []Edge
	Weight float64
	Rounds int // Boruvka phases (0 for Kruskal)
}

// TotalWeight sums the chosen edge weights.
func TotalWeight(edges []Edge) float64 {
	w := 0.0
	for _, e := range edges {
		w += e.W
	}
	return w
}

// Kruskal computes the MSF by sorted greedy insertion — the independent
// correctness oracle.
func Kruskal(g *WGraph) Result {
	edges := append([]Edge(nil), g.Edges...)
	sort.Slice(edges, func(i, j int) bool { return edges[i].less(edges[j]) })
	uf := NewUnionFind(g.N)
	var out Result
	for _, e := range edges {
		if uf.Union(e.U, e.V) >= 0 {
			out.Edges = append(out.Edges, e)
		}
	}
	out.Weight = TotalWeight(out.Edges)
	return out
}

// Sequential computes the MSF with classic round-synchronous Boruvka.
func Sequential(g *WGraph) Result {
	uf := NewUnionFind(g.N)
	var out Result
	for {
		// Minimum outgoing edge per component root.
		best := make(map[int]Edge)
		found := false
		for _, e := range g.Edges {
			ru, rv := uf.Find(e.U), uf.Find(e.V)
			if ru == rv {
				continue
			}
			found = true
			if b, ok := best[ru]; !ok || e.less(b) {
				best[ru] = e
			}
			if b, ok := best[rv]; !ok || e.less(b) {
				best[rv] = e
			}
		}
		if !found {
			break
		}
		out.Rounds++
		for _, e := range best {
			if uf.Union(e.U, e.V) >= 0 {
				out.Edges = append(out.Edges, e)
			}
		}
	}
	out.Weight = TotalWeight(out.Edges)
	return out
}

// Verify checks that res is a spanning forest of g with the same weight
// as the Kruskal oracle (unique-weight inputs make the MSF unique).
func Verify(g *WGraph, res Result) error {
	uf := NewUnionFind(g.N)
	for _, e := range res.Edges {
		if uf.Union(e.U, e.V) < 0 {
			return fmt.Errorf("boruvka: result contains a cycle at edge %v", e)
		}
	}
	oracle := Kruskal(g)
	if len(oracle.Edges) != len(res.Edges) {
		return fmt.Errorf("boruvka: result has %d edges, oracle %d",
			len(res.Edges), len(oracle.Edges))
	}
	if diff := oracle.Weight - res.Weight; diff < -1e-9 || diff > 1e-9 {
		return fmt.Errorf("boruvka: weight %v differs from oracle %v",
			res.Weight, oracle.Weight)
	}
	return nil
}
