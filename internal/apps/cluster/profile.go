package cluster

// ProfilePoint records one step of agglomerative clustering's available
// parallelism.
type ProfilePoint struct {
	Step        int
	Clusters    int
	MutualPairs int // merges executable in parallel this step
}

// MutualPairs returns the current mutual-nearest-neighbor pairs. Since
// nearest neighbors are unique (deterministic tie-break), the pairs form
// a matching: they are pairwise disjoint, so all of them can merge in
// the same step — the instantaneous available parallelism.
func (c *Clustering) MutualPairs() [][2]int {
	nearest := make(map[int]int, len(c.clusters))
	for id := range c.clusters {
		if n, _, ok := c.Nearest(id); ok {
			nearest[id] = n
		}
	}
	var pairs [][2]int
	for a, b := range nearest {
		if a < b && nearest[b] == a {
			pairs = append(pairs, [2]int{a, b})
		}
	}
	return pairs
}

// ParallelismProfile charts mutual-pair counts across a full
// agglomeration: each step merges every mutual pair (the maximal
// parallel step), until target clusters remain.
func (c *Clustering) ParallelismProfile(target int) []ProfilePoint {
	if target < 1 {
		target = 1
	}
	var out []ProfilePoint
	for step := 0; c.NumClusters() > target; step++ {
		pairs := c.MutualPairs()
		if len(pairs) == 0 {
			break
		}
		out = append(out, ProfilePoint{
			Step:        step,
			Clusters:    c.NumClusters(),
			MutualPairs: len(pairs),
		})
		for _, p := range pairs {
			if c.NumClusters() <= target {
				break
			}
			c.MergePair(p[0], p[1])
		}
	}
	return out
}
