package cluster

import (
	"math"
	"testing"

	"repro/internal/control"
	"repro/internal/rng"
)

func TestNewClustering(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {0, 1}}
	c := New(pts)
	if c.NumClusters() != 3 {
		t.Fatalf("clusters = %d", c.NumClusters())
	}
	for _, id := range c.Live() {
		cl := c.Get(id)
		if cl.Size != 1 {
			t.Fatalf("singleton size %d", cl.Size)
		}
	}
}

func TestNearestDeterministic(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {3, 0}}
	c := New(pts)
	n0, d0, ok := c.Nearest(0)
	if !ok || n0 != 1 || math.Abs(d0-1) > 1e-12 {
		t.Fatalf("nearest(0) = %d (%v)", n0, d0)
	}
	n2, _, _ := c.Nearest(2)
	if n2 != 1 {
		t.Fatalf("nearest(2) = %d", n2)
	}
}

func TestNearestTieBreak(t *testing.T) {
	// Points 1 and 2 are equidistant from 0: lower ID wins.
	pts := []Point{{0, 0}, {1, 0}, {-1, 0}}
	c := New(pts)
	n, _, _ := c.Nearest(0)
	if n != 1 {
		t.Fatalf("tie-break picked %d, want 1", n)
	}
}

func TestMergePairCentroidAndSize(t *testing.T) {
	pts := []Point{{0, 0}, {2, 0}, {10, 10}}
	c := New(pts)
	p := c.MergePair(0, 1)
	m := c.Get(p)
	if m == nil || m.Size != 2 {
		t.Fatal("merged cluster wrong size")
	}
	if math.Abs(m.Centroid.X-1) > 1e-12 || m.Centroid.Y != 0 {
		t.Fatalf("centroid %v", m.Centroid)
	}
	if c.Get(0) != nil || c.Get(1) != nil {
		t.Fatal("children still live")
	}
	if len(c.Merges) != 1 || c.Merges[0].Dist != 2 {
		t.Fatalf("merge record %+v", c.Merges)
	}
	// Weighted merge: {(0,0),(2,0)} centroid (1,0) size 2 with (10,10).
	p2 := c.MergePair(p, 2)
	m2 := c.Get(p2)
	if math.Abs(m2.Centroid.X-4) > 1e-12 || math.Abs(m2.Centroid.Y-10.0/3) > 1e-12 {
		t.Fatalf("weighted centroid %v", m2.Centroid)
	}
}

func TestSequentialToOneCluster(t *testing.T) {
	r := rng.New(1)
	pts := RandomPoints(r, 100)
	c := New(pts)
	merges := c.Sequential(1)
	if merges != 99 || c.NumClusters() != 1 {
		t.Fatalf("merges=%d clusters=%d", merges, c.NumClusters())
	}
	if err := c.CheckDendrogram(100); err != nil {
		t.Fatal(err)
	}
	root := c.Get(c.Live()[0])
	if root.Size != 100 {
		t.Fatalf("root size %d", root.Size)
	}
}

func TestSequentialToTarget(t *testing.T) {
	r := rng.New(2)
	c := New(RandomPoints(r, 60))
	c.Sequential(5)
	if c.NumClusters() != 5 {
		t.Fatalf("clusters = %d, want 5", c.NumClusters())
	}
	total := 0
	for _, id := range c.Live() {
		total += c.Get(id).Size
	}
	if total != 60 {
		t.Fatalf("points conserved: %d", total)
	}
}

func TestSpeculativeFixedM(t *testing.T) {
	r := rng.New(3)
	c := New(RandomPoints(r, 150))
	s := NewSpeculative(c, 1, func(n int) int { return r.Intn(n) })
	for rounds := 0; ; rounds++ {
		if rounds > 100000 {
			t.Fatal("did not drain")
		}
		if s.Pending() == 0 {
			if c.NumClusters() <= 1 {
				break
			}
			if s.Reseed() == 0 {
				t.Fatal("stalled with no reseedable work")
			}
		}
		s.Executor().Round(8)
	}
	if err := c.CheckDendrogram(150); err != nil {
		t.Fatal(err)
	}
	if c.Get(c.Live()[0]).Size != 150 {
		t.Fatal("root does not contain all points")
	}
}

func TestSpeculativeAdaptive(t *testing.T) {
	r := rng.New(4)
	c := New(RandomPoints(r, 400))
	s := NewSpeculative(c, 1, func(n int) int { return r.Intn(n) })
	ctrl := control.NewHybrid(control.DefaultHybridConfig(0.25))
	res := s.Run(ctrl, 1000000)
	if c.NumClusters() != 1 {
		t.Fatalf("clusters = %d", c.NumClusters())
	}
	if res.Rounds == 0 {
		t.Fatal("no rounds")
	}
	if err := c.CheckDendrogram(400); err != nil {
		t.Fatal(err)
	}
	if s.Executor().TotalAborted() == 0 {
		t.Error("merges never conflicted — locking suspicious")
	}
}

func TestSpeculativeRespectsTarget(t *testing.T) {
	r := rng.New(5)
	c := New(RandomPoints(r, 80))
	s := NewSpeculative(c, 10, func(n int) int { return r.Intn(n) })
	s.Run(control.Fixed{Procs: 8}, 100000)
	if c.NumClusters() != 10 {
		t.Fatalf("clusters = %d, want 10", c.NumClusters())
	}
	if err := c.CheckDendrogram(80); err != nil {
		t.Fatal(err)
	}
}

// The speculative dendrogram should be of comparable quality to the
// sequential one: compare the sum of merge distances (cost) within a
// generous factor (schedules differ, geometry is the same).
func TestSpeculativeQualityNearSequential(t *testing.T) {
	r := rng.New(6)
	pts := RandomPoints(r, 200)

	seq := New(pts)
	seq.Sequential(1)
	seqCost := 0.0
	for _, m := range seq.Merges {
		seqCost += m.Dist
	}

	par := New(pts)
	s := NewSpeculative(par, 1, func(n int) int { return r.Intn(n) })
	s.Run(control.NewHybrid(control.DefaultHybridConfig(0.25)), 1000000)
	parCost := 0.0
	for _, m := range par.Merges {
		parCost += m.Dist
	}
	if parCost > 1.5*seqCost || seqCost > 1.5*parCost {
		t.Fatalf("dendrogram costs diverge: seq %v vs spec %v", seqCost, parCost)
	}
}
