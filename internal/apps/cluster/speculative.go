package cluster

import (
	"sync"

	"repro/internal/control"
	"repro/internal/speculation"
)

// SpeculativeClustering runs agglomerative clustering on the optimistic
// runtime. Each live cluster owns at most one pending task; a task
// checks the mutual-nearest-neighbor condition and, when it holds,
// speculatively locks both clusters and merges at commit time. Merges
// sharing a cluster conflict — the amorphous data-parallelism the paper
// attributes to agglomerative clustering.
//
// Cluster IDs grow monotonically, so abstract locks are kept in a map
// guarded by the structural mutex.
type SpeculativeClustering struct {
	mu      sync.Mutex
	c       *Clustering
	target  int
	items   map[int]*speculation.Item
	hasTask map[int]bool
	exec    *speculation.Executor
	initial int
}

// NewSpeculative wraps clustering c (owned afterwards), stopping when
// target clusters remain. pick selects pending-task indices (nil = LIFO).
func NewSpeculative(c *Clustering, target int, pick func(n int) int) *SpeculativeClustering {
	if target < 1 {
		target = 1
	}
	s := &SpeculativeClustering{
		c:       c,
		target:  target,
		items:   make(map[int]*speculation.Item),
		hasTask: make(map[int]bool),
		exec:    speculation.NewExecutor(pick),
		initial: c.NumClusters(),
	}
	s.Reseed()
	return s
}

// Clustering exposes the underlying clustering state.
func (s *SpeculativeClustering) Clustering() *Clustering { return s.c }

// Executor exposes the underlying speculative executor.
func (s *SpeculativeClustering) Executor() *speculation.Executor { return s.exec }

// Pending returns the number of queued cluster tasks.
func (s *SpeculativeClustering) Pending() int { return s.exec.Pending() }

func (s *SpeculativeClustering) itemFor(id int) *speculation.Item {
	if it, ok := s.items[id]; ok {
		return it
	}
	it := speculation.NewItem(int64(id))
	s.items[id] = it
	return it
}

// ensureTask queues a task for cluster id if none is pending. Caller
// must hold s.mu; spawning happens outside via the returned flag.
func (s *SpeculativeClustering) ensureTaskLocked(id int) bool {
	if s.hasTask[id] {
		return false
	}
	s.hasTask[id] = true
	return true
}

// Reseed enqueues a task for every live cluster that lacks one. It
// restarts stalled nearest-neighbor chains (the driver calls it between
// adaptive runs until the target is reached).
func (s *SpeculativeClustering) Reseed() int {
	s.mu.Lock()
	var spawn []int
	for id := range s.c.clusters {
		if s.ensureTaskLocked(id) {
			spawn = append(spawn, id)
		}
	}
	s.mu.Unlock()
	for _, id := range spawn {
		s.exec.Add(s.taskFor(id))
	}
	return len(spawn)
}

// taskFor builds the speculative merge task for cluster x, keyed by
// the cluster so the colored-mode learner can track it across retries.
func (s *SpeculativeClustering) taskFor(x int) speculation.Task {
	return speculation.Keyed(int64(x), speculation.TaskFunc(func(ctx *speculation.Ctx) error {
		s.mu.Lock()
		if s.c.Get(x) == nil || s.c.NumClusters() <= s.target {
			delete(s.hasTask, x)
			s.mu.Unlock()
			return nil // stale or done: consume silently
		}
		y, _, ok := s.c.Nearest(x)
		if !ok {
			delete(s.hasTask, x)
			s.mu.Unlock()
			return nil
		}
		z, _, _ := s.c.Nearest(y)
		if z != x {
			// Not mutual: walk the nearest-neighbor chain by handing
			// the baton to y (chains end in a mutual 2-cycle).
			delete(s.hasTask, x)
			spawnY := s.ensureTaskLocked(y)
			s.mu.Unlock()
			if spawnY {
				s.exec.Add(s.taskFor(y))
			}
			return nil
		}
		ix, iy := s.itemFor(x), s.itemFor(y)
		s.mu.Unlock()

		// Mutual nearest neighbors: race for both clusters.
		if err := ctx.AcquireAll(ix, iy); err != nil {
			return err
		}
		ctx.OnCommit(func() { s.commitMerge(x, y) })
		return nil
	}))
}

// commitMerge fuses x and y (serial commit phase).
func (s *SpeculativeClustering) commitMerge(x, y int) {
	s.mu.Lock()
	delete(s.hasTask, x)
	var spawn []int
	if s.c.Get(x) != nil && s.c.Get(y) != nil && s.c.NumClusters() > s.target {
		p := s.c.MergePair(x, y)
		delete(s.items, x)
		delete(s.items, y)
		if s.ensureTaskLocked(p) {
			spawn = append(spawn, p)
		}
	}
	s.mu.Unlock()
	for _, id := range spawn {
		s.exec.Add(s.taskFor(id))
	}
}

// Run agglomerates under controller c until target clusters remain (or
// maxRounds elapse), reseeding stalled chains between adaptive runs. It
// returns the concatenated adaptive trajectory.
func (s *SpeculativeClustering) Run(ctrl control.Controller, maxRounds int) *speculation.AdaptiveResult {
	total := &speculation.AdaptiveResult{Controller: ctrl.Name()}
	for total.Rounds < maxRounds {
		res := speculation.RunAdaptive(s.exec, ctrl, maxRounds-total.Rounds)
		total.M = append(total.M, res.M...)
		total.R = append(total.R, res.R...)
		total.Committed = append(total.Committed, res.Committed...)
		total.Rounds += res.Rounds
		total.UsefulWork += res.UsefulWork
		total.WastedWork += res.WastedWork
		total.ProcRounds += res.ProcRounds
		s.mu.Lock()
		done := s.c.NumClusters() <= s.target
		s.mu.Unlock()
		if done {
			break
		}
		if s.Reseed() == 0 {
			break // nothing left to try
		}
	}
	return total
}
