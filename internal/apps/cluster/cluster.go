// Package cluster implements agglomerative (hierarchical) clustering
// with the mutual-nearest-neighbor merge rule — the paper's fourth
// motivating amorphous data-parallel workload (§1, citing Tan–Steinbach–
// Kumar). Any two clusters that are each other's nearest neighbors can
// merge; merges touching disjoint neighborhoods proceed in parallel,
// merges sharing a cluster conflict.
//
// Cluster distance is centroid distance (with cluster size as the
// deterministic tie-breaker), under which mutual-nearest-neighbor
// merging yields a well-defined dendrogram.
package cluster

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Point is a 2D point.
type Point struct{ X, Y float64 }

// RandomPoints returns n uniform points in the unit square.
func RandomPoints(r *rng.Rand, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{r.Float64(), r.Float64()}
	}
	return pts
}

// Cluster is a live cluster: centroid and member count. ID identifies
// the cluster in the dendrogram.
type Cluster struct {
	ID       int
	Centroid Point
	Size     int
}

// Merge is one dendrogram node: clusters A and B fused into Parent at
// the given centroid distance.
type Merge struct {
	A, B, Parent int
	Dist         float64
}

// Clustering is the shared mutable state of an agglomerative run.
type Clustering struct {
	clusters map[int]*Cluster
	nextID   int
	Merges   []Merge
}

// New builds the initial clustering: one singleton cluster per point.
func New(pts []Point) *Clustering {
	c := &Clustering{clusters: make(map[int]*Cluster, len(pts))}
	for _, p := range pts {
		c.clusters[c.nextID] = &Cluster{ID: c.nextID, Centroid: p, Size: 1}
		c.nextID++
	}
	return c
}

// NumClusters returns the number of live clusters.
func (c *Clustering) NumClusters() int { return len(c.clusters) }

// Live returns the IDs of the live clusters (unspecified order).
func (c *Clustering) Live() []int {
	out := make([]int, 0, len(c.clusters))
	for id := range c.clusters {
		out = append(out, id)
	}
	return out
}

// Get returns the live cluster with the given ID, or nil.
func (c *Clustering) Get(id int) *Cluster { return c.clusters[id] }

func dist2(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}

// closer orders candidate neighbors by (distance², ID) so nearest
// neighbors are unique.
func closer(d1 float64, id1 int, d2 float64, id2 int) bool {
	if d1 != d2 {
		return d1 < d2
	}
	return id1 < id2
}

// Nearest returns the nearest other live cluster to id (by centroid
// distance, ties broken by ID) and the squared distance; ok is false if
// id is the only cluster. Linear scan — correct for any state; the
// speculative adapter uses a grid for the common case.
func (c *Clustering) Nearest(id int) (int, float64, bool) {
	self, ok := c.clusters[id]
	if !ok {
		panic(fmt.Sprintf("cluster: Nearest of dead cluster %d", id))
	}
	bestID, bestD := -1, math.Inf(1)
	for oid, o := range c.clusters {
		if oid == id {
			continue
		}
		d := dist2(self.Centroid, o.Centroid)
		if bestID < 0 || closer(d, oid, bestD, bestID) {
			bestID, bestD = oid, d
		}
	}
	if bestID < 0 {
		return 0, 0, false
	}
	return bestID, bestD, ok
}

// MergePair fuses live clusters a and b into a new cluster (centroid =
// weighted mean) and records the dendrogram node. It returns the new ID.
func (c *Clustering) MergePair(a, b int) int {
	ca, cb := c.clusters[a], c.clusters[b]
	if ca == nil || cb == nil {
		panic(fmt.Sprintf("cluster: merging dead cluster %d/%d", a, b))
	}
	n := ca.Size + cb.Size
	merged := &Cluster{
		ID: c.nextID,
		Centroid: Point{
			X: (ca.Centroid.X*float64(ca.Size) + cb.Centroid.X*float64(cb.Size)) / float64(n),
			Y: (ca.Centroid.Y*float64(ca.Size) + cb.Centroid.Y*float64(cb.Size)) / float64(n),
		},
		Size: n,
	}
	c.nextID++
	delete(c.clusters, a)
	delete(c.clusters, b)
	c.clusters[merged.ID] = merged
	c.Merges = append(c.Merges, Merge{
		A: a, B: b, Parent: merged.ID,
		Dist: math.Sqrt(dist2(ca.Centroid, cb.Centroid)),
	})
	return merged.ID
}

// Sequential agglomerates until target clusters remain (or 1), merging a
// mutual-nearest-neighbor pair per step, and returns the merge count.
func (c *Clustering) Sequential(target int) int {
	if target < 1 {
		target = 1
	}
	merges := 0
	for len(c.clusters) > target {
		// Find any mutual nearest-neighbor pair (one always exists:
		// follow the nearest-neighbor chain to a 2-cycle).
		start := -1
		for id := range c.clusters {
			start = id
			break
		}
		cur := start
		prev := -1
		for {
			nxt, _, ok := c.Nearest(cur)
			if !ok {
				return merges
			}
			if nxt == prev {
				// cur and prev are mutual nearest neighbors.
				c.MergePair(prev, cur)
				merges++
				break
			}
			prev, cur = cur, nxt
		}
	}
	return merges
}

// CheckDendrogram verifies structural sanity of the recorded merges:
// every merge consumes two live IDs and produces a fresh one, and the
// final live set matches the clustering state.
func (c *Clustering) CheckDendrogram(initial int) error {
	live := map[int]bool{}
	for i := 0; i < initial; i++ {
		live[i] = true
	}
	next := initial
	for i, m := range c.Merges {
		if !live[m.A] || !live[m.B] || m.A == m.B {
			return fmt.Errorf("cluster: merge %d fuses non-live pair %d,%d", i, m.A, m.B)
		}
		if m.Parent != next {
			return fmt.Errorf("cluster: merge %d parent %d, want %d", i, m.Parent, next)
		}
		delete(live, m.A)
		delete(live, m.B)
		live[m.Parent] = true
		next++
	}
	if len(live) != len(c.clusters) {
		return fmt.Errorf("cluster: %d live per dendrogram, %d in state", len(live), len(c.clusters))
	}
	for id := range c.clusters {
		if !live[id] {
			return fmt.Errorf("cluster: state has unexpected live cluster %d", id)
		}
	}
	return nil
}
