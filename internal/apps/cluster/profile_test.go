package cluster

import (
	"testing"

	"repro/internal/rng"
)

func TestMutualPairsAreMatching(t *testing.T) {
	r := rng.New(1)
	c := New(RandomPoints(r, 100))
	pairs := c.MutualPairs()
	if len(pairs) == 0 {
		t.Fatal("no mutual pairs among 100 random points")
	}
	seen := map[int]bool{}
	for _, p := range pairs {
		if seen[p[0]] || seen[p[1]] {
			t.Fatalf("mutual pairs are not disjoint: %v", pairs)
		}
		seen[p[0]], seen[p[1]] = true, true
		if p[0] >= p[1] {
			t.Fatalf("pair not normalized: %v", p)
		}
	}
}

func TestMutualPairsTwoPoints(t *testing.T) {
	c := New([]Point{{0, 0}, {1, 0}})
	pairs := c.MutualPairs()
	if len(pairs) != 1 {
		t.Fatalf("two points must be mutual: %v", pairs)
	}
}

func TestParallelismProfileDrains(t *testing.T) {
	r := rng.New(2)
	c := New(RandomPoints(r, 200))
	pts := c.ParallelismProfile(1)
	if len(pts) == 0 {
		t.Fatal("empty profile")
	}
	if c.NumClusters() != 1 {
		t.Fatalf("profile left %d clusters", c.NumClusters())
	}
	// Cluster counts strictly decrease; parallel merges bounded by half
	// the live clusters.
	for i, p := range pts {
		if p.MutualPairs < 1 || p.MutualPairs > p.Clusters/2 {
			t.Fatalf("step %d: %d pairs for %d clusters", i, p.MutualPairs, p.Clusters)
		}
		if i > 0 && p.Clusters >= pts[i-1].Clusters {
			t.Fatalf("clusters did not shrink at step %d", i)
		}
	}
	if err := c.CheckDendrogram(200); err != nil {
		t.Fatal(err)
	}
}
