package mesh

import "testing"

func TestCocircularGridInsertions(t *testing.T) {
	m := NewSquare(0, 1)
	// Perfect grid: every interior quadruple is cocircular.
	for i := 1; i < 8; i++ {
		for j := 1; j < 8; j++ {
			m.Insert(Point{float64(i) / 8, float64(j) / 8})
			if err := m.CheckConsistency(); err != nil {
				t.Fatalf("after (%d,%d): %v", i, j, err)
			}
		}
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if a := m.TotalArea(); a < 0.999999 || a > 1.000001 {
		t.Fatalf("area %v", a)
	}
}

func TestDuplicateInsertIsNoop(t *testing.T) {
	m := NewSquare(0, 1)
	idx, created := m.Insert(Point{0.5, 0.5})
	if len(created) == 0 {
		t.Fatal("fresh insert created nothing")
	}
	before := m.NumTriangles()
	idx2, created2 := m.Insert(Point{0.5, 0.5})
	if idx2 != idx || created2 != nil {
		t.Fatalf("duplicate insert: idx %d vs %d, created %v", idx2, idx, created2)
	}
	if m.NumTriangles() != before || m.NumPoints() != 5 {
		t.Fatal("duplicate insert mutated the mesh")
	}
	// Duplicating a corner vertex is also a no-op.
	idx3, created3 := m.Insert(Point{0, 0})
	if idx3 != 0 || created3 != nil {
		t.Fatalf("corner duplicate: %d %v", idx3, created3)
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
