package mesh

import (
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestWriteSVG(t *testing.T) {
	r := rng.New(1)
	m := NewSquare(0, 1)
	for _, p := range randomPoints(r, 20, 0, 1) {
		m.Insert(p)
	}
	q := Quality{MaxArea: 0.02}
	var sb strings.Builder
	if err := m.WriteSVG(&sb, q, 400); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	if got := strings.Count(out, "<polygon"); got != m.NumTriangles() {
		t.Fatalf("%d polygons for %d triangles", got, m.NumTriangles())
	}
	// With a tight quality bound some triangles must be flagged bad.
	if !strings.Contains(out, "#e05050") {
		t.Fatal("no bad triangles highlighted")
	}
	// After full refinement nothing is highlighted.
	m.Refine(q, 0)
	sb.Reset()
	if err := m.WriteSVG(&sb, q, 400); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "#e05050") {
		t.Fatal("refined mesh still shows bad triangles")
	}
}

func TestWriteSVGMinSize(t *testing.T) {
	m := NewSquare(0, 1)
	var sb strings.Builder
	if err := m.WriteSVG(&sb, Quality{}, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `width="16"`) {
		t.Fatal("minimum size not enforced")
	}
}
