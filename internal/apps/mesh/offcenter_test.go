package mesh

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestOffCenterGeometry(t *testing.T) {
	// Very flat triangle: base (0,0)-(1,0) with apex barely above —
	// shortest edge is an apex edge; but use a long skinny one where
	// the shortest edge is the base of a tall circumradius.
	a, b, c := Point{0, 0}, Point{0.1, 0}, Point{0.05, 2}
	cc := Circumcenter(a, b, c)
	beta := 25 * math.Pi / 180
	oc := offCenter(a, b, c, cc, beta)
	// The off-center must lie strictly between the shortest edge's
	// midpoint and the circumcenter.
	mid := Point{0.05, 0}
	dOC := oc.Dist2(mid)
	dCC := cc.Dist2(mid)
	if dOC >= dCC {
		t.Fatalf("off-center no closer than circumcenter: %v vs %v", dOC, dCC)
	}
	// At the off-center, the shortest edge subtends exactly beta.
	ang := MinAngle(a, b, oc)
	if math.Abs(ang-beta) > 1e-9 {
		t.Fatalf("subtended angle %v, want %v", ang, beta)
	}
}

func TestOffCenterFallsBackToCircumcenter(t *testing.T) {
	// Near-equilateral: circumcenter already close to the shortest
	// edge, so the off-center IS the circumcenter.
	h := math.Sqrt(3) / 2
	a, b, c := Point{0, 0}, Point{1, 0}, Point{0.5, h}
	cc := Circumcenter(a, b, c)
	oc := offCenter(a, b, c, cc, 25*math.Pi/180)
	if oc != cc {
		t.Fatalf("off-center moved a good triangle's point: %v vs %v", oc, cc)
	}
}

// Off-centers refine to the same quality with no more (typically fewer)
// insertions than circumcenters.
func TestOffCenterReducesInsertions(t *testing.T) {
	build := func() *Mesh {
		r := rng.New(9)
		m := NewSquare(0, 1)
		for _, p := range randomPoints(r, 30, 0, 1) {
			m.Insert(p)
		}
		return m
	}
	qCC := Quality{MinAngleDeg: 22, MaxArea: 0.005}
	qOC := Quality{MinAngleDeg: 22, MaxArea: 0.005, OffCenter: true}

	mCC := build()
	stCC := mCC.Refine(qCC, 100000)
	mOC := build()
	stOC := mOC.Refine(qOC, 100000)

	if len(mCC.BadTriangles(qCC)) != 0 || len(mOC.BadTriangles(qOC)) != 0 {
		t.Fatal("refinement incomplete")
	}
	if err := mOC.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if sOC := mOC.ComputeStats(); sOC.MinAngleDeg < 22 {
		t.Fatalf("off-center mesh quality %v° below bound", sOC.MinAngleDeg)
	}
	// Üngör's result: off-centers need at most as many points, usually
	// fewer. Allow 10% slack for small-instance noise.
	if float64(stOC.Inserted) > 1.1*float64(stCC.Inserted) {
		t.Fatalf("off-center inserted %d vs circumcenter %d", stOC.Inserted, stCC.Inserted)
	}
	t.Logf("insertions: circumcenter=%d off-center=%d", stCC.Inserted, stOC.Inserted)
}

func TestSpeculativeRefinerWithOffCenters(t *testing.T) {
	m := buildTestMesh(11, 25)
	q := Quality{MinAngleDeg: 20, MaxArea: 0.004, OffCenter: true}
	r := rng.New(12)
	ref := NewSpeculativeRefiner(m, q, func(n int) int { return r.Intn(n) })
	rounds := 0
	for ref.Pending() > 0 {
		ref.Executor().Round(8)
		rounds++
		if rounds > 100000 {
			t.Fatal("did not drain")
		}
	}
	if len(m.BadTriangles(q)) != 0 {
		t.Fatal("bad triangles remain")
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
