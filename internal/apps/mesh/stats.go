package mesh

import "math"

// Stats summarizes the geometric quality of a triangulation — the
// numbers a refinement experiment reports alongside controller metrics.
type Stats struct {
	Triangles    int
	Points       int
	TotalArea    float64
	MinAngleDeg  float64 // worst (smallest) interior angle in the mesh
	MeanAngleDeg float64 // mean of per-triangle minimum angles
	MaxArea      float64
	MinArea      float64
	AngleHist    [18]int // 5°-wide bins of per-triangle min angles, 0..90°
}

// ComputeStats scans all live triangles.
func (m *Mesh) ComputeStats() Stats {
	st := Stats{
		Triangles: m.NumTriangles(),
		Points:    m.NumPoints(),
		MinArea:   math.Inf(1),
	}
	sumAngles := 0.0
	st.MinAngleDeg = math.Inf(1)
	for _, t := range m.tris {
		a, b, c := m.Corners(t)
		area := Area(a, b, c)
		st.TotalArea += area
		if area > st.MaxArea {
			st.MaxArea = area
		}
		if area < st.MinArea {
			st.MinArea = area
		}
		angDeg := MinAngle(a, b, c) * 180 / math.Pi
		sumAngles += angDeg
		if angDeg < st.MinAngleDeg {
			st.MinAngleDeg = angDeg
		}
		bin := int(angDeg / 5)
		if bin < 0 {
			bin = 0
		}
		if bin >= len(st.AngleHist) {
			bin = len(st.AngleHist) - 1
		}
		st.AngleHist[bin]++
	}
	if st.Triangles > 0 {
		st.MeanAngleDeg = sumAngles / float64(st.Triangles)
	} else {
		st.MinAngleDeg = 0
		st.MinArea = 0
	}
	return st
}
