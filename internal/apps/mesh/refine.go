package mesh

import (
	"math"
	"sort"
)

// Quality defines when a triangle is "bad" and must be refined. A
// triangle is bad if its area exceeds MaxArea (when MaxArea > 0) or its
// minimum angle falls below MinAngleDeg degrees (when MinAngleDeg > 0).
// Angle-driven refinement terminates for bounds below Chew's ~26.5°
// limit on domains without small input angles (our domains are squares).
//
// OffCenter selects Üngör-style off-center Steiner points instead of
// circumcenters: the insertion point moves from the circumcircle toward
// the triangle's shortest edge just far enough that the new triangle
// formed with that edge meets the angle bound. Off-centers fix the bad
// triangle with a point no farther than necessary, typically reducing
// the number of inserted points.
type Quality struct {
	MaxArea     float64
	MinAngleDeg float64
	OffCenter   bool
}

// IsBad reports whether triangle t violates the quality criteria.
func (q Quality) IsBad(m *Mesh, t *Triangle) bool {
	a, b, c := m.Corners(t)
	if q.MaxArea > 0 && Area(a, b, c) > q.MaxArea {
		return true
	}
	if q.MinAngleDeg > 0 && MinAngle(a, b, c) < q.MinAngleDeg*math.Pi/180 {
		return true
	}
	return false
}

// BadTriangles returns the IDs of all live bad triangles in ascending
// ID order (deterministic: refinement trajectories are reproducible).
func (m *Mesh) BadTriangles(q Quality) []int {
	var out []int
	for id, t := range m.tris {
		if q.IsBad(m, t) {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// encroachedHullEdge finds the hull edge whose diametral circle strictly
// contains p, preferring the most-encroached edge (deterministic tie
// handling); ok is false if none does. Linear in the hull size thanks
// to the mesh's incremental hull index.
func (m *Mesh) encroachedHullEdge(p Point) (u, v int, ok bool) {
	bestDepth := 0.0
	m.EachHullEdge(func(eu, ev int) {
		a := m.Pts[eu]
		b := m.Pts[ev]
		mid := Point{(a.X + b.X) / 2, (a.Y + b.Y) / 2}
		radius2 := a.Dist2(b) / 4
		depth := radius2*(1-1e-12) - p.Dist2(mid)
		if depth > bestDepth {
			bestDepth = depth
			u, v, ok = eu, ev, true
		}
	})
	return u, v, ok
}

// nearestHullEdge returns the hull edge whose midpoint is closest to p.
// The square domain always has hull edges, so ok is false only for a
// mesh with no hull (impossible here, but handled).
func (m *Mesh) nearestHullEdge(p Point) (u, v int, ok bool) {
	best := math.Inf(1)
	m.EachHullEdge(func(eu, ev int) {
		a := m.Pts[eu]
		b := m.Pts[ev]
		mid := Point{(a.X + b.X) / 2, (a.Y + b.Y) / 2}
		if d := p.Dist2(mid); d < best {
			best = d
			u, v, ok = eu, ev, true
		}
	})
	return u, v, ok
}

// RefinePoint returns the Steiner point whose insertion refines triangle
// t with the default circumcenter strategy; see RefinePointQ.
func (m *Mesh) RefinePoint(t *Triangle) (Point, bool) {
	return m.RefinePointQ(t, Quality{})
}

// offCenter returns the Üngör off-center candidate for triangle (a,b,c)
// with circumcenter cc: the point on the ray from the shortest edge's
// midpoint through cc at which the edge subtends exactly the target
// minimum angle, or cc itself when cc is already closer than that.
func offCenter(a, b, c, cc Point, minAngleRad float64) Point {
	// Locate the shortest edge.
	ea, eb := a, b
	best := a.Dist2(b)
	if d := b.Dist2(c); d < best {
		best, ea, eb = d, b, c
	}
	if d := a.Dist2(c); d < best {
		best, ea, eb = d, a, c
	}
	l := math.Sqrt(best)
	mid := Point{(ea.X + eb.X) / 2, (ea.Y + eb.Y) / 2}
	sin := math.Sin(minAngleRad)
	if sin <= 0 {
		return cc
	}
	radius := l / (2 * sin)
	// Farthest apex still meeting the bound: h = R(1 + cos β).
	h := radius * (1 + math.Cos(minAngleRad))
	dx, dy := cc.X-mid.X, cc.Y-mid.Y
	dist := math.Hypot(dx, dy)
	if dist <= h || dist == 0 {
		return cc
	}
	scale := h / dist
	return Point{mid.X + dx*scale, mid.Y + dy*scale}
}

// RefinePointQ returns the Steiner point whose insertion refines
// triangle t, following Chew's rule: the circumcenter (or, with
// q.OffCenter, the Üngör off-center), unless it encroaches a hull edge
// or escapes the domain, in which case the midpoint of the offending
// hull edge is inserted instead. (Splitting the boundary is essential:
// inserting an interior fallback point — e.g. the centroid — into a
// skinny boundary triangle spawns ever-skinnier children and diverges.)
// ok is false for degenerate triangles.
func (m *Mesh) RefinePointQ(t *Triangle, q Quality) (Point, bool) {
	a, b, c := m.Corners(t)
	if Area(a, b, c) < 1e-300 {
		return Point{}, false
	}
	cc := Circumcenter(a, b, c)
	if q.OffCenter && q.MinAngleDeg > 0 {
		cc = offCenter(a, b, c, cc, q.MinAngleDeg*math.Pi/180)
	}
	if u, v, enc := m.encroachedHullEdge(cc); enc {
		pu, pv := m.Pts[u], m.Pts[v]
		return Point{(pu.X + pv.X) / 2, (pu.Y + pv.Y) / 2}, true
	}
	if m.Locate(cc) >= 0 {
		return cc, true
	}
	// Circumcenter escaped the domain without diametral containment
	// (short boundary edges): split the nearest hull edge, which
	// shrinks the boundary toward containment.
	if u, v, ok := m.nearestHullEdge(cc); ok {
		pu, pv := m.Pts[u], m.Pts[v]
		return Point{(pu.X + pv.X) / 2, (pu.Y + pv.Y) / 2}, true
	}
	return Point{}, false
}

// RefineStats summarizes a refinement run.
type RefineStats struct {
	Inserted  int // points inserted
	Processed int // bad-triangle work items consumed (incl. stale)
	Stale     int // work items whose triangle was already gone or good
	Skipped   int // unimprovable triangles abandoned
}

// Refine sequentially eliminates bad triangles: repeatedly pick a bad
// triangle, insert its refinement point (Bowyer–Watson), and enqueue any
// newly created bad triangles. A midpoint split may leave the original
// triangle bad, in which case it is requeued. maxInserts caps runaway
// refinement (0 means no cap). After a run that does not hit the cap,
// no bad triangles remain.
func (m *Mesh) Refine(q Quality, maxInserts int) RefineStats {
	var st RefineStats
	work := m.BadTriangles(q)
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		st.Processed++
		t := m.tris[id]
		if t == nil || !q.IsBad(m, t) {
			st.Stale++ // cavity of an earlier insertion consumed it
			continue
		}
		p, ok := m.RefinePointQ(t, q)
		if !ok {
			st.Skipped++
			continue
		}
		_, created := m.Insert(p)
		st.Inserted++
		for _, nid := range created {
			if nt := m.tris[nid]; nt != nil && q.IsBad(m, nt) {
				work = append(work, nid)
			}
		}
		// A hull-midpoint split may not have touched t itself.
		if nt := m.tris[id]; nt != nil && q.IsBad(m, nt) {
			work = append(work, id)
		}
		if maxInserts > 0 && st.Inserted >= maxInserts {
			break
		}
	}
	return st
}
