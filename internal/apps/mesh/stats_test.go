package mesh

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestComputeStatsSquare(t *testing.T) {
	m := NewSquare(0, 1)
	st := m.ComputeStats()
	if st.Triangles != 2 || st.Points != 4 {
		t.Fatalf("counts %d/%d", st.Triangles, st.Points)
	}
	if math.Abs(st.TotalArea-1) > 1e-12 {
		t.Fatalf("area %v", st.TotalArea)
	}
	// Two right isoceles halves: min angle 45° each.
	if math.Abs(st.MinAngleDeg-45) > 1e-9 || math.Abs(st.MeanAngleDeg-45) > 1e-9 {
		t.Fatalf("angles %v/%v", st.MinAngleDeg, st.MeanAngleDeg)
	}
	if st.AngleHist[9] != 2 { // 45° lands in the 45-50 bin
		t.Fatalf("hist %v", st.AngleHist)
	}
	if st.MinArea != 0.5 || st.MaxArea != 0.5 {
		t.Fatalf("areas %v/%v", st.MinArea, st.MaxArea)
	}
}

func TestComputeStatsEmptyMeshSafe(t *testing.T) {
	m := &Mesh{tris: map[int]*Triangle{}}
	st := m.ComputeStats()
	if st.Triangles != 0 || st.MinAngleDeg != 0 || st.MinArea != 0 {
		t.Fatalf("empty mesh stats %+v", st)
	}
}

// Refinement with an angle criterion must raise the worst angle to (at
// least) the requested bound.
func TestRefinementImprovesQuality(t *testing.T) {
	r := rng.New(1)
	m := NewSquare(0, 1)
	for _, p := range randomPoints(r, 40, 0, 1) {
		m.Insert(p)
	}
	before := m.ComputeStats()
	m.Refine(Quality{MinAngleDeg: 18, MaxArea: 0.01}, 50000)
	after := m.ComputeStats()
	if after.MinAngleDeg < 18 {
		t.Fatalf("worst angle %v° below the 18° bound", after.MinAngleDeg)
	}
	if after.MinAngleDeg < before.MinAngleDeg {
		t.Fatalf("quality decreased: %v° -> %v°", before.MinAngleDeg, after.MinAngleDeg)
	}
	if math.Abs(after.TotalArea-1) > 1e-9 {
		t.Fatalf("area leaked: %v", after.TotalArea)
	}
}
