package mesh

import (
	"fmt"
	"math"
)

// Triangle is one face of the triangulation. Vertices are indices into
// the mesh point slice, in counter-clockwise order. N[i] is the ID of
// the neighbor sharing the edge (V[i], V[(i+1)%3]), or -1 on the hull.
type Triangle struct {
	ID int
	V  [3]int
	N  [3]int
}

// Mesh is a mutable 2D triangulation.
type Mesh struct {
	Pts     []Point
	tris    map[int]*Triangle
	hull    map[[2]int]int // directed hull edge (u,v) -> owning triangle
	nextTri int
	locHint int // last triangle touched, seeds point location walks
}

// NewSquare returns a triangulation of the axis-aligned square
// [lo,hi]×[lo,hi] consisting of two triangles. All later insertions must
// lie strictly inside the square.
func NewSquare(lo, hi float64) *Mesh {
	if hi <= lo {
		panic("mesh: NewSquare requires hi > lo")
	}
	m := &Mesh{tris: make(map[int]*Triangle), hull: make(map[[2]int]int)}
	m.Pts = []Point{{lo, lo}, {hi, lo}, {hi, hi}, {lo, hi}}
	// Two CCW triangles: (0,1,2) and (0,2,3) sharing edge (0,2).
	t0 := m.newTriangle([3]int{0, 1, 2})
	t1 := m.newTriangle([3]int{0, 2, 3})
	t0.N = [3]int{-1, -1, t1.ID}
	t1.N = [3]int{t0.ID, -1, -1}
	m.indexHullEdges(t0)
	m.indexHullEdges(t1)
	return m
}

func (m *Mesh) newTriangle(v [3]int) *Triangle {
	t := &Triangle{ID: m.nextTri, V: v, N: [3]int{-1, -1, -1}}
	m.nextTri++
	m.tris[t.ID] = t
	return t
}

// indexHullEdges registers t's boundary (-1 neighbor) edges in the hull
// index.
func (m *Mesh) indexHullEdges(t *Triangle) {
	for i := 0; i < 3; i++ {
		if t.N[i] < 0 {
			m.hull[[2]int{t.V[i], t.V[(i+1)%3]}] = t.ID
		}
	}
}

// unindexHullEdges removes t's boundary edges from the hull index.
func (m *Mesh) unindexHullEdges(t *Triangle) {
	for i := 0; i < 3; i++ {
		if t.N[i] < 0 {
			delete(m.hull, [2]int{t.V[i], t.V[(i+1)%3]})
		}
	}
}

// EachHullEdge calls fn for every directed hull edge (u, v); iteration
// order is unspecified.
func (m *Mesh) EachHullEdge(fn func(u, v int)) {
	for k := range m.hull {
		fn(k[0], k[1])
	}
}

// NumTriangles returns the number of live triangles.
func (m *Mesh) NumTriangles() int { return len(m.tris) }

// NumPoints returns the number of vertices.
func (m *Mesh) NumPoints() int { return len(m.Pts) }

// Triangle returns the live triangle with the given ID, or nil.
func (m *Mesh) Triangle(id int) *Triangle { return m.tris[id] }

// Alive reports whether triangle id is live.
func (m *Mesh) Alive(id int) bool { _, ok := m.tris[id]; return ok }

// TriangleIDs returns the IDs of all live triangles (unspecified order).
func (m *Mesh) TriangleIDs() []int {
	out := make([]int, 0, len(m.tris))
	for id := range m.tris {
		out = append(out, id)
	}
	return out
}

// Corners returns the three corner points of triangle t.
func (m *Mesh) Corners(t *Triangle) (Point, Point, Point) {
	return m.Pts[t.V[0]], m.Pts[t.V[1]], m.Pts[t.V[2]]
}

// Locate returns the ID of a live triangle containing p, walking from
// the location hint and falling back to a linear scan. It returns -1 if
// p is outside the triangulation.
func (m *Mesh) Locate(p Point) int {
	if t, ok := m.tris[m.locHint]; ok {
		if id := m.walk(t, p, 4*len(m.tris)+64); id >= 0 {
			m.locHint = id
			return id
		}
	}
	for id, t := range m.tris {
		a, b, c := m.Corners(t)
		if InTriangle(p, a, b, c) {
			m.locHint = id
			return id
		}
	}
	return -1
}

// walk performs a straight visibility walk toward p with a step bound;
// it returns -1 if the walk escapes the hull or exceeds the bound.
func (m *Mesh) walk(t *Triangle, p Point, maxSteps int) int {
	for step := 0; step < maxSteps; step++ {
		moved := false
		for i := 0; i < 3; i++ {
			a := m.Pts[t.V[i]]
			b := m.Pts[t.V[(i+1)%3]]
			if Orient2D(a, b, p) < -1e-12 {
				nid := t.N[i]
				if nid < 0 {
					return -1
				}
				nt, ok := m.tris[nid]
				if !ok {
					return -1
				}
				t = nt
				moved = true
				break
			}
		}
		if !moved {
			return t.ID
		}
	}
	return -1
}

// Cavity returns the IDs of the triangles whose circumcircle contains p,
// grown by adjacency from the containing triangle start (Bowyer–Watson
// cavity). start must contain p.
func (m *Mesh) Cavity(start int, p Point) []int {
	t0, ok := m.tris[start]
	if !ok {
		panic(fmt.Sprintf("mesh: cavity start %d is dead", start))
	}
	in := map[int]bool{t0.ID: true}
	stack := []*Triangle{t0}
	var out []int
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, t.ID)
		for i := 0; i < 3; i++ {
			nid := t.N[i]
			if nid < 0 || in[nid] {
				continue
			}
			nt := m.tris[nid]
			a, b, c := m.Corners(nt)
			if InCircle(a, b, c, p) {
				in[nid] = true
				stack = append(stack, nt)
			}
		}
	}
	return out
}

// Insert adds point p to the triangulation with the Bowyer–Watson cavity
// algorithm and returns the index of the new vertex and the IDs of the
// newly created triangles. Inserting a point (numerically) coincident
// with an existing vertex is a no-op returning that vertex and no new
// triangles. It panics if p is outside the triangulation.
func (m *Mesh) Insert(p Point) (int, []int) {
	loc := m.Locate(p)
	if loc < 0 {
		panic(fmt.Sprintf("mesh: point %v outside triangulation", p))
	}
	t := m.tris[loc]
	for _, vi := range t.V {
		if p.Dist2(m.Pts[vi]) < 1e-24 {
			return vi, nil
		}
	}
	return m.InsertInCavity(p, m.Cavity(loc, p))
}

// InsertInCavity performs the retriangulation step given a precomputed
// cavity (used by the speculative refiner, which computed and locked the
// cavity earlier). The cavity must be the Bowyer–Watson cavity of p.
func (m *Mesh) InsertInCavity(p Point, cavity []int) (int, []int) {
	pIdx := len(m.Pts)
	m.Pts = append(m.Pts, p)

	inCavity := make(map[int]bool, len(cavity))
	for _, id := range cavity {
		inCavity[id] = true
	}

	// Boundary edges of the cavity, oriented CCW (cavity on the left).
	type bEdge struct {
		u, v  int // vertex indices
		outer int // neighbor triangle beyond the edge, or -1
	}
	var boundary []bEdge
	for _, id := range cavity {
		t := m.tris[id]
		if t == nil {
			panic(fmt.Sprintf("mesh: cavity triangle %d is dead", id))
		}
		for i := 0; i < 3; i++ {
			nid := t.N[i]
			if nid >= 0 && inCavity[nid] {
				continue
			}
			boundary = append(boundary, bEdge{u: t.V[i], v: t.V[(i+1)%3], outer: nid})
		}
	}

	// Remove the cavity (including its hull edges from the index).
	for _, id := range cavity {
		m.unindexHullEdges(m.tris[id])
		delete(m.tris, id)
	}

	// One new triangle per boundary edge; (u, v, p) is CCW because the
	// cavity is star-shaped around p. A boundary hull edge collinear
	// with p (p inserted ON the hull) would yield a degenerate triangle
	// and is skipped: the fan is then open and p becomes a hull vertex.
	created := make([]int, 0, len(boundary))
	byFirst := make(map[int]*Triangle, len(boundary))  // edge's first vertex -> triangle
	bySecond := make(map[int]*Triangle, len(boundary)) // edge's second vertex -> triangle
	for _, e := range boundary {
		a, b := m.Pts[e.u], m.Pts[e.v]
		if e.outer < 0 && Orient2D(a, b, p) <= 1e-12*(a.Dist2(b)+1) {
			continue // p lies on this hull edge: it splits in two hull edges
		}
		nt := m.newTriangle([3]int{e.u, e.v, pIdx})
		nt.N[0] = e.outer
		if e.outer >= 0 {
			// Rewire the outer triangle's pointer across exactly the
			// shared edge (it may border the cavity on several edges).
			ot := m.tris[e.outer]
			for i := 0; i < 3; i++ {
				if ot.V[i] == e.v && ot.V[(i+1)%3] == e.u {
					ot.N[i] = nt.ID
				}
			}
		}
		byFirst[e.u] = nt
		bySecond[e.v] = nt
		created = append(created, nt.ID)
	}
	if len(created) == 0 {
		panic("mesh: cavity produced no triangles")
	}
	// Wire the spokes: triangle over edge (u,v) has spoke edges (v,p)
	// and (p,u). Across (v,p) lies the triangle whose first vertex is
	// v; across (p,u) the one whose second vertex is u. Missing entries
	// mean the fan is open there (p on the hull) and the spoke is a
	// hull edge.
	for _, id := range created {
		t := m.tris[id]
		if next := byFirst[t.V[1]]; next != nil {
			t.N[1] = next.ID
		}
		if prev := bySecond[t.V[0]]; prev != nil {
			t.N[2] = prev.ID
		}
	}
	for _, id := range created {
		m.indexHullEdges(m.tris[id])
	}
	m.locHint = created[0]
	return pIdx, created
}

// CheckConsistency validates structural invariants: CCW orientation,
// symmetric adjacency, and edge-sharing agreement. Used by tests.
func (m *Mesh) CheckConsistency() error {
	for id, t := range m.tris {
		if t.ID != id {
			return fmt.Errorf("mesh: triangle %d has ID %d", id, t.ID)
		}
		a, b, c := m.Corners(t)
		if Orient2D(a, b, c) <= 0 {
			return fmt.Errorf("mesh: triangle %d not CCW", id)
		}
		for i := 0; i < 3; i++ {
			nid := t.N[i]
			if nid < 0 {
				continue
			}
			nt, ok := m.tris[nid]
			if !ok {
				return fmt.Errorf("mesh: triangle %d points to dead neighbor %d", id, nid)
			}
			// The neighbor must point back across the shared edge.
			u, v := t.V[i], t.V[(i+1)%3]
			found := false
			for j := 0; j < 3; j++ {
				if nt.V[j] == v && nt.V[(j+1)%3] == u {
					if nt.N[j] != id {
						return fmt.Errorf("mesh: asymmetric adjacency %d/%d", id, nid)
					}
					found = true
				}
			}
			if !found {
				return fmt.Errorf("mesh: triangles %d and %d do not share edge (%d,%d)", id, nid, u, v)
			}
		}
	}
	// Hull index must exactly match the -1 neighbor edges.
	want := 0
	for id, t := range m.tris {
		for i := 0; i < 3; i++ {
			if t.N[i] < 0 {
				want++
				owner, ok := m.hull[[2]int{t.V[i], t.V[(i+1)%3]}]
				if !ok || owner != id {
					return fmt.Errorf("mesh: hull index missing edge (%d,%d) of triangle %d",
						t.V[i], t.V[(i+1)%3], id)
				}
			}
		}
	}
	if want != len(m.hull) {
		return fmt.Errorf("mesh: hull index has %d edges, mesh has %d", len(m.hull), want)
	}
	return nil
}

// CheckDelaunay verifies the empty-circumcircle property against every
// vertex (brute force, O(T·V); test-only).
func (m *Mesh) CheckDelaunay() error {
	for id, t := range m.tris {
		a, b, c := m.Corners(t)
		for vi, p := range m.Pts {
			if vi == t.V[0] || vi == t.V[1] || vi == t.V[2] {
				continue
			}
			if InCircle(a, b, c, p) {
				return fmt.Errorf("mesh: vertex %d violates circumcircle of triangle %d", vi, id)
			}
		}
	}
	return nil
}

// TotalArea returns the summed area of all live triangles.
func (m *Mesh) TotalArea() float64 {
	total := 0.0
	for _, t := range m.tris {
		a, b, c := m.Corners(t)
		total += Area(a, b, c)
	}
	return total
}

// Bounds returns the bounding box of all vertices.
func (m *Mesh) Bounds() (lo, hi Point) {
	lo = Point{math.Inf(1), math.Inf(1)}
	hi = Point{math.Inf(-1), math.Inf(-1)}
	for _, p := range m.Pts {
		lo.X = math.Min(lo.X, p.X)
		lo.Y = math.Min(lo.Y, p.Y)
		hi.X = math.Max(hi.X, p.X)
		hi.Y = math.Max(hi.Y, p.Y)
	}
	return lo, hi
}
