package mesh

import (
	"math"
	"testing"
)

// FuzzMeshInsert drives Bowyer–Watson with arbitrary (possibly
// adversarial: near-duplicate, cocircular, boundary-hugging) points and
// asserts full structural consistency after each insertion.
func FuzzMeshInsert(f *testing.F) {
	f.Add([]byte{10, 20, 30, 40, 50, 60, 70, 80})
	f.Add([]byte{0, 0, 255, 255, 128, 128, 128, 129})
	f.Add([]byte{1, 1, 1, 2, 2, 1, 2, 2})
	f.Fuzz(func(t *testing.T, raw []byte) {
		m := NewSquare(0, 1)
		area0 := m.TotalArea()
		for i := 0; i+1 < len(raw) && i < 120; i += 2 {
			// Quantized coordinates maximize exact-duplicate and
			// cocircular collisions.
			p := Point{
				X: 0.05 + 0.9*float64(raw[i])/255,
				Y: 0.05 + 0.9*float64(raw[i+1])/255,
			}
			m.Insert(p)
			if err := m.CheckConsistency(); err != nil {
				t.Fatalf("after inserting %v: %v", p, err)
			}
		}
		if math.Abs(m.TotalArea()-area0) > 1e-9 {
			t.Fatalf("area drifted: %v", m.TotalArea())
		}
	})
}
