package mesh

import (
	"bufio"
	"fmt"
	"io"
)

// WriteSVG renders the triangulation as a standalone SVG document —
// the tangible artifact of a refinement run. Triangles violating q (if
// q is non-zero) are filled red; good triangles light gray. size is the
// output width/height in pixels.
func (m *Mesh) WriteSVG(w io.Writer, q Quality, size int) error {
	if size < 16 {
		size = 16
	}
	lo, hi := m.Bounds()
	span := hi.X - lo.X
	if s := hi.Y - lo.Y; s > span {
		span = s
	}
	if span <= 0 {
		span = 1
	}
	scale := float64(size) / span
	// SVG y grows downward; flip to keep the mesh upright.
	tx := func(p Point) (float64, float64) {
		return (p.X - lo.X) * scale, float64(size) - (p.Y-lo.Y)*scale
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		size, size, size, size); err != nil {
		return err
	}
	for _, id := range m.TriangleIDs() {
		t := m.Triangle(id)
		a, b, c := m.Corners(t)
		ax, ay := tx(a)
		bx, by := tx(b)
		cx, cy := tx(c)
		fill := "#e8e8e8"
		if (q.MaxArea > 0 || q.MinAngleDeg > 0) && q.IsBad(m, t) {
			fill = "#e05050"
		}
		if _, err := fmt.Fprintf(bw,
			`<polygon points="%.2f,%.2f %.2f,%.2f %.2f,%.2f" fill="%s" stroke="#404040" stroke-width="0.5"/>`+"\n",
			ax, ay, bx, by, cx, cy, fill); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw, `</svg>`); err != nil {
		return err
	}
	return bw.Flush()
}
