package mesh

import (
	"sync"

	"repro/internal/control"
	"repro/internal/speculation"
)

// SpeculativeRefiner runs Delaunay refinement on the optimistic runtime:
// each bad triangle is a speculative task whose conflict set is its
// insertion cavity — exactly the paper's §2 description ("two bad
// triangles can be processed in parallel, given that their cavities do
// not overlap"). Cavity overlap is detected through per-triangle
// abstract locks; losers abort, roll back, and retry in later rounds.
type SpeculativeRefiner struct {
	mu    sync.Mutex
	m     *Mesh
	q     Quality
	items map[int]*speculation.Item
	exec  *speculation.Executor

	Inserted int // points successfully inserted (commit actions)
	StaleOK  int // tasks that committed as no-ops (triangle gone/good)
}

// NewSpeculativeRefiner wraps mesh m (owned afterwards). pick selects
// pending-task indices (nil = LIFO; pass a seeded uniform picker for the
// model's random selection).
func NewSpeculativeRefiner(m *Mesh, q Quality, pick func(n int) int) *SpeculativeRefiner {
	r := &SpeculativeRefiner{
		m:     m,
		q:     q,
		items: make(map[int]*speculation.Item),
		exec:  speculation.NewExecutor(pick),
	}
	for _, id := range m.BadTriangles(q) {
		r.exec.Add(r.taskFor(id))
	}
	return r
}

// Executor exposes the underlying speculative executor.
func (r *SpeculativeRefiner) Executor() *speculation.Executor { return r.exec }

// Mesh exposes the mesh being refined.
func (r *SpeculativeRefiner) Mesh() *Mesh { return r.m }

// Pending returns the number of queued bad-triangle tasks.
func (r *SpeculativeRefiner) Pending() int { return r.exec.Pending() }

func (r *SpeculativeRefiner) itemFor(id int) *speculation.Item {
	if it, ok := r.items[id]; ok {
		return it
	}
	it := speculation.NewItem(int64(id))
	r.items[id] = it
	return it
}

// taskFor builds the speculative task refining triangle id, keyed by
// the triangle so the colored-mode learner can track it across retries.
func (r *SpeculativeRefiner) taskFor(id int) speculation.Task {
	return speculation.Keyed(int64(id), speculation.TaskFunc(func(ctx *speculation.Ctx) error {
		// Snapshot phase (round-consistent: mesh mutates only in
		// commit actions, which run after the round barrier).
		r.mu.Lock()
		t := r.m.Triangle(id)
		if t == nil || !r.q.IsBad(r.m, t) {
			r.mu.Unlock()
			r.noteStale()
			return nil // no-op commit: work item is stale
		}
		p, ok := r.m.RefinePointQ(t, r.q)
		if !ok {
			r.mu.Unlock()
			r.noteStale()
			return nil
		}
		loc := r.m.Locate(p)
		if loc < 0 {
			r.mu.Unlock()
			r.noteStale()
			return nil
		}
		cavity := r.m.Cavity(loc, p)
		locks := make([]*speculation.Item, 0, len(cavity)+1)
		locks = append(locks, r.itemFor(id))
		for _, cid := range cavity {
			if cid != id {
				locks = append(locks, r.itemFor(cid))
			}
		}
		r.mu.Unlock()

		// Conflict-detection phase: overlapping cavities race on the
		// shared triangle items; exactly one task wins each item.
		if err := ctx.AcquireAll(locks...); err != nil {
			return err
		}

		// Commit phase (serial): re-validate and apply the insertion on
		// the then-current mesh.
		ctx.OnCommit(func() { r.commitInsert(id) })
		return nil
	}))
}

func (r *SpeculativeRefiner) noteStale() {
	r.mu.Lock()
	r.StaleOK++
	r.mu.Unlock()
}

// commitInsert performs the actual refinement of triangle id, enqueuing
// any newly created bad triangles. It runs serially (commit actions).
func (r *SpeculativeRefiner) commitInsert(id int) {
	r.mu.Lock()
	t := r.m.Triangle(id)
	if t == nil || !r.q.IsBad(r.m, t) {
		r.StaleOK++
		r.mu.Unlock()
		return
	}
	p, ok := r.m.RefinePointQ(t, r.q)
	if !ok {
		r.mu.Unlock()
		return
	}
	loc := r.m.Locate(p)
	if loc < 0 {
		r.mu.Unlock()
		return
	}
	cavity := r.m.Cavity(loc, p)
	_, created := r.m.InsertInCavity(p, cavity)
	r.Inserted++
	// Drop the killed triangles' items to bound the lock table.
	for _, cid := range cavity {
		delete(r.items, cid)
	}
	var newBad []int
	for _, nid := range created {
		if nt := r.m.Triangle(nid); nt != nil && r.q.IsBad(r.m, nt) {
			newBad = append(newBad, nid)
		}
	}
	// A hull-midpoint split may leave the original triangle alive and
	// still bad: requeue it like the sequential refiner does.
	if ot := r.m.Triangle(id); ot != nil && r.q.IsBad(r.m, ot) {
		newBad = append(newBad, id)
	}
	r.mu.Unlock()
	for _, nid := range newBad {
		r.exec.Add(r.taskFor(nid))
	}
}

// Run drains the refinement under controller c, returning the adaptive
// trajectory. maxRounds caps the run.
func (r *SpeculativeRefiner) Run(c control.Controller, maxRounds int) *speculation.AdaptiveResult {
	return speculation.RunAdaptive(r.exec, c, maxRounds)
}
