// Package mesh implements 2D Delaunay triangulation (incremental
// Bowyer–Watson) and Delaunay mesh refinement — the paper's running
// example of an amorphous data-parallel algorithm (§2): bad triangles
// are processed in arbitrary order; processing replaces the triangle's
// cavity with new triangles; two bad triangles can be processed in
// parallel iff their cavities do not overlap.
//
// The package provides both a sequential refiner (used as the
// correctness oracle and for parallelism profiling) and a speculative
// adapter that runs refinement on the optimistic runtime with cavity
// overlap as the conflict relation.
package mesh

import "math"

// Point is a 2D point.
type Point struct {
	X, Y float64
}

// Sub returns p - q as a vector.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Dist2 returns the squared distance between p and q.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Orient2D returns a positive value if a, b, c make a counter-clockwise
// turn, negative for clockwise, and (near) zero for collinear points.
// The magnitude is twice the signed triangle area.
func Orient2D(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// InCircle reports whether point d lies strictly inside the circumcircle
// of the counter-clockwise triangle (a, b, c). Points on the circle
// (within floating-point tolerance) are treated as outside, which keeps
// Bowyer–Watson cavities minimal on near-degenerate input.
func InCircle(a, b, c, d Point) bool {
	adx, ady := a.X-d.X, a.Y-d.Y
	bdx, bdy := b.X-d.X, b.Y-d.Y
	cdx, cdy := c.X-d.X, c.Y-d.Y
	ad2 := adx*adx + ady*ady
	bd2 := bdx*bdx + bdy*bdy
	cd2 := cdx*cdx + cdy*cdy
	det := adx*(bdy*cd2-bd2*cdy) -
		ady*(bdx*cd2-bd2*cdx) +
		ad2*(bdx*cdy-bdy*cdx)
	// Scale-aware tolerance: the determinant grows with the 4th power
	// of coordinate magnitude.
	scale := math.Max(ad2, math.Max(bd2, cd2))
	return det > 1e-12*scale*scale
}

// Circumcenter returns the center of the circle through a, b, c. The
// caller must ensure the triangle is non-degenerate.
func Circumcenter(a, b, c Point) Point {
	d := 2 * Orient2D(a, b, c)
	a2 := a.X*a.X + a.Y*a.Y
	b2 := b.X*b.X + b.Y*b.Y
	c2 := c.X*c.X + c.Y*c.Y
	ux := (a2*(b.Y-c.Y) + b2*(c.Y-a.Y) + c2*(a.Y-b.Y)) / d
	uy := (a2*(c.X-b.X) + b2*(a.X-c.X) + c2*(b.X-a.X)) / d
	return Point{ux, uy}
}

// Area returns the (positive) area of triangle (a, b, c).
func Area(a, b, c Point) float64 { return math.Abs(Orient2D(a, b, c)) / 2 }

// MinAngle returns the smallest interior angle of triangle (a, b, c) in
// radians (0 for degenerate triangles).
func MinAngle(a, b, c Point) float64 {
	la := b.Dist2(c) // side opposite a
	lb := a.Dist2(c)
	lc := a.Dist2(b)
	min := math.Inf(1)
	for _, t := range [3][3]float64{{la, lb, lc}, {lb, la, lc}, {lc, la, lb}} {
		opp, s1, s2 := t[0], t[1], t[2]
		den := 2 * math.Sqrt(s1*s2)
		if den == 0 {
			return 0
		}
		cos := (s1 + s2 - opp) / den
		if cos > 1 {
			cos = 1
		}
		if cos < -1 {
			cos = -1
		}
		if ang := math.Acos(cos); ang < min {
			min = ang
		}
	}
	return min
}

// InTriangle reports whether p lies inside or on the boundary of the
// counter-clockwise triangle (a, b, c).
func InTriangle(p, a, b, c Point) bool {
	eps := -1e-12
	return Orient2D(a, b, p) >= eps && Orient2D(b, c, p) >= eps && Orient2D(c, a, p) >= eps
}
