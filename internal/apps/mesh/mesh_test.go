package mesh

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func randomPoints(r *rng.Rand, n int, lo, hi float64) []Point {
	pts := make([]Point, n)
	span := hi - lo
	for i := range pts {
		pts[i] = Point{lo + 0.01*span + 0.98*span*r.Float64(), lo + 0.01*span + 0.98*span*r.Float64()}
	}
	return pts
}

func TestNewSquare(t *testing.T) {
	m := NewSquare(0, 1)
	if m.NumTriangles() != 2 || m.NumPoints() != 4 {
		t.Fatalf("tris=%d pts=%d", m.NumTriangles(), m.NumPoints())
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.TotalArea()-1) > 1e-12 {
		t.Fatalf("area = %v", m.TotalArea())
	}
}

func TestNewSquareInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSquare(1, 1)
}

func TestInsertSinglePoint(t *testing.T) {
	m := NewSquare(0, 1)
	idx, created := m.Insert(Point{0.5, 0.5})
	if idx != 4 {
		t.Fatalf("vertex index %d", idx)
	}
	// Inserting at the center of the square kills both triangles
	// (circumcircles of the two halves pass through all corners) and
	// fans 4 new ones.
	if len(created) != 4 || m.NumTriangles() != 4 {
		t.Fatalf("created %d, live %d", len(created), m.NumTriangles())
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckDelaunay(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.TotalArea()-1) > 1e-12 {
		t.Fatalf("area leaked: %v", m.TotalArea())
	}
}

func TestIncrementalDelaunay(t *testing.T) {
	r := rng.New(1)
	m := NewSquare(0, 1)
	for i, p := range randomPoints(r, 120, 0, 1) {
		m.Insert(p)
		if i%20 == 19 {
			if err := m.CheckConsistency(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckDelaunay(); err != nil {
		t.Fatal(err)
	}
	// Euler: for a triangulated convex polygon with V vertices (4 hull)
	// T = 2V - 2 - hull = 2V - 6 for square hull of 4.
	wantT := 2*m.NumPoints() - 6
	if m.NumTriangles() != wantT {
		t.Fatalf("triangles = %d, want %d (V=%d)", m.NumTriangles(), wantT, m.NumPoints())
	}
	if math.Abs(m.TotalArea()-1) > 1e-9 {
		t.Fatalf("area = %v, want 1", m.TotalArea())
	}
}

func TestLocate(t *testing.T) {
	r := rng.New(2)
	m := NewSquare(0, 1)
	for _, p := range randomPoints(r, 60, 0, 1) {
		m.Insert(p)
	}
	for trial := 0; trial < 100; trial++ {
		p := Point{0.01 + 0.98*r.Float64(), 0.01 + 0.98*r.Float64()}
		id := m.Locate(p)
		if id < 0 {
			t.Fatalf("interior point %v not located", p)
		}
		tri := m.Triangle(id)
		a, b, c := m.Corners(tri)
		if !InTriangle(p, a, b, c) {
			t.Fatalf("Locate returned wrong triangle for %v", p)
		}
	}
	if m.Locate(Point{5, 5}) >= 0 {
		t.Fatal("exterior point located")
	}
}

func TestCavityContainsLocatedTriangle(t *testing.T) {
	r := rng.New(3)
	m := NewSquare(0, 1)
	for _, p := range randomPoints(r, 40, 0, 1) {
		m.Insert(p)
	}
	p := Point{0.37, 0.61}
	loc := m.Locate(p)
	cav := m.Cavity(loc, p)
	found := false
	for _, id := range cav {
		if id == loc {
			found = true
		}
		// All cavity triangles' circumcircles contain p (except
		// possibly the seed, included unconditionally).
		tri := m.Triangle(id)
		a, b, c := m.Corners(tri)
		if id != loc && !InCircle(a, b, c, p) {
			t.Fatalf("cavity triangle %d circumcircle does not contain p", id)
		}
	}
	if !found {
		t.Fatal("cavity excludes the containing triangle")
	}
}

func TestRefineAreaOnly(t *testing.T) {
	r := rng.New(4)
	m := NewSquare(0, 1)
	for _, p := range randomPoints(r, 30, 0, 1) {
		m.Insert(p)
	}
	q := Quality{MaxArea: 0.002}
	st := m.Refine(q, 0)
	if st.Inserted == 0 {
		t.Fatal("refinement inserted nothing")
	}
	if bad := m.BadTriangles(q); len(bad) != 0 {
		t.Fatalf("%d bad triangles remain", len(bad))
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckDelaunay(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.TotalArea()-1) > 1e-9 {
		t.Fatalf("area = %v", m.TotalArea())
	}
}

func TestRefineWithAngleCriterion(t *testing.T) {
	r := rng.New(5)
	m := NewSquare(0, 1)
	for _, p := range randomPoints(r, 20, 0, 1) {
		m.Insert(p)
	}
	// Conservative angle bound (20.7° is Chew's provable limit; we stay
	// below it) plus an insertion cap as a safety net.
	q := Quality{MinAngleDeg: 18, MaxArea: 0.01}
	st := m.Refine(q, 20000)
	if st.Inserted >= 20000 {
		t.Fatal("refinement hit the safety cap — likely diverging")
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	rem := m.BadTriangles(q)
	if len(rem) != 0 {
		t.Fatalf("%d bad triangles remain after refinement", len(rem))
	}
}

func TestRefineMaxInsertsCap(t *testing.T) {
	r := rng.New(6)
	m := NewSquare(0, 1)
	for _, p := range randomPoints(r, 10, 0, 1) {
		m.Insert(p)
	}
	st := m.Refine(Quality{MaxArea: 0.0001}, 5)
	if st.Inserted != 5 {
		t.Fatalf("cap ignored: inserted %d", st.Inserted)
	}
}

func TestBadTriangles(t *testing.T) {
	m := NewSquare(0, 1)
	// Both halves have area 0.5.
	if got := len(m.BadTriangles(Quality{MaxArea: 0.4})); got != 2 {
		t.Fatalf("bad = %d, want 2", got)
	}
	if got := len(m.BadTriangles(Quality{MaxArea: 0.6})); got != 0 {
		t.Fatalf("bad = %d, want 0", got)
	}
	// Right isoceles halves have min angle 45°.
	if got := len(m.BadTriangles(Quality{MinAngleDeg: 50})); got != 2 {
		t.Fatalf("bad by angle = %d, want 2", got)
	}
}

func TestRefinePointInsideDomain(t *testing.T) {
	r := rng.New(7)
	m := NewSquare(0, 1)
	for _, p := range randomPoints(r, 50, 0, 1) {
		m.Insert(p)
	}
	for _, id := range m.TriangleIDs() {
		tri := m.Triangle(id)
		p, ok := m.RefinePoint(tri)
		if !ok {
			continue
		}
		if m.Locate(p) < 0 {
			t.Fatalf("refine point %v for triangle %d not locatable", p, id)
		}
	}
}
