package mesh

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOrient2D(t *testing.T) {
	a, b, c := Point{0, 0}, Point{1, 0}, Point{0, 1}
	if Orient2D(a, b, c) <= 0 {
		t.Fatal("CCW triangle reported non-positive")
	}
	if Orient2D(a, c, b) >= 0 {
		t.Fatal("CW triangle reported non-negative")
	}
	if Orient2D(a, b, Point{2, 0}) != 0 {
		t.Fatal("collinear points reported non-zero")
	}
}

func TestInCircle(t *testing.T) {
	// Unit circle through (1,0), (0,1), (-1,0).
	a, b, c := Point{1, 0}, Point{0, 1}, Point{-1, 0}
	if !InCircle(a, b, c, Point{0, 0}) {
		t.Fatal("center not inside")
	}
	if InCircle(a, b, c, Point{2, 2}) {
		t.Fatal("far point inside")
	}
	if InCircle(a, b, c, Point{0, -1}) {
		t.Fatal("on-circle point must count as outside (eps rule)")
	}
}

func TestInCircleProperty(t *testing.T) {
	// A point strictly inside the triangle is always inside the
	// circumcircle.
	f := func(ax, ay, q1, q2, q3 float64) bool {
		norm := func(v float64) float64 { return math.Mod(math.Abs(v), 1) }
		a := Point{norm(ax), norm(ay)}
		b := Point{a.X + 1 + norm(q1), a.Y}
		c := Point{a.X + norm(q2), a.Y + 1 + norm(q3)}
		// Interior point: centroid.
		p := Point{(a.X + b.X + c.X) / 3, (a.Y + b.Y + c.Y) / 3}
		return InCircle(a, b, c, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCircumcenterEquidistant(t *testing.T) {
	f := func(bx, cy float64) bool {
		b := Point{1 + math.Mod(math.Abs(bx), 3), 0}
		c := Point{0, 1 + math.Mod(math.Abs(cy), 3)}
		a := Point{0, 0}
		cc := Circumcenter(a, b, c)
		da, db, dc := cc.Dist2(a), cc.Dist2(b), cc.Dist2(c)
		tol := 1e-9 * (1 + da)
		return math.Abs(da-db) < tol && math.Abs(da-dc) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestArea(t *testing.T) {
	if got := Area(Point{0, 0}, Point{2, 0}, Point{0, 2}); got != 2 {
		t.Fatalf("area = %v, want 2", got)
	}
	// Orientation-independent.
	if got := Area(Point{0, 0}, Point{0, 2}, Point{2, 0}); got != 2 {
		t.Fatalf("reversed area = %v", got)
	}
}

func TestMinAngle(t *testing.T) {
	// Equilateral: 60° everywhere.
	h := math.Sqrt(3) / 2
	got := MinAngle(Point{0, 0}, Point{1, 0}, Point{0.5, h})
	if math.Abs(got-math.Pi/3) > 1e-9 {
		t.Fatalf("equilateral min angle = %v rad", got)
	}
	// Right isoceles: 45°.
	got = MinAngle(Point{0, 0}, Point{1, 0}, Point{0, 1})
	if math.Abs(got-math.Pi/4) > 1e-9 {
		t.Fatalf("right isoceles min angle = %v rad", got)
	}
	// Degenerate.
	if MinAngle(Point{0, 0}, Point{1, 0}, Point{2, 0}) > 1e-6 {
		t.Fatal("collinear triangle should have ~0 min angle")
	}
}

func TestInTriangle(t *testing.T) {
	a, b, c := Point{0, 0}, Point{4, 0}, Point{0, 4}
	if !InTriangle(Point{1, 1}, a, b, c) {
		t.Fatal("interior point rejected")
	}
	if !InTriangle(Point{2, 0}, a, b, c) {
		t.Fatal("boundary point rejected")
	}
	if InTriangle(Point{3, 3}, a, b, c) {
		t.Fatal("exterior point accepted")
	}
}
