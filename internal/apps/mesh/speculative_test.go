package mesh

import (
	"math"
	"testing"

	"repro/internal/control"
	"repro/internal/rng"
)

func buildTestMesh(seed uint64, pts int) *Mesh {
	r := rng.New(seed)
	m := NewSquare(0, 1)
	for _, p := range randomPoints(r, pts, 0, 1) {
		m.Insert(p)
	}
	return m
}

func TestSpeculativeRefinerFixedM(t *testing.T) {
	m := buildTestMesh(1, 25)
	q := Quality{MaxArea: 0.003}
	r := rng.New(2)
	ref := NewSpeculativeRefiner(m, q, func(n int) int { return r.Intn(n) })
	rounds := 0
	for ref.Pending() > 0 {
		ref.Executor().Round(8)
		rounds++
		if rounds > 100000 {
			t.Fatal("refiner did not drain")
		}
	}
	if ref.Inserted == 0 {
		t.Fatal("nothing inserted")
	}
	if bad := m.BadTriangles(q); len(bad) != 0 {
		t.Fatalf("%d bad triangles remain", len(bad))
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckDelaunay(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.TotalArea()-1) > 1e-9 {
		t.Fatalf("area = %v", m.TotalArea())
	}
}

// The speculative refiner must produce a mesh equivalent in quality to
// the sequential refiner (not identical — insertion order differs — but
// fully refined and structurally sound).
func TestSpeculativeMatchesSequentialQuality(t *testing.T) {
	q := Quality{MaxArea: 0.005}

	seqMesh := buildTestMesh(3, 20)
	seqStats := seqMesh.Refine(q, 0)

	parMesh := buildTestMesh(3, 20)
	r := rng.New(4)
	ref := NewSpeculativeRefiner(parMesh, q, func(n int) int { return r.Intn(n) })
	ctrl := control.NewHybrid(control.DefaultHybridConfig(0.25))
	ref.Run(ctrl, 1000000)

	if len(parMesh.BadTriangles(q)) != 0 || len(seqMesh.BadTriangles(q)) != 0 {
		t.Fatal("refinement incomplete")
	}
	// Insertion counts should be in the same ballpark (within 2×).
	if ref.Inserted > 2*seqStats.Inserted+10 || seqStats.Inserted > 2*ref.Inserted+10 {
		t.Errorf("insertions diverge: sequential %d vs speculative %d",
			seqStats.Inserted, ref.Inserted)
	}
	if err := parMesh.CheckDelaunay(); err != nil {
		t.Fatal(err)
	}
}

func TestSpeculativeRefinerAdaptive(t *testing.T) {
	m := buildTestMesh(5, 30)
	q := Quality{MaxArea: 0.001}
	r := rng.New(6)
	ref := NewSpeculativeRefiner(m, q, func(n int) int { return r.Intn(n) })
	ctrl := control.NewHybrid(control.DefaultHybridConfig(0.25))
	res := ref.Run(ctrl, 1000000)
	if ref.Pending() != 0 {
		t.Fatal("did not drain")
	}
	if res.Rounds == 0 {
		t.Fatal("no rounds")
	}
	// Conflicts must actually occur at some point (cavities overlap).
	if ref.Executor().TotalAborted() == 0 {
		t.Error("no conflicts ever detected — cavity locking suspicious")
	}
	if len(m.BadTriangles(q)) != 0 {
		t.Fatal("bad triangles remain")
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestSpeculativeRefinerNoBadTriangles(t *testing.T) {
	m := NewSquare(0, 1)
	ref := NewSpeculativeRefiner(m, Quality{MaxArea: 10}, nil)
	if ref.Pending() != 0 {
		t.Fatal("phantom work")
	}
	res := ref.Run(control.Fixed{Procs: 4}, 10)
	if res.Rounds != 0 {
		t.Fatal("rounds on empty work-set")
	}
}
