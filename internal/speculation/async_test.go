package speculation

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/control"
	"repro/internal/graph"
	"repro/internal/rng"
)

// TestRunAsyncDrainsGraph: the barrier-free drive processes a conflict
// graph to completion with the same correctness invariants as rounds.
func TestRunAsyncDrainsGraph(t *testing.T) {
	r := rng.New(1)
	g := graph.RandomGNM(r, 400, 1600)
	wl := NewGraphWorkload(g)
	e := NewGraphExecutor(wl, r.Split())
	ctrl := control.NewHybrid(control.DefaultHybridConfig(0.3))
	res := e.RunAsync(context.Background(), ctrl, AsyncOptions{})
	if res.Canceled {
		t.Fatalf("drain reported canceled")
	}
	if e.Pending() != 0 {
		t.Fatalf("%d tasks pending after drain", e.Pending())
	}
	if wl.Graph().NumNodes() != 0 {
		t.Fatalf("%d nodes survive", wl.Graph().NumNodes())
	}
	if res.Committed != 400 || e.TotalCommitted() != 400 {
		t.Fatalf("committed %d (executor %d), want 400", res.Committed, e.TotalCommitted())
	}
	if res.Launched != res.Committed+res.Aborted+res.Failed {
		t.Fatalf("outcome accounting inconsistent: %+v", res)
	}
	if len(res.Trajectory) == 0 || res.Samples != len(res.Trajectory) {
		t.Fatalf("trajectory: %d samples, Samples=%d", len(res.Trajectory), res.Samples)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRunAsyncGoroutineLeak: workers and the watcher all exit once the
// drive returns — repeated drives do not accumulate goroutines.
func TestRunAsyncGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		r := rng.New(uint64(i + 1))
		g := graph.RandomGNM(r, 150, 500)
		wl := NewGraphWorkload(g)
		e := NewGraphExecutor(wl, r.Split())
		e.RunAsync(context.Background(), control.NewHybrid(control.DefaultHybridConfig(0.3)), AsyncOptions{})
		e.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunAsyncCancel: cancellation at the in-flight semaphore stops
// new launches promptly; in-flight tasks settle, nothing is lost, and
// the run reports Canceled.
func TestRunAsyncCancel(t *testing.T) {
	e := NewExecutor(nil)
	var started atomic.Int64
	release := make(chan struct{})
	const n = 200
	for i := 0; i < n; i++ {
		e.Add(TaskFunc(func(ctx *Ctx) error {
			started.Add(1)
			<-release
			return nil
		}))
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan *AsyncResult, 1)
	go func() {
		done <- e.RunAsync(ctx, control.Fixed{Procs: 4}, AsyncOptions{})
	}()
	for started.Load() < 4 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	// With all 4 slots occupied by blocked tasks, no new launch can
	// happen until one of them settles — give the watcher time to stop
	// the run first, then unblock them.
	time.Sleep(200 * time.Millisecond)
	close(release)
	var res *AsyncResult
	select {
	case res = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("RunAsync did not return after cancel")
	}
	if !res.Canceled {
		t.Fatalf("Canceled=false after context cancellation")
	}
	if got := started.Load(); got != 4 {
		t.Fatalf("%d tasks started, want exactly the 4 in flight at cancel", got)
	}
	// Accounting: every submitted task is either committed or pending.
	if res.Committed+int64(e.Pending()) != n {
		t.Fatalf("lost tasks: committed %d + pending %d != %d",
			res.Committed, e.Pending(), n)
	}
}

// TestRunAsyncMaxCommits: the drive stops at the commit bound and
// leaves the remainder pending.
func TestRunAsyncMaxCommits(t *testing.T) {
	e := NewExecutor(nil)
	for i := 0; i < 500; i++ {
		e.Add(TaskFunc(func(ctx *Ctx) error { return nil }))
	}
	res := e.RunAsync(context.Background(), control.Fixed{Procs: 8},
		AsyncOptions{MaxCommits: 100})
	if res.Canceled {
		t.Fatalf("bounded stop reported canceled")
	}
	// In-flight tasks settle after the bound trips, so allow the
	// in-flight overshoot but no more.
	if res.Committed < 100 || res.Committed > 100+8 {
		t.Fatalf("committed %d, want 100..108", res.Committed)
	}
	if res.Committed+int64(e.Pending()) != 500 {
		t.Fatalf("lost tasks: %d committed, %d pending", res.Committed, e.Pending())
	}
}

// TestRunAsyncLimitRespected: the resizable semaphore never admits
// more than the controller's m tasks concurrently.
func TestRunAsyncLimitRespected(t *testing.T) {
	e := NewExecutor(nil)
	var cur, peak atomic.Int64
	for i := 0; i < 300; i++ {
		e.Add(TaskFunc(func(ctx *Ctx) error {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(50 * time.Microsecond)
			cur.Add(-1)
			return nil
		}))
	}
	const m = 5
	e.RunAsync(context.Background(), control.Fixed{Procs: m}, AsyncOptions{})
	if p := peak.Load(); p > m {
		t.Fatalf("observed %d concurrent tasks, limit %d", p, m)
	}
}

// TestRunAsyncQuarantineExcluded: failures and poisoned tasks never
// reach the windowed conflict-ratio estimator — a workload that only
// commits or fails must report r = 0 in every sample.
func TestRunAsyncQuarantineExcluded(t *testing.T) {
	e := NewExecutor(nil)
	e.TaskRetries = 2
	boom := errors.New("injected failure")
	const bad, good = 40, 400
	for i := 0; i < bad; i++ {
		e.Add(TaskFunc(func(ctx *Ctx) error { return boom }))
	}
	for i := 0; i < good; i++ {
		e.Add(TaskFunc(func(ctx *Ctx) error { return nil }))
	}
	res := e.RunAsync(context.Background(), control.Fixed{Procs: 4},
		AsyncOptions{Window: 16})
	for _, s := range res.Trajectory {
		if s.R != 0 {
			t.Fatalf("sample %d: r=%v from failures (want 0): %+v", s.Sample, s.R, s)
		}
	}
	if res.Poisoned != bad {
		t.Fatalf("poisoned %d, want %d", res.Poisoned, bad)
	}
	if res.Failed != bad*3 {
		// TaskRetries=2 → budget 2 → 3 failed attempts per poisoned task.
		t.Fatalf("failed attempts %d, want %d", res.Failed, bad*3)
	}
	if got := len(e.PoisonedTasks()); got != bad {
		t.Fatalf("quarantine holds %d records, want %d", got, bad)
	}
	if res.Committed != good || e.Pending() != 0 {
		t.Fatalf("committed %d pending %d, want %d/0", res.Committed, e.Pending(), good)
	}
}

// TestRunAsyncSampleOrdering: OnSample sees samples in index order
// with a non-decreasing absolute commit counter, and matches the
// trajectory exactly.
func TestRunAsyncSampleOrdering(t *testing.T) {
	r := rng.New(3)
	g := graph.RandomGNM(r, 300, 900)
	wl := NewGraphWorkload(g)
	e := NewGraphExecutor(wl, r.Split())
	var seen []AsyncSample
	res := e.RunAsync(context.Background(),
		control.NewHybrid(control.DefaultHybridConfig(0.3)),
		AsyncOptions{OnSample: func(s AsyncSample) { seen = append(seen, s) }})
	if len(seen) != len(res.Trajectory) {
		t.Fatalf("OnSample saw %d samples, trajectory has %d", len(seen), len(res.Trajectory))
	}
	var lastCommits int64
	for i, s := range seen {
		if s.Sample != i {
			t.Fatalf("sample %d delivered at position %d", s.Sample, i)
		}
		if s.TotalCommitted < lastCommits {
			t.Fatalf("TotalCommitted went backwards: %d after %d", s.TotalCommitted, lastCommits)
		}
		lastCommits = s.TotalCommitted
		if s.M < 1 {
			t.Fatalf("sample %d: m=%d", i, s.M)
		}
	}
	if lastCommits > res.Committed {
		t.Fatalf("trajectory commits %d exceed total %d", lastCommits, res.Committed)
	}
}

// TestRunAsyncSpawn: commit-time spawns enter the work-set and run.
func TestRunAsyncSpawn(t *testing.T) {
	e := NewExecutor(nil)
	var leaves atomic.Int64
	var mk func(depth int) Task
	mk = func(depth int) Task {
		return TaskFunc(func(ctx *Ctx) error {
			if depth == 0 {
				leaves.Add(1)
				return nil
			}
			ctx.Spawn(mk(depth - 1))
			ctx.Spawn(mk(depth - 1))
			return nil
		})
	}
	e.Add(mk(5))
	res := e.RunAsync(context.Background(), control.Fixed{Procs: 4}, AsyncOptions{})
	if leaves.Load() != 32 {
		t.Fatalf("%d leaves ran, want 32", leaves.Load())
	}
	if res.Spawned != 62 {
		t.Fatalf("spawned %d, want 62", res.Spawned)
	}
	if e.Pending() != 0 {
		t.Fatalf("%d pending after spawn drain", e.Pending())
	}
}
