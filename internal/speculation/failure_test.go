package speculation

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestPanicIsolationRollsBack proves a panicking task is a failure, not
// a crash: its undo log runs, its locks are released the same round, and
// neighbors can commit.
func TestPanicIsolationRollsBack(t *testing.T) {
	for _, par := range []int{0, 4} {
		t.Run(fmt.Sprintf("parallel=%d", par), func(t *testing.T) {
			e := NewExecutor(nil)
			e.MaxParallel = par
			defer e.Close()

			it := NewItem(1)
			var undone atomic.Int64
			e.Add(TaskFunc(func(ctx *Ctx) error {
				if err := ctx.Acquire(it); err != nil {
					return err
				}
				ctx.LogUndo(func() { undone.Add(1) })
				panic("operator bug")
			}))
			st := e.Round(1)
			if st.Failed != 1 {
				t.Fatalf("stats %+v, want Failed=1", st)
			}
			if undone.Load() != 1 {
				t.Fatalf("undo ran %d times, want 1", undone.Load())
			}
			if it.Owner() != noOwner {
				t.Fatalf("item still owned by %d after panic", it.Owner())
			}
			// A clean task can immediately take the lock the panicker held.
			e.Add(TaskFunc(func(ctx *Ctx) error { return ctx.Acquire(it) }))
			if st := e.Round(2); st.Committed != 1 {
				t.Fatalf("follow-up round %+v, want one commit", st)
			}
		})
	}
}

// TestRetryBudgetRecovery: a task that fails transiently (fewer times
// than the budget) must eventually commit, and its failure record must
// be forgotten (no poisoning).
func TestRetryBudgetRecovery(t *testing.T) {
	e := NewExecutor(nil)
	e.TaskRetries = 3
	var attempts atomic.Int64
	e.Add(TaskFunc(func(ctx *Ctx) error {
		if attempts.Add(1) <= 2 {
			return errors.New("transient")
		}
		return nil
	}))
	for e.Pending() > 0 {
		e.Round(1)
	}
	if e.TotalCommitted() != 1 || e.TotalPoisoned() != 0 {
		t.Fatalf("committed=%d poisoned=%d, want 1/0",
			e.TotalCommitted(), e.TotalPoisoned())
	}
	if e.TotalFailed() != 2 {
		t.Fatalf("TotalFailed = %d, want 2", e.TotalFailed())
	}
	if len(e.failures) != 0 {
		t.Fatalf("failure map not cleaned after recovery: %v", e.failures)
	}
}

// TestNoRetriesPoisonsImmediately: TaskRetries < 0 disables retries.
func TestNoRetriesPoisonsImmediately(t *testing.T) {
	e := NewExecutor(nil)
	e.TaskRetries = -1
	e.Add(TaskFunc(func(ctx *Ctx) error { panic("boom") }))
	st := e.Round(1)
	if st.Failed != 1 || st.Poisoned != 1 {
		t.Fatalf("stats %+v, want Failed=1 Poisoned=1", st)
	}
	if e.Pending() != 0 {
		t.Fatalf("poisoned task still pending")
	}
	var pe *PanicError
	recs := e.PoisonedTasks()
	if len(recs) != 1 {
		t.Fatalf("records %+v", recs)
	}
	// The record's message carries the panic value.
	if want := "boom"; !contains(recs[0].Err, want) {
		t.Fatalf("record err %q missing %q", recs[0].Err, want)
	}
	_ = pe
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestFailuresExcludedFromConflictRatio: the controller signal must not
// be polluted by injected failures.
func TestFailuresExcludedFromConflictRatio(t *testing.T) {
	st := RoundStats{Launched: 10, Committed: 5, Aborted: 2, Failed: 3}
	if got := st.ConflictRatio(); got != 0.2 {
		t.Fatalf("ConflictRatio = %v, want 0.2 (failures excluded)", got)
	}
	ost := OrderedRoundStats{Launched: 10, Committed: 5, Conflicts: 2, Failed: 3}
	if got := ost.ConflictRatio(); got != 0.2 {
		t.Fatalf("ordered ConflictRatio = %v, want 0.2", got)
	}
}

// TestSnapshotBalancesWithFailures: Launched = Committed + Aborted +
// Failed, and Poisoned counts the quarantine.
func TestSnapshotBalancesWithFailures(t *testing.T) {
	e := NewExecutor(nil)
	e.TaskRetries = 1
	for i := 0; i < 8; i++ {
		e.Add(TaskFunc(func(ctx *Ctx) error { return nil }))
	}
	e.Add(TaskFunc(func(ctx *Ctx) error { return errors.New("always fails") }))
	for e.Pending() > 0 {
		e.Round(4)
	}
	s := e.Snapshot()
	if s.Launched != s.Committed+s.Aborted+s.Failed {
		t.Fatalf("unbalanced snapshot %+v", s)
	}
	if s.Poisoned != 1 || s.Failed != 2 { // 1 initial failure + 1 retry
		t.Fatalf("snapshot %+v, want Poisoned=1 Failed=2", s)
	}
}

// orderedFailTask is an ordered task failing its first n attempts.
type orderedFailTask struct {
	key      Key
	failures int
	attempts atomic.Int64
	mode     string // "panic" or "error"
	claims   []*Item
}

func (t *orderedFailTask) Key() Key { return t.key }
func (t *orderedFailTask) Run(ctx *OrderedCtx) error {
	ctx.Claim(t.claims...)
	if t.attempts.Add(1) <= int64(t.failures) {
		if t.mode == "panic" {
			panic(fmt.Sprintf("ordered boom at %v", t.key))
		}
		return errors.New("ordered transient")
	}
	return nil
}

// TestOrderedFailureFlow: the ordered executor shares the unordered
// taxonomy — panics retry on budget, commit prefix stays safe, and
// exhausted tasks are quarantined instead of panicking the executor.
func TestOrderedFailureFlow(t *testing.T) {
	e := NewOrderedExecutor()
	e.TaskRetries = 2
	defer e.Close()

	it := NewItem(7)
	flaky := &orderedFailTask{key: Key{Time: 1}, failures: 2, mode: "panic", claims: []*Item{it}}
	clean := &orderedFailTask{key: Key{Time: 2}}
	e.Add(flaky)
	e.Add(clean)

	// Round 1: flaky fails, prefix stops → clean is premature-requeued.
	st := e.Round(2)
	if st.Failed != 1 || st.Committed != 0 || st.Premature != 1 {
		t.Fatalf("round 1 stats %+v", st)
	}
	for e.Pending() > 0 {
		e.Round(2)
	}
	if e.TotalCommitted() != 2 {
		t.Fatalf("committed %d, want 2 (flaky recovered)", e.TotalCommitted())
	}
	if e.TotalPoisoned() != 0 {
		t.Fatalf("poisoned %d, want 0", e.TotalPoisoned())
	}
	if e.TotalFailed() != 2 {
		t.Fatalf("failed %d, want 2", e.TotalFailed())
	}
}

// TestOrderedPoisoning: a task that always fails exhausts the budget
// and is dropped from the heap, letting the rest of the workload drain.
func TestOrderedPoisoning(t *testing.T) {
	e := NewOrderedExecutor()
	e.TaskRetries = 1
	defer e.Close()

	bad := &orderedFailTask{key: Key{Time: 1}, failures: 1 << 30, mode: "error"}
	good := &orderedFailTask{key: Key{Time: 2}}
	e.Add(bad)
	e.Add(good)
	for i := 0; i < 20 && e.Pending() > 0; i++ {
		e.Round(2)
	}
	if e.Pending() != 0 {
		t.Fatalf("heap not drained: %d pending", e.Pending())
	}
	if e.TotalCommitted() != 1 || e.TotalPoisoned() != 1 {
		t.Fatalf("committed=%d poisoned=%d, want 1/1",
			e.TotalCommitted(), e.TotalPoisoned())
	}
	recs := e.PoisonedTasks()
	if len(recs) != 1 || recs[0].Handle != -1 || recs[0].Attempts != 2 {
		t.Fatalf("records %+v", recs)
	}
}

// TestWrapTaskInterceptsAddsAndSpawns: the injection hook sees every
// task entering the work-set, including commit-time spawns.
func TestWrapTaskInterceptsAddsAndSpawns(t *testing.T) {
	e := NewExecutor(nil)
	var wrapped atomic.Int64
	e.WrapTask = func(t Task) Task {
		wrapped.Add(1)
		return t
	}
	e.Add(TaskFunc(func(ctx *Ctx) error {
		ctx.Spawn(TaskFunc(func(*Ctx) error { return nil }))
		return nil
	}))
	for e.Pending() > 0 {
		e.Round(1)
	}
	if wrapped.Load() != 2 {
		t.Fatalf("wrapper saw %d tasks, want 2 (add + spawn)", wrapped.Load())
	}
}
