package speculation

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"repro/internal/control"
	"repro/internal/graph"
)

// Colored execution: the hybrid speculative→colored mode.
//
// The paper's controller *reacts* to conflicts — it tunes m so the
// measured abort ratio tracks ρ, but every conflict still costs an
// abort, a rollback, and the lock traffic that detected it. On
// workloads whose conflict structure is stable round over round, that
// is money left on the table: once the conflict graph is known, a
// proper coloring of it partitions the tasks into classes that are
// pairwise conflict-free *by construction*, and a class can run with no
// item locks, no undo logs, and no abort path at all.
//
// RunColored phases:
//
//	learn   — ordinary optimistic rounds (controller-governed); the
//	          executor feeds committed footprints to a ConflictRecorder.
//	color   — when the edge set has been quiet for StableRounds rounds,
//	          snapshot it to a CSR and color it (graph.ColorCSR).
//	execute — colored super-rounds: drain the work-set, group tasks by
//	          their key's color, and run whole classes barrier-to-
//	          barrier with lock-free contexts; commit actions run
//	          serially at each class barrier.
//
// Staleness: the coloring is only as good as the learned graph, so
// colored rounds are verified post-hoc. Two grades of trip exist:
//
//   - *soft* — the graph is incomplete but not contradicted: a pending
//     or spawned task whose key was never learned (new work, unknown
//     edges), or two live tasks sharing one key (the coloring cannot
//     separate them). The coloring is dropped but the recorder keeps
//     everything learned; the missing keys commit speculatively, extend
//     the graph, and a later (complete) snapshot is re-colored.
//   - *hard* — an observation contradicted the learned graph: a
//     committed task touched an item outside its learned footprint
//     (growth; a subset is fine), or an operator raised ErrConflict
//     inside a supposedly conflict-free class. The recorder is reset
//     and a fresh learning epoch starts.
//
// Fallback requeues the affected work untouched; since colored commits
// only ever ran tasks whose footprints were within the learned
// independent classes, no committed state is ever wrong — staleness
// costs throughput, never correctness. The speculative→colored
// transition additionally requires every pending task's key to be in
// the snapshot, so a coloring is never attempted on a knowingly
// incomplete graph.
//
// Controller interaction: colored rounds never call ctrl.Observe — the
// controller's r̄ reflects speculative rounds only, so Algorithm 1
// resumes governing m the moment a fallback returns the executor to
// speculation (see control.Controller).

// ColoredOptions configures Executor.RunColored. The zero value is
// ready: defaults from conflict.go apply and the drive runs to drain.
type ColoredOptions struct {
	// StableRounds is how many consecutive committing rounds must add no
	// new conflict observation before the graph is colored (default
	// DefaultStableRounds).
	StableRounds int
	// MaxItems / MaxKeysPerItem bound the conflict recorder (defaults
	// DefaultRecorderMaxItems / DefaultRecorderMaxKeysPerItem). On
	// overflow the job stays speculative — degraded, never wrong.
	MaxItems       int
	MaxKeysPerItem int
	// MaxRounds caps the total number of rounds (speculative and
	// colored); 0 means unbounded.
	MaxRounds int
	// MaxCommits stops the drive once at least this many tasks have
	// committed (checked at round boundaries); 0 means run to drain.
	MaxCommits int64
	// OnRound, when non-nil, observes every round (both phases) from the
	// driving goroutine.
	OnRound func(ColoredRound)
}

// ColoredRound reports one round of a colored drive.
type ColoredRound struct {
	Round    int  // 0-based round index within the drive
	Colored  bool // false: speculative (learning) round, true: colored
	M        int  // speculative: controller's m; colored: tasks launched
	Launched int
	Committed int
	Aborted  int
	Failed   int
	Poisoned int
	Spawned  int
	R        float64 // conflict ratio of this round (~0 when colored)
	Colors   int     // number of color classes (colored rounds only)
	Fallback bool    // this round tripped the staleness detector
}

// ColoredResult aggregates a colored drive.
type ColoredResult struct {
	Rounds        int // total rounds driven
	SpecRounds    int // speculative (learning) rounds
	ColoredRounds int // colored super-rounds
	Colorings     int // speculative→colored transitions (snapshots colored)
	Fallbacks     int // colored→speculative transitions (staleness trips)
	Colors        int // color count of the most recent coloring

	Launched  int64
	Committed int64
	Aborted   int64
	Failed    int64
	Poisoned  int64
	Spawned   int64

	// ColoredCommits / ColoredAborts split out the colored-phase share:
	// in steady state ColoredAborts is 0 — the acceptance signal that
	// colored rounds run conflict-free.
	ColoredCommits int64
	ColoredAborts  int64

	Canceled bool // the context was canceled before drain
	Degraded bool // recorder gave up (unkeyed task or overflow)
}

// ConflictRatio returns the drive-wide aborts/launches.
func (r *ColoredResult) ConflictRatio() float64 {
	if r.Launched == 0 {
		return 0
	}
	return float64(r.Aborted) / float64(r.Launched)
}

// ColoredConflictRatio returns aborts/launches over colored rounds only
// (~0 unless a staleness trip aborted work mid-class).
func (r *ColoredResult) ColoredConflictRatio() float64 {
	launched := r.ColoredCommits + r.ColoredAborts
	if launched == 0 {
		return 0
	}
	return float64(r.ColoredAborts) / float64(launched)
}

// staleness grades a colored round's verification outcome.
type staleness int

const (
	staleNone staleness = iota
	staleSoft            // graph incomplete: drop the coloring, keep learning
	staleHard            // graph contradicted: reset the recorder entirely
)

// coloredState holds the reusable buffers of the colored super-round so
// the steady state allocates nothing.
type coloredState struct {
	colors    []int32   // dense key index -> color
	handles   []int64   // super-round drain buffer
	keyIdx    []int32   // round index -> dense key index
	classes   [][]int32 // color -> round indices
	seen      []uint64  // epoch marks per dense key (duplicate detection)
	seenEpoch uint64

	requeue  []int64
	spawnIDs []int64
	poison   []int64
	actions  []func()
}

// prepare sizes the state for a fresh coloring.
func (cs *coloredState) prepare(lg *LearnedGraph, numColors int) {
	for len(cs.classes) < numColors {
		cs.classes = append(cs.classes, nil)
	}
	cs.classes = cs.classes[:numColors]
	if len(cs.seen) < lg.NumKeys() {
		cs.seen = make([]uint64, lg.NumKeys())
		cs.seenEpoch = 0
	}
}

// RunColored drives the executor in hybrid speculative→colored mode
// until the work-set drains (or a bound/cancellation stops it). Must be
// called from one goroutine at a time, like Round. The controller
// governs the speculative phases exactly as in RunAdaptive; colored
// rounds are invisible to it.
func (e *Executor) RunColored(ctx context.Context, ctrl control.Controller, opts ColoredOptions) *ColoredResult {
	if opts.StableRounds <= 0 {
		opts.StableRounds = DefaultStableRounds
	}
	rec := NewConflictRecorder(opts.MaxItems, opts.MaxKeysPerItem)
	e.rec = rec
	defer func() { e.rec = nil }()

	res := &ColoredResult{}
	var cs coloredState
	var lg *LearnedGraph

	for {
		if ctx != nil && ctx.Err() != nil {
			res.Canceled = true
			break
		}
		if e.Pending() == 0 {
			break
		}
		if opts.MaxRounds > 0 && res.Rounds >= opts.MaxRounds {
			break
		}
		if opts.MaxCommits > 0 && res.Committed >= opts.MaxCommits {
			break
		}

		if lg == nil {
			// Speculative (learning) round under the controller.
			m := ctrl.M()
			st := e.Round(m)
			ctrl.Observe(st.ConflictRatio())
			res.SpecRounds++
			res.fold(st)
			emit(opts.OnRound, ColoredRound{
				Round: res.Rounds, M: m,
				Launched: st.Launched, Committed: st.Committed,
				Aborted: st.Aborted, Failed: st.Failed,
				Poisoned: st.Poisoned, Spawned: st.Spawned,
				R: st.ConflictRatio(),
			})
			res.Rounds++
			if rec.Degraded() {
				res.Degraded = true
			} else if rec.Stable(opts.StableRounds) && e.Pending() > 0 {
				if lg = rec.Snapshot(); lg != nil {
					if !e.pendingCovered(lg, &cs) {
						// Quiet but incomplete: some pending task has
						// never committed, so its edges are unknown.
						// Keep learning until a snapshot can cover the
						// whole work-set.
						lg = nil
						rec.Unsettle()
					} else {
						workers := e.MaxParallel
						if workers <= 0 {
							workers = runtime.GOMAXPROCS(0)
						}
						cs.colors, res.Colors = graph.ColorCSR(lg.CSR(), cs.colors, workers)
						cs.prepare(lg, res.Colors)
						res.Colorings++
					}
				}
			}
			continue
		}

		// Colored super-round (not observed by the controller).
		st, stale := e.coloredRound(lg, &cs)
		res.ColoredRounds++
		res.fold(st)
		res.ColoredCommits += int64(st.Committed)
		res.ColoredAborts += int64(st.Aborted)
		emit(opts.OnRound, ColoredRound{
			Round: res.Rounds, Colored: true, M: st.Launched,
			Launched: st.Launched, Committed: st.Committed,
			Aborted: st.Aborted, Failed: st.Failed,
			Poisoned: st.Poisoned, Spawned: st.Spawned,
			R: st.ConflictRatio(), Colors: res.Colors, Fallback: stale != staleNone,
		})
		res.Rounds++
		if stale != staleNone {
			res.Fallbacks++
			lg = nil
			if stale == staleHard {
				rec.Reset()
			} else {
				rec.Unsettle()
			}
		}
	}
	return res
}

// pendingCovered reports whether every pending task is keyed and its
// key appears in the snapshot with no key shared by two live tasks —
// the precondition for the speculative→colored transition. The pending
// set is inspected by draining and requeueing it (cheap relative to a
// snapshot, and transitions are rare).
func (e *Executor) pendingCovered(lg *LearnedGraph, cs *coloredState) bool {
	cs.handles = e.drainPending(cs.handles[:0])
	n := len(cs.handles)
	if n == 0 {
		return true
	}
	e.scratch.grow(n)
	e.tasks.loadBatch(cs.handles, e.scratch.tasks, &e.buckets)
	live := make(map[int64]struct{}, n)
	ok := true
	for i := 0; i < n && ok; i++ {
		kt, keyed := e.scratch.tasks[i].(ConflictKeyed)
		if !keyed {
			ok = false
			break
		}
		key := kt.ConflictKey()
		if _, dup := live[key]; dup || lg.KeyIndex(key) < 0 {
			ok = false
			break
		}
		live[key] = struct{}{}
	}
	e.requeueAll(cs.handles)
	return ok
}

func (r *ColoredResult) fold(st RoundStats) {
	r.Launched += int64(st.Launched)
	r.Committed += int64(st.Committed)
	r.Aborted += int64(st.Aborted)
	r.Failed += int64(st.Failed)
	r.Poisoned += int64(st.Poisoned)
	r.Spawned += int64(st.Spawned)
}

func emit(fn func(ColoredRound), cr ColoredRound) {
	if fn != nil {
		fn(cr)
	}
}

// drainPending moves every pending handle into buf (appending, so the
// caller's capacity is reused) — the colored super-round takes the
// whole work-set, not a controller-sized batch.
func (e *Executor) drainPending(buf []int64) []int64 {
	if e.ws != nil {
		for {
			k := e.ws.Len()
			if k == 0 {
				return buf
			}
			hs := e.ws.Take(k)
			if len(hs) == 0 {
				return buf
			}
			buf = append(buf, hs...)
		}
	}
	e.mu.Lock()
	buf = append(buf, e.pending...)
	e.pending = e.pending[:0]
	e.mu.Unlock()
	return buf
}

// coloredRound executes one colored super-round: drain, group by color,
// run each class barrier-to-barrier with lock-free contexts, verify
// footprints, and settle. Returns the round's stats plus the staleness
// grade (non-none means the caller must fall back to speculation; all
// unfinished work has been requeued).
func (e *Executor) coloredRound(lg *LearnedGraph, cs *coloredState) (RoundStats, staleness) {
	cs.handles = e.drainPending(cs.handles[:0])
	n := len(cs.handles)
	if n == 0 {
		return RoundStats{}, staleNone
	}
	e.scratch.grow(n)
	tasks, ctxs, errs := e.scratch.tasks, e.scratch.ctxs, e.scratch.errs
	e.tasks.loadBatch(cs.handles, tasks, &e.buckets)

	// Group the batch into color classes, checking the preconditions the
	// coloring relies on: every task keyed, every key learned, at most
	// one live task per key.
	if cap(cs.keyIdx) < n {
		cs.keyIdx = make([]int32, n)
	} else {
		cs.keyIdx = cs.keyIdx[:n]
	}
	for i := range cs.classes {
		cs.classes[i] = cs.classes[i][:0]
	}
	cs.seenEpoch++
	for i := 0; i < n; i++ {
		kt, ok := tasks[i].(ConflictKeyed)
		if !ok {
			e.requeueAll(cs.handles)
			return RoundStats{}, staleSoft
		}
		idx := lg.KeyIndex(kt.ConflictKey())
		if idx < 0 || cs.seen[idx] == cs.seenEpoch {
			e.requeueAll(cs.handles)
			return RoundStats{}, staleSoft
		}
		cs.seen[idx] = cs.seenEpoch
		cs.keyIdx[i] = idx
		c := cs.colors[idx]
		cs.classes[c] = append(cs.classes[c], int32(i))
	}

	stats := RoundStats{}
	stale := staleNone
	budget := e.retryBudget()
	wrap := e.WrapTask
	idBase := e.nextID.Add(int64(n)) - int64(n)
	var pool *workerPool
	if e.MaxParallel > 0 {
		pool = e.ensurePool(e.MaxParallel)
	}
	cs.requeue = cs.requeue[:0]
	cs.spawnIDs = cs.spawnIDs[:0]
	cs.poison = cs.poison[:0]

	for _, class := range cs.classes {
		if len(class) == 0 {
			continue
		}
		class := class
		run := func(j int) {
			i := class[j]
			ctx := ctxs[i]
			ctx.id = idBase + int64(i)
			ctx.colored = true
			err := runGuarded(tasks[i], ctx)
			if err != nil {
				// Colored contexts hold no locks; rollback runs the undo
				// log (a failing task may have mutated before erroring)
				// and release is a no-op on unowned items.
				ctx.rollback()
				ctx.release()
			}
			errs[i] = err
		}
		if pool != nil {
			pool.dispatch(len(class), run)
		} else {
			var wg sync.WaitGroup
			wg.Add(len(class))
			for j := range class {
				go func(j int) {
					defer wg.Done()
					run(j)
				}(j)
			}
			wg.Wait()
		}

		// Class barrier: verify footprints, settle outcomes, and run this
		// class's commit actions before the next class launches — later
		// classes may depend on them (structural mutations are deferred
		// here by the cautious-operator contract).
		e.committed = e.committed[:0]
		cs.actions = cs.actions[:0]
		for _, i := range class {
			stats.Launched++
			ctx := ctxs[i]
			if err := errs[i]; err != nil {
				if errors.Is(err, ErrConflict) {
					// Operator-level conflict inside a supposedly
					// conflict-free class: the learned graph lied.
					stats.Aborted++
					stale = staleHard
					cs.requeue = append(cs.requeue, cs.handles[i])
					continue
				}
				stats.Failed++
				h := cs.handles[i]
				if _, poisoned := e.noteFailure(h, budget, err.Error()); poisoned {
					stats.Poisoned++
					cs.poison = append(cs.poison, h)
					continue
				}
				cs.requeue = append(cs.requeue, h)
				continue
			}
			// Post-hoc staleness check: every acquired item must lie in
			// the key's learned footprint. A subset is fine (the graph is
			// then conservative); anything new means edges we never
			// learned may exist, so finish this round and relearn.
			ki := cs.keyIdx[i]
			for _, it := range ctx.acquired {
				if !lg.InFootprint(ki, it.Seq) {
					stale = staleHard
					break
				}
			}
			stats.Committed++
			e.clearFailure(cs.handles[i])
			e.committed = append(e.committed, cs.handles[i])
			for _, t := range ctx.spawned {
				if wrap != nil {
					t = wrap(t)
				}
				id := e.nextID.Add(1) - 1
				e.tasks.store(id, t)
				cs.spawnIDs = append(cs.spawnIDs, id)
				stats.Spawned++
				// A spawn with an unknown key can't be colored next
				// round; trip a soft fallback now instead of discovering
				// it at the next grouping pass. (Soft never downgrades a
				// hard trip.)
				if kt, ok := t.(ConflictKeyed); !ok || lg.KeyIndex(kt.ConflictKey()) < 0 {
					if stale == staleNone {
						stale = staleSoft
					}
				}
			}
			cs.actions = append(cs.actions, ctx.onCommit...)
		}
		for _, i := range class {
			ctxs[i].scrub()
		}
		e.tasks.deleteBatch(e.committed, &e.buckets)
		for _, fn := range cs.actions {
			fn()
		}
	}

	if len(cs.poison) > 0 {
		e.tasks.deleteBatch(cs.poison, &e.buckets)
	}
	e.requeueAll(cs.requeue)
	e.requeueAll(cs.spawnIDs)
	e.addTotals(int64(stats.Launched), int64(stats.Committed),
		int64(stats.Aborted), int64(stats.Failed), int64(stats.Poisoned))
	return stats, stale
}
