package speculation

import (
	"context"
	"errors"
	"sync"

	"repro/internal/control"
)

// This file implements the barrier-free execution mode: persistent
// workers continuously pull, execute, and settle tasks with no global
// round join. The controller's m becomes a resizable semaphore on
// in-flight tasks, and the paper's Algorithm 1 recurrences are driven
// by a sliding window of recent commit/abort outcomes (a pseudo-round)
// instead of per-round statistics. The synchronous Round path is
// untouched — RunAsync is a separate drive over the same executor,
// task table, locks, and failure taxonomy.
//
// The sliding window is a *pseudo-round*: a committed task keeps its
// item locks, and its OnCommit actions are deferred, until the window
// boundary — exactly what the round barrier does for a round, without
// making any worker wait. This preserves the model's intra-round
// conflict semantics ("a task aborts iff it conflicts with a task that
// committed before it") at window granularity, which is what makes the
// windowed conflict ratio statistically equivalent to the per-round
// ratio and lets the existing controllers run unchanged. Commit
// actions run serially, in commit order, before the locks release —
// so a successful Acquire still implies post-commit-action state, as
// in round mode. One async-specific caveat: a committed task's spawns
// enter the work-set immediately and may execute before the parent's
// commit actions run at the boundary; the async-enabled workloads
// ("cc", "spin") have no such dependence.

// DefaultMaxInFlight caps the in-flight semaphore when AsyncOptions
// leaves MaxInFlight zero. It matches the hybrid controller's default
// MMax, so the controller, not the cap, is normally the binding limit.
const DefaultMaxInFlight = 1024

// asyncTakeBatch bounds how many handles a worker pulls from the
// work-set per refill, amortizing work-set locking without letting one
// worker hoard the queue.
const asyncTakeBatch = 8

// AsyncOptions configures a RunAsync drive.
type AsyncOptions struct {
	// Window is the sliding-window size in settled outcomes per
	// controller observation. 0 (the default) is adaptive: the window
	// tracks the current in-flight limit m, so each observation
	// aggregates m outcomes — statistically the round the controller
	// was designed for.
	Window int
	// MaxInFlight caps the in-flight semaphore regardless of the
	// controller's request. 0 = DefaultMaxInFlight.
	MaxInFlight int
	// MaxCommits stops the drive once this many tasks have committed
	// (0 = run until the work-set drains). In-flight tasks still
	// settle, so the final count may slightly exceed the bound.
	MaxCommits int64
	// MaxSamples stops the drive after this many window samples
	// (0 = unlimited) — the async analogue of a maxRounds bound.
	MaxSamples int
	// OnSample, when non-nil, receives every window sample in order,
	// from the RunAsync goroutine (never a worker), so it may block
	// (e.g. on a journal write) without stalling execution.
	OnSample func(AsyncSample)
}

// AsyncSample is one sliding-window observation: the async analogue of
// a round's RoundStats, plus the controller state it produced.
type AsyncSample struct {
	Sample    int     // 0-based sample index
	M         int     // in-flight limit after this observation
	Launched  int     // outcomes settled in the window (incl. failures)
	Committed int     // commits in the window
	Aborted   int     // conflict aborts in the window
	Failed    int     // failed attempts in the window
	Poisoned  int     // tasks quarantined in the window
	R         float64 // windowed conflict ratio fed to the controller
	// TotalCommitted is the cumulative commit count at the window
	// boundary — the absolute counter checkpoint-on-commit durability
	// records.
	TotalCommitted int64
	// InFlight is the number of tasks in flight at the boundary.
	InFlight int
	// Counters is the controller's Telemetry snapshot, when exposed.
	Counters map[string]int
}

// ConflictRatio returns the window's commit/abort conflict ratio — the
// value the controller observed (failures excluded, as in rounds).
func (s AsyncSample) ConflictRatio() float64 { return s.R }

// AsyncResult summarizes a RunAsync drive.
type AsyncResult struct {
	Samples   int  // window samples observed
	Canceled  bool // the context was canceled before the work-set drained
	Launched  int64
	Committed int64
	Aborted   int64
	Failed    int64
	Poisoned  int64
	Spawned   int64
	// Trajectory is every window sample in order (also streamed through
	// OnSample).
	Trajectory []AsyncSample
}

// asyncOutcome is one settled attempt, carried from the worker's
// execution to the engine's window accounting.
type asyncOutcome struct {
	committed bool
	aborted   bool
	failed    bool
	poisoned  bool
	spawned   int
	locks     []*Item  // committed task's items, held to the boundary
	actions   []func() // committed task's deferred commit actions
}

// asyncRun is the engine state for one RunAsync drive. One mutex
// guards everything; two conds separate the waiters: workers wait on
// cond for a semaphore slot plus work, the sample-delivery loop waits
// on sampleCond.
type asyncRun struct {
	e      *Executor
	ctrl   control.Controller
	opts   AsyncOptions
	budget int

	mu         sync.Mutex
	cond       *sync.Cond // workers: slot and/or work may be available
	sampleCond *sync.Cond // observer: samples queued or run stopped

	est      *control.WindowedEstimator
	adaptive bool // window tracks the in-flight limit

	limit    int     // current in-flight cap (resizable semaphore)
	maxLimit int     // hard cap from MaxInFlight
	inflight int     // attempts currently executing
	workers  int     // worker goroutines spawned (grows to limit)
	buf      []int64 // handles pulled from the work-set, not yet started

	stopped  bool // no new work may start
	canceled bool // stop was a context cancellation

	// Run totals and per-window tallies.
	launched, commits, aborted, failed, poisoned, spawned int64
	winLaunched, winCommitted, winAborted                 int
	winFailed, winPoisoned                                int

	// Pseudo-round state: locks held and commit actions deferred by the
	// window's committed tasks, settled at the boundary (actions run in
	// commit order, then locks release).
	held    []*Item
	actions []func()

	sampleCount int
	queue       []AsyncSample // flushed samples awaiting ordered delivery

	wg sync.WaitGroup
}

// RunAsync drives the executor barrier-free under controller ctrl
// until the work-set drains, the context is canceled, or an
// AsyncOptions bound is hit. It must not run concurrently with Round
// or another RunAsync on the same executor (the round scratch and
// selection state are single-driver, like Round itself); Add and the
// statistics accessors remain safe to call concurrently.
//
// MaxParallel is ignored: concurrency is the controller's in-flight
// limit, served by lazily spawned workers (one per unit of limit).
func (e *Executor) RunAsync(ctx context.Context, ctrl control.Controller, opts AsyncOptions) *AsyncResult {
	a := &asyncRun{
		e:        e,
		ctrl:     ctrl,
		opts:     opts,
		budget:   e.retryBudget(),
		adaptive: opts.Window <= 0,
		est:      control.NewWindowedEstimator(opts.Window),
		maxLimit: opts.MaxInFlight,
	}
	if a.maxLimit <= 0 {
		a.maxLimit = DefaultMaxInFlight
	}
	a.cond = sync.NewCond(&a.mu)
	a.sampleCond = sync.NewCond(&a.mu)

	a.mu.Lock()
	a.setLimitLocked(ctrl.M())
	a.mu.Unlock()

	// Context watcher: a cancellation stops new work immediately;
	// in-flight attempts settle normally (they hold item locks that
	// must be released through the usual paths).
	watchDone := make(chan struct{})
	var watchWG sync.WaitGroup
	watchWG.Add(1)
	go func() {
		defer watchWG.Done()
		select {
		case <-ctx.Done():
			a.mu.Lock()
			if !a.stopped {
				a.finishLocked(true)
			}
			a.mu.Unlock()
		case <-watchDone:
		}
	}()

	res := &AsyncResult{}
	a.deliver(res) // returns once stopped and the sample queue is drained
	a.wg.Wait()    // workers have settled every in-flight attempt
	close(watchDone)
	watchWG.Wait()

	// Final partial window: round mode observes its last (partial)
	// round, so the async drive does too — unless canceled, where the
	// tail is an artifact of the stop, not of the workload.
	a.mu.Lock()
	if !a.canceled && a.est.Samples() > 0 {
		a.flushSampleLocked()
	}
	// Commits that landed after a stop (or in a canceled run's final
	// partial window) must still settle: their effects are committed,
	// only their actions and lock releases were deferred.
	a.settleWindowLocked()
	for _, s := range a.queue {
		res.Trajectory = append(res.Trajectory, s)
		if a.opts.OnSample != nil {
			a.opts.OnSample(s)
		}
	}
	a.queue = nil
	res.Samples = a.sampleCount
	res.Canceled = a.canceled
	res.Launched = a.launched
	res.Committed = a.commits
	res.Aborted = a.aborted
	res.Failed = a.failed
	res.Poisoned = a.poisoned
	res.Spawned = a.spawned
	a.mu.Unlock()
	return res
}

// setLimitLocked resizes the in-flight semaphore to the controller's
// request, clamped to [1, maxLimit], resizes the adaptive window, and
// lazily spawns workers up to the new limit. Callers hold a.mu.
func (a *asyncRun) setLimitLocked(m int) {
	m = control.Clamp(m, 1, a.maxLimit)
	grew := m > a.limit
	a.limit = m
	if a.adaptive {
		a.est.SetWindow(m)
	}
	for a.workers < a.limit {
		a.workers++
		a.wg.Add(1)
		go a.worker()
	}
	if grew {
		// Raised limit frees semaphore slots: every parked worker must
		// recheck, not just one.
		a.cond.Broadcast()
	}
}

// worker continuously claims a semaphore slot plus a task handle and
// executes it. Workers exit when the run stops or the work drains.
func (a *asyncRun) worker() {
	defer a.wg.Done()
	for {
		h, ok := a.next()
		if !ok {
			return
		}
		a.runTask(h)
	}
}

// next blocks until the run stops (ok=false) or a semaphore slot and a
// task handle are both available. Drain detection: nothing buffered,
// nothing in the work-set, nothing in flight that could requeue work.
func (a *asyncRun) next() (int64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for {
		if a.stopped {
			return 0, false
		}
		if a.inflight < a.limit {
			if len(a.buf) == 0 {
				want := a.limit - a.inflight
				if want > asyncTakeBatch {
					want = asyncTakeBatch
				}
				a.buf = a.e.take(want)
			}
			if len(a.buf) > 0 {
				h := a.buf[len(a.buf)-1]
				a.buf = a.buf[:len(a.buf)-1]
				a.inflight++
				if len(a.buf) > 0 && a.inflight < a.limit {
					// More buffered work and a free slot: chain the wakeup
					// so one completion signal fans out to all the work it
					// uncovered.
					a.cond.Signal()
				}
				return h, true
			}
			if a.inflight == 0 {
				a.finishLocked(false)
				return 0, false
			}
		}
		a.cond.Wait()
	}
}

// finishLocked stops the run: parked workers and the delivery loop are
// released, and claimed-but-unstarted handles go back to the work-set
// so the executor's pending state is consistent. Callers hold a.mu.
func (a *asyncRun) finishLocked(canceled bool) {
	a.stopped = true
	a.canceled = a.canceled || canceled
	if len(a.buf) > 0 {
		a.e.requeueAll(a.buf)
		a.buf = nil
	}
	a.cond.Broadcast()
	a.sampleCond.Broadcast()
}

// runTask executes one attempt of handle h and settles it through the
// shared failure taxonomy: commit, conflict abort (requeue), failure
// (budget), or poison (quarantine). Mirrors Round's accounting loop,
// one task at a time.
func (a *asyncRun) runTask(h int64) {
	e := a.e
	task := e.tasks.load(h)
	if task == nil {
		// Stale handle (defensive): nothing to run.
		a.complete(asyncOutcome{})
		return
	}
	ctx := ctxPool.Get().(*Ctx)
	ctx.id = e.nextID.Add(1) - 1
	err := runGuarded(task, ctx)
	var out asyncOutcome
	switch {
	case err == nil:
		// Commit: retire the handle and enqueue spawns now; the item
		// locks stay held and the commit actions wait for the window
		// boundary (see the file comment). The lock and action slices
		// are copied out so the Ctx can be scrubbed and pooled.
		if len(ctx.acquired) > 0 {
			out.locks = append([]*Item(nil), ctx.acquired...)
			ctx.acquired = ctx.acquired[:0]
		}
		if len(ctx.onCommit) > 0 {
			out.actions = append([]func(){}, ctx.onCommit...)
		}
		e.tasks.delete(h)
		e.clearFailure(h)
		if len(ctx.spawned) > 0 {
			wrap := e.WrapTask
			ids := make([]int64, 0, len(ctx.spawned))
			for _, t := range ctx.spawned {
				if wrap != nil {
					t = wrap(t)
				}
				id := e.nextID.Add(1) - 1
				e.tasks.store(id, t)
				ids = append(ids, id)
			}
			e.requeueAll(ids)
			out.spawned = len(ids)
		}
		out.committed = true
		e.addTotals(1, 1, 0, 0, 0)
	case errors.Is(err, ErrConflict):
		ctx.rollback()
		ctx.release()
		e.requeueOne(h)
		out.aborted = true
		e.addTotals(1, 0, 1, 0, 0)
	default:
		ctx.rollback()
		ctx.release()
		out.failed = true
		if _, poisoned := e.noteFailure(h, a.budget, err.Error()); poisoned {
			e.tasks.delete(h)
			out.poisoned = true
			e.addTotals(1, 0, 0, 1, 1)
		} else {
			e.requeueOne(h)
			e.addTotals(1, 0, 0, 1, 0)
		}
	}
	ctx.scrub()
	ctxPool.Put(ctx)
	a.complete(out)
}

// complete settles one attempt's outcome into the run totals and the
// sliding window, observing the controller at window boundaries.
func (a *asyncRun) complete(out asyncOutcome) {
	a.mu.Lock()
	a.inflight--
	a.launched++
	a.spawned += int64(out.spawned)
	a.winLaunched++
	switch {
	case out.committed:
		a.commits++
		a.winCommitted++
		a.held = append(a.held, out.locks...)
		a.actions = append(a.actions, out.actions...)
		a.est.ObserveCommit()
	case out.aborted:
		a.aborted++
		a.winAborted++
		a.est.ObserveAbort()
	case out.failed:
		// Failures never reach the estimator: an injected panic is not
		// contention (same exclusion as RoundStats.ConflictRatio), and a
		// quarantined task must not depress the windowed ratio either.
		a.failed++
		a.winFailed++
		if out.poisoned {
			a.poisoned++
			a.winPoisoned++
		}
	}
	if !a.stopped {
		if a.opts.MaxCommits > 0 && a.commits >= a.opts.MaxCommits {
			a.finishLocked(false)
		} else if a.est.Ready() {
			a.flushSampleLocked()
			if a.opts.MaxSamples > 0 && a.sampleCount >= a.opts.MaxSamples {
				a.finishLocked(false)
			}
		}
	}
	a.cond.Signal()
	a.mu.Unlock()
}

// settleWindowLocked ends the pseudo-round: the window's deferred
// commit actions run serially in commit order, then the committed
// tasks' locks release. Callers hold a.mu; the actions may block on
// workload locks (never on a.mu — nothing re-enters the engine), so
// in-flight tasks keep executing meanwhile, exactly as round-mode
// tasks of the *next* round would after the barrier.
func (a *asyncRun) settleWindowLocked() {
	for _, fn := range a.actions {
		fn()
	}
	a.actions = a.actions[:0]
	for _, it := range a.held {
		it.owner.Store(noOwner)
	}
	a.held = a.held[:0]
}

// flushSampleLocked closes the current window: deferred commits
// settle, the controller observes the window's conflict ratio, the
// semaphore resizes to the controller's new m, and the sample is
// queued for ordered delivery. Callers hold a.mu.
func (a *asyncRun) flushSampleLocked() {
	a.settleWindowLocked()
	ws := a.est.Flush()
	a.ctrl.Observe(ws.R)
	a.setLimitLocked(a.ctrl.M())
	s := AsyncSample{
		Sample:         a.sampleCount,
		M:              a.limit,
		Launched:       a.winLaunched,
		Committed:      a.winCommitted,
		Aborted:        a.winAborted,
		Failed:         a.winFailed,
		Poisoned:       a.winPoisoned,
		R:              ws.R,
		TotalCommitted: a.commits,
		InFlight:       a.inflight,
	}
	// The controller is single-driver and a.mu is that driver's lock,
	// so reading Telemetry here is race-free; the map is fresh per call.
	if t, ok := a.ctrl.(control.Telemetry); ok {
		s.Counters = t.Counters()
	}
	a.sampleCount++
	a.winLaunched, a.winCommitted, a.winAborted = 0, 0, 0
	a.winFailed, a.winPoisoned = 0, 0
	a.queue = append(a.queue, s)
	a.sampleCond.Signal()
}

// deliver streams queued samples, in order, to the result trajectory
// and the OnSample callback from the RunAsync goroutine. Returns when
// the run has stopped and the queue is empty; any sample flushed after
// that (the final partial window) is delivered by RunAsync itself.
func (a *asyncRun) deliver(res *AsyncResult) {
	for {
		a.mu.Lock()
		for len(a.queue) == 0 && !a.stopped {
			a.sampleCond.Wait()
		}
		batch := a.queue
		a.queue = nil
		stopped := a.stopped
		a.mu.Unlock()
		for _, s := range batch {
			res.Trajectory = append(res.Trajectory, s)
			if a.opts.OnSample != nil {
				a.opts.OnSample(s)
			}
		}
		if stopped && len(batch) == 0 {
			return
		}
	}
}

// requeueOne returns a single handle to the work-set (the async
// settle path; rounds use the batched requeueAll).
func (e *Executor) requeueOne(h int64) {
	if e.ws != nil {
		e.ws.Put(h)
		return
	}
	e.mu.Lock()
	e.pending = append(e.pending, h)
	e.mu.Unlock()
}
