package speculation

import "repro/internal/control"

// ForEach is the Galois-style amorphous data-parallel loop: it applies
// op speculatively to every item, with conflicts detected through the
// items' ctx.Acquire calls, rollback on abort, and processor allocation
// chosen round-by-round by ctrl. New work may be added during execution
// through Push on the loop handle.
//
// op must follow the speculative-task contract (acquire before touching
// shared state; register undo actions or defer mutations to OnCommit).
// ForEach returns when the work-set — including pushed work — drains,
// or maxRounds elapse.
func ForEach[T any](items []T, op func(item T, ctx *Ctx) error, ctrl control.Controller, maxRounds int) *AdaptiveResult {
	loop := NewLoop(op)
	for _, it := range items {
		loop.Push(it)
	}
	return loop.Run(ctrl, maxRounds)
}

// Loop is an amorphous data-parallel loop handle: a work-set of items of
// type T executed speculatively by a shared operator. Use it instead of
// ForEach when the operator needs to generate new work (Push is safe
// from OnCommit actions and between rounds).
type Loop[T any] struct {
	op   func(item T, ctx *Ctx) error
	exec *Executor
}

// NewLoop builds an empty loop around the operator.
func NewLoop[T any](op func(item T, ctx *Ctx) error) *Loop[T] {
	return &Loop[T]{op: op, exec: NewExecutor(nil)}
}

// NewLoopWithWorkset builds a loop drawing items per the given policy.
func NewLoopWithWorkset[T any](op func(item T, ctx *Ctx) error, ws HandleSet) *Loop[T] {
	return &Loop[T]{op: op, exec: NewExecutorWithWorkset(ws)}
}

// Push adds one work item.
func (l *Loop[T]) Push(item T) {
	l.exec.Add(TaskFunc(func(ctx *Ctx) error { return l.op(item, ctx) }))
}

// Pending returns the number of queued items.
func (l *Loop[T]) Pending() int { return l.exec.Pending() }

// Executor exposes the underlying executor (conflict statistics).
func (l *Loop[T]) Executor() *Executor { return l.exec }

// Run drains the loop under ctrl and returns the adaptive trajectory.
func (l *Loop[T]) Run(ctrl control.Controller, maxRounds int) *AdaptiveResult {
	return RunAdaptive(l.exec, ctrl, maxRounds)
}
