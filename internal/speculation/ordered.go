package speculation

import (
	"container/heap"
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// This file implements the *ordered* speculative executor — the paper's
// §5 future work: "it would be extremely valuable to obtain similar
// results for the more general and difficult case of ordered algorithms
// (e.g., discrete event simulation)". Tasks carry priorities (e.g.,
// event timestamps) and must commit in priority order.
//
// Execution is optimistic and round-structured, so the same
// processor-allocation controllers apply:
//
//  1. Phase 1 (parallel): the m earliest pending tasks run
//     concurrently. Ordered tasks are *cautious by construction*: they
//     read shared state, Claim the items they touch, and defer every
//     mutation to OnCommit. Nothing aborts in this phase.
//  2. Phase 2 (serial, in priority order): a task commits iff no
//     earlier-priority task of the round claimed one of its items
//     (conflict) and no already-committed task of the round spawned
//     work that precedes it (premature execution — the Time-Warp
//     causality hazard). Losers are requeued; their phase-1 work is the
//     wasted speculation the conflict ratio measures.

// Key is a total-order priority: primary the float Time, ties broken by
// the deterministic Tie tag. Lower keys commit first.
type Key struct {
	Time float64
	Tie  uint64
}

// Less orders keys lexicographically.
func (k Key) Less(o Key) bool {
	if k.Time != o.Time {
		return k.Time < o.Time
	}
	return k.Tie < o.Tie
}

// MaxKey is larger than every real key.
var MaxKey = Key{Time: math.Inf(1), Tie: math.MaxUint64}

// OrderedTask is a prioritized unit of speculative work.
type OrderedTask interface {
	// Key returns the task's commit priority. It must be constant for
	// the lifetime of the task.
	Key() Key
	// Run executes the read/claim phase. It must not mutate shared
	// state: reads are unsynchronized against other phase-1 tasks, so
	// all writes belong in ctx.OnCommit. A non-nil error (or a panic)
	// is a task failure: the attempt is discarded and the task is
	// retried up to the executor's TaskRetries budget, then poisoned —
	// the same failure taxonomy as the unordered executor.
	Run(ctx *OrderedCtx) error
}

// runGuardedOrdered executes one phase-1 attempt with panic isolation,
// mirroring runGuarded for the unordered executor.
func runGuardedOrdered(t OrderedTask, ctx *OrderedCtx) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Value: p, Stack: debug.Stack()}
		}
	}()
	return t.Run(ctx)
}

// retryTask wraps a failed ordered task with its failure count so the
// budget survives requeueing through the heap. It delegates Key and Run
// to the wrapped task, so phase-1 execution and commit ordering are
// unchanged.
type retryTask struct {
	OrderedTask
	fails int
}

// OrderedCtx is the phase-1 context handed to ordered tasks.
type OrderedCtx struct {
	claims   []*Item
	spawned  []OrderedTask
	spawnFns []func() []OrderedTask
	onCommit []func()
}

// Claim registers intent to touch it; two same-round tasks claiming the
// same item conflict, and the later-priority one aborts.
func (c *OrderedCtx) Claim(items ...*Item) {
	c.claims = append(c.claims, items...)
}

// Spawn schedules t if the current task commits. The spawn's key must
// be strictly greater than the spawning task's key (causality); this is
// checked at commit time.
func (c *OrderedCtx) Spawn(t OrderedTask) { c.spawned = append(c.spawned, t) }

// SpawnAtCommit registers a function producing follow-up tasks at
// commit time — for workloads (like discrete-event simulation) where
// the spawned work depends on state that only the serial commit phase
// may read. The returned tasks obey the same causality rule as Spawn.
func (c *OrderedCtx) SpawnAtCommit(fn func() []OrderedTask) {
	c.spawnFns = append(c.spawnFns, fn)
}

// OnCommit registers a mutation to apply serially if the task commits.
func (c *OrderedCtx) OnCommit(fn func()) { c.onCommit = append(c.onCommit, fn) }

// OrderedRoundStats reports one round of the ordered executor.
type OrderedRoundStats struct {
	Launched  int
	Committed int
	Conflicts int // aborted: lost an item to an earlier task
	Premature int // aborted: ran ahead of newly spawned earlier work
	Failed    int // panics / non-conflict errors, retried on budget
	Poisoned  int // failures that exhausted the retry budget this round
	Spawned   int
}

// Aborted returns total wasted speculative executions of the round
// (conflicts + premature; failures are counted separately, matching the
// unordered executor's taxonomy).
func (s OrderedRoundStats) Aborted() int { return s.Conflicts + s.Premature }

// ConflictRatio returns wasted/launched — the r_t fed to controllers.
// Failures are excluded, as in RoundStats.ConflictRatio.
func (s OrderedRoundStats) ConflictRatio() float64 {
	if s.Launched == 0 {
		return 0
	}
	return float64(s.Aborted()) / float64(s.Launched)
}

// taskHeap is a min-heap of ordered tasks by key.
type taskHeap []OrderedTask

func (h taskHeap) Len() int            { return len(h) }
func (h taskHeap) Less(i, j int) bool  { return h[i].Key().Less(h[j].Key()) }
func (h taskHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x interface{}) { *h = append(*h, x.(OrderedTask)) }
func (h *taskHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// OrderedExecutor runs prioritized tasks optimistically with in-order
// commits. Like Executor, phase 1 is served by a persistent worker pool
// when MaxParallel > 0.
type OrderedExecutor struct {
	mu      sync.Mutex
	pending taskHeap

	// MaxParallel sets the phase-1 worker-pool size (0 = one goroutine
	// per task, the model-faithful mode).
	MaxParallel int

	// TaskRetries is the per-task failure budget, with the same
	// semantics as Executor.TaskRetries (0 = DefaultTaskRetries,
	// negative = no retries).
	TaskRetries int

	// WrapTask, when non-nil, intercepts every task entering the heap
	// (Add and committed spawns) — the fault-injection hook.
	WrapTask func(OrderedTask) OrderedTask

	pool *workerPool

	// accounting holds the shared counters and quarantine; the ordered
	// executor folds conflicts + premature into its Aborted total so
	// the promoted accessors (TotalAborted, OverallConflictRatio, …)
	// report the same wasted-work notion as the round stats.
	accounting

	totalConflicts atomic.Int64
	totalPremature atomic.Int64
}

// NewOrderedExecutor returns an empty ordered executor.
func NewOrderedExecutor() *OrderedExecutor {
	return &OrderedExecutor{}
}

// Close releases the executor's worker pool (if any). Optional: an
// executor abandoned without Close is cleaned up by a finalizer.
func (e *OrderedExecutor) Close() {
	if e.pool != nil {
		e.pool.shutdown()
		e.pool = nil
	}
}

// Snapshot returns the ordered executor's pending count and cumulative
// counters in one race-safe call. Aborted counts both failure modes
// (conflicts + premature executions), matching OverallConflictRatio.
func (e *OrderedExecutor) Snapshot() Snapshot {
	return e.accounting.snapshot(e.Pending())
}

// TotalConflicts returns the cumulative count of same-round item
// conflicts.
func (e *OrderedExecutor) TotalConflicts() int64 { return e.totalConflicts.Load() }

// TotalPremature returns the cumulative count of premature executions
// (tasks that ran ahead of newly spawned earlier work).
func (e *OrderedExecutor) TotalPremature() int64 { return e.totalPremature.Load() }

// retryBudget resolves TaskRetries exactly like Executor.retryBudget.
func (e *OrderedExecutor) retryBudget() int { return resolveRetryBudget(e.TaskRetries) }

// Add inserts a task.
func (e *OrderedExecutor) Add(t OrderedTask) {
	if w := e.WrapTask; w != nil {
		t = w(t)
	}
	e.mu.Lock()
	heap.Push(&e.pending, t)
	e.mu.Unlock()
}

// Pending returns the number of queued tasks.
func (e *OrderedExecutor) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.pending)
}

// NextKey returns the smallest pending key (MaxKey when empty) — the
// ordered analogue of global virtual time.
func (e *OrderedExecutor) NextKey() Key {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.pending) == 0 {
		return MaxKey
	}
	return e.pending[0].Key()
}

// Round speculatively executes the m earliest pending tasks and commits
// the safe prefix in priority order.
func (e *OrderedExecutor) Round(m int) OrderedRoundStats {
	if m < 0 {
		panic("speculation: negative ordered round size")
	}
	e.mu.Lock()
	if m > len(e.pending) {
		m = len(e.pending)
	}
	batch := make([]OrderedTask, 0, m)
	for i := 0; i < m; i++ {
		batch = append(batch, heap.Pop(&e.pending).(OrderedTask))
	}
	e.mu.Unlock()
	if len(batch) == 0 {
		return OrderedRoundStats{}
	}

	// Phase 1: parallel speculative execution (read + claim only),
	// served by the persistent pool when MaxParallel > 0. Panics and
	// errors are captured per attempt, not fatal: they flow through the
	// shared failure taxonomy in phase 2.
	ctxs := make([]*OrderedCtx, len(batch))
	errs := make([]error, len(batch))
	run := func(i int) {
		ctx := &OrderedCtx{}
		ctxs[i] = ctx
		errs[i] = runGuardedOrdered(batch[i], ctx)
	}
	if e.MaxParallel > 0 {
		if e.pool == nil || e.pool.size != e.MaxParallel {
			if e.pool != nil {
				e.pool.shutdown()
			}
			e.pool = newWorkerPool(e.MaxParallel)
		}
		e.pool.dispatch(len(batch), run)
	} else {
		var wg sync.WaitGroup
		wg.Add(len(batch))
		for i := range batch {
			go func(i int) {
				defer wg.Done()
				run(i)
			}(i)
		}
		wg.Wait()
	}

	// Phase 2: serial commit walk in priority order. The batch was
	// popped from a heap, so sort it (heap pops were in order already —
	// popping yields ascending keys, so batch is sorted by
	// construction).
	stats := OrderedRoundStats{Launched: len(batch)}
	budget := e.retryBudget()
	claimed := make(map[*Item]bool)
	minSpawn := MaxKey
	var requeue []OrderedTask
	stopped := false
	for i, t := range batch {
		ctx := ctxs[i]
		if stopped {
			// A task before this one failed to commit. Its re-execution
			// may spawn events that precede this one, so chronological
			// safety forbids committing anything past the first failure:
			// the committed set must be a prefix of the batch.
			stats.Premature++
			requeue = append(requeue, t)
			continue
		}
		if err := errs[i]; err != nil {
			// Failure: the phase-1 attempt is discarded (ordered tasks
			// are read-only in phase 1, so there is nothing to roll
			// back). A retried task may spawn earlier work, so the
			// commit prefix stops here, like a conflict.
			stats.Failed++
			rt, ok := t.(*retryTask)
			if !ok {
				rt = &retryTask{OrderedTask: t}
			}
			rt.fails++
			if rt.fails > budget {
				stats.Poisoned++
				e.quarantine(FailureRecord{
					Handle:   -1,
					Attempts: rt.fails,
					Err:      fmt.Sprintf("key=%+v: %v", t.Key(), err),
				})
			} else {
				requeue = append(requeue, rt)
			}
			stopped = true
			continue
		}
		if minSpawn.Less(t.Key()) {
			// Earlier work was generated by a committed task: this
			// execution ran ahead of it and must be redone.
			stats.Premature++
			requeue = append(requeue, t)
			stopped = true
			continue
		}
		conflict := false
		for _, it := range ctx.claims {
			if claimed[it] {
				conflict = true
				break
			}
		}
		if conflict {
			stats.Conflicts++
			requeue = append(requeue, t)
			stopped = true
			continue
		}
		// Commit: apply mutations, book claims, surface spawns.
		for _, fn := range ctx.onCommit {
			fn()
		}
		for _, it := range ctx.claims {
			claimed[it] = true
		}
		spawned := ctx.spawned
		for _, fn := range ctx.spawnFns {
			spawned = append(spawned, fn()...)
		}
		for _, s := range spawned {
			if !t.Key().Less(s.Key()) {
				panic(fmt.Sprintf("speculation: spawn key %+v not after parent %+v",
					s.Key(), t.Key()))
			}
			if s.Key().Less(minSpawn) {
				minSpawn = s.Key()
			}
			if w := e.WrapTask; w != nil {
				s = w(s)
			}
			requeue = append(requeue, s)
			stats.Spawned++
		}
		stats.Committed++
	}
	e.mu.Lock()
	for _, t := range requeue {
		heap.Push(&e.pending, t)
	}
	e.mu.Unlock()
	e.totalConflicts.Add(int64(stats.Conflicts))
	e.totalPremature.Add(int64(stats.Premature))
	e.addTotals(int64(stats.Launched), int64(stats.Committed),
		int64(stats.Aborted()), int64(stats.Failed), int64(stats.Poisoned))
	return stats
}
