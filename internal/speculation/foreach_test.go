package speculation

import (
	"sync/atomic"
	"testing"

	"repro/internal/control"
)

func TestForEachProcessesAllItems(t *testing.T) {
	var sum atomic.Int64
	items := make([]int, 100)
	for i := range items {
		items[i] = i + 1
	}
	res := ForEach(items, func(item int, ctx *Ctx) error {
		sum.Add(int64(item))
		return nil
	}, control.NewHybrid(control.DefaultHybridConfig(0.25)), 100000)
	if sum.Load() != 5050 {
		t.Fatalf("sum = %d, want 5050", sum.Load())
	}
	if res.UsefulWork != 100 {
		t.Fatalf("useful work %d", res.UsefulWork)
	}
}

func TestForEachConflictsRetried(t *testing.T) {
	// All items contend on one lock: each must still execute exactly
	// once (committed), with retries counted as waste.
	it := NewItem(0)
	var commits atomic.Int64
	items := make([]int, 40)
	res := ForEach(items, func(_ int, ctx *Ctx) error {
		if err := ctx.Acquire(it); err != nil {
			return err
		}
		ctx.OnCommit(func() { commits.Add(1) })
		return nil
	}, control.Fixed{Procs: 8}, 100000)
	if commits.Load() != 40 {
		t.Fatalf("commits = %d", commits.Load())
	}
	if res.WastedWork == 0 {
		t.Fatal("expected conflicts at m=8 on one lock")
	}
}

func TestLoopPushDuringExecution(t *testing.T) {
	// Work that generates work: each item below 3 levels pushes two
	// children on commit. 1 + 2 + 4 + 8 = 15 items total.
	type node struct{ level int }
	var loop *Loop[node]
	var processed atomic.Int64
	loop = NewLoop(func(n node, ctx *Ctx) error {
		processed.Add(1)
		if n.level < 3 {
			ctx.OnCommit(func() {
				loop.Push(node{n.level + 1})
				loop.Push(node{n.level + 1})
			})
		}
		return nil
	})
	loop.Push(node{0})
	res := loop.Run(control.NewHybrid(control.DefaultHybridConfig(0.25)), 100000)
	if processed.Load() != 15 {
		t.Fatalf("processed %d items, want 15", processed.Load())
	}
	if loop.Pending() != 0 {
		t.Fatal("loop not drained")
	}
	if res.UsefulWork != 15 {
		t.Fatalf("useful work %d", res.UsefulWork)
	}
}

func TestLoopWithWorksetPolicy(t *testing.T) {
	order := make([]int, 0, 10)
	loop := NewLoopWithWorkset(func(item int, ctx *Ctx) error {
		ctx.OnCommit(func() { order = append(order, item) })
		return nil
	}, newFIFOHandles())
	for i := 0; i < 10; i++ {
		loop.Push(i)
	}
	loop.Run(control.Fixed{Procs: 1}, 1000)
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO order broken: %v", order)
		}
	}
}

// fifoHandles is a minimal in-test FIFO HandleSet; a local fake keeps
// the interface contract visible right next to the test that relies on
// strict ordering.
type fifoHandles struct{ xs []int64 }

func newFIFOHandles() *fifoHandles { return &fifoHandles{} }

func (f *fifoHandles) Put(h int64)       { f.xs = append(f.xs, h) }
func (f *fifoHandles) PutAll(hs []int64) { f.xs = append(f.xs, hs...) }
func (f *fifoHandles) Take(k int) []int64 {
	if k > len(f.xs) {
		k = len(f.xs)
	}
	out := append([]int64(nil), f.xs[:k]...)
	f.xs = f.xs[k:]
	return out
}
func (f *fifoHandles) Len() int { return len(f.xs) }
