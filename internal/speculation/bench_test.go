package speculation

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/control"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/workset"
)

// spinSink defeats dead-code elimination of the benchmark spin loops.
var spinSink atomic.Int64

// spinTask returns a conflict-free task burning roughly `work` iterations
// of ALU work, modelling a small irregular-algorithm operator.
func spinTask(work int) Task {
	return TaskFunc(func(ctx *Ctx) error {
		acc := int64(ctx.ID())
		for i := 0; i < work; i++ {
			acc = acc*6364136223846793005 + 1442695040888963407
		}
		spinSink.Store(acc)
		return nil
	})
}

// benchRound measures steady-state round throughput: every iteration
// enqueues m fresh tasks and runs one round of m, so the scheduler's
// per-task overhead (dispatch, task-table access, Ctx setup, accounting)
// dominates for small work sizes.
func benchRound(b *testing.B, m, maxPar, work int) {
	e := NewExecutor(nil)
	e.MaxParallel = maxPar
	t := spinTask(work)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < m; j++ {
			e.Add(t)
		}
		e.Round(m)
	}
	b.StopTimer()
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(float64(b.N*m)/secs, "tasks/sec")
	}
}

// BenchmarkExecutorRound sweeps task cost (spin), round size (m), and
// MaxParallel. par=cpu is the production configuration the worker pool
// targets; par=0 is the model-faithful one-goroutine-per-task mode.
func BenchmarkExecutorRound(b *testing.B) {
	cpu := runtime.NumCPU()
	for _, cfg := range []struct {
		name         string
		m, par, work int
	}{
		{"tiny/m=64/par=cpu", 64, cpu, 0},
		{"tiny/m=512/par=cpu", 512, cpu, 0},
		{"small/m=64/par=cpu", 64, cpu, 200},
		{"small/m=512/par=cpu", 512, cpu, 200},
		{"small/m=512/par=2cpu", 512, 2 * cpu, 200},
		{"tiny/m=64/par=0", 64, 0, 0},
		{"small/m=512/par=0", 512, 0, 200},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			benchRound(b, cfg.m, cfg.par, cfg.work)
		})
	}
}

// benchStragglerTasks enqueues n conflict-free tasks with a
// high-variance cost distribution: every stragglerEvery-th task blocks
// for stragglerSleep (an I/O-ish long-tail operator), the rest do a
// short ALU spin. In round mode the whole round joins on its slowest
// straggler; barrier-free execution lets the fast tasks flow past.
const (
	stragglerEvery = 16
	stragglerSleep = 400 * time.Microsecond
	stragglerM     = 64
)

func benchStragglerTasks(e *Executor, n int) {
	fast := spinTask(200)
	slow := TaskFunc(func(ctx *Ctx) error {
		time.Sleep(stragglerSleep)
		return nil
	})
	for i := 0; i < n; i++ {
		if i%stragglerEvery == 0 {
			e.Add(slow)
		} else {
			e.Add(fast)
		}
	}
}

// BenchmarkExecutorAsync compares round-barrier and barrier-free
// execution on the straggler workload at the same concurrency budget
// (m = 64, fixed). One benchmark op is one committed task, so ns/op is
// directly comparable across the two sub-benchmarks — the async/round
// ratio is the round-tail idle time the barrier costs.
func BenchmarkExecutorAsync(b *testing.B) {
	b.Run("straggler/round", func(b *testing.B) {
		e := NewExecutor(nil)
		e.MaxParallel = stragglerM
		benchStragglerTasks(e, b.N)
		b.ResetTimer()
		for e.Pending() > 0 {
			e.Round(stragglerM)
		}
		b.StopTimer()
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(b.N)/secs, "tasks/sec")
		}
		e.Close()
	})
	b.Run("straggler/async", func(b *testing.B) {
		e := NewExecutor(nil)
		benchStragglerTasks(e, b.N)
		b.ResetTimer()
		e.RunAsync(context.Background(), control.Fixed{Procs: stragglerM}, AsyncOptions{})
		b.StopTimer()
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(b.N)/secs, "tasks/sec")
		}
		e.Close()
	})
}

// BenchmarkExecutorColored compares the three drive modes — round-
// barrier speculation, barrier-free async, and hybrid colored — on
// stable-conflict workloads whose conflict structure never changes
// round over round (the colored mode's sweet spot). One benchmark op
// is one committed chain step, so ns/op is directly comparable across
// sub-benchmarks. The colored drive spends a handful of rounds
// learning speculatively and then runs the tail lock-free: no item
// CAS, no undo logs, no aborted work. All three modes run under the
// same hybrid controller at ρ=0.25 (colored rounds are invisible to
// it by design).
func BenchmarkExecutorColored(b *testing.B) {
	cpu := runtime.NumCPU()
	topologies := []struct {
		name  string
		build func() *graph.Graph
	}{
		// mesh-like: planar grid adjacency, bounded degree.
		{"mesh", func() *graph.Graph { return graph.Grid2D(16, 16) }},
		// cluster-like: irregular random conflicts, skewed degrees.
		{"cluster", func() *graph.Graph {
			return graph.RandomWithAvgDegree(rng.New(17), 256, 8.0)
		}},
	}
	report := func(b *testing.B, committed int64) {
		if secs := b.Elapsed().Seconds(); secs > 0 && committed > 0 {
			b.ReportMetric(float64(committed)/secs, "tasks/sec")
		}
	}
	for _, topo := range topologies {
		b.Run(topo.name+"/round", func(b *testing.B) {
			e, _, _ := buildStableFixture(topo.build(), b.N, cpu, 7)
			defer e.Close()
			ctrl := testHybrid(0.25)
			b.ReportAllocs()
			b.ResetTimer()
			for e.TotalCommitted() < int64(b.N) && e.Pending() > 0 {
				st := e.Round(ctrl.M())
				ctrl.Observe(st.ConflictRatio())
			}
			b.StopTimer()
			report(b, e.TotalCommitted())
		})
		b.Run(topo.name+"/async", func(b *testing.B) {
			e, _, _ := buildStableFixture(topo.build(), b.N, cpu, 7)
			defer e.Close()
			b.ReportAllocs()
			b.ResetTimer()
			e.RunAsync(context.Background(), testHybrid(0.25),
				AsyncOptions{MaxCommits: int64(b.N)})
			b.StopTimer()
			report(b, e.TotalCommitted())
		})
		b.Run(topo.name+"/colored", func(b *testing.B) {
			e, _, _ := buildStableFixture(topo.build(), b.N, cpu, 7)
			defer e.Close()
			b.ReportAllocs()
			b.ResetTimer()
			res := e.RunColored(context.Background(), testHybrid(0.25),
				ColoredOptions{MaxCommits: int64(b.N)})
			b.StopTimer()
			report(b, e.TotalCommitted())
			if res.ColoredAborts != 0 {
				b.Fatalf("colored rounds aborted %d tasks on a stable workload", res.ColoredAborts)
			}
			if res.Degraded {
				b.Fatal("colored drive degraded on a keyed workload")
			}
		})
	}
}

// BenchmarkExecutorRoundWorkset measures the abort/requeue path: all
// tasks fight over a handful of items, so most launches abort and flow
// through the workset requeue on every round.
func BenchmarkExecutorRoundWorkset(b *testing.B) {
	cpu := runtime.NumCPU()
	for _, wsName := range []string{"chunked", "fifo"} {
		b.Run(fmt.Sprintf("conflict-heavy/%s", wsName), func(b *testing.B) {
			var ws HandleSet
			switch wsName {
			case "chunked":
				ws = workset.NewChunked(8)
			case "fifo":
				ws = workset.NewFIFO()
			}
			e := NewExecutorWithWorkset(ws)
			e.MaxParallel = cpu
			items := make([]*Item, 4)
			for i := range items {
				items[i] = NewItem(int64(i))
			}
			for j := 0; j < 256; j++ {
				it := items[j%len(items)]
				e.Add(TaskFunc(func(ctx *Ctx) error { return ctx.Acquire(it) }))
			}
			b.ResetTimer()
			launched := 0
			for i := 0; i < b.N; i++ {
				st := e.Round(256)
				launched += st.Launched
				// Committed tasks leave for good; top back up so the
				// round size stays constant.
				for j := 0; j < st.Committed; j++ {
					it := items[j%len(items)]
					e.Add(TaskFunc(func(ctx *Ctx) error { return ctx.Acquire(it) }))
				}
			}
			b.StopTimer()
			secs := b.Elapsed().Seconds()
			if secs > 0 && launched > 0 {
				b.ReportMetric(float64(launched)/secs, "tasks/sec")
			}
		})
	}
}
