package speculation

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/workset"
)

// TestWorkerPoolStress hammers the pooled executor: many rounds of many
// tiny conflicting tasks while other goroutines keep Adding work. Run
// under -race this exercises every executor synchronization edge (shard
// locks, atomic IDs, batched requeue, context recycling).
func TestWorkerPoolStress(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() *Executor
	}{
		{"pending", func() *Executor { return NewExecutor(nil) }},
		{"random-ws", func() *Executor {
			return NewExecutorWithWorkset(workset.NewRandom(rng.New(7)))
		}},
		{"chunked-ws", func() *Executor {
			return NewExecutorWithWorkset(workset.NewChunked(8))
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := tc.mk()
			e.MaxParallel = runtime.NumCPU() * 2
			defer e.Close()

			// Shared items so a healthy fraction of launches conflict
			// and flow through rollback + batched requeue.
			items := make([]*Item, 17)
			for i := range items {
				items[i] = NewItem(int64(i))
			}
			var committed atomic.Int64
			mkTask := func(k int) Task {
				return TaskFunc(func(ctx *Ctx) error {
					if err := ctx.Acquire(items[k%len(items)]); err != nil {
						return err
					}
					committed.Add(1)
					return nil
				})
			}

			const seedTasks = 400
			const adders = 4
			const addedEach = 200
			for i := 0; i < seedTasks; i++ {
				e.Add(mkTask(i))
			}
			// Concurrent producers racing against in-flight rounds.
			var wg sync.WaitGroup
			for a := 0; a < adders; a++ {
				wg.Add(1)
				go func(a int) {
					defer wg.Done()
					for i := 0; i < addedEach; i++ {
						e.Add(mkTask(a*31 + i))
					}
				}(a)
			}
			rounds := 0
			for {
				st := e.Round(64)
				rounds++
				if st.Launched == 0 {
					// Producers may still be running; only stop once
					// they are done and the set is truly empty.
					wg.Wait()
					if e.Pending() == 0 {
						break
					}
				}
				if rounds > 200000 {
					t.Fatal("stress run did not drain")
				}
			}
			want := int64(seedTasks + adders*addedEach)
			if committed.Load() != want {
				t.Fatalf("committed %d tasks, want %d", committed.Load(), want)
			}
			if e.TotalCommitted() != want {
				t.Fatalf("TotalCommitted = %d, want %d", e.TotalCommitted(), want)
			}
			if e.TotalLaunched() != e.TotalCommitted()+e.TotalAborted() {
				t.Fatalf("launched %d != committed %d + aborted %d",
					e.TotalLaunched(), e.TotalCommitted(), e.TotalAborted())
			}
			// Every lock must be free after the drain.
			for _, it := range items {
				if it.Owner() != noOwner {
					t.Fatalf("item %d still owned by %d", it.Seq, it.Owner())
				}
			}
		})
	}
}

// TestWorkerPoolResize verifies that changing MaxParallel between
// rounds swaps in a right-sized pool without losing work.
func TestWorkerPoolResize(t *testing.T) {
	e := NewExecutor(nil)
	defer e.Close()
	for i := 0; i < 300; i++ {
		e.Add(TaskFunc(func(ctx *Ctx) error { return nil }))
	}
	for _, par := range []int{1, 4, 2, 8} {
		e.MaxParallel = par
		e.Round(50)
	}
	e.MaxParallel = 3
	for e.Pending() > 0 {
		e.Round(50)
	}
	if e.TotalCommitted() != 300 {
		t.Fatalf("committed %d, want 300", e.TotalCommitted())
	}
}

// TestCtxPoolingNoLeak proves a recycled Ctx carries nothing across
// attempts: no undo actions, no spawns, no commit actions, no held
// locks. Tasks deliberately abort after registering side effects, then
// later attempts inspect the context they receive.
func TestCtxPoolingNoLeak(t *testing.T) {
	e := NewExecutor(nil)
	e.MaxParallel = 2
	defer e.Close()

	blocker := NewItem(99)
	var undone, spawnedRuns atomic.Int64

	// Round 1: m tasks all register an undo + a spawn + a commit action,
	// then conflict on the same item (all but the winner abort).
	dirty := TaskFunc(func(ctx *Ctx) error {
		ctx.LogUndo(func() { undone.Add(1) })
		ctx.Spawn(TaskFunc(func(*Ctx) error {
			spawnedRuns.Add(1)
			return nil
		}))
		ctx.OnCommit(func() {})
		return ctx.Acquire(blocker)
	})
	const m = 16
	for i := 0; i < m; i++ {
		e.Add(dirty)
	}
	st := e.Round(m)
	if st.Committed != 1 || st.Aborted != m-1 {
		t.Fatalf("round1: committed=%d aborted=%d, want 1/%d", st.Committed, st.Aborted, m-1)
	}
	if got := undone.Load(); got != int64(m-1) {
		t.Fatalf("undo ran %d times, want %d", got, m-1)
	}

	// Drain the requeued aborts plus the winner's spawn. If pooling
	// leaked state, stale undo logs would fire again or stale spawns
	// would be re-enqueued and inflate the counts.
	for e.Pending() > 0 {
		e.Round(m)
	}
	// Every aborted attempt (and only those) runs its undo exactly once;
	// a leaked undo log would fire extra times on an unrelated attempt.
	if got := undone.Load(); got != e.TotalAborted() {
		t.Fatalf("undo ran %d times, want one per abort (%d)", got, e.TotalAborted())
	}
	// Each of the m dirty tasks eventually commits exactly once and its
	// spawn runs exactly once — no duplicates from recycled contexts.
	if got := spawnedRuns.Load(); got != m {
		t.Fatalf("spawned task ran %d times, want %d", got, m)
	}
	if e.TotalCommitted() != 2*m { // m dirty + m spawned
		t.Fatalf("TotalCommitted = %d, want %d", e.TotalCommitted(), 2*m)
	}

	// Inspect the recycled contexts directly: after a full drain every
	// cached context must be scrubbed empty.
	for i, c := range e.scratch.ctxs {
		if len(c.acquired) != 0 || len(c.undo) != 0 || len(c.spawned) != 0 || len(c.onCommit) != 0 {
			t.Fatalf("cached ctx %d not scrubbed: %+v", i, c)
		}
		if c.aborted || c.id != 0 {
			t.Fatalf("cached ctx %d retains attempt state (id=%d aborted=%v)", i, c.id, c.aborted)
		}
		// The backing arrays must hold no stale references either —
		// scrub zeroes the full capacity, not just the length.
		for _, it := range c.acquired[:cap(c.acquired)] {
			if it != nil {
				t.Fatal("stale *Item reference survives in recycled ctx capacity")
			}
		}
		for _, fn := range c.undo[:cap(c.undo)] {
			if fn != nil {
				t.Fatal("stale undo closure survives in recycled ctx capacity")
			}
		}
		for _, task := range c.spawned[:cap(c.spawned)] {
			if task != nil {
				t.Fatal("stale spawned task survives in recycled ctx capacity")
			}
		}
	}
}

// TestExecutorCloseReleasesWorkers verifies Close stops the pool
// goroutines (and that a closed executor can still run rounds, falling
// back to a fresh pool).
func TestExecutorCloseReleasesWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	e := NewExecutor(nil)
	e.MaxParallel = 8
	for i := 0; i < 64; i++ {
		e.Add(TaskFunc(func(ctx *Ctx) error { return nil }))
	}
	e.Round(32)
	e.Close()
	// Workers exit asynchronously after the channel closes.
	for i := 0; i < 200 && runtime.NumGoroutine() > before+1; i++ {
		time.Sleep(time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Fatalf("goroutines leaked after Close: before=%d after=%d", before, g)
	}
	// Round after Close lazily rebuilds the pool.
	e.Round(32)
	if e.TotalCommitted() != 64 {
		t.Fatalf("committed %d, want 64", e.TotalCommitted())
	}
	e.Close()
}
