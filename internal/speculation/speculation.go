// Package speculation implements a Galois-style optimistic parallelization
// runtime (§1): tasks drawn from a work-set execute speculatively and
// concurrently on goroutines; conflicts are detected at runtime through
// exclusive abstract locks on shared items; a conflicting task aborts,
// rolls back its side effects through an undo log, and is retried in a
// later round.
//
// Execution is round-structured to mirror the paper's model: each round
// launches m tasks (m chosen by a processor-allocation controller), waits
// for all of them, and reports the measured conflict ratio r = aborts/m.
// Locks are held to the end of the round, so intra-round semantics match
// the model's "a task aborts iff it conflicts with a task that committed
// before it".
//
// The paper assumes conflicting and non-conflicting tasks cost the same
// (§2, as in Delaunay mesh refinement); the runtime therefore treats an
// abort as a full processor-round of wasted work in its accounting.
//
// The executor itself is built for throughput: rounds are served by a
// persistent pool of MaxParallel workers fed chunks of the round's index
// space (one channel send per chunk, not one goroutine per task), task
// handles live in a sharded task table, attempt IDs come from an atomic
// counter, and per-attempt contexts are recycled through a sync.Pool.
// Setting MaxParallel to 0 bypasses the pool and launches one goroutine
// per task — the model-faithful "one processor per task" simulation mode.
package speculation

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// ErrConflict is returned by Ctx.Acquire when the requested item is held
// by another in-flight task. Operator code must propagate it (or wrap it)
// so the executor can roll the task back.
var ErrConflict = errors.New("speculation: conflict detected")

// The failure taxonomy, shared by both executors: every attempt outcome
// is exactly one of
//
//	commit    — Run returned nil; side effects become visible.
//	abort     — Run returned ErrConflict (possibly wrapped); the task
//	            lost a speculative race, is rolled back, and is requeued
//	            unconditionally. Aborts are *expected* (the paper's
//	            premise) and never consume the retry budget.
//	failure   — Run panicked or returned any other error; the task is
//	            rolled back (undo log run, locks released, Ctx scrubbed)
//	            and retried until its budget is exhausted.
//	poisoned  — a failure with no budget left: the task is removed from
//	            the work-set and quarantined for inspection instead of
//	            crashing the process.

// DefaultTaskRetries is the failure budget used when TaskRetries is 0:
// a task may fail this many times before it is poisoned.
const DefaultTaskRetries = 3

// PanicError wraps a panic recovered from operator code so it flows
// through the normal failure path instead of killing the process.
type PanicError struct {
	Value any    // the recovered panic value
	Stack []byte // stack captured at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("speculation: task panicked: %v", e.Value)
}

// FailureRecord describes a quarantined (poisoned) task.
type FailureRecord struct {
	// Handle is the unordered executor's task handle, or -1 for ordered
	// tasks (which have no stable handle).
	Handle int64
	// Attempts is the number of failed attempts the task consumed.
	Attempts int
	// Err is the last failure's message.
	Err string
}

// runGuarded executes one task attempt with panic isolation: a panic in
// operator code is converted into a *PanicError so the executor treats
// it as a task failure (rollback + retry budget) rather than a crash.
func runGuarded(t Task, ctx *Ctx) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Value: p, Stack: debug.Stack()}
		}
	}()
	return t.Run(ctx)
}

const noOwner int64 = -1

// Item is a lockable abstract location. Tasks must acquire an item
// before reading or writing the state it guards. The zero value is not
// ready; use NewItem.
type Item struct {
	owner atomic.Int64
	// Seq is an optional caller-visible tag (e.g. graph node ID) used in
	// diagnostics.
	Seq int64
}

// NewItem returns an unowned item with the given diagnostic tag.
func NewItem(seq int64) *Item {
	it := &Item{Seq: seq}
	it.owner.Store(noOwner)
	return it
}

// Owner returns the ID of the task currently holding the item, or -1.
func (it *Item) Owner() int64 { return it.owner.Load() }

// Task is a unit of speculative work (one iteration of an amorphous
// data-parallel loop). Run must acquire every item it touches through
// ctx and must return ErrConflict (possibly wrapped) when an acquisition
// fails. Any side effect on shared state must either be registered with
// ctx.LogUndo or be deferred until all acquisitions are done (the
// "cautious operator" pattern, which needs no rollback).
type Task interface {
	Run(ctx *Ctx) error
}

// TaskFunc adapts a function to Task.
type TaskFunc func(ctx *Ctx) error

// Run implements Task.
func (f TaskFunc) Run(ctx *Ctx) error { return f(ctx) }

// Ctx is the per-execution speculative context handed to Task.Run. It is
// confined to the executing goroutine and must not escape the Run call:
// the executor recycles contexts through a pool once the round's
// accounting is done.
type Ctx struct {
	id       int64
	acquired []*Item
	undo     []func()
	spawned  []Task
	onCommit []func()
	aborted  bool
	// colored marks a context executing inside a colored round (see
	// colored.go): tasks in one color class are pairwise conflict-free by
	// construction, so Acquire records the footprint without taking the
	// item lock — no CAS, no abort path. The footprint is still collected
	// so the staleness detector can check it against the learned graph at
	// the class barrier.
	colored bool
}

// ctxPool recycles Ctx values across attempts and executors. Contexts
// are scrubbed (all reference slots zeroed, capacity kept) before they
// are returned to the pool, so a pooled Ctx never carries undo logs,
// spawns, or lock references from a previous attempt.
var ctxPool = sync.Pool{New: func() any { return new(Ctx) }}

// scrubSlice zeroes the slice's full backing capacity (dropping every
// reference it retains) and returns it empty, capacity preserved.
func scrubSlice[T any](s []T) []T {
	clear(s[:cap(s)])
	return s[:0]
}

// scrub resets c for the next attempt: all reference slots are zeroed so
// nothing (undo closures, spawned tasks, lock pointers) leaks into the
// next task that receives this context, while slice capacities are
// preserved so steady-state rounds allocate nothing.
func (c *Ctx) scrub() {
	c.id = 0
	c.aborted = false
	c.colored = false
	c.acquired = scrubSlice(c.acquired)
	c.undo = scrubSlice(c.undo)
	c.spawned = scrubSlice(c.spawned)
	c.onCommit = scrubSlice(c.onCommit)
}

// ID returns the executing task's runtime ID (unique per attempt).
func (c *Ctx) ID() int64 { return c.id }

// Acquire takes an exclusive abstract lock on it. Acquiring an item the
// task already holds succeeds. If another task holds it, the acquisition
// fails with ErrConflict: the caller must unwind and return the error.
func (c *Ctx) Acquire(it *Item) error {
	if c.colored {
		// Colored round: conflict freedom is guaranteed by the coloring,
		// so just record the footprint for post-hoc staleness checking.
		c.acquired = append(c.acquired, it)
		return nil
	}
	if it.owner.Load() == c.id {
		return nil
	}
	if !it.owner.CompareAndSwap(noOwner, c.id) {
		c.aborted = true
		return fmt.Errorf("%w: item %d held by task %d (requester %d)",
			ErrConflict, it.Seq, it.owner.Load(), c.id)
	}
	c.acquired = append(c.acquired, it)
	return nil
}

// AcquireAll acquires every item, failing fast on the first conflict.
func (c *Ctx) AcquireAll(items ...*Item) error {
	for _, it := range items {
		if err := c.Acquire(it); err != nil {
			return err
		}
	}
	return nil
}

// Holds reports whether the task currently holds it.
func (c *Ctx) Holds(it *Item) bool { return it.owner.Load() == c.id }

// LogUndo registers a compensation action to be executed (in reverse
// registration order) if the task aborts. Register the undo *before*
// applying the corresponding mutation.
func (c *Ctx) LogUndo(fn func()) { c.undo = append(c.undo, fn) }

// Spawn schedules a new task to enter the work-set if and only if the
// current task commits. Spawns by aborted tasks are discarded as part of
// rollback — newly generated work is a side effect like any other.
func (c *Ctx) Spawn(t Task) { c.spawned = append(c.spawned, t) }

// OnCommit registers a commit-time action: it runs serially, after every
// task of the round has finished and locks have been released, and only
// if the task committed (Galois-style commit actions). Use it for
// structural mutations that must not race with other speculative tasks
// of the same round, e.g. removing a processed node from a shared graph.
func (c *Ctx) OnCommit(fn func()) { c.onCommit = append(c.onCommit, fn) }

// rollback runs the undo log in reverse order and clears the context's
// pending side effects. Slice capacity is kept for pooled reuse.
func (c *Ctx) rollback() {
	for i := len(c.undo) - 1; i >= 0; i-- {
		c.undo[i]()
	}
	c.undo = c.undo[:0]
	c.spawned = c.spawned[:0]
	c.onCommit = c.onCommit[:0]
}

// release frees every lock the task holds.
func (c *Ctx) release() {
	for _, it := range c.acquired {
		it.owner.Store(noOwner)
	}
	c.acquired = c.acquired[:0]
}

// RoundStats reports one executor round.
type RoundStats struct {
	Launched  int
	Committed int
	Aborted   int // conflict aborts (expected speculative losses)
	Failed    int // panics / non-conflict errors, rolled back and retried
	Poisoned  int // failures that exhausted the retry budget this round
	Spawned   int // new tasks entering the work-set from committed tasks
}

// ConflictRatio returns aborts/launched for the round (0 when idle) —
// the r_t the controller consumes. Failures are excluded: an injected
// panic is not contention, and throttling m in response would starve a
// healthy workload.
func (s RoundStats) ConflictRatio() float64 {
	if s.Launched == 0 {
		return 0
	}
	return float64(s.Aborted) / float64(s.Launched)
}

// HandleSet is the work-set abstraction the executor draws task handles
// from; implementations define the selection policy (random draws match
// the paper's model; FIFO/LIFO/chunked are provided by internal/workset).
type HandleSet interface {
	Put(h int64)
	// PutAll inserts many handles at once; the executor uses it to
	// requeue a whole round's aborts and spawns in one call.
	PutAll(hs []int64)
	Take(k int) []int64
	Len() int
}

// numTaskShards stripes the executor's handle→task map. Power of two so
// the shard index is a mask. 16 shards keep Add/commit contention
// negligible up to well past the core counts the controllers allocate.
const numTaskShards = 16

// taskShard is one stripe of the task table, padded to a cache line so
// neighboring shard locks do not false-share.
type taskShard struct {
	mu sync.Mutex
	m  map[int64]Task
	_  [40]byte
}

// taskTable is an N-way striped map from task handle to task. Handles
// are assigned round-robin by the atomic ID allocator, so striping by
// the low bits spreads load uniformly.
type taskTable struct {
	shards [numTaskShards]taskShard
}

func (t *taskTable) shard(h int64) *taskShard {
	return &t.shards[uint64(h)&(numTaskShards-1)]
}

func (t *taskTable) store(h int64, task Task) {
	s := t.shard(h)
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[int64]Task)
	}
	s.m[h] = task
	s.mu.Unlock()
}

func (t *taskTable) load(h int64) Task {
	s := t.shard(h)
	s.mu.Lock()
	task := s.m[h]
	s.mu.Unlock()
	return task
}

// delete removes a single handle (the async path settles tasks one at
// a time; the round path uses deleteBatch).
func (t *taskTable) delete(h int64) {
	s := t.shard(h)
	s.mu.Lock()
	delete(s.m, h)
	s.mu.Unlock()
}

// shardBuckets is per-round scratch grouping round indices by shard so
// batch operations take each shard lock once instead of once per task.
type shardBuckets [numTaskShards][]int32

func (b *shardBuckets) reset() {
	for i := range b {
		b[i] = b[i][:0]
	}
}

// loadBatch resolves tasks[i] = table[handles[i]] for every index in
// idx's buckets, one lock acquisition per touched shard.
func (t *taskTable) loadBatch(handles []int64, tasks []Task, b *shardBuckets) {
	b.reset()
	for i, h := range handles {
		s := uint64(h) & (numTaskShards - 1)
		b[s] = append(b[s], int32(i))
	}
	for s := range b {
		if len(b[s]) == 0 {
			continue
		}
		sh := &t.shards[s]
		sh.mu.Lock()
		for _, i := range b[s] {
			tasks[i] = sh.m[handles[i]]
		}
		sh.mu.Unlock()
	}
}

// deleteBatch removes every handle, one lock acquisition per touched
// shard.
func (t *taskTable) deleteBatch(handles []int64, b *shardBuckets) {
	b.reset()
	for i, h := range handles {
		s := uint64(h) & (numTaskShards - 1)
		b[s] = append(b[s], int32(i))
	}
	for s := range b {
		if len(b[s]) == 0 {
			continue
		}
		sh := &t.shards[s]
		sh.mu.Lock()
		for _, i := range b[s] {
			delete(sh.m, handles[i])
		}
		sh.mu.Unlock()
	}
}

// poolChunk is one dispatch unit: workers call run for every index in
// [lo, hi) and then signal the round's wait group.
type poolChunk struct {
	lo, hi int
	run    func(i int)
	wg     *sync.WaitGroup
}

// workerPool is a persistent set of goroutines executing index chunks.
// Workers hold a reference to the channel only — never to the owning
// executor — so an abandoned executor is still collectable: its
// finalizer closes the channel and the workers exit.
type workerPool struct {
	work chan poolChunk
	size int
	stop sync.Once
}

func newWorkerPool(size int) *workerPool {
	p := &workerPool{work: make(chan poolChunk, size), size: size}
	for i := 0; i < size; i++ {
		go poolWorker(p.work)
	}
	// Belt-and-braces: executors that are dropped without Close still
	// release their workers once the pool is collected.
	runtime.SetFinalizer(p, (*workerPool).shutdown)
	return p
}

func poolWorker(work <-chan poolChunk) {
	for c := range work {
		for i := c.lo; i < c.hi; i++ {
			c.run(i)
		}
		c.wg.Done()
	}
}

// shutdown terminates the workers. Idempotent.
func (p *workerPool) shutdown() {
	p.stop.Do(func() { close(p.work) })
}

// maxChunk bounds the dispatch chunk size so uneven task costs still
// load-balance across workers within a round.
const maxChunk = 64

// dispatch splits [0, n) across the workers and blocks until every
// index has been processed.
func (p *workerPool) dispatch(n int, run func(i int)) {
	chunk := (n + p.size - 1) / p.size
	if chunk > maxChunk {
		chunk = maxChunk
	}
	if chunk < 1 {
		chunk = 1
	}
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		p.work <- poolChunk{lo: lo, hi: hi, run: run, wg: &wg}
	}
	wg.Wait()
}

// Executor runs tasks speculatively, round by round. Add and the
// statistics accessors are safe for concurrent use; Round must be called
// from one goroutine at a time (the adaptive drivers do).
type Executor struct {
	tasks  taskTable
	ws     HandleSet // nil when pending+randTk are used
	nextID atomic.Int64

	mu      sync.Mutex      // guards pending only
	pending []int64         // task handles awaiting execution
	randTk  func(n int) int // selection policy: nil = take from tail

	// accounting holds the cumulative counters, failure budget, and
	// poison quarantine shared with the ordered executor; its exported
	// accessors (TotalLaunched, PoisonedTasks, OverallConflictRatio, …)
	// are promoted onto Executor.
	accounting

	// MaxParallel sets the size of the persistent worker pool serving
	// rounds; 0 means "one goroutine per task", faithfully simulating
	// one processor per task (no pool involved).
	MaxParallel int

	// TaskRetries is the per-task failure budget: a task whose attempt
	// panics or returns a non-conflict error is rolled back and retried
	// up to this many times before being poisoned (quarantined). 0
	// selects DefaultTaskRetries; a negative value disables retries
	// (first failure poisons). Conflict aborts never consume budget.
	TaskRetries int

	// WrapTask, when non-nil, intercepts every task entering the
	// work-set (Add and commit-time spawns) — the hook fault-injection
	// harnesses use. Set it before the executor is shared across
	// goroutines.
	WrapTask func(Task) Task

	pool *workerPool

	// rec, when non-nil, observes the footprints of committed tasks at
	// the round barrier — the learning phase of colored execution (see
	// conflict.go). Set and cleared only by RunColored, which owns the
	// Round loop while it runs.
	rec *ConflictRecorder

	// Round-local scratch (Round is single-caller): shard buckets for
	// batched task-table access, the committed-handle list, and the
	// per-attempt slices reused across rounds.
	buckets   shardBuckets
	committed []int64
	scratch   roundScratch
}

// roundScratch holds the per-round working slices. tasks and errs are
// fully overwritten each round. ctxs is the executor's context cache:
// contexts are drawn from the global sync.Pool at the high-water mark,
// pre-assigned to round indices before dispatch (so workers never touch
// the pool), and scrubbed in place after accounting. The cache never
// shrinks; Executor.Close returns it to the pool.
type roundScratch struct {
	tasks []Task
	ctxs  []*Ctx // len is the high-water round size; [:n] used per round
	errs  []error
}

func (r *roundScratch) grow(n int) {
	if cap(r.tasks) < n {
		r.tasks = make([]Task, n)
		r.errs = make([]error, n)
	} else {
		r.tasks = r.tasks[:n]
		r.errs = r.errs[:n]
	}
	for len(r.ctxs) < n {
		r.ctxs = append(r.ctxs, ctxPool.Get().(*Ctx))
	}
}

// release returns every cached context to the global pool.
func (r *roundScratch) release() {
	for i, c := range r.ctxs {
		ctxPool.Put(c)
		r.ctxs[i] = nil
	}
	r.ctxs = r.ctxs[:0]
}

// NewExecutor returns an empty executor. If pick is non-nil it is used
// to select pending task indices (e.g. a seeded uniform picker to match
// the model's random selection); otherwise tasks are taken LIFO.
func NewExecutor(pick func(n int) int) *Executor {
	return &Executor{randTk: pick}
}

// NewExecutorWithWorkset returns an executor drawing its task handles
// from the given work-set policy (see internal/workset), enabling
// selection-policy studies on real workloads.
func NewExecutorWithWorkset(ws HandleSet) *Executor {
	return &Executor{ws: ws}
}

// Close releases the executor's worker pool (if any) and returns its
// cached contexts to the global pool. Optional: an executor abandoned
// without Close is cleaned up by a finalizer.
func (e *Executor) Close() {
	if e.pool != nil {
		e.pool.shutdown()
		e.pool = nil
	}
	e.scratch.release()
}

// ensurePool returns a pool of exactly size workers, replacing a
// stale-sized one. Called only from Round (single caller at a time).
func (e *Executor) ensurePool(size int) *workerPool {
	if e.pool == nil || e.pool.size != size {
		if e.pool != nil {
			e.pool.shutdown()
		}
		e.pool = newWorkerPool(size)
	}
	return e.pool
}

// Snapshot is a point-in-time view of an executor's pending count and
// cumulative counters, obtained in one call. All fields are sampled
// race-free; because Round updates the counters while running, a
// snapshot taken mid-round is a consistent *monitoring* view (each
// field individually correct at sample time), not a round boundary.
type Snapshot struct {
	Pending   int
	Launched  int64
	Committed int64
	Aborted   int64
	Failed    int64 // failed attempts (panics / non-conflict errors)
	Poisoned  int64 // tasks quarantined after exhausting their budget
}

// ConflictRatio returns cumulative aborts/launches for the snapshot.
func (s Snapshot) ConflictRatio() float64 {
	if s.Launched == 0 {
		return 0
	}
	return float64(s.Aborted) / float64(s.Launched)
}

// Snapshot returns the executor's pending count and cumulative counters
// in one race-safe call — the accessor monitors (e.g. a status endpoint
// polling mid-run) should use instead of stitching together Pending and
// the Total* methods.
func (e *Executor) Snapshot() Snapshot {
	return e.accounting.snapshot(e.Pending())
}

// retryBudget resolves TaskRetries to the effective failure budget.
func (e *Executor) retryBudget() int { return resolveRetryBudget(e.TaskRetries) }

// Add inserts a task into the work-set.
func (e *Executor) Add(t Task) {
	if w := e.WrapTask; w != nil {
		t = w(t)
	}
	id := e.nextID.Add(1) - 1
	e.tasks.store(id, t)
	if e.ws != nil {
		e.ws.Put(id)
		return
	}
	e.mu.Lock()
	e.pending = append(e.pending, id)
	e.mu.Unlock()
}

// Pending returns the number of tasks awaiting execution.
func (e *Executor) Pending() int {
	if e.ws != nil {
		return e.ws.Len()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.pending)
}

// take removes up to m pending handles per the selection policy.
func (e *Executor) take(m int) []int64 {
	if e.ws != nil {
		return e.ws.Take(m)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if m > len(e.pending) {
		m = len(e.pending)
	}
	out := make([]int64, 0, m)
	for i := 0; i < m; i++ {
		var j int
		if e.randTk != nil {
			j = e.randTk(len(e.pending))
		} else {
			j = len(e.pending) - 1
		}
		last := len(e.pending) - 1
		e.pending[j], e.pending[last] = e.pending[last], e.pending[j]
		out = append(out, e.pending[last])
		e.pending = e.pending[:last]
	}
	return out
}

// requeueAll returns handles to the work-set in one batched call.
func (e *Executor) requeueAll(hs []int64) {
	if len(hs) == 0 {
		return
	}
	if e.ws != nil {
		e.ws.PutAll(hs)
		return
	}
	e.mu.Lock()
	e.pending = append(e.pending, hs...)
	e.mu.Unlock()
}

// Round launches up to m pending tasks speculatively and waits for all
// of them. Committed tasks leave the work-set and their spawns enter it;
// aborted tasks are rolled back and requeued. Locks are released only
// after every task in the round has finished, preserving the model's
// commit-order semantics.
//
// With MaxParallel > 0 the round is executed by the persistent worker
// pool: the round's index space is cut into chunks and each chunk is one
// channel send, so per-task scheduling cost is amortized away. With
// MaxParallel = 0 every task gets its own goroutine (the paper's
// one-processor-per-task reading).
func (e *Executor) Round(m int) RoundStats {
	if m < 0 {
		panic("speculation: negative round size")
	}
	handles := e.take(m)
	n := len(handles)
	if n == 0 {
		return RoundStats{}
	}

	// Resolve the round's tasks and pre-assign pooled contexts up front:
	// workers then touch only round-local slices, never the executor's
	// shared state or the context pool.
	e.scratch.grow(n)
	tasks, ctxs, errs := e.scratch.tasks, e.scratch.ctxs, e.scratch.errs
	e.tasks.loadBatch(handles, tasks, &e.buckets)
	// Reserve the round's attempt IDs with one atomic add; IDs share the
	// allocator with handles, so both stay globally unique.
	idBase := e.nextID.Add(int64(n)) - int64(n)
	run := func(i int) {
		ctx := ctxs[i]
		ctx.id = idBase + int64(i)
		err := runGuarded(tasks[i], ctx)
		if err != nil {
			// Roll back while still holding the locks (compensation
			// is race-free), then release immediately: in the
			// model, an aborted task does not block its other
			// neighbors from committing in the same round. Failures
			// (panics, non-conflict errors) take the same path, so a
			// panicking task never strands locks or undo state.
			ctx.rollback()
			ctx.release()
		}
		errs[i] = err
	}

	if e.MaxParallel > 0 {
		e.ensurePool(e.MaxParallel).dispatch(n, run)
	} else {
		var wg sync.WaitGroup
		wg.Add(n)
		for i := 0; i < n; i++ {
			go func(i int) {
				defer wg.Done()
				run(i)
			}(i)
		}
		wg.Wait()
	}

	// Round barrier passed: release the committed tasks' locks (aborted
	// tasks already released on rollback), then run commit actions
	// serially and account.
	for i := 0; i < n; i++ {
		if errs[i] == nil {
			// Learning for colored execution happens here, on the round
			// driver thread before the footprint is cleared: only
			// committed tasks contribute edges (aborted tasks retry and
			// are observed when they eventually commit).
			if e.rec != nil {
				e.rec.recordCommit(tasks[i], ctxs[i].acquired)
			}
			ctxs[i].release()
		}
	}
	stats := RoundStats{Launched: n}
	budget := e.retryBudget()
	wrap := e.WrapTask
	var commitActions []func()
	var requeue, spawnedIDs, poisonHandles []int64
	e.committed = e.committed[:0]
	for i := 0; i < n; i++ {
		if err := errs[i]; err != nil {
			if errors.Is(err, ErrConflict) {
				stats.Aborted++
				requeue = append(requeue, handles[i])
				continue
			}
			// Failure (panic or non-conflict error): the attempt was
			// already rolled back; spend retry budget or quarantine.
			stats.Failed++
			h := handles[i]
			if _, poisoned := e.noteFailure(h, budget, err.Error()); poisoned {
				stats.Poisoned++
				poisonHandles = append(poisonHandles, h)
				continue
			}
			requeue = append(requeue, h)
			continue
		}
		stats.Committed++
		// A previously failed task may have recovered; forget its record.
		e.clearFailure(handles[i])
		e.committed = append(e.committed, handles[i])
		for _, t := range ctxs[i].spawned {
			if wrap != nil {
				t = wrap(t)
			}
			id := e.nextID.Add(1) - 1
			e.tasks.store(id, t)
			spawnedIDs = append(spawnedIDs, id)
			stats.Spawned++
		}
		commitActions = append(commitActions, ctxs[i].onCommit...)
	}
	e.tasks.deleteBatch(e.committed, &e.buckets)
	if len(poisonHandles) != 0 {
		// Quarantined tasks leave the task table like commits do, but
		// are never requeued.
		e.tasks.deleteBatch(poisonHandles, &e.buckets)
	}
	// Aborted handles go back first (they are retries), then the newly
	// spawned work — each as one batched insertion.
	e.requeueAll(requeue)
	e.requeueAll(spawnedIDs)
	for _, ctx := range ctxs[:n] {
		ctx.scrub()
	}
	e.addTotals(int64(stats.Launched), int64(stats.Committed),
		int64(stats.Aborted), int64(stats.Failed), int64(stats.Poisoned))
	for _, fn := range commitActions {
		fn()
	}
	if e.rec != nil {
		e.rec.roundDone()
	}
	return stats
}
