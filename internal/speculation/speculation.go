// Package speculation implements a Galois-style optimistic parallelization
// runtime (§1): tasks drawn from a work-set execute speculatively and
// concurrently on goroutines; conflicts are detected at runtime through
// exclusive abstract locks on shared items; a conflicting task aborts,
// rolls back its side effects through an undo log, and is retried in a
// later round.
//
// Execution is round-structured to mirror the paper's model: each round
// launches m tasks (m chosen by a processor-allocation controller), waits
// for all of them, and reports the measured conflict ratio r = aborts/m.
// Locks are held to the end of the round, so intra-round semantics match
// the model's "a task aborts iff it conflicts with a task that committed
// before it".
//
// The paper assumes conflicting and non-conflicting tasks cost the same
// (§2, as in Delaunay mesh refinement); the runtime therefore treats an
// abort as a full processor-round of wasted work in its accounting.
package speculation

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrConflict is returned by Ctx.Acquire when the requested item is held
// by another in-flight task. Operator code must propagate it (or wrap it)
// so the executor can roll the task back.
var ErrConflict = errors.New("speculation: conflict detected")

const noOwner int64 = -1

// Item is a lockable abstract location. Tasks must acquire an item
// before reading or writing the state it guards. The zero value is not
// ready; use NewItem.
type Item struct {
	owner atomic.Int64
	// Seq is an optional caller-visible tag (e.g. graph node ID) used in
	// diagnostics.
	Seq int64
}

// NewItem returns an unowned item with the given diagnostic tag.
func NewItem(seq int64) *Item {
	it := &Item{Seq: seq}
	it.owner.Store(noOwner)
	return it
}

// Owner returns the ID of the task currently holding the item, or -1.
func (it *Item) Owner() int64 { return it.owner.Load() }

// Task is a unit of speculative work (one iteration of an amorphous
// data-parallel loop). Run must acquire every item it touches through
// ctx and must return ErrConflict (possibly wrapped) when an acquisition
// fails. Any side effect on shared state must either be registered with
// ctx.LogUndo or be deferred until all acquisitions are done (the
// "cautious operator" pattern, which needs no rollback).
type Task interface {
	Run(ctx *Ctx) error
}

// TaskFunc adapts a function to Task.
type TaskFunc func(ctx *Ctx) error

// Run implements Task.
func (f TaskFunc) Run(ctx *Ctx) error { return f(ctx) }

// Ctx is the per-execution speculative context handed to Task.Run. It is
// confined to the executing goroutine and must not escape the Run call.
type Ctx struct {
	id       int64
	acquired []*Item
	undo     []func()
	spawned  []Task
	onCommit []func()
	aborted  bool
}

// ID returns the executing task's runtime ID (unique per attempt).
func (c *Ctx) ID() int64 { return c.id }

// Acquire takes an exclusive abstract lock on it. Acquiring an item the
// task already holds succeeds. If another task holds it, the acquisition
// fails with ErrConflict: the caller must unwind and return the error.
func (c *Ctx) Acquire(it *Item) error {
	if it.owner.Load() == c.id {
		return nil
	}
	if !it.owner.CompareAndSwap(noOwner, c.id) {
		c.aborted = true
		return fmt.Errorf("%w: item %d held by task %d (requester %d)",
			ErrConflict, it.Seq, it.owner.Load(), c.id)
	}
	c.acquired = append(c.acquired, it)
	return nil
}

// AcquireAll acquires every item, failing fast on the first conflict.
func (c *Ctx) AcquireAll(items ...*Item) error {
	for _, it := range items {
		if err := c.Acquire(it); err != nil {
			return err
		}
	}
	return nil
}

// Holds reports whether the task currently holds it.
func (c *Ctx) Holds(it *Item) bool { return it.owner.Load() == c.id }

// LogUndo registers a compensation action to be executed (in reverse
// registration order) if the task aborts. Register the undo *before*
// applying the corresponding mutation.
func (c *Ctx) LogUndo(fn func()) { c.undo = append(c.undo, fn) }

// Spawn schedules a new task to enter the work-set if and only if the
// current task commits. Spawns by aborted tasks are discarded as part of
// rollback — newly generated work is a side effect like any other.
func (c *Ctx) Spawn(t Task) { c.spawned = append(c.spawned, t) }

// OnCommit registers a commit-time action: it runs serially, after every
// task of the round has finished and locks have been released, and only
// if the task committed (Galois-style commit actions). Use it for
// structural mutations that must not race with other speculative tasks
// of the same round, e.g. removing a processed node from a shared graph.
func (c *Ctx) OnCommit(fn func()) { c.onCommit = append(c.onCommit, fn) }

// rollback runs the undo log in reverse order and clears it.
func (c *Ctx) rollback() {
	for i := len(c.undo) - 1; i >= 0; i-- {
		c.undo[i]()
	}
	c.undo = nil
	c.spawned = nil
	c.onCommit = nil
}

// release frees every lock the task holds.
func (c *Ctx) release() {
	for _, it := range c.acquired {
		it.owner.Store(noOwner)
	}
	c.acquired = nil
}

// RoundStats reports one executor round.
type RoundStats struct {
	Launched  int
	Committed int
	Aborted   int
	Spawned   int // new tasks entering the work-set from committed tasks
}

// ConflictRatio returns aborts/launched for the round (0 when idle) —
// the r_t the controller consumes.
func (s RoundStats) ConflictRatio() float64 {
	if s.Launched == 0 {
		return 0
	}
	return float64(s.Aborted) / float64(s.Launched)
}

// HandleSet is the work-set abstraction the executor draws task handles
// from; implementations define the selection policy (random draws match
// the paper's model; FIFO/LIFO/chunked are provided by internal/workset).
type HandleSet interface {
	Put(h int64)
	Take(k int) []int64
	Len() int
}

// Executor runs tasks speculatively, round by round.
type Executor struct {
	mu      sync.Mutex
	tasks   map[int64]Task
	ws      HandleSet // nil when pending+randTk are used
	pending []int64   // task handles awaiting execution
	nextID  int64
	randTk  func(n int) int // selection policy: nil = take from tail

	// Cumulative counters across rounds.
	TotalLaunched  int64
	TotalCommitted int64
	TotalAborted   int64

	// MaxParallel bounds the number of concurrently executing
	// goroutines within a round; 0 means "one goroutine per task",
	// faithfully simulating one processor per task.
	MaxParallel int
}

// NewExecutor returns an empty executor. If pick is non-nil it is used
// to select pending task indices (e.g. a seeded uniform picker to match
// the model's random selection); otherwise tasks are taken LIFO.
func NewExecutor(pick func(n int) int) *Executor {
	return &Executor{tasks: make(map[int64]Task), randTk: pick}
}

// NewExecutorWithWorkset returns an executor drawing its task handles
// from the given work-set policy (see internal/workset), enabling
// selection-policy studies on real workloads.
func NewExecutorWithWorkset(ws HandleSet) *Executor {
	return &Executor{tasks: make(map[int64]Task), ws: ws}
}

// Add inserts a task into the work-set.
func (e *Executor) Add(t Task) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.addLocked(t)
}

func (e *Executor) addLocked(t Task) {
	id := e.nextID
	e.nextID++
	e.tasks[id] = t
	if e.ws != nil {
		e.ws.Put(id)
		return
	}
	e.pending = append(e.pending, id)
}

// Pending returns the number of tasks awaiting execution.
func (e *Executor) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ws != nil {
		return e.ws.Len()
	}
	return len(e.pending)
}

// take removes up to m pending handles per the selection policy.
func (e *Executor) take(m int) []int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ws != nil {
		return e.ws.Take(m)
	}
	if m > len(e.pending) {
		m = len(e.pending)
	}
	out := make([]int64, 0, m)
	for i := 0; i < m; i++ {
		var j int
		if e.randTk != nil {
			j = e.randTk(len(e.pending))
		} else {
			j = len(e.pending) - 1
		}
		last := len(e.pending) - 1
		e.pending[j], e.pending[last] = e.pending[last], e.pending[j]
		out = append(out, e.pending[last])
		e.pending = e.pending[:last]
	}
	return out
}

// Round launches up to m pending tasks speculatively and waits for all
// of them. Committed tasks leave the work-set and their spawns enter it;
// aborted tasks are rolled back and requeued. Locks are released only
// after every task in the round has finished, preserving the model's
// commit-order semantics.
func (e *Executor) Round(m int) RoundStats {
	if m < 0 {
		panic("speculation: negative round size")
	}
	handles := e.take(m)
	if len(handles) == 0 {
		return RoundStats{}
	}

	type outcome struct {
		handle int64
		ctx    *Ctx
		err    error
	}
	results := make([]outcome, len(handles))

	limit := e.MaxParallel
	if limit <= 0 || limit > len(handles) {
		limit = len(handles)
	}
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	for i, h := range handles {
		wg.Add(1)
		go func(i int, h int64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			e.mu.Lock()
			task := e.tasks[h]
			id := e.nextID // unique attempt ID, distinct from handles
			e.nextID++
			e.mu.Unlock()
			ctx := &Ctx{id: id}
			err := task.Run(ctx)
			if err != nil {
				// Roll back while still holding the locks (compensation
				// is race-free), then release immediately: in the
				// model, an aborted task does not block its other
				// neighbors from committing in the same round.
				ctx.rollback()
				ctx.release()
			}
			results[i] = outcome{handle: h, ctx: ctx, err: err}
		}(i, h)
	}
	wg.Wait()

	// Round barrier passed: release the committed tasks' locks (aborted
	// tasks already released on rollback), then run commit actions
	// serially and account.
	for _, res := range results {
		if res.err == nil {
			res.ctx.release()
		}
	}
	stats := RoundStats{Launched: len(handles)}
	var commitActions []func()
	e.mu.Lock()
	for _, res := range results {
		if res.err != nil {
			if !errors.Is(res.err, ErrConflict) {
				// Non-conflict task errors are programming errors in
				// operator code; surface them loudly.
				e.mu.Unlock()
				panic(fmt.Sprintf("speculation: task failed with non-conflict error: %v", res.err))
			}
			stats.Aborted++
			if e.ws != nil {
				e.ws.Put(res.handle)
			} else {
				e.pending = append(e.pending, res.handle)
			}
			continue
		}
		stats.Committed++
		delete(e.tasks, res.handle)
		for _, t := range res.ctx.spawned {
			e.addLocked(t)
			stats.Spawned++
		}
		commitActions = append(commitActions, res.ctx.onCommit...)
	}
	e.TotalLaunched += int64(stats.Launched)
	e.TotalCommitted += int64(stats.Committed)
	e.TotalAborted += int64(stats.Aborted)
	e.mu.Unlock()
	for _, fn := range commitActions {
		fn()
	}
	return stats
}

// OverallConflictRatio returns cumulative aborts/launches.
func (e *Executor) OverallConflictRatio() float64 {
	l := atomic.LoadInt64(&e.TotalLaunched)
	if l == 0 {
		return 0
	}
	return float64(atomic.LoadInt64(&e.TotalAborted)) / float64(l)
}
