package speculation

import (
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// TestSnapshotConcurrent hammers Snapshot from several monitor
// goroutines while rounds are in flight — the access pattern a status
// endpoint produces. Run under -race (the Makefile's race target covers
// this package); it also checks the counters are monotone and
// internally consistent at every sample.
func TestSnapshotConcurrent(t *testing.T) {
	r := rng.New(7)
	g := graph.RandomWithAvgDegree(r, 400, 12)
	wl := NewGraphWorkload(g)
	e := NewGraphExecutor(wl, r.Split())
	e.MaxParallel = 4
	defer e.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last Snapshot
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := e.Snapshot()
				// Each counter is individually monotone; cross-field
				// invariants only hold at round boundaries (checked after
				// the drain below).
				if s.Launched < last.Launched || s.Committed < last.Committed || s.Aborted < last.Aborted {
					t.Errorf("counters went backwards: %+v then %+v", last, s)
					return
				}
				last = s
			}
		}()
	}

	for e.Pending() > 0 {
		e.Round(32)
	}
	close(stop)
	wg.Wait()

	s := e.Snapshot()
	if s.Pending != 0 {
		t.Errorf("drained executor reports pending=%d", s.Pending)
	}
	if s.Committed != 400 {
		t.Errorf("committed=%d, want 400 (one per node)", s.Committed)
	}
	if s.Launched != s.Committed+s.Aborted {
		t.Errorf("launched %d != committed %d + aborted %d", s.Launched, s.Committed, s.Aborted)
	}
	if got := s.ConflictRatio(); got != e.OverallConflictRatio() {
		t.Errorf("snapshot ratio %v != executor ratio %v", got, e.OverallConflictRatio())
	}
}

// TestOrderedSnapshot checks the ordered executor's one-call snapshot
// against its individual accessors after a drained run.
func TestOrderedSnapshot(t *testing.T) {
	e := NewOrderedExecutor()
	defer e.Close()
	e.Add(chainTask{key: Key{Time: 1}, depth: 8})
	for e.Pending() > 0 {
		e.Round(4)
	}
	s := e.Snapshot()
	if s.Pending != 0 {
		t.Errorf("pending=%d after drain", s.Pending)
	}
	if s.Launched != e.TotalLaunched() || s.Committed != e.TotalCommitted() {
		t.Errorf("snapshot %+v disagrees with accessors", s)
	}
	if want := e.TotalConflicts() + e.TotalPremature(); s.Aborted != want {
		t.Errorf("aborted=%d, want conflicts+premature=%d", s.Aborted, want)
	}
}

// chainTask spawns one successor per commit until depth runs out.
type chainTask struct {
	key   Key
	depth int
}

func (c chainTask) Key() Key { return c.key }

func (c chainTask) Run(ctx *OrderedCtx) error {
	if c.depth > 0 {
		ctx.Spawn(chainTask{key: Key{Time: c.key.Time + 1}, depth: c.depth - 1})
	}
	return nil
}
