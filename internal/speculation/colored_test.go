package speculation

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/control"
	"repro/internal/graph"
	"repro/internal/rng"
)

// stableChainTask is the test fixture for colored execution: a task
// with a fixed conflict footprint (its node item plus the incident edge
// items of a fixed conflict graph) that respawns itself until it has
// committed `repeats` times. The conflict structure never changes, so a
// colored drive should learn it, color it, and run the tail of the
// drain lock-free.
type stableChainTask struct {
	key      int64
	items    []*Item
	left     atomic.Int64
	commitFn func()
	// extra, when non-nil, returns an additional item to acquire — the
	// staleness tests use it to mutate a footprint mid-drive.
	extra func() *Item
}

func (t *stableChainTask) ConflictKey() int64 { return t.key }

func (t *stableChainTask) Run(ctx *Ctx) error {
	if err := ctx.AcquireAll(t.items...); err != nil {
		return err
	}
	if t.extra != nil {
		if it := t.extra(); it != nil {
			if err := ctx.Acquire(it); err != nil {
				return err
			}
		}
	}
	if t.left.Load() > 1 {
		ctx.Spawn(t)
	}
	ctx.OnCommit(t.commitFn)
	return nil
}

// buildStableFixture wires one stableChainTask per node of g into a
// fresh executor with the model's seeded uniform-random selection (so
// learning covers every chain).
func buildStableFixture(g *graph.Graph, repeats, parallel int, seed uint64) (*Executor, []*stableChainTask, *atomic.Int64) {
	r := rng.New(seed)
	var mu sync.Mutex
	e := NewExecutor(func(n int) int {
		mu.Lock()
		defer mu.Unlock()
		return r.Intn(n)
	})
	e.MaxParallel = parallel

	nodes := g.Nodes()
	nodeItems := make(map[int]*Item, len(nodes))
	for _, v := range nodes {
		nodeItems[v] = NewItem(int64(v))
	}
	edgeItems := make(map[[2]int]*Item)
	edgeFor := func(u, v int) *Item {
		k := edgeKey(u, v)
		it, ok := edgeItems[k]
		if !ok {
			it = NewItem((int64(k[0])+1)<<32 | int64(k[1]))
			edgeItems[k] = it
		}
		return it
	}

	total := new(atomic.Int64)
	tasks := make([]*stableChainTask, 0, len(nodes))
	for _, v := range nodes {
		t := &stableChainTask{key: int64(v)}
		t.items = append(t.items, nodeItems[v])
		g.EachNeighbor(v, func(u int) {
			t.items = append(t.items, edgeFor(v, u))
		})
		t.left.Store(int64(repeats))
		tt := t
		t.commitFn = func() {
			tt.left.Add(-1)
			total.Add(1)
		}
		tasks = append(tasks, t)
		e.Add(t)
	}
	return e, tasks, total
}

func testHybrid(rho float64) control.Controller {
	cfg := control.DefaultHybridConfig(rho)
	cfg.MMax = 64
	return control.NewHybrid(cfg)
}

func TestRunColoredStableDrains(t *testing.T) {
	g := graph.Grid2D(8, 8)
	const repeats = 12
	e, tasks, total := buildStableFixture(g, repeats, 4, 7)
	defer e.Close()

	var coloredAborted int
	res := e.RunColored(context.Background(), testHybrid(0.25), ColoredOptions{
		OnRound: func(cr ColoredRound) {
			if cr.Colored {
				coloredAborted += cr.Aborted
			}
		},
	})

	want := int64(len(tasks) * repeats)
	if got := total.Load(); got != want {
		t.Fatalf("committed %d chain steps, want %d", got, want)
	}
	for _, task := range tasks {
		if l := task.left.Load(); l != 0 {
			t.Fatalf("chain %d left=%d, want 0", task.key, l)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("pending %d after drain", e.Pending())
	}
	if res.Committed != want {
		t.Fatalf("res.Committed=%d, want %d", res.Committed, want)
	}
	if res.Colorings == 0 || res.ColoredRounds == 0 {
		t.Fatalf("drive never entered the colored phase: %+v", res)
	}
	if res.Fallbacks != 0 || res.ColoredAborts != 0 || coloredAborted != 0 {
		t.Fatalf("stable workload tripped staleness: fallbacks=%d coloredAborts=%d",
			res.Fallbacks, res.ColoredAborts)
	}
	if res.ColoredConflictRatio() != 0 {
		t.Fatalf("colored conflict ratio %v, want 0", res.ColoredConflictRatio())
	}
	if res.Degraded || res.Canceled {
		t.Fatalf("unexpected degraded/canceled: %+v", res)
	}
	// The whole point: the bulk of the drain should run colored.
	if res.ColoredCommits == 0 {
		t.Fatal("no colored commits")
	}
}

// TestRecorderSnapshotColoringIndependent is the color-class property
// test at the learning layer: feed the recorder the footprints of a
// known conflict graph, snapshot, color, and assert (a) the learned CSR
// has exactly the real conflict edges and (b) every color class is an
// independent set of the learned CSR.
func TestRecorderSnapshotColoringIndependent(t *testing.T) {
	g := graph.RandomWithAvgDegree(rng.New(3), 120, 6.0)
	rec := NewConflictRecorder(0, 0)

	nodeItems := make(map[int]*Item)
	edgeItems := make(map[[2]int]*Item)
	for _, v := range g.Nodes() {
		nodeItems[v] = NewItem(int64(v))
	}
	footprint := func(v int) []*Item {
		items := []*Item{nodeItems[v]}
		g.EachNeighbor(v, func(u int) {
			k := edgeKey(v, u)
			it, ok := edgeItems[k]
			if !ok {
				it = NewItem((int64(k[0])+1)<<32 | int64(k[1]))
				edgeItems[k] = it
			}
			items = append(items, it)
		})
		return items
	}
	for _, v := range g.Nodes() {
		rec.recordCommit(Keyed(int64(v), TaskFunc(func(*Ctx) error { return nil })), footprint(v))
	}
	rec.roundDone()
	for i := 0; i < DefaultStableRounds; i++ {
		rec.recordCommit(Keyed(int64(g.Nodes()[0]), TaskFunc(func(*Ctx) error { return nil })), footprint(g.Nodes()[0]))
		rec.roundDone()
	}
	if !rec.Stable(DefaultStableRounds) {
		t.Fatal("recorder not stable after quiet rounds")
	}
	lg := rec.Snapshot()
	if lg == nil {
		t.Fatal("nil snapshot")
	}
	if lg.NumKeys() != g.NumNodes() {
		t.Fatalf("snapshot has %d keys, want %d", lg.NumKeys(), g.NumNodes())
	}

	// (a) learned edges == real conflict edges.
	csr := lg.CSR()
	if csr.NumEdges() != g.NumEdges() {
		t.Fatalf("learned %d edges, want %d", csr.NumEdges(), g.NumEdges())
	}
	for i := 0; i < csr.NumNodes(); i++ {
		u := int(lg.Key(i))
		for _, jn := range csr.Neighbors(i) {
			v := int(lg.Key(int(jn)))
			if !g.HasEdge(u, v) {
				t.Fatalf("learned edge (%d,%d) not in the real conflict graph", u, v)
			}
		}
	}

	// (b) every color class is an independent set of the learned CSR.
	colors, numColors := graph.ColorCSR(csr, nil, 2)
	if !graph.IsProperColoring(csr, colors) {
		t.Fatal("coloring of learned CSR not proper")
	}
	classes := make([][]int, numColors)
	for i := 0; i < csr.NumNodes(); i++ {
		classes[colors[i]] = append(classes[colors[i]], int(lg.Key(i)))
	}
	for col, class := range classes {
		if !graph.IsIndependentSet(g, class) {
			t.Fatalf("color class %d not independent in the source conflict graph", col)
		}
	}

	// Footprint membership round-trips.
	for _, v := range g.Nodes() {
		idx := lg.KeyIndex(int64(v))
		if idx < 0 {
			t.Fatalf("key %d missing from snapshot", v)
		}
		for _, it := range footprint(v) {
			if !lg.InFootprint(idx, it.Seq) {
				t.Fatalf("item %d missing from key %d's footprint", it.Seq, v)
			}
		}
		if lg.InFootprint(idx, int64(1)<<62) {
			t.Fatalf("phantom item in key %d's footprint", v)
		}
	}
	if lg.KeyIndex(1 << 40) != -1 {
		t.Fatal("unknown key resolved to an index")
	}
}

// TestRunColoredStalenessFallback mutates one task's footprint after
// the drive enters the colored phase and asserts the very next colored
// round trips the fallback — and that the drive still drains with the
// exact commit count (no correctness loss).
func TestRunColoredStalenessFallback(t *testing.T) {
	g := graph.Grid2D(8, 8)
	const repeats = 60
	e, tasks, total := buildStableFixture(g, repeats, 4, 11)
	defer e.Close()

	extraItem := NewItem(1 << 40) // far outside every learned footprint
	var mutate atomic.Bool
	tasks[0].extra = func() *Item {
		if mutate.Load() {
			return extraItem
		}
		return nil
	}

	type roundView struct {
		colored  bool
		fallback bool
	}
	var trace []roundView
	mutatedAt := -1
	res := e.RunColored(context.Background(), testHybrid(0.25), ColoredOptions{
		OnRound: func(cr ColoredRound) {
			trace = append(trace, roundView{colored: cr.Colored, fallback: cr.Fallback})
			if cr.Colored && mutatedAt < 0 {
				if l := tasks[0].left.Load(); l <= 1 {
					t.Fatalf("chain 0 nearly drained (left=%d) before the colored phase; raise repeats", l)
				}
				mutate.Store(true)
				mutatedAt = cr.Round
			}
		},
	})

	if mutatedAt < 0 {
		t.Fatalf("drive never entered the colored phase: %+v", res)
	}
	// The round after the mutation is still colored (the stale graph is
	// only detected by running it) and must trip the fallback.
	next := mutatedAt + 1
	if next >= len(trace) {
		t.Fatalf("drive ended immediately after mutation (round %d of %d)", mutatedAt, len(trace))
	}
	if !trace[next].colored || !trace[next].fallback {
		t.Fatalf("round %d after mutation: colored=%v fallback=%v, want colored fallback",
			next, trace[next].colored, trace[next].fallback)
	}
	// Fallback means the following round (if any) is speculative again.
	if next+1 < len(trace) && trace[next+1].colored {
		t.Fatal("round after fallback still colored")
	}
	if res.Fallbacks == 0 {
		t.Fatalf("no fallbacks recorded: %+v", res)
	}

	// Correctness: the mutation costs throughput, never commits.
	want := int64(len(tasks) * repeats)
	if got := total.Load(); got != want {
		t.Fatalf("committed %d chain steps, want %d", got, want)
	}
	for _, task := range tasks {
		if l := task.left.Load(); l != 0 {
			t.Fatalf("chain %d left=%d, want 0", task.key, l)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("pending %d after drain", e.Pending())
	}
}

// TestRunColoredUnkeyedStaysSpeculative: tasks without ConflictKey can
// run under RunColored, but the drive degrades to pure speculation.
func TestRunColoredUnkeyedStaysSpeculative(t *testing.T) {
	e := NewExecutor(nil)
	e.MaxParallel = 2
	defer e.Close()
	var runs atomic.Int64
	for i := 0; i < 16; i++ {
		remaining := 5
		var task TaskFunc
		task = func(ctx *Ctx) error {
			runs.Add(1)
			remaining--
			if remaining > 0 {
				ctx.Spawn(task)
			}
			return nil
		}
		e.Add(task)
	}
	res := e.RunColored(context.Background(), testHybrid(0.25), ColoredOptions{})
	if !res.Degraded {
		t.Fatalf("unkeyed drive not degraded: %+v", res)
	}
	if res.ColoredRounds != 0 || res.Colorings != 0 {
		t.Fatalf("unkeyed drive entered colored phase: %+v", res)
	}
	if got := runs.Load(); got != 16*5 {
		t.Fatalf("ran %d attempts, want %d", got, 16*5)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending %d after drain", e.Pending())
	}
}

func TestRunColoredCancel(t *testing.T) {
	g := graph.Grid2D(4, 4)
	e, _, _ := buildStableFixture(g, 1000, 2, 3)
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	rounds := 0
	res := e.RunColored(ctx, testHybrid(0.25), ColoredOptions{
		OnRound: func(ColoredRound) {
			rounds++
			if rounds == 5 {
				cancel()
			}
		},
	})
	if !res.Canceled {
		t.Fatalf("drive not canceled: %+v", res)
	}
	if res.Rounds > 6 {
		t.Fatalf("drive ran %d rounds after cancel at 5", res.Rounds)
	}
}

func TestRunColoredMaxBounds(t *testing.T) {
	g := graph.Grid2D(6, 6)
	e, _, _ := buildStableFixture(g, 1000, 2, 5)
	defer e.Close()
	res := e.RunColored(context.Background(), testHybrid(0.25), ColoredOptions{MaxRounds: 4})
	if res.Rounds != 4 || res.Canceled {
		t.Fatalf("MaxRounds: got %d rounds (canceled=%v), want 4", res.Rounds, res.Canceled)
	}

	e2, _, _ := buildStableFixture(g, 1000, 2, 5)
	defer e2.Close()
	res2 := e2.RunColored(context.Background(), testHybrid(0.25), ColoredOptions{MaxCommits: 100})
	if res2.Committed < 100 {
		t.Fatalf("MaxCommits: committed %d, want >= 100", res2.Committed)
	}
}

func TestConflictRecorderOverflowNeverStable(t *testing.T) {
	rec := NewConflictRecorder(2, 4)
	items := []*Item{NewItem(1), NewItem(2), NewItem(3)}
	task := Keyed(9, TaskFunc(func(*Ctx) error { return nil }))
	rec.recordCommit(task, items)
	rec.roundDone()
	if !rec.Degraded() {
		t.Fatal("3 items under a 2-item cap did not overflow")
	}
	for i := 0; i < 10; i++ {
		rec.recordCommit(task, items[:1])
		rec.roundDone()
	}
	if rec.Stable(1) {
		t.Fatal("overflowed recorder claimed stability")
	}
	if rec.Snapshot() != nil {
		t.Fatal("overflowed recorder produced a snapshot")
	}
	rec.Reset()
	if rec.Degraded() {
		t.Fatal("Reset did not clear overflow")
	}
}

func TestKeyedWrapper(t *testing.T) {
	ran := false
	task := Keyed(42, TaskFunc(func(*Ctx) error { ran = true; return nil }))
	kt, ok := task.(ConflictKeyed)
	if !ok || kt.ConflictKey() != 42 {
		t.Fatal("Keyed did not attach the key")
	}
	if err := task.Run(&Ctx{}); err != nil || !ran {
		t.Fatal("Keyed did not delegate Run")
	}
}
