package speculation

import (
	"testing"

	"repro/internal/control"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestAdaptiveResultAccounting(t *testing.T) {
	r := rng.New(1)
	g := graph.RandomWithAvgDegree(r, 400, 12)
	wl := NewGraphWorkload(g)
	e := NewGraphExecutor(wl, r.Split())
	res := RunAdaptive(e, control.NewHybrid(control.DefaultHybridConfig(0.25)), 100000)
	if res.UsefulWork != 400 {
		t.Fatalf("useful work %d, want 400", res.UsefulWork)
	}
	if res.ProcRounds != res.UsefulWork+res.WastedWork {
		t.Fatalf("accounting identity broken: %d != %d + %d",
			res.ProcRounds, res.UsefulWork, res.WastedWork)
	}
	if eff := res.Efficiency(); eff <= 0 || eff > 1 {
		t.Fatalf("efficiency %v out of (0,1]", eff)
	}
	empty := &AdaptiveResult{}
	if empty.Efficiency() != 0 {
		t.Fatal("empty run efficiency should be 0")
	}
}

// The paper's core trade-off: a grossly over-provisioned fixed
// allocation wastes far more processor-rounds than the adaptive
// controller on the same workload, at comparable makespan (rounds).
func TestAdaptiveBeatsOverprovisionedFixed(t *testing.T) {
	run := func(c control.Controller, seed uint64) *AdaptiveResult {
		r := rng.New(seed)
		g := graph.RandomWithAvgDegree(r, 1500, 24)
		wl := NewGraphWorkload(g)
		e := NewGraphExecutor(wl, r.Split())
		return RunAdaptive(e, c, 100000)
	}
	adaptive := run(control.NewHybrid(control.DefaultHybridConfig(0.25)), 7)
	fixedBig := run(control.Fixed{Procs: 1024}, 7)

	if adaptive.UsefulWork != 1500 || fixedBig.UsefulWork != 1500 {
		t.Fatal("both runs must complete the same work")
	}
	if adaptive.WastedWork >= fixedBig.WastedWork {
		t.Fatalf("adaptive wasted %d >= fixed-1024 wasted %d",
			adaptive.WastedWork, fixedBig.WastedWork)
	}
	if adaptive.Efficiency() <= fixedBig.Efficiency() {
		t.Fatalf("adaptive efficiency %v not above fixed-1024 %v",
			adaptive.Efficiency(), fixedBig.Efficiency())
	}
	// And a starved fixed allocation is slow: many more rounds.
	fixedTiny := run(control.Fixed{Procs: 2}, 7)
	if fixedTiny.Rounds <= 2*adaptive.Rounds {
		t.Fatalf("fixed-2 rounds %d not much slower than adaptive %d",
			fixedTiny.Rounds, adaptive.Rounds)
	}
}

// With a mutator-style regrowth workload (committed work spawns new
// conflicting work, like refinement creating new bad triangles), the
// controller keeps the ratio near target through the regrowth phase.
func TestAdaptiveUnderRegrowth(t *testing.T) {
	r := rng.New(3)
	g := graph.RandomWithAvgDegree(r, 300, 8)
	wl := NewGraphWorkload(g)
	e := NewGraphExecutor(wl, r.Split())

	// Wrap each task so committing regrows up to a budget: a committed
	// node spawns a fresh node wired to ~8 random survivors.
	budget := 600
	var regrow func() Task
	regrow = func() Task {
		return TaskFunc(func(ctx *Ctx) error {
			ctx.OnCommit(func() {
				if budget <= 0 {
					return
				}
				budget--
				gg := wl.Graph()
				v := gg.AddNode()
				nodes := gg.Nodes()
				for i := 0; i < 8 && len(nodes) > 1; i++ {
					u := nodes[r.Intn(len(nodes))]
					if u != v && !gg.HasEdge(u, v) {
						gg.AddEdge(u, v)
					}
				}
				e.Add(wl.TaskFor(v))
				e.Add(regrow())
			})
			return nil
		})
	}
	// Seed regrowth triggers alongside the initial population.
	for i := 0; i < 50; i++ {
		e.Add(regrow())
	}
	res := RunAdaptive(e, control.NewHybrid(control.DefaultHybridConfig(0.25)), 200000)
	if e.Pending() != 0 {
		t.Fatal("regrowth workload did not drain")
	}
	if budget != 0 {
		t.Fatalf("regrowth budget remaining: %d", budget)
	}
	if res.UsefulWork < 300+600 {
		t.Fatalf("useful work %d below node count", res.UsefulWork)
	}
	if err := wl.Graph().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
