package speculation

import (
	"sync/atomic"
	"testing"

	"repro/internal/control"
)

// testOrderedTask is a configurable ordered task for executor tests.
type testOrderedTask struct {
	key    Key
	claims []*Item
	spawn  []OrderedTask
	effect func()
	ran    *atomic.Int32
}

func (t *testOrderedTask) Key() Key { return t.key }

func (t *testOrderedTask) Run(ctx *OrderedCtx) error {
	if t.ran != nil {
		t.ran.Add(1)
	}
	ctx.Claim(t.claims...)
	for _, s := range t.spawn {
		ctx.Spawn(s)
	}
	if t.effect != nil {
		ctx.OnCommit(t.effect)
	}
	return nil
}

func key(tm float64) Key { return Key{Time: tm} }

func TestKeyOrdering(t *testing.T) {
	if !key(1).Less(key(2)) || key(2).Less(key(1)) {
		t.Fatal("time ordering broken")
	}
	a := Key{Time: 1, Tie: 3}
	b := Key{Time: 1, Tie: 7}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("tie ordering broken")
	}
	if MaxKey.Less(key(1e300)) {
		t.Fatal("MaxKey not maximal")
	}
}

func TestOrderedCommitsInPriorityOrder(t *testing.T) {
	e := NewOrderedExecutor()
	var order []int
	for _, tm := range []float64{3, 1, 2} {
		tm := tm
		e.Add(&testOrderedTask{key: key(tm), effect: func() { order = append(order, int(tm)) }})
	}
	st := e.Round(3)
	if st.Committed != 3 {
		t.Fatalf("stats %+v", st)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("commit order %v, want %v", order, want)
		}
	}
}

func TestOrderedConflictEarliestWins(t *testing.T) {
	e := NewOrderedExecutor()
	it := NewItem(0)
	var committed []float64
	mk := func(tm float64) *testOrderedTask {
		return &testOrderedTask{
			key:    key(tm),
			claims: []*Item{it},
			effect: func() { committed = append(committed, tm) },
		}
	}
	e.Add(mk(2))
	e.Add(mk(1))
	e.Add(mk(3))
	st := e.Round(3)
	// The earliest commits; the second conflicts; the third is cut off
	// by the prefix rule (counted premature).
	if st.Committed != 1 || st.Conflicts != 1 || st.Premature != 1 {
		t.Fatalf("stats %+v", st)
	}
	if len(committed) != 1 || committed[0] != 1 {
		t.Fatalf("committed %v, want earliest only", committed)
	}
	// Losers retry in priority order on later rounds.
	st = e.Round(1)
	if st.Committed != 1 || committed[1] != 2 {
		t.Fatalf("second round: %+v, committed %v", st, committed)
	}
	st = e.Round(5)
	if st.Committed != 1 || committed[2] != 3 {
		t.Fatalf("third round: %+v, committed %v", st, committed)
	}
	if e.Pending() != 0 {
		t.Fatal("not drained")
	}
}

func TestOrderedPrematureRequeued(t *testing.T) {
	e := NewOrderedExecutor()
	var committed []float64
	note := func(tm float64) func() {
		return func() { committed = append(committed, tm) }
	}
	spawned := &testOrderedTask{key: key(1.5), effect: note(1.5)}
	// Task 1 spawns work at t=1.5; task 2 (t=2) ran in the same round
	// and must be detected as premature.
	e.Add(&testOrderedTask{key: key(1), spawn: []OrderedTask{spawned}, effect: note(1)})
	e.Add(&testOrderedTask{key: key(2), effect: note(2)})
	st := e.Round(2)
	if st.Committed != 1 || st.Premature != 1 || st.Spawned != 1 {
		t.Fatalf("stats %+v", st)
	}
	// Drain: spawned (1.5) then the premature retry (2).
	for e.Pending() > 0 {
		e.Round(4)
	}
	want := []float64{1, 1.5, 2}
	for i, v := range want {
		if committed[i] != v {
			t.Fatalf("commit sequence %v, want %v", committed, want)
		}
	}
}

func TestOrderedSpawnCausalityPanics(t *testing.T) {
	e := NewOrderedExecutor()
	bad := &testOrderedTask{key: key(0.5)}
	e.Add(&testOrderedTask{key: key(1), spawn: []OrderedTask{bad}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for spawn before parent")
		}
	}()
	e.Round(1)
}

func TestOrderedIndependentTasksAllCommit(t *testing.T) {
	e := NewOrderedExecutor()
	var ran atomic.Int32
	for i := 0; i < 64; i++ {
		e.Add(&testOrderedTask{key: key(float64(i)), claims: []*Item{NewItem(int64(i))}, ran: &ran})
	}
	st := e.Round(64)
	if st.Committed != 64 || st.Aborted() != 0 {
		t.Fatalf("stats %+v", st)
	}
	if ran.Load() != 64 {
		t.Fatalf("phase-1 executions %d", ran.Load())
	}
}

func TestOrderedNextKey(t *testing.T) {
	e := NewOrderedExecutor()
	if e.NextKey() != MaxKey {
		t.Fatal("empty executor NextKey")
	}
	e.Add(&testOrderedTask{key: key(5)})
	e.Add(&testOrderedTask{key: key(2)})
	if e.NextKey() != key(2) {
		t.Fatalf("NextKey = %+v", e.NextKey())
	}
}

func TestOrderedEmptyRound(t *testing.T) {
	e := NewOrderedExecutor()
	st := e.Round(8)
	if st.Launched != 0 || st.ConflictRatio() != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestOrderedMaxParallel(t *testing.T) {
	e := NewOrderedExecutor()
	e.MaxParallel = 2
	var cur, peak atomic.Int32
	for i := 0; i < 16; i++ {
		e.Add(concTask{k: key(float64(i)), cur: &cur, peak: &peak})
	}
	st := e.Round(16)
	if st.Committed != 16 {
		t.Fatalf("committed %d", st.Committed)
	}
	if peak.Load() > 2 {
		t.Fatalf("peak concurrency %d > MaxParallel=2", peak.Load())
	}
}

type concTask struct {
	k         Key
	cur, peak *atomic.Int32
}

func (t concTask) Key() Key { return t.k }
func (t concTask) Run(*OrderedCtx) error {
	c := t.cur.Add(1)
	for {
		p := t.peak.Load()
		if c <= p || t.peak.CompareAndSwap(p, c) {
			break
		}
	}
	for i := 0; i < 500; i++ {
		_ = i
	}
	t.cur.Add(-1)
	return nil
}

func TestRunAdaptiveOrdered(t *testing.T) {
	e := NewOrderedExecutor()
	it := NewItem(0)
	// A chain of contended tasks: at m processors only 1 commits per
	// round, so the controller should shrink m toward m_min.
	for i := 0; i < 60; i++ {
		e.Add(&testOrderedTask{key: key(float64(i)), claims: []*Item{it}})
	}
	ctrl := control.NewHybrid(control.DefaultHybridConfig(0.25))
	res := RunAdaptiveOrdered(e, ctrl, 10000)
	if e.Pending() != 0 {
		t.Fatal("did not drain")
	}
	if res.Rounds == 0 {
		t.Fatal("no rounds")
	}
	if e.TotalCommitted() != 60 {
		t.Fatalf("committed %d", e.TotalCommitted())
	}
	// Final m should be pinned at the minimum for a serial chain.
	if ctrl.M() > 8 {
		t.Errorf("controller did not shrink on serial workload: m=%d", ctrl.M())
	}
}
