package speculation

import (
	"sync"
	"sync/atomic"
)

// accounting is the commit/abort bookkeeping shared by the unordered
// executor (round and async paths) and the ordered executor. It owns
// the cumulative counters, the per-handle failure budget, and the
// poison quarantine, so the executors' hot paths all settle outcomes
// through one implementation.
//
// The counters are atomics: the executing path writes them while
// monitors read concurrently. The failure map is mutex-guarded because
// the async path settles outcomes from many worker goroutines; an
// atomic count of outstanding failure records keeps the healthy path
// (clearFailure on every commit) lock-free.
type accounting struct {
	totalLaunched  atomic.Int64
	totalCommitted atomic.Int64
	totalAborted   atomic.Int64
	totalFailed    atomic.Int64
	totalPoisoned  atomic.Int64

	failMu    sync.Mutex
	failCount atomic.Int64  // len(failures), readable without failMu
	failures  map[int64]int // failed-attempt counts by handle

	poisonMu sync.Mutex
	poisoned []FailureRecord
}

// resolveRetryBudget maps a TaskRetries setting to the effective
// failure budget: 0 selects DefaultTaskRetries, negative disables
// retries (first failure poisons).
func resolveRetryBudget(r int) int {
	switch {
	case r < 0:
		return 0
	case r == 0:
		return DefaultTaskRetries
	default:
		return r
	}
}

// addTotals folds one settled batch (a round, or a single async
// attempt) into the cumulative counters. Zero fields are skipped so
// single-outcome updates cost one atomic add.
func (a *accounting) addTotals(launched, committed, aborted, failed, poisoned int64) {
	if launched != 0 {
		a.totalLaunched.Add(launched)
	}
	if committed != 0 {
		a.totalCommitted.Add(committed)
	}
	if aborted != 0 {
		a.totalAborted.Add(aborted)
	}
	if failed != 0 {
		a.totalFailed.Add(failed)
	}
	if poisoned != 0 {
		a.totalPoisoned.Add(poisoned)
	}
}

// noteFailure charges one failed attempt against handle h's budget.
// When the budget is exhausted the task is quarantined (recorded with
// the given error text) and poisoned=true is returned; the caller must
// then drop the handle instead of requeueing it.
func (a *accounting) noteFailure(h int64, budget int, errMsg string) (attempts int, poisoned bool) {
	a.failMu.Lock()
	if a.failures == nil {
		a.failures = make(map[int64]int)
	}
	a.failures[h]++
	attempts = a.failures[h]
	if attempts > budget {
		delete(a.failures, h)
		a.failCount.Store(int64(len(a.failures)))
		a.failMu.Unlock()
		a.quarantine(FailureRecord{Handle: h, Attempts: attempts, Err: errMsg})
		return attempts, true
	}
	a.failCount.Store(int64(len(a.failures)))
	a.failMu.Unlock()
	return attempts, false
}

// clearFailure forgets handle h's failure record after a successful
// commit (a previously failed task recovered). The atomic count makes
// the common no-failures case a single load.
func (a *accounting) clearFailure(h int64) {
	if a.failCount.Load() == 0 {
		return
	}
	a.failMu.Lock()
	if _, ok := a.failures[h]; ok {
		delete(a.failures, h)
		a.failCount.Store(int64(len(a.failures)))
	}
	a.failMu.Unlock()
}

// quarantine appends one poisoned-task record.
func (a *accounting) quarantine(rec FailureRecord) {
	a.poisonMu.Lock()
	a.poisoned = append(a.poisoned, rec)
	a.poisonMu.Unlock()
}

// TotalLaunched returns the cumulative number of launched attempts.
func (a *accounting) TotalLaunched() int64 { return a.totalLaunched.Load() }

// TotalCommitted returns the cumulative number of committed tasks.
func (a *accounting) TotalCommitted() int64 { return a.totalCommitted.Load() }

// TotalAborted returns the cumulative number of aborted attempts (for
// the ordered executor: conflicts + premature executions).
func (a *accounting) TotalAborted() int64 { return a.totalAborted.Load() }

// TotalFailed returns the cumulative number of failed attempts (panics
// and non-conflict errors).
func (a *accounting) TotalFailed() int64 { return a.totalFailed.Load() }

// TotalPoisoned returns the number of tasks quarantined after
// exhausting their retry budget.
func (a *accounting) TotalPoisoned() int64 { return a.totalPoisoned.Load() }

// PoisonedTasks returns a copy of the quarantine: one record per task
// that exhausted its failure budget, in poisoning order. Safe to call
// concurrently with execution.
func (a *accounting) PoisonedTasks() []FailureRecord {
	a.poisonMu.Lock()
	defer a.poisonMu.Unlock()
	return append([]FailureRecord(nil), a.poisoned...)
}

// OverallConflictRatio returns cumulative aborts/launches.
func (a *accounting) OverallConflictRatio() float64 {
	l := a.totalLaunched.Load()
	if l == 0 {
		return 0
	}
	return float64(a.totalAborted.Load()) / float64(l)
}

// snapshot assembles a Snapshot from the counters plus the executor's
// current pending count.
func (a *accounting) snapshot(pending int) Snapshot {
	return Snapshot{
		Pending:   pending,
		Launched:  a.totalLaunched.Load(),
		Committed: a.totalCommitted.Load(),
		Aborted:   a.totalAborted.Load(),
		Failed:    a.totalFailed.Load(),
		Poisoned:  a.totalPoisoned.Load(),
	}
}
