package speculation

import (
	"sort"

	"repro/internal/graph"
)

// Conflict learning for colored execution (see colored.go). During
// normal optimistic rounds the executor feeds every committed task's
// footprint — the items it acquired — to a ConflictRecorder. Two tasks
// conflict iff their footprints intersect, so the recorder's item→keys
// index *is* the conflict graph: every item held by two or more distinct
// task keys contributes the clique over those keys. Once the observed
// edge set has been quiet for a few rounds the recorder snapshots it to
// a graph.CSR, the coloring kernel partitions the keys into independent
// classes, and execution switches to lock-free colored rounds.

// ConflictKeyed gives a task a stable identity in the learned conflict
// graph. The key must survive retries and respawns of the same logical
// task (e.g. the graph node a cc task processes, the triangle ID a mesh
// task refines): the learned footprint of a key is compared against
// later executions of the same key by the staleness detector. Tasks
// without a key can still run in colored *jobs* — they just keep the
// executor in the speculative phase forever, since an unkeyed commit
// makes the learned graph unusable.
type ConflictKeyed interface {
	ConflictKey() int64
}

// keyedTask adapts any Task (typically a TaskFunc closure) to
// ConflictKeyed.
type keyedTask struct {
	key int64
	t   Task
}

func (k keyedTask) Run(ctx *Ctx) error { return k.t.Run(ctx) }

// ConflictKey implements ConflictKeyed.
func (k keyedTask) ConflictKey() int64 { return k.key }

// Keyed wraps t with a stable conflict key for the colored-execution
// learner.
func Keyed(key int64, t Task) Task { return keyedTask{key: key, t: t} }

// Recorder bounds: beyond these the recorder declares overflow and the
// job simply never leaves the speculative phase (graceful degradation,
// never incorrectness).
const (
	// DefaultRecorderMaxItems caps the number of distinct items tracked.
	DefaultRecorderMaxItems = 1 << 20
	// DefaultRecorderMaxKeysPerItem caps the keys recorded per item.
	DefaultRecorderMaxKeysPerItem = 64
	// DefaultStableRounds is the number of consecutive committing rounds
	// with no new (item, key) observation after which the edge set is
	// considered stable enough to color.
	DefaultStableRounds = 3
)

// ConflictRecorder accumulates committed-task footprints during the
// speculative learning phase. It is driven entirely from the Round
// barrier (single goroutine) and needs no locking.
type ConflictRecorder struct {
	maxItems       int
	maxKeysPerItem int

	items map[int64][]int64 // item Seq -> task keys observed holding it

	newPairs bool // a new (item, key) pair was recorded this round
	commits  bool // this round settled at least one commit
	stable   int  // consecutive committing rounds with no new pairs

	unkeyed  bool // a committed task had no ConflictKey
	overflow bool // a bound above was exceeded
}

// NewConflictRecorder returns an empty recorder; non-positive bounds
// select the defaults.
func NewConflictRecorder(maxItems, maxKeysPerItem int) *ConflictRecorder {
	if maxItems <= 0 {
		maxItems = DefaultRecorderMaxItems
	}
	if maxKeysPerItem <= 0 {
		maxKeysPerItem = DefaultRecorderMaxKeysPerItem
	}
	return &ConflictRecorder{
		maxItems:       maxItems,
		maxKeysPerItem: maxKeysPerItem,
		items:          make(map[int64][]int64),
	}
}

// recordCommit folds one committed task's footprint into the index.
// Called from the Round barrier before the context's acquired list is
// released.
func (r *ConflictRecorder) recordCommit(t Task, acquired []*Item) {
	r.commits = true
	if r.unkeyed || r.overflow {
		return
	}
	kt, ok := t.(ConflictKeyed)
	if !ok {
		r.unkeyed = true
		return
	}
	key := kt.ConflictKey()
	for _, it := range acquired {
		keys, seen := r.items[it.Seq]
		if !seen && len(r.items) >= r.maxItems {
			r.overflow = true
			return
		}
		if containsKey(keys, key) {
			continue
		}
		if len(keys) >= r.maxKeysPerItem {
			r.overflow = true
			return
		}
		r.items[it.Seq] = append(keys, key)
		r.newPairs = true
	}
}

func containsKey(keys []int64, k int64) bool {
	for _, v := range keys {
		if v == k {
			return true
		}
	}
	return false
}

// roundDone closes one speculative round: a committing round with no
// new observations advances the stability counter, a round that taught
// us something resets it. Idle rounds (no commits) are neutral.
func (r *ConflictRecorder) roundDone() {
	if r.commits {
		if r.newPairs {
			r.stable = 0
		} else {
			r.stable++
		}
	}
	r.newPairs = false
	r.commits = false
}

// Stable reports whether the observed edge set has been quiet for k
// consecutive committing rounds and the graph is usable (no unkeyed
// commits, no overflow, at least one observation).
func (r *ConflictRecorder) Stable(k int) bool {
	return !r.unkeyed && !r.overflow && len(r.items) > 0 && r.stable >= k
}

// Degraded reports whether learning has been permanently disabled for
// this recording epoch (unkeyed commit or bound overflow). Reset clears
// it.
func (r *ConflictRecorder) Degraded() bool { return r.unkeyed || r.overflow }

// Unsettle zeroes the stability counter without discarding anything
// learned — used when the edge set is quiet but still incomplete (a
// pending task's key has never committed), so the drive should keep
// learning before re-attempting a coloring.
func (r *ConflictRecorder) Unsettle() { r.stable = 0 }

// Reset discards everything learned — the fallback path after a
// staleness trip, starting a fresh learning epoch.
func (r *ConflictRecorder) Reset() {
	clear(r.items)
	r.newPairs = false
	r.commits = false
	r.stable = 0
	r.unkeyed = false
	r.overflow = false
}

// LearnedGraph is an immutable snapshot of the recorder: the conflict
// graph over task keys as a colorable CSR, plus each key's learned
// footprint (sorted item Seqs) for the staleness detector. Dense index
// i corresponds to Keys()[i].
type LearnedGraph struct {
	csr   *graph.CSR
	keys  []int64         // dense index -> task key (sorted)
	index map[int64]int32 // task key -> dense index

	// Footprints in CSR-style layout: key i's learned item Seqs are
	// fpSeqs[fpOff[i]:fpOff[i+1]], sorted for binary search.
	fpOff  []int32
	fpSeqs []int64
}

// Snapshot freezes the recorder into a LearnedGraph. Returns nil if the
// recorder is degraded or empty. Allocation here is fine: snapshots
// happen once per learning epoch, not per round.
func (r *ConflictRecorder) Snapshot() *LearnedGraph {
	if r.Degraded() || len(r.items) == 0 {
		return nil
	}
	lg := &LearnedGraph{}

	// Dense-number the keys (sorted for determinism).
	keySet := make(map[int64]struct{})
	for _, keys := range r.items {
		for _, k := range keys {
			keySet[k] = struct{}{}
		}
	}
	lg.keys = make([]int64, 0, len(keySet))
	for k := range keySet {
		lg.keys = append(lg.keys, k)
	}
	sort.Slice(lg.keys, func(i, j int) bool { return lg.keys[i] < lg.keys[j] })
	lg.index = make(map[int64]int32, len(lg.keys))
	for i, k := range lg.keys {
		lg.index[k] = int32(i)
	}
	n := len(lg.keys)

	// Conflict edges: every item shared by ≥ 2 keys contributes the
	// clique over those keys, deduplicated across items.
	edgeSet := make(map[uint64]struct{})
	var edges [][2]int32
	perKey := make([][]int64, n) // footprints under construction
	for seq, keys := range r.items {
		for i, ka := range keys {
			a := lg.index[ka]
			perKey[a] = append(perKey[a], seq)
			for _, kb := range keys[i+1:] {
				b := lg.index[kb]
				lo, hi := a, b
				if lo > hi {
					lo, hi = hi, lo
				}
				packed := uint64(uint32(lo))<<32 | uint64(uint32(hi))
				if _, dup := edgeSet[packed]; dup {
					continue
				}
				edgeSet[packed] = struct{}{}
				edges = append(edges, [2]int32{lo, hi})
			}
		}
	}
	lg.csr = graph.NewCSRFromEdges(n, edges)

	// Flatten the footprints, sorted per key.
	total := 0
	for _, fp := range perKey {
		total += len(fp)
	}
	lg.fpOff = make([]int32, n+1)
	lg.fpSeqs = make([]int64, 0, total)
	for i, fp := range perKey {
		lg.fpOff[i] = int32(len(lg.fpSeqs))
		sort.Slice(fp, func(a, b int) bool { return fp[a] < fp[b] })
		lg.fpSeqs = append(lg.fpSeqs, fp...)
	}
	lg.fpOff[n] = int32(len(lg.fpSeqs))
	return lg
}

// CSR returns the conflict graph over dense key indices.
func (lg *LearnedGraph) CSR() *graph.CSR { return lg.csr }

// NumKeys returns the number of distinct task keys in the snapshot.
func (lg *LearnedGraph) NumKeys() int { return len(lg.keys) }

// Key returns the task key at dense index i.
func (lg *LearnedGraph) Key(i int) int64 { return lg.keys[i] }

// KeyIndex returns the dense index of a task key, or −1 if the key was
// never observed — the "new task with unknown edges" staleness trigger.
func (lg *LearnedGraph) KeyIndex(key int64) int32 {
	if i, ok := lg.index[key]; ok {
		return i
	}
	return -1
}

// InFootprint reports whether item seq is part of dense key idx's
// learned footprint. Hand-rolled binary search: this runs once per
// acquired item per colored task, and must not allocate.
func (lg *LearnedGraph) InFootprint(idx int32, seq int64) bool {
	lo, hi := int(lg.fpOff[idx]), int(lg.fpOff[idx+1])
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if lg.fpSeqs[mid] < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < int(lg.fpOff[idx+1]) && lg.fpSeqs[lo] == seq
}

// FootprintLen returns the learned footprint size of dense key idx.
func (lg *LearnedGraph) FootprintLen(idx int32) int {
	return int(lg.fpOff[idx+1] - lg.fpOff[idx])
}
