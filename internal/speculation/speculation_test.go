package speculation

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/rng"
)

func TestSingleTaskCommits(t *testing.T) {
	e := NewExecutor(nil)
	ran := false
	e.Add(TaskFunc(func(ctx *Ctx) error { ran = true; return nil }))
	st := e.Round(4)
	if !ran {
		t.Fatal("task did not run")
	}
	if st.Launched != 1 || st.Committed != 1 || st.Aborted != 0 {
		t.Fatalf("stats %+v", st)
	}
	if e.Pending() != 0 {
		t.Fatal("committed task still pending")
	}
}

func TestConflictingTasksExactlyOneCommits(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		e := NewExecutor(nil)
		it := NewItem(0)
		var commits atomic.Int32
		mk := func() Task {
			return TaskFunc(func(ctx *Ctx) error {
				if err := ctx.Acquire(it); err != nil {
					return err
				}
				commits.Add(1)
				return nil
			})
		}
		e.Add(mk())
		e.Add(mk())
		st := e.Round(2)
		if st.Committed != 1 || st.Aborted != 1 {
			t.Fatalf("trial %d: stats %+v", trial, st)
		}
		if commits.Load() != 1 {
			t.Fatalf("trial %d: %d tasks passed the lock", trial, commits.Load())
		}
		if e.Pending() != 1 {
			t.Fatalf("trial %d: aborted task not requeued", trial)
		}
		// Retry succeeds: the lock was released at round end.
		st = e.Round(2)
		if st.Committed != 1 {
			t.Fatalf("trial %d: retry failed %+v", trial, st)
		}
	}
}

func TestUndoLogRunsInReverseOnAbort(t *testing.T) {
	e := NewExecutor(nil)
	blocker := NewItem(1)
	var order []int
	// First task grabs the blocker and never conflicts.
	e.Add(TaskFunc(func(ctx *Ctx) error { return ctx.Acquire(blocker) }))
	e.Round(1) // now blocker is free again — so instead hold it manually:
	holder := &Ctx{id: 999}
	if err := holder.Acquire(blocker); err != nil {
		t.Fatal(err)
	}
	e.Add(TaskFunc(func(ctx *Ctx) error {
		ctx.LogUndo(func() { order = append(order, 1) })
		ctx.LogUndo(func() { order = append(order, 2) })
		return ctx.Acquire(blocker) // conflicts with the manual holder
	}))
	st := e.Round(1)
	if st.Aborted != 1 {
		t.Fatalf("stats %+v", st)
	}
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("undo order %v, want [2 1]", order)
	}
	holder.release()
}

func TestUndoNotRunOnCommit(t *testing.T) {
	e := NewExecutor(nil)
	undone := false
	e.Add(TaskFunc(func(ctx *Ctx) error {
		ctx.LogUndo(func() { undone = true })
		return nil
	}))
	e.Round(1)
	if undone {
		t.Fatal("undo log ran for a committed task")
	}
}

func TestSpawnOnCommitOnly(t *testing.T) {
	e := NewExecutor(nil)
	blocker := NewItem(2)
	holder := &Ctx{id: 999}
	if err := holder.Acquire(blocker); err != nil {
		t.Fatal(err)
	}
	e.Add(TaskFunc(func(ctx *Ctx) error {
		ctx.Spawn(TaskFunc(func(*Ctx) error { return nil }))
		return ctx.Acquire(blocker) // abort: spawn must be discarded
	}))
	st := e.Round(1)
	if st.Spawned != 0 {
		t.Fatalf("aborted task's spawn leaked: %+v", st)
	}
	if e.Pending() != 1 { // only the retry of the aborted task
		t.Fatalf("pending = %d", e.Pending())
	}
	holder.release()
	// The retried task now commits, and its Spawn (re-registered during
	// the retry execution) takes effect exactly once.
	st = e.Round(1)
	if st.Committed != 1 || st.Spawned != 1 {
		t.Fatalf("retry round: %+v", st)
	}
	e.Add(TaskFunc(func(ctx *Ctx) error {
		ctx.Spawn(TaskFunc(func(*Ctx) error { return nil }))
		ctx.Spawn(TaskFunc(func(*Ctx) error { return nil }))
		return nil
	}))
	st = e.Round(10) // runs the double-spawner plus the earlier no-op spawn
	if st.Spawned != 2 {
		t.Fatalf("committed spawns = %d, want 2", st.Spawned)
	}
}

func TestOnCommitActionsRunSeriallyAfterRound(t *testing.T) {
	e := NewExecutor(nil)
	counter := 0 // mutated without locks: safe only if actions are serial
	const n = 50
	for i := 0; i < n; i++ {
		e.Add(TaskFunc(func(ctx *Ctx) error {
			ctx.OnCommit(func() { counter++ })
			return nil
		}))
	}
	st := e.Round(n)
	if st.Committed != n {
		t.Fatalf("stats %+v", st)
	}
	if counter != n {
		t.Fatalf("commit actions ran %d times, want %d", counter, n)
	}
}

func TestOnCommitSkippedOnAbort(t *testing.T) {
	e := NewExecutor(nil)
	blocker := NewItem(3)
	holder := &Ctx{id: 999}
	if err := holder.Acquire(blocker); err != nil {
		t.Fatal(err)
	}
	ran := false
	e.Add(TaskFunc(func(ctx *Ctx) error {
		ctx.OnCommit(func() { ran = true })
		return ctx.Acquire(blocker)
	}))
	e.Round(1)
	if ran {
		t.Fatal("commit action ran for aborted task")
	}
	holder.release()
}

func TestReacquireHeldItemSucceeds(t *testing.T) {
	e := NewExecutor(nil)
	it := NewItem(4)
	e.Add(TaskFunc(func(ctx *Ctx) error {
		if err := ctx.Acquire(it); err != nil {
			return err
		}
		if !ctx.Holds(it) {
			t.Error("Holds is false after acquire")
		}
		return ctx.Acquire(it) // idempotent
	}))
	st := e.Round(1)
	if st.Committed != 1 {
		t.Fatalf("stats %+v", st)
	}
	if it.Owner() != noOwner {
		t.Fatal("lock not released after round")
	}
}

func TestNonConflictErrorIsFailureNotCrash(t *testing.T) {
	e := NewExecutor(nil)
	e.Add(TaskFunc(func(ctx *Ctx) error { return errors.New("operator bug") }))
	st := e.Round(1)
	if st.Failed != 1 || st.Aborted != 0 || st.Committed != 0 {
		t.Fatalf("stats %+v, want one failure", st)
	}
	// The failed task is requeued (budget permitting), not dropped.
	if e.Pending() != 1 {
		t.Fatalf("pending %d after first failure, want 1 (requeued)", e.Pending())
	}
	// Exhaust the default budget: the task must end up quarantined.
	for i := 0; i < DefaultTaskRetries; i++ {
		e.Round(1)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending %d after budget exhausted, want 0", e.Pending())
	}
	if got := e.TotalPoisoned(); got != 1 {
		t.Fatalf("TotalPoisoned = %d, want 1", got)
	}
	recs := e.PoisonedTasks()
	if len(recs) != 1 || recs[0].Attempts != DefaultTaskRetries+1 {
		t.Fatalf("poison records %+v", recs)
	}
}

func TestRoundOnEmptyExecutor(t *testing.T) {
	e := NewExecutor(nil)
	st := e.Round(8)
	if st.Launched != 0 || st.ConflictRatio() != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestNegativeRoundPanics(t *testing.T) {
	e := NewExecutor(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Round(-1)
}

func TestMaxParallelBoundsConcurrency(t *testing.T) {
	e := NewExecutor(nil)
	e.MaxParallel = 3
	var cur, peak atomic.Int32
	for i := 0; i < 30; i++ {
		e.Add(TaskFunc(func(ctx *Ctx) error {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			// Busy-wait a little so overlaps are observable.
			for j := 0; j < 1000; j++ {
				_ = j
			}
			cur.Add(-1)
			return nil
		}))
	}
	e.Round(30)
	if peak.Load() > 3 {
		t.Fatalf("peak concurrency %d exceeds MaxParallel=3", peak.Load())
	}
}

func TestChainedConflictSemantics(t *testing.T) {
	// Items a-b shared by tasks 1-2 and 2-3 respectively: a "path" of
	// conflicts. Over repeated trials, whenever task 2 aborts, both 1
	// and 3 can commit in the same round (aborted tasks release locks).
	saw13 := false
	for trial := 0; trial < 200 && !saw13; trial++ {
		e := NewExecutor(nil)
		a, b := NewItem(10), NewItem(11)
		var c1, c2, c3 atomic.Bool
		e.Add(TaskFunc(func(ctx *Ctx) error { // task 1: locks a
			if err := ctx.Acquire(a); err != nil {
				return err
			}
			c1.Store(true)
			return nil
		}))
		e.Add(TaskFunc(func(ctx *Ctx) error { // task 2: locks a then b
			if err := ctx.Acquire(a); err != nil {
				return err
			}
			if err := ctx.Acquire(b); err != nil {
				return err
			}
			c2.Store(true)
			return nil
		}))
		e.Add(TaskFunc(func(ctx *Ctx) error { // task 3: locks b
			if err := ctx.Acquire(b); err != nil {
				return err
			}
			c3.Store(true)
			return nil
		}))
		st := e.Round(3)
		if st.Committed+st.Aborted != 3 {
			t.Fatalf("partition broken: %+v", st)
		}
		if c1.Load() && c3.Load() && !c2.Load() {
			saw13 = true
		}
	}
	if !saw13 {
		t.Error("never observed tasks 1 and 3 committing around aborted task 2")
	}
}

func TestTotalsAccumulate(t *testing.T) {
	r := rng.New(1)
	e := NewExecutor(func(n int) int { return r.Intn(n) })
	it := NewItem(0)
	for i := 0; i < 10; i++ {
		e.Add(TaskFunc(func(ctx *Ctx) error { return ctx.Acquire(it) }))
	}
	rounds := 0
	for e.Pending() > 0 {
		e.Round(4)
		rounds++
		if rounds > 100 {
			t.Fatal("did not drain")
		}
	}
	if e.TotalCommitted() != 10 {
		t.Fatalf("TotalCommitted = %d", e.TotalCommitted())
	}
	if e.TotalLaunched() != e.TotalCommitted()+e.TotalAborted() {
		t.Fatal("counter identity broken")
	}
	if e.OverallConflictRatio() <= 0 {
		t.Fatal("all tasks share one item at m=4: expected conflicts")
	}
}

// Progress guarantee: k mutually conflicting tasks launched together
// drain in exactly k rounds at any m >= k — one commit per round, no
// livelock, no starvation.
func TestMutualConflictDrainsLinearly(t *testing.T) {
	const k = 12
	e := NewExecutor(nil)
	it := NewItem(0)
	for i := 0; i < k; i++ {
		e.Add(TaskFunc(func(ctx *Ctx) error { return ctx.Acquire(it) }))
	}
	rounds := 0
	for e.Pending() > 0 {
		st := e.Round(k)
		rounds++
		if st.Committed != 1 {
			t.Fatalf("round %d committed %d, want exactly 1", rounds, st.Committed)
		}
		if rounds > k {
			t.Fatal("livelock: more rounds than tasks")
		}
	}
	if rounds != k {
		t.Fatalf("drained in %d rounds, want %d", rounds, k)
	}
}
