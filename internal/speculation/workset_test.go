package speculation

import (
	"testing"

	"repro/internal/control"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/workset"
)

func TestExecutorWithWorksetDrains(t *testing.T) {
	for _, tc := range []struct {
		name string
		ws   HandleSet
	}{
		{"random", workset.NewRandom(rng.New(1))},
		{"fifo", workset.NewFIFO()},
		{"lifo", workset.NewLIFO()},
		{"chunked", workset.NewChunked(4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := NewExecutorWithWorkset(tc.ws)
			it := NewItem(0)
			for i := 0; i < 50; i++ {
				e.Add(TaskFunc(func(ctx *Ctx) error { return ctx.Acquire(it) }))
			}
			rounds := 0
			for e.Pending() > 0 {
				e.Round(8)
				rounds++
				if rounds > 10000 {
					t.Fatal("did not drain")
				}
			}
			if e.TotalCommitted() != 50 {
				t.Fatalf("committed %d", e.TotalCommitted())
			}
		})
	}
}

func TestExecutorWithWorksetSpawns(t *testing.T) {
	e := NewExecutorWithWorkset(workset.NewFIFO())
	depth := 0
	var mk func(level int) Task
	mk = func(level int) Task {
		return TaskFunc(func(ctx *Ctx) error {
			if level > depth {
				depth = level
			}
			if level < 5 {
				ctx.Spawn(mk(level + 1))
			}
			return nil
		})
	}
	e.Add(mk(1))
	for e.Pending() > 0 {
		e.Round(4)
	}
	if depth != 5 {
		t.Fatalf("spawn chain depth %d, want 5", depth)
	}
}

// Selection policy materially changes conflict behavior: on a CC graph
// made of cliques, FIFO processes clique members back-to-back (high
// conflicts) while random selection spreads them out. We verify the
// policies at least produce valid executions with identical total work.
func TestWorksetPoliciesOnGraphWorkload(t *testing.T) {
	for _, tc := range []struct {
		name string
		ws   HandleSet
	}{
		{"random", workset.NewRandom(rng.New(2))},
		{"fifo", workset.NewFIFO()},
		{"lifo", workset.NewLIFO()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := graph.CliqueUnion(120, 5)
			wl := NewGraphWorkload(g)
			e := NewExecutorWithWorkset(tc.ws)
			wl.Populate(e)
			res := RunAdaptive(e, control.Fixed{Procs: 12}, 100000)
			if g.NumNodes() != 0 {
				t.Fatalf("%d nodes left", g.NumNodes())
			}
			if e.TotalCommitted() != 120 {
				t.Fatalf("committed %d", e.TotalCommitted())
			}
			if res.Rounds == 0 {
				t.Fatal("no rounds")
			}
		})
	}
}
