package speculation

import (
	"math"
	"testing"

	"repro/internal/control"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sched"
)

func TestGraphWorkloadDrains(t *testing.T) {
	r := rng.New(1)
	g := graph.RandomGNM(r, 200, 600)
	wl := NewGraphWorkload(g)
	e := NewGraphExecutor(wl, r.Split())
	rounds := 0
	for e.Pending() > 0 {
		e.Round(16)
		rounds++
		if rounds > 5000 {
			t.Fatal("workload did not drain")
		}
	}
	if wl.Graph().NumNodes() != 0 {
		t.Fatalf("%d nodes survive", wl.Graph().NumNodes())
	}
	if e.TotalCommitted() != 200 {
		t.Fatalf("committed %d, want 200", e.TotalCommitted())
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGraphWorkloadAdjacentConflict(t *testing.T) {
	// Two adjacent nodes launched together: exactly one commits.
	oneCommits := 0
	const trials = 60
	for i := 0; i < trials; i++ {
		g := graph.Path(2)
		wl := NewGraphWorkload(g)
		e := NewExecutor(nil)
		wl.Populate(e)
		st := e.Round(2)
		if st.Committed == 1 && st.Aborted == 1 {
			oneCommits++
		}
	}
	if oneCommits != trials {
		t.Fatalf("adjacent pair committed together in %d/%d trials", trials-oneCommits, trials)
	}
}

func TestGraphWorkloadIndependentNoConflict(t *testing.T) {
	for i := 0; i < 30; i++ {
		g := graph.Empty(8)
		wl := NewGraphWorkload(g)
		e := NewExecutor(nil)
		wl.Populate(e)
		st := e.Round(8)
		if st.Aborted != 0 || st.Committed != 8 {
			t.Fatalf("independent tasks conflicted: %+v", st)
		}
	}
}

// The runtime's measured conflict ratio on a clique union must agree
// with the model's closed form (Thm. 3) — the end-to-end fidelity check
// tying goroutine execution back to the paper's mathematics.
func TestRuntimeConflictRatioMatchesModel(t *testing.T) {
	const n, d, m = 120, 5, 30
	want := 0.0
	{
		r := rng.New(7)
		knd := graph.CliqueUnion(n, d)
		want = sched.ConflictRatioMC(knd, r, m, 3000)
	}
	r := rng.New(8)
	total, launched := 0, 0
	const trials = 300
	for i := 0; i < trials; i++ {
		g := graph.CliqueUnion(n, d)
		wl := NewGraphWorkload(g)
		e := NewGraphExecutor(wl, r.Split())
		st := e.Round(m) // one round on the fresh graph
		total += st.Aborted
		launched += st.Launched
	}
	got := float64(total) / float64(launched)
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("runtime ratio %v vs model %v", got, want)
	}
}

func TestRunAdaptiveDrainsAndTracks(t *testing.T) {
	r := rng.New(2)
	g := graph.RandomWithAvgDegree(r, 800, 10)
	wl := NewGraphWorkload(g)
	e := NewGraphExecutor(wl, r.Split())
	h := control.NewHybrid(control.DefaultHybridConfig(0.25))
	res := RunAdaptive(e, h, 100000)
	if e.Pending() != 0 {
		t.Fatal("adaptive run did not drain")
	}
	totalCommitted := 0
	for _, c := range res.Committed {
		totalCommitted += c
	}
	if totalCommitted != 800 {
		t.Fatalf("committed %d, want 800", totalCommitted)
	}
	if res.Rounds != len(res.M) || res.Rounds != len(res.R) {
		t.Fatal("trajectory misrecorded")
	}
	if res.MeanConflictRatio() < 0 || res.MeanConflictRatio() >= 1 {
		t.Fatalf("mean ratio %v", res.MeanConflictRatio())
	}
}

func TestStaleRetryIsNoop(t *testing.T) {
	// A task whose node was already removed must commit as a no-op
	// rather than panic or double-remove.
	g := graph.Empty(1)
	wl := NewGraphWorkload(g)
	task := wl.TaskFor(0)
	e := NewExecutor(nil)
	e.Add(task)
	e.Add(task) // same node twice: second execution sees it gone
	st := e.Round(1)
	if st.Committed != 1 {
		t.Fatalf("first run: %+v", st)
	}
	st = e.Round(1)
	if st.Committed != 1 || st.Aborted != 0 {
		t.Fatalf("stale retry: %+v", st)
	}
	if g.NumNodes() != 0 {
		t.Fatal("node not removed")
	}
}

func TestMeanConflictRatioEmpty(t *testing.T) {
	res := &AdaptiveResult{}
	if res.MeanConflictRatio() != 0 {
		t.Fatal("empty run should have ratio 0")
	}
}
