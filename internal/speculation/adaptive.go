package speculation

import (
	"sync"

	"repro/internal/control"
	"repro/internal/graph"
	"repro/internal/rng"
)

// AdaptiveResult records a closed-loop run of the executor under a
// processor-allocation controller, including the cost accounting the
// paper's introduction motivates: every launched task occupies a
// processor for the round whether it commits or aborts, so wasted
// launches burn both time and power.
type AdaptiveResult struct {
	Controller string
	M          []int     // processors requested per round
	R          []float64 // conflict ratio observed per round
	Committed  []int     // commits per round
	Rounds     int

	UsefulWork int // total committed tasks
	WastedWork int // total aborted executions (incl. premature, if ordered)
	ProcRounds int // Σ launched: processor-time (and power) proxy
}

// Efficiency returns useful work per processor-round (1.0 = no waste,
// 0 for an empty run).
func (a *AdaptiveResult) Efficiency() float64 {
	if a.ProcRounds == 0 {
		return 0
	}
	return float64(a.UsefulWork) / float64(a.ProcRounds)
}

// MeanConflictRatio returns the unweighted mean of the per-round
// conflict ratios (0 for an empty run).
func (a *AdaptiveResult) MeanConflictRatio() float64 {
	if len(a.R) == 0 {
		return 0
	}
	total := 0.0
	for _, r := range a.R {
		total += r
	}
	return total / float64(len(a.R))
}

// RunAdaptive drives the executor with controller c until the work-set
// drains or maxRounds elapse, feeding each round's measured conflict
// ratio back to the controller — the paper's Algorithm 1 main loop
// running on a real speculative runtime instead of the graph model.
func RunAdaptive(e *Executor, c control.Controller, maxRounds int) *AdaptiveResult {
	res := &AdaptiveResult{Controller: c.Name()}
	for round := 0; round < maxRounds && e.Pending() > 0; round++ {
		m := c.M()
		st := e.Round(m)
		r := st.ConflictRatio()
		res.M = append(res.M, m)
		res.R = append(res.R, r)
		res.Committed = append(res.Committed, st.Committed)
		res.UsefulWork += st.Committed
		res.WastedWork += st.Aborted
		res.ProcRounds += st.Launched
		res.Rounds++
		c.Observe(r)
	}
	return res
}

// RunAdaptiveOrdered drives the ordered executor under controller c —
// processor allocation for ordered algorithms, the paper's §5 future
// work. The controller consumes the combined wasted-work ratio
// (conflicts + premature executions).
func RunAdaptiveOrdered(e *OrderedExecutor, c control.Controller, maxRounds int) *AdaptiveResult {
	res := &AdaptiveResult{Controller: c.Name()}
	for round := 0; round < maxRounds && e.Pending() > 0; round++ {
		m := c.M()
		st := e.Round(m)
		r := st.ConflictRatio()
		res.M = append(res.M, m)
		res.R = append(res.R, r)
		res.Committed = append(res.Committed, st.Committed)
		res.UsefulWork += st.Committed
		res.WastedWork += st.Aborted()
		res.ProcRounds += st.Launched
		res.Rounds++
		c.Observe(r)
	}
	return res
}

// GraphWorkload lifts a CC graph into runtime tasks so the goroutine
// executor can run the same experiments as the model simulator: one task
// per node; adjacent tasks genuinely conflict (they race to lock the
// shared per-edge item), non-adjacent tasks never do. Committed tasks
// remove their node at commit time.
type GraphWorkload struct {
	mu        sync.Mutex
	g         *graph.Graph
	nodeItems map[int]*Item
	edgeItems map[[2]int]*Item
}

// NewGraphWorkload wraps g (which it owns from now on).
func NewGraphWorkload(g *graph.Graph) *GraphWorkload {
	return &GraphWorkload{
		g:         g,
		nodeItems: make(map[int]*Item),
		edgeItems: make(map[[2]int]*Item),
	}
}

// Graph exposes the underlying graph for inspection between rounds.
func (wl *GraphWorkload) Graph() *graph.Graph { return wl.g }

func edgeKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

func (wl *GraphWorkload) nodeItem(v int) *Item {
	if it, ok := wl.nodeItems[v]; ok {
		return it
	}
	it := NewItem(int64(v))
	wl.nodeItems[v] = it
	return it
}

func (wl *GraphWorkload) edgeItem(u, v int) *Item {
	k := edgeKey(u, v)
	if it, ok := wl.edgeItems[k]; ok {
		return it
	}
	// +1 on the high half keeps edge Seqs disjoint from node Seqs: the
	// edge (0, v) would otherwise collide with node v, which would
	// corrupt Seq-keyed diagnostics and the colored-mode conflict
	// learner (footprints are compared by Seq).
	it := NewItem((int64(k[0])+1)<<32 | int64(k[1]))
	wl.edgeItems[k] = it
	return it
}

// TaskFor returns the speculative task processing node v. The task is
// keyed by its node so the colored-mode learner can identify it across
// retries.
func (wl *GraphWorkload) TaskFor(v int) Task {
	return Keyed(int64(v), TaskFunc(func(ctx *Ctx) error {
		// Snapshot the neighborhood under the structural lock; the
		// graph does not mutate during a round (mutation is deferred to
		// commit actions), so the snapshot is round-consistent.
		wl.mu.Lock()
		if !wl.g.Has(v) {
			// Node already processed in an earlier round (stale retry);
			// nothing to do — commit as a no-op.
			wl.mu.Unlock()
			return nil
		}
		items := []*Item{wl.nodeItem(v)}
		wl.g.EachNeighbor(v, func(u int) {
			items = append(items, wl.edgeItem(v, u))
		})
		wl.mu.Unlock()

		if err := ctx.AcquireAll(items...); err != nil {
			return err
		}
		ctx.OnCommit(func() {
			wl.mu.Lock()
			defer wl.mu.Unlock()
			wl.g.EachNeighbor(v, func(u int) {
				delete(wl.edgeItems, edgeKey(v, u))
			})
			delete(wl.nodeItems, v)
			wl.g.RemoveNode(v)
		})
		return nil
	}))
}

// Populate adds one task per live node to the executor.
func (wl *GraphWorkload) Populate(e *Executor) {
	for _, v := range wl.g.Nodes() {
		e.Add(wl.TaskFor(v))
	}
}

// NewGraphExecutor builds an executor over the workload with the model's
// uniform-random task selection, seeded from r.
func NewGraphExecutor(wl *GraphWorkload, r *rng.Rand) *Executor {
	var mu sync.Mutex
	e := NewExecutor(func(n int) int {
		mu.Lock()
		defer mu.Unlock()
		return r.Intn(n)
	})
	wl.Populate(e)
	return e
}
