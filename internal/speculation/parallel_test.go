package speculation

import (
	"runtime"
	"testing"
	"time"
)

// The executor must genuinely run tasks concurrently: 32 sleeping tasks
// in one round should complete in far less than 32 sleeps of serial
// time. Uses generous margins to stay robust on loaded CI machines.
func TestRoundRunsTasksInParallel(t *testing.T) {
	if runtime.NumCPU() < 2 {
		t.Skip("single-CPU machine")
	}
	const tasks = 32
	const sleep = 20 * time.Millisecond
	e := NewExecutor(nil)
	for i := 0; i < tasks; i++ {
		e.Add(TaskFunc(func(*Ctx) error {
			time.Sleep(sleep)
			return nil
		}))
	}
	start := time.Now()
	st := e.Round(tasks)
	elapsed := time.Since(start)
	if st.Committed != tasks {
		t.Fatalf("committed %d", st.Committed)
	}
	serial := time.Duration(tasks) * sleep
	if elapsed > serial/2 {
		t.Fatalf("round took %v; serial would be %v — no parallelism?", elapsed, serial)
	}
}

func TestOrderedRoundRunsPhase1InParallel(t *testing.T) {
	if runtime.NumCPU() < 2 {
		t.Skip("single-CPU machine")
	}
	const tasks = 32
	const sleep = 20 * time.Millisecond
	e := NewOrderedExecutor()
	for i := 0; i < tasks; i++ {
		e.Add(sleepOrderedTask{k: Key{Time: float64(i)}, d: sleep})
	}
	start := time.Now()
	st := e.Round(tasks)
	elapsed := time.Since(start)
	if st.Committed != tasks {
		t.Fatalf("committed %d", st.Committed)
	}
	serial := time.Duration(tasks) * sleep
	if elapsed > serial/2 {
		t.Fatalf("ordered round took %v; serial would be %v", elapsed, serial)
	}
}

type sleepOrderedTask struct {
	k Key
	d time.Duration
}

func (t sleepOrderedTask) Key() Key { return t.k }
func (t sleepOrderedTask) Run(*OrderedCtx) error {
	time.Sleep(t.d)
	return nil
}
