// Package vfs is the filesystem seam under the durability layer: the
// minimal set of operations the write-ahead journal performs, as an
// interface, so fault-injection tests can make fsync fail or the disk
// fill up without touching the real filesystem.
//
// The package deliberately lives below both internal/journal (which
// consumes the seam) and internal/faultinject (which wraps it with
// programmable faults), so neither needs to import the other.
package vfs

import (
	"io"
	"os"
)

// File is the subset of *os.File the journal writes through.
type File interface {
	io.Writer
	io.Closer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
}

// FS abstracts the filesystem operations the journal performs. The OS
// implementation is the zero-cost default; fault injectors wrap one.
type FS interface {
	// OpenFile opens name with the given flag and permissions.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens name read-only (the journal uses it to fsync
	// directories after renames).
	Open(name string) (File, error)
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists the directory entries of name.
	ReadDir(name string) ([]os.DirEntry, error)
	// MkdirAll creates name and any missing parents.
	MkdirAll(name string, perm os.FileMode) error
	// Remove deletes name.
	Remove(name string) error
	// Rename atomically moves oldpath to newpath.
	Rename(oldpath, newpath string) error
	// Truncate resizes name to size bytes.
	Truncate(name string, size int64) error
}

// OS is the passthrough FS backed by package os.
type OS struct{}

func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (OS) Open(name string) (File, error)             { return os.Open(name) }
func (OS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (OS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
func (OS) MkdirAll(name string, perm os.FileMode) error {
	return os.MkdirAll(name, perm)
}
func (OS) Remove(name string) error             { return os.Remove(name) }
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (OS) Truncate(name string, size int64) error {
	return os.Truncate(name, size)
}
