// Package stats provides the small statistical toolkit the experiment
// harnesses rely on: online moment accumulators, confidence intervals,
// histograms, and time-series summaries.
//
// Everything is plain float64 arithmetic over stdlib math; the package has
// no dependencies and no global state.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes running mean and variance using Welford's
// numerically stable online algorithm. The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (a *Accumulator) Add(x float64) {
	if a.n == 0 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.n++
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// AddN incorporates x as if observed k times.
func (a *Accumulator) AddN(x float64, k int) {
	for i := 0; i < k; i++ {
		a.Add(x)
	}
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean, or 0 if empty.
func (a *Accumulator) Mean() float64 { return a.mean }

// Min returns the smallest observation, or 0 if empty.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation, or 0 if empty.
func (a *Accumulator) Max() float64 { return a.max }

// Variance returns the unbiased sample variance, or 0 with fewer than two
// observations.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// CI95 returns the half-width of an approximate 95% confidence interval
// for the mean (normal approximation, z = 1.96).
func (a *Accumulator) CI95() float64 { return 1.96 * a.StdErr() }

// Merge folds another accumulator into a (Chan et al. parallel update).
// Min/max are combined too.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	delta := b.mean - a.mean
	a.m2 += b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n)
	a.mean += delta * float64(b.n) / float64(n)
	a.n = n
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
}

// String renders "mean ± ci95 (n=N)".
func (a *Accumulator) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", a.Mean(), a.CI95(), a.n)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs.
func Variance(xs []float64) float64 {
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	return a.Variance()
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It panics on empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("stats: quantile out of [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Histogram is a fixed-width binned histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi   float64
	Counts   []int
	Under    int // observations below Lo
	Over     int // observations at or above Hi
	binWidth float64
}

// NewHistogram allocates a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{
		Lo:       lo,
		Hi:       hi,
		Counts:   make([]int, bins),
		binWidth: (hi - lo) / float64(bins),
	}
}

// Add places one observation in its bin.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / h.binWidth)
		if i >= len(h.Counts) { // guard FP edge at Hi
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations, including out-of-range ones.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.binWidth
}

// Series is an ordered sequence of (x, y) observations, used to record
// controller trajectories and conflict-ratio curves.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds one point to the series.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// YMean returns the mean of the series' Y values.
func (s *Series) YMean() float64 { return Mean(s.Y) }

// TailMean returns the mean of the last k Y values (all values if k
// exceeds the length).
func (s *Series) TailMean(k int) float64 {
	if k > len(s.Y) {
		k = len(s.Y)
	}
	if k == 0 {
		return 0
	}
	return Mean(s.Y[len(s.Y)-k:])
}

// AbsErr returns |a-b|.
func AbsErr(a, b float64) float64 { return math.Abs(a - b) }

// RelErr returns |a-b| / max(|b|, eps) — the relative error of a against
// reference b, safe for b near zero.
func RelErr(a, b float64) float64 {
	d := math.Abs(b)
	if d < 1e-12 {
		d = 1e-12
	}
	return math.Abs(a-b) / d
}
