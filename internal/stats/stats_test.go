package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAccumulatorBasic(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d, want 8", a.N())
	}
	if !almostEq(a.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", a.Mean())
	}
	// Population variance of this classic dataset is 4; sample variance
	// is 32/7.
	if !almostEq(a.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", a.Variance(), 32.0/7.0)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", a.Min(), a.Max())
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.StdErr() != 0 {
		t.Error("empty accumulator should report zeros")
	}
}

func TestAccumulatorSingle(t *testing.T) {
	var a Accumulator
	a.Add(3.5)
	if a.Mean() != 3.5 || a.Variance() != 0 {
		t.Errorf("single observation: mean=%v var=%v", a.Mean(), a.Variance())
	}
}

func TestAccumulatorMergeMatchesSequential(t *testing.T) {
	clamp := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		// Keep magnitudes small enough that squared deltas cannot
		// overflow; the algebraic identity is what is under test.
		return math.Mod(v, 1e6)
	}
	f := func(xs, ys []float64) bool {
		var seq, a, b Accumulator
		for _, x := range xs {
			x = clamp(x)
			seq.Add(x)
			a.Add(x)
		}
		for _, y := range ys {
			y = clamp(y)
			seq.Add(y)
			b.Add(y)
		}
		a.Merge(&b)
		return a.N() == seq.N() &&
			almostEq(a.Mean(), seq.Mean(), 1e-9*(1+math.Abs(seq.Mean()))) &&
			almostEq(a.Variance(), seq.Variance(), 1e-6*(1+seq.Variance()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulatorMergeEmptySides(t *testing.T) {
	var a, b Accumulator
	b.Add(1)
	b.Add(3)
	a.Merge(&b)
	if a.N() != 2 || a.Mean() != 2 {
		t.Errorf("merge into empty: n=%d mean=%v", a.N(), a.Mean())
	}
	var c Accumulator
	a.Merge(&c) // merging empty is a no-op
	if a.N() != 2 {
		t.Error("merging empty accumulator changed state")
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if !almostEq(Variance(xs), 5.0/3.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", Variance(xs), 5.0/3.0)
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	if Quantile(xs, 0) != 1 {
		t.Errorf("q0 = %v", Quantile(xs, 0))
	}
	if Quantile(xs, 1) != 9 {
		t.Errorf("q1 = %v", Quantile(xs, 1))
	}
	if m := Median(xs); !almostEq(m, 3.5, 1e-12) {
		t.Errorf("median = %v, want 3.5", m)
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileSingle(t *testing.T) {
	if Quantile([]float64{7}, 0.3) != 7 {
		t.Error("quantile of singleton")
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty input")
		}
	}()
	Quantile(nil, 0.5)
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 {
		t.Errorf("Under = %d", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("Over = %d", h.Over)
	}
	want := []int{2, 1, 1, 0, 1}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bin %d = %d, want %d (counts %v)", i, c, want[i], h.Counts)
		}
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d", h.Total())
	}
	if !almostEq(h.BinCenter(0), 1, 1e-12) {
		t.Errorf("BinCenter(0) = %v", h.BinCenter(0))
	}
}

func TestHistogramInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for hi <= lo")
		}
	}()
	NewHistogram(1, 1, 4)
}

func TestSeries(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Append(float64(i), float64(i*i))
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.TailMean(2); !almostEq(got, (64+81)/2.0, 1e-12) {
		t.Errorf("TailMean(2) = %v", got)
	}
	if got := s.TailMean(100); !almostEq(got, s.YMean(), 1e-12) {
		t.Errorf("TailMean over length should equal YMean: %v vs %v", got, s.YMean())
	}
}

func TestRelErr(t *testing.T) {
	if !almostEq(RelErr(11, 10), 0.1, 1e-12) {
		t.Errorf("RelErr(11,10) = %v", RelErr(11, 10))
	}
	if RelErr(1, 0) <= 0 {
		t.Error("RelErr with zero reference should be finite and positive")
	}
	if math.IsInf(RelErr(1, 0), 0) || math.IsNaN(RelErr(1, 0)) {
		t.Error("RelErr with zero reference must be finite")
	}
}

// Property: variance is translation invariant and scales quadratically.
func TestVarianceProperties(t *testing.T) {
	f := func(raw []float64, shiftRaw float64) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				v = 1
			}
			xs = append(xs, v)
		}
		shift := math.Mod(shiftRaw, 1000)
		if math.IsNaN(shift) {
			shift = 0
		}
		base := Variance(xs)
		shifted := make([]float64, len(xs))
		scaled := make([]float64, len(xs))
		for i, v := range xs {
			shifted[i] = v + shift
			scaled[i] = 2 * v
		}
		tol := 1e-6 * (1 + base)
		return almostEq(Variance(shifted), base, tol) &&
			almostEq(Variance(scaled), 4*base, 4*tol)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulatorConveniences(t *testing.T) {
	var a Accumulator
	a.AddN(4, 3)
	a.Add(8)
	if a.N() != 4 || a.Mean() != 5 {
		t.Fatalf("n=%d mean=%v", a.N(), a.Mean())
	}
	if got, want := a.StdDev()*a.StdDev(), a.Variance(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("StdDev² %v vs Variance %v", got, want)
	}
	if a.CI95() <= 0 || a.CI95() != 1.96*a.StdErr() {
		t.Fatalf("CI95 %v StdErr %v", a.CI95(), a.StdErr())
	}
	if s := a.String(); !strings.Contains(s, "n=4") {
		t.Fatalf("String: %q", s)
	}
}

func TestStdDevSlice(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("StdDev = %v", got)
	}
}

func TestSeriesYMeanEmpty(t *testing.T) {
	var s Series
	if s.YMean() != 0 || s.TailMean(5) != 0 {
		t.Fatal("empty series should report zeros")
	}
}

func TestQuantilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

func TestAbsErr(t *testing.T) {
	if AbsErr(3, 5) != 2 || AbsErr(5, 3) != 2 {
		t.Fatal("AbsErr broken")
	}
}
