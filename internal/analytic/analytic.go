// Package analytic implements the closed-form theory of §3 of the paper:
// Turán's bound on maximal independent sets (Thm. 1), the exact expected
// induced-MIS size on the worst-case clique-union graphs K^n_d (Thm. 3),
// its asymptotic approximations (Cor. 2 and Cor. 3), the initial slope of
// the conflict-ratio function (Prop. 2), the degree-sequence functional
// b_m(G) from the proof of Thm. 2 (Eq. 19–21), and finite-difference
// utilities (Eq. 2).
//
// All functions are deterministic, allocation-light, and independent of
// the simulation packages, so they can serve as oracles in tests of the
// Monte Carlo machinery.
package analytic

import (
	"fmt"
	"math"
)

// TuranBound returns n/(d+1), the Turán lower bound (Thm. 1, strong form)
// on the expected size of a greedily built maximal independent set in a
// graph with n nodes and average degree d.
func TuranBound(n int, d float64) float64 {
	return float64(n) / (d + 1)
}

// ProbComponentMissed returns the probability that a fixed set of c
// special nodes is completely avoided when m nodes are drawn uniformly
// without replacement from n — the hypergeometric identity of Eq. 26:
//
//	∏_{i=0}^{m-1} (n-c-i)/(n-i).
func ProbComponentMissed(n, c, m int) float64 {
	if c < 0 || m < 0 || n < 0 || c > n || m > n {
		panic(fmt.Sprintf("analytic: ProbComponentMissed bad args n=%d c=%d m=%d", n, c, m))
	}
	if m > n-c {
		return 0
	}
	p := 1.0
	for i := 0; i < m; i++ {
		p *= float64(n-c-i) / float64(n-i)
	}
	return p
}

// EMCliqueUnion returns the exact EM_m(K^n_d) of Thm. 3: the expected
// size of a maximal independent set of the subgraph induced by m random
// nodes in the disjoint union of s = n/(d+1) cliques of size d+1,
//
//	EM_m(K^n_d) = s · (1 − ∏_{i=1}^{m} (n−d−i)/(n+1−i)).
//
// It panics unless (d+1) divides n and 0 <= m <= n.
func EMCliqueUnion(n, d, m int) float64 {
	if d < 0 || n <= 0 || n%(d+1) != 0 {
		panic(fmt.Sprintf("analytic: EMCliqueUnion requires (d+1)|n, got n=%d d=%d", n, d))
	}
	if m < 0 || m > n {
		panic(fmt.Sprintf("analytic: EMCliqueUnion m=%d out of range", m))
	}
	s := float64(n / (d + 1))
	return s * (1 - ProbComponentMissed(n, d+1, m))
}

// EMCliqueUnionGeneral extends the Thm. 3 formula to n not divisible by
// d+1 by letting the number of cliques s = n/(d+1) be fractional. For
// divisible n it coincides with EMCliqueUnion; otherwise it is the
// natural smooth interpolation used to plot worst-case curves at the
// paper's parameters (e.g. n=2000, d=16 in Fig. 2).
func EMCliqueUnionGeneral(n, d, m int) float64 {
	if d < 0 || n <= 0 {
		panic(fmt.Sprintf("analytic: EMCliqueUnionGeneral bad args n=%d d=%d", n, d))
	}
	if m < 0 || m > n {
		panic(fmt.Sprintf("analytic: EMCliqueUnionGeneral m=%d out of range", m))
	}
	s := float64(n) / float64(d+1)
	return s * (1 - ProbComponentMissed(n, d+1, m))
}

// WorstCaseConflictRatio returns the Thm. 3 upper bound on the conflict
// ratio r̄(m) over all graphs with n nodes and average degree d:
//
//	r̄(m) ≤ 1 − EM_m(K^n_d)/m.
//
// For m = 0 it returns 0 by convention. Non-divisible n uses the
// fractional-s interpolation of EMCliqueUnionGeneral.
func WorstCaseConflictRatio(n, d, m int) float64 {
	if m == 0 {
		return 0
	}
	return 1 - EMCliqueUnionGeneral(n, d, m)/float64(m)
}

// Cor2ConflictBound returns the Cor. 2 approximation of the worst-case
// conflict-ratio bound for large n and m:
//
//	r̄(m) ≤ 1 − n/(m(d+1)) · [1 − (1 − m/n)^{d+1}].
func Cor2ConflictBound(n, d float64, m float64) float64 {
	if m <= 0 {
		return 0
	}
	return 1 - n/(m*(d+1))*(1-math.Pow(1-m/n, d+1))
}

// Cor3ConflictBound returns the Cor. 3 bound for m = α·n/(d+1):
//
//	r̄ ≤ 1 − (1/α)[1 − (1 − α/(d+1))^{d+1}]  ≤  1 − (1 − e^{−α})/α.
//
// The finite-d form is returned; use Cor3Limit for the d→∞ envelope.
func Cor3ConflictBound(alpha, d float64) float64 {
	if alpha <= 0 {
		return 0
	}
	return 1 - (1-math.Pow(1-alpha/(d+1), d+1))/alpha
}

// Cor3Limit returns the degree-independent envelope 1 − (1−e^{−α})/α.
func Cor3Limit(alpha float64) float64 {
	if alpha <= 0 {
		return 0
	}
	return 1 - (1-math.Exp(-alpha))/alpha
}

// InitialSlope returns Δr̄(1) = d/(2(n−1)) (Prop. 2): the first finite
// difference of the conflict ratio at m = 1 for any graph with n nodes
// and average degree d.
func InitialSlope(n int, d float64) float64 {
	if n < 2 {
		return 0
	}
	return d / (2 * float64(n-1))
}

// BFromDegrees returns b_m(G) (Eq. 20): the expected number of active
// nodes with no earlier neighbor in a random length-m permutation prefix,
// computed exactly from the degree sequence:
//
//	b_m(G) = (1/n) Σ_v Σ_{j=1}^{m} ∏_{i=1}^{j-1} (n−i−d_v)/(n−i).
//
// It runs in O(m · #distinct degrees). b_m(G) ≤ EM_m(G) for every graph,
// with equality on unions of cliques (proof of Thm. 2).
func BFromDegrees(degrees []int, m int) float64 {
	n := len(degrees)
	if m < 0 || m > n {
		panic(fmt.Sprintf("analytic: BFromDegrees m=%d out of range [0,%d]", m, n))
	}
	counts := map[int]int{}
	for _, d := range degrees {
		if d < 0 || d >= n {
			panic(fmt.Sprintf("analytic: impossible degree %d with n=%d", d, n))
		}
		counts[d]++
	}
	total := 0.0
	for d, c := range counts {
		// inner = Σ_{j=1..m} P_{j-1}, with P_0 = 1 and
		// P_j = P_{j-1} · (n-j-d)/(n-j).
		inner := 0.0
		p := 1.0
		for j := 1; j <= m; j++ {
			inner += p
			p *= float64(n-j-d) / float64(n-j)
			if p < 0 {
				p = 0 // degree too high to survive further prefixes
			}
		}
		total += float64(c) * inner
	}
	return total / float64(n)
}

// BLowerConflictBound converts b_m into an upper bound on the expected
// committed work and hence a *lower* bound on nothing — note direction:
// since b_m(G) ≤ EM_m(G), the quantity 1 − b_m(G)/m is an upper bound on
// the conflict ratio of G computable from its degree sequence alone.
func BLowerConflictBound(degrees []int, m int) float64 {
	if m == 0 {
		return 0
	}
	return 1 - BFromDegrees(degrees, m)/float64(m)
}

// Example1Expected returns the exact expected number of committed nodes
// when m nodes are drawn uniformly from the Example 1 graph
// K_c ∪ D_k (a clique of size c plus k isolated nodes):
//
//	E[committed] = (1 − ProbComponentMissed(n, c, m)) + m·k/n.
//
// The paper instantiates c = n², k = n, m = n+1 and observes the value
// is ≈ 2 even though every maximal independent set has size n+1.
func Example1Expected(c, k, m int) float64 {
	n := c + k
	if m < 0 || m > n {
		panic("analytic: Example1Expected m out of range")
	}
	hitClique := 1 - ProbComponentMissed(n, c, m)
	isolated := float64(m) * float64(k) / float64(n)
	return hitClique + isolated
}

// FiniteDiff returns the i-th forward finite difference of f at k
// (Eq. 2): Δ⁰f = f, Δⁱf(k) = Δ^{i−1}f(k+1) − Δ^{i−1}f(k).
func FiniteDiff(f func(int) float64, order, k int) float64 {
	if order < 0 {
		panic("analytic: negative finite-difference order")
	}
	if order == 0 {
		return f(k)
	}
	// Use the binomial expansion Δⁱf(k) = Σ_j (-1)^{i-j} C(i,j) f(k+j),
	// which avoids recursion depth and recomputation.
	sum := 0.0
	sign := 1.0
	if order%2 == 1 {
		sign = -1
	}
	c := 1.0 // C(order, 0)
	for j := 0; j <= order; j++ {
		sum += sign * c * f(k+j)
		sign = -sign
		c = c * float64(order-j) / float64(j+1)
	}
	return sum
}

// Binomial returns C(n, k) as a float64, 0 for invalid arguments.
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c
}

// SuggestedInitialM returns the "smarter" initial processor count the
// paper derives from Cor. 3 (§4): with an estimate of the average degree
// d, running m = n/(2(d+1)) processors (α = 1/2) guarantees a conflict
// ratio of at most ≈21.3%.
func SuggestedInitialM(n int, d float64) int {
	m := int(float64(n) / (2 * (d + 1)))
	if m < 2 {
		m = 2
	}
	return m
}
