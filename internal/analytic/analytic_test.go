package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestProbComponentMissedBasics(t *testing.T) {
	// Choosing 0 nodes always misses.
	if got := ProbComponentMissed(10, 3, 0); got != 1 {
		t.Fatalf("m=0: %v", got)
	}
	// Choosing all nodes always hits a non-empty component.
	if got := ProbComponentMissed(10, 3, 10); got != 0 {
		t.Fatalf("m=n: %v", got)
	}
	// One draw misses c marked nodes with probability (n-c)/n.
	if got := ProbComponentMissed(10, 3, 1); !almostEq(got, 0.7, 1e-12) {
		t.Fatalf("m=1: %v", got)
	}
	// Complement identity: c=1, m draws hit with prob m/n.
	if got := ProbComponentMissed(10, 1, 4); !almostEq(got, 0.6, 1e-12) {
		t.Fatalf("c=1: %v", got)
	}
}

func TestProbComponentMissedMatchesBinomial(t *testing.T) {
	// ∏ identity equals C(n-c, m)/C(n, m).
	for _, tc := range []struct{ n, c, m int }{
		{10, 3, 4}, {20, 5, 7}, {30, 1, 29}, {12, 6, 6},
	} {
		want := Binomial(tc.n-tc.c, tc.m) / Binomial(tc.n, tc.m)
		got := ProbComponentMissed(tc.n, tc.c, tc.m)
		if !almostEq(got, want, 1e-12) {
			t.Errorf("n=%d c=%d m=%d: got %v want %v", tc.n, tc.c, tc.m, got, want)
		}
	}
}

func TestEMCliqueUnionEndpoints(t *testing.T) {
	// m=0: no active nodes, empty MIS.
	if got := EMCliqueUnion(20, 4, 0); got != 0 {
		t.Fatalf("m=0: %v", got)
	}
	// m=n: every clique is hit, EM = s.
	if got := EMCliqueUnion(20, 4, 20); !almostEq(got, 4, 1e-12) {
		t.Fatalf("m=n: %v", got)
	}
	// m=1: exactly one clique hit.
	if got := EMCliqueUnion(20, 4, 1); !almostEq(got, 1, 1e-12) {
		t.Fatalf("m=1: %v", got)
	}
	// d=0: all nodes isolated, EM = m.
	for m := 0; m <= 10; m++ {
		if got := EMCliqueUnion(10, 0, m); !almostEq(got, float64(m), 1e-12) {
			t.Fatalf("d=0 m=%d: %v", m, got)
		}
	}
	// Complete graph (s=1): EM = probability of hitting = 1 for m>=1.
	if got := EMCliqueUnion(10, 9, 3); !almostEq(got, 1, 1e-12) {
		t.Fatalf("complete: %v", got)
	}
}

// Thm. 3 against Monte Carlo on the actual K^n_d graph.
func TestEMCliqueUnionMatchesMonteCarlo(t *testing.T) {
	r := rng.New(1)
	const n, d = 60, 5
	g := graph.CliqueUnion(n, d)
	for _, m := range []int{1, 5, 10, 20, 40, 60} {
		exact := EMCliqueUnion(n, d, m)
		mc := graph.ExpectedInducedMISMonteCarlo(g, r, m, 4000)
		if !almostEq(exact, mc, 0.12) {
			t.Errorf("m=%d: exact %v, MC %v", m, exact, mc)
		}
	}
}

// Thm. 2: K^n_d minimizes EM_m among graphs with the same n and d.
func TestWorstCaseExactIsWorst(t *testing.T) {
	r := rng.New(2)
	const n, d = 60, 5
	rivals := []*graph.Graph{
		graph.RandomGNM(r, n, n*d/2),
		graph.Grid2D(6, 10), // d=2·(2·60-6-10)/60 != 5; skip degree-mismatched
	}
	// Only compare rivals with matching average degree.
	for i, g := range rivals {
		if math.Abs(g.AvgDegree()-float64(d)) > 1e-9 {
			continue
		}
		for _, m := range []int{5, 15, 30, 45} {
			worst := EMCliqueUnion(n, d, m)
			mc := graph.ExpectedInducedMISMonteCarlo(g, r, m, 3000)
			if mc < worst-0.15 {
				t.Errorf("rival %d m=%d: EM %v below worst-case %v", i, m, mc, worst)
			}
		}
	}
}

func TestWorstCaseConflictRatioMonotoneAndBounded(t *testing.T) {
	const n, d = 2000, 16
	prev := -1.0
	for m := 1; m <= n; m += 37 {
		r := WorstCaseConflictRatio(n, d, m)
		if r < prev-1e-12 {
			t.Fatalf("worst-case ratio decreased at m=%d: %v < %v", m, r, prev)
		}
		if r < 0 || r >= 1 {
			t.Fatalf("ratio out of [0,1) at m=%d: %v", m, r)
		}
		prev = r
	}
	if WorstCaseConflictRatio(n, d, 0) != 0 {
		t.Fatal("m=0 convention broken")
	}
	if !almostEq(WorstCaseConflictRatio(n, d, 1), 0, 1e-12) {
		t.Fatal("single processor can never conflict")
	}
}

// Cor. 2 approximates Thm. 3 well for large n.
func TestCor2ApproximatesThm3(t *testing.T) {
	const n, d = 3400, 16 // (d+1)|n: 3400/17 = 200
	for _, m := range []int{10, 50, 100, 500, 1000, 2000} {
		exact := WorstCaseConflictRatio(n, d, m)
		approx := Cor2ConflictBound(n, d, float64(m))
		if !almostEq(exact, approx, 0.01) {
			t.Errorf("m=%d: exact %v approx %v", m, exact, approx)
		}
	}
}

// Cor. 3: at α = 1/2 the bound is ≈ 21.3% (the paper's §4 number).
func TestCor3HalfAlphaIs21Percent(t *testing.T) {
	got := Cor3Limit(0.5)
	if !almostEq(got, 0.2131, 5e-4) {
		t.Fatalf("Cor3Limit(0.5) = %v, want ≈0.213", got)
	}
	// Finite-d bound is below the limit envelope and approaches it.
	for _, d := range []float64{4, 16, 64, 256} {
		fb := Cor3ConflictBound(0.5, d)
		if fb > got+1e-12 {
			t.Errorf("finite-d bound %v exceeds envelope %v at d=%v", fb, got, d)
		}
	}
	if diff := got - Cor3ConflictBound(0.5, 1e6); diff > 1e-6 {
		t.Errorf("finite-d bound does not approach envelope: diff %v", diff)
	}
}

func TestCor3MonotoneInAlpha(t *testing.T) {
	prev := -1.0
	for a := 0.05; a <= 4; a += 0.05 {
		v := Cor3Limit(a)
		if v < prev {
			t.Fatalf("Cor3Limit not increasing at α=%v", a)
		}
		prev = v
	}
}

// Prop. 2 exact check: Δr̄(1) = r̄(2) − r̄(1) = k̄(2)/2 = d/(2(n−1)).
// We verify via the worst-case closed form, whose slope must also obey
// Prop. 2 since K^n_d has average degree d.
func TestInitialSlopeMatchesWorstCaseFormula(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{20, 4}, {60, 5}, {2040, 16}, {100, 0}} {
		slope := WorstCaseConflictRatio(tc.n, tc.d, 2) - WorstCaseConflictRatio(tc.n, tc.d, 1)
		want := InitialSlope(tc.n, float64(tc.d))
		if !almostEq(slope, want, 1e-12) {
			t.Errorf("n=%d d=%d: slope %v want %v", tc.n, tc.d, slope, want)
		}
	}
}

func TestBFromDegreesCliqueUnionEqualsThm3(t *testing.T) {
	// On K^n_d, b_m = EM_m exactly (proof of Thm. 2).
	const n, d = 60, 5
	degrees := make([]int, n)
	for i := range degrees {
		degrees[i] = d
	}
	for _, m := range []int{0, 1, 7, 30, 60} {
		b := BFromDegrees(degrees, m)
		em := EMCliqueUnion(n, d, m)
		if !almostEq(b, em, 1e-9) {
			t.Errorf("m=%d: b=%v EM=%v", m, b, em)
		}
	}
}

// Jensen direction (Eq. 22): for any degree sequence with mean d,
// b_m(G) >= b_m(regular-d graph).
func TestBFromDegreesJensen(t *testing.T) {
	f := func(seed uint64, mRaw uint8) bool {
		r := rng.New(seed)
		const n = 40
		// Random degree sequence with controlled mean.
		degrees := make([]int, n)
		total := 0
		for i := range degrees {
			degrees[i] = r.Intn(n / 2)
			total += degrees[i]
		}
		meanFloor := total / n
		regular := make([]int, n)
		for i := range regular {
			regular[i] = meanFloor
		}
		m := int(mRaw)%n + 1
		// Compare against the floor-mean regular sequence; by convexity
		// in each node's degree, lowering degrees only raises b, so
		// b(degrees) >= b with all degrees = exact mean >= ... we check
		// the weaker, safe direction against mean ceil.
		ceil := make([]int, n)
		for i := range ceil {
			ceil[i] = (total + n - 1) / n
		}
		bG := BFromDegrees(degrees, m)
		bCeil := BFromDegrees(ceil, m)
		_ = regular
		return bG >= bCeil-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// b_m from degrees must match the Monte Carlo NoEarlierNeighborCount on a
// real graph.
func TestBFromDegreesMatchesMonteCarlo(t *testing.T) {
	r := rng.New(3)
	g := graph.RandomGNM(r, 50, 150)
	degrees := make([]int, 0, 50)
	for _, v := range g.Nodes() {
		degrees = append(degrees, g.Degree(v))
	}
	for _, m := range []int{5, 20, 50} {
		exact := BFromDegrees(degrees, m)
		sum := 0
		const reps = 6000
		for i := 0; i < reps; i++ {
			sum += graph.NoEarlierNeighborCount(g, g.SampleNodes(r, m))
		}
		mc := float64(sum) / reps
		if !almostEq(exact, mc, 0.15) {
			t.Errorf("m=%d: exact %v MC %v", m, exact, mc)
		}
	}
}

func TestExample1(t *testing.T) {
	// Paper's Example 1: G = K_{n²} ∪ D_n, choose m = n+1 nodes.
	// Expected committed ≈ 2 (one from the clique, ~1 isolated).
	for _, n := range []int{8, 16, 32} {
		got := Example1Expected(n*n, n, n+1)
		if got < 1.5 || got > 2.5 {
			t.Errorf("n=%d: expected committed %v, want ≈2", n, got)
		}
	}
	// Yet every maximal independent set has size n+1 — verified
	// structurally on the real graph.
	g := graph.CliquePlusIsolated(64, 8)
	r := rng.New(4)
	order := g.SampleNodes(r, g.NumNodes())
	mis, _ := graph.GreedyMIS(g, order)
	if len(mis) != 9 {
		t.Errorf("maximal IS size %d, want 9", len(mis))
	}
}

func TestFiniteDiff(t *testing.T) {
	f := func(k int) float64 { return float64(k * k) }
	// Δ(k²) = 2k+1; Δ²(k²) = 2; Δ³(k²) = 0.
	if got := FiniteDiff(f, 1, 3); got != 7 {
		t.Errorf("Δf(3) = %v, want 7", got)
	}
	if got := FiniteDiff(f, 2, 5); got != 2 {
		t.Errorf("Δ²f(5) = %v, want 2", got)
	}
	if got := FiniteDiff(f, 3, 2); got != 0 {
		t.Errorf("Δ³f(2) = %v, want 0", got)
	}
	if got := FiniteDiff(f, 0, 4); got != 16 {
		t.Errorf("Δ⁰f(4) = %v, want 16", got)
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 2, 10}, {10, 0, 1}, {10, 10, 1}, {10, 11, 0}, {10, -1, 0}, {52, 5, 2598960},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); !almostEq(got, c.want, 1e-6*c.want+1e-9) {
			t.Errorf("C(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestSuggestedInitialM(t *testing.T) {
	// n=2000, d=16: m = 2000/34 = 58.
	if got := SuggestedInitialM(2000, 16); got != 58 {
		t.Errorf("SuggestedInitialM = %d, want 58", got)
	}
	// Degenerate sizes floor at the paper's m_min = 2.
	if got := SuggestedInitialM(4, 10); got != 2 {
		t.Errorf("small n: %d, want 2", got)
	}
	// And the promise it encodes: conflict ratio at α=1/2 ≤ 21.3%.
	if b := Cor3Limit(0.5); b > 0.214 {
		t.Errorf("α=1/2 bound %v > 21.4%%", b)
	}
}
