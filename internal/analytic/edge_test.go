package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTuranBoundValues(t *testing.T) {
	if got := TuranBound(100, 0); got != 100 {
		t.Errorf("disconnected graph: %v", got)
	}
	if got := TuranBound(100, 99); got != 1 {
		t.Errorf("complete graph: %v", got)
	}
	if got := TuranBound(2000, 16); math.Abs(got-2000.0/17) > 1e-12 {
		t.Errorf("paper parameters: %v", got)
	}
}

func TestBLowerConflictBound(t *testing.T) {
	// Regular degree sequence of a clique union: the bound is exact.
	const n, d = 60, 5
	degrees := make([]int, n)
	for i := range degrees {
		degrees[i] = d
	}
	for _, m := range []int{1, 10, 30, 60} {
		got := BLowerConflictBound(degrees, m)
		want := WorstCaseConflictRatio(n, d, m)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("m=%d: %v vs %v", m, got, want)
		}
	}
	if BLowerConflictBound(degrees, 0) != 0 {
		t.Error("m=0 convention")
	}
}

func TestProbComponentMissedPanics(t *testing.T) {
	for _, tc := range [][3]int{{10, -1, 3}, {10, 11, 3}, {10, 2, 11}, {10, 2, -1}} {
		tc := tc
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("args %v did not panic", tc)
				}
			}()
			ProbComponentMissed(tc[0], tc[1], tc[2])
		}()
	}
}

func TestEMCliqueUnionPanics(t *testing.T) {
	cases := []func(){
		func() { EMCliqueUnion(10, 3, 2) },         // 4 does not divide 10
		func() { EMCliqueUnion(12, 3, -1) },        // m < 0
		func() { EMCliqueUnion(12, 3, 13) },        // m > n
		func() { EMCliqueUnionGeneral(0, 3, 0) },   // n <= 0
		func() { EMCliqueUnionGeneral(10, -1, 0) }, // d < 0
		func() { EMCliqueUnionGeneral(10, 2, -1) }, // m out of range
		func() { BFromDegrees([]int{5, 5, 5}, 2) }, // impossible degree
		func() { BFromDegrees([]int{1, 1}, 3) },    // m > n
		func() { Example1Expected(4, 2, 100) },     // m > n
		func() { FiniteDiff(func(int) float64 { return 0 }, -1, 0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestCor2BoundaryValues(t *testing.T) {
	if got := Cor2ConflictBound(2000, 16, 0); got != 0 {
		t.Errorf("m=0: %v", got)
	}
	if got := Cor3ConflictBound(0, 16); got != 0 {
		t.Errorf("alpha=0: %v", got)
	}
	if got := Cor3Limit(0); got != 0 {
		t.Errorf("alpha=0 limit: %v", got)
	}
	if got := Cor3Limit(-1); got != 0 {
		t.Errorf("negative alpha: %v", got)
	}
	if got := InitialSlope(1, 5); got != 0 {
		t.Errorf("n=1 slope: %v", got)
	}
}

// Property: the Thm. 3 bound is monotone in d for fixed n, m (denser
// worst cases conflict more).
func TestWorstCaseMonotoneInDegree(t *testing.T) {
	const n = 240
	for _, m := range []int{5, 40, 120, 240} {
		prev := -1.0
		for _, d := range []int{0, 1, 2, 3, 5, 7, 11, 15, 19, 23} {
			if n%(d+1) != 0 {
				continue
			}
			cur := WorstCaseConflictRatio(n, d, m)
			if cur < prev-1e-12 {
				t.Errorf("m=%d: bound decreased from d change to %d", m, d)
			}
			prev = cur
		}
	}
}

// Property: b_m is non-decreasing in m for any degree sequence.
func TestBFromDegreesMonotoneInM(t *testing.T) {
	f := func(seed uint8) bool {
		n := 20 + int(seed)%20
		degrees := make([]int, n)
		for i := range degrees {
			degrees[i] = (i * 7) % (n - 1)
		}
		prev := 0.0
		for m := 0; m <= n; m++ {
			cur := BFromDegrees(degrees, m)
			if cur < prev-1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: hypergeometric complement — the probability of hitting a
// component is monotone in both c and m.
func TestProbComponentMissedMonotone(t *testing.T) {
	const n = 40
	for c := 0; c <= n; c += 5 {
		prev := 1.1
		for m := 0; m <= n; m += 4 {
			cur := ProbComponentMissed(n, c, m)
			if cur > prev+1e-12 {
				t.Fatalf("missed prob increased at c=%d m=%d", c, m)
			}
			prev = cur
		}
	}
	for m := 0; m <= n; m += 5 {
		prev := 1.1
		for c := 0; c <= n; c += 4 {
			cur := ProbComponentMissed(n, c, m)
			if cur > prev+1e-12 {
				t.Fatalf("missed prob increased at m=%d c=%d", m, c)
			}
			prev = cur
		}
	}
}

func TestSuggestedInitialMMonotoneInN(t *testing.T) {
	prev := 0
	for n := 10; n <= 10000; n += 500 {
		cur := SuggestedInitialM(n, 16)
		if cur < prev {
			t.Fatalf("suggested m decreased at n=%d", n)
		}
		prev = cur
	}
}
