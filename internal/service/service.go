// Package service is the long-running speculation service behind cmd/specd:
// a bounded job queue with backpressure, a worker pool that drains jobs by
// running the adaptive control loop round-by-round on the speculative
// executor, per-job round-history ring buffers for live telemetry, and
// graceful shutdown that finishes in-flight rounds before exiting.
//
// Layering: the service owns admission, scheduling, and observation;
// workload construction and controller construction are delegated to the
// internal/workload registry, and the round loop itself is the paper's
// Algorithm 1 main loop (M → Round → Observe) expressed over
// workload.Stepper so ordered and unordered workloads run identically.
//
// With Config.StateDir set (Open), the service is durable: every job
// lifecycle transition is journaled to a write-ahead log, running jobs
// checkpoint every CheckpointEvery rounds, and startup replays
// snapshot+journal to rebuild the job table — completed jobs reappear
// with their trajectories, queued jobs re-enqueue, and jobs that were
// running when the process died restart from spec in StateRecovered
// with their checkpointed trajectory prefix preserved. See persist.go
// and internal/journal.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/control"
	"repro/internal/journal"
	"repro/internal/speculation"
	"repro/internal/vfs"
	"repro/internal/workload"
)

// Submission errors, mapped to HTTP statuses by the handler layer.
var (
	// ErrQueueFull signals admission backpressure (HTTP 429).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining signals the service no longer accepts jobs (HTTP 503).
	ErrDraining = errors.New("service: shutting down")
	// ErrNoJob signals an unknown job id (HTTP 404).
	ErrNoJob = errors.New("service: no such job")
	// ErrJobTerminal signals a cancel of an already-finished job (HTTP 409).
	ErrJobTerminal = errors.New("service: job already terminal")
	// ErrDupJob signals a placed or handed-off submission whose id
	// already exists; the caller gets the existing status alongside it,
	// making redelivery idempotent (HTTP 200).
	ErrDupJob = errors.New("service: job id already exists")
	// ErrDegraded signals the journal hit a disk fault (fsync error,
	// ENOSPC) and the service is in read-only degraded mode: in-flight
	// jobs finish, reads serve, but new work is refused until the disk
	// heals and the recovery loop re-opens the journal (HTTP 503).
	ErrDegraded = errors.New("service: journal degraded, refusing new work")
)

// SpecError marks an invalid job specification (HTTP 400).
type SpecError struct{ msg string }

func (e *SpecError) Error() string { return e.msg }

func specErrf(format string, args ...any) error {
	return &SpecError{msg: fmt.Sprintf(format, args...)}
}

// State enumerates a job's lifecycle.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateRecovered State = "recovered" // restored after a crash, awaiting re-execution
	StatePaused    State = "paused"    // preempted at a barrier, re-queued awaiting re-dispatch
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCanceled  State = "canceled" // user cancel, shutdown, or deadline; see JobStatus.Reason
)

// Reason values distinguishing why a job ended the way it did.
const (
	ReasonUserCancel = "canceled by user"
	ReasonShutdown   = "shutdown"
	ReasonDeadline   = "deadline"
	ReasonDegraded   = "degraded" // done, but some tasks were quarantined
)

// Execution modes for JobSpec.Mode.
const (
	// ModeRound runs the paper's synchronous round loop: launch m,
	// join, observe r, resize.
	ModeRound = "round"
	// ModeAsync runs barrier-free: workers continuously pull tasks
	// through a resizable in-flight semaphore and the controller is fed
	// by a sliding commit window (pseudo-rounds). Only workloads with
	// workload.SupportsAsync may run in this mode.
	ModeAsync = "async"
	// ModeColored runs hybrid speculative→colored: optimistic rounds
	// learn the conflict graph, then a proper coloring of it partitions
	// the tasks into conflict-free classes that run lock-free; staleness
	// falls back to speculation. Only workloads with
	// workload.SupportsColored may run in this mode.
	ModeColored = "colored"
)

// States lists every job state (metrics export them all, including
// zero-valued ones, so dashboards see stable series).
func States() []State {
	return []State{StateQueued, StateRunning, StateRecovered, StatePaused, StateDone, StateFailed, StateCanceled}
}

// JobSpec is the wire-level job description accepted by POST /v1/jobs.
// Zero values take server defaults; Parallel = -1 selects the
// model-faithful one-goroutine-per-task executor mode.
type JobSpec struct {
	Workload    string     `json:"workload"`
	Controller  string     `json:"controller"`
	Rho         float64    `json:"rho,omitempty"`          // target conflict ratio (default 0.25)
	M0          int        `json:"m0,omitempty"`           // initial m (default 2)
	FixedM      int        `json:"m,omitempty"`            // processor count for "fixed"
	Size        int        `json:"size,omitempty"`         // workload size (default 1000)
	Seed        uint64     `json:"seed,omitempty"`         // PRNG seed (default 1)
	Parallel    int        `json:"parallel,omitempty"`     // worker-pool size; 0 = server default, -1 = model-faithful
	Degree      float64    `json:"degree,omitempty"`       // avg degree for "cc" (default 16)
	MaxRounds   int        `json:"max_rounds,omitempty"`   // round cap (default server cap)
	MaxDuration Duration   `json:"max_duration,omitempty"` // wall-clock deadline, checked between rounds (0 = none)
	TaskRetries int        `json:"task_retries,omitempty"` // retry budget for failed tasks; 0 = server default, -1 = none
	Fault       *FaultSpec `json:"fault,omitempty"`        // deterministic fault injection ("cc"/"spin" only)
	// Mode selects the execution mode: "round" (default), "async"
	// (barrier-free, workloads with async support only), or "colored"
	// (hybrid speculative→colored, workloads with colored support only).
	// Empty takes the server default.
	Mode string `json:"mode,omitempty"`
	// CommitWindow fixes the async sliding-window size; 0 (default)
	// tracks the controller's m adaptively. Async mode only.
	CommitWindow int `json:"commit_window,omitempty"`
	// Tenant attributes the job to an admission tenant (default
	// "default"): token-bucket quota, queue bound, and fair-share weight
	// are per tenant. See TenantConfig.
	Tenant string `json:"tenant,omitempty"`
	// Priority orders scheduling (1..9, higher dequeues first) and
	// drives preemption: a high-priority arrival on a saturated node
	// pauses the lowest-priority running job at its next barrier. 0
	// takes the tenant's default priority.
	Priority int `json:"priority,omitempty"`
}

// RoundPoint is one recorded round of a job's trajectory. For async
// jobs a point is one sliding-window sample (a pseudo-round): Round is
// the sample index and the per-outcome counts are window deltas.
type RoundPoint struct {
	Round     int     `json:"round"`
	M         int     `json:"m"`
	Launched  int     `json:"launched"`
	Committed int     `json:"committed"`
	Aborted   int     `json:"aborted"`
	Failed    int     `json:"failed,omitempty"`   // panicked / errored attempts
	Poisoned  int     `json:"poisoned,omitempty"` // retry budgets exhausted this round
	R         float64 `json:"r"` // conflict ratio observed this round
	// Attempt tags points recorded by a post-recovery re-execution
	// (omitted for attempt 1), so a restored trajectory distinguishes
	// the pre-crash prefix from the rerun.
	Attempt int `json:"attempt,omitempty"`
	// Colored marks a colored super-round of a mode "colored" job; M is
	// then the number of tasks the super-round launched, not a
	// controller allocation. Fallback marks the colored round that
	// tripped the staleness detector (the job reverts to speculative
	// rounds right after it).
	Colored  bool `json:"colored,omitempty"`
	Fallback bool `json:"fallback,omitempty"`
}

// JobStatus is the externally visible snapshot of a job, returned by
// GET /v1/jobs/{id} and embedded in submit responses.
type JobStatus struct {
	ID          string     `json:"id"`
	State       State      `json:"state"`
	Spec        JobSpec    `json:"spec"`
	SubmittedAt time.Time  `json:"submitted_at"`
	// Node is the cluster member the job is placed on. It is filled in
	// by the router front door; a node reporting its own jobs leaves it
	// empty.
	Node string `json:"node,omitempty"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	// Attempt counts executions of this job: 1 normally, bumped each
	// time crash recovery restarts it from spec or a preemption pauses
	// it at a barrier.
	Attempt int `json:"attempt,omitempty"`
	// Preemptions counts how many times a higher-priority arrival paused
	// this job at a barrier (each preemption also bumps Attempt).
	Preemptions int `json:"preemptions,omitempty"`

	Rounds            int     `json:"rounds"`
	CurrentM          int     `json:"current_m"`
	Pending           int     `json:"pending"`
	Launched          int64   `json:"launched"`
	Committed         int64   `json:"committed"`
	Aborted           int64   `json:"aborted"`
	Failed            int64   `json:"failed,omitempty"`   // panicked / errored task attempts
	Poisoned          int64   `json:"poisoned,omitempty"` // tasks quarantined after exhausting retries
	ConflictRatio     float64 `json:"conflict_ratio"`      // cumulative aborts/launches
	MeanConflictRatio float64 `json:"mean_conflict_ratio"` // r̄: unweighted per-round mean

	// Colored-mode phase counters (mode "colored" jobs only): colored
	// super-rounds run, speculative→colored transitions, and
	// colored→speculative staleness fallbacks.
	ColoredRounds int `json:"colored_rounds,omitempty"`
	Colorings     int `json:"colorings,omitempty"`
	Fallbacks     int `json:"fallbacks,omitempty"`

	ControllerCounters map[string]int `json:"controller_counters,omitempty"`
	Trajectory         []RoundPoint   `json:"trajectory,omitempty"`
	Result             string         `json:"result,omitempty"`
	Error              string         `json:"error,omitempty"`
	// Reason qualifies terminal states: user cancel vs shutdown vs
	// deadline for StateCanceled, "degraded" for a done job that
	// quarantined tasks.
	Reason string `json:"reason,omitempty"`
}

// Terminal reports whether the status is final.
func (s JobStatus) Terminal() bool {
	return s.State == StateDone || s.State == StateFailed || s.State == StateCanceled
}

// job is the internal mutable record behind a JobStatus.
type job struct {
	mu     sync.Mutex
	status JobStatus
	hist   ring
	rSum   float64 // sum of per-round conflict ratios (attempt-local)
	// specRounds counts the speculative rounds behind rSum: colored
	// super-rounds are conflict-free by construction and excluded from
	// r̄, mirroring the controller's view.
	specRounds int
	// prevColored tracks phase transitions between recorded rounds so
	// Colorings counts speculative→colored flips.
	prevColored bool

	// cancelCh is closed (once) to ask a running job to stop at its
	// next round barrier; cancelReason is set under mu beforehand.
	cancelCh     chan struct{}
	cancelOnce   sync.Once
	cancelReason string

	// preemptCh is closed to ask the running attempt to pause at its
	// next barrier and yield its worker to a higher-priority job. Unlike
	// cancelCh it is re-armed (resetPreempt) when a paused job is
	// re-claimed, so a job can be preempted more than once.
	preemptMu sync.Mutex
	preemptCh chan struct{}
	preempted bool
}

// requestCancel asks a running job to stop at the next round barrier.
func (j *job) requestCancel(reason string) {
	j.cancelOnce.Do(func() {
		j.mu.Lock()
		j.cancelReason = reason
		j.mu.Unlock()
		close(j.cancelCh)
	})
}

// requestPreempt asks the current attempt to pause at its next barrier.
// It reports whether this call initiated the preemption (false when one
// is already pending for this attempt).
func (j *job) requestPreempt() bool {
	j.preemptMu.Lock()
	defer j.preemptMu.Unlock()
	if j.preempted {
		return false
	}
	j.preempted = true
	close(j.preemptCh)
	return true
}

// resetPreempt re-arms the preemption channel for a fresh attempt.
// Called at claim time, before the attempt's barrier loop can observe
// the channel.
func (j *job) resetPreempt() {
	j.preemptMu.Lock()
	j.preemptCh = make(chan struct{})
	j.preempted = false
	j.preemptMu.Unlock()
}

// preemptChan returns the current attempt's preemption channel.
func (j *job) preemptChan() chan struct{} {
	j.preemptMu.Lock()
	defer j.preemptMu.Unlock()
	return j.preemptCh
}

// isPreempted reports whether a preemption is pending on the current
// attempt.
func (j *job) isPreempted() bool {
	j.preemptMu.Lock()
	defer j.preemptMu.Unlock()
	return j.preempted
}

// ring is a fixed-capacity round-history buffer keeping the last cap
// points.
type ring struct {
	buf   []RoundPoint
	start int
	n     int
}

func (r *ring) push(p RoundPoint) {
	if cap(r.buf) == 0 {
		return
	}
	if r.n < cap(r.buf) {
		r.buf = append(r.buf, p)
		r.n++
		return
	}
	r.buf[r.start] = p
	r.start = (r.start + 1) % r.n
}

func (r *ring) slice() []RoundPoint {
	out := make([]RoundPoint, 0, r.n)
	out = append(out, r.buf[r.start:r.n]...)
	out = append(out, r.buf[:r.start]...)
	return out
}

// tail returns the last n points (everything when n < 0, nothing when
// n == 0).
func (r *ring) tail(n int) []RoundPoint {
	out := r.slice()
	if n < 0 || n >= len(out) {
		return out
	}
	return out[len(out)-n:]
}

// record folds one executed round into the job under its lock.
func (j *job) record(p RoundPoint, pending int, counters map[string]int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := &j.status
	st.Rounds = p.Round + 1
	st.CurrentM = p.M
	st.Pending = pending
	st.Launched += int64(p.Launched)
	st.Committed += int64(p.Committed)
	st.Aborted += int64(p.Aborted)
	st.Failed += int64(p.Failed)
	st.Poisoned += int64(p.Poisoned)
	if st.Launched > 0 {
		st.ConflictRatio = float64(st.Aborted) / float64(st.Launched)
	}
	if p.Colored {
		st.ColoredRounds++
		if !j.prevColored {
			st.Colorings++
		}
		if p.Fallback {
			st.Fallbacks++
		}
	} else {
		j.rSum += p.R
		j.specRounds++
	}
	j.prevColored = p.Colored
	if j.specRounds > 0 {
		st.MeanConflictRatio = j.rSum / float64(j.specRounds)
	}
	st.ControllerCounters = counters
	j.hist.push(p)
}

// snapshot returns a deep-enough copy for JSON encoding, with the last
// tail trajectory points (all when tail < 0, none when tail == 0).
func (j *job) snapshot(tail int) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.status
	if st.ControllerCounters != nil {
		cc := make(map[string]int, len(st.ControllerCounters))
		for k, v := range st.ControllerCounters {
			cc[k] = v
		}
		st.ControllerCounters = cc
	}
	if tail != 0 {
		st.Trajectory = j.hist.tail(tail)
	}
	return st
}

func (j *job) setState(s State) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.status.State = s
	now := time.Now()
	switch s {
	case StateRunning:
		j.status.StartedAt = &now
	case StateDone, StateFailed, StateCanceled:
		j.status.FinishedAt = &now
	}
}

// Config tunes the service. Zero values take the documented defaults.
type Config struct {
	QueueCap           int // bounded queue capacity (default 64)
	Workers            int // concurrent job runners (default 2)
	HistoryCap         int // per-job trajectory ring size (default 256)
	DefaultParallel    int // executor pool size when spec.Parallel == 0 (default 2)
	MaxRounds          int // hard per-job round cap (default 1<<30)
	MaxSize            int // largest accepted spec.Size (default 1_000_000)
	DefaultTaskRetries int // retry budget when spec.TaskRetries == 0 (0 = executor default)

	// StateDir enables durability (Open only): the write-ahead journal
	// and snapshots live here. Empty = in-memory only.
	StateDir string
	// Fsync selects the journal durability policy (default journal.SyncAlways).
	Fsync journal.Policy
	// FsyncInterval is the flush period for journal.SyncInterval (default 5ms).
	FsyncInterval time.Duration
	// CheckpointEvery journals a running job's progress every K rounds
	// (default 32).
	CheckpointEvery int
	// CheckpointCommits journals a running async job's progress every K
	// commits (default 2048) — async jobs checkpoint on the absolute
	// commit counter rather than on round count.
	CheckpointCommits int
	// DefaultMode is the execution mode when spec.Mode is empty
	// (default ModeRound). A DefaultMode of ModeAsync or ModeColored
	// applies only to workloads that support it; the rest fall back to
	// rounds.
	DefaultMode string
	// CompactBytes triggers snapshot compaction once live journal
	// segments exceed this size (default 4 MiB).
	CompactBytes int64
	// FS is the filesystem the journal writes through (default: the real
	// one). Fault-injection tests substitute a faultinject.FaultFS to
	// drive the degraded-mode path.
	FS vfs.FS
	// DegradedRetryInterval is how often the recovery loop re-tries the
	// journal after a disk fault flipped the service into degraded mode
	// (default 1s).
	DegradedRetryInterval time.Duration

	// Tenants holds per-tenant admission and scheduling overrides;
	// TenantDefaults applies to every tenant the list does not name.
	// Empty config means one implicit weight-1 unlimited tenant — the
	// pre-tenant single-queue behavior. See LoadTenants and the specd
	// -tenants flag.
	Tenants        []TenantConfig
	TenantDefaults TenantConfig
	// BrownoutP99 enables brownout shedding: when the scheduler's
	// queue-wait p99 exceeds this threshold for BrownoutWindows
	// consecutive windows (of BrownoutWindow dequeues each), admission
	// sheds the lowest-priority classes first, one level per bad streak.
	// 0 disables brownout.
	BrownoutP99 time.Duration
	// BrownoutWindows is the consecutive bad-window streak that
	// escalates the shed level (default 3).
	BrownoutWindows int
	// BrownoutWindow is the dequeue-sample count per brownout evaluation
	// window (default 32).
	BrownoutWindow int

	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.HistoryCap <= 0 {
		c.HistoryCap = 256
	}
	if c.DefaultParallel <= 0 {
		c.DefaultParallel = 2
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 1 << 30
	}
	if c.MaxSize <= 0 {
		c.MaxSize = 1_000_000
	}
	if c.Fsync == "" {
		c.Fsync = journal.SyncAlways
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 32
	}
	if c.CheckpointCommits <= 0 {
		c.CheckpointCommits = 2048
	}
	if c.DefaultMode == "" {
		c.DefaultMode = ModeRound
	}
	if c.CompactBytes <= 0 {
		c.CompactBytes = 4 << 20
	}
	if c.DegradedRetryInterval <= 0 {
		c.DegradedRetryInterval = time.Second
	}
	if c.BrownoutWindows <= 0 {
		c.BrownoutWindows = 3
	}
	if c.BrownoutWindow <= 0 {
		c.BrownoutWindow = 32
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Service is the long-running speculation service.
type Service struct {
	cfg   Config
	start time.Time

	mu    sync.Mutex
	jobs  map[string]*job
	order []string // submission order, for listing

	sched    *scheduler
	draining atomic.Bool
	stop     chan struct{} // closed by Shutdown; wakes idle workers
	wg       sync.WaitGroup

	nextID      atomic.Int64
	submitted   atomic.Int64
	rejected    atomic.Int64
	running     atomic.Int64 // jobs currently executing rounds
	preemptions atomic.Int64 // barrier pauses forced by higher-priority arrivals

	// runningSet tracks the jobs currently holding workers, for
	// preemption victim selection (lowest effective priority first).
	runMu      sync.Mutex
	runningSet map[*job]struct{}

	// placedMu serializes explicit-id submissions (router placements and
	// handoffs) so a duplicate delivery observes the first copy instead
	// of racing it into the queue.
	placedMu  sync.Mutex
	handedOff atomic.Int64 // jobs accepted via SubmitHandoff

	// Cluster identity reported on /healthz; see SetClusterIdentity.
	idMu         sync.Mutex
	nodeID       string
	role         string
	leaseExpires func() time.Time

	jnl        *journal.Journal // nil when StateDir is unset
	recovered  atomic.Int64     // jobs restarted from spec after a crash
	compacting atomic.Bool
	closeOnce  sync.Once

	// Degraded mode: a journal disk fault flips the service read-only.
	// In-flight jobs finish (their records are lost until the post-heal
	// compaction re-persists them), reads keep serving, new submits are
	// refused with ErrDegraded, and the recovery goroutine periodically
	// re-opens the journal until the disk heals.
	degMu          sync.Mutex
	degraded       bool
	degradedReason string
	degradedSince  time.Time
	degradedAccum  time.Duration // time spent degraded across past episodes
	recovering     bool          // recovery goroutine is running
}

// New starts an in-memory service with cfg.Workers runner goroutines.
// Config.StateDir is ignored; use Open for durability.
func New(cfg Config) *Service {
	cfg.StateDir = ""
	s, _ := Open(cfg)
	return s
}

// Open starts a service. With cfg.StateDir set it first replays the
// state directory — rebuilding completed jobs with their trajectories,
// re-enqueueing queued jobs, and restarting crash-interrupted jobs from
// spec in StateRecovered — and then journals every subsequent lifecycle
// transition. A torn final journal record is truncated with a warning;
// corruption anywhere else fails startup.
func Open(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:        cfg,
		start:      time.Now(),
		jobs:       make(map[string]*job),
		stop:       make(chan struct{}),
		runningSet: make(map[*job]struct{}),
	}
	s.sched = newScheduler(cfg)

	var pending []*job
	if cfg.StateDir != "" {
		opts := journal.Options{
			Fsync:    cfg.Fsync,
			Interval: cfg.FsyncInterval,
			Logf:     cfg.Logf,
			FS:       cfg.FS,
		}
		rep, err := journal.Replay(cfg.StateDir, opts)
		if err != nil {
			return nil, fmt.Errorf("service: replaying %s: %w", cfg.StateDir, err)
		}
		rst, err := s.restoreState(rep)
		if err != nil {
			return nil, fmt.Errorf("service: restoring %s: %w", cfg.StateDir, err)
		}
		jnl, err := journal.Open(cfg.StateDir, opts)
		if err != nil {
			return nil, fmt.Errorf("service: opening journal in %s: %w", cfg.StateDir, err)
		}
		s.jnl = jnl
		s.jobs = rst.jobs
		s.order = rst.order
		s.nextID.Store(rst.maxID)
		s.submitted.Store(int64(len(rst.order)))
		s.recovered.Store(rst.recovered)
		pending = rst.pending
		if len(rst.order) > 0 || rep.Torn {
			cfg.Logf("specd: recovered state from %s: %d jobs (%d completed, %d re-queued, %d restarted after crash)",
				cfg.StateDir, len(rst.order), rst.completed,
				len(rst.pending)-int(rst.recovered), rst.recovered)
		}
	}

	// Grow the queue bound so every recovered pending job re-enqueues
	// without eating into the QueueCap slots fresh admissions see —
	// recovered work was already admitted once and bypasses admission
	// control on requeue.
	s.sched.queueCap += len(pending)
	for _, j := range pending {
		s.sched.requeue(j)
	}
	if s.jnl != nil {
		// Fold the replayed segments into a fresh snapshot so the next
		// startup replays one snapshot instead of the full history.
		s.compact()
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// normalize validates spec against the service limits and fills
// defaults. It returns the normalized spec or a *SpecError.
func (s *Service) normalize(spec JobSpec) (JobSpec, error) {
	if !workload.Has(spec.Workload) {
		return spec, specErrf("unknown workload %q (have %v)", spec.Workload, workload.Names())
	}
	if !workload.HasController(spec.Controller) {
		return spec, specErrf("unknown controller %q (have %v)", spec.Controller, workload.ControllerNames())
	}
	if spec.Controller == "fixed" && spec.FixedM < 1 {
		return spec, specErrf("controller \"fixed\" requires m >= 1")
	}
	if spec.Rho == 0 {
		spec.Rho = 0.25
	}
	if spec.Rho < 0 || spec.Rho >= 1 {
		return spec, specErrf("rho %v out of (0,1)", spec.Rho)
	}
	if spec.Size == 0 {
		spec.Size = 1000
	}
	if spec.Size < 1 || spec.Size > s.cfg.MaxSize {
		return spec, specErrf("size %d out of [1,%d]", spec.Size, s.cfg.MaxSize)
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	switch {
	case spec.Parallel == 0:
		spec.Parallel = s.cfg.DefaultParallel
	case spec.Parallel == -1:
		spec.Parallel = 0 // model-faithful: one goroutine per task
	case spec.Parallel < -1 || spec.Parallel > 1024:
		return spec, specErrf("parallel %d out of [-1,1024]", spec.Parallel)
	}
	if spec.Degree < 0 {
		return spec, specErrf("degree %v negative", spec.Degree)
	}
	if spec.Workload == "spin" && spec.MaxDuration <= 0 && spec.MaxRounds <= 0 {
		return spec, specErrf("workload \"spin\" never drains: set max_duration or max_rounds")
	}
	if spec.MaxRounds <= 0 || spec.MaxRounds > s.cfg.MaxRounds {
		spec.MaxRounds = s.cfg.MaxRounds
	}
	if spec.MaxDuration < 0 {
		return spec, specErrf("max_duration %v negative", time.Duration(spec.MaxDuration))
	}
	if spec.TaskRetries == 0 {
		spec.TaskRetries = s.cfg.DefaultTaskRetries
	}
	if spec.TaskRetries < -1 || spec.TaskRetries > 1000 {
		return spec, specErrf("task_retries %d out of [-1,1000]", spec.TaskRetries)
	}
	if spec.Fault != nil {
		if !workload.SupportsFault(spec.Workload) {
			return spec, specErrf("workload %q does not support fault injection (only %v)",
				spec.Workload, workload.CapableNames(workload.CapFault))
		}
		if err := spec.Fault.config(spec.Seed).Validate(); err != nil {
			return spec, specErrf("bad fault spec: %v", err)
		}
	}
	switch spec.Mode {
	case "":
		// Server default, but barrier-free / colored execution only
		// where the workload supports it — the rest keep the round loop.
		switch {
		case s.cfg.DefaultMode == ModeAsync && workload.SupportsAsync(spec.Workload):
			spec.Mode = ModeAsync
		case s.cfg.DefaultMode == ModeColored && workload.SupportsColored(spec.Workload):
			spec.Mode = ModeColored
		default:
			spec.Mode = ModeRound
		}
	case ModeRound:
	case ModeAsync:
		if !workload.SupportsAsync(spec.Workload) {
			return spec, specErrf("workload %q does not support async execution (only %v)",
				spec.Workload, workload.CapableNames(workload.CapAsync))
		}
	case ModeColored:
		if !workload.SupportsColored(spec.Workload) {
			return spec, specErrf("workload %q does not support colored execution (only %v)",
				spec.Workload, workload.CapableNames(workload.CapColored))
		}
	default:
		return spec, specErrf("unknown mode %q (have %q, %q, %q)", spec.Mode, ModeRound, ModeAsync, ModeColored)
	}
	if spec.CommitWindow < 0 || spec.CommitWindow > 1<<16 {
		return spec, specErrf("commit_window %d out of [0,%d]", spec.CommitWindow, 1<<16)
	}
	if spec.CommitWindow > 0 && spec.Mode != ModeAsync {
		return spec, specErrf("commit_window requires mode %q", ModeAsync)
	}
	if spec.Tenant == "" {
		spec.Tenant = DefaultTenant
	} else if err := validTenantName(spec.Tenant); err != nil {
		return spec, specErrf("bad tenant: %v", err)
	}
	if spec.Priority < 0 || spec.Priority > MaxPriority {
		return spec, specErrf("priority %d out of [0,%d]", spec.Priority, MaxPriority)
	}
	if spec.Priority == 0 {
		spec.Priority = s.sched.defaultPriorityFor(spec.Tenant)
	}
	return spec, nil
}

// Submit validates and enqueues a job. It returns the queued job's
// status, or ErrQueueFull / ErrDraining / a *SpecError.
func (s *Service) Submit(spec JobSpec) (JobStatus, error) {
	return s.submit("", spec, 1, nil)
}

// SubmitPlaced enqueues a job under a caller-assigned id — the cluster
// router submits placed jobs this way so a job keeps one id across the
// whole cluster. Resubmitting an existing id returns that job's current
// status alongside ErrDupJob, making router retries idempotent.
func (s *Service) SubmitPlaced(id string, spec JobSpec) (JobStatus, error) {
	if err := validJobID(id); err != nil {
		return JobStatus{}, err
	}
	return s.submit(id, spec, 1, nil)
}

// SubmitHandoff accepts a job handed off from a dead cluster member:
// it re-runs from spec under its original cluster-wide id through the
// StateRecovered path, with the attempt counter the router learned
// before the node died and the pre-crash trajectory prefix seeded into
// the history ring. An Attempt of 1 with no prefix re-queues the job as
// a normal first execution (it never started on the dead node).
func (s *Service) SubmitHandoff(req HandoffRequest) (JobStatus, error) {
	if err := validJobID(req.ID); err != nil {
		return JobStatus{}, err
	}
	if req.Attempt < 1 {
		req.Attempt = 1
	}
	if req.Attempt > 1<<20 {
		return JobStatus{}, specErrf("handoff attempt %d out of range", req.Attempt)
	}
	return s.submit(req.ID, req.Spec, req.Attempt, req.Prefix)
}

// validJobID bounds explicit job ids to something path- and
// journal-safe.
func validJobID(id string) error {
	if id == "" || len(id) > 64 {
		return specErrf("job id must be 1..64 characters")
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return specErrf("job id %q contains %q (want [A-Za-z0-9._-])", id, c)
		}
	}
	return nil
}

// submit is the shared admission path. id == "" allocates a local
// "j<N>" id; attempt > 1 or a non-empty prefix admits the job in
// StateRecovered (the handoff case).
func (s *Service) submit(id string, spec JobSpec, attempt int, prefix []RoundPoint) (JobStatus, error) {
	if s.draining.Load() {
		return JobStatus{}, ErrDraining
	}
	if deg, _ := s.DegradedInfo(); deg {
		return JobStatus{}, ErrDegraded
	}
	spec, err := s.normalize(spec)
	if err != nil {
		return JobStatus{}, err
	}
	if id == "" {
		id = fmt.Sprintf("j%d", s.nextID.Add(1))
	} else {
		s.placedMu.Lock()
		defer s.placedMu.Unlock()
		s.mu.Lock()
		dup, ok := s.jobs[id]
		s.mu.Unlock()
		if ok {
			return dup.snapshot(0), ErrDupJob
		}
	}
	j := &job{
		status: JobStatus{
			ID:          id,
			State:       StateQueued,
			Spec:        spec,
			SubmittedAt: time.Now(),
			Attempt:     attempt,
		},
		hist:     ring{buf: make([]RoundPoint, 0, s.cfg.HistoryCap)},
		cancelCh: make(chan struct{}),
	}
	recovered := attempt > 1 || len(prefix) > 0
	if recovered {
		j.status.State = StateRecovered
		for _, p := range prefix {
			j.hist.push(p)
		}
	}
	// Admission first: brownout shed, per-tenant depth, global depth,
	// token bucket, and deadline-aware shedding must all reject before
	// the job becomes externally visible. Handoffs and recoveries were
	// admitted once already and only re-enter the queue.
	admit := s.sched.admit
	if recovered {
		admit = s.sched.admitHandoff
	}
	if err := admit(j); err != nil {
		s.rejected.Add(1)
		return JobStatus{}, err
	}
	s.mu.Lock()
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.submitted.Add(1)
	if err := s.journalSubmitted(j); err != nil && !errors.Is(err, journal.ErrClosed) {
		// The disk went bad under this very admission: refuse it rather
		// than acknowledge a job the journal cannot make durable. The
		// job may already be visible to a worker, so cancel in place
		// when it has not started (runJob skips canceled queued jobs)
		// and withdraw it from the table; in the rare race where a
		// worker already claimed it, ask it to stop at the next barrier.
		j.mu.Lock()
		undone := j.status.State == StateQueued || j.status.State == StateRecovered
		if undone {
			j.status.State = StateCanceled
			j.status.Reason = "journal degraded"
			j.status.Error = "admission refused: journal degraded"
			now := time.Now()
			j.status.FinishedAt = &now
		}
		j.mu.Unlock()
		if undone {
			s.mu.Lock()
			delete(s.jobs, id)
			for i := len(s.order) - 1; i >= 0; i-- {
				if s.order[i] == id {
					s.order = append(s.order[:i], s.order[i+1:]...)
					break
				}
			}
			s.mu.Unlock()
		} else {
			j.requestCancel("journal degraded")
		}
		s.submitted.Add(-1)
		return JobStatus{}, ErrDegraded
	}
	if recovered {
		s.handedOff.Add(1)
		s.journalHandoff(j, prefix)
		s.cfg.Logf("specd: job %s accepted by handoff (attempt %d, %d prefix points)",
			id, attempt, len(prefix))
	}
	s.maybePreempt(id, spec.Priority)
	return j.snapshot(0), nil
}

// maybePreempt checks whether a fresh arrival at the given effective
// priority should displace running work: with every worker busy and
// some running job at strictly lower priority, the lowest-priority one
// is asked to pause at its next barrier, freeing its worker within one
// round (async: one window flush).
func (s *Service) maybePreempt(id string, newPrio int) {
	if newPrio <= MinPriority || s.running.Load() < int64(s.cfg.Workers) {
		return
	}
	s.runMu.Lock()
	var victim *job
	best := newPrio
	for r := range s.runningSet {
		if r.isPreempted() {
			continue // its worker is already being freed
		}
		r.mu.Lock()
		p := r.status.Spec.Priority
		r.mu.Unlock()
		if p < MinPriority || p > MaxPriority {
			p = defaultPriority
		}
		if p < best {
			best, victim = p, r
		}
	}
	s.runMu.Unlock()
	if victim != nil && victim.requestPreempt() {
		s.cfg.Logf("specd: job %s (priority %d) preempting job %s (priority %d) at its next barrier",
			id, newPrio, victim.status.ID, best)
	}
}

// Job returns the status of the given job (with its full trajectory).
func (s *Service) Job(id string) (JobStatus, bool) {
	return s.JobTail(id, -1)
}

// JobTail returns the status of the given job with at most tail
// trajectory points (the newest ones). tail < 0 means the full ring;
// tail == 0 omits the trajectory.
func (s *Service) JobTail(id string, tail int) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return j.snapshot(tail), true
}

// Jobs lists every known job in submission order, without trajectories.
func (s *Service) Jobs() []JobStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*job, len(ids))
	for i, id := range ids {
		jobs[i] = s.jobs[id]
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot(0)
	}
	return out
}

// Cancel requests cancellation of the given job. A queued job is
// canceled immediately; a running job is asked to stop at its next
// round barrier (Cancel returns without waiting for it). Canceling a
// terminal job returns its status and ErrJobTerminal; an unknown id
// returns ErrNoJob.
func (s *Service) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, ErrNoJob
	}
	j.mu.Lock()
	switch j.status.State {
	case StateQueued, StateRecovered, StatePaused:
		j.status.State = StateCanceled
		j.status.Reason = ReasonUserCancel
		j.status.Error = "canceled before start"
		now := time.Now()
		j.status.FinishedAt = &now
		j.mu.Unlock()
		s.journalFinish(j, nil)
		s.cfg.Logf("specd: job %s canceled while queued", id)
	case StateRunning:
		j.mu.Unlock()
		j.requestCancel(ReasonUserCancel)
		s.cfg.Logf("specd: job %s cancel requested (stopping at next round barrier)", id)
	default:
		j.mu.Unlock()
		return j.snapshot(0), ErrJobTerminal
	}
	return j.snapshot(0), nil
}

// QueueDepth returns the number of jobs waiting for a worker.
func (s *Service) QueueDepth() int { return s.sched.depth() }

// Preemptions returns the number of barrier pauses forced by
// higher-priority arrivals.
func (s *Service) Preemptions() int64 { return s.preemptions.Load() }

// TenantStats snapshots the scheduler's per-tenant counters.
func (s *Service) TenantStats() []TenantStats { return s.sched.tenantStats() }

// BrownoutInfo reports the scheduler's shed level (0 = healthy), the
// last evaluated queue-wait p99 in seconds, the total sheds, and the
// configured tenants whose default priority class is currently shed.
func (s *Service) BrownoutInfo() (level int, lastP99 float64, shed int64, tenants []string) {
	level, lastP99, shed = s.sched.brownout()
	tenants = s.sched.shedTenants()
	return
}

// Running returns the number of jobs currently executing rounds.
func (s *Service) Running() int64 { return s.running.Load() }

// PoisonedTotal sums quarantined tasks across all jobs.
func (s *Service) PoisonedTotal() int64 {
	var n int64
	for _, j := range s.Jobs() {
		n += j.Poisoned
	}
	return n
}

// Draining reports whether Shutdown has begun.
func (s *Service) Draining() bool { return s.draining.Load() }

// Durable reports whether the service journals to a state directory.
func (s *Service) Durable() bool { return s.jnl != nil }

// Recovered returns the number of jobs restarted from spec after a
// crash (counted at startup replay).
func (s *Service) Recovered() int64 { return s.recovered.Load() }

// HandedOff returns the number of jobs this node accepted via cluster
// handoff (SubmitHandoff).
func (s *Service) HandedOff() int64 { return s.handedOff.Load() }

// DegradedInfo reports whether the service is in read-only degraded
// mode (journal disk fault) and the fault that caused it.
func (s *Service) DegradedInfo() (degraded bool, reason string) {
	s.degMu.Lock()
	defer s.degMu.Unlock()
	return s.degraded, s.degradedReason
}

// DegradedSeconds returns the total time spent in degraded mode,
// including the current episode.
func (s *Service) DegradedSeconds() float64 {
	s.degMu.Lock()
	defer s.degMu.Unlock()
	d := s.degradedAccum
	if s.degraded {
		d += time.Since(s.degradedSince)
	}
	return d.Seconds()
}

// enterDegraded flips the service into read-only degraded mode and
// starts the recovery goroutine. In-flight jobs keep running — a dead
// disk degrades durability, it does not take running work down — but
// nothing new is admitted, because an admission the journal cannot
// record would be an acknowledgment the service might not honor after
// a restart.
func (s *Service) enterDegraded(cause error) {
	s.degMu.Lock()
	if s.degraded {
		s.degMu.Unlock()
		return
	}
	s.degraded = true
	s.degradedReason = cause.Error()
	s.degradedSince = time.Now()
	spawn := !s.recovering
	s.recovering = true
	s.degMu.Unlock()
	s.cfg.Logf("specd: journal fault, entering degraded mode (reads serve, submits 503): %v", cause)
	if spawn {
		go s.degradedRecoveryLoop()
	}
}

// degradedRecoveryLoop retries the journal until the disk heals. A
// successful Reopen plus a full compaction — which re-persists every
// job whose records the broken disk may have dropped, closing the
// acknowledged-then-lost window — ends the episode.
func (s *Service) degradedRecoveryLoop() {
	tick := time.NewTicker(s.cfg.DegradedRetryInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			if err := s.jnl.Reopen(); err != nil {
				continue
			}
			if err := s.compact(); err != nil {
				continue
			}
			s.degMu.Lock()
			s.degradedAccum += time.Since(s.degradedSince)
			s.degraded = false
			s.degradedReason = ""
			s.recovering = false
			s.degMu.Unlock()
			s.cfg.Logf("specd: journal healed, leaving degraded mode")
			return
		}
	}
}

// SetClusterIdentity labels /healthz with this node's cluster identity:
// its node id, its role ("node", "router", or the default
// "standalone"), and an optional callback reporting the node's current
// membership-lease deadline.
func (s *Service) SetClusterIdentity(nodeID, role string, leaseExpires func() time.Time) {
	s.idMu.Lock()
	defer s.idMu.Unlock()
	s.nodeID, s.role, s.leaseExpires = nodeID, role, leaseExpires
}

func (s *Service) clusterIdentity() (nodeID, role string, leaseExpires *time.Time) {
	s.idMu.Lock()
	id, r, lf := s.nodeID, s.role, s.leaseExpires
	s.idMu.Unlock()
	if r == "" {
		r = "standalone"
	}
	if lf != nil {
		if t := lf(); !t.IsZero() {
			leaseExpires = &t
		}
	}
	return id, r, leaseExpires
}

// JournalStats returns the journal's live counters (zero when the
// service is in-memory only).
func (s *Service) JournalStats() journal.Stats {
	if s.jnl == nil {
		return journal.Stats{}
	}
	return s.jnl.CurrentStats()
}

// Uptime returns time since New.
func (s *Service) Uptime() time.Duration { return time.Since(s.start) }

// Shutdown stops admission, lets running jobs finish their in-flight
// round (marking them canceled), leaves queued jobs queued, and waits
// for the workers to exit or ctx to expire. On a clean drain the
// journal is compacted into a snapshot and closed, so the next startup
// replays one snapshot file.
func (s *Service) Shutdown(ctx context.Context) error {
	if s.draining.CompareAndSwap(false, true) {
		close(s.stop)
		s.sched.close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		if s.jnl != nil {
			s.compact()
			s.closeOnce.Do(func() {
				if err := s.jnl.Close(); err != nil {
					s.cfg.Logf("specd: journal: close: %v", err)
				}
			})
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Service) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.sched.next()
		if !ok {
			return
		}
		if s.draining.Load() {
			// Drained mid-pop: leave the job in state queued — it is
			// still visible and reported as never started.
			return
		}
		s.runJob(j)
	}
}

// runJob executes one job to completion or interruption. Shutdown,
// cancellation, and deadline checks sit between rounds only, so an
// in-flight round always finishes before the worker moves on — the
// invariant the SIGTERM e2e asserts and the round-barrier semantics
// DELETE /v1/jobs/{id} documents.
func (s *Service) runJob(j *job) {
	spec := j.snapshot(0).Spec
	id := j.status.ID // immutable after creation

	// Claim: a job canceled while queued may still be sitting in the
	// scheduler; skip it instead of resurrecting it. A recovered or
	// paused job restarts from spec: its attempt-local counters reset
	// here (the attempt counter was bumped at recovery / preemption),
	// while the trajectory ring keeps the checkpointed prefix.
	j.mu.Lock()
	switch j.status.State {
	case StateQueued:
	case StateRecovered, StatePaused:
		resetAttemptCounters(j)
	default:
		j.mu.Unlock()
		return
	}
	j.status.State = StateRunning
	now := time.Now()
	j.status.StartedAt = &now
	attempt := j.status.Attempt
	j.mu.Unlock()
	// Arm this attempt's preemption channel before the barrier loop (or
	// the preemption victim scan) can observe it.
	j.resetPreempt()
	pch := j.preemptChan()

	s.running.Add(1)
	s.runMu.Lock()
	s.runningSet[j] = struct{}{}
	s.runMu.Unlock()
	// detached flips when pauseJob hands the job back to the scheduler:
	// the pause path removes j from runningSet itself, before requeue,
	// so another worker re-claiming j cannot have its fresh runningSet
	// entry deleted by this worker's cleanup (which would hide the new
	// attempt from maybePreempt's victim scan for its whole run).
	detached := false
	defer func() {
		if !detached {
			s.runMu.Lock()
			delete(s.runningSet, j)
			s.runMu.Unlock()
			s.running.Add(-1)
		}
		fin := j.snapshot(0)
		s.sched.observeService(spec.Tenant, time.Since(now), fin.State == StateDone)
	}()
	s.journalStarted(id, attempt, now)

	// delta accumulates rounds not yet covered by a checkpoint record;
	// the terminal record flushes the remainder.
	var delta []RoundPoint
	defer func() {
		if j.snapshot(0).Terminal() {
			s.journalFinish(j, delta)
		}
	}()

	s.cfg.Logf("specd: job %s started: workload=%s controller=%s size=%d seed=%d attempt=%d",
		id, spec.Workload, spec.Controller, spec.Size, spec.Seed, attempt)

	ctrl, err := workload.NewController(spec.Controller, workload.ControllerParams{
		Rho: spec.Rho, M0: spec.M0, FixedM: spec.FixedM,
	})
	if err != nil {
		s.failJob(j, id, err)
		return
	}
	run, err := workload.New(spec.Workload, workload.Params{
		Size: spec.Size, Seed: spec.Seed, Parallel: spec.Parallel, Degree: spec.Degree,
		TaskRetries: spec.TaskRetries, Fault: spec.Fault.config(spec.Seed),
	})
	if err != nil {
		s.failJob(j, id, err)
		return
	}
	defer run.Stepper.Close()

	// The round context carries the wall-clock deadline and is canceled
	// by shutdown or a user cancel, so Steppers that observe ctx stop
	// promptly; the watcher goroutine exits with the job.
	var deadline time.Time
	ctx := context.Background()
	var cancelCtx context.CancelFunc
	if spec.MaxDuration > 0 {
		deadline = now.Add(time.Duration(spec.MaxDuration))
		ctx, cancelCtx = context.WithDeadline(ctx, deadline)
	} else {
		ctx, cancelCtx = context.WithCancel(ctx)
	}
	defer cancelCtx()
	jobDone := make(chan struct{})
	defer close(jobDone)
	go func() {
		select {
		case <-s.stop:
		case <-j.cancelCh:
		case <-pch:
		case <-jobDone:
		case <-ctx.Done():
		}
		cancelCtx()
	}()

	cancelJob := func(reason, errMsg string) {
		j.mu.Lock()
		j.status.State = StateCanceled
		j.status.Reason = reason
		j.status.Error = errMsg
		fin := time.Now()
		j.status.FinishedAt = &fin
		j.mu.Unlock()
	}

	// pauseJob is the preemption barrier: checkpoint progress to the
	// journal, bump the attempt, and hand the job back to the scheduler
	// in StatePaused so the freed worker picks up the higher-priority
	// arrival. Journal-before-requeue makes a crash mid-preemption safe:
	// before the pause record lands, replay sees a running job and takes
	// the normal crash-recovery path; after, it re-queues the paused job.
	pauseJob := func(progress int) {
		j.mu.Lock()
		j.status.State = StatePaused
		j.status.Attempt++
		j.status.Preemptions++
		j.status.StartedAt = nil
		j.mu.Unlock()
		s.journalPause(j, delta)
		delta = delta[:0]
		s.preemptions.Add(1)
		// Leave the running set BEFORE requeue: once the job is back in
		// the scheduler another worker may claim it immediately, and its
		// new runningSet entry must not be clobbered by this worker's
		// deferred cleanup (nor s.running transiently overcounted).
		s.runMu.Lock()
		delete(s.runningSet, j)
		s.runMu.Unlock()
		s.running.Add(-1)
		detached = true
		s.sched.requeue(j)
		s.cfg.Logf("specd: job %s paused for a higher-priority job after %d rounds (attempt %d done, re-queued)",
			id, progress, attempt)
	}

	if spec.Mode == ModeAsync {
		s.runAsyncJob(j, id, attempt, spec, run, ctrl, ctx, cancelJob, pauseJob, pch, &delta)
		return
	}
	if spec.Mode == ModeColored {
		s.runColoredJob(j, id, attempt, spec, run, ctrl, ctx, cancelJob, pauseJob, pch, &delta)
		return
	}

	telemetry, _ := ctrl.(control.Telemetry)
	round := 0
	for ; round < spec.MaxRounds && run.Stepper.Pending() > 0; round++ {
		select {
		case <-pch:
			pauseJob(round)
			return
		case <-j.cancelCh:
			j.mu.Lock()
			reason := j.cancelReason
			j.mu.Unlock()
			cancelJob(reason, fmt.Sprintf("canceled after round %d", round))
			s.cfg.Logf("specd: job %s canceled after round %d (in-flight round completed)", id, round)
			return
		case <-s.stop:
			cancelJob(ReasonShutdown, fmt.Sprintf("interrupted by shutdown after round %d", round))
			s.cfg.Logf("specd: job %s interrupted after round %d (in-flight round completed)", id, round)
			return
		default:
		}
		if spec.MaxDuration > 0 && !time.Now().Before(deadline) {
			cancelJob(ReasonDeadline, fmt.Sprintf("deadline %v exceeded after round %d",
				time.Duration(spec.MaxDuration), round))
			s.cfg.Logf("specd: job %s hit its %v deadline after round %d",
				id, time.Duration(spec.MaxDuration), round)
			return
		}
		m := ctrl.M()
		rr := run.Stepper.Round(ctx, m)
		r := rr.ConflictRatio()
		ctrl.Observe(r)
		var counters map[string]int
		if telemetry != nil {
			counters = telemetry.Counters()
		}
		p := RoundPoint{
			Round: round, M: m,
			Launched: rr.Launched, Committed: rr.Committed, Aborted: rr.Aborted,
			Failed: rr.Failed, Poisoned: rr.Poisoned, R: r,
		}
		if attempt > 1 {
			p.Attempt = attempt
		}
		j.record(p, run.Stepper.Pending(), counters)
		if s.jnl != nil {
			delta = append(delta, p)
			if len(delta) >= s.cfg.CheckpointEvery {
				s.journalCheckpoint(j, delta)
				delta = delta[:0]
			}
		}
	}

	s.finishDrained(j, id, spec, run, round)
}

// runAsyncJob drains one job barrier-free: the stepper's RunAsync drive
// owns the in-flight semaphore and the sliding-window estimator, and
// every flushed window lands here as one trajectory pseudo-round.
// Durability checkpoints trigger on the absolute commit counter
// (Config.CheckpointCommits) instead of on round count.
func (s *Service) runAsyncJob(j *job, id string, attempt int, spec JobSpec, run *workload.Run,
	ctrl control.Controller, ctx context.Context, cancelJob func(reason, errMsg string),
	pauseJob func(progress int), pch chan struct{}, delta *[]RoundPoint) {
	as, ok := run.Stepper.(workload.AsyncStepper)
	if !ok {
		s.failJob(j, id, fmt.Errorf("workload %q stepper cannot run barrier-free", spec.Workload))
		return
	}
	var lastCkpt int64 // absolute commit counter at the last checkpoint
	res := as.RunAsync(ctx, ctrl, speculation.AsyncOptions{
		Window:     spec.CommitWindow,
		MaxSamples: spec.MaxRounds,
		OnSample: func(sm speculation.AsyncSample) {
			p := RoundPoint{
				Round: sm.Sample, M: sm.M,
				Launched: sm.Launched, Committed: sm.Committed, Aborted: sm.Aborted,
				Failed: sm.Failed, Poisoned: sm.Poisoned, R: sm.R,
			}
			if attempt > 1 {
				p.Attempt = attempt
			}
			j.record(p, run.Stepper.Pending(), sm.Counters)
			if s.jnl != nil {
				*delta = append(*delta, p)
				if sm.TotalCommitted-lastCkpt >= int64(s.cfg.CheckpointCommits) {
					s.journalCheckpoint(j, *delta)
					*delta = (*delta)[:0]
					lastCkpt = sm.TotalCommitted
				}
			}
		},
	})
	if res.Canceled {
		// Same reason precedence as the round loop: user cancel, then
		// preemption (the window flush is the async barrier), then
		// shutdown, then the deadline carried by ctx.
		select {
		case <-j.cancelCh:
			j.mu.Lock()
			reason := j.cancelReason
			j.mu.Unlock()
			cancelJob(reason, fmt.Sprintf("canceled after %d commits", res.Committed))
			s.cfg.Logf("specd: job %s canceled after %d commits (in-flight tasks settled)", id, res.Committed)
		default:
			select {
			case <-pch:
				pauseJob(res.Samples)
				return
			case <-s.stop:
				cancelJob(ReasonShutdown, fmt.Sprintf("interrupted by shutdown after %d commits", res.Committed))
				s.cfg.Logf("specd: job %s interrupted after %d commits (in-flight tasks settled)", id, res.Committed)
			default:
				cancelJob(ReasonDeadline, fmt.Sprintf("deadline %v exceeded after %d commits",
					time.Duration(spec.MaxDuration), res.Committed))
				s.cfg.Logf("specd: job %s hit its %v deadline after %d commits",
					id, time.Duration(spec.MaxDuration), res.Committed)
			}
		}
		return
	}
	s.finishDrained(j, id, spec, run, res.Samples)
}

// runColoredJob drains one job in hybrid speculative→colored mode: the
// stepper's RunColored drive owns the learn/color/execute cycle, and
// every round (speculative or colored) lands here as one trajectory
// point. Checkpointing and cancellation handling mirror the round
// loop's; colored super-rounds are flagged on their RoundPoints, and
// the per-job phase counters (colored rounds, colorings, fallbacks)
// accumulate in the job status.
func (s *Service) runColoredJob(j *job, id string, attempt int, spec JobSpec, run *workload.Run,
	ctrl control.Controller, ctx context.Context, cancelJob func(reason, errMsg string),
	pauseJob func(progress int), pch chan struct{}, delta *[]RoundPoint) {
	cst, ok := run.Stepper.(workload.ColoredStepper)
	if !ok {
		s.failJob(j, id, fmt.Errorf("workload %q stepper cannot run colored", spec.Workload))
		return
	}
	telemetry, _ := ctrl.(control.Telemetry)
	res := cst.RunColored(ctx, ctrl, speculation.ColoredOptions{
		MaxRounds: spec.MaxRounds,
		OnRound: func(cr speculation.ColoredRound) {
			var counters map[string]int
			if telemetry != nil {
				counters = telemetry.Counters()
			}
			p := RoundPoint{
				Round: cr.Round, M: cr.M,
				Launched: cr.Launched, Committed: cr.Committed, Aborted: cr.Aborted,
				Failed: cr.Failed, Poisoned: cr.Poisoned, R: cr.R,
				Colored: cr.Colored, Fallback: cr.Fallback,
			}
			if attempt > 1 {
				p.Attempt = attempt
			}
			j.record(p, run.Stepper.Pending(), counters)
			if s.jnl != nil {
				*delta = append(*delta, p)
				if len(*delta) >= s.cfg.CheckpointEvery {
					s.journalCheckpoint(j, *delta)
					*delta = (*delta)[:0]
				}
			}
		},
	})
	if res.Canceled {
		// Same reason precedence as the round loop: user cancel, then
		// preemption, then shutdown, then the deadline carried by ctx.
		select {
		case <-j.cancelCh:
			j.mu.Lock()
			reason := j.cancelReason
			j.mu.Unlock()
			cancelJob(reason, fmt.Sprintf("canceled after round %d", res.Rounds))
			s.cfg.Logf("specd: job %s canceled after round %d (in-flight round completed)", id, res.Rounds)
		default:
			select {
			case <-pch:
				pauseJob(res.Rounds)
				return
			case <-s.stop:
				cancelJob(ReasonShutdown, fmt.Sprintf("interrupted by shutdown after round %d", res.Rounds))
				s.cfg.Logf("specd: job %s interrupted after round %d (in-flight round completed)", id, res.Rounds)
			default:
				cancelJob(ReasonDeadline, fmt.Sprintf("deadline %v exceeded after round %d",
					time.Duration(spec.MaxDuration), res.Rounds))
				s.cfg.Logf("specd: job %s hit its %v deadline after round %d",
					id, time.Duration(spec.MaxDuration), res.Rounds)
			}
		}
		return
	}
	s.finishDrained(j, id, spec, run, res.Rounds)
}

// finishDrained is the shared post-drive tail for both execution modes:
// cap failure when work is left, degraded completion when tasks were
// quarantined, and oracle verification otherwise. progress is the round
// count (round mode) or sample count (async).
func (s *Service) finishDrained(j *job, id string, spec JobSpec, run *workload.Run, progress int) {
	unit := "round"
	if spec.Mode == ModeAsync {
		unit = "sample"
	}
	if run.Stepper.Pending() > 0 {
		s.failJob(j, id, fmt.Errorf("%s cap %d reached with %d tasks pending",
			unit, spec.MaxRounds, run.Stepper.Pending()))
		return
	}
	snap := run.Stepper.Snapshot()
	if snap.Poisoned > 0 {
		// Degraded completion: the healthy tasks drained, the poisoned
		// ones are quarantined. Verification would report the holes the
		// quarantined tasks left, so record the degradation instead.
		j.mu.Lock()
		j.status.Result = fmt.Sprintf("degraded: %d tasks quarantined after exhausting retry budget (%d failures)",
			snap.Poisoned, snap.Failed)
		j.status.Reason = ReasonDegraded
		j.mu.Unlock()
		j.setState(StateDone)
		s.cfg.Logf("specd: job %s done (degraded) after %d %ss: %d poisoned", id, progress, unit, snap.Poisoned)
		return
	}
	detail, err := run.Verify()
	if err != nil {
		s.failJob(j, id, fmt.Errorf("verification failed: %w", err))
		return
	}
	j.mu.Lock()
	j.status.Result = detail
	j.mu.Unlock()
	j.setState(StateDone)
	s.cfg.Logf("specd: job %s done after %d %ss: %s", id, progress, unit, detail)
}

func (s *Service) failJob(j *job, id string, err error) {
	j.mu.Lock()
	j.status.Error = err.Error()
	j.mu.Unlock()
	j.setState(StateFailed)
	s.cfg.Logf("specd: job %s failed: %v", id, err)
}
