// Package service is the long-running speculation service behind cmd/specd:
// a bounded job queue with backpressure, a worker pool that drains jobs by
// running the adaptive control loop round-by-round on the speculative
// executor, per-job round-history ring buffers for live telemetry, and
// graceful shutdown that finishes in-flight rounds before exiting.
//
// Layering: the service owns admission, scheduling, and observation;
// workload construction and controller construction are delegated to the
// internal/workload registry, and the round loop itself is the paper's
// Algorithm 1 main loop (M → Round → Observe) expressed over
// workload.Stepper so ordered and unordered workloads run identically.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/control"
	"repro/internal/workload"
)

// Submission errors, mapped to HTTP statuses by the handler layer.
var (
	// ErrQueueFull signals admission backpressure (HTTP 429).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining signals the service no longer accepts jobs (HTTP 503).
	ErrDraining = errors.New("service: shutting down")
)

// SpecError marks an invalid job specification (HTTP 400).
type SpecError struct{ msg string }

func (e *SpecError) Error() string { return e.msg }

func specErrf(format string, args ...any) error {
	return &SpecError{msg: fmt.Sprintf(format, args...)}
}

// State enumerates a job's lifecycle.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled" // interrupted by shutdown
)

// States lists every job state (metrics export them all, including
// zero-valued ones, so dashboards see stable series).
func States() []State {
	return []State{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled}
}

// JobSpec is the wire-level job description accepted by POST /v1/jobs.
// Zero values take server defaults; Parallel = -1 selects the
// model-faithful one-goroutine-per-task executor mode.
type JobSpec struct {
	Workload   string  `json:"workload"`
	Controller string  `json:"controller"`
	Rho        float64 `json:"rho,omitempty"`       // target conflict ratio (default 0.25)
	M0         int     `json:"m0,omitempty"`        // initial m (default 2)
	FixedM     int     `json:"m,omitempty"`         // processor count for "fixed"
	Size       int     `json:"size,omitempty"`      // workload size (default 1000)
	Seed       uint64  `json:"seed,omitempty"`      // PRNG seed (default 1)
	Parallel   int     `json:"parallel,omitempty"`  // worker-pool size; 0 = server default, -1 = model-faithful
	Degree     float64 `json:"degree,omitempty"`    // avg degree for "cc" (default 16)
	MaxRounds  int     `json:"max_rounds,omitempty"` // round cap (default server cap)
}

// RoundPoint is one recorded round of a job's trajectory.
type RoundPoint struct {
	Round     int     `json:"round"`
	M         int     `json:"m"`
	Launched  int     `json:"launched"`
	Committed int     `json:"committed"`
	Aborted   int     `json:"aborted"`
	R         float64 `json:"r"` // conflict ratio observed this round
}

// JobStatus is the externally visible snapshot of a job, returned by
// GET /v1/jobs/{id} and embedded in submit responses.
type JobStatus struct {
	ID          string     `json:"id"`
	State       State      `json:"state"`
	Spec        JobSpec    `json:"spec"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`

	Rounds            int     `json:"rounds"`
	CurrentM          int     `json:"current_m"`
	Pending           int     `json:"pending"`
	Launched          int64   `json:"launched"`
	Committed         int64   `json:"committed"`
	Aborted           int64   `json:"aborted"`
	ConflictRatio     float64 `json:"conflict_ratio"`      // cumulative aborts/launches
	MeanConflictRatio float64 `json:"mean_conflict_ratio"` // r̄: unweighted per-round mean

	ControllerCounters map[string]int `json:"controller_counters,omitempty"`
	Trajectory         []RoundPoint   `json:"trajectory,omitempty"`
	Result             string         `json:"result,omitempty"`
	Error              string         `json:"error,omitempty"`
}

// Terminal reports whether the status is final.
func (s JobStatus) Terminal() bool {
	return s.State == StateDone || s.State == StateFailed || s.State == StateCanceled
}

// job is the internal mutable record behind a JobStatus.
type job struct {
	mu     sync.Mutex
	status JobStatus
	hist   ring
}

// ring is a fixed-capacity round-history buffer keeping the last cap
// points.
type ring struct {
	buf   []RoundPoint
	start int
	n     int
}

func (r *ring) push(p RoundPoint) {
	if cap(r.buf) == 0 {
		return
	}
	if r.n < cap(r.buf) {
		r.buf = append(r.buf, p)
		r.n++
		return
	}
	r.buf[r.start] = p
	r.start = (r.start + 1) % r.n
}

func (r *ring) slice() []RoundPoint {
	out := make([]RoundPoint, 0, r.n)
	out = append(out, r.buf[r.start:r.n]...)
	out = append(out, r.buf[:r.start]...)
	return out
}

// record folds one executed round into the job under its lock.
func (j *job) record(p RoundPoint, pending int, rSum *float64, counters map[string]int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := &j.status
	st.Rounds = p.Round + 1
	st.CurrentM = p.M
	st.Pending = pending
	st.Launched += int64(p.Launched)
	st.Committed += int64(p.Committed)
	st.Aborted += int64(p.Aborted)
	if st.Launched > 0 {
		st.ConflictRatio = float64(st.Aborted) / float64(st.Launched)
	}
	*rSum += p.R
	st.MeanConflictRatio = *rSum / float64(st.Rounds)
	st.ControllerCounters = counters
	j.hist.push(p)
}

// snapshot returns a deep-enough copy for JSON encoding.
func (j *job) snapshot(withTrajectory bool) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.status
	if st.ControllerCounters != nil {
		cc := make(map[string]int, len(st.ControllerCounters))
		for k, v := range st.ControllerCounters {
			cc[k] = v
		}
		st.ControllerCounters = cc
	}
	if withTrajectory {
		st.Trajectory = j.hist.slice()
	}
	return st
}

func (j *job) setState(s State) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.status.State = s
	now := time.Now()
	switch s {
	case StateRunning:
		j.status.StartedAt = &now
	case StateDone, StateFailed, StateCanceled:
		j.status.FinishedAt = &now
	}
}

// Config tunes the service. Zero values take the documented defaults.
type Config struct {
	QueueCap        int // bounded queue capacity (default 64)
	Workers         int // concurrent job runners (default 2)
	HistoryCap      int // per-job trajectory ring size (default 256)
	DefaultParallel int // executor pool size when spec.Parallel == 0 (default 2)
	MaxRounds       int // hard per-job round cap (default 1<<30)
	MaxSize         int // largest accepted spec.Size (default 1_000_000)

	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.HistoryCap <= 0 {
		c.HistoryCap = 256
	}
	if c.DefaultParallel <= 0 {
		c.DefaultParallel = 2
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 1 << 30
	}
	if c.MaxSize <= 0 {
		c.MaxSize = 1_000_000
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Service is the long-running speculation service.
type Service struct {
	cfg   Config
	start time.Time

	mu    sync.Mutex
	jobs  map[string]*job
	order []string // submission order, for listing

	queue    chan *job
	draining atomic.Bool
	stop     chan struct{} // closed by Shutdown; wakes idle workers
	wg       sync.WaitGroup

	nextID    atomic.Int64
	submitted atomic.Int64
	rejected  atomic.Int64
}

// New starts a service with cfg.Workers runner goroutines.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:   cfg,
		start: time.Now(),
		jobs:  make(map[string]*job),
		queue: make(chan *job, cfg.QueueCap),
		stop:  make(chan struct{}),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// normalize validates spec against the service limits and fills
// defaults. It returns the normalized spec or a *SpecError.
func (s *Service) normalize(spec JobSpec) (JobSpec, error) {
	if !workload.Has(spec.Workload) {
		return spec, specErrf("unknown workload %q (have %v)", spec.Workload, workload.Names())
	}
	if !workload.HasController(spec.Controller) {
		return spec, specErrf("unknown controller %q (have %v)", spec.Controller, workload.ControllerNames())
	}
	if spec.Controller == "fixed" && spec.FixedM < 1 {
		return spec, specErrf("controller \"fixed\" requires m >= 1")
	}
	if spec.Rho == 0 {
		spec.Rho = 0.25
	}
	if spec.Rho < 0 || spec.Rho >= 1 {
		return spec, specErrf("rho %v out of (0,1)", spec.Rho)
	}
	if spec.Size == 0 {
		spec.Size = 1000
	}
	if spec.Size < 1 || spec.Size > s.cfg.MaxSize {
		return spec, specErrf("size %d out of [1,%d]", spec.Size, s.cfg.MaxSize)
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	switch {
	case spec.Parallel == 0:
		spec.Parallel = s.cfg.DefaultParallel
	case spec.Parallel == -1:
		spec.Parallel = 0 // model-faithful: one goroutine per task
	case spec.Parallel < -1 || spec.Parallel > 1024:
		return spec, specErrf("parallel %d out of [-1,1024]", spec.Parallel)
	}
	if spec.Degree < 0 {
		return spec, specErrf("degree %v negative", spec.Degree)
	}
	if spec.MaxRounds <= 0 || spec.MaxRounds > s.cfg.MaxRounds {
		spec.MaxRounds = s.cfg.MaxRounds
	}
	return spec, nil
}

// Submit validates and enqueues a job. It returns the queued job's
// status, or ErrQueueFull / ErrDraining / a *SpecError.
func (s *Service) Submit(spec JobSpec) (JobStatus, error) {
	if s.draining.Load() {
		return JobStatus{}, ErrDraining
	}
	spec, err := s.normalize(spec)
	if err != nil {
		return JobStatus{}, err
	}
	j := &job{
		status: JobStatus{
			ID:          fmt.Sprintf("j%d", s.nextID.Add(1)),
			State:       StateQueued,
			Spec:        spec,
			SubmittedAt: time.Now(),
		},
		hist: ring{buf: make([]RoundPoint, 0, s.cfg.HistoryCap)},
	}
	// Reserve the queue slot first: admission control must reject before
	// the job becomes externally visible.
	select {
	case s.queue <- j:
	default:
		s.rejected.Add(1)
		return JobStatus{}, ErrQueueFull
	}
	s.mu.Lock()
	s.jobs[j.status.ID] = j
	s.order = append(s.order, j.status.ID)
	s.mu.Unlock()
	s.submitted.Add(1)
	return j.snapshot(false), nil
}

// Job returns the status of the given job (with its trajectory).
func (s *Service) Job(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return j.snapshot(true), true
}

// Jobs lists every known job in submission order, without trajectories.
func (s *Service) Jobs() []JobStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*job, len(ids))
	for i, id := range ids {
		jobs[i] = s.jobs[id]
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot(false)
	}
	return out
}

// QueueDepth returns the number of jobs waiting for a worker.
func (s *Service) QueueDepth() int { return len(s.queue) }

// Draining reports whether Shutdown has begun.
func (s *Service) Draining() bool { return s.draining.Load() }

// Uptime returns time since New.
func (s *Service) Uptime() time.Duration { return time.Since(s.start) }

// Shutdown stops admission, lets running jobs finish their in-flight
// round (marking them canceled), leaves queued jobs queued, and waits
// for the workers to exit or ctx to expire.
func (s *Service) Shutdown(ctx context.Context) error {
	if s.draining.CompareAndSwap(false, true) {
		close(s.stop)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Service) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case j := <-s.queue:
			if s.draining.Load() {
				// Drained mid-pop: leave the job in state queued — it is
				// still visible and reported as never started.
				return
			}
			s.runJob(j)
		}
	}
}

// runJob executes one job to completion or interruption. The shutdown
// check sits between rounds only, so an in-flight round always finishes
// before the worker exits — the invariant the SIGTERM e2e asserts.
func (s *Service) runJob(j *job) {
	spec := j.snapshot(false).Spec
	id := j.status.ID // immutable after creation
	j.setState(StateRunning)
	s.cfg.Logf("specd: job %s started: workload=%s controller=%s size=%d seed=%d",
		id, spec.Workload, spec.Controller, spec.Size, spec.Seed)

	ctrl, err := workload.NewController(spec.Controller, workload.ControllerParams{
		Rho: spec.Rho, M0: spec.M0, FixedM: spec.FixedM,
	})
	if err != nil {
		s.failJob(j, id, err)
		return
	}
	run, err := workload.New(spec.Workload, workload.Params{
		Size: spec.Size, Seed: spec.Seed, Parallel: spec.Parallel, Degree: spec.Degree,
	})
	if err != nil {
		s.failJob(j, id, err)
		return
	}
	defer run.Stepper.Close()

	telemetry, _ := ctrl.(control.Telemetry)
	rSum := 0.0
	round := 0
	for ; round < spec.MaxRounds && run.Stepper.Pending() > 0; round++ {
		select {
		case <-s.stop:
			j.mu.Lock()
			j.status.State = StateCanceled
			j.status.Error = fmt.Sprintf("interrupted by shutdown after round %d", round)
			now := time.Now()
			j.status.FinishedAt = &now
			j.mu.Unlock()
			s.cfg.Logf("specd: job %s interrupted after round %d (in-flight round completed)", id, round)
			return
		default:
		}
		m := ctrl.M()
		launched, committed, aborted := run.Stepper.Round(m)
		r := 0.0
		if launched > 0 {
			r = float64(aborted) / float64(launched)
		}
		ctrl.Observe(r)
		var counters map[string]int
		if telemetry != nil {
			counters = telemetry.Counters()
		}
		j.record(RoundPoint{
			Round: round, M: m,
			Launched: launched, Committed: committed, Aborted: aborted, R: r,
		}, run.Stepper.Pending(), &rSum, counters)
	}

	if run.Stepper.Pending() > 0 {
		s.failJob(j, id, fmt.Errorf("round cap %d reached with %d tasks pending",
			spec.MaxRounds, run.Stepper.Pending()))
		return
	}
	detail, err := run.Verify()
	if err != nil {
		s.failJob(j, id, fmt.Errorf("verification failed: %w", err))
		return
	}
	j.mu.Lock()
	j.status.Result = detail
	j.mu.Unlock()
	j.setState(StateDone)
	s.cfg.Logf("specd: job %s done after %d rounds: %s", id, round, detail)
}

func (s *Service) failJob(j *job, id string, err error) {
	j.mu.Lock()
	j.status.Error = err.Error()
	j.mu.Unlock()
	j.setState(StateFailed)
	s.cfg.Logf("specd: job %s failed: %v", id, err)
}
