package service

import (
	"errors"
	"testing"
	"time"
)

// schedJob builds a bare queued job for direct scheduler tests.
func schedJob(tenant string, prio int) *job {
	return &job{status: JobStatus{Spec: JobSpec{Tenant: tenant, Priority: prio}}}
}

func newTestSched(cfg Config) *scheduler {
	return newScheduler(cfg.withDefaults())
}

// fill admits n jobs for a tenant at a priority, failing the test on
// any rejection.
func fill(t *testing.T, s *scheduler, tenant string, prio, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := s.admit(schedJob(tenant, prio)); err != nil {
			t.Fatalf("admit %s[%d]: %v", tenant, i, err)
		}
	}
}

// TestSchedulerDRRFairness: two backlogged tenants at weights 3:1 must
// dequeue in a 3:1 ratio under contention.
func TestSchedulerDRRFairness(t *testing.T) {
	s := newTestSched(Config{
		Workers: 1, QueueCap: 200,
		Tenants: []TenantConfig{
			{Name: "gold", Weight: 3},
			{Name: "free", Weight: 1},
		},
	})
	fill(t, s, "gold", 5, 60)
	fill(t, s, "free", 5, 60)

	counts := map[string]int{}
	for i := 0; i < 40; i++ {
		j, ok := s.next()
		if !ok {
			t.Fatalf("next() closed at pop %d", i)
		}
		counts[j.status.Spec.Tenant]++
	}
	// Both stayed backlogged the whole time, so DRR is exact: 30:10.
	if counts["gold"] != 30 || counts["free"] != 10 {
		t.Fatalf("pops gold=%d free=%d, want 30:10", counts["gold"], counts["free"])
	}
}

// TestSchedulerScavengerProgress: a negative-weight tenant trickles but
// never starves while a weighted tenant floods.
func TestSchedulerScavengerProgress(t *testing.T) {
	s := newTestSched(Config{
		Workers: 1, QueueCap: 300,
		Tenants: []TenantConfig{
			{Name: "gold", Weight: 3},
			{Name: "scav", Weight: -1},
		},
	})
	fill(t, s, "gold", 5, 200)
	fill(t, s, "scav", 5, 10)

	counts := map[string]int{}
	for i := 0; i < 100; i++ {
		j, _ := s.next()
		counts[j.status.Spec.Tenant]++
	}
	if counts["scav"] == 0 {
		t.Fatal("scavenger tenant starved: 0 pops in 100")
	}
	if counts["scav"] >= counts["gold"]/4 {
		t.Fatalf("scavenger got %d of 100 pops vs gold %d; want a trickle, not a share",
			counts["scav"], counts["gold"])
	}
}

// TestSchedulerStrictPriority: a higher-priority job dequeues before a
// backlog of lower-priority ones, regardless of tenant rotation.
func TestSchedulerStrictPriority(t *testing.T) {
	s := newTestSched(Config{Workers: 1, QueueCap: 50})
	fill(t, s, "a", 2, 10)
	hi := schedJob("b", 9)
	if err := s.admit(hi); err != nil {
		t.Fatalf("admit high: %v", err)
	}
	j, _ := s.next()
	if j != hi {
		t.Fatalf("first pop is %s prio %d, want the priority-9 job",
			j.status.Spec.Tenant, j.status.Spec.Priority)
	}
}

// TestSchedulerTenantBound: a tenant's own max_pending trips before the
// global queue and maps to ErrQueueFull for pre-tenant callers.
func TestSchedulerTenantBound(t *testing.T) {
	s := newTestSched(Config{
		Workers: 1, QueueCap: 100,
		Tenants: []TenantConfig{{Name: "small", MaxPending: 2}},
	})
	fill(t, s, "small", 5, 2)
	err := s.admit(schedJob("small", 5))
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Class != RejectTenant {
		t.Fatalf("third admit: %v, want RejectError class %q", err, RejectTenant)
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Fatal("tenant-bound rejection must match ErrQueueFull for compatibility")
	}
	// Another tenant is unaffected.
	if err := s.admit(schedJob("other", 5)); err != nil {
		t.Fatalf("other tenant blocked by small's bound: %v", err)
	}
}

// TestSchedulerQuota: the token bucket rejects with a computed wait and
// does NOT map to ErrQueueFull (it is not a capacity problem).
func TestSchedulerQuota(t *testing.T) {
	s := newTestSched(Config{
		Workers: 1, QueueCap: 100,
		Tenants: []TenantConfig{{Name: "metered", Rate: 2, Burst: 1}},
	})
	if err := s.admit(schedJob("metered", 5)); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	err := s.admit(schedJob("metered", 5))
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Class != RejectQuota {
		t.Fatalf("second admit: %v, want RejectError class %q", err, RejectQuota)
	}
	if rej.Wait <= 0 || rej.Wait > 600*time.Millisecond {
		t.Fatalf("quota wait %v, want (0, 600ms] for rate 2/s", rej.Wait)
	}
	if errors.Is(err, ErrQueueFull) {
		t.Fatal("quota rejection must not match ErrQueueFull")
	}
}

// TestSchedulerBrownoutShedding: at shed level L, effective priorities
// <= L are rejected with class "shed"; priority 9 always admits.
func TestSchedulerBrownoutShedding(t *testing.T) {
	s := newTestSched(Config{Workers: 1, QueueCap: 100})
	s.setBrownoutLevel(3)
	err := s.admit(schedJob("t", 3))
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Class != RejectShed {
		t.Fatalf("prio-3 admit at level 3: %v, want class %q", err, RejectShed)
	}
	if err := s.admit(schedJob("t", 4)); err != nil {
		t.Fatalf("prio-4 admit at level 3: %v", err)
	}
	// The level clamps below MaxPriority so priority 9 stays admissible.
	s.setBrownoutLevel(MaxPriority + 5)
	if lvl, _, _ := s.brownout(); lvl != MaxPriority-1 {
		t.Fatalf("level %d, want clamp at %d", lvl, MaxPriority-1)
	}
	if err := s.admit(schedJob("t", MaxPriority)); err != nil {
		t.Fatalf("prio-9 admit at max shed level: %v", err)
	}
}

// TestSchedulerBrownoutEscalation drives the p99 window machinery
// directly: N consecutive bad windows raise the level, a good window
// lowers it.
func TestSchedulerBrownoutEscalation(t *testing.T) {
	s := newTestSched(Config{
		Workers: 1, QueueCap: 100,
		BrownoutP99: 10 * time.Millisecond, BrownoutWindows: 2, BrownoutWindow: 4,
	})
	feed := func(w time.Duration, n int) {
		s.mu.Lock()
		for i := 0; i < n; i++ {
			s.noteWaitLocked(w)
		}
		s.mu.Unlock()
	}
	feed(50*time.Millisecond, 4) // bad window 1
	if lvl, _, _ := s.brownout(); lvl != 0 {
		t.Fatalf("level %d after one bad window, want 0", lvl)
	}
	feed(50*time.Millisecond, 4) // bad window 2 -> escalate
	if lvl, p99, _ := s.brownout(); lvl != 1 || p99 <= 0.01 {
		t.Fatalf("level %d p99 %.3f after two bad windows, want level 1", lvl, p99)
	}
	feed(0, 4) // good window -> de-escalate
	if lvl, _, _ := s.brownout(); lvl != 0 {
		t.Fatalf("level %d after good window, want 0", lvl)
	}
}

// TestSchedulerBrownoutIdleDecay: once shedding blocks all offered
// traffic, no dequeues feed the evaluation window — the level must
// decay on the wall clock instead of latching until restart.
func TestSchedulerBrownoutIdleDecay(t *testing.T) {
	s := newTestSched(Config{
		Workers: 1, QueueCap: 100,
		BrownoutP99: 10 * time.Millisecond, BrownoutWindows: 2, BrownoutWindow: 4,
	})
	s.setBrownoutLevel(5)
	// All traffic at the shed level: rejected, and the window never
	// fills. The first admission also starts the idle-decay clock.
	err := s.admit(schedJob("t", 5))
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Class != RejectShed {
		t.Fatalf("admit at level 5: %v, want class %q", err, RejectShed)
	}
	// Backdate the last evaluation past the decay span: the next admit
	// must step the level down and accept rather than shed forever.
	s.mu.Lock()
	s.lastEval = time.Now().Add(-brownoutIdleDecay - time.Second)
	s.mu.Unlock()
	if err := s.admit(schedJob("t", 5)); err != nil {
		t.Fatalf("admit after idle span: %v, want level decayed and job admitted", err)
	}
	if lvl, _, _ := s.brownout(); lvl != 4 {
		t.Fatalf("level %d after idle decay, want 4", lvl)
	}
}

// TestSchedulerDeadlineRejectKeepsQuota: a deadline-shed rejection must
// not burn a token for work that was never queued — the next admissible
// job still has the tenant's full quota.
func TestSchedulerDeadlineRejectKeepsQuota(t *testing.T) {
	s := newTestSched(Config{
		Workers: 1, QueueCap: 100,
		Tenants: []TenantConfig{{Name: "metered", Rate: 1, Burst: 1}},
	})
	s.observeService("t", 1*time.Second, true) // EWMA = 1s per job
	fill(t, s, "t", 5, 4)                      // 4 ahead -> est wait 4s

	j := schedJob("metered", 5)
	j.status.Spec.MaxDuration = Duration(2 * time.Second)
	err := s.admit(j)
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Class != RejectDeadline {
		t.Fatalf("deadline admit: %v, want class %q", err, RejectDeadline)
	}
	// The single burst token survived the rejection.
	if err := s.admit(schedJob("metered", 5)); err != nil {
		t.Fatalf("post-rejection admit: %v, want the quota token intact", err)
	}
}

// TestSchedulerEWMAIgnoresIncomplete: paused/failed/canceled attempts
// must not drag the service-time EWMA toward short partial durations.
func TestSchedulerEWMAIgnoresIncomplete(t *testing.T) {
	s := newTestSched(Config{Workers: 1, QueueCap: 10})
	s.observeService("t", 10*time.Second, true)
	s.observeService("t", time.Millisecond, false) // preempted partial attempt
	s.mu.Lock()
	ewma := s.svcEWMA
	s.mu.Unlock()
	if ewma != 10 {
		t.Fatalf("EWMA %.3fs after incomplete sample, want 10s untouched", ewma)
	}
}

// TestSchedulerDeadlineShed: when the estimated queue wait exceeds a
// job's max_duration, admission rejects instead of queueing a job that
// can only miss its deadline.
func TestSchedulerDeadlineShed(t *testing.T) {
	s := newTestSched(Config{Workers: 1, QueueCap: 100})
	s.observeService("t", 1*time.Second, true) // EWMA = 1s per job
	fill(t, s, "t", 5, 4)                      // 4 ahead -> est wait 4s

	err := s.admit(schedJob("t", 5))
	// No deadline: admitted fine even with a long wait.
	if err != nil {
		t.Fatalf("no-deadline admit: %v", err)
	}
	j := schedJob("t", 5)
	j.status.Spec.MaxDuration = Duration(2 * time.Second)
	err = s.admit(j)
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Class != RejectDeadline {
		t.Fatalf("deadline admit: %v, want class %q", err, RejectDeadline)
	}
	if rej.Wait < 2*time.Second {
		t.Fatalf("deadline wait hint %v, want >= estimated wait 2s", rej.Wait)
	}
}

// TestSchedulerComputedRetryAfter: capacity rejections carry the
// estimated dequeue wait once service-time data exists, not the
// pre-tenant 1s constant.
func TestSchedulerComputedRetryAfter(t *testing.T) {
	s := newTestSched(Config{Workers: 1, QueueCap: 3})
	fill(t, s, "t", 5, 3)

	// Admit from a second tenant so the GLOBAL bound is what trips (a
	// tenant's own default max_pending equals QueueCap and checks first).
	// No completions yet: floor at the old 1s constant.
	err := s.admit(schedJob("u", 5))
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Class != RejectQueue {
		t.Fatalf("full-queue admit: %v", err)
	}
	if rej.Wait != time.Second {
		t.Fatalf("wait %v with no service data, want the 1s floor", rej.Wait)
	}

	s.observeService("t", 3*time.Second, true)
	err = s.admit(schedJob("u", 5))
	if !errors.As(err, &rej) {
		t.Fatalf("full-queue admit: %v", err)
	}
	if rej.Wait < 2*time.Second {
		t.Fatalf("wait %v after 3s EWMA, want a computed (not constant) hint", rej.Wait)
	}
}
