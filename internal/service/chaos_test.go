package service_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/service"
	"repro/internal/service/client"
)

// chaosFault is the fault profile from the acceptance criteria: 5%
// panics plus errors, a small poison band, and delay injection.
func chaosFault() *service.FaultSpec {
	return &service.FaultSpec{
		PanicRate: 0.05, ErrorRate: 0.05, PoisonRate: 0.03,
		TransientAttempts: 2,
		DelayRate:         0.05, Delay: service.Duration(200 * time.Microsecond),
	}
}

// TestChaosServiceSurvivesInjectedFaults drives a fault-injected job
// mix through the full HTTP stack under a deliberately tiny queue (so
// 429 storms exercise the client backoff), with a concurrent /healthz
// poller. The daemon must never crash, health must stay 200, every job
// must reach a terminal state, and the poisoned-task counter must
// equal the injectors' planned poison count exactly.
func TestChaosServiceSurvivesInjectedFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run skipped in -short mode")
	}
	const (
		jobs    = 12
		size    = 300
		retries = 3
	)
	_, c := startServer(t, service.Config{QueueCap: 2, Workers: 2})

	// Health poller: /healthz must answer 200 for the whole run.
	healthCtx, stopHealth := context.WithCancel(context.Background())
	defer stopHealth()
	var healthFailures atomic.Int64
	var healthWG sync.WaitGroup
	healthWG.Add(1)
	go func() {
		defer healthWG.Done()
		for healthCtx.Err() == nil {
			if _, err := c.Health(healthCtx); err != nil && healthCtx.Err() == nil {
				healthFailures.Add(1)
				t.Logf("healthz failed mid-chaos: %v", err)
			}
			select {
			case <-healthCtx.Done():
			case <-time.After(10 * time.Millisecond):
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	ids := make([]string, jobs)
	seeds := make([]uint64, jobs)
	var wg sync.WaitGroup
	var totalRetries atomic.Int64
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seeds[i] = uint64(100 + i)
			st, stats, err := c.SubmitRetry(ctx, service.JobSpec{
				Workload: "cc", Controller: "hybrid", Size: size,
				Seed: seeds[i], Parallel: 2,
				TaskRetries: retries, Fault: chaosFault(),
			}, client.Backoff{MaxRetries: 500, Base: 2 * time.Millisecond, Max: 20 * time.Millisecond, Seed: uint64(i)})
			if err != nil {
				t.Errorf("job %d never admitted: %v", i, err)
				return
			}
			totalRetries.Add(int64(stats.Retries))
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	// A 2-slot queue against 12 concurrent submitters must have pushed
	// back at least once, or the backoff path went untested.
	if totalRetries.Load() == 0 {
		t.Error("no 429 retries occurred; queue backpressure untested")
	}

	// Every job terminal, done (some degraded), and internally balanced.
	wantPoison := 0
	for i, id := range ids {
		st, err := c.Wait(ctx, id, 10*time.Millisecond)
		if err != nil {
			t.Fatalf("job %d (%s) never finished: %v", i, id, err)
		}
		if st.State != service.StateDone {
			t.Errorf("job %d (%s): state %s (%s)", i, id, st.State, st.Error)
		}
		if st.Launched != st.Committed+st.Aborted+st.Failed {
			t.Errorf("job %d: unbalanced counters %+v", i, st)
		}
		// Mirror the server's spec lowering: fault seed inherits the
		// job seed, so each job has its own deterministic plan.
		cfg := faultinject.Config{
			Seed: seeds[i], PanicRate: 0.05, ErrorRate: 0.05, PoisonRate: 0.03,
			TransientAttempts: 2, DelayRate: 0.05, Delay: 200 * time.Microsecond,
		}
		want := cfg.PoisonPlanCount(size)
		wantPoison += want
		if st.Poisoned != int64(want) {
			t.Errorf("job %d (seed %d): poisoned %d, want exactly %d", i, seeds[i], st.Poisoned, want)
		}
		if want > 0 && st.Reason != service.ReasonDegraded {
			t.Errorf("job %d: %d poisons but reason %q", i, want, st.Reason)
		}
	}
	if wantPoison == 0 {
		t.Fatal("fault profile planned zero poisons across all jobs; adjust seeds")
	}

	// The exported counter must match the injector plans exactly.
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	m := parseMetrics(t, text)
	if got := m["specd_poisoned_tasks_total"]; got != float64(wantPoison) {
		t.Errorf("specd_poisoned_tasks_total = %v, want exactly %d", got, wantPoison)
	}
	if m["specd_task_failures_total"] <= 0 {
		t.Error("specd_task_failures_total not incremented under injection")
	}

	stopHealth()
	healthWG.Wait()
	if n := healthFailures.Load(); n > 0 {
		t.Errorf("/healthz failed %d times during the chaos run", n)
	}
}

// TestChaosClientBackoffAgainst429Storm exercises the client's
// Retry-After handling against a deterministic 429-injecting transport
// in front of a healthy server: every submit must eventually land.
func TestChaosClientBackoffAgainst429Storm(t *testing.T) {
	_, c := startServer(t, service.Config{QueueCap: 16, Workers: 2})
	tripper := &faultinject.RoundTripper{
		Base: http.DefaultTransport, Rate: 0.7, RetryAfter: 1, Seed: 42,
	}
	c.HTTPClient = &http.Client{Transport: tripper, Timeout: 10 * time.Second}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		st, stats, err := c.SubmitRetry(ctx, service.JobSpec{
			Workload: "cc", Controller: "hybrid", Size: 100,
			Seed: uint64(i + 1), Parallel: 1,
		}, client.Backoff{MaxRetries: 100, Base: time.Millisecond, Max: 10 * time.Millisecond, Seed: uint64(i)})
		if err != nil {
			t.Fatalf("submit %d failed through injected 429s: %v (retries=%d)", i, err, stats.Retries)
		}
		if st.ID == "" {
			t.Fatalf("submit %d returned empty job id", i)
		}
		if _, err := c.Wait(ctx, st.ID, 5*time.Millisecond); err != nil {
			t.Fatalf("wait %s: %v", st.ID, err)
		}
	}
	if tripper.Injected() == 0 {
		t.Fatal("transport injected no 429s at rate 0.7; backoff untested")
	}
	if tripper.Passed() == 0 {
		t.Fatal("transport passed no requests through")
	}
}

// TestChaosBusyErrorCarriesRetryAfter pins the wire contract the
// backoff relies on: a real 429 from the fault transport surfaces as
// *BusyError with the server's Retry-After hint parsed.
func TestChaosBusyErrorCarriesRetryAfter(t *testing.T) {
	tripper := &faultinject.RoundTripper{
		Base: http.DefaultTransport, Rate: 1.0, RetryAfter: 3, Seed: 1,
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("request reached origin despite rate 1.0")
	}))
	defer srv.Close()
	c := client.New(srv.URL)
	c.HTTPClient = &http.Client{Transport: tripper, Timeout: 5 * time.Second}

	_, err := c.Submit(context.Background(), service.JobSpec{Workload: "cc", Controller: "hybrid", Size: 10, Seed: 1})
	if !errors.Is(err, client.ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	var be *client.BusyError
	if !errors.As(err, &be) {
		t.Fatalf("err %T does not unwrap to *BusyError", err)
	}
	if be.RetryAfter != 3*time.Second {
		t.Fatalf("RetryAfter = %v, want 3s", be.RetryAfter)
	}
}
