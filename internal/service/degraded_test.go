package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/journal"
)

// A journal disk fault mid-flight must flip the service into read-only
// degraded mode: in-flight jobs finish, new submits are refused with
// 503 + Retry-After, /healthz reports the reason, and healing the disk
// brings the service back automatically — with everything that was ever
// acknowledged re-persisted by the post-heal compaction.
func TestDegradedModeOnJournalFault(t *testing.T) {
	dir := t.TempDir()
	ffs := faultinject.NewFaultFS(nil)
	s, err := Open(Config{
		Workers: 2, QueueCap: 8, StateDir: dir, Fsync: journal.SyncAlways,
		FS: ffs, DegradedRetryInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	// A healthy submit before the fault, and a long job that will still
	// be running when the disk dies.
	first, err := s.Submit(ccSpec(1))
	if err != nil {
		t.Fatalf("submit before fault: %v", err)
	}
	if st := waitTerminal(t, s, first.ID, 30*time.Second); st.State != StateDone {
		t.Fatalf("pre-fault job finished %s (%s), want done", st.State, st.Error)
	}
	slow, err := s.Submit(JobSpec{
		Workload: "mesh", Controller: "fixed", FixedM: 2, Size: 20000, Seed: 3, Parallel: 1,
	})
	if err != nil {
		t.Fatalf("submit slow job: %v", err)
	}

	// The disk dies: every fsync fails. The next append flips the
	// service into degraded mode and the failing submit is refused —
	// never acknowledged-then-lost.
	ffs.Fail("sync", "", faultinject.ErrNoSpace)
	if _, err := s.Submit(ccSpec(2)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("submit on dead disk = %v, want ErrDegraded", err)
	}
	if deg, reason := s.DegradedInfo(); !deg || reason == "" {
		t.Fatalf("DegradedInfo = (%v, %q), want degraded with a reason", deg, reason)
	}
	if _, err := s.Submit(ccSpec(3)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("second submit while degraded = %v, want ErrDegraded", err)
	}

	// The HTTP surface: submits 503 with Retry-After, /healthz still 200
	// (a degraded node serves reads) but reports the state.
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"workload":"cc","controller":"hybrid","rho":0.25,"size":120,"seed":9}`))
	if err != nil {
		t.Fatalf("POST while degraded: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("degraded POST answered %d (Retry-After %q), want 503 with Retry-After",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	hres, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		t.Fatalf("degraded /healthz answered %d, want 200", hres.StatusCode)
	}
	if h := s.HealthStatus(); h.Status != "degraded" || !h.Degraded || h.DegradedReason == "" {
		t.Fatalf("health = %+v, want status degraded with a reason", h)
	}

	// In-flight work keeps running to completion while degraded.
	if st := waitTerminal(t, s, slow.ID, 60*time.Second); st.State != StateDone {
		t.Fatalf("in-flight job finished %s (%s), want done", st.State, st.Error)
	}

	// The disk heals: the recovery loop reopens the journal, compacts a
	// fresh snapshot (closing the acked-then-lost window), and leaves
	// degraded mode on its own.
	ffs.Clear()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if deg, _ := s.DegradedInfo(); !deg {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("service never left degraded mode after the disk healed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s.DegradedSeconds() <= 0 {
		t.Fatalf("DegradedSeconds = %v, want > 0 after an episode", s.DegradedSeconds())
	}

	// Back to normal service.
	post, err := s.Submit(ccSpec(4))
	if err != nil {
		t.Fatalf("submit after heal: %v", err)
	}
	if st := waitTerminal(t, s, post.ID, 30*time.Second); st.State != StateDone {
		t.Fatalf("post-heal job finished %s (%s), want done", st.State, st.Error)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Restart from disk: every acknowledged job — including the one that
	// finished while the journal was failing — must be there; the
	// refused submits must not.
	s2, err := Open(Config{Workers: 1, QueueCap: 8, StateDir: dir, Fsync: journal.SyncAlways})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Shutdown(context.Background())
	for _, id := range []string{first.ID, slow.ID, post.ID} {
		st, ok := s2.Job(id)
		if !ok {
			t.Fatalf("job %s lost across restart", id)
		}
		if st.State != StateDone {
			t.Fatalf("job %s restored as %s, want done", id, st.State)
		}
	}
	if got := len(s2.Jobs()); got != 3 {
		t.Fatalf("restored %d jobs, want exactly the 3 acknowledged ones", got)
	}
}
