package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/journal"
)

// The service journals every job lifecycle transition as one JSON
// record in the write-ahead log (see internal/journal for framing and
// durability). Replay applies records in append order onto the newest
// snapshot; because compaction rotates segments before it serializes
// the job table, a record may already be reflected in the snapshot it
// follows, so every application below is idempotent: counters are set
// absolutely, and trajectory points are pushed only when they advance
// the (attempt, round) watermark.
const (
	recSubmitted  = "submitted"  // job accepted into the queue
	recStarted    = "started"    // a worker began an attempt
	recCheckpoint = "checkpoint" // periodic round checkpoint (every K rounds)
	recFinished   = "finished"   // terminal transition: done, failed, or canceled
	recHandoff    = "handoff"    // job accepted from a dead cluster member (StateRecovered)
	recPaused     = "paused"     // preempted at a barrier, re-queued (StatePaused)
)

// walRecord is the wire form of one journaled transition. Fields are
// populated per type; absolute counter values make replay idempotent.
type walRecord struct {
	Type    string    `json:"t"`
	ID      string    `json:"id"`
	At      time.Time `json:"at"`
	Spec    *JobSpec  `json:"spec,omitempty"`    // submitted
	Attempt int       `json:"attempt,omitempty"` // started, checkpoint, finished
	// Preemptions is the absolute barrier-pause count (progress records),
	// absolute so replay over a covering snapshot stays idempotent.
	Preemptions int `json:"preemptions,omitempty"`

	// Checkpoint / finished payload: the job's attempt-local progress.
	Rounds    int            `json:"rounds,omitempty"`
	CurrentM  int            `json:"current_m,omitempty"`
	Pending   int            `json:"pending,omitempty"`
	Launched  int64          `json:"launched,omitempty"`
	Committed int64          `json:"committed,omitempty"`
	Aborted   int64          `json:"aborted,omitempty"`
	Failed    int64          `json:"failed,omitempty"`
	Poisoned  int64          `json:"poisoned,omitempty"`
	RSum      float64        `json:"r_sum,omitempty"`
	Counters  map[string]int `json:"counters,omitempty"`
	// Points carries the trajectory delta since the previous checkpoint
	// (or since the last one, for finished), so replay can rebuild the
	// ring without journaling every round twice.
	Points []RoundPoint `json:"points,omitempty"`

	// Finished payload.
	State  State  `json:"state,omitempty"`
	Reason string `json:"reason,omitempty"`
	Result string `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
}

// snapshotFile is the compaction snapshot: the full job table.
type snapshotFile struct {
	Version int           `json:"version"`
	NextID  int64         `json:"next_id"`
	Jobs    []snapshotJob `json:"jobs"`
}

type snapshotJob struct {
	Status JobStatus `json:"status"` // includes the trajectory ring
	RSum   float64   `json:"r_sum,omitempty"`
}

// persist snapshots a job for the compaction snapshot file.
func (j *job) persist() snapshotJob {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.status
	if st.ControllerCounters != nil {
		cc := make(map[string]int, len(st.ControllerCounters))
		for k, v := range st.ControllerCounters {
			cc[k] = v
		}
		st.ControllerCounters = cc
	}
	st.Trajectory = j.hist.slice()
	return snapshotJob{Status: st, RSum: j.rSum}
}

// appendRecord journals one record, logging (not failing) on error —
// a dead disk degrades durability, it does not take the service down.
// It also triggers compaction once the live segments outgrow the
// configured bound.
func (s *Service) appendRecord(rec walRecord) error {
	if s.jnl == nil {
		return nil
	}
	b, err := json.Marshal(rec)
	if err != nil {
		s.cfg.Logf("specd: journal: encoding %s record for %s: %v", rec.Type, rec.ID, err)
		return err
	}
	if err := s.jnl.Append(b); err != nil {
		s.cfg.Logf("specd: journal: appending %s record for %s: %v", rec.Type, rec.ID, err)
		if !errors.Is(err, journal.ErrClosed) {
			// A real disk fault (fsync error, ENOSPC, torn rotation):
			// flip into read-only degraded mode. ErrClosed is just
			// shutdown ordering, not a fault.
			s.enterDegraded(err)
		}
		return err
	}
	if s.jnl.LiveBytes() >= s.cfg.CompactBytes {
		s.compact()
	}
	return nil
}

// journalSubmitted records admission. Called after the job is queued;
// the fsync policy decides when it becomes durable. The error matters
// here, unlike the later lifecycle records: an admission the journal
// could not persist must be refused, or a crash would silently lose an
// acknowledged job.
func (s *Service) journalSubmitted(j *job) error {
	if s.jnl == nil {
		return nil
	}
	j.mu.Lock()
	rec := walRecord{Type: recSubmitted, ID: j.status.ID, At: j.status.SubmittedAt}
	spec := j.status.Spec
	rec.Spec = &spec
	j.mu.Unlock()
	return s.appendRecord(rec)
}

func (s *Service) journalStarted(id string, attempt int, at time.Time) {
	if s.jnl == nil {
		return
	}
	s.appendRecord(walRecord{Type: recStarted, ID: id, At: at, Attempt: attempt})
}

// journalHandoff records a handed-off admission: the job is in
// StateRecovered at the given attempt with the handed-over trajectory
// prefix, so a crash before the re-run starts recovers the same state.
func (s *Service) journalHandoff(j *job, prefix []RoundPoint) {
	if s.jnl == nil {
		return
	}
	j.mu.Lock()
	rec := walRecord{Type: recHandoff, ID: j.status.ID, At: time.Now(), Attempt: j.status.Attempt}
	j.mu.Unlock()
	if len(prefix) > 0 {
		rec.Points = append([]RoundPoint(nil), prefix...)
	}
	s.appendRecord(rec)
}

// progressRecord captures the job's attempt-local progress under its
// lock, shared by checkpoint and finished records.
func (j *job) progressRecord(typ string, points []RoundPoint) walRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.status
	rec := walRecord{
		Type: typ, ID: st.ID, At: time.Now(), Attempt: st.Attempt,
		Preemptions: st.Preemptions,
		Rounds:      st.Rounds, CurrentM: st.CurrentM, Pending: st.Pending,
		Launched: st.Launched, Committed: st.Committed, Aborted: st.Aborted,
		Failed: st.Failed, Poisoned: st.Poisoned, RSum: j.rSum,
	}
	if st.ControllerCounters != nil {
		rec.Counters = make(map[string]int, len(st.ControllerCounters))
		for k, v := range st.ControllerCounters {
			rec.Counters[k] = v
		}
	}
	if len(points) > 0 {
		rec.Points = append([]RoundPoint(nil), points...)
	}
	if typ == recFinished {
		rec.State = st.State
		rec.Reason = st.Reason
		rec.Result = st.Result
		rec.Error = st.Error
		if st.FinishedAt != nil {
			rec.At = *st.FinishedAt
		}
	}
	return rec
}

func (s *Service) journalCheckpoint(j *job, points []RoundPoint) {
	if s.jnl == nil {
		return
	}
	s.appendRecord(j.progressRecord(recCheckpoint, points))
}

// journalPause records a preemption barrier: the interrupted attempt's
// progress (with the trajectory delta since the last checkpoint) under
// the already-bumped attempt counter. Written before the job re-enters
// the scheduler, so a crash on either side of the pause recovers
// cleanly — before the record lands replay sees a running job and takes
// the crash-recovery path, after it replay re-queues the paused job.
func (s *Service) journalPause(j *job, points []RoundPoint) {
	if s.jnl == nil {
		return
	}
	s.appendRecord(j.progressRecord(recPaused, points))
}

// journalFinish records a terminal transition with any trajectory
// points not yet covered by a checkpoint.
func (s *Service) journalFinish(j *job, points []RoundPoint) {
	if s.jnl == nil {
		return
	}
	s.appendRecord(j.progressRecord(recFinished, points))
}

// compact serializes the job table into a snapshot and lets the
// journal drop the segments it covers. Concurrent triggers collapse
// into one pass. The returned error feeds degraded-mode recovery: a
// post-heal compaction must succeed before the service trusts the disk
// again, because it re-persists any state appended-then-lost while the
// journal was failing.
func (s *Service) compact() error {
	if s.jnl == nil || !s.compacting.CompareAndSwap(false, true) {
		return nil
	}
	defer s.compacting.Store(false)
	err := s.jnl.Compact(func() []byte {
		s.mu.Lock()
		jobs := make([]*job, 0, len(s.order))
		for _, id := range s.order {
			jobs = append(jobs, s.jobs[id])
		}
		s.mu.Unlock()
		snap := snapshotFile{Version: 1, NextID: s.nextID.Load()}
		snap.Jobs = make([]snapshotJob, len(jobs))
		for i, j := range jobs {
			snap.Jobs[i] = j.persist()
		}
		b, err := json.Marshal(snap)
		if err != nil {
			s.cfg.Logf("specd: journal: encoding snapshot: %v", err)
			return []byte(`{"version":1,"jobs":[]}`)
		}
		return b
	})
	if err != nil && err != journal.ErrClosed {
		s.cfg.Logf("specd: journal: compaction failed: %v", err)
		return err
	}
	return nil
}

// jobNum parses the numeric part of a "j<N>" job id (0 if foreign).
func jobNum(id string) int64 {
	n, err := strconv.ParseInt(strings.TrimPrefix(id, "j"), 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// restored is the outcome of replaying a state directory.
type restored struct {
	jobs      map[string]*job
	order     []string // submit order (ascending numeric id)
	pending   []*job   // queued + recovered jobs, in submit order
	maxID     int64
	recovered int64 // jobs that were running at crash time
	completed int64
}

// pointKey orders trajectory points across attempts: points replay
// only when they advance past the ring's current watermark, which
// makes re-applying a record the snapshot already reflects a no-op.
func pointKey(p RoundPoint) (int, int) {
	a := p.Attempt
	if a == 0 {
		a = 1
	}
	return a, p.Round
}

func pointAfter(p RoundPoint, lastA, lastR int) bool {
	a, r := pointKey(p)
	if a != lastA {
		return a > lastA
	}
	return r > lastR
}

// restoreState rebuilds the job table from a replayed snapshot and
// record stream. Jobs that were running when the process died come
// back in StateRecovered with the attempt counter bumped and their
// checkpointed trajectory prefix intact; queued jobs come back queued;
// terminal jobs come back exactly as they finished.
func (s *Service) restoreState(rep *journal.Replayed) (*restored, error) {
	r := &restored{jobs: make(map[string]*job)}
	// watermarks tracks each job's newest trajectory point.
	type mark struct{ a, rd int }
	marks := make(map[string]*mark)

	touch := func(id string) *job {
		if j, ok := r.jobs[id]; ok {
			return j
		}
		j := &job{
			hist:     ring{buf: make([]RoundPoint, 0, s.cfg.HistoryCap)},
			cancelCh: make(chan struct{}),
		}
		j.status.ID = id
		j.status.State = StateQueued
		j.status.Attempt = 1
		r.jobs[id] = j
		marks[id] = &mark{}
		return j
	}
	push := func(j *job, m *mark, pts []RoundPoint) {
		for _, p := range pts {
			if !pointAfter(p, m.a, m.rd) {
				continue
			}
			j.hist.push(p)
			m.a, m.rd = pointKey(p)
		}
	}

	if len(rep.Snapshot) > 0 {
		var snap snapshotFile
		if err := json.Unmarshal(rep.Snapshot, &snap); err != nil {
			return nil, fmt.Errorf("decoding snapshot: %w", err)
		}
		if snap.NextID > r.maxID {
			r.maxID = snap.NextID
		}
		for _, sj := range snap.Jobs {
			st := sj.Status
			if st.ID == "" {
				continue
			}
			traj := st.Trajectory
			st.Trajectory = nil
			if st.Attempt == 0 {
				st.Attempt = 1
			}
			j := &job{
				status:   st,
				rSum:     sj.RSum,
				hist:     ring{buf: make([]RoundPoint, 0, s.cfg.HistoryCap)},
				cancelCh: make(chan struct{}),
			}
			m := &mark{}
			r.jobs[st.ID] = j
			marks[st.ID] = m
			push(j, m, traj)
		}
	}

	for i, raw := range rep.Records {
		var rec walRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("decoding journal record %d: %w", i, err)
		}
		if rec.ID == "" {
			continue
		}
		j := touch(rec.ID)
		m := marks[rec.ID]
		st := &j.status
		switch rec.Type {
		case recSubmitted:
			if st.Spec.Workload == "" && rec.Spec != nil {
				st.Spec = *rec.Spec
				st.SubmittedAt = rec.At
			}
		case recStarted:
			if st.Terminal() {
				continue
			}
			if rec.Attempt >= st.Attempt {
				if rec.Attempt > st.Attempt || st.State == StateQueued ||
					st.State == StateRecovered || st.State == StatePaused {
					resetAttemptCounters(j)
				}
				st.Attempt = rec.Attempt
				at := rec.At
				st.State = StateRunning
				st.StartedAt = &at
			}
		case recCheckpoint:
			if st.Terminal() || rec.Attempt < st.Attempt {
				continue
			}
			if rec.Attempt == st.Attempt && rec.Rounds < st.Rounds {
				continue
			}
			st.Attempt = rec.Attempt
			st.State = StateRunning
			applyProgress(j, rec)
			push(j, m, rec.Points)
		case recPaused:
			// A preemption barrier: the job left its worker with the
			// recorded (already-bumped) attempt and re-queued. The next
			// started record at that attempt resumes it.
			if st.Terminal() || rec.Attempt < st.Attempt {
				continue
			}
			st.Attempt = rec.Attempt
			st.State = StatePaused
			st.StartedAt = nil
			applyProgress(j, rec)
			push(j, m, rec.Points)
		case recHandoff:
			// A handed-off admission: recovered at the recorded attempt
			// with the handed-over prefix. A later started record at the
			// same attempt flips the state to running (and, replayed again
			// after the attempt finished, the finished record wins).
			if st.Terminal() || rec.Attempt < st.Attempt {
				continue
			}
			st.Attempt = rec.Attempt
			st.State = StateRecovered
			push(j, m, rec.Points)
		case recFinished:
			if rec.Attempt < st.Attempt {
				continue
			}
			st.Attempt = max(rec.Attempt, st.Attempt)
			applyProgress(j, rec)
			push(j, m, rec.Points)
			st.State = rec.State
			st.Reason = rec.Reason
			st.Result = rec.Result
			st.Error = rec.Error
			at := rec.At
			st.FinishedAt = &at
		default:
			s.cfg.Logf("specd: journal: skipping unknown record type %q for %s", rec.Type, rec.ID)
		}
	}

	for id, j := range r.jobs {
		if j.status.Spec.Workload == "" {
			// A record stream that starts mid-lifecycle (the submitted
			// record never became durable): nothing to re-run from.
			s.cfg.Logf("specd: journal: dropping job %s with no recoverable spec", id)
			delete(r.jobs, id)
			continue
		}
		if n := jobNum(id); n > r.maxID {
			r.maxID = n
		}
	}

	r.order = make([]string, 0, len(r.jobs))
	for id := range r.jobs {
		r.order = append(r.order, id)
	}
	sort.Slice(r.order, func(a, b int) bool {
		na, nb := jobNum(r.order[a]), jobNum(r.order[b])
		if na != nb {
			return na < nb
		}
		return r.order[a] < r.order[b]
	})

	for _, id := range r.order {
		j := r.jobs[id]
		switch j.status.State {
		case StateRunning:
			// Running at crash time: restart from spec on a fresh attempt,
			// keeping the checkpointed progress visible until it starts.
			j.status.State = StateRecovered
			j.status.Attempt++
			r.recovered++
			r.pending = append(r.pending, j)
		case StateRecovered:
			// Crashed again before the recovered attempt started; the
			// attempt counter was already bumped.
			r.recovered++
			r.pending = append(r.pending, j)
		case StatePaused:
			// Preempted and re-queued before the crash: still pending, the
			// attempt counter was bumped at the pause barrier.
			r.pending = append(r.pending, j)
		case StateQueued:
			r.pending = append(r.pending, j)
		default:
			r.completed++
		}
	}
	return r, nil
}

// resetAttemptCounters zeroes the attempt-local progress fields while
// preserving the trajectory ring (the pre-crash prefix).
func resetAttemptCounters(j *job) {
	st := &j.status
	st.Rounds, st.CurrentM, st.Pending = 0, 0, 0
	st.Launched, st.Committed, st.Aborted, st.Failed, st.Poisoned = 0, 0, 0, 0, 0
	st.ConflictRatio, st.MeanConflictRatio = 0, 0
	st.ColoredRounds, st.Colorings, st.Fallbacks = 0, 0, 0
	st.ControllerCounters = nil
	st.Result, st.Error, st.Reason = "", "", ""
	j.rSum = 0
	j.specRounds = 0
	j.prevColored = false
}

// applyProgress sets the absolute progress fields from a checkpoint or
// finished record.
func applyProgress(j *job, rec walRecord) {
	st := &j.status
	if rec.Preemptions > st.Preemptions {
		st.Preemptions = rec.Preemptions
	}
	st.Rounds = rec.Rounds
	st.CurrentM = rec.CurrentM
	st.Pending = rec.Pending
	st.Launched, st.Committed, st.Aborted = rec.Launched, rec.Committed, rec.Aborted
	st.Failed, st.Poisoned = rec.Failed, rec.Poisoned
	j.rSum = rec.RSum
	st.ControllerCounters = rec.Counters
	if st.Launched > 0 {
		st.ConflictRatio = float64(st.Aborted) / float64(st.Launched)
	} else {
		st.ConflictRatio = 0
	}
	if st.Rounds > 0 {
		st.MeanConflictRatio = j.rSum / float64(st.Rounds)
	} else {
		st.MeanConflictRatio = 0
	}
}
