package service_test

import (
	"context"
	"net/http"
	"testing"
	"time"

	"repro/internal/service"
)

// TestJobTailHTTP exercises ?tail=N through the full HTTP stack and
// the client's JobTail helper.
func TestJobTailHTTP(t *testing.T) {
	_, c := startServer(t, service.Config{Workers: 1, QueueCap: 4})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	st, err := c.Submit(ctx, service.JobSpec{Workload: "cc", Controller: "hybrid", Size: 300, Parallel: 1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	final, err := c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != service.StateDone || len(final.Trajectory) < 3 {
		t.Fatalf("state %s with %d trajectory points; need a done job with >= 3", final.State, len(final.Trajectory))
	}

	for _, tc := range []struct{ tail, want int }{
		{0, 0},
		{2, 2},
		{len(final.Trajectory) + 5, len(final.Trajectory)},
	} {
		got, err := c.JobTail(ctx, st.ID, tc.tail)
		if err != nil {
			t.Fatalf("JobTail(%d): %v", tc.tail, err)
		}
		if len(got.Trajectory) != tc.want {
			t.Errorf("JobTail(%d): %d points, want %d", tc.tail, len(got.Trajectory), tc.want)
		}
		if got.Rounds != final.Rounds || got.State != final.State {
			t.Errorf("JobTail(%d) changed non-trajectory fields: %+v", tc.tail, got)
		}
	}

	// ?tail=2 returns the NEWEST points.
	got, err := c.JobTail(ctx, st.ID, 2)
	if err != nil {
		t.Fatalf("JobTail(2): %v", err)
	}
	wantLast := final.Trajectory[len(final.Trajectory)-2:]
	for i, p := range got.Trajectory {
		if p != wantLast[i] {
			t.Errorf("tail point %d = %+v, want %+v", i, p, wantLast[i])
		}
	}

	// A malformed tail is a 400, not a silent full payload.
	for _, bad := range []string{"-3", "x", "1.5"} {
		resp, err := http.Get(c.BaseURL + "/v1/jobs/" + st.ID + "?tail=" + bad)
		if err != nil {
			t.Fatalf("GET tail=%s: %v", bad, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("tail=%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}
