package service

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// spinSpec builds a never-draining job bounded only by the given
// wall-clock deadline, so cancellation (not drain) must end it.
func spinSpec(seed uint64, maxDur time.Duration) JobSpec {
	return JobSpec{
		Workload: "spin", Controller: "hybrid", Size: 8, Seed: seed,
		Parallel: 1, MaxDuration: Duration(maxDur),
	}
}

// waitState polls until the job reaches state or the deadline passes.
func waitState(t *testing.T, s *Service, id string, want State, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st, ok := s.Job(id)
		if ok && st.State == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, _ := s.Job(id)
	t.Fatalf("job %s never reached %s (state %s)", id, want, st.State)
}

// checkNoGoroutineLeak asserts the goroutine count settles back to the
// pre-test baseline (same tolerance as the executor pool tests).
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	for i := 0; i < 200 && runtime.NumGoroutine() > before; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Errorf("goroutine leak: %d before, %d after", before, g)
	}
}

// TestCancelRunningJobAtRoundBarrier: DELETE on a running job returns
// immediately and the job goes canceled within one round barrier.
func TestCancelRunningJobAtRoundBarrier(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Config{Workers: 1})
	st, err := s.Submit(spinSpec(1, 30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateRunning, 2*time.Second)

	got, err := s.Cancel(st.ID)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if got.State != StateRunning && got.State != StateCanceled {
		t.Fatalf("cancel returned state %s", got.State)
	}
	waitState(t, s, st.ID, StateCanceled, 2*time.Second)
	fin, _ := s.Job(st.ID)
	if fin.Reason != ReasonUserCancel {
		t.Fatalf("reason %q, want %q", fin.Reason, ReasonUserCancel)
	}
	if fin.Rounds == 0 {
		t.Error("job canceled before running a single round — expected mid-run cancel")
	}
	// Idempotence: canceling again reports terminal.
	if _, err := s.Cancel(st.ID); !errors.Is(err, ErrJobTerminal) {
		t.Fatalf("second cancel: %v, want ErrJobTerminal", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	checkNoGoroutineLeak(t, before)
}

// TestCancelQueuedJob: a job canceled during its queue wait never runs.
func TestCancelQueuedJob(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Config{Workers: 1})
	running, err := s.Submit(spinSpec(1, 30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, running.ID, StateRunning, 2*time.Second)
	queued, err := s.Submit(spinSpec(2, 30*time.Second))
	if err != nil {
		t.Fatal(err)
	}

	got, err := s.Cancel(queued.ID)
	if err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	if got.State != StateCanceled || got.Reason != ReasonUserCancel {
		t.Fatalf("queued job after cancel: state=%s reason=%q", got.State, got.Reason)
	}
	if got.StartedAt != nil {
		t.Error("canceled queued job has a start time")
	}

	// Free the worker; it must skip the canceled job, not resurrect it.
	if _, err := s.Cancel(running.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	waitState(t, s, running.ID, StateCanceled, 2*time.Second)
	time.Sleep(20 * time.Millisecond) // give the worker a chance to pop the queue
	if st, _ := s.Job(queued.ID); st.State != StateCanceled || st.StartedAt != nil {
		t.Fatalf("canceled queued job was resurrected: %+v", st)
	}

	if _, err := s.Cancel("j999"); !errors.Is(err, ErrNoJob) {
		t.Fatalf("cancel unknown: %v, want ErrNoJob", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	checkNoGoroutineLeak(t, before)
}

// TestDeadlineTerminatesNeverDrainingJob is the acceptance criterion:
// MaxDuration=100ms against spin terminates within one round of the
// deadline, state canceled with the deadline reason.
func TestDeadlineTerminatesNeverDrainingJob(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Config{Workers: 1})
	start := time.Now()
	st, err := s.Submit(spinSpec(1, 100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateCanceled, 5*time.Second)
	elapsed := time.Since(start)
	fin, _ := s.Job(st.ID)
	if fin.Reason != ReasonDeadline {
		t.Fatalf("reason %q, want %q (error: %s)", fin.Reason, ReasonDeadline, fin.Error)
	}
	// Spin rounds are microseconds; generous slack for CI schedulers.
	if elapsed > 3*time.Second {
		t.Fatalf("deadline job took %v to terminate", elapsed)
	}
	if fin.Rounds == 0 {
		t.Error("deadline job ran zero rounds")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	checkNoGoroutineLeak(t, before)
}

// TestCancelConcurrentWithShutdown races user cancels against the
// SIGTERM drain path: every running job must end canceled (either
// reason), nothing deadlocks, and no goroutines leak.
func TestCancelConcurrentWithShutdown(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Config{Workers: 2})
	var ids []string
	for i := 0; i < 2; i++ {
		st, err := s.Submit(spinSpec(uint64(i+1), 30*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		waitState(t, s, id, StateRunning, 2*time.Second)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for _, id := range ids {
			s.Cancel(id) // may race shutdown; both outcomes are valid
		}
	}()
	shutdownErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	wg.Wait()
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown did not complete: %v", err)
	}
	for _, id := range ids {
		st, _ := s.Job(id)
		if st.State != StateCanceled {
			t.Errorf("job %s state %s, want canceled", id, st.State)
		}
		if st.Reason != ReasonUserCancel && st.Reason != ReasonShutdown {
			t.Errorf("job %s reason %q", id, st.Reason)
		}
	}
	checkNoGoroutineLeak(t, before)
}
