package service

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/journal"
)

// asyncCCSpec is ccSpec run barrier-free.
func asyncCCSpec(seed uint64) JobSpec {
	sp := ccSpec(seed)
	sp.Mode = ModeAsync
	return sp
}

// TestAsyncJobRunsToCompletion: an async cc job drains end-to-end with
// a pseudo-round trajectory whose window deltas account for every
// commit.
func TestAsyncJobRunsToCompletion(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 4})
	defer s.Shutdown(context.Background())

	st, err := s.Submit(asyncCCSpec(1))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st.Spec.Mode != ModeAsync {
		t.Fatalf("normalized mode %q, want %q", st.Spec.Mode, ModeAsync)
	}
	final := waitTerminal(t, s, st.ID, 30*time.Second)
	if final.State != StateDone {
		t.Fatalf("state %s, error %q", final.State, final.Error)
	}
	if final.Committed != 200 {
		t.Errorf("committed=%d, want 200 (one per node)", final.Committed)
	}
	if final.Rounds == 0 || final.CurrentM == 0 {
		t.Errorf("missing live telemetry: %+v", final)
	}
	if !strings.Contains(final.Result, "drained") {
		t.Errorf("result %q missing drain confirmation", final.Result)
	}
	if len(final.Trajectory) != final.Rounds {
		t.Errorf("trajectory has %d points, want %d", len(final.Trajectory), final.Rounds)
	}
	var committed int64
	for i, p := range final.Trajectory {
		if p.Round != i {
			t.Errorf("trajectory[%d].Round = %d, want sample index %d", i, p.Round, i)
		}
		committed += int64(p.Committed)
	}
	if committed != final.Committed {
		t.Errorf("trajectory commits %d != counter %d", committed, final.Committed)
	}
	if final.ControllerCounters == nil {
		t.Error("hybrid controller telemetry missing")
	}
}

// TestAsyncSpecValidation: async mode is gated to workloads that
// support it and commit_window is async-only.
func TestAsyncSpecValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())

	cases := []JobSpec{
		{Workload: "mesh", Controller: "hybrid", Mode: ModeAsync},       // app workload
		{Workload: "des", Controller: "hybrid", Mode: ModeAsync},        // ordered
		{Workload: "cc", Controller: "hybrid", Mode: "turbo"},           // unknown mode
		{Workload: "cc", Controller: "hybrid", CommitWindow: 32},        // window without async
		{Workload: "cc", Controller: "hybrid", Mode: ModeAsync, CommitWindow: -1},
		{Workload: "cc", Controller: "hybrid", Mode: ModeAsync, CommitWindow: 1 << 20},
	}
	for _, spec := range cases {
		_, err := s.Submit(spec)
		var se *SpecError
		if !errors.As(err, &se) {
			t.Errorf("spec %+v: got %v, want *SpecError", spec, err)
		}
	}

	// Explicit round mode and async with a fixed window both pass.
	for _, spec := range []JobSpec{
		{Workload: "mesh", Controller: "hybrid", Size: 64, Mode: ModeRound},
		{Workload: "cc", Controller: "hybrid", Size: 64, Mode: ModeAsync, CommitWindow: 8},
	} {
		if _, err := s.Submit(spec); err != nil {
			t.Errorf("spec %+v rejected: %v", spec, err)
		}
	}
}

// TestAsyncDefaultMode: with DefaultMode async, supporting workloads
// run barrier-free while the rest silently keep the round loop.
func TestAsyncDefaultMode(t *testing.T) {
	s := New(Config{Workers: 1, DefaultMode: ModeAsync})
	defer s.Shutdown(context.Background())

	cc, err := s.Submit(ccSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if cc.Spec.Mode != ModeAsync {
		t.Errorf("cc job mode %q, want %q", cc.Spec.Mode, ModeAsync)
	}
	mesh, err := s.Submit(JobSpec{Workload: "mesh", Controller: "hybrid", Size: 64})
	if err != nil {
		t.Fatal(err)
	}
	if mesh.Spec.Mode != ModeRound {
		t.Errorf("mesh job mode %q, want fallback %q", mesh.Spec.Mode, ModeRound)
	}
	for _, id := range []string{cc.ID, mesh.ID} {
		if final := waitTerminal(t, s, id, 30*time.Second); final.State != StateDone {
			t.Errorf("job %s: state %s, error %q", id, final.State, final.Error)
		}
	}
}

// TestAsyncDeadlineCancelsSpinJob: the never-draining spin workload in
// async mode terminates at its wall-clock deadline — cancellation
// reaches the in-flight semaphore, not a round barrier.
func TestAsyncDeadlineCancelsSpinJob(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())

	spec := spinSpec(1, 150*time.Millisecond)
	spec.Mode = ModeAsync
	start := time.Now()
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateCanceled, 5*time.Second)
	fin, _ := s.Job(st.ID)
	if fin.Reason != ReasonDeadline {
		t.Fatalf("reason %q, want %q (error: %s)", fin.Reason, ReasonDeadline, fin.Error)
	}
	if !strings.Contains(fin.Error, "commits") {
		t.Errorf("error %q should report progress in commits", fin.Error)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("async deadline job took %v to terminate", elapsed)
	}
	if fin.Committed == 0 {
		t.Error("async spin job committed nothing before its deadline")
	}
}

// TestAsyncCancelRunningJob: a user cancel stops an async job promptly
// with the user-cancel reason.
func TestAsyncCancelRunningJob(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())

	spec := spinSpec(1, 30*time.Second)
	spec.Mode = ModeAsync
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateRunning, 2*time.Second)
	if _, err := s.Cancel(st.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	waitState(t, s, st.ID, StateCanceled, 5*time.Second)
	fin, _ := s.Job(st.ID)
	if fin.Reason != ReasonUserCancel {
		t.Fatalf("reason %q, want %q", fin.Reason, ReasonUserCancel)
	}
}

// TestAsyncDurableRestore: an async job's pseudo-round trajectory and
// counters survive a clean restart, with commit-count checkpoints
// (CheckpointCommits small enough to force several mid-run records).
func TestAsyncDurableRestore(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Workers: 1, QueueCap: 8, StateDir: dir,
		Fsync: journal.SyncAlways, CheckpointCommits: 32,
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	st, err := s.Submit(asyncCCSpec(3))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	want := waitTerminal(t, s, st.ID, 30*time.Second)
	if want.State != StateDone {
		t.Fatalf("state %s, error %q", want.State, want.Error)
	}
	want, _ = s.Job(st.ID)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	s2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Shutdown(context.Background())
	got, ok := s2.Job(st.ID)
	if !ok {
		t.Fatalf("async job lost across restart")
	}
	if got.State != want.State || got.Rounds != want.Rounds ||
		got.Committed != want.Committed || got.Result != want.Result {
		t.Errorf("restored %+v, want %+v", got, want)
	}
	if got.Spec.Mode != ModeAsync {
		t.Errorf("restored spec mode %q, want %q", got.Spec.Mode, ModeAsync)
	}
	if len(got.Trajectory) != len(want.Trajectory) {
		t.Errorf("trajectory %d points after restart, want %d",
			len(got.Trajectory), len(want.Trajectory))
	}
}
