package service

import (
	"encoding/json"
	"time"

	"repro/internal/faultinject"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("100ms") and unmarshals from either a duration string or a bare
// number of milliseconds, so hand-written JSON specs stay readable.
type Duration time.Duration

// MarshalJSON renders the duration as its Go string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "250ms"-style strings or numeric milliseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return err
		}
		*d = Duration(v)
		return nil
	}
	var ms float64
	if err := json.Unmarshal(b, &ms); err != nil {
		return err
	}
	*d = Duration(ms * float64(time.Millisecond))
	return nil
}

// FaultSpec is the wire-level fault-injection request carried by a
// JobSpec. Only the synthetic workloads ("cc", "spin") accept one; see
// workload.SupportsFault. Rates are per-task probabilities in [0,1].
type FaultSpec struct {
	// Seed drives the fault plan; 0 inherits the job's seed.
	Seed uint64 `json:"seed,omitempty"`
	// PanicRate is the fraction of tasks that panic transiently.
	PanicRate float64 `json:"panic_rate,omitempty"`
	// ErrorRate is the fraction of tasks that error transiently.
	ErrorRate float64 `json:"error_rate,omitempty"`
	// PoisonRate is the fraction of tasks that fail every attempt and
	// end up quarantined (the job finishes done-degraded).
	PoisonRate float64 `json:"poison_rate,omitempty"`
	// TransientAttempts bounds how many attempts a transient victim
	// fails; it is clamped to the job's retry budget. 0 defaults to 1
	// when any transient rate is set.
	TransientAttempts int `json:"transient_attempts,omitempty"`
	// DelayRate is the fraction of tasks that stall Delay per attempt.
	DelayRate float64 `json:"delay_rate,omitempty"`
	// Delay is the per-attempt stall for delayed tasks.
	Delay Duration `json:"delay,omitempty"`
}

// config lowers the wire spec to the injector's Config, defaulting the
// fault seed to the job seed so a job spec is self-contained.
func (f *FaultSpec) config(jobSeed uint64) *faultinject.Config {
	if f == nil {
		return nil
	}
	seed := f.Seed
	if seed == 0 {
		seed = jobSeed
	}
	ta := f.TransientAttempts
	if ta == 0 && f.PanicRate+f.ErrorRate > 0 {
		ta = 1
	}
	return &faultinject.Config{
		Seed:              seed,
		PanicRate:         f.PanicRate,
		ErrorRate:         f.ErrorRate,
		PoisonRate:        f.PoisonRate,
		TransientAttempts: ta,
		DelayRate:         f.DelayRate,
		Delay:             time.Duration(f.Delay),
	}
}
