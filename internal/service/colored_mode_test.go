package service

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// stableSpec is the stable-conflict workload run in colored mode — the
// configuration where the hybrid speculative→colored drive reaches its
// lock-free steady state.
func stableSpec(seed uint64) JobSpec {
	return JobSpec{Workload: "stable", Controller: "hybrid", Size: 200,
		Seed: seed, Parallel: 2, Mode: ModeColored}
}

// TestColoredJobRunsToCompletion: a colored stable job drains
// end-to-end, reaches the colored phase, records colored rounds in its
// trajectory and phase counters in its status, and passes the oracle.
func TestColoredJobRunsToCompletion(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 4})
	defer s.Shutdown(context.Background())

	st, err := s.Submit(stableSpec(1))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st.Spec.Mode != ModeColored {
		t.Fatalf("normalized mode %q, want %q", st.Spec.Mode, ModeColored)
	}
	final := waitTerminal(t, s, st.ID, 30*time.Second)
	if final.State != StateDone {
		t.Fatalf("state %s, error %q", final.State, final.Error)
	}
	if !strings.Contains(final.Result, "chains") {
		t.Errorf("result %q missing the stable oracle detail", final.Result)
	}
	if final.ColoredRounds == 0 || final.Colorings == 0 {
		t.Fatalf("job never reached the colored phase: %+v", final)
	}
	var coloredPoints int
	var committed int64
	for _, p := range final.Trajectory {
		committed += int64(p.Committed)
		if p.Colored {
			coloredPoints++
			if p.Aborted != 0 {
				t.Errorf("colored round %d aborted %d tasks", p.Round, p.Aborted)
			}
		}
	}
	if coloredPoints == 0 {
		t.Error("no colored points in the trajectory")
	}
	if committed != final.Committed {
		t.Errorf("trajectory commits %d != counter %d", committed, final.Committed)
	}

	// The phase counters surface in /metrics.
	var b strings.Builder
	if err := s.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	m := b.String()
	for _, want := range []string{
		"specd_colored_rounds_total", "specd_colorings_total", "specd_colored_fallbacks_total",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %s", want)
		}
	}
	if strings.Contains(m, "specd_colored_rounds_total 0\n") {
		t.Error("specd_colored_rounds_total still zero after a colored job")
	}
}

// TestColoredSpecValidation: colored mode is gated to workloads with
// colored support, and unknown modes still fail.
func TestColoredSpecValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())

	for _, spec := range []JobSpec{
		{Workload: "boruvka", Controller: "hybrid", Mode: ModeColored}, // unkeyed tasks
		{Workload: "des", Controller: "hybrid", Mode: ModeColored},     // ordered
		{Workload: "spin", Controller: "hybrid", Mode: ModeColored},    // async-only
	} {
		_, err := s.Submit(spec)
		var se *SpecError
		if !errors.As(err, &se) {
			t.Errorf("spec %+v: got %v, want *SpecError", spec, err)
		}
	}
	for _, wl := range []string{"stable", "cc", "mesh", "cluster"} {
		if _, err := s.Submit(JobSpec{Workload: wl, Controller: "hybrid", Size: 64, Mode: ModeColored}); err != nil {
			t.Errorf("colored %s rejected: %v", wl, err)
		}
	}
}

// TestColoredDefaultMode: with DefaultMode colored, supporting
// workloads run hybrid while the rest silently keep the round loop.
func TestColoredDefaultMode(t *testing.T) {
	s := New(Config{Workers: 1, DefaultMode: ModeColored})
	defer s.Shutdown(context.Background())

	sp := stableSpec(1)
	sp.Mode = ""
	stable, err := s.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	if stable.Spec.Mode != ModeColored {
		t.Errorf("stable job mode %q, want %q", stable.Spec.Mode, ModeColored)
	}
	boruvka, err := s.Submit(JobSpec{Workload: "boruvka", Controller: "hybrid", Size: 64})
	if err != nil {
		t.Fatal(err)
	}
	if boruvka.Spec.Mode != ModeRound {
		t.Errorf("boruvka job mode %q, want fallback %q", boruvka.Spec.Mode, ModeRound)
	}
	for _, id := range []string{stable.ID, boruvka.ID} {
		if final := waitTerminal(t, s, id, 30*time.Second); final.State != StateDone {
			t.Errorf("job %s: state %s, error %q", id, final.State, final.Error)
		}
	}
}

// TestColoredCancelRunningJob: a user cancel stops a colored job at the
// next round boundary with the user-cancel reason.
func TestColoredCancelRunningJob(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())

	sp := stableSpec(1)
	sp.Size = 2000
	st, err := s.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateRunning, 2*time.Second)
	if _, err := s.Cancel(st.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	waitState(t, s, st.ID, StateCanceled, 10*time.Second)
	fin, _ := s.Job(st.ID)
	if fin.Reason != ReasonUserCancel {
		t.Fatalf("reason %q, want %q", fin.Reason, ReasonUserCancel)
	}
}
