package service

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// ccSpec is a small synthetic job that drains quickly.
func ccSpec(seed uint64) JobSpec {
	return JobSpec{Workload: "cc", Controller: "hybrid", Size: 200, Seed: seed, Parallel: 1}
}

func waitTerminal(t *testing.T, s *Service, id string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	st, _ := s.Job(id)
	t.Fatalf("job %s not terminal after %v (state %s)", id, timeout, st.State)
	return JobStatus{}
}

func TestJobRunsToCompletion(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 4})
	defer s.Shutdown(context.Background())

	st, err := s.Submit(ccSpec(1))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	final := waitTerminal(t, s, st.ID, 30*time.Second)
	if final.State != StateDone {
		t.Fatalf("state %s, error %q", final.State, final.Error)
	}
	if final.Committed != 200 {
		t.Errorf("committed=%d, want 200 (one per node)", final.Committed)
	}
	if final.Rounds == 0 || final.CurrentM == 0 {
		t.Errorf("missing live telemetry: %+v", final)
	}
	if !strings.Contains(final.Result, "drained") {
		t.Errorf("result %q missing drain confirmation", final.Result)
	}
	if len(final.Trajectory) != final.Rounds {
		t.Errorf("trajectory has %d points, want %d", len(final.Trajectory), final.Rounds)
	}
	var committed int64
	for _, p := range final.Trajectory {
		committed += int64(p.Committed)
	}
	if committed != final.Committed {
		t.Errorf("trajectory commits %d != counter %d", committed, final.Committed)
	}
	if final.ControllerCounters == nil {
		t.Error("hybrid controller telemetry missing")
	}
}

func TestSpecValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())

	cases := []JobSpec{
		{Workload: "nope", Controller: "hybrid"},
		{Workload: "cc", Controller: "nope"},
		{Workload: "cc", Controller: "fixed"},             // missing m
		{Workload: "cc", Controller: "hybrid", Rho: 1.5},  // rho out of range
		{Workload: "cc", Controller: "hybrid", Size: -3},  // bad size
		{Workload: "cc", Controller: "hybrid", Parallel: 9999},
	}
	for _, spec := range cases {
		_, err := s.Submit(spec)
		var se *SpecError
		if !errors.As(err, &se) {
			t.Errorf("spec %+v: got %v, want *SpecError", spec, err)
		}
	}
}

// TestBackpressureNoLostJobs floods a tiny queue from many goroutines:
// every submission must either be accepted (and eventually finish) or
// be rejected with ErrQueueFull — and accepted + rejected must account
// for every attempt.
func TestBackpressureNoLostJobs(t *testing.T) {
	s := New(Config{Workers: 2, QueueCap: 2})
	defer s.Shutdown(context.Background())

	const n = 32
	var mu sync.Mutex
	var acceptedIDs []string
	var rejected int
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := s.Submit(ccSpec(uint64(i + 1)))
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				acceptedIDs = append(acceptedIDs, st.ID)
			case errors.Is(err, ErrQueueFull):
				rejected++
			default:
				t.Errorf("unexpected submit error: %v", err)
			}
		}(i)
	}
	wg.Wait()

	if len(acceptedIDs)+rejected != n {
		t.Fatalf("accounting broken: %d accepted + %d rejected != %d", len(acceptedIDs), rejected, n)
	}
	if len(acceptedIDs) < 2 {
		t.Fatalf("expected at least workers+queue acceptances, got %d", len(acceptedIDs))
	}
	for _, id := range acceptedIDs {
		st := waitTerminal(t, s, id, 30*time.Second)
		if st.State != StateDone {
			t.Errorf("job %s: state %s (%s)", id, st.State, st.Error)
		}
	}
	if len(s.Jobs()) != len(acceptedIDs) {
		t.Errorf("job list has %d entries, want %d", len(s.Jobs()), len(acceptedIDs))
	}
}

// TestShutdownLeavesQueuedJobQueued fills the single worker with a slow
// job plus a queued one, then shuts down: the running job must be
// canceled after a completed round, the queued job must stay queued,
// and new submissions must be refused.
func TestShutdownLeavesQueuedJobQueued(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 4})

	// A big mesh job at m=2: tens of thousands of tiny rounds (~4s
	// serially), so the shutdown reliably lands mid-run while each
	// in-flight round stays cheap to finish.
	slow := JobSpec{Workload: "mesh", Controller: "fixed", FixedM: 2, Size: 60000, Parallel: 1}
	running, err := s.Submit(slow)
	if err != nil {
		t.Fatalf("submit slow: %v", err)
	}
	queued, err := s.Submit(ccSpec(1))
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}

	// Wait until the slow job has demonstrably made round progress.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, _ := s.Job(running.ID)
		if st.State == StateRunning && st.Rounds >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slow job never progressed: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	st, _ := s.Job(running.ID)
	if st.State != StateCanceled {
		t.Errorf("running job state %s, want canceled", st.State)
	}
	if st.Rounds == 0 || st.Launched == 0 {
		t.Errorf("canceled job lost its progress: %+v", st)
	}
	// The trajectory's last round must be fully accounted (launched ==
	// committed + aborted): the in-flight round completed.
	if n := len(st.Trajectory); n > 0 {
		last := st.Trajectory[n-1]
		if last.Launched != last.Committed+last.Aborted {
			t.Errorf("last round not fully accounted: %+v", last)
		}
	}
	qst, _ := s.Job(queued.ID)
	if qst.State != StateQueued {
		t.Errorf("queued job state %s, want queued", qst.State)
	}
	if qst.Rounds != 0 {
		t.Errorf("queued job ran %d rounds during shutdown", qst.Rounds)
	}

	if _, err := s.Submit(ccSpec(2)); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after shutdown: %v, want ErrDraining", err)
	}
	// Shutdown is idempotent.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}

func TestVerificationFailureMarksJobFailed(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())

	// A one-round cap cannot drain the graph → round-cap failure path.
	st, err := s.Submit(JobSpec{Workload: "cc", Controller: "hybrid", Size: 300, MaxRounds: 1, Parallel: 1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	final := waitTerminal(t, s, st.ID, 10*time.Second)
	if final.State != StateFailed {
		t.Fatalf("state %s, want failed", final.State)
	}
	if !strings.Contains(final.Error, "round cap") {
		t.Errorf("error %q missing round-cap explanation", final.Error)
	}
}

func TestHistoryRingKeepsTail(t *testing.T) {
	s := New(Config{Workers: 1, HistoryCap: 8})
	defer s.Shutdown(context.Background())

	st, err := s.Submit(JobSpec{Workload: "cc", Controller: "fixed", FixedM: 4, Size: 400, Parallel: 1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	final := waitTerminal(t, s, st.ID, 30*time.Second)
	if final.State != StateDone {
		t.Fatalf("state %s (%s)", final.State, final.Error)
	}
	if final.Rounds <= 8 {
		t.Fatalf("test needs >8 rounds, got %d", final.Rounds)
	}
	if len(final.Trajectory) != 8 {
		t.Fatalf("ring kept %d points, want 8", len(final.Trajectory))
	}
	// The ring must hold the *last* 8 rounds, in order.
	for i, p := range final.Trajectory {
		if want := final.Rounds - 8 + i; p.Round != want {
			t.Errorf("trajectory[%d].Round = %d, want %d", i, p.Round, want)
		}
	}
}
