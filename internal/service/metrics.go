package service

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteMetrics renders the service state in Prometheus text exposition
// format (version 0.0.4): queue depth, jobs by state, cumulative
// rounds/launches/commits/aborts across all jobs, admission counters,
// and per-job conflict-ratio and current-m gauges.
//
// Totals are aggregated from the per-job records at scrape time, so a
// running job's in-flight progress is visible between rounds.
func (s *Service) WriteMetrics(w io.Writer) error {
	jobs := s.Jobs()

	byState := make(map[State]int, len(States()))
	var rounds, launched, committed, aborted, failed, poisoned int64
	var coloredRounds, colorings, fallbacks int64
	for _, j := range jobs {
		byState[j.State]++
		rounds += int64(j.Rounds)
		launched += j.Launched
		committed += j.Committed
		aborted += j.Aborted
		failed += j.Failed
		poisoned += j.Poisoned
		coloredRounds += int64(j.ColoredRounds)
		colorings += int64(j.Colorings)
		fallbacks += int64(j.Fallbacks)
	}

	var b strings.Builder
	header := func(name, help, typ string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	header("specd_queue_depth", "Jobs waiting in the admission queue.", "gauge")
	fmt.Fprintf(&b, "specd_queue_depth %d\n", s.QueueDepth())

	header("specd_up", "1 while serving, 0 while draining.", "gauge")
	up := 1
	if s.Draining() {
		up = 0
	}
	fmt.Fprintf(&b, "specd_up %d\n", up)

	header("specd_jobs", "Jobs by lifecycle state.", "gauge")
	for _, st := range States() {
		fmt.Fprintf(&b, "specd_jobs{state=%q} %d\n", st, byState[st])
	}

	header("specd_jobs_submitted_total", "Jobs accepted into the queue.", "counter")
	fmt.Fprintf(&b, "specd_jobs_submitted_total %d\n", s.submitted.Load())
	header("specd_jobs_rejected_total", "Jobs rejected by admission control.", "counter")
	fmt.Fprintf(&b, "specd_jobs_rejected_total %d\n", s.rejected.Load())

	tenants := s.TenantStats()
	header("specd_tenant_queue_depth", "Queued jobs by tenant.", "gauge")
	for _, t := range tenants {
		fmt.Fprintf(&b, "specd_tenant_queue_depth{tenant=%q} %d\n", t.Name, t.Queued)
	}
	header("specd_tenant_submitted_total", "Jobs admitted by tenant.", "counter")
	for _, t := range tenants {
		fmt.Fprintf(&b, "specd_tenant_submitted_total{tenant=%q} %d\n", t.Name, t.Submitted)
	}
	header("specd_tenant_completed_total", "Jobs finished in state done by tenant.", "counter")
	for _, t := range tenants {
		fmt.Fprintf(&b, "specd_tenant_completed_total{tenant=%q} %d\n", t.Name, t.Completed)
	}
	header("specd_tenant_rejected_total", "Admission rejections by tenant and class.", "counter")
	for _, t := range tenants {
		for _, class := range []string{RejectQueue, RejectTenant, RejectQuota, RejectShed, RejectDeadline} {
			if n := t.Rejected[class]; n > 0 {
				fmt.Fprintf(&b, "specd_tenant_rejected_total{tenant=%q,class=%q} %d\n", t.Name, class, n)
			}
		}
	}

	header("specd_preemptions_total", "Barrier pauses forced by higher-priority arrivals.", "counter")
	fmt.Fprintf(&b, "specd_preemptions_total %d\n", s.Preemptions())
	level, p99, shedTotal, _ := s.BrownoutInfo()
	header("specd_brownout_level", "Highest priority class currently shed by brownout (0 = healthy).", "gauge")
	fmt.Fprintf(&b, "specd_brownout_level %d\n", level)
	header("specd_brownout_shed_total", "Submissions shed by brownout.", "counter")
	fmt.Fprintf(&b, "specd_brownout_shed_total %d\n", shedTotal)
	header("specd_queue_wait_p99_seconds", "Last evaluated queue-wait p99 (brownout window).", "gauge")
	fmt.Fprintf(&b, "specd_queue_wait_p99_seconds %s\n", formatFloat(p99))

	header("specd_rounds_total", "Executor rounds run across all jobs.", "counter")
	fmt.Fprintf(&b, "specd_rounds_total %d\n", rounds)
	header("specd_launched_total", "Speculative task attempts across all jobs.", "counter")
	fmt.Fprintf(&b, "specd_launched_total %d\n", launched)
	header("specd_commits_total", "Committed tasks across all jobs.", "counter")
	fmt.Fprintf(&b, "specd_commits_total %d\n", committed)
	header("specd_aborts_total", "Aborted task attempts across all jobs.", "counter")
	fmt.Fprintf(&b, "specd_aborts_total %d\n", aborted)
	header("specd_task_failures_total", "Panicked or errored task attempts across all jobs.", "counter")
	fmt.Fprintf(&b, "specd_task_failures_total %d\n", failed)
	header("specd_poisoned_tasks_total", "Tasks quarantined after exhausting their retry budget.", "counter")
	fmt.Fprintf(&b, "specd_poisoned_tasks_total %d\n", poisoned)
	header("specd_colored_rounds_total", "Colored (lock-free) super-rounds run across all jobs.", "counter")
	fmt.Fprintf(&b, "specd_colored_rounds_total %d\n", coloredRounds)
	header("specd_colorings_total", "Speculative-to-colored phase transitions across all jobs.", "counter")
	fmt.Fprintf(&b, "specd_colorings_total %d\n", colorings)
	header("specd_colored_fallbacks_total", "Colored-to-speculative staleness fallbacks across all jobs.", "counter")
	fmt.Fprintf(&b, "specd_colored_fallbacks_total %d\n", fallbacks)
	header("specd_inflight_jobs", "Jobs currently executing rounds.", "gauge")
	fmt.Fprintf(&b, "specd_inflight_jobs %d\n", s.Running())

	header("specd_job_conflict_ratio", "Per-job cumulative conflict ratio (aborts/launches).", "gauge")
	for _, j := range jobs {
		fmt.Fprintf(&b, "specd_job_conflict_ratio{job=%q,workload=%q,controller=%q} %s\n",
			j.ID, j.Spec.Workload, j.Spec.Controller, formatFloat(j.ConflictRatio))
	}

	header("specd_job_mean_conflict_ratio", "Per-job unweighted mean of per-round conflict ratios (r-bar).", "gauge")
	for _, j := range jobs {
		fmt.Fprintf(&b, "specd_job_mean_conflict_ratio{job=%q,workload=%q,controller=%q} %s\n",
			j.ID, j.Spec.Workload, j.Spec.Controller, formatFloat(j.MeanConflictRatio))
	}

	header("specd_job_m", "Per-job current processor allocation m.", "gauge")
	for _, j := range jobs {
		fmt.Fprintf(&b, "specd_job_m{job=%q,workload=%q,controller=%q} %d\n",
			j.ID, j.Spec.Workload, j.Spec.Controller, j.CurrentM)
	}

	jst := s.JournalStats()
	header("specd_journal_records_total", "Records appended to the write-ahead journal.", "counter")
	fmt.Fprintf(&b, "specd_journal_records_total %d\n", jst.Records)
	header("specd_journal_fsyncs_total", "Fsync batches issued by the journal (group commit).", "counter")
	fmt.Fprintf(&b, "specd_journal_fsyncs_total %d\n", jst.Fsyncs)
	deg, _ := s.DegradedInfo()
	header("specd_degraded", "1 while the journal is faulted and submits are refused.", "gauge")
	degVal := 0
	if deg {
		degVal = 1
	}
	fmt.Fprintf(&b, "specd_degraded %d\n", degVal)
	header("specd_degraded_seconds_total", "Total seconds spent in journal-degraded read-only mode.", "counter")
	fmt.Fprintf(&b, "specd_degraded_seconds_total %s\n", formatFloat(s.DegradedSeconds()))
	header("specd_recovered_jobs_total", "Jobs restarted from spec by crash recovery at startup.", "counter")
	fmt.Fprintf(&b, "specd_recovered_jobs_total %d\n", s.Recovered())
	header("specd_handoff_jobs_total", "Jobs accepted from dead cluster members via handoff.", "counter")
	fmt.Fprintf(&b, "specd_handoff_jobs_total %d\n", s.HandedOff())

	header("specd_uptime_seconds", "Seconds since the service started.", "gauge")
	fmt.Fprintf(&b, "specd_uptime_seconds %s\n", formatFloat(s.Uptime().Seconds()))

	_, err := io.WriteString(w, b.String())
	return err
}

// formatFloat renders a float the way Prometheus clients expect
// (shortest round-trip representation, no exponent surprises for the
// common small values).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
