package service

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/journal"
)

// durableCfg is a small single-worker durable config rooted at dir.
func durableCfg(dir string) Config {
	return Config{Workers: 1, QueueCap: 8, StateDir: dir, Fsync: journal.SyncAlways}
}

func TestRestartRestoresCompletedJobs(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(durableCfg(dir))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	want := make(map[string]JobStatus)
	var order []string
	for seed := uint64(1); seed <= 3; seed++ {
		st, err := s.Submit(ccSpec(seed))
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		order = append(order, st.ID)
	}
	for _, id := range order {
		final := waitTerminal(t, s, id, 30*time.Second)
		if final.State != StateDone {
			t.Fatalf("job %s: state %s, error %q", id, final.State, final.Error)
		}
		want[id], _ = s.Job(id)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	s2, err := Open(durableCfg(dir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Shutdown(context.Background())

	jobs := s2.Jobs()
	if len(jobs) != len(order) {
		t.Fatalf("restored %d jobs, want %d", len(jobs), len(order))
	}
	for i, st := range jobs {
		if st.ID != order[i] {
			t.Errorf("jobs[%d] = %s, want %s (submit order)", i, st.ID, order[i])
		}
	}
	for _, id := range order {
		got, ok := s2.Job(id)
		if !ok {
			t.Fatalf("job %s lost across restart", id)
		}
		w := want[id]
		if got.State != w.State || got.Rounds != w.Rounds || got.Committed != w.Committed ||
			got.Result != w.Result || got.MeanConflictRatio != w.MeanConflictRatio {
			t.Errorf("job %s restored as %+v, want %+v", id, got, w)
		}
		if len(got.Trajectory) != len(w.Trajectory) {
			t.Errorf("job %s trajectory has %d points after restart, want %d",
				id, len(got.Trajectory), len(w.Trajectory))
		}
	}

	// nextID continues past the restored jobs: no id reuse.
	st, err := s2.Submit(ccSpec(9))
	if err != nil {
		t.Fatalf("submit after restart: %v", err)
	}
	if _, dup := want[st.ID]; dup {
		t.Fatalf("restarted service reused job id %s", st.ID)
	}
	if got := waitTerminal(t, s2, st.ID, 30*time.Second); got.State != StateDone {
		t.Fatalf("post-restart job: state %s, error %q", got.State, got.Error)
	}
}

// TestCrashRecoveryRerunsInterruptedJob crafts the WAL a crashed
// process would leave behind — submitted, started, one checkpoint, no
// terminal record — and asserts the job is re-run from spec with its
// checkpointed trajectory prefix preserved.
func TestCrashRecoveryRerunsInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	jnl, err := journal.Open(dir, journal.Options{Fsync: journal.SyncAlways})
	if err != nil {
		t.Fatalf("journal open: %v", err)
	}
	spec := ccSpec(7)
	spec.Rho = 0.25
	spec.MaxRounds = 1 << 30
	append1 := func(rec walRecord) {
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if err := jnl.Append(b); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	now := time.Now()
	append1(walRecord{Type: recSubmitted, ID: "j1", At: now, Spec: &spec})
	append1(walRecord{Type: recStarted, ID: "j1", At: now, Attempt: 1})
	prefix := []RoundPoint{
		{Round: 0, M: 2, Launched: 10, Committed: 8, Aborted: 2, R: 0.2},
		{Round: 1, M: 3, Launched: 12, Committed: 9, Aborted: 3, R: 0.25},
		{Round: 2, M: 4, Launched: 14, Committed: 11, Aborted: 3, R: 0.21},
	}
	append1(walRecord{
		Type: recCheckpoint, ID: "j1", At: now, Attempt: 1,
		Rounds: 3, CurrentM: 4, Pending: 170,
		Launched: 36, Committed: 28, Aborted: 8, RSum: 0.66,
		Points: prefix,
	})
	// A started record with no submitted record: the spec never became
	// durable, so recovery must drop it rather than re-run garbage.
	append1(walRecord{Type: recStarted, ID: "j9", At: now, Attempt: 1})
	if err := jnl.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}

	s, err := Open(durableCfg(dir))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Shutdown(context.Background())

	if got := s.Recovered(); got != 1 {
		t.Errorf("Recovered() = %d, want 1", got)
	}
	if _, ok := s.Job("j9"); ok {
		t.Errorf("spec-less stub j9 survived recovery")
	}

	final := waitTerminal(t, s, "j1", 30*time.Second)
	if final.State != StateDone {
		t.Fatalf("recovered job: state %s, error %q", final.State, final.Error)
	}
	if final.Attempt != 2 {
		t.Errorf("attempt = %d, want 2 (bumped by recovery)", final.Attempt)
	}
	// The pre-crash prefix stays at the head of the trajectory, tagged
	// attempt 0 (== 1); the rerun's points are tagged attempt 2.
	if len(final.Trajectory) <= len(prefix) {
		t.Fatalf("trajectory has %d points, want > %d (prefix + rerun)", len(final.Trajectory), len(prefix))
	}
	for i, p := range final.Trajectory[:len(prefix)] {
		if p.Attempt != 0 || p.Round != prefix[i].Round || p.M != prefix[i].M {
			t.Errorf("prefix point %d = %+v, want %+v", i, p, prefix[i])
		}
	}
	for i, p := range final.Trajectory[len(prefix):] {
		if p.Attempt != 2 {
			t.Errorf("rerun point %d = %+v, want attempt 2", i, p)
		}
		if p.Round != i {
			t.Errorf("rerun point %d has round %d, want %d (counters reset per attempt)", i, p.Round, i)
		}
	}
	// Attempt-local counters describe the rerun only, not crash + rerun.
	if final.Committed != 200 {
		t.Errorf("committed = %d, want 200 (one per node, not double-counted)", final.Committed)
	}

	// The terminal record is durable: a further restart restores the
	// finished job without re-running it.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	s2, err := Open(durableCfg(dir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Shutdown(context.Background())
	if got := s2.Recovered(); got != 0 {
		t.Errorf("second restart Recovered() = %d, want 0", got)
	}
	st, ok := s2.Job("j1")
	if !ok || st.State != StateDone || st.Attempt != 2 {
		t.Errorf("after second restart: ok=%v state=%s attempt=%d", ok, st.State, st.Attempt)
	}
	if len(st.Trajectory) != len(final.Trajectory) {
		t.Errorf("trajectory shrank across restart: %d != %d", len(st.Trajectory), len(final.Trajectory))
	}
}

// TestRecoveryRequeuesQueuedJobs: a job journaled as submitted but
// never started re-enqueues and runs after restart.
func TestRecoveryRequeuesQueuedJobs(t *testing.T) {
	dir := t.TempDir()
	jnl, err := journal.Open(dir, journal.Options{Fsync: journal.SyncAlways})
	if err != nil {
		t.Fatalf("journal open: %v", err)
	}
	spec := ccSpec(3)
	spec.Rho = 0.25
	spec.MaxRounds = 1 << 30
	b, _ := json.Marshal(walRecord{Type: recSubmitted, ID: "j1", At: time.Now(), Spec: &spec})
	if err := jnl.Append(b); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := jnl.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}

	s, err := Open(durableCfg(dir))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Shutdown(context.Background())
	if got := s.Recovered(); got != 0 {
		t.Errorf("Recovered() = %d, want 0 (queued, not interrupted)", got)
	}
	final := waitTerminal(t, s, "j1", 30*time.Second)
	if final.State != StateDone {
		t.Fatalf("requeued job: state %s, error %q", final.State, final.Error)
	}
	if final.Attempt != 1 {
		t.Errorf("attempt = %d, want 1 (never started before the crash)", final.Attempt)
	}
}

// TestCompactionEquivalence: with CompactBytes tiny enough to compact
// after every append, restart still restores the same job table —
// snapshot+journal replay is equivalent to journal-only replay.
func TestCompactionEquivalence(t *testing.T) {
	dir := t.TempDir()
	cfg := durableCfg(dir)
	cfg.CompactBytes = 1
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	var ids []string
	for seed := uint64(1); seed <= 3; seed++ {
		st, err := s.Submit(ccSpec(seed))
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		ids = append(ids, st.ID)
	}
	want := make(map[string]JobStatus)
	for _, id := range ids {
		final := waitTerminal(t, s, id, 30*time.Second)
		if final.State != StateDone {
			t.Fatalf("job %s: state %s, error %q", id, final.State, final.Error)
		}
		want[id] = final
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	s2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Shutdown(context.Background())
	for _, id := range ids {
		got, ok := s2.Job(id)
		if !ok {
			t.Fatalf("job %s lost across compacted restart", id)
		}
		w := want[id]
		if got.State != w.State || got.Rounds != w.Rounds || got.Committed != w.Committed ||
			len(got.Trajectory) != len(w.Trajectory) {
			t.Errorf("job %s restored as rounds=%d committed=%d traj=%d, want rounds=%d committed=%d traj=%d",
				id, got.Rounds, got.Committed, len(got.Trajectory),
				w.Rounds, w.Committed, len(w.Trajectory))
		}
	}
}

func TestJobsDeterministicOrder(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 32})
	defer s.Shutdown(context.Background())
	var order []string
	for seed := uint64(1); seed <= 10; seed++ {
		st, err := s.Submit(ccSpec(seed))
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		order = append(order, st.ID)
	}
	for range [5]struct{}{} {
		jobs := s.Jobs()
		if len(jobs) != len(order) {
			t.Fatalf("Jobs() returned %d, want %d", len(jobs), len(order))
		}
		for i, st := range jobs {
			if st.ID != order[i] {
				t.Fatalf("Jobs()[%d] = %s, want %s (submit order)", i, st.ID, order[i])
			}
		}
	}
}

func TestJobTail(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 4})
	defer s.Shutdown(context.Background())
	st, err := s.Submit(ccSpec(1))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	final := waitTerminal(t, s, st.ID, 30*time.Second)
	if len(final.Trajectory) < 3 {
		t.Fatalf("need >= 3 rounds for a tail test, got %d", len(final.Trajectory))
	}
	for _, tc := range []struct{ tail, want int }{
		{-1, len(final.Trajectory)},
		{0, 0},
		{2, 2},
		{len(final.Trajectory) + 10, len(final.Trajectory)},
	} {
		got, ok := s.JobTail(st.ID, tc.tail)
		if !ok {
			t.Fatalf("JobTail(%d): job vanished", tc.tail)
		}
		if len(got.Trajectory) != tc.want {
			t.Errorf("JobTail(%d): %d points, want %d", tc.tail, len(got.Trajectory), tc.want)
		}
	}
	got, _ := s.JobTail(st.ID, 2)
	wantLast := final.Trajectory[len(final.Trajectory)-2:]
	for i, p := range got.Trajectory {
		if p != wantLast[i] {
			t.Errorf("tail point %d = %+v, want %+v (newest points)", i, p, wantLast[i])
		}
	}
}

// TestCancelRecoveredJob: a recovered job can be canceled before its
// rerun starts, and the cancellation is durable.
func TestCancelRecoveredJob(t *testing.T) {
	dir := t.TempDir()
	jnl, err := journal.Open(dir, journal.Options{Fsync: journal.SyncAlways})
	if err != nil {
		t.Fatalf("journal open: %v", err)
	}
	spec := ccSpec(5)
	spec.Rho = 0.25
	spec.MaxRounds = 1 << 30
	for _, rec := range []walRecord{
		{Type: recSubmitted, ID: "j1", At: time.Now(), Spec: &spec},
		{Type: recStarted, ID: "j1", At: time.Now(), Attempt: 1},
	} {
		b, _ := json.Marshal(rec)
		if err := jnl.Append(b); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := jnl.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}

	// Workers: 0 is coerced to the default, so use a spec the single
	// worker cannot reach before we cancel: stall it behind another job.
	cfg := durableCfg(dir)
	cfg.Workers = 1
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// Cancel immediately; the worker may or may not have claimed it yet,
	// so accept either the queued-cancel or the round-barrier path.
	st, err := s.Cancel("j1")
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	_ = st
	final := waitTerminal(t, s, "j1", 30*time.Second)
	if final.State != StateCanceled && final.State != StateDone {
		t.Fatalf("state %s after cancel, want canceled (or done if the race lost)", final.State)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	s2, err := Open(durableCfg(dir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Shutdown(context.Background())
	got, ok := s2.Job("j1")
	if !ok {
		t.Fatalf("job lost across restart")
	}
	if got.State != final.State {
		t.Errorf("restored state %s, want %s (terminal states are durable)", got.State, final.State)
	}
}

// TestCorruptJournalFailsOpen: mid-log corruption must refuse startup
// with a clear error, not silently drop jobs. (A corrupt FINAL record
// is a torn write and is truncated instead; that path is covered in
// internal/journal.)
func TestCorruptJournalFailsOpen(t *testing.T) {
	dir := t.TempDir()
	jnl, err := journal.Open(dir, journal.Options{Fsync: journal.SyncAlways})
	if err != nil {
		t.Fatalf("journal open: %v", err)
	}
	spec := ccSpec(1)
	for i := 0; i < 3; i++ {
		b, _ := json.Marshal(walRecord{Type: recSubmitted, ID: fmt.Sprintf("j%d", i+1), At: time.Now(), Spec: &spec})
		if err := jnl.Append(b); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := jnl.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}
	// Flip a payload byte of the FIRST record: two intact records follow
	// it, so this is corruption, not a tear.
	if err := flipSegmentByte(dir, 12); err != nil {
		t.Fatalf("corrupting segment: %v", err)
	}
	if _, err := Open(durableCfg(dir)); err == nil {
		t.Fatalf("Open succeeded on a corrupt journal, want an error")
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("error %q does not mention corruption", err)
	}
}

// flipSegmentByte XORs the byte at off in the first non-empty wal
// segment in dir.
func flipSegmentByte(dir string, off int64) error {
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return err
	}
	sort.Strings(names)
	for _, name := range names {
		fi, err := os.Stat(name)
		if err != nil {
			return err
		}
		if fi.Size() <= off {
			continue
		}
		f, err := os.OpenFile(name, os.O_RDWR, 0)
		if err != nil {
			return err
		}
		defer f.Close()
		b := make([]byte, 1)
		if _, err := f.ReadAt(b, off); err != nil {
			return err
		}
		b[0] ^= 0xff
		_, err = f.WriteAt(b, off)
		return err
	}
	return fmt.Errorf("no wal segment longer than %d bytes in %s", off, dir)
}
