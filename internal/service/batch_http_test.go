package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/service/client"
)

// TestBatchSubmitPartialSuccess: one POST /v1/jobs:batch call admits
// each item independently — accepted jobs run, bad specs 400, and
// over-quota items 429 with their class, all in one index-aligned
// response.
func TestBatchSubmitPartialSuccess(t *testing.T) {
	_, c := startServer(t, service.Config{
		Workers: 2, QueueCap: 16,
		Tenants: []service.TenantConfig{{Name: "metered", Rate: 0.001, Burst: 1}},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	ok := service.JobSpec{Workload: "cc", Controller: "hybrid", Size: 200, Parallel: 1}
	bad := service.JobSpec{Workload: "nope"}
	metered := ok
	metered.Tenant = "metered"

	items, err := c.SubmitBatch(ctx, []service.JobSpec{ok, bad, metered, metered})
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	if len(items) != 4 {
		t.Fatalf("%d items, want 4", len(items))
	}
	if items[0].Err != nil || items[0].Status.ID == "" {
		t.Fatalf("item 0: err=%v status=%+v, want accepted", items[0].Err, items[0].Status)
	}
	var he *client.HTTPError
	if !errors.As(items[1].Err, &he) || he.StatusCode != http.StatusBadRequest {
		t.Fatalf("item 1: %v, want a 400 HTTPError", items[1].Err)
	}
	if items[2].Err != nil {
		t.Fatalf("item 2 (first metered): %v, want accepted (burst 1)", items[2].Err)
	}
	var be *client.BusyError
	if !errors.As(items[3].Err, &be) || be.Class != service.RejectQuota {
		t.Fatalf("item 3 (second metered): %v, want BusyError class %q", items[3].Err, service.RejectQuota)
	}
	if be.RetryAfter <= 0 {
		t.Fatalf("item 3 RetryAfter %v, want a computed positive wait", be.RetryAfter)
	}
	if !errors.Is(items[3].Err, client.ErrBusy) {
		t.Fatal("batch 429 item must match client.ErrBusy")
	}

	// The accepted jobs actually run.
	for _, idx := range []int{0, 2} {
		if _, err := c.Wait(ctx, items[idx].Status.ID, 5*time.Millisecond); err != nil {
			t.Fatalf("item %d never finished: %v", idx, err)
		}
	}
}

// TestBatchSubmitRejectsMalformed: an empty batch and an oversized
// batch both 400 as a whole.
func TestBatchSubmitRejectsMalformed(t *testing.T) {
	_, c := startServer(t, service.Config{Workers: 1, QueueCap: 4})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if _, err := c.SubmitBatch(ctx, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	big := make([]service.JobSpec, 257)
	for i := range big {
		big[i] = service.JobSpec{Workload: "cc", Controller: "hybrid", Size: 10, Parallel: 1}
	}
	if _, err := c.SubmitBatch(ctx, big); err == nil {
		t.Fatal("257-item batch accepted (max is 256)")
	}
}

// TestRetryAfterComputed asserts the 429 headers are dynamic: a
// rate-limited tenant's rejection carries the bucket's actual refill
// time (sub-second, shrinking as the bucket refills) instead of the
// old constant Retry-After: 1.
func TestRetryAfterComputed(t *testing.T) {
	// Rate 0.5/s, burst 1: after one admission the bucket needs ~2s to
	// refill, a window wide enough that slow CI cannot race it closed.
	_, c := startServer(t, service.Config{
		Workers: 1, QueueCap: 16,
		Tenants: []service.TenantConfig{{Name: "metered", Rate: 0.5, Burst: 1}},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	spec := service.JobSpec{Workload: "cc", Controller: "hybrid", Size: 200, Parallel: 1, Tenant: "metered"}
	if _, err := c.Submit(ctx, spec); err != nil {
		t.Fatalf("first submit: %v", err)
	}

	// Raw request so the headers themselves are visible.
	post := func() *http.Response {
		t.Helper()
		body, _ := json.Marshal(spec)
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
			c.BaseURL+"/v1/jobs", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		resp.Body.Close()
		return resp
	}
	resp := post()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get(service.RejectClassHeader); got != service.RejectQuota {
		t.Fatalf("reject class header %q, want %q", got, service.RejectQuota)
	}
	ms, err := strconv.ParseInt(resp.Header.Get(service.RetryAfterMsHeader), 10, 64)
	if err != nil {
		t.Fatalf("missing/invalid %s header: %v", service.RetryAfterMsHeader, err)
	}
	// Rate 0.5/s means the bucket refills in ~2s — a computed hint must
	// say so, where the pre-tenant behavior was a constant 1 second.
	if ms <= 1000 || ms > 2100 {
		t.Fatalf("retry-after %dms, want the computed ~2000ms for rate 0.5/s (not the old 1s constant)", ms)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("standard Retry-After header missing")
	}

	// A later rejection reflects the refilled bucket: the hint shrinks.
	time.Sleep(300 * time.Millisecond)
	resp2 := post()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit status %d, want 429", resp2.StatusCode)
	}
	ms2, err := strconv.ParseInt(resp2.Header.Get(service.RetryAfterMsHeader), 10, 64)
	if err != nil {
		t.Fatalf("third submit %s header: %v", service.RetryAfterMsHeader, err)
	}
	if ms2 >= ms {
		t.Fatalf("retry-after did not shrink as the bucket refilled: %dms then %dms", ms, ms2)
	}

	// The client surfaces the same computed wait.
	_, err = c.Submit(ctx, spec)
	var be *client.BusyError
	if !errors.As(err, &be) || be.RetryAfter <= 0 || be.RetryAfter > 2100*time.Millisecond {
		t.Fatalf("client submit err %v, want BusyError with the computed bucket wait", err)
	}
}
