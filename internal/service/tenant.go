package service

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"
)

// DefaultTenant is the tenant jobs belong to when JobSpec.Tenant is
// empty: a service with no tenant configuration behaves exactly like
// the pre-tenant single global queue.
const DefaultTenant = "default"

// Job priorities. 0 in a JobSpec means "unset" and resolves to the
// tenant's default priority (or defaultPriority); the scheduler always
// works with effective priorities in [MinPriority, MaxPriority].
const (
	MinPriority     = 1
	MaxPriority     = 9
	defaultPriority = 5
)

// TenantConfig is one tenant's admission and scheduling policy. Zero
// fields take the documented defaults, so a config file only states
// what deviates.
type TenantConfig struct {
	// Name identifies the tenant (JobSpec.Tenant). Ignored on
	// Config.TenantDefaults.
	Name string `json:"name,omitempty"`
	// Weight is the deficit-round-robin quantum: under contention a
	// weight-3 tenant dequeues 3 jobs for every 1 a weight-1 tenant
	// does. 0 defaults to 1. A negative weight marks a scavenger
	// tenant: it never starves (the scheduler grants it a fractional
	// quantum) but progresses only at a trickle under contention.
	Weight int `json:"weight,omitempty"`
	// Rate is the token-bucket refill rate in admissions per second;
	// 0 means unlimited (no bucket).
	Rate float64 `json:"rate,omitempty"`
	// Burst is the bucket capacity (max admissions in an instant).
	// 0 defaults to max(1, ceil(Rate)).
	Burst int `json:"burst,omitempty"`
	// MaxPending bounds this tenant's queued jobs so one tenant's
	// backlog can never consume the global queue. 0 defaults to the
	// global QueueCap (i.e. only the global bound applies).
	MaxPending int `json:"max_pending,omitempty"`
	// Priority is the default job priority (1..9, higher runs first)
	// when a spec does not set one. 0 defaults to 5.
	Priority int `json:"priority,omitempty"`
}

// validate rejects out-of-range tenant policy values.
func (t TenantConfig) validate() error {
	if t.Name != "" {
		if err := validTenantName(t.Name); err != nil {
			return err
		}
	}
	if t.Rate < 0 || math.IsNaN(t.Rate) || math.IsInf(t.Rate, 0) {
		return fmt.Errorf("tenant %q: rate %v invalid", t.Name, t.Rate)
	}
	if t.Burst < 0 {
		return fmt.Errorf("tenant %q: burst %d negative", t.Name, t.Burst)
	}
	if t.MaxPending < 0 {
		return fmt.Errorf("tenant %q: max_pending %d negative", t.Name, t.MaxPending)
	}
	if t.Priority < 0 || t.Priority > MaxPriority {
		return fmt.Errorf("tenant %q: priority %d out of [0,%d]", t.Name, t.Priority, MaxPriority)
	}
	return nil
}

// validTenantName bounds tenant names to the same path- and
// journal-safe alphabet as job ids.
func validTenantName(name string) error {
	if name == "" || len(name) > 64 {
		return fmt.Errorf("tenant name must be 1..64 characters")
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("tenant name %q contains %q (want [A-Za-z0-9._-])", name, c)
		}
	}
	return nil
}

// TenantsFile is the on-disk shape of the -tenants config file:
// defaults applied to tenants the file does not name, plus per-tenant
// overrides.
type TenantsFile struct {
	Defaults TenantConfig   `json:"defaults"`
	Tenants  []TenantConfig `json:"tenants"`
}

// LoadTenants reads and validates a -tenants config file.
func LoadTenants(path string) (TenantsFile, error) {
	var tf TenantsFile
	b, err := os.ReadFile(path)
	if err != nil {
		return tf, fmt.Errorf("service: reading tenants file: %w", err)
	}
	if err := json.Unmarshal(b, &tf); err != nil {
		return tf, fmt.Errorf("service: parsing tenants file %s: %w", path, err)
	}
	if err := tf.Defaults.validate(); err != nil {
		return tf, fmt.Errorf("service: tenants file %s: defaults: %w", path, err)
	}
	seen := make(map[string]bool, len(tf.Tenants))
	for i, t := range tf.Tenants {
		if t.Name == "" {
			return tf, fmt.Errorf("service: tenants file %s: tenants[%d] has no name", path, i)
		}
		if err := t.validate(); err != nil {
			return tf, fmt.Errorf("service: tenants file %s: %w", path, err)
		}
		if seen[t.Name] {
			return tf, fmt.Errorf("service: tenants file %s: duplicate tenant %q", path, t.Name)
		}
		seen[t.Name] = true
	}
	return tf, nil
}

// tokenBucket is a lazily refilled token bucket. rate <= 0 disables it
// (every take succeeds). It is guarded by the scheduler's mutex.
type tokenBucket struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(rate float64, burst int) tokenBucket {
	b := float64(burst)
	if rate > 0 && b <= 0 {
		b = math.Ceil(rate)
		if b < 1 {
			b = 1
		}
	}
	return tokenBucket{rate: rate, burst: b, tokens: b}
}

// take consumes one token. On failure it reports how long until the
// bucket refills enough for one admission — the computed Retry-After.
func (b *tokenBucket) take(now time.Time) (ok bool, wait time.Duration) {
	if b.rate <= 0 {
		return true, 0
	}
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := 1 - b.tokens
	return false, time.Duration(need / b.rate * float64(time.Second))
}
