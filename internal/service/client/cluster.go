package client

import (
	"context"
	"errors"
	"net/http"
	"net/url"
	"sync"
	"time"

	"repro/internal/rng"
	"repro/internal/service"
)

// Cluster is a cluster-aware client: it addresses a list of specd front
// doors (normally routers, but standalone nodes work too), sends each
// request to its current target, and fails over to the next target when
// the answer suggests another front door could do better: transport
// errors, client-side timeouts, and 503/504 answers (draining, journal-
// degraded, or relaying a dead owner) all rotate. Authoritative HTTP
// answers (400, 404, 409, 429) are returned without failing over; a
// rotation sticks, so pollers ride through a dead or restarting front
// door.
type Cluster struct {
	clients []*Client

	mu   sync.Mutex
	cur  int    // index of the current (last healthy) target
	last string // base URL that served the most recent request
}

// NewCluster returns a cluster client over the given base URLs, in
// preference order.
func NewCluster(targets ...string) *Cluster {
	cs := make([]*Client, len(targets))
	for i, t := range targets {
		cs[i] = New(t)
	}
	return &Cluster{clients: cs}
}

// NewClusterFrom wraps pre-built per-target clients (callers that set
// HTTPClient or Observe per target build them first).
func NewClusterFrom(clients ...*Client) *Cluster {
	return &Cluster{clients: append([]*Client(nil), clients...)}
}

// Targets lists the configured base URLs in preference order.
func (cc *Cluster) Targets() []string {
	out := make([]string, len(cc.clients))
	for i, c := range cc.clients {
		out[i] = c.BaseURL
	}
	return out
}

// LastTarget returns the base URL that served the most recent request
// ("" before the first one).
func (cc *Cluster) LastTarget() string {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.last
}

// failoverErr reports whether err warrants rotating to the next target:
// a connection-level failure, a request that timed out (the per-client
// HTTP timeout or a propagated deadline), or a 503/504 answer — the
// target is draining, journal-degraded, or fronting a dead owner, and a
// different front door may still serve. Other HTTP answers are
// authoritative and never rotate; nor does the caller's own cancel.
func failoverErr(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) {
		return false
	}
	var he *HTTPError
	if errors.As(err, &he) {
		return he.StatusCode == http.StatusServiceUnavailable ||
			he.StatusCode == http.StatusGatewayTimeout
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ue *url.Error
	return errors.As(err, &ue)
}

// each runs f against targets starting at the current one, rotating on
// failover-worthy errors until a target answers or every target has
// failed. The caller's ctx expiring stops the rotation: at that point
// no target can answer in time.
func (cc *Cluster) each(ctx context.Context, f func(c *Client) error) error {
	cc.mu.Lock()
	start := cc.cur
	cc.mu.Unlock()
	n := len(cc.clients)
	var err error
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		c := cc.clients[idx]
		err = f(c)
		if failoverErr(err) && ctx.Err() == nil {
			continue
		}
		cc.mu.Lock()
		cc.cur, cc.last = idx, c.BaseURL
		cc.mu.Unlock()
		return err
	}
	return err
}

// Submit posts a job spec to the first reachable target.
func (cc *Cluster) Submit(ctx context.Context, spec service.JobSpec) (service.JobStatus, error) {
	var st service.JobStatus
	err := cc.each(ctx, func(c *Client) (err error) {
		st, err = c.Submit(ctx, spec)
		return err
	})
	return st, err
}

// SubmitRetry submits with the same jittered 429 backoff as
// Client.SubmitRetry, failing over between targets on transport errors.
func (cc *Cluster) SubmitRetry(ctx context.Context, spec service.JobSpec, p Backoff) (service.JobStatus, RetryStats, error) {
	return submitRetry(ctx, cc.Submit, spec, p)
}

// Job fetches one job's status (full trajectory) with failover.
func (cc *Cluster) Job(ctx context.Context, id string) (service.JobStatus, error) {
	return cc.JobTail(ctx, id, -1)
}

// JobTail fetches one job's status with at most tail trajectory points,
// with failover.
func (cc *Cluster) JobTail(ctx context.Context, id string, tail int) (service.JobStatus, error) {
	var st service.JobStatus
	err := cc.each(ctx, func(c *Client) (err error) {
		st, err = c.JobTail(ctx, id, tail)
		return err
	})
	return st, err
}

// Jobs lists every job known to the first reachable target.
func (cc *Cluster) Jobs(ctx context.Context) ([]service.JobStatus, error) {
	var out []service.JobStatus
	err := cc.each(ctx, func(c *Client) (err error) {
		out, err = c.Jobs(ctx)
		return err
	})
	return out, err
}

// Cancel cancels a job through the first reachable target.
func (cc *Cluster) Cancel(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := cc.each(ctx, func(c *Client) (err error) {
		st, err = c.Cancel(ctx, id)
		return err
	})
	return st, err
}

// Health fetches /healthz from the first reachable target.
func (cc *Cluster) Health(ctx context.Context) (service.Health, error) {
	var h service.Health
	err := cc.each(ctx, func(c *Client) (err error) {
		h, err = c.Health(ctx)
		return err
	})
	return h, err
}

// Metrics fetches /metrics from the first reachable target.
func (cc *Cluster) Metrics(ctx context.Context) (string, error) {
	var m string
	err := cc.each(ctx, func(c *Client) (err error) {
		m, err = c.Metrics(ctx)
		return err
	})
	return m, err
}

// Wait polls the job with jittered intervals (see Client.Wait) until it
// is terminal or ctx expires, failing over between targets as needed.
func (cc *Cluster) Wait(ctx context.Context, id string, poll time.Duration) (service.JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	r := rng.New(uint64(time.Now().UnixNano()))
	var last service.JobStatus
	for {
		if err := ctx.Err(); err != nil {
			return last, err
		}
		st, err := cc.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.Terminal() {
			return st, nil
		}
		last = st
		wait := 3*poll/4 + time.Duration(r.Float64()*float64(poll/2))
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return last, ctx.Err()
		case <-t.C:
		}
	}
}
