// Package client is the Go client for the specd HTTP API, shared by
// cmd/specload and the end-to-end tests.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/rng"
	"repro/internal/service"
)

// ErrBusy is returned by Submit when the server applies backpressure
// (HTTP 429); the job was not enqueued and may be retried later.
var ErrBusy = errors.New("client: server busy (queue full)")

// BusyError is the concrete 429 error carrying the server's Retry-After
// hint. errors.Is(err, ErrBusy) matches it.
type BusyError struct {
	// RetryAfter is the server's suggested wait (zero if absent). The
	// millisecond-resolution X-Specd-Retry-After-Ms header is preferred
	// over the whole-second Retry-After when both are present.
	RetryAfter time.Duration
	// Class is the server's rejection class ("queue", "tenant", "quota",
	// "shed", or "deadline"), empty when the server did not say.
	Class string
}

func (e *BusyError) Error() string {
	if e.RetryAfter > 0 {
		if e.Class != "" {
			return fmt.Sprintf("client: server busy (%s, retry after %v)", e.Class, e.RetryAfter)
		}
		return fmt.Sprintf("client: server busy (retry after %v)", e.RetryAfter)
	}
	return ErrBusy.Error()
}

// Is makes errors.Is(err, ErrBusy) true for BusyError values.
func (e *BusyError) Is(target error) bool { return target == ErrBusy }

// HTTPError is a non-2xx answer other than 429 (which is BusyError),
// carrying the status code so callers can tell a retryable 503 from an
// authoritative 400/404/409. The cluster client fails over on 503/504;
// specload classifies errors with it.
type HTTPError struct {
	StatusCode int
	Status     string // e.g. "503 Service Unavailable"
	Message    string // server-provided error body, if any
}

func (e *HTTPError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("client: %s: %s", e.Status, e.Message)
	}
	return fmt.Sprintf("client: %s", e.Status)
}

// Client talks to one specd instance.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to a client with a 10s request timeout.
	HTTPClient *http.Client
	// Observe, when set, receives one callback per completed HTTP
	// request: the method, the request path, the response status (0 on a
	// transport error), the transport error itself (nil on an HTTP
	// answer), and the elapsed wall time. specload's per-target latency
	// histograms and error-class breakdown hang off this hook.
	Observe func(method, path string, status int, err error, elapsed time.Duration)
}

// New returns a client for the given base URL.
func New(baseURL string) *Client {
	return &Client{
		BaseURL:    strings.TrimRight(baseURL, "/"),
		HTTPClient: &http.Client{Timeout: 10 * time.Second},
	}
}

// roundTrip issues the request, reporting it to the Observe hook.
func (c *Client) roundTrip(req *http.Request) (*http.Response, error) {
	start := time.Now()
	resp, err := c.HTTPClient.Do(req)
	if c.Observe != nil {
		status := 0
		if err == nil {
			status = resp.StatusCode
		}
		c.Observe(req.Method, req.URL.Path, status, err, time.Since(start))
	}
	return resp, err
}

func (c *Client) do(req *http.Request, out any) (int, error) {
	resp, err := c.roundTrip(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		be := &BusyError{Class: resp.Header.Get(service.RejectClassHeader)}
		if ms, err := strconv.ParseInt(resp.Header.Get(service.RetryAfterMsHeader), 10, 64); err == nil && ms > 0 {
			be.RetryAfter = time.Duration(ms) * time.Millisecond
		} else if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			be.RetryAfter = time.Duration(secs) * time.Second
		}
		return resp.StatusCode, be
	}
	if resp.StatusCode >= 400 {
		he := &HTTPError{StatusCode: resp.StatusCode, Status: resp.Status}
		var eb struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
			he.Message = eb.Error
		}
		return resp.StatusCode, he
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			return resp.StatusCode, fmt.Errorf("client: decoding response: %w", err)
		}
	}
	return resp.StatusCode, nil
}

// Submit posts a job spec. On 429 it returns a *BusyError (matched by
// errors.Is(err, ErrBusy)) carrying the server's Retry-After hint.
func (c *Client) Submit(ctx context.Context, spec service.JobSpec) (service.JobStatus, error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return service.JobStatus{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL+"/v1/jobs", bytes.NewReader(payload))
	if err != nil {
		return service.JobStatus{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	var st service.JobStatus
	_, err = c.do(req, &st)
	return st, err
}

// BatchItem is one spec's outcome from SubmitBatch: the accepted status
// or the per-item error, mirroring what Submit would have returned for
// the same spec on its own.
type BatchItem struct {
	Status service.JobStatus
	Err    error
}

// SubmitBatch posts N specs in one POST /v1/jobs:batch call. Admission
// is evaluated per item, so some items may be accepted while others are
// rejected; the returned slice is index-aligned with specs. The error
// is non-nil only when the batch call itself failed (transport, 4xx/5xx
// on the whole request).
func (c *Client) SubmitBatch(ctx context.Context, specs []service.JobSpec) ([]BatchItem, error) {
	payload, err := json.Marshal(struct {
		Jobs []service.JobSpec `json:"jobs"`
	}{Jobs: specs})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL+"/v1/jobs:batch", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	var out struct {
		Results []service.BatchResult `json:"results"`
	}
	if _, err := c.do(req, &out); err != nil {
		return nil, err
	}
	if len(out.Results) != len(specs) {
		return nil, fmt.Errorf("client: batch answered %d results for %d specs", len(out.Results), len(specs))
	}
	items := make([]BatchItem, len(out.Results))
	for i, r := range out.Results {
		items[i] = batchItem(r)
	}
	return items, nil
}

// batchItem converts one wire BatchResult into the error shapes the
// rest of the client uses (BusyError for 429s, HTTPError otherwise).
func batchItem(r service.BatchResult) BatchItem {
	var it BatchItem
	if r.Status != nil {
		it.Status = *r.Status
	}
	switch {
	case r.Code == http.StatusAccepted || r.Code == http.StatusOK:
	case r.Code == http.StatusTooManyRequests:
		it.Err = &BusyError{
			RetryAfter: time.Duration(r.RetryAfterMs) * time.Millisecond,
			Class:      r.Class,
		}
	default:
		it.Err = &HTTPError{
			StatusCode: r.Code,
			Status:     fmt.Sprintf("%d %s", r.Code, http.StatusText(r.Code)),
			Message:    r.Error,
		}
	}
	return it
}

// Backoff tunes SubmitRetry. Zero values take the documented defaults.
type Backoff struct {
	MaxRetries int           // additional attempts after the first (default 0: no retry)
	Base       time.Duration // first wait, doubled per retry (default 50ms)
	Max        time.Duration // hard cap on any single wait (default 2s)
	Seed       uint64        // jitter seed, for deterministic tests
}

// RetryStats reports what SubmitRetry did.
type RetryStats struct {
	Attempts int // total submit attempts, including the first
	Retries  int // attempts that followed a 429
}

// SubmitRetry submits with jittered exponential backoff on 429s: each
// wait is uniformly drawn from [d/2, d) with d doubling from Base,
// floored at the server's Retry-After hint and capped at Max. Any
// non-busy result (success or other error) returns immediately.
func (c *Client) SubmitRetry(ctx context.Context, spec service.JobSpec, p Backoff) (service.JobStatus, RetryStats, error) {
	return submitRetry(ctx, c.Submit, spec, p)
}

// submitRetry is the shared backoff loop behind Client.SubmitRetry and
// Cluster.SubmitRetry.
func submitRetry(ctx context.Context, submit func(context.Context, service.JobSpec) (service.JobStatus, error),
	spec service.JobSpec, p Backoff) (service.JobStatus, RetryStats, error) {
	base := p.Base
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxWait := p.Max
	if maxWait <= 0 {
		maxWait = 2 * time.Second
	}
	r := rng.New(p.Seed)
	d := base
	var stats RetryStats
	for {
		stats.Attempts++
		st, err := submit(ctx, spec)
		var be *BusyError
		if err == nil || !errors.As(err, &be) || stats.Attempts > p.MaxRetries {
			return st, stats, err
		}
		wait := d/2 + time.Duration(r.Float64()*float64(d/2))
		if be.RetryAfter > wait {
			wait = be.RetryAfter
		}
		if wait > maxWait {
			wait = maxWait
		}
		stats.Retries++
		select {
		case <-ctx.Done():
			return st, stats, ctx.Err()
		case <-time.After(wait):
		}
		if d < maxWait {
			d *= 2
		}
	}
}

// Cancel requests cancellation of a queued or running job via
// DELETE /v1/jobs/{id}, returning the job's status as of the request.
func (c *Client) Cancel(ctx context.Context, id string) (service.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		c.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		return service.JobStatus{}, err
	}
	var st service.JobStatus
	_, err = c.do(req, &st)
	return st, err
}

// Job fetches one job's status (including its full trajectory).
func (c *Client) Job(ctx context.Context, id string) (service.JobStatus, error) {
	return c.JobTail(ctx, id, -1)
}

// JobTail fetches one job's status with at most tail trajectory points
// (?tail=N). tail < 0 requests the full trajectory; tail == 0 omits it.
func (c *Client) JobTail(ctx context.Context, id string, tail int) (service.JobStatus, error) {
	url := c.BaseURL + "/v1/jobs/" + id
	if tail >= 0 {
		url += "?tail=" + strconv.Itoa(tail)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return service.JobStatus{}, err
	}
	var st service.JobStatus
	_, err = c.do(req, &st)
	return st, err
}

// Jobs lists every job the server knows.
func (c *Client) Jobs(ctx context.Context) ([]service.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs", nil)
	if err != nil {
		return nil, err
	}
	var out struct {
		Jobs []service.JobStatus `json:"jobs"`
	}
	_, err = c.do(req, &out)
	return out.Jobs, err
}

// Wait polls the job until it reaches a terminal state or ctx expires.
// Each wait between polls is jittered uniformly over [¾·poll, 1¼·poll)
// so a cluster of waiters started together does not synchronize into
// lock-step polling bursts, and the ctx deadline is honored both
// between polls and before each request.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (service.JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	r := rng.New(uint64(time.Now().UnixNano()))
	var last service.JobStatus
	for {
		if err := ctx.Err(); err != nil {
			return last, err
		}
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.Terminal() {
			return st, nil
		}
		last = st
		wait := 3*poll/4 + time.Duration(r.Float64()*float64(poll/2))
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return last, ctx.Err()
		case <-t.C:
		}
	}
}

// Metrics fetches the raw Prometheus exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.roundTrip(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("client: %s", resp.Status)
	}
	return string(body), nil
}

// Health fetches and parses /healthz. The parsed body is returned even
// alongside a non-200 error (a draining server still reports its
// status, queue depth, and identity), so callers can both gate on the
// error and inspect the fields.
func (c *Client) Health(ctx context.Context) (service.Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return service.Health{}, err
	}
	resp, err := c.roundTrip(req)
	if err != nil {
		return service.Health{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return service.Health{}, err
	}
	var h service.Health
	if uerr := json.Unmarshal(body, &h); uerr != nil && resp.StatusCode == http.StatusOK {
		return h, fmt.Errorf("client: decoding healthz: %w", uerr)
	}
	if resp.StatusCode != http.StatusOK {
		return h, fmt.Errorf("client: %s", resp.Status)
	}
	return h, nil
}
