// Package client is the Go client for the specd HTTP API, shared by
// cmd/specload and the end-to-end tests.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/service"
)

// ErrBusy is returned by Submit when the server applies backpressure
// (HTTP 429); the job was not enqueued and may be retried later.
var ErrBusy = errors.New("client: server busy (queue full)")

// Client talks to one specd instance.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to a client with a 10s request timeout.
	HTTPClient *http.Client
}

// New returns a client for the given base URL.
func New(baseURL string) *Client {
	return &Client{
		BaseURL:    strings.TrimRight(baseURL, "/"),
		HTTPClient: &http.Client{Timeout: 10 * time.Second},
	}
}

func (c *Client) do(req *http.Request, out any) (int, error) {
	resp, err := c.HTTPClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode >= 400 {
		var eb struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
			return resp.StatusCode, fmt.Errorf("client: %s: %s", resp.Status, eb.Error)
		}
		return resp.StatusCode, fmt.Errorf("client: %s", resp.Status)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			return resp.StatusCode, fmt.Errorf("client: decoding response: %w", err)
		}
	}
	return resp.StatusCode, nil
}

// Submit posts a job spec. On 429 it returns ErrBusy.
func (c *Client) Submit(ctx context.Context, spec service.JobSpec) (service.JobStatus, error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return service.JobStatus{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL+"/v1/jobs", bytes.NewReader(payload))
	if err != nil {
		return service.JobStatus{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	var st service.JobStatus
	code, err := c.do(req, &st)
	if code == http.StatusTooManyRequests {
		return service.JobStatus{}, ErrBusy
	}
	return st, err
}

// Job fetches one job's status (including its trajectory).
func (c *Client) Job(ctx context.Context, id string) (service.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		return service.JobStatus{}, err
	}
	var st service.JobStatus
	_, err = c.do(req, &st)
	return st, err
}

// Jobs lists every job the server knows.
func (c *Client) Jobs(ctx context.Context) ([]service.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs", nil)
	if err != nil {
		return nil, err
	}
	var out struct {
		Jobs []service.JobStatus `json:"jobs"`
	}
	_, err = c.do(req, &out)
	return out.Jobs, err
}

// Wait polls the job every poll interval until it reaches a terminal
// state or ctx expires.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (service.JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// Metrics fetches the raw Prometheus exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.HTTPClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("client: %s", resp.Status)
	}
	return string(body), nil
}

// Health reports whether the server answers /healthz with 200.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	_, err = c.do(req, nil)
	return err
}
