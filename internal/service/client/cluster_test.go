package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/service"
)

// With the first target dead, every call must fail over to the live
// one and stick there for subsequent requests.
func TestClusterFailsOverFromDeadTarget(t *testing.T) {
	svc := service.New(service.Config{Workers: 1, QueueCap: 8, DefaultParallel: 1})
	defer svc.Shutdown(context.Background())
	live := httptest.NewServer(svc.Handler())
	defer live.Close()

	// A dead target: a server bound then closed, so dials are refused.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	cc := NewCluster(deadURL, live.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	st, err := cc.Submit(ctx, service.JobSpec{Workload: "cc", Controller: "hybrid", Size: 150, Seed: 1, Parallel: 1})
	if err != nil {
		t.Fatalf("Submit should fail over: %v", err)
	}
	if got := cc.LastTarget(); got != live.URL {
		t.Fatalf("LastTarget = %q, want the live target %q", got, live.URL)
	}

	final, err := cc.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != service.StateDone {
		t.Fatalf("job finished %s (%s), want done", final.State, final.Error)
	}

	if h, err := cc.Health(ctx); err != nil || h.Status != "ok" {
		t.Fatalf("Health = %+v, %v", h, err)
	}
	if jobs, err := cc.Jobs(ctx); err != nil || len(jobs) != 1 {
		t.Fatalf("Jobs = %d rows, %v; want 1", len(jobs), err)
	}
}

// HTTP-level errors are answers, not outages: a 404 from the current
// target must come straight back instead of rotating targets.
func TestClusterDoesNotFailOverOnHTTPErrors(t *testing.T) {
	var aHits, bHits int
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		aHits++
		http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
	}))
	defer a.Close()
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		bHits++
		http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
	}))
	defer b.Close()

	cc := NewCluster(a.URL, b.URL)
	ctx := context.Background()
	if _, err := cc.Job(ctx, "nope"); err == nil {
		t.Fatal("expected a 404 error")
	}
	if aHits != 1 || bHits != 0 {
		t.Fatalf("hits a=%d b=%d; a 404 must not rotate targets", aHits, bHits)
	}
}

func TestClusterAllTargetsDown(t *testing.T) {
	a := httptest.NewServer(http.NotFoundHandler())
	aURL := a.URL
	a.Close()
	cc := NewCluster(aURL)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := cc.Health(ctx); err == nil {
		t.Fatal("expected an error with every target down")
	}
}
