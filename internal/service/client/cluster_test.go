package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/service"
)

// With the first target dead, every call must fail over to the live
// one and stick there for subsequent requests.
func TestClusterFailsOverFromDeadTarget(t *testing.T) {
	svc := service.New(service.Config{Workers: 1, QueueCap: 8, DefaultParallel: 1})
	defer svc.Shutdown(context.Background())
	live := httptest.NewServer(svc.Handler())
	defer live.Close()

	// A dead target: a server bound then closed, so dials are refused.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	cc := NewCluster(deadURL, live.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	st, err := cc.Submit(ctx, service.JobSpec{Workload: "cc", Controller: "hybrid", Size: 150, Seed: 1, Parallel: 1})
	if err != nil {
		t.Fatalf("Submit should fail over: %v", err)
	}
	if got := cc.LastTarget(); got != live.URL {
		t.Fatalf("LastTarget = %q, want the live target %q", got, live.URL)
	}

	final, err := cc.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != service.StateDone {
		t.Fatalf("job finished %s (%s), want done", final.State, final.Error)
	}

	if h, err := cc.Health(ctx); err != nil || h.Status != "ok" {
		t.Fatalf("Health = %+v, %v", h, err)
	}
	if jobs, err := cc.Jobs(ctx); err != nil || len(jobs) != 1 {
		t.Fatalf("Jobs = %d rows, %v; want 1", len(jobs), err)
	}
}

// HTTP-level errors are answers, not outages: a 404 from the current
// target must come straight back instead of rotating targets.
func TestClusterDoesNotFailOverOnHTTPErrors(t *testing.T) {
	var aHits, bHits int
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		aHits++
		http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
	}))
	defer a.Close()
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		bHits++
		http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
	}))
	defer b.Close()

	cc := NewCluster(a.URL, b.URL)
	ctx := context.Background()
	if _, err := cc.Job(ctx, "nope"); err == nil {
		t.Fatal("expected a 404 error")
	}
	if aHits != 1 || bHits != 0 {
		t.Fatalf("hits a=%d b=%d; a 404 must not rotate targets", aHits, bHits)
	}
}

// A 503 (draining or journal-degraded front door) must rotate to the
// next target — unlike authoritative answers such as 404.
func TestClusterFailsOverOn503(t *testing.T) {
	var aHits int
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		aHits++
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"service: journal degraded, refusing new work"}`, http.StatusServiceUnavailable)
	}))
	defer a.Close()
	svc := service.New(service.Config{Workers: 1, QueueCap: 8, DefaultParallel: 1})
	defer svc.Shutdown(context.Background())
	b := httptest.NewServer(svc.Handler())
	defer b.Close()

	cc := NewCluster(a.URL, b.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := cc.Submit(ctx, service.JobSpec{Workload: "cc", Controller: "hybrid", Size: 150, Seed: 1, Parallel: 1})
	if err != nil {
		t.Fatalf("Submit should fail over past the 503: %v", err)
	}
	if aHits != 1 {
		t.Fatalf("degraded target hit %d times, want 1", aHits)
	}
	if got := cc.LastTarget(); got != b.URL {
		t.Fatalf("LastTarget = %q, want the healthy target %q", got, b.URL)
	}
	if st.ID == "" {
		t.Fatal("healthy target should have accepted the job")
	}
}

// A target that times out (client-side deadline) must rotate too, as
// long as the caller's own context is still live.
func TestClusterFailsOverOnTimeout(t *testing.T) {
	stall := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-stall:
		case <-r.Context().Done():
		}
	}))
	defer slow.Close()
	defer close(stall) // before slow.Close, so the stalled handler can return
	svc := service.New(service.Config{Workers: 1, QueueCap: 8, DefaultParallel: 1})
	defer svc.Shutdown(context.Background())
	live := httptest.NewServer(svc.Handler())
	defer live.Close()

	slowClient := New(slow.URL)
	slowClient.HTTPClient = &http.Client{Timeout: 100 * time.Millisecond}
	cc := NewClusterFrom(slowClient, New(live.URL))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if h, err := cc.Health(ctx); err != nil || h.Status != "ok" {
		t.Fatalf("Health should fail over past the stalled target: %+v, %v", h, err)
	}
	if got := cc.LastTarget(); got != live.URL {
		t.Fatalf("LastTarget = %q, want the live target %q", got, live.URL)
	}
}

func TestClusterAllTargetsDown(t *testing.T) {
	a := httptest.NewServer(http.NotFoundHandler())
	aURL := a.URL
	a.Close()
	cc := NewCluster(aURL)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := cc.Health(ctx); err == nil {
		t.Fatal("expected an error with every target down")
	}
}
