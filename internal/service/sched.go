package service

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Admission-rejection classes carried by RejectError. The overload e2e
// distinguishes "the shared queue is exhausted" from "your own quota or
// bound tripped" with them, and metrics count rejections per class.
const (
	// RejectQueue: the global queue is full (shared-resource exhaustion).
	RejectQueue = "queue"
	// RejectTenant: the tenant's own MaxPending bound is full.
	RejectTenant = "tenant"
	// RejectQuota: the tenant's token bucket is empty.
	RejectQuota = "quota"
	// RejectShed: brownout — sustained overload sheds this priority class.
	RejectShed = "shed"
	// RejectDeadline: the job's max_duration is shorter than the
	// estimated queue wait; running it would only burn a slot to miss
	// its deadline anyway.
	RejectDeadline = "deadline"
)

// RejectError is a 429 admission rejection carrying the computed retry
// hint and the rejection class. errors.Is(err, ErrQueueFull) matches
// the capacity classes (queue, tenant) so pre-tenant callers keep
// working.
type RejectError struct {
	Class  string        // RejectQueue | RejectTenant | RejectQuota | RejectShed | RejectDeadline
	Tenant string
	Wait   time.Duration // computed Retry-After (bucket refill or estimated dequeue time)
}

func (e *RejectError) Error() string {
	switch e.Class {
	case RejectQueue:
		return ErrQueueFull.Error()
	case RejectTenant:
		return fmt.Sprintf("service: tenant %q queue full", e.Tenant)
	case RejectQuota:
		return fmt.Sprintf("service: tenant %q over admission rate (retry in %v)", e.Tenant, e.Wait)
	case RejectShed:
		return fmt.Sprintf("service: overloaded, shedding tenant %q priority class", e.Tenant)
	case RejectDeadline:
		return fmt.Sprintf("service: estimated queue wait %v exceeds max_duration", e.Wait)
	}
	return "service: admission rejected"
}

// Is makes errors.Is(err, ErrQueueFull) true for the capacity classes,
// preserving pre-tenant caller behavior (every rejection still maps to
// HTTP 429 regardless of class).
func (e *RejectError) Is(target error) bool {
	return target == ErrQueueFull && (e.Class == RejectQueue || e.Class == RejectTenant)
}

// zeroWeightQuantum is the fractional DRR quantum granted to tenants
// with negative (scavenger) weight: they dequeue one job per eight full
// rotations instead of starving outright.
const zeroWeightQuantum = 0.125

// schedEntry is one queued job plus the instant it entered the
// scheduler — paused re-enqueues reset it, so queue-wait telemetry
// measures scheduler wait, not job age.
type schedEntry struct {
	j  *job
	at time.Time
}

// tenantQ is one tenant's scheduler state: a queue per priority, the
// DRR credit, the admission bucket, and counters.
type tenantQ struct {
	name   string
	cfg    TenantConfig
	bucket tokenBucket
	q      [MaxPriority + 1][]schedEntry
	queued int
	credit float64

	submitted int64
	completed int64
	rejected  map[string]int64 // by reject class
}

// quantum is the tenant's DRR refill. Weight 0 (unset) counts as 1;
// negative weights scavenge at zeroWeightQuantum.
func (t *tenantQ) quantum() float64 {
	switch {
	case t.cfg.Weight > 0:
		return float64(t.cfg.Weight)
	case t.cfg.Weight == 0:
		return 1
	default:
		return zeroWeightQuantum
	}
}

// defaultPrio is the effective priority for specs that set none.
func (t *tenantQ) defaultPrio() int {
	if t.cfg.Priority >= MinPriority && t.cfg.Priority <= MaxPriority {
		return t.cfg.Priority
	}
	return defaultPriority
}

// maxPending is the tenant's queue bound (global cap when unset).
func (t *tenantQ) maxPending(queueCap int) int {
	if t.cfg.MaxPending > 0 {
		return t.cfg.MaxPending
	}
	return queueCap
}

// brownoutConfig tunes sustained-overload detection.
type brownoutConfig struct {
	// p99 is the queue-wait threshold; <= 0 disables brownout.
	p99 time.Duration
	// windows is how many consecutive bad windows escalate the shed
	// level by one.
	windows int
	// window is the sample count per evaluation window.
	window int
}

// scheduler replaces the FIFO job channel: per-tenant bounded queues
// with token-bucket admission, strict priority tiers, and
// deficit-round-robin dequeue within a tier. All state is guarded by
// mu; workers block on cond until work arrives or the scheduler
// closes.
type scheduler struct {
	mu   sync.Mutex
	cond *sync.Cond

	queueCap  int
	workers   int
	defaults  TenantConfig
	overrides map[string]TenantConfig
	logf      func(string, ...any)

	tenants map[string]*tenantQ
	rr      []*tenantQ // DRR rotation, insertion order
	cur     int        // rotation position
	total   int        // queued jobs across all tenants

	closed bool

	// svcEWMA is the exponentially weighted mean job service time in
	// seconds, feeding queue-wait estimates (Retry-After, deadline
	// shedding). Zero until the first job completes.
	svcEWMA float64

	// Brownout: p99 queue wait over threshold for N consecutive windows
	// escalates level; a good window de-escalates. Priorities <= level
	// are shed at admission. Level never exceeds MaxPriority-1, so a
	// priority-9 job is always admissible. If no window completes for
	// brownoutIdleDecay (shedding can starve the dequeues that feed the
	// window), the level decays on the wall clock instead so it cannot
	// latch permanently.
	brown      brownoutConfig
	window     []float64 // queue-wait seconds, current window
	badWindows int
	level      int
	lastP99    float64
	lastEval   time.Time // wall clock of the last window evaluation
	shedTotal  int64
}

func newScheduler(cfg Config) *scheduler {
	s := &scheduler{
		queueCap:  cfg.QueueCap,
		workers:   cfg.Workers,
		defaults:  cfg.TenantDefaults,
		overrides: make(map[string]TenantConfig, len(cfg.Tenants)),
		logf:      cfg.Logf,
		tenants:   make(map[string]*tenantQ),
		brown: brownoutConfig{
			p99:     cfg.BrownoutP99,
			windows: cfg.BrownoutWindows,
			window:  cfg.BrownoutWindow,
		},
	}
	for _, t := range cfg.Tenants {
		if t.Name != "" {
			s.overrides[t.Name] = t
		}
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// tenantLocked returns (creating on demand) the named tenant's queue.
func (s *scheduler) tenantLocked(name string) *tenantQ {
	if name == "" {
		name = DefaultTenant
	}
	if t, ok := s.tenants[name]; ok {
		return t
	}
	cfg, ok := s.overrides[name]
	if !ok {
		cfg = s.defaults
		cfg.Name = name
	}
	t := &tenantQ{
		name:     name,
		cfg:      cfg,
		bucket:   newBucket(cfg.Rate, cfg.Burst),
		rejected: make(map[string]int64),
	}
	s.tenants[name] = t
	s.rr = append(s.rr, t)
	return t
}

// defaultPriorityFor resolves the default priority for a tenant's
// unset-priority specs (normalize fills it into the spec).
func (s *scheduler) defaultPriorityFor(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenantLocked(name).defaultPrio()
}

// effPriority resolves a spec's effective priority for scheduling.
// normalize fills Priority on fresh submissions; specs replayed from a
// pre-tenant journal may still carry 0.
func (s *scheduler) effPriority(t *tenantQ, prio int) int {
	if prio >= MinPriority && prio <= MaxPriority {
		return prio
	}
	return t.defaultPrio()
}

// estWaitLocked estimates the queue wait with `ahead` jobs in front,
// from the service-time EWMA spread across the worker pool. Zero until
// the first completion (no data, no guesses).
func (s *scheduler) estWaitLocked(ahead int) time.Duration {
	if s.svcEWMA <= 0 || ahead <= 0 {
		return 0
	}
	w := float64(ahead) / float64(s.workers) * s.svcEWMA
	return time.Duration(w * float64(time.Second))
}

// retryAfterLocked is the computed wait suggestion for a capacity
// rejection: the estimated time until one slot frees, floored at a
// second when no service-time data exists yet (the pre-tenant
// constant).
func (s *scheduler) retryAfterLocked() time.Duration {
	if w := s.estWaitLocked(1); w > 0 {
		return w
	}
	return time.Second
}

// admit runs the full admission pipeline for a fresh submission:
// brownout shed, per-tenant depth, global depth, deadline-aware
// shedding, and the token bucket, in that order. The bucket comes last
// so a rejection on any other check never burns a quota token for work
// that was never queued. The job is not yet visible to any other
// goroutine.
func (s *scheduler) admit(j *job) error {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	spec := &j.status.Spec
	t := s.tenantLocked(spec.Tenant)
	prio := s.effPriority(t, spec.Priority)
	s.decayIdleLocked(now)
	if s.level > 0 && prio <= s.level {
		t.rejected[RejectShed]++
		s.shedTotal++
		wait := s.estWaitLocked(s.total)
		if wait < time.Second {
			wait = time.Second
		}
		return &RejectError{Class: RejectShed, Tenant: t.name, Wait: wait}
	}
	if t.queued >= t.maxPending(s.queueCap) {
		t.rejected[RejectTenant]++
		return &RejectError{Class: RejectTenant, Tenant: t.name, Wait: s.retryAfterLocked()}
	}
	if s.total >= s.queueCap {
		t.rejected[RejectQueue]++
		return &RejectError{Class: RejectQueue, Tenant: t.name, Wait: s.retryAfterLocked()}
	}
	if spec.MaxDuration > 0 {
		if est := s.estWaitLocked(s.total); est > time.Duration(spec.MaxDuration) {
			t.rejected[RejectDeadline]++
			return &RejectError{Class: RejectDeadline, Tenant: t.name, Wait: est}
		}
	}
	if ok, wait := t.bucket.take(now); !ok {
		t.rejected[RejectQuota]++
		return &RejectError{Class: RejectQuota, Tenant: t.name, Wait: wait}
	}
	t.submitted++
	s.pushLocked(t, prio, j, now)
	return nil
}

// admitHandoff enqueues an already-admitted job arriving from another
// node. Only the global bound applies — quota and shedding were paid on
// the node that first accepted it — but the bound still matters so the
// router's retry loop spreads a dead node's jobs instead of dogpiling
// one survivor.
func (s *scheduler) admitHandoff(j *job) error {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	spec := &j.status.Spec
	t := s.tenantLocked(spec.Tenant)
	if s.total >= s.queueCap {
		t.rejected[RejectQueue]++
		return &RejectError{Class: RejectQueue, Tenant: t.name, Wait: s.retryAfterLocked()}
	}
	t.submitted++
	s.pushLocked(t, s.effPriority(t, spec.Priority), j, now)
	return nil
}

// requeue re-enqueues a job bypassing admission control: recovered and
// paused jobs were already admitted once, and refusing them now would
// lose acknowledged work.
func (s *scheduler) requeue(j *job) {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	spec := &j.status.Spec
	t := s.tenantLocked(spec.Tenant)
	s.pushLocked(t, s.effPriority(t, spec.Priority), j, now)
}

func (s *scheduler) pushLocked(t *tenantQ, prio int, j *job, now time.Time) {
	t.q[prio] = append(t.q[prio], schedEntry{j: j, at: now})
	t.queued++
	s.total++
	s.cond.Signal()
}

// next blocks until a job is available and dequeues it, or returns
// false once the scheduler closes (shutdown). Queued jobs survive
// close in their tenant queues — still visible, reported as never
// started, exactly like the old channel's drain semantics.
func (s *scheduler) next() (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.total == 0 && !s.closed {
		s.cond.Wait()
	}
	if s.closed {
		return nil, false
	}
	e := s.popLocked()
	s.noteWaitLocked(time.Since(e.at))
	return e.j, true
}

// popLocked dequeues by strict priority tier, deficit-round-robin
// across tenants within the highest non-empty tier. Tenants earn
// `quantum()` credit when the rotation reaches them and spend one
// credit per dequeue, so backlogged tenants at weights 3:1 dequeue in
// a 3:1 ratio; scavenger (negative-weight) tenants accrue fractional
// credit and still progress. Callers guarantee total > 0.
func (s *scheduler) popLocked() schedEntry {
	for p := MaxPriority; p >= MinPriority; p-- {
		if !s.tierHasWorkLocked(p) {
			continue
		}
		for {
			t := s.rr[s.cur%len(s.rr)]
			if len(t.q[p]) == 0 {
				// Empty at this tier: pass without spending the turn. The
				// credit persists — the tenant may hold work at another
				// tier — but an empty pass never accrues more.
				s.cur = (s.cur + 1) % len(s.rr)
				continue
			}
			if t.credit < 1 {
				t.credit += t.quantum()
				if t.credit < 1 {
					// Scavenger: not enough credit yet, come back next
					// rotation.
					s.cur = (s.cur + 1) % len(s.rr)
					continue
				}
			}
			t.credit--
			e := t.q[p][0]
			t.q[p] = t.q[p][1:]
			t.queued--
			s.total--
			if t.queued == 0 {
				// DRR resets an emptied flow's deficit so a long-idle
				// tenant cannot bank unbounded credit.
				t.credit = 0
			}
			if t.credit < 1 {
				s.cur = (s.cur + 1) % len(s.rr)
			}
			return e
		}
	}
	// Unreachable while total > 0; keep the compiler honest.
	panic("scheduler: popLocked with empty queues")
}

func (s *scheduler) tierHasWorkLocked(p int) bool {
	for _, t := range s.rr {
		if len(t.q[p]) > 0 {
			return true
		}
	}
	return false
}

// close wakes every blocked worker; queued jobs stay queued.
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// depth is the number of queued jobs across all tenants.
func (s *scheduler) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// observeService folds one completed job's service time into the EWMA
// and credits the tenant's completion counter. Incomplete attempts —
// paused (preempted) partial runs, failures, cancels — are ignored:
// folding them in would drag the EWMA toward short partial-attempt
// durations, underestimating queue wait and weakening both Retry-After
// hints and deadline-aware shedding.
func (s *scheduler) observeService(tenant string, d time.Duration, completed bool) {
	if !completed {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	const alpha = 0.2
	sec := d.Seconds()
	if s.svcEWMA <= 0 {
		s.svcEWMA = sec
	} else {
		s.svcEWMA = alpha*sec + (1-alpha)*s.svcEWMA
	}
	s.tenantLocked(tenant).completed++
}

// brownoutIdleDecay bounds how long a shed level can survive without a
// window evaluation. Windows are fed by dequeues, and shedding itself
// can cut off the traffic that produces dequeues (e.g. level 5 with
// all-priority-5 tenants admits nothing, so the window never fills and
// the level would latch until restart). Past this idle span the level
// decays on the wall clock instead.
const brownoutIdleDecay = 5 * time.Second

// noteWaitLocked feeds one dequeue's queue wait into the brownout
// window. A full window evaluates: p99 over threshold is a bad window,
// N consecutive bad windows escalate the shed level, a good window
// de-escalates.
func (s *scheduler) noteWaitLocked(w time.Duration) {
	if s.brown.p99 <= 0 {
		return
	}
	s.window = append(s.window, w.Seconds())
	if len(s.window) < s.brown.window {
		return
	}
	s.evalWindowLocked(time.Now())
}

// evalWindowLocked scores the current (non-empty, possibly partial)
// window against the p99 threshold and adjusts the shed level.
func (s *scheduler) evalWindowLocked(now time.Time) {
	sorted := append([]float64(nil), s.window...)
	sort.Float64s(sorted)
	p99 := sorted[len(sorted)*99/100]
	s.lastP99 = p99
	s.window = s.window[:0]
	s.lastEval = now
	if p99 > s.brown.p99.Seconds() {
		s.badWindows++
		if s.badWindows >= s.brown.windows && s.level < MaxPriority-1 {
			s.level++
			s.badWindows = 0
			s.logf("specd: brownout: queue-wait p99 %.3fs over %.3fs for %d windows, shedding priority <= %d",
				p99, s.brown.p99.Seconds(), s.brown.windows, s.level)
		}
	} else {
		s.badWindows = 0
		if s.level > 0 {
			s.level--
			s.logf("specd: brownout: queue-wait p99 %.3fs back under threshold, shed level now %d", p99, s.level)
		}
	}
}

// decayIdleLocked de-escalates the shed level when no full window has
// evaluated within brownoutIdleDecay. A trickle of dequeues too slow to
// fill a window is scored as a partial window; total silence — which,
// with shedding active, usually means shedding starved the queue — is
// treated as a good window. Either way the level cannot latch: it
// steps down at least once per idle span until traffic admits again.
func (s *scheduler) decayIdleLocked(now time.Time) {
	if s.brown.p99 <= 0 || s.level == 0 {
		return
	}
	if s.lastEval.IsZero() {
		// Level was forced (degraded-mode integration) before any window
		// evaluated; start the idle clock now.
		s.lastEval = now
		return
	}
	if now.Sub(s.lastEval) < brownoutIdleDecay {
		return
	}
	if len(s.window) > 0 {
		s.evalWindowLocked(now)
		return
	}
	s.lastEval = now
	s.badWindows = 0
	s.level--
	s.logf("specd: brownout: no queue-wait samples for %v, decaying shed level to %d",
		brownoutIdleDecay, s.level)
}

// brownout reports the current shed level and last evaluated p99,
// applying the idle decay first so /healthz never reports a level that
// has latched past its decay deadline.
func (s *scheduler) brownout() (level int, lastP99 float64, shed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.decayIdleLocked(time.Now())
	return s.level, s.lastP99, s.shedTotal
}

// setBrownoutLevel forces the shed level (tests and the degraded-mode
// integration drive it directly).
func (s *scheduler) setBrownoutLevel(level int) {
	if level < 0 {
		level = 0
	}
	if level > MaxPriority-1 {
		level = MaxPriority - 1
	}
	s.mu.Lock()
	s.level = level
	s.mu.Unlock()
}

// TenantStats is one tenant's scheduler counters, exported on /metrics.
type TenantStats struct {
	Name      string
	Weight    int
	Queued    int
	Submitted int64
	Completed int64
	Rejected  map[string]int64
}

// tenantStats snapshots every tenant's counters in rotation order.
func (s *scheduler) tenantStats() []TenantStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TenantStats, 0, len(s.rr))
	for _, t := range s.rr {
		st := TenantStats{
			Name: t.name, Weight: t.cfg.Weight, Queued: t.queued,
			Submitted: t.submitted, Completed: t.completed,
			Rejected: make(map[string]int64, len(t.rejected)),
		}
		for k, v := range t.rejected {
			st.Rejected[k] = v
		}
		out = append(out, st)
	}
	return out
}

// shedTenants lists configured tenants whose default priority class is
// currently shed — the /healthz "shed classes" report.
func (s *scheduler) shedTenants() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.decayIdleLocked(time.Now())
	if s.level == 0 {
		return nil
	}
	var out []string
	for _, t := range s.rr {
		if t.defaultPrio() <= s.level {
			out = append(out, t.name)
		}
	}
	sort.Strings(out)
	return out
}
