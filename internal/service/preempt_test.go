package service

import (
	"context"
	"testing"
	"time"
)

// pacedSpec is a deterministic cc job slowed by delay-fault injection
// so the test can land a preemption mid-run. Everything that shapes the
// trajectory (seed, controller, fault plan) is pinned, so two runs of
// the same spec produce identical round sequences.
func pacedSpec(prio int) JobSpec {
	return JobSpec{
		Workload: "cc", Controller: "fixed", FixedM: 2,
		Size: 600, Seed: 42, Parallel: 1, Priority: prio,
		Fault: &FaultSpec{DelayRate: 1, Delay: Duration(500 * time.Microsecond)},
	}
}

// runBaseline executes the spec uncontended and returns its trajectory.
func runBaseline(t *testing.T) []RoundPoint {
	t.Helper()
	s := New(Config{Workers: 1, QueueCap: 4, HistoryCap: 100000})
	defer s.Shutdown(context.Background())
	st, err := s.Submit(pacedSpec(2))
	if err != nil {
		t.Fatalf("baseline submit: %v", err)
	}
	final := waitTerminal(t, s, st.ID, 60*time.Second)
	if final.State != StateDone {
		t.Fatalf("baseline state %s: %s", final.State, final.Error)
	}
	return final.Trajectory
}

// TestPreemptionAtBarrier: on a single-worker service, a priority-9
// arrival pauses the running low-priority job at its next round
// barrier; the paused job re-queues, re-runs, and its trajectory ends
// up as pre-preemption prefix + a full deterministic re-run — both
// matching the unpreempted baseline.
func TestPreemptionAtBarrier(t *testing.T) {
	base := runBaseline(t)
	if len(base) < 10 {
		t.Fatalf("baseline produced only %d rounds; too short to preempt meaningfully", len(base))
	}

	s := New(Config{Workers: 1, QueueCap: 8, HistoryCap: 100000})
	defer s.Shutdown(context.Background())

	victim, err := s.Submit(pacedSpec(2))
	if err != nil {
		t.Fatalf("victim submit: %v", err)
	}
	// Let the victim get a few rounds in before the high-priority job
	// arrives, so there is a real prefix to preserve.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, _ := s.Job(victim.ID)
		if st.State == StateRunning && st.Rounds >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim never reached 3 running rounds (state %s, rounds %d)", st.State, st.Rounds)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The urgent job is paced too, so the victim's StatePaused window
	// stays wide enough (tens of ms) for the 1ms poll below to see it.
	urgentSpec := JobSpec{
		Workload: "cc", Controller: "fixed", FixedM: 2,
		Size: 120, Seed: 7, Parallel: 1, Priority: MaxPriority,
		Fault: &FaultSpec{DelayRate: 1, Delay: Duration(500 * time.Microsecond)},
	}
	urgent, err := s.Submit(urgentSpec)
	if err != nil {
		t.Fatalf("urgent submit: %v", err)
	}

	// The victim must yield the only worker: observe StatePaused before
	// it completes.
	sawPaused := false
	for time.Now().Before(deadline) {
		st, _ := s.Job(victim.ID)
		if st.State == StatePaused {
			sawPaused = true
			break
		}
		if st.Terminal() {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !sawPaused {
		t.Fatal("victim never observed in StatePaused after priority-9 arrival")
	}

	uFinal := waitTerminal(t, s, urgent.ID, 60*time.Second)
	if uFinal.State != StateDone {
		t.Fatalf("urgent job state %s: %s", uFinal.State, uFinal.Error)
	}
	vFinal := waitTerminal(t, s, victim.ID, 60*time.Second)
	if vFinal.State != StateDone {
		t.Fatalf("victim state %s: %s", vFinal.State, vFinal.Error)
	}
	if vFinal.Preemptions != 1 {
		t.Fatalf("victim Preemptions=%d, want 1", vFinal.Preemptions)
	}
	if vFinal.Attempt != 2 {
		t.Fatalf("victim Attempt=%d, want 2 (one pause, one re-run)", vFinal.Attempt)
	}
	if s.Preemptions() != 1 {
		t.Fatalf("service preemption counter %d, want 1", s.Preemptions())
	}

	// Trajectory = attempt-1 prefix + complete attempt-2 re-run. The
	// prefix must match the baseline's first rounds; the re-run must
	// reproduce the whole baseline (deterministic workload).
	var prefix, rerun []RoundPoint
	for _, p := range vFinal.Trajectory {
		if p.Attempt == vFinal.Attempt {
			rerun = append(rerun, p)
		} else {
			prefix = append(prefix, p)
		}
	}
	if len(prefix) == 0 {
		t.Fatal("no attempt-1 prefix survived the preemption")
	}
	if len(prefix) >= len(base) {
		t.Fatalf("prefix %d rounds >= baseline %d: victim was never actually interrupted", len(prefix), len(base))
	}
	samePoint := func(a, b RoundPoint) bool {
		return a.Round == b.Round && a.M == b.M && a.Launched == b.Launched &&
			a.Committed == b.Committed && a.Aborted == b.Aborted && a.R == b.R
	}
	for i, p := range prefix {
		if !samePoint(p, base[i]) {
			t.Fatalf("prefix round %d diverged from baseline: got %+v want %+v", i, p, base[i])
		}
	}
	if len(rerun) != len(base) {
		t.Fatalf("re-run has %d rounds, baseline %d", len(rerun), len(base))
	}
	for i, p := range rerun {
		if !samePoint(p, base[i]) {
			t.Fatalf("re-run round %d diverged from baseline: got %+v want %+v", i, p, base[i])
		}
	}
}

// withPriority returns a copy of the spec at the given priority.
func (s JobSpec) withPriority(p int) JobSpec {
	s.Priority = p
	return s
}

// TestPreemptionSkippedWhenIdle: a high-priority submit with a free
// worker must not preempt anyone.
func TestPreemptionSkippedWhenIdle(t *testing.T) {
	s := New(Config{Workers: 2, QueueCap: 8})
	defer s.Shutdown(context.Background())

	victim, err := s.Submit(pacedSpec(2))
	if err != nil {
		t.Fatalf("victim submit: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, _ := s.Job(victim.ID)
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := s.Submit(ccSpec(8).withPriority(MaxPriority)); err != nil {
		t.Fatalf("urgent submit: %v", err)
	}
	vFinal := waitTerminal(t, s, victim.ID, 60*time.Second)
	if vFinal.State != StateDone || vFinal.Preemptions != 0 {
		t.Fatalf("victim state %s preemptions %d, want done with 0 (second worker was free)",
			vFinal.State, vFinal.Preemptions)
	}
}

// TestPreemptionIgnoresEqualOrHigher: an arrival only preempts a
// strictly lower-priority job.
func TestPreemptionIgnoresEqualOrHigher(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 8})
	defer s.Shutdown(context.Background())

	victim, err := s.Submit(pacedSpec(7))
	if err != nil {
		t.Fatalf("victim submit: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, _ := s.Job(victim.ID)
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := s.Submit(ccSpec(9).withPriority(7)); err != nil {
		t.Fatalf("equal-priority submit: %v", err)
	}
	vFinal := waitTerminal(t, s, victim.ID, 60*time.Second)
	if vFinal.Preemptions != 0 {
		t.Fatalf("equal-priority arrival preempted the running job (%d preemptions)", vFinal.Preemptions)
	}
}
