package service

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/journal"
)

func TestSubmitPlacedDuplicateID(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 8})
	defer s.Shutdown(context.Background())

	st, err := s.SubmitPlaced("c7", ccSpec(1))
	if err != nil {
		t.Fatalf("SubmitPlaced: %v", err)
	}
	if st.ID != "c7" {
		t.Fatalf("placed id = %s, want c7", st.ID)
	}
	dup, err := s.SubmitPlaced("c7", ccSpec(2))
	if err != ErrDupJob {
		t.Fatalf("duplicate placement err = %v, want ErrDupJob", err)
	}
	if dup.ID != "c7" {
		t.Fatalf("duplicate placement should return the existing status, got %+v", dup)
	}
	if final := waitTerminal(t, s, "c7", 30*time.Second); final.Spec.Seed != 1 {
		t.Fatalf("duplicate submit overwrote the original spec: seed %d", final.Spec.Seed)
	}

	for _, bad := range []string{"", "has space", "sl/ash", string(make([]byte, 80))} {
		if _, err := s.SubmitPlaced(bad, ccSpec(1)); err == nil {
			t.Errorf("SubmitPlaced(%q) accepted an invalid id", bad)
		}
	}
}

// A handoff re-runs the job under its cluster id at the given attempt,
// with the dead node's trajectory prefix ahead of the rerun's points.
func TestSubmitHandoffRerunsWithPrefix(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 8})
	defer s.Shutdown(context.Background())

	prefix := []RoundPoint{
		{Round: 1, M: 2, Launched: 2, Committed: 1, Aborted: 1, R: 0.5},
		{Round: 2, M: 3, Launched: 3, Committed: 2, Aborted: 1, R: 0.33},
	}
	st, err := s.SubmitHandoff(HandoffRequest{ID: "c9", Spec: ccSpec(4), Attempt: 2, Prefix: prefix})
	if err != nil {
		t.Fatalf("SubmitHandoff: %v", err)
	}
	if st.State != StateRecovered || st.Attempt != 2 {
		t.Fatalf("handoff accepted as %s attempt %d, want recovered attempt 2", st.State, st.Attempt)
	}
	if s.HandedOff() != 1 {
		t.Fatalf("HandedOff = %d, want 1", s.HandedOff())
	}

	final := waitTerminal(t, s, "c9", 30*time.Second)
	if final.State != StateDone || final.Attempt != 2 {
		t.Fatalf("handed-off job finished %s attempt %d (%s), want done attempt 2", final.State, final.Attempt, final.Error)
	}
	if len(final.Trajectory) <= len(prefix) {
		t.Fatalf("trajectory has %d points, want the %d-point prefix plus rerun rounds", len(final.Trajectory), len(prefix))
	}
	for i, p := range prefix {
		got := final.Trajectory[i]
		if got.Round != p.Round || got.M != p.M || got.Attempt != 0 {
			t.Fatalf("trajectory[%d] = %+v, want preserved prefix point %+v (attempt untagged)", i, got, p)
		}
	}
	for _, p := range final.Trajectory[len(prefix):] {
		if p.Attempt != 2 {
			t.Fatalf("rerun point %+v not tagged attempt 2", p)
		}
	}

	// Redelivery of the same handoff is idempotent.
	if _, err := s.SubmitHandoff(HandoffRequest{ID: "c9", Spec: ccSpec(4), Attempt: 2, Prefix: prefix}); err != ErrDupJob {
		t.Fatalf("handoff redelivery err = %v, want ErrDupJob", err)
	}

	// Absurd attempts are refused rather than poisoning the counters.
	if _, err := s.SubmitHandoff(HandoffRequest{ID: "c10", Spec: ccSpec(5), Attempt: 1 << 21}); err == nil {
		t.Fatal("SubmitHandoff accepted an absurd attempt counter")
	}
}

// A handoff accepted by a durable node must survive that node's own
// crash: the WAL handoff record restores the attempt counter and
// prefix, and recovery re-runs the job. The crash is modeled the way
// the other recovery tests do it — by crafting the exact WAL a node
// writes between accepting a handoff and dying.
func TestHandoffSurvivesCrashRestart(t *testing.T) {
	dir := t.TempDir()
	jnl, err := journal.Open(dir, journal.Options{Fsync: journal.SyncAlways})
	if err != nil {
		t.Fatalf("journal open: %v", err)
	}
	append1 := func(rec walRecord) {
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if err := jnl.Append(b); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	spec := ccSpec(6)
	spec.Rho = 0.25 // crafted records skip Submit's normalization
	spec.MaxRounds = 1 << 30
	prefix := []RoundPoint{{Round: 1, M: 2, Launched: 2, Committed: 2, R: 0}}
	now := time.Now()
	append1(walRecord{Type: recSubmitted, ID: "c3", At: now, Spec: &spec})
	append1(walRecord{Type: recHandoff, ID: "c3", At: now, Attempt: 3, Points: prefix})
	if err := jnl.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}

	s2, err := Open(Config{Workers: 1, QueueCap: 8, StateDir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Shutdown(context.Background())

	final := waitTerminal(t, s2, "c3", 30*time.Second)
	if final.State != StateDone {
		t.Fatalf("restored handoff finished %s (%s), want done", final.State, final.Error)
	}
	if final.Attempt != 3 {
		t.Fatalf("restored handoff attempt = %d, want 3 (from the WAL handoff record)", final.Attempt)
	}
	if len(final.Trajectory) == 0 || final.Trajectory[0].Round != 1 || final.Trajectory[0].Attempt != 0 {
		t.Fatalf("restored trajectory lost the handoff prefix: %+v", final.Trajectory)
	}
}
