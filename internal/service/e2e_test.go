package service_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/service/client"
)

// startServer boots the full HTTP stack on 127.0.0.1:0 — the same
// wiring cmd/specd uses — and returns a client pointed at it.
func startServer(t *testing.T, cfg service.Config) (*service.Service, *client.Client) {
	t.Helper()
	svc := service.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
		srv.Shutdown(ctx)
	})
	return svc, client.New("http://" + ln.Addr().String())
}

// promLine matches one Prometheus text-format sample:
// name{label="v",...} value
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|NaN|[+-]Inf)$`)

// parseMetrics validates the exposition text line by line and returns
// sample → value, keyed by full name{labels}.
func parseMetrics(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]bool)
	for i, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 || (f[3] != "gauge" && f[3] != "counter") {
				t.Errorf("line %d: malformed TYPE: %q", i+1, line)
				continue
			}
			typed[f[2]] = true
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("line %d: not a valid sample: %q", i+1, line)
			continue
		}
		if !typed[m[1]] {
			t.Errorf("line %d: sample %q precedes its # TYPE", i+1, m[1])
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Errorf("line %d: bad value %q: %v", i+1, m[3], err)
			continue
		}
		samples[m[1]+m[2]] = v
	}
	return samples
}

// TestE2E drives the whole stack over HTTP: submit a mesh job and a
// synthetic cc job, poll both to completion, check that /metrics and
// /v1/jobs/{id} agree on commit counts, and verify graceful shutdown
// with a job still queued.
func TestE2E(t *testing.T) {
	svc, c := startServer(t, service.Config{Workers: 2, QueueCap: 8, DefaultParallel: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	if h, err := c.Health(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	} else if h.Role != "standalone" {
		t.Fatalf("healthz role = %q, want standalone", h.Role)
	}

	specs := []service.JobSpec{
		{Workload: "mesh", Controller: "hybrid", Size: 800, Seed: 7},
		{Workload: "cc", Controller: "recurrence-b", Size: 400, Seed: 3},
	}
	var done []service.JobStatus
	for _, spec := range specs {
		st, err := c.Submit(ctx, spec)
		if err != nil {
			t.Fatalf("submit %s: %v", spec.Workload, err)
		}
		if st.State != service.StateQueued || st.ID == "" {
			t.Fatalf("submit %s returned %+v", spec.Workload, st)
		}
		final, err := c.Wait(ctx, st.ID, 20*time.Millisecond)
		if err != nil {
			t.Fatalf("wait %s: %v", st.ID, err)
		}
		if final.State != service.StateDone {
			t.Fatalf("job %s (%s): state %s, error %q", final.ID, spec.Workload, final.State, final.Error)
		}
		if final.Rounds == 0 || final.Committed == 0 || final.Result == "" {
			t.Errorf("job %s missing telemetry: %+v", final.ID, final)
		}
		if len(final.Trajectory) == 0 {
			t.Errorf("job %s has no trajectory", final.ID)
		}
		done = append(done, final)
	}

	// /metrics must agree with /v1/jobs/{id} on the commit counts.
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	samples := parseMetrics(t, text)
	var wantCommits, wantAborts, wantRounds float64
	for _, st := range done {
		wantCommits += float64(st.Committed)
		wantAborts += float64(st.Aborted)
		wantRounds += float64(st.Rounds)
		key := fmt.Sprintf(`specd_job_conflict_ratio{job=%q,workload=%q,controller=%q}`,
			st.ID, st.Spec.Workload, st.Spec.Controller)
		if got, ok := samples[key]; !ok {
			t.Errorf("metrics missing %s", key)
		} else if want := st.ConflictRatio; got != want {
			t.Errorf("%s = %v, want %v", key, got, want)
		}
	}
	if got := samples["specd_commits_total"]; got != wantCommits {
		t.Errorf("specd_commits_total = %v, jobs say %v", got, wantCommits)
	}
	if got := samples["specd_aborts_total"]; got != wantAborts {
		t.Errorf("specd_aborts_total = %v, jobs say %v", got, wantAborts)
	}
	if got := samples["specd_rounds_total"]; got != wantRounds {
		t.Errorf("specd_rounds_total = %v, jobs say %v", got, wantRounds)
	}
	if got := samples[`specd_jobs{state="done"}`]; got != 2 {
		t.Errorf(`specd_jobs{state="done"} = %v, want 2`, got)
	}
	if got := samples["specd_jobs_submitted_total"]; got != 2 {
		t.Errorf("specd_jobs_submitted_total = %v, want 2", got)
	}
	if _, ok := samples["specd_up"]; !ok {
		t.Error("metrics missing specd_up")
	}

	// Graceful shutdown with a job still queued: saturate the two
	// workers with slow jobs, queue a third, then drain. The queued job
	// must survive in state queued; the API must keep answering.
	// ~4s of tiny rounds each: slow enough that the drain lands mid-run,
	// cheap enough per round that the drain itself is instant.
	slow := service.JobSpec{Workload: "mesh", Controller: "fixed", FixedM: 2, Size: 60000}
	var slowIDs []string
	for i := 0; i < 2; i++ {
		st, err := c.Submit(ctx, slow)
		if err != nil {
			t.Fatalf("submit slow: %v", err)
		}
		slowIDs = append(slowIDs, st.ID)
	}
	queued, err := c.Submit(ctx, service.JobSpec{Workload: "cc", Controller: "hybrid", Size: 300})
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}
	// Wait until both slow jobs are actually running so the third is
	// parked in the queue.
	for deadline := time.Now().Add(10 * time.Second); ; {
		running := 0
		for _, id := range slowIDs {
			if st, err := c.Job(ctx, id); err == nil && st.State == service.StateRunning {
				running++
			}
		}
		if running == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow jobs never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := svc.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The HTTP server is still up (specd drains the service first): the
	// status API must answer and report the drain outcome.
	if h, err := c.Health(ctx); err == nil {
		t.Error("healthz still ok after drain, want 503")
	} else if h.Status != "draining" {
		t.Errorf("healthz body status = %q after drain, want draining", h.Status)
	}
	st, err := c.Job(ctx, queued.ID)
	if err != nil {
		t.Fatalf("job status after drain: %v", err)
	}
	if st.State != service.StateQueued {
		t.Errorf("queued job state %s after drain, want queued", st.State)
	}
	for _, id := range slowIDs {
		st, err := c.Job(ctx, id)
		if err != nil {
			t.Fatalf("slow job status: %v", err)
		}
		if st.State != service.StateCanceled {
			t.Errorf("slow job %s state %s, want canceled", id, st.State)
		}
	}
	if _, err := c.Submit(ctx, specs[0]); err == nil {
		t.Error("submit accepted after drain, want 503")
	}
}

// TestE2EBackpressure floods a 1-worker, 1-slot server: some requests
// must come back 429 (client.ErrBusy), accepted ones must all finish,
// and the rejected count must show up in /metrics.
func TestE2EBackpressure(t *testing.T) {
	_, c := startServer(t, service.Config{Workers: 1, QueueCap: 1, DefaultParallel: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	const n = 16
	type result struct {
		id   string
		busy bool
		err  error
	}
	results := make(chan result, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			st, err := c.Submit(ctx, service.JobSpec{
				Workload: "cc", Controller: "hybrid", Size: 300, Seed: uint64(i + 1),
			})
			switch {
			case err == nil:
				results <- result{id: st.ID}
			case errors.Is(err, client.ErrBusy):
				results <- result{busy: true}
			default:
				results <- result{err: err}
			}
		}(i)
	}
	var accepted []string
	rejected := 0
	for i := 0; i < n; i++ {
		r := <-results
		switch {
		case r.err != nil:
			t.Fatalf("unexpected submit error: %v", r.err)
		case r.busy:
			rejected++
		default:
			accepted = append(accepted, r.id)
		}
	}
	if len(accepted)+rejected != n {
		t.Fatalf("accounting broken: %d + %d != %d", len(accepted), rejected, n)
	}
	if rejected == 0 {
		t.Fatal("no 429s from a 1-slot queue under 16 concurrent submits")
	}
	for _, id := range accepted {
		st, err := c.Wait(ctx, id, 20*time.Millisecond)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if st.State != service.StateDone {
			t.Errorf("job %s: state %s (%s)", id, st.State, st.Error)
		}
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	samples := parseMetrics(t, text)
	if got := samples["specd_jobs_rejected_total"]; got != float64(rejected) {
		t.Errorf("specd_jobs_rejected_total = %v, want %d", got, rejected)
	}
	if got := samples["specd_jobs_submitted_total"]; got != float64(len(accepted)) {
		t.Errorf("specd_jobs_submitted_total = %v, want %d", got, len(accepted))
	}
}
