package service

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestTokenBucketRefillAndWait(t *testing.T) {
	b := newBucket(2, 2) // 2/s, burst 2
	base := time.Now()
	if ok, _ := b.take(base); !ok {
		t.Fatal("take 1 of burst 2 failed")
	}
	if ok, _ := b.take(base); !ok {
		t.Fatal("take 2 of burst 2 failed")
	}
	ok, wait := b.take(base)
	if ok {
		t.Fatal("take 3 of burst 2 succeeded")
	}
	if wait != 500*time.Millisecond {
		t.Fatalf("wait %v for 1 token at 2/s, want 500ms", wait)
	}
	// Partial refill shrinks the computed wait proportionally.
	ok, wait = b.take(base.Add(250 * time.Millisecond))
	if ok || wait != 250*time.Millisecond {
		t.Fatalf("ok=%v wait=%v after 250ms refill, want !ok 250ms", ok, wait)
	}
	// Full refill admits again.
	if ok, _ := b.take(base.Add(500 * time.Millisecond)); !ok {
		t.Fatal("take after full refill failed")
	}
	// Tokens cap at burst: a long idle stretch does not bank extras.
	b2 := newBucket(10, 1)
	b2.take(base)
	if ok, _ := b2.take(base.Add(time.Hour)); !ok {
		t.Fatal("take after idle failed")
	}
	if ok, _ := b2.take(base.Add(time.Hour)); ok {
		t.Fatal("burst-1 bucket admitted twice in an instant after idle")
	}
}

func TestTokenBucketDefaults(t *testing.T) {
	// Rate 0 disables the bucket entirely.
	b := newBucket(0, 0)
	for i := 0; i < 100; i++ {
		if ok, _ := b.take(time.Now()); !ok {
			t.Fatal("unlimited bucket rejected")
		}
	}
	// Burst defaults to max(1, ceil(rate)).
	if b := newBucket(0.4, 0); b.burst != 1 {
		t.Fatalf("burst %v for rate 0.4, want 1", b.burst)
	}
	if b := newBucket(3.5, 0); b.burst != 4 {
		t.Fatalf("burst %v for rate 3.5, want 4", b.burst)
	}
}

func writeTenants(t *testing.T, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadTenants(t *testing.T) {
	p := writeTenants(t, `{
		"defaults": {"weight": 1, "rate": 5},
		"tenants": [
			{"name": "gold", "weight": 3, "priority": 7},
			{"name": "batch", "weight": -1, "max_pending": 4}
		]
	}`)
	tf, err := LoadTenants(p)
	if err != nil {
		t.Fatalf("LoadTenants: %v", err)
	}
	if tf.Defaults.Rate != 5 || len(tf.Tenants) != 2 {
		t.Fatalf("parsed %+v", tf)
	}
	if tf.Tenants[0].Name != "gold" || tf.Tenants[0].Weight != 3 || tf.Tenants[0].Priority != 7 {
		t.Fatalf("gold parsed as %+v", tf.Tenants[0])
	}
	if tf.Tenants[1].Weight != -1 || tf.Tenants[1].MaxPending != 4 {
		t.Fatalf("batch parsed as %+v", tf.Tenants[1])
	}
}

func TestLoadTenantsRejectsBadConfig(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"bad json", `{"tenants": [`, "parsing"},
		{"unnamed tenant", `{"tenants": [{"weight": 2}]}`, "no name"},
		{"duplicate", `{"tenants": [{"name": "a"}, {"name": "a"}]}`, "duplicate"},
		{"bad name", `{"tenants": [{"name": "a/b"}]}`, "contains"},
		{"negative rate", `{"tenants": [{"name": "a", "rate": -1}]}`, "rate"},
		{"negative burst", `{"tenants": [{"name": "a", "burst": -2}]}`, "burst"},
		{"priority range", `{"tenants": [{"name": "a", "priority": 10}]}`, "priority"},
		{"bad defaults", `{"defaults": {"max_pending": -1}}`, "max_pending"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadTenants(writeTenants(t, tc.body))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err %v, want containing %q", err, tc.wantErr)
			}
		})
	}
	if _, err := LoadTenants(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
