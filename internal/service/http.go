package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs      submit a JobSpec; 202 with the queued JobStatus,
//	                     429 on queue overflow, 400 on a bad spec,
//	                     503 while draining
//	GET    /v1/jobs      list all jobs (no trajectories), in submit order
//	GET    /v1/jobs/{id} one job's full status including trajectory;
//	                     ?tail=N bounds the trajectory to the newest N
//	                     points (tail=0 omits it)
//	DELETE /v1/jobs/{id} cancel a queued or running job; 200 with its
//	                     status, 404 unknown, 409 already terminal
//	GET    /metrics      Prometheus text exposition
//	GET    /healthz      200 {"status":"ok",...} with queue depth,
//	                     in-flight jobs, poisoned-task count, and the
//	                     node's cluster identity (node_id, role,
//	                     lease_expires) / 503 {"status":"draining"}
//
//	POST   /v1/cluster/handoff
//	                     accept a job handed off from a dead cluster
//	                     member (HandoffRequest): 202 with the recovered
//	                     JobStatus, 200 if the id already exists
//	                     (idempotent redelivery), 429/503/400 as above
//
// POST /v1/jobs additionally honors an X-Specd-Job-Id request header:
// the cluster router pre-assigns cluster-wide job ids with it (see
// SubmitPlaced); a duplicate id answers 200 with the existing status.
//
// pprof is not mounted here; cmd/specd adds it opt-in.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/jobs:batch", s.handleBatch)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/cluster/handoff", s.handleHandoff)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return withDeadline(mux)
}

// JobIDHeader carries a router-assigned job id on POST /v1/jobs.
const JobIDHeader = "X-Specd-Job-Id"

// RetryAfterMsHeader carries the computed retry hint with millisecond
// resolution alongside the integer-seconds Retry-After (which rounds
// up, so sub-second bucket refills would otherwise all read "1").
const RetryAfterMsHeader = "X-Specd-Retry-After-Ms"

// RejectClassHeader names the admission-rejection class on a 429
// ("queue", "tenant", "quota", "shed", or "deadline").
const RejectClassHeader = "X-Specd-Reject-Class"

// DeadlineHeader propagates a caller deadline across process hops as
// absolute unix-milliseconds. The router stamps it from its request
// context; the node refuses work whose deadline has already passed and
// bounds the rest, so a retry storm cannot pile work behind a caller
// that has long since given up.
const DeadlineHeader = "X-Specd-Deadline"

// withDeadline honors DeadlineHeader on every request: an expired
// deadline answers 504 without doing the work, a live one bounds the
// request context.
func withDeadline(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if v := r.Header.Get(DeadlineHeader); v != "" {
			if ms, err := strconv.ParseInt(v, 10, 64); err == nil {
				dl := time.UnixMilli(ms)
				if !time.Now().Before(dl) {
					writeJSON(w, http.StatusGatewayTimeout,
						errorBody{Error: "deadline exceeded before processing"})
					return
				}
				ctx, cancel := context.WithDeadline(r.Context(), dl)
				defer cancel()
				r = r.WithContext(ctx)
			}
		}
		next.ServeHTTP(w, r)
	})
}

// maxSpecBytes bounds POST bodies; specs are a few hundred bytes.
const maxSpecBytes = 1 << 16

// maxHandoffBytes bounds handoff bodies, which carry a trajectory
// prefix on top of the spec.
const maxHandoffBytes = 4 << 20

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad job spec: " + err.Error()})
		return
	}
	var st JobStatus
	var err error
	if id := r.Header.Get(JobIDHeader); id != "" {
		st, err = s.SubmitPlaced(id, spec)
	} else {
		st, err = s.Submit(spec)
	}
	s.writeSubmitResult(w, st, err)
}

// setRetryAfter stamps the computed retry hint: standard Retry-After
// in whole seconds (rounded up, floor 1 — the header cannot express
// fractions) plus the millisecond-resolution RetryAfterMsHeader and the
// rejection class.
func setRetryAfter(w http.ResponseWriter, wait time.Duration, class string) {
	if wait <= 0 {
		wait = time.Second
	}
	secs := (wait + time.Second - 1) / time.Second
	w.Header().Set("Retry-After", strconv.FormatInt(int64(secs), 10))
	ms := wait.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	w.Header().Set(RetryAfterMsHeader, strconv.FormatInt(ms, 10))
	if class != "" {
		w.Header().Set(RejectClassHeader, class)
	}
}

// writeSubmitResult maps the shared admission outcomes onto HTTP.
func (s *Service) writeSubmitResult(w http.ResponseWriter, st JobStatus, err error) {
	var specErr *SpecError
	var rej *RejectError
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, st)
	case errors.Is(err, ErrDupJob):
		writeJSON(w, http.StatusOK, st)
	case errors.As(err, &rej):
		setRetryAfter(w, rej.Wait, rej.Class)
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case errors.Is(err, ErrQueueFull):
		setRetryAfter(w, 0, RejectQueue)
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case errors.Is(err, ErrDegraded):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case errors.As(err, &specErr):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

// maxBatchItems bounds one POST /v1/jobs:batch call; bigger batches
// should be split client-side so one request cannot occupy admission
// for unbounded time.
const maxBatchItems = 256

// batchRequest is the wire form of POST /v1/jobs:batch.
type batchRequest struct {
	Jobs []JobSpec `json:"jobs"`
}

// BatchResult is one item's outcome in a batch submission: admission is
// evaluated per item, so a batch can partially succeed. Code mirrors
// the single-submit HTTP status for the item (202 accepted, 200
// duplicate, 429 rejected, 400 bad spec, 503 draining/degraded).
type BatchResult struct {
	Status       *JobStatus `json:"status,omitempty"`
	Code         int        `json:"code"`
	Error        string     `json:"error,omitempty"`
	Class        string     `json:"class,omitempty"`          // rejection class on 429
	RetryAfterMs int64      `json:"retry_after_ms,omitempty"` // computed retry hint on 429/503
}

// SubmitBatch submits each spec independently through the normal
// admission pipeline and reports per-item outcomes.
func (s *Service) SubmitBatch(specs []JobSpec) []BatchResult {
	out := make([]BatchResult, len(specs))
	for i, spec := range specs {
		st, err := s.Submit(spec)
		out[i] = batchResult(st, err)
	}
	return out
}

// batchResult maps one submission outcome onto its wire form, mirroring
// writeSubmitResult's status mapping.
func batchResult(st JobStatus, err error) BatchResult {
	var specErr *SpecError
	var rej *RejectError
	switch {
	case err == nil:
		return BatchResult{Status: &st, Code: http.StatusAccepted}
	case errors.Is(err, ErrDupJob):
		return BatchResult{Status: &st, Code: http.StatusOK}
	case errors.As(err, &rej):
		ms := rej.Wait.Milliseconds()
		if ms < 1 {
			ms = 1
		}
		return BatchResult{Code: http.StatusTooManyRequests, Error: err.Error(),
			Class: rej.Class, RetryAfterMs: ms}
	case errors.Is(err, ErrQueueFull):
		return BatchResult{Code: http.StatusTooManyRequests, Error: err.Error(),
			Class: RejectQueue, RetryAfterMs: 1000}
	case errors.Is(err, ErrDraining), errors.Is(err, ErrDegraded):
		return BatchResult{Code: http.StatusServiceUnavailable, Error: err.Error(), RetryAfterMs: 1000}
	case errors.As(err, &specErr):
		return BatchResult{Code: http.StatusBadRequest, Error: err.Error()}
	default:
		return BatchResult{Code: http.StatusInternalServerError, Error: err.Error()}
	}
}

func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxHandoffBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad batch: " + err.Error()})
		return
	}
	if len(req.Jobs) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad batch: no jobs"})
		return
	}
	if len(req.Jobs) > maxBatchItems {
		writeJSON(w, http.StatusBadRequest,
			errorBody{Error: fmt.Sprintf("bad batch: %d jobs over the %d-item limit", len(req.Jobs), maxBatchItems)})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Results []BatchResult `json:"results"`
	}{Results: s.SubmitBatch(req.Jobs)})
}

// HandoffRequest is the wire form of a cluster job handoff (POST
// /v1/cluster/handoff): re-run the job from spec on this node under its
// cluster-wide id, at the attempt the router learned before the
// original node died, with the trajectory prefix it had synced.
type HandoffRequest struct {
	ID      string       `json:"id"`
	Spec    JobSpec      `json:"spec"`
	Attempt int          `json:"attempt"`
	Prefix  []RoundPoint `json:"prefix,omitempty"`
}

func (s *Service) handleHandoff(w http.ResponseWriter, r *http.Request) {
	var req HandoffRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxHandoffBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad handoff: " + err.Error()})
		return
	}
	st, err := s.SubmitHandoff(req)
	s.writeSubmitResult(w, st, err)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{Jobs: s.Jobs()})
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	tail := -1 // full trajectory by default
	if v := r.URL.Query().Get("tail"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad tail: want a non-negative integer"})
			return
		}
		tail = n
	}
	st, ok := s.JobTail(r.PathValue("id"), tail)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, st)
	case errors.Is(err, ErrNoJob):
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
	case errors.Is(err, ErrJobTerminal):
		writeJSON(w, http.StatusConflict, st)
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.WriteMetrics(w)
}

// Health is the /healthz payload, shared by nodes and the cluster
// router. Queue depth, in-flight jobs, and poisoned-task count let load
// balancers shed before the 429 cliff; journal/recovered_jobs report
// durability and last-startup recovery; node_id/role/lease_expires
// identify the process inside a cluster. The router-only fields
// (members, placements) are zero on a node.
type Health struct {
	Status        string  `json:"status"`
	Uptime        float64 `json:"uptime_seconds"`
	QueueDepth    int     `json:"queue_depth"`
	InflightJobs  int64   `json:"inflight_jobs"`
	PoisonedTasks int64   `json:"poisoned_tasks"`
	Journal       bool    `json:"journal"`
	RecoveredJobs int64   `json:"recovered_jobs,omitempty"`
	HandoffJobs   int64   `json:"handoff_jobs,omitempty"`

	// Degraded mode: the journal hit a disk fault and the service is
	// read-only (in-flight jobs finish, new submits 503) until the disk
	// heals. Still 200 on /healthz — a degraded node serves reads.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`

	// Brownout: sustained overload (or degraded mode) is shedding the
	// lowest priority classes at admission. BrownoutLevel is the highest
	// priority currently shed; ShedTenants lists the configured tenants
	// whose default priority class that covers. Still 200 on /healthz —
	// a browned-out node serves everything above the shed line — but the
	// router deprioritizes it for placement.
	Brownout      bool     `json:"brownout,omitempty"`
	BrownoutLevel int      `json:"brownout_level,omitempty"`
	ShedTenants   []string `json:"shed_tenants,omitempty"`
	QueueWaitP99  float64  `json:"queue_wait_p99_seconds,omitempty"`

	// Router-only: members whose lease expired but who still answer
	// probes (e.g. under an asymmetric partition).
	SuspectMembers []string `json:"suspect_members,omitempty"`

	// Cluster identity: the node's id, its role ("standalone", "node",
	// or "router"), and — when the node holds a membership lease — the
	// lease deadline it last renewed to.
	NodeID       string     `json:"node_id,omitempty"`
	Role         string     `json:"role"`
	LeaseExpires *time.Time `json:"lease_expires,omitempty"`

	// Router-only: membership counts by state and tracked placements.
	Members    map[string]int `json:"members,omitempty"`
	Placements int            `json:"placements,omitempty"`
}

// HealthStatus assembles the current /healthz payload.
func (s *Service) HealthStatus() Health {
	nodeID, role, lease := s.clusterIdentity()
	body := Health{
		Status:        "ok",
		Uptime:        s.Uptime().Seconds(),
		QueueDepth:    s.QueueDepth(),
		InflightJobs:  s.Running(),
		PoisonedTasks: s.PoisonedTotal(),
		Journal:       s.Durable(),
		RecoveredJobs: s.Recovered(),
		HandoffJobs:   s.HandedOff(),
		NodeID:        nodeID,
		Role:          role,
		LeaseExpires:  lease,
	}
	if level, p99, _, shed := s.BrownoutInfo(); level > 0 {
		body.Brownout = true
		body.BrownoutLevel = level
		body.ShedTenants = shed
		body.QueueWaitP99 = p99
	}
	if deg, reason := s.DegradedInfo(); deg {
		body.Status = "degraded"
		body.Degraded = true
		body.DegradedReason = reason
		// Degraded mode refuses every submission, which is brownout taken
		// to its limit: report it as shedding every priority class so
		// placement treats the node accordingly.
		body.Brownout = true
		body.BrownoutLevel = MaxPriority
	}
	if s.Draining() {
		body.Status = "draining"
	}
	return body
}

// BrownedOut reports whether admission is currently shedding any
// priority class — sustained overload or degraded mode. The cluster
// agent folds it into the node's load report so the router can
// deprioritize browned-out nodes for placement.
func (s *Service) BrownedOut() bool {
	if deg, _ := s.DegradedInfo(); deg {
		return true
	}
	level, _, _, _ := s.BrownoutInfo()
	return level > 0
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	body := s.HealthStatus()
	if body.Status == "draining" {
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}
