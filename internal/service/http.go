package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs      submit a JobSpec; 202 with the queued JobStatus,
//	                     429 on queue overflow, 400 on a bad spec,
//	                     503 while draining
//	GET    /v1/jobs      list all jobs (no trajectories), in submit order
//	GET    /v1/jobs/{id} one job's full status including trajectory;
//	                     ?tail=N bounds the trajectory to the newest N
//	                     points (tail=0 omits it)
//	DELETE /v1/jobs/{id} cancel a queued or running job; 200 with its
//	                     status, 404 unknown, 409 already terminal
//	GET    /metrics      Prometheus text exposition
//	GET    /healthz      200 {"status":"ok",...} with queue depth,
//	                     in-flight jobs, poisoned-task count, and the
//	                     node's cluster identity (node_id, role,
//	                     lease_expires) / 503 {"status":"draining"}
//
//	POST   /v1/cluster/handoff
//	                     accept a job handed off from a dead cluster
//	                     member (HandoffRequest): 202 with the recovered
//	                     JobStatus, 200 if the id already exists
//	                     (idempotent redelivery), 429/503/400 as above
//
// POST /v1/jobs additionally honors an X-Specd-Job-Id request header:
// the cluster router pre-assigns cluster-wide job ids with it (see
// SubmitPlaced); a duplicate id answers 200 with the existing status.
//
// pprof is not mounted here; cmd/specd adds it opt-in.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/cluster/handoff", s.handleHandoff)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return withDeadline(mux)
}

// JobIDHeader carries a router-assigned job id on POST /v1/jobs.
const JobIDHeader = "X-Specd-Job-Id"

// DeadlineHeader propagates a caller deadline across process hops as
// absolute unix-milliseconds. The router stamps it from its request
// context; the node refuses work whose deadline has already passed and
// bounds the rest, so a retry storm cannot pile work behind a caller
// that has long since given up.
const DeadlineHeader = "X-Specd-Deadline"

// withDeadline honors DeadlineHeader on every request: an expired
// deadline answers 504 without doing the work, a live one bounds the
// request context.
func withDeadline(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if v := r.Header.Get(DeadlineHeader); v != "" {
			if ms, err := strconv.ParseInt(v, 10, 64); err == nil {
				dl := time.UnixMilli(ms)
				if !time.Now().Before(dl) {
					writeJSON(w, http.StatusGatewayTimeout,
						errorBody{Error: "deadline exceeded before processing"})
					return
				}
				ctx, cancel := context.WithDeadline(r.Context(), dl)
				defer cancel()
				r = r.WithContext(ctx)
			}
		}
		next.ServeHTTP(w, r)
	})
}

// maxSpecBytes bounds POST bodies; specs are a few hundred bytes.
const maxSpecBytes = 1 << 16

// maxHandoffBytes bounds handoff bodies, which carry a trajectory
// prefix on top of the spec.
const maxHandoffBytes = 4 << 20

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad job spec: " + err.Error()})
		return
	}
	var st JobStatus
	var err error
	if id := r.Header.Get(JobIDHeader); id != "" {
		st, err = s.SubmitPlaced(id, spec)
	} else {
		st, err = s.Submit(spec)
	}
	s.writeSubmitResult(w, st, err)
}

// writeSubmitResult maps the shared admission outcomes onto HTTP.
func (s *Service) writeSubmitResult(w http.ResponseWriter, st JobStatus, err error) {
	var specErr *SpecError
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, st)
	case errors.Is(err, ErrDupJob):
		writeJSON(w, http.StatusOK, st)
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case errors.Is(err, ErrDegraded):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case errors.As(err, &specErr):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

// HandoffRequest is the wire form of a cluster job handoff (POST
// /v1/cluster/handoff): re-run the job from spec on this node under its
// cluster-wide id, at the attempt the router learned before the
// original node died, with the trajectory prefix it had synced.
type HandoffRequest struct {
	ID      string       `json:"id"`
	Spec    JobSpec      `json:"spec"`
	Attempt int          `json:"attempt"`
	Prefix  []RoundPoint `json:"prefix,omitempty"`
}

func (s *Service) handleHandoff(w http.ResponseWriter, r *http.Request) {
	var req HandoffRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxHandoffBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad handoff: " + err.Error()})
		return
	}
	st, err := s.SubmitHandoff(req)
	s.writeSubmitResult(w, st, err)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{Jobs: s.Jobs()})
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	tail := -1 // full trajectory by default
	if v := r.URL.Query().Get("tail"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad tail: want a non-negative integer"})
			return
		}
		tail = n
	}
	st, ok := s.JobTail(r.PathValue("id"), tail)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, st)
	case errors.Is(err, ErrNoJob):
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
	case errors.Is(err, ErrJobTerminal):
		writeJSON(w, http.StatusConflict, st)
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.WriteMetrics(w)
}

// Health is the /healthz payload, shared by nodes and the cluster
// router. Queue depth, in-flight jobs, and poisoned-task count let load
// balancers shed before the 429 cliff; journal/recovered_jobs report
// durability and last-startup recovery; node_id/role/lease_expires
// identify the process inside a cluster. The router-only fields
// (members, placements) are zero on a node.
type Health struct {
	Status        string  `json:"status"`
	Uptime        float64 `json:"uptime_seconds"`
	QueueDepth    int     `json:"queue_depth"`
	InflightJobs  int64   `json:"inflight_jobs"`
	PoisonedTasks int64   `json:"poisoned_tasks"`
	Journal       bool    `json:"journal"`
	RecoveredJobs int64   `json:"recovered_jobs,omitempty"`
	HandoffJobs   int64   `json:"handoff_jobs,omitempty"`

	// Degraded mode: the journal hit a disk fault and the service is
	// read-only (in-flight jobs finish, new submits 503) until the disk
	// heals. Still 200 on /healthz — a degraded node serves reads.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`

	// Router-only: members whose lease expired but who still answer
	// probes (e.g. under an asymmetric partition).
	SuspectMembers []string `json:"suspect_members,omitempty"`

	// Cluster identity: the node's id, its role ("standalone", "node",
	// or "router"), and — when the node holds a membership lease — the
	// lease deadline it last renewed to.
	NodeID       string     `json:"node_id,omitempty"`
	Role         string     `json:"role"`
	LeaseExpires *time.Time `json:"lease_expires,omitempty"`

	// Router-only: membership counts by state and tracked placements.
	Members    map[string]int `json:"members,omitempty"`
	Placements int            `json:"placements,omitempty"`
}

// HealthStatus assembles the current /healthz payload.
func (s *Service) HealthStatus() Health {
	nodeID, role, lease := s.clusterIdentity()
	body := Health{
		Status:        "ok",
		Uptime:        s.Uptime().Seconds(),
		QueueDepth:    s.QueueDepth(),
		InflightJobs:  s.Running(),
		PoisonedTasks: s.PoisonedTotal(),
		Journal:       s.Durable(),
		RecoveredJobs: s.Recovered(),
		HandoffJobs:   s.HandedOff(),
		NodeID:        nodeID,
		Role:          role,
		LeaseExpires:  lease,
	}
	if deg, reason := s.DegradedInfo(); deg {
		body.Status = "degraded"
		body.Degraded = true
		body.DegradedReason = reason
	}
	if s.Draining() {
		body.Status = "draining"
	}
	return body
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	body := s.HealthStatus()
	if body.Status == "draining" {
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}
