package workset

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/rng"
)

func collect(w Workset, k int) []int64 {
	var out []int64
	for {
		got := w.Take(k)
		if len(got) == 0 {
			return out
		}
		out = append(out, got...)
	}
}

func testConservation(t *testing.T, w Workset) {
	t.Helper()
	const n = 1000
	for i := int64(0); i < n; i++ {
		w.Put(i)
	}
	if w.Len() != n {
		t.Fatalf("Len = %d, want %d", w.Len(), n)
	}
	out := collect(w, 7)
	if len(out) != n {
		t.Fatalf("drained %d items, want %d", len(out), n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	for i, v := range out {
		if v != int64(i) {
			t.Fatalf("lost/duplicated item at %d: %d", i, v)
		}
	}
	if w.Len() != 0 {
		t.Fatalf("Len after drain = %d", w.Len())
	}
}

func TestConservationAllPolicies(t *testing.T) {
	t.Run("random", func(t *testing.T) { testConservation(t, NewRandom(rng.New(1))) })
	t.Run("fifo", func(t *testing.T) { testConservation(t, NewFIFO()) })
	t.Run("lifo", func(t *testing.T) { testConservation(t, NewLIFO()) })
	t.Run("chunked", func(t *testing.T) { testConservation(t, NewChunked(8)) })
}

func TestFIFOOrder(t *testing.T) {
	w := NewFIFO()
	for i := int64(0); i < 10; i++ {
		w.Put(i)
	}
	got := w.Take(4)
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("FIFO order broken: %v", got)
		}
	}
	got = w.Take(100)
	if len(got) != 6 || got[0] != 4 {
		t.Fatalf("FIFO remainder: %v", got)
	}
}

func TestFIFOCompaction(t *testing.T) {
	w := NewFIFO()
	for i := int64(0); i < 5000; i++ {
		w.Put(i)
	}
	w.Take(4000)
	// Trigger compaction path.
	w.Take(1)
	if w.Len() != 999 {
		t.Fatalf("Len = %d, want 999", w.Len())
	}
	got := w.Take(999)
	if got[0] != 4001 || got[998] != 4999 {
		t.Fatalf("post-compaction order broken: first %d last %d", got[0], got[998])
	}
}

func TestLIFOOrder(t *testing.T) {
	w := NewLIFO()
	for i := int64(0); i < 10; i++ {
		w.Put(i)
	}
	got := w.Take(3)
	want := []int64{9, 8, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LIFO order: %v", got)
		}
	}
}

func TestRandomUniformity(t *testing.T) {
	// Each item should be first-drawn with roughly equal frequency.
	const n, reps = 10, 30000
	counts := make([]int, n)
	r := rng.New(2)
	for rep := 0; rep < reps; rep++ {
		w := NewRandom(r.Split())
		for i := int64(0); i < n; i++ {
			w.Put(i)
		}
		counts[w.Take(1)[0]]++
	}
	want := reps / n
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("item %d drawn first %d times, want ~%d", i, c, want)
		}
	}
}

func TestTakeMoreThanAvailable(t *testing.T) {
	for _, w := range []Workset{NewRandom(rng.New(3)), NewFIFO(), NewLIFO(), NewChunked(4)} {
		w.Put(1)
		w.Put(2)
		got := w.Take(10)
		if len(got) != 2 {
			t.Errorf("%T: Take(10) on 2 items returned %d", w, len(got))
		}
		if got2 := w.Take(5); len(got2) != 0 {
			t.Errorf("%T: Take on empty returned %d items", w, len(got2))
		}
	}
}

func TestConcurrentPutTake(t *testing.T) {
	for _, tc := range []struct {
		name string
		w    Workset
	}{
		{"random", NewRandom(rng.New(4))},
		{"fifo", NewFIFO()},
		{"lifo", NewLIFO()},
		{"chunked", NewChunked(8)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const producers, perProducer = 8, 500
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < perProducer; i++ {
						tc.w.Put(int64(p*perProducer + i))
					}
				}(p)
			}
			var mu sync.Mutex
			seen := map[int64]bool{}
			var cg sync.WaitGroup
			stop := make(chan struct{})
			for c := 0; c < 4; c++ {
				cg.Add(1)
				go func() {
					defer cg.Done()
					for {
						got := tc.w.Take(16)
						mu.Lock()
						for _, h := range got {
							if seen[h] {
								t.Errorf("duplicate handle %d", h)
							}
							seen[h] = true
						}
						done := len(seen) == producers*perProducer
						mu.Unlock()
						if done {
							return
						}
						select {
						case <-stop:
							return
						default:
						}
					}
				}()
			}
			wg.Wait()
			cg.Wait()
			close(stop)
			if len(seen) != producers*perProducer {
				t.Fatalf("consumed %d items, want %d", len(seen), producers*perProducer)
			}
		})
	}
}

func TestPutAll(t *testing.T) {
	mks := []struct {
		name string
		mk   func() Workset
	}{
		{"random", func() Workset { return NewRandom(rng.New(5)) }},
		{"fifo", func() Workset { return NewFIFO() }},
		{"lifo", func() Workset { return NewLIFO() }},
		{"chunked", func() Workset { return NewChunked(4) }},
	}
	for _, tc := range mks {
		t.Run(tc.name, func(t *testing.T) {
			w := tc.mk()
			w.PutAll([]int64{1, 2, 3, 4, 5})
			w.PutAll(nil) // no-op
			w.Put(6)
			if w.Len() != 6 {
				t.Fatalf("Len = %d, want 6", w.Len())
			}
			out := collect(w, 4)
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			for i, v := range out {
				if v != int64(i+1) {
					t.Fatalf("lost/duplicated handle: %v", out)
				}
			}
		})
	}
}

func TestFIFOPutAllOrder(t *testing.T) {
	w := NewFIFO()
	w.Put(0)
	w.PutAll([]int64{1, 2, 3})
	got := w.Take(4)
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("FIFO PutAll order broken: %v", got)
		}
	}
}

func TestChunkedPutAllSpreads(t *testing.T) {
	// A large batch must not land on a single shard: each of the 4
	// shards should receive roughly batch/4 handles.
	w := NewChunked(4)
	batch := make([]int64, 400)
	for i := range batch {
		batch[i] = int64(i)
	}
	w.PutAll(batch)
	for i := range w.shards {
		if n := len(w.shards[i].xs); n < 50 || n > 150 {
			t.Fatalf("shard %d holds %d of 400 handles — batch not spread", i, n)
		}
	}
}

func TestChunkedShardClamp(t *testing.T) {
	w := NewChunked(0) // clamps to 1 shard
	w.Put(7)
	if got := w.Take(1); len(got) != 1 || got[0] != 7 {
		t.Fatalf("single-shard chunked broken: %v", got)
	}
}
