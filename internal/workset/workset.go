// Package workset provides the work-set abstraction of amorphous
// data-parallelism (§1): an unordered collection of pending tasks from
// which the scheduler draws each round. The paper's model draws
// uniformly at random; real runtimes also use FIFO/LIFO and chunked
// policies, which are provided for comparison because the selection
// policy changes the effective CC subgraph each round.
//
// All worksets here store opaque task handles (int64 IDs managed by the
// caller) and are safe for concurrent use unless noted.
package workset

import (
	"sync"
	"sync/atomic"

	"repro/internal/rng"
)

// Workset is an unordered multiset of pending task handles.
type Workset interface {
	// Put inserts a task handle.
	Put(h int64)
	// PutAll inserts many handles under one synchronization episode —
	// the executor's batched requeue path for a whole round's aborts
	// and spawns.
	PutAll(hs []int64)
	// Take removes up to k handles according to the policy; it returns
	// fewer (possibly zero) when the set is smaller than k.
	Take(k int) []int64
	// Len returns the current number of pending handles.
	Len() int
}

// Random draws uniformly at random without replacement — the policy the
// paper's model assumes. It is safe for concurrent use.
type Random struct {
	mu sync.Mutex
	r  *rng.Rand
	xs []int64
}

// NewRandom returns a random-draw workset seeded by r. The generator is
// owned by the workset afterwards.
func NewRandom(r *rng.Rand) *Random { return &Random{r: r} }

// Put implements Workset.
func (w *Random) Put(h int64) {
	w.mu.Lock()
	w.xs = append(w.xs, h)
	w.mu.Unlock()
}

// PutAll inserts many handles under one lock acquisition.
func (w *Random) PutAll(hs []int64) {
	w.mu.Lock()
	w.xs = append(w.xs, hs...)
	w.mu.Unlock()
}

// Take implements Workset: it swap-removes k uniform positions, so the
// returned handles are a uniform sample without replacement. The result
// is pre-sized and the RNG path is skipped entirely when the whole set
// drains, so a full Take costs one copy and no random draws.
func (w *Random) Take(k int) []int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if k >= len(w.xs) {
		// Draining take: every handle is selected, so no random
		// positions need to be drawn (a permutation of "all of them"
		// is still a uniform sample without replacement).
		out := make([]int64, len(w.xs))
		copy(out, w.xs)
		w.xs = w.xs[:0]
		return out
	}
	out := make([]int64, k)
	for i := 0; i < k; i++ {
		j := w.r.Intn(len(w.xs))
		last := len(w.xs) - 1
		w.xs[j], w.xs[last] = w.xs[last], w.xs[j]
		out[i] = w.xs[last]
		w.xs = w.xs[:last]
	}
	return out
}

// Len implements Workset.
func (w *Random) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.xs)
}

// FIFO dequeues in insertion order. Safe for concurrent use.
type FIFO struct {
	mu   sync.Mutex
	xs   []int64
	head int
}

// NewFIFO returns an empty FIFO workset.
func NewFIFO() *FIFO { return &FIFO{} }

// Put implements Workset.
func (w *FIFO) Put(h int64) {
	w.mu.Lock()
	w.xs = append(w.xs, h)
	w.mu.Unlock()
}

// PutAll implements Workset: one lock acquisition for the whole batch.
func (w *FIFO) PutAll(hs []int64) {
	w.mu.Lock()
	w.xs = append(w.xs, hs...)
	w.mu.Unlock()
}

// Take implements Workset.
func (w *FIFO) Take(k int) []int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	avail := len(w.xs) - w.head
	if k > avail {
		k = avail
	}
	out := make([]int64, k)
	copy(out, w.xs[w.head:w.head+k])
	w.head += k
	// Compact when the dead prefix dominates, to bound memory.
	if w.head > 1024 && w.head*2 > len(w.xs) {
		w.xs = append([]int64(nil), w.xs[w.head:]...)
		w.head = 0
	}
	return out
}

// Len implements Workset.
func (w *FIFO) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.xs) - w.head
}

// LIFO pops most-recently-inserted first, maximizing locality and,
// typically, conflicts in clustered workloads. Safe for concurrent use.
type LIFO struct {
	mu sync.Mutex
	xs []int64
}

// NewLIFO returns an empty LIFO workset.
func NewLIFO() *LIFO { return &LIFO{} }

// Put implements Workset.
func (w *LIFO) Put(h int64) {
	w.mu.Lock()
	w.xs = append(w.xs, h)
	w.mu.Unlock()
}

// PutAll implements Workset: one lock acquisition for the whole batch.
func (w *LIFO) PutAll(hs []int64) {
	w.mu.Lock()
	w.xs = append(w.xs, hs...)
	w.mu.Unlock()
}

// Take implements Workset.
func (w *LIFO) Take(k int) []int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if k > len(w.xs) {
		k = len(w.xs)
	}
	out := make([]int64, k)
	split := len(w.xs) - k
	copy(out, w.xs[split:])
	w.xs = w.xs[:split]
	// Reverse so out[0] is the most recent (true LIFO order).
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Len implements Workset.
func (w *LIFO) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.xs)
}

// Chunked is a sharded bag: Put scatters across shards, Take gathers
// round-robin. It trades strict uniformity for lower contention — the
// structure real runtimes (e.g. Galois' chunked bags) use.
type Chunked struct {
	shards []chunkShard
	next   atomic.Uint64 // round-robin Put cursor
}

type chunkShard struct {
	mu sync.Mutex
	xs []int64
}

// NewChunked returns a bag with the given shard count (minimum 1).
func NewChunked(shards int) *Chunked {
	if shards < 1 {
		shards = 1
	}
	return &Chunked{shards: make([]chunkShard, shards)}
}

// Put implements Workset. The shard cursor is a single atomic add — no
// lock is taken on the scatter path beyond the target shard's own.
func (w *Chunked) Put(h int64) {
	i := int((w.next.Add(1) - 1) % uint64(len(w.shards)))
	s := &w.shards[i]
	s.mu.Lock()
	s.xs = append(s.xs, h)
	s.mu.Unlock()
}

// PutAll implements Workset: the batch is scattered in contiguous runs,
// one lock acquisition per touched shard (at most one per shard).
func (w *Chunked) PutAll(hs []int64) {
	if len(hs) == 0 {
		return
	}
	ns := uint64(len(w.shards))
	start := w.next.Add(uint64(len(hs))) - uint64(len(hs))
	// Runs of ceil(len/ns) keep the round-robin balance of repeated Put
	// while touching each shard's lock once.
	run := (len(hs) + int(ns) - 1) / int(ns)
	for off := 0; off < len(hs); off += run {
		end := off + run
		if end > len(hs) {
			end = len(hs)
		}
		s := &w.shards[(start+uint64(off/run))%ns]
		s.mu.Lock()
		s.xs = append(s.xs, hs[off:end]...)
		s.mu.Unlock()
	}
}

// Take implements Workset.
func (w *Chunked) Take(k int) []int64 {
	out := make([]int64, 0, k)
	for i := range w.shards {
		if len(out) == k {
			break
		}
		s := &w.shards[i]
		s.mu.Lock()
		take := k - len(out)
		if take > len(s.xs) {
			take = len(s.xs)
		}
		split := len(s.xs) - take
		out = append(out, s.xs[split:]...)
		s.xs = s.xs[:split]
		s.mu.Unlock()
	}
	return out
}

// Len implements Workset.
func (w *Chunked) Len() int {
	total := 0
	for i := range w.shards {
		s := &w.shards[i]
		s.mu.Lock()
		total += len(s.xs)
		s.mu.Unlock()
	}
	return total
}
