package control

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// TestTargetMParallelAgreesWithSerial checks the CSR-engine bisection
// against the seed serial one: both locate μ for the same graph, so the
// results must agree up to Monte Carlo noise around the threshold.
func TestTargetMParallelAgreesWithSerial(t *testing.T) {
	g := graph.RandomWithAvgDegree(rng.New(1), 600, 12)
	serial := TargetM(g, rng.New(2), 0.25, 400)
	if serial < 2 {
		t.Fatalf("implausible serial μ = %d", serial)
	}
	for _, workers := range []int{1, 4, 8} {
		par := TargetMParallel(g, rng.New(3), 0.25, 400, workers)
		if math.Abs(float64(par-serial))/float64(serial) > 0.15 {
			t.Errorf("workers=%d: parallel μ = %d vs serial μ = %d", workers, par, serial)
		}
	}
	// Reproducibility: fixed (seed, reps, workers) is bit-identical.
	a := TargetMParallel(g, rng.New(7), 0.2, 300, 3)
	b := TargetMParallel(g, rng.New(7), 0.2, 300, 3)
	if a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
	if got := TargetMParallel(graph.New(), rng.New(1), 0.2, 100, 4); got != 0 {
		t.Fatalf("empty graph μ = %d", got)
	}
}
