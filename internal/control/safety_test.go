package control

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// Safety property: no controller ever proposes m outside its clamps,
// no matter what (possibly adversarial) ratio sequence it observes.
func TestControllersRespectClampsUnderArbitraryInput(t *testing.T) {
	mks := []func() Controller{
		func() Controller { return NewHybrid(DefaultHybridConfig(0.25)) },
		func() Controller { return NewRecurrenceA(0.25, 2) },
		func() Controller { return NewRecurrenceB(0.25, 2) },
		func() Controller { return NewBisection(0.25, 2) },
		func() Controller { return NewAIMD(0.25, 2) },
		func() Controller { return NewPI(0.25, 2) },
		func() Controller { return NewModelBased(0.25, 2) },
	}
	f := func(seed uint64, raw []byte) bool {
		r := rng.New(seed)
		for _, mk := range mks {
			c := mk()
			for _, b := range raw {
				// Adversarial ratios: mixture of extremes and noise.
				var ratio float64
				switch b % 4 {
				case 0:
					ratio = 0
				case 1:
					ratio = 0.999
				case 2:
					ratio = float64(b) / 255
				default:
					ratio = r.Float64()
				}
				c.Observe(ratio)
				m := c.M()
				if m < 1 || m > 1024 {
					t.Logf("%s proposed m=%d", c.Name(), m)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// NaN/Inf observations must not poison controller state into proposing
// invalid allocations (the runtime can only produce ratios in [0,1],
// but defensive behavior is part of the public contract).
func TestControllersSurviveNonFiniteInput(t *testing.T) {
	mks := []func() Controller{
		func() Controller { return NewHybrid(DefaultHybridConfig(0.25)) },
		func() Controller { return NewRecurrenceA(0.25, 2) },
		func() Controller { return NewRecurrenceB(0.25, 2) },
		func() Controller { return NewPI(0.25, 2) },
	}
	for _, mk := range mks {
		c := mk()
		for i := 0; i < 20; i++ {
			c.Observe(math.NaN())
			c.Observe(math.Inf(1))
			c.Observe(0.2)
			if m := c.M(); m < 1 || m > 100000 {
				t.Errorf("%s: m=%d after non-finite input", c.Name(), m)
			}
		}
	}
}
