package control

import "math"

// ModelBased is the §5-outlook controller ("whether some statical
// properties of the behavior of irregular algorithms can be modeled,
// extracted and exploited to build better controllers, able to
// dynamically adapt to the different execution phases"): it *fits* the
// initial-linearity model of Fig. 2,
//
//	r̄(m) ≈ a·(m−1),   a = Δr̄(1) = d/(2(n−1))  (Prop. 2),
//
// online by exponentially forgetting least squares through the origin,
// and jumps directly to the model's target m* = ρ/â + 1. A residual
// detector (CUSUM-style) notices when observations stop matching the
// fitted line — a phase change — and resets the fit so re-learning is
// immediate.
//
// Compared to Algorithm 1 the model-based controller converges in one
// window once the slope is identified and, because the slope (not the
// position) is the state, it survives target changes for free.
type ModelBased struct {
	Rho        float64
	MMin, MMax int
	T          int     // observation window (paper-style averaging)
	Lambda     float64 // forgetting factor per window, in (0, 1]
	Deadband   float64 // relative dead-band on m updates
	ResetAfter int     // consecutive bad residuals before a fit reset
	ResidualK  float64 // residual tolerance, relative to ρ

	m   int
	acc float64
	cnt int

	sRM float64 // Σ λ-weighted r·(m−1)
	sMM float64 // Σ λ-weighted (m−1)²
	bad int     // consecutive out-of-tolerance windows

	Resets int // fit resets (phase changes detected)
}

// NewModelBased returns the controller with tuned defaults.
func NewModelBased(rho float64, m0 int) *ModelBased {
	return &ModelBased{
		Rho:        rho,
		MMin:       2,
		MMax:       1024,
		T:          4,
		Lambda:     0.85,
		Deadband:   0.06,
		ResetAfter: 2,
		ResidualK:  0.75,
		m:          m0,
	}
}

// Name implements Controller.
func (c *ModelBased) Name() string { return "model-based" }

// M implements Controller.
func (c *ModelBased) M() int { return c.m }

// Slope returns the current slope estimate â (0 before any signal).
func (c *ModelBased) Slope() float64 {
	if c.sMM == 0 {
		return 0
	}
	return c.sRM / c.sMM
}

// DegreeEstimate converts the fitted slope to an average-degree
// estimate via Prop. 2, given the CC graph size n.
func (c *ModelBased) DegreeEstimate(n int) float64 {
	return 2 * float64(n-1) * c.Slope()
}

// Observe implements Controller.
func (c *ModelBased) Observe(r float64) {
	c.acc += r
	c.cnt++
	if c.cnt < c.T {
		return
	}
	avg := c.acc / float64(c.cnt)
	c.acc, c.cnt = 0, 0
	w := float64(c.m - 1)
	if w <= 0 {
		// m = 1 carries no slope information; drift upward to probe.
		c.m = Clamp(c.m*2, c.MMin, c.MMax)
		return
	}

	// Phase-change detection before absorbing the sample: compare the
	// observation against the current fit.
	if c.sMM > 0 {
		predicted := c.Slope() * w
		if math.Abs(avg-predicted) > c.ResidualK*c.Rho {
			c.bad++
			if c.bad >= c.ResetAfter {
				c.sRM, c.sMM = 0, 0
				c.bad = 0
				c.Resets++
			}
		} else {
			c.bad = 0
		}
	}

	// Absorb the sample with exponential forgetting.
	c.sRM = c.Lambda*c.sRM + avg*w
	c.sMM = c.Lambda*c.sMM + w*w

	a := c.Slope()
	if a <= 0 {
		// No conflicts observed at all: the model says parallelism is
		// free; probe upward geometrically.
		c.m = Clamp(c.m*2, c.MMin, c.MMax)
		return
	}
	target := int(math.Ceil(c.Rho/a)) + 1
	if math.Abs(float64(target-c.m)) > c.Deadband*float64(c.m) {
		c.m = Clamp(target, c.MMin, c.MMax)
	}
}
