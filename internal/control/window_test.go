package control

import (
	"math"
	"testing"
)

func TestWindowedEstimatorFixedWindow(t *testing.T) {
	e := NewWindowedEstimator(8)
	for i := 0; i < 6; i++ {
		e.ObserveCommit()
	}
	e.ObserveAbort()
	if e.Ready() {
		t.Fatalf("ready after 7/8 outcomes")
	}
	e.ObserveAbort()
	if !e.Ready() {
		t.Fatalf("not ready after 8/8 outcomes")
	}
	s := e.Flush()
	if s.Launched != 8 || s.Committed != 6 || s.Aborted != 2 {
		t.Fatalf("flush = %+v, want 8/6/2", s)
	}
	if math.Abs(s.R-0.25) > 1e-12 {
		t.Fatalf("r = %v, want 0.25", s.R)
	}
	if e.Samples() != 0 || e.Ready() {
		t.Fatalf("flush did not reset the window")
	}
}

func TestWindowedEstimatorAdaptive(t *testing.T) {
	e := NewWindowedEstimator(0)
	if e.Window() != 1 {
		t.Fatalf("adaptive window starts at %d, want 1", e.Window())
	}
	e.SetWindow(4)
	if e.Window() != 4 {
		t.Fatalf("SetWindow ignored in adaptive mode")
	}
	for i := 0; i < 3; i++ {
		e.ObserveCommit()
	}
	if e.Ready() {
		t.Fatalf("ready at 3/4")
	}
	// Shrinking mid-window applies to the accumulating window.
	e.SetWindow(2)
	if !e.Ready() {
		t.Fatalf("not ready with 3 outcomes and window 2")
	}
	s := e.Flush()
	if s.R != 0 || s.Launched != 3 {
		t.Fatalf("flush = %+v, want 3 commits r=0", s)
	}
	// Invalid sizes are ignored.
	e.SetWindow(0)
	if e.Window() != 2 {
		t.Fatalf("SetWindow(0) changed the window to %d", e.Window())
	}
}

func TestWindowedEstimatorFixedIgnoresSetWindow(t *testing.T) {
	e := NewWindowedEstimator(16)
	e.SetWindow(2)
	if e.Window() != 16 {
		t.Fatalf("fixed-size estimator honored SetWindow: %d", e.Window())
	}
}

// TestWindowedEstimatorFeedsController drives a Hybrid controller from
// windowed samples with a constant conflict ratio and checks it settles
// the same way a round-mode drive does — the core of the controller-
// equivalence claim, in miniature and deterministic.
func TestWindowedEstimatorFeedsController(t *testing.T) {
	const rho = 0.25
	drive := func(perSample func(m int) (commits, aborts int)) int {
		ctrl := NewHybrid(DefaultHybridConfig(rho))
		est := NewWindowedEstimator(0)
		for i := 0; i < 400; i++ {
			m := ctrl.M()
			est.SetWindow(m)
			c, a := perSample(m)
			for j := 0; j < c; j++ {
				est.ObserveCommit()
			}
			for j := 0; j < a; j++ {
				est.ObserveAbort()
			}
			for est.Ready() {
				ctrl.Observe(est.Flush().R)
			}
		}
		return ctrl.M()
	}
	// Constant r = 0.25 exactly at target: both drives must hold steady
	// at the same m.
	want := drive(func(m int) (int, int) { return 3 * m / 4, m - 3*m/4 })
	got := drive(func(m int) (int, int) { return 3 * m / 4, m - 3*m/4 })
	if got != want {
		t.Fatalf("windowed drive diverged: %d vs %d", got, want)
	}
	if want < 2 {
		t.Fatalf("controller collapsed to m=%d", want)
	}
}
