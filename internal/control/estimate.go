package control

import (
	"math"

	"repro/internal/analytic"
)

// This file implements the paper's §4 "smarter initial value": if an
// estimate of the CC graph's average degree d is available, starting at
// m₀ = n/(2(d+1)) guarantees (by Cor. 3, α = 1/2) a worst-case conflict
// ratio of at most ≈21.3 % — skipping most of the cold-start ramp of
// m₀ = 2. When no a-priori d is available, DegreeEstimator recovers it
// online from the first observed (m, r) pairs through Prop. 2's slope.

// NewHybridSmartStart returns Algorithm 1 initialized at the Cor. 3
// safe allocation for a CC graph with n nodes and average degree d,
// instead of the cold m₀ = 2.
func NewHybridSmartStart(rho float64, n int, d float64) *Hybrid {
	cfg := DefaultHybridConfig(rho)
	cfg.M0 = analytic.SuggestedInitialM(n, d)
	if cfg.M0 > cfg.MMax {
		cfg.M0 = cfg.MMax
	}
	return NewHybrid(cfg)
}

// DegreeEstimator infers the CC graph's average degree from observed
// (m, conflict-ratio) samples. In the initial linear regime (Fig. 2)
// r̄(m) ≈ (m−1)·Δr̄(1) with Δr̄(1) = d/(2(n−1)) (Prop. 2), so each
// sample yields d̂ = 2(n−1)·r/(m−1); samples are averaged weighted by
// m−1 (larger rounds carry more signal).
type DegreeEstimator struct {
	N int // CC graph size (must be set)

	sumWeighted float64
	sumWeights  float64
}

// Observe feeds one round's processor count and measured conflict ratio.
// Rounds with m < 2 carry no degree information and are ignored.
func (e *DegreeEstimator) Observe(m int, r float64) {
	if m < 2 || e.N < 2 {
		return
	}
	w := float64(m - 1)
	d := 2 * float64(e.N-1) * r / w
	e.sumWeighted += w * d
	e.sumWeights += w
}

// Degree returns the current estimate (0 if no informative samples).
func (e *DegreeEstimator) Degree() float64 {
	if e.sumWeights == 0 {
		return 0
	}
	return e.sumWeighted / e.sumWeights
}

// Samples reports the accumulated weight (≈ informative observations).
func (e *DegreeEstimator) Samples() float64 { return e.sumWeights }

// SafeM returns the Cor. 3 safe allocation n/(2(d̂+1)) for the current
// estimate, or fallback when no estimate exists yet.
func (e *DegreeEstimator) SafeM(fallback int) int {
	if e.sumWeights == 0 {
		return fallback
	}
	return analytic.SuggestedInitialM(e.N, e.Degree())
}

// MaxAlphaFor inverts Cor. 3: the largest α such that the worst-case
// conflict-ratio bound at m = α·n/(d+1) stays within rho. Found by
// bisection (the bound is increasing in α). Returns 0 if even α→0
// exceeds rho (impossible for rho > 0).
func MaxAlphaFor(rho, d float64) float64 {
	if rho <= 0 {
		return 0
	}
	lo, hi := 0.0, 1.0
	// Expand until the bound exceeds rho (bound → 1 as α → ∞).
	for analytic.Cor3ConflictBound(hi, d) < rho {
		hi *= 2
		if hi > 1e9 {
			return math.Inf(1) // rho ≥ sup of the bound: any α is safe
		}
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if analytic.Cor3ConflictBound(mid, d) <= rho {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// GuaranteedM returns the largest m with a *worst-case* conflict-ratio
// guarantee ≤ rho for a CC graph with n nodes and degree d — the
// theory-backed allocation a conservative scheduler could use without
// any feedback at all.
func GuaranteedM(rho float64, n int, d float64) int {
	alpha := MaxAlphaFor(rho, d)
	if math.IsInf(alpha, 1) {
		return n
	}
	m := int(alpha * float64(n) / (d + 1))
	if m < 1 {
		m = 1
	}
	if m > n {
		m = n
	}
	return m
}
