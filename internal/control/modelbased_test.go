package control

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestModelBasedLearnsSlopeFromCleanSignal(t *testing.T) {
	// Synthetic plant: r = a·(m−1) with a = 0.004 (d=16, n≈2000).
	const a = 0.004
	c := NewModelBased(0.20, 10)
	for w := 0; w < 20; w++ {
		for i := 0; i < c.T; i++ {
			c.Observe(a * float64(c.M()-1))
		}
	}
	if got := c.Slope(); math.Abs(got-a) > 0.1*a {
		t.Fatalf("slope estimate %v, want %v", got, a)
	}
	// Target m* = ρ/a + 1 = 51.
	if c.M() < 45 || c.M() > 57 {
		t.Fatalf("m = %d, want ≈51", c.M())
	}
	// Degree estimate via Prop. 2.
	if d := c.DegreeEstimate(2000); math.Abs(d-16) > 2.5 {
		t.Fatalf("degree estimate %v, want ≈16", d)
	}
}

func TestModelBasedProbesUpWithoutConflicts(t *testing.T) {
	c := NewModelBased(0.25, 2)
	for w := 0; w < 6; w++ {
		for i := 0; i < c.T; i++ {
			c.Observe(0)
		}
	}
	if c.M() < 64 {
		t.Fatalf("conflict-free plant: m = %d, want geometric growth", c.M())
	}
}

func TestModelBasedClamps(t *testing.T) {
	c := NewModelBased(0.25, 2)
	for w := 0; w < 30; w++ {
		for i := 0; i < c.T; i++ {
			c.Observe(0)
		}
	}
	if c.M() != 1024 {
		t.Fatalf("m = %d, want MMax", c.M())
	}
	// Catastrophic conflicts pull back to a small target, never below
	// the floor.
	for w := 0; w < 30; w++ {
		for i := 0; i < c.T; i++ {
			c.Observe(0.99)
		}
	}
	if c.M() < 2 {
		t.Fatalf("m = %d below floor", c.M())
	}
}

func TestModelBasedDetectsPhaseChange(t *testing.T) {
	c := NewModelBased(0.20, 10)
	// Phase 1: slope 0.01.
	for w := 0; w < 15; w++ {
		for i := 0; i < c.T; i++ {
			c.Observe(0.01 * float64(c.M()-1))
		}
	}
	if c.Resets != 0 {
		t.Fatalf("spurious resets on stationary plant: %d", c.Resets)
	}
	// Phase 2: slope jumps 10×.
	for w := 0; w < 10; w++ {
		for i := 0; i < c.T; i++ {
			c.Observe(0.1 * float64(c.M()-1))
		}
	}
	if c.Resets == 0 {
		t.Fatal("phase change not detected")
	}
	// And the controller re-learns the new target m* = 0.2/0.1 + 1 = 3.
	if c.M() > 8 {
		t.Fatalf("m = %d after 10× slope increase, want ≈3", c.M())
	}
}

func TestModelBasedOnRealGraph(t *testing.T) {
	r := rng.New(1)
	g := graph.RandomWithAvgDegree(r, 2000, 16)
	mu := TargetM(g, r.Split(), 0.20, 400)
	c := NewModelBased(0.20, 2)
	tr := RunLoopStatic(g, r.Split(), c, 300)
	step := tr.ConvergenceStep(float64(mu), 0.30, 8)
	if step < 0 {
		t.Fatalf("model-based never converged to μ=%d (tail mean %v)",
			mu, tr.MSeries().TailMean(20))
	}
	if step > 60 {
		t.Errorf("model-based took %d rounds", step)
	}
	mean, std := tr.SteadyStateStats(100)
	if std > 0.4*mean {
		t.Errorf("steady state too noisy: %v ± %v", mean, std)
	}
}

// The §5 payoff: after an abrupt phase change the model-based
// controller re-targets. We only require correctness and eventual
// convergence (the hybrid comparison lives in the benchmarks).
func TestModelBasedTracksPhaseShiftOnGraphs(t *testing.T) {
	r := rng.New(2)
	dense := graph.RandomWithAvgDegree(r, 2000, 64)
	sparse := graph.RandomWithAvgDegree(r, 2000, 4)
	c := NewModelBased(0.20, 2)
	// Phase 1: dense graph.
	RunLoopStatic(dense, r.Split(), c, 100)
	mDense := c.M()
	// Phase 2: sparse graph (same controller state carried over).
	tr := control2Static(sparse, r.Split(), c, 150)
	muSparse := TargetM(sparse, r.Split(), 0.20, 300)
	mean, _ := tr.SteadyStateStats(50)
	if mean < 2*float64(mDense) {
		t.Fatalf("after 16× parallelism increase m went %d → %.0f (μ=%d)",
			mDense, mean, muSparse)
	}
}

// control2Static mirrors RunLoopStatic but keeps the controller state
// (RunLoopStatic does too — alias for readability).
func control2Static(g *graph.Graph, r *rng.Rand, c Controller, rounds int) *Trajectory {
	return RunLoopStatic(g, r, c, rounds)
}
