package control

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestPIGrowsWithoutConflicts(t *testing.T) {
	c := NewPI(0.25, 2)
	for w := 0; w < 20; w++ {
		for i := 0; i < c.T; i++ {
			c.Observe(0)
		}
	}
	if c.M() < 100 {
		t.Fatalf("m = %d after 20 conflict-free windows", c.M())
	}
}

func TestPIShrinksUnderConflicts(t *testing.T) {
	c := NewPI(0.25, 500)
	for w := 0; w < 20; w++ {
		for i := 0; i < c.T; i++ {
			c.Observe(0.9)
		}
	}
	if c.M() != 2 {
		t.Fatalf("m = %d, want floor", c.M())
	}
}

func TestPIAntiWindup(t *testing.T) {
	c := NewPI(0.25, 2)
	// Long saturation at the floor must not wind the integral so far
	// that recovery takes forever.
	for w := 0; w < 100; w++ {
		for i := 0; i < c.T; i++ {
			c.Observe(0.95)
		}
	}
	// Now the plant frees up: recovery within a bounded window count.
	windows := 0
	for c.M() < 64 && windows < 40 {
		for i := 0; i < c.T; i++ {
			c.Observe(0)
		}
		windows++
	}
	if c.M() < 64 {
		t.Fatalf("PI did not recover after saturation (m=%d after %d windows)",
			c.M(), windows)
	}
}

func TestPIConvergesOnRealGraph(t *testing.T) {
	r := rng.New(1)
	g := graph.RandomWithAvgDegree(r, 2000, 16)
	mu := TargetM(g, r.Split(), 0.20, 400)
	c := NewPI(0.20, 2)
	tr := RunLoopStatic(g, r.Split(), c, 400)
	step := tr.ConvergenceStep(float64(mu), 0.30, 8)
	if step < 0 {
		t.Fatalf("PI never converged to μ=%d (tail %v)", mu, tr.MSeries().TailMean(20))
	}
	mean, std := tr.SteadyStateStats(100)
	if std > 0.5*mean {
		t.Errorf("PI steady state too noisy: %v ± %v", mean, std)
	}
}
